#include "serve/serve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "estimation/beamspace.h"
#include "estimation/covariance_ml.h"
#include "linalg/kernels.h"
#include "mac/probe.h"
#include "obs/clock.h"
#include "obs/flight.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "randgen/keylanes.h"

namespace mmw::serve {

namespace {

/// Key spaces of the serving streams (master seed = scenario.seed), from
/// the registry lane randgen/keylanes.h (kServeLaneBase):
///   key_a = 2·site      per-user randomness; key_b = user_key,
///                       key_c = 0 the identity stream (drop → channel →
///                       sojourn, replayable any epoch), key_c = e + 1 the
///                       measurement stream of epoch e.
///   key_a = 2·site + 1  per-site churn; key_b = 0, key_c = e the arrival
///                       count of epoch e.
/// Every lane is reconstructible by any shard without shared state, and no
/// session's lane depends on any other session — the churn-invariance
/// contract reduces to this key map.
randgen::Rng identity_stream(std::uint64_t seed, index_t site,
                             std::uint64_t user_key) {
  return randgen::Rng::stream(
      seed, randgen::lanes::serve_user_lane(site), user_key, 0);
}
randgen::Rng epoch_stream(std::uint64_t seed, index_t site,
                          std::uint64_t user_key, index_t epoch) {
  return randgen::Rng::stream(seed, randgen::lanes::serve_user_lane(site),
                              user_key,
                              static_cast<std::uint64_t>(epoch) + 1);
}
randgen::Rng churn_stream(std::uint64_t seed, index_t site, index_t epoch) {
  return randgen::Rng::stream(seed, randgen::lanes::serve_churn_lane(site),
                              0, static_cast<std::uint64_t>(epoch));
}

/// Window growth per re-alignment slot of the kNeighborhood probe policy.
constexpr index_t kRealignWidenRadius = 2;

/// serve.* telemetry, published once per tick from the MERGED frame on the
/// calling thread — recording never happens inside shards, so obs on/off
/// cannot perturb per-thread anything (the CSV-equality contract).
struct ServeMetrics {
  obs::Counter stepped;
  obs::Counter arrivals;
  obs::Counter departures;
  obs::Counter slots;
  obs::Counter outages;
  obs::Gauge live;
  obs::Gauge mean_loss_db;
  obs::Gauge resident_bytes;
  obs::Gauge high_water_bytes;
  static const ServeMetrics& get() {
    static const ServeMetrics m{
        obs::Registry::global().counter("serve.sessions.stepped"),
        obs::Registry::global().counter("serve.sessions.arrivals"),
        obs::Registry::global().counter("serve.sessions.departures"),
        obs::Registry::global().counter("serve.align.slots"),
        obs::Registry::global().counter("serve.track.outages"),
        obs::Registry::global().gauge("serve.sessions.live"),
        obs::Registry::global().gauge("serve.loss.mean_db"),
        obs::Registry::global().gauge("serve.pool.resident_bytes"),
        obs::Registry::global().gauge("serve.pool.high_water_bytes"),
    };
    return m;
  }
};

}  // namespace

/// Mergeable per-shard accumulator: fixed-size counters + an O(1)-memory
/// loss QuantileDigest, so epoch metrics cost O(shards), never O(sessions).
/// Merged in flat shard order; within a shard samples accumulate in
/// ascending slot order — both orders are thread-count independent, which
/// makes the merged digest (and its quantiles) byte-identical at any
/// thread count (obs/digest.h determinism contract).
struct ServingEngine::MetricFrame {
  std::uint64_t stepped = 0;
  std::uint64_t aligning = 0;
  std::uint64_t tracking = 0;
  std::uint64_t outages = 0;
  std::uint64_t realignments = 0;  ///< claims by previously-outaged sessions
  std::uint64_t claims = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t measurement_slots = 0;
  std::uint64_t nonconverged = 0;  ///< kWarmMl solves past max_iterations
  obs::QuantileDigest loss;        ///< claimed-vs-optimal SNR loss, dB

  void record_loss(real db) { loss.add(db); }

  void merge(const MetricFrame& o) {
    stepped += o.stepped;
    aligning += o.aligning;
    tracking += o.tracking;
    outages += o.outages;
    realignments += o.realignments;
    claims += o.claims;
    arrivals += o.arrivals;
    departures += o.departures;
    measurement_slots += o.measurement_slots;
    nonconverged += o.nonconverged;
    loss.merge(o.loss);
  }
};

/// Per-thread reusable scratch of the step phase. Buffers are resized on
/// first touch and reused for every subsequent session the thread steps, so
/// the steady-state tracking path performs zero allocations and the
/// alignment path only the transient link/estimator work.
struct ServingEngine::Workspace {
  linalg::Vector fade_scratch;
  std::vector<real> scores;
  std::vector<index_t> probe_rx;
  std::vector<real> probe_energy;
  std::vector<estimation::BeamComponent> prior;
  std::vector<estimation::BeamComponent> update;
  std::vector<estimation::BeamMeasurement> measurements;
};

ServingEngine::ServingEngine(ServeConfig config)
    : config_(std::move(config)),
      topology_(sim::Topology::build(config_.topology)),
      codebooks_(sim::make_scenario_codebooks(config_.scenario)) {
  MMW_REQUIRE_MSG(config_.scenario.gamma > 0.0, "gamma must be positive");
  MMW_REQUIRE_MSG(config_.align_epochs >= 1,
                  "need at least one alignment slot");
  MMW_REQUIRE_MSG(config_.probes_per_slot >= 1,
                  "need at least one probe per slot");
  MMW_REQUIRE_MSG(config_.track_fades >= 1,
                  "need at least one tracking fade");
  MMW_REQUIRE_MSG(config_.collapse_db > 0.0,
                  "collapse threshold must be positive dB");
  MMW_REQUIRE_MSG(config_.forgetting >= 0.0 && config_.forgetting <= 1.0,
                  "forgetting must be in [0, 1]");
  MMW_REQUIRE_MSG(
      config_.blockage_probability >= 0.0 &&
          config_.blockage_probability <= 1.0,
      "blockage probability must be in [0, 1]");
  MMW_REQUIRE_MSG(config_.arrival_rate >= 0.0,
                  "arrival rate must be non-negative");
  MMW_REQUIRE_MSG(config_.mean_sojourn_epochs >= 0.0,
                  "mean sojourn must be non-negative");
  MMW_REQUIRE_MSG(config_.session_block > 0,
                  "session block must be positive");
  MMW_REQUIRE_MSG(codebooks_.rx.size() - 1 <= 0xffff &&
                      codebooks_.tx.size() - 1 <= 0xffff,
                  "codeword indices must fit the u16 session fields");
  collapse_scale_ = std::pow(10.0, -config_.collapse_db / 10.0);
  const index_t sites = topology_.n_cells();
  pools_.reserve(sites);
  for (index_t s = 0; s < sites; ++s)
    pools_.emplace_back(config_.session_block);
  next_user_key_.assign(sites, 0);
  threads_ = core::resolve_thread_count(config_.scenario.threads);
  if (threads_ > 1)
    thread_pool_ = std::make_unique<core::ThreadPool>(threads_);

  if (!config_.telemetry.ndjson_path.empty())
    sink_.open(config_.telemetry.ndjson_path);
  if (config_.telemetry.watchdog) {
    obs::WatchdogConfig wc;
    wc.health_path = config_.telemetry.health_path;
    wc.poll_seconds = config_.telemetry.watchdog_poll_seconds;
    wc.stall_multiplier = config_.telemetry.watchdog_stall_multiplier;
    wc.min_stall_seconds = config_.telemetry.watchdog_min_stall_seconds;
    // Progress = engine ticks (shards + epochs) plus the pool heartbeat, so
    // forward motion anywhere — even mid-shard task churn — resets the
    // stall clock. Reads only atomics; safe from the monitor thread.
    watchdog_ = std::make_unique<obs::Watchdog>(
        wc,
        [this] {
          std::uint64_t p = progress_.load(std::memory_order_relaxed);
          if (thread_pool_) p += thread_pool_->heartbeat();
          return p;
        },
        [this] {
          return std::vector<std::pair<std::string, double>>{
              {"epoch",
               static_cast<double>(
                   health_epoch_.load(std::memory_order_relaxed))},
              {"live_sessions",
               static_cast<double>(
                   health_live_.load(std::memory_order_relaxed))},
          };
        });
  }
}

index_t ServingEngine::live_sessions() const {
  index_t n = 0;
  for (const SessionPool& p : pools_) n += p.live_count();
  return n;
}

std::size_t ServingEngine::resident_bytes() const {
  std::size_t n = 0;
  for (const SessionPool& p : pools_) n += p.resident_bytes();
  return n;
}

std::size_t ServingEngine::high_water_bytes() const {
  std::size_t n = 0;
  for (const SessionPool& p : pools_) n += p.high_water_bytes();
  return n;
}

const UserSession* ServingEngine::find_session(index_t site,
                                               std::uint64_t user_key) const {
  MMW_REQUIRE(site < pools_.size());
  const UserSession* found = nullptr;
  pools_[site].for_each_live([&](index_t, const UserSession& s) {
    if (s.user_key == user_key) found = &s;
  });
  return found;
}

void ServingEngine::admit_one(index_t site, MetricFrame& frame) {
  const std::uint64_t key = next_user_key_[site]++;
  // Identity stream, fixed draw order: drop (2 draws) → channel → sojourn.
  // step_align replays the same prefix every alignment epoch.
  randgen::Rng id = identity_stream(config_.scenario.seed, site, key);
  const sim::UserPlacement drop = topology_.place_user(site, id);
  const channel::Link link = sim::make_scenario_link(config_.scenario, id);

  const index_t slot = pools_[site].allocate();
  UserSession& s = pools_[site][slot];
  s.user_key = key;
  s.birth_epoch = static_cast<std::uint32_t>(epoch_);
  if (config_.mean_sojourn_epochs > 0.0) {
    const real sojourn =
        std::min(id.exponential(config_.mean_sojourn_epochs), real{1e9});
    s.departure_epoch = static_cast<std::uint32_t>(
        epoch_ + 1 + static_cast<std::uint64_t>(sojourn));
  }
  // γ_eff folds the serving pathloss; the noise floor each probe sees.
  const real gamma_eff =
      config_.scenario.gamma * topology_.pathloss_gain(site, drop);
  s.noise_var = static_cast<float>(1.0 / gamma_eff);
  // The grading oracle reduced to one resident float: the best mean pair
  // gain over the codebook product (the full PairGainOracle table would be
  // O(T) per session — exactly the resident state this engine forbids).
  real best = 0.0;
  for (index_t tx = 0; tx < codebooks_.tx.size(); ++tx)
    for (index_t rx = 0; rx < codebooks_.rx.size(); ++rx)
      best = std::max(best,
                      link.mean_pair_gain(codebooks_.tx.codeword(tx),
                                          codebooks_.rx.codeword(rx)));
  s.optimal_gain = static_cast<float>(best);
  ++frame.arrivals;
}

void ServingEngine::churn_site(index_t site, MetricFrame& frame) {
  SessionPool& pool = pools_[site];
  // Departures first: their slots are reusable by this epoch's arrivals.
  for (index_t slot = 0; slot < pool.capacity(); ++slot) {
    if (pool.live(slot) && pool[slot].departure_epoch <= epoch_) {
      pool.release(slot);
      ++frame.departures;
    }
  }
  std::uint64_t admissions = 0;
  if (epoch_ == 0) {
    const index_t sites = pools_.size();
    admissions += config_.initial_sessions / sites +
                  (site < config_.initial_sessions % sites ? 1 : 0);
  }
  if (config_.arrival_rate > 0.0)
    admissions += churn_stream(config_.scenario.seed, site, epoch_)
                      .poisson(config_.arrival_rate);
  for (std::uint64_t i = 0; i < admissions; ++i) admit_one(site, frame);
}

void ServingEngine::step_track(index_t site, UserSession& s,
                               MetricFrame& frame) {
  randgen::Rng rng =
      epoch_stream(config_.scenario.seed, site, s.user_key, epoch_);
  // Matched-filter verification of the claimed pair WITHOUT the link: for
  // Gaussian fades, z = vᴴHu + n is exactly CN(0, G + σ²) with
  // G = mean_pair_gain(u, v) — the paper's eq. (9) energy law — so the
  // fast path samples the law directly. Blockage shadows the slot to
  // noise-only, as in mac::probe_energy.
  const bool blocked =
      config_.blockage_probability > 0.0 &&
      rng.uniform() < config_.blockage_probability;
  const real lambda =
      (blocked ? 0.0 : static_cast<real>(s.claimed_gain)) +
      static_cast<real>(s.noise_var);
  real energy = 0.0;
  for (index_t k = 0; k < config_.track_fades; ++k)
    energy += std::norm(rng.complex_normal(lambda));
  energy /= static_cast<real>(config_.track_fades);

  ++frame.tracking;
  const real claimed = std::max(static_cast<real>(s.claimed_gain), 1e-12);
  frame.record_loss(10.0 *
                    std::log10(static_cast<real>(s.optimal_gain) / claimed));
  if (energy < static_cast<real>(s.trained_energy) * collapse_scale_) {
    ++frame.outages;
    // Warm re-entry: the beam-space covariance survives, so re-alignment
    // starts from last epoch's angular knowledge, not from scratch.
    s.aligning = 1;
    s.slots_aligned = 0;
    s.trained_energy = -1.0f;
    if (s.realigns != 0xff) ++s.realigns;
  }
}

void ServingEngine::step_align(index_t site, UserSession& s,
                               MetricFrame& frame, Workspace& ws) {
  const sim::Scenario& sc = config_.scenario;
  // Rebuild the session's channel from the identity stream (same prefix as
  // admit_one: 2 placement draws, then the link).
  randgen::Rng id = identity_stream(sc.seed, site, s.user_key);
  topology_.place_user(site, id);
  const channel::Link link = sim::make_scenario_link(sc, id);
  randgen::Rng rng = epoch_stream(sc.seed, site, s.user_key, epoch_);

  const index_t n_tx = codebooks_.tx.size();
  const index_t n_rx = codebooks_.rx.size();
  const index_t j = std::min(config_.probes_per_slot, n_rx);
  const real noise_var = static_cast<real>(s.noise_var);

  // TX dwell beam for the slot: a deterministic sweep — slot k dwells on
  // beam (user_key + k) mod M, so align_epochs ≥ M covers the whole TX
  // codebook and the per-session offset spreads concurrent aligners evenly
  // over it. The RX probe set is the top-(J−1) codewords of the resident
  // covariance (the paper's covariance-directed measurement) with the
  // remainder drawn uniformly for exploration; a fresh session (rank 0)
  // probes all-random.
  const index_t tx = static_cast<index_t>(
      (s.user_key + s.slots_aligned) % static_cast<std::uint64_t>(n_tx));
  ws.probe_rx.clear();
  if (s.rank > 0) {
    ws.prior.clear();
    for (index_t i = 0; i < s.rank; ++i)
      ws.prior.push_back({static_cast<index_t>(s.comp_beam[i]),
                          static_cast<real>(s.comp_weight[i])});
    const linalg::FactoredHermitian q =
        estimation::expand_beam_space(ws.prior, codebooks_.rx);
    if (!q.empty()) {
      if (ws.scores.size() != n_rx) ws.scores.assign(n_rx, 0.0);
      codebooks_.rx.covariance_scores_into(q, ws.scores);
      const index_t top = j > 1 ? j - 1 : 1;  // j > 1 keeps one explore slot
      for (index_t pick = 0; pick < top; ++pick) {
        index_t best = n_rx;
        real best_score = 0.0;
        for (index_t v = 0; v < n_rx; ++v) {
          if (!(ws.scores[v] > best_score)) continue;  // ties → lowest v
          if (std::find(ws.probe_rx.begin(), ws.probe_rx.end(), v) !=
              ws.probe_rx.end())
            continue;
          best = v;
          best_score = ws.scores[v];
        }
        if (best == n_rx) break;  // covariance has no more positive mass
        ws.probe_rx.push_back(best);
      }
    }
  }
  // Exploration picks, by the configured probe policy (track/policy.h).
  // The default cursor sweep (s.cursor counts probes spent, so consecutive
  // slots continue where the last stopped; the key offset decorrelates
  // sessions) never re-probes a beam before wrapping, so a fresh session
  // covers all N beams in ⌈N/J⌉ slots — and is byte-identical to the
  // pre-policy engine. A re-aligning session (realigns > 0) under
  // kNeighborhood scans the widening window around its last claimed RX
  // beam first — the PR-6 recovery shape — topping up from the cursor;
  // kBanditUcb decorrelates exploration with the hash spread.
  switch (config_.probe_policy) {
    case track::ProbePolicy::kNeighborhood:
      if (s.realigns > 0) {
        const index_t radius =
            (static_cast<index_t>(s.slots_aligned) + 1) * kRealignWidenRadius;
        track::append_neighborhood_probes(s.rx_beam, radius, n_rx, j,
                                          ws.probe_rx);
      }
      track::append_cursor_probes(s.user_key, s.cursor, n_rx, j, ws.probe_rx);
      break;
    case track::ProbePolicy::kBanditUcb:
      track::append_spread_probes(s.user_key, s.cursor, n_rx, j, ws.probe_rx);
      break;
    case track::ProbePolicy::kCursorSweep:
      track::append_cursor_probes(s.user_key, s.cursor, n_rx, j, ws.probe_rx);
      break;
  }
  // Canonical measurement order (ascending RX index): the probe loop's
  // draw sequence and the update list's order are both pinned by it.
  std::sort(ws.probe_rx.begin(), ws.probe_rx.end());

  if (ws.fade_scratch.size() != link.rx_size())
    ws.fade_scratch = linalg::Vector(link.rx_size());
  mac::ProbeView view;
  view.link = &link;
  view.tx_codebook = &codebooks_.tx;
  view.rx_codebook = &codebooks_.rx;
  view.gamma = 1.0 / noise_var;
  view.blockage_probability = config_.blockage_probability;

  ws.probe_energy.clear();
  for (const index_t rx : ws.probe_rx) {
    const real e = mac::probe_energy(view, tx, rx, sc.fades_per_measurement,
                                     rng, ws.fade_scratch);
    ws.probe_energy.push_back(e);
    if (e > static_cast<real>(s.trained_energy)) {
      s.trained_energy = static_cast<float>(e);
      s.tx_beam = static_cast<std::uint16_t>(tx);
      s.rx_beam = static_cast<std::uint16_t>(rx);
    }
  }
  frame.measurement_slots += j;
  s.cursor += static_cast<std::uint32_t>(j);

  // Fold the slot's energies into the resident beam-space covariance.
  ws.prior.clear();
  for (index_t i = 0; i < s.rank; ++i)
    ws.prior.push_back({static_cast<index_t>(s.comp_beam[i]),
                        static_cast<real>(s.comp_weight[i])});
  std::vector<estimation::BeamComponent> merged;
  if (config_.estimator == EstimatorKind::kWarmMl) {
    ws.measurements.clear();
    for (index_t i = 0; i < ws.probe_rx.size(); ++i)
      ws.measurements.push_back(
          {codebooks_.rx.codeword(ws.probe_rx[i]), ws.probe_energy[i]});
    estimation::CovarianceMlOptions opts;
    opts.gamma = 1.0 / noise_var;
    opts.max_iterations = 40;
    opts.tolerance = 1e-4;
    const linalg::FactoredHermitian prior =
        estimation::expand_beam_space(ws.prior, codebooks_.rx);
    const estimation::CovarianceMlResult res =
        estimation::estimate_covariance_ml_warm(n_rx, ws.measurements, opts,
                                                prior);
    if (!res.converged) ++frame.nonconverged;  // ladder rung (observe only)
    if (ws.scores.size() != n_rx) ws.scores.assign(n_rx, 0.0);
    merged = estimation::compress_to_beam_space(res.q, codebooks_.rx,
                                                kMaxComponents, ws.scores);
    // Forgetting still applies across slots: ML re-solves from this slot's
    // measurements, so blend like the moment path.
    merged = estimation::merge_beam_space(ws.prior, config_.forgetting,
                                          merged, kMaxComponents);
  } else {
    ws.update.clear();
    for (index_t i = 0; i < ws.probe_rx.size(); ++i) {
      const real w = std::max(ws.probe_energy[i] - noise_var, 0.0);
      if (w > 0.0) ws.update.push_back({ws.probe_rx[i], w});
    }
    merged = estimation::merge_beam_space(ws.prior, config_.forgetting,
                                          ws.update, kMaxComponents);
  }
  s.rank = static_cast<std::uint8_t>(merged.size());
  for (index_t i = 0; i < kMaxComponents; ++i) {
    s.comp_beam[i] =
        i < merged.size() ? static_cast<std::uint16_t>(merged[i].beam) : 0;
    s.comp_weight[i] =
        i < merged.size() ? static_cast<float>(merged[i].weight) : 0.0f;
  }

  ++frame.aligning;
  ++s.slots_aligned;
  if (s.slots_aligned >= config_.align_epochs &&
      s.trained_energy >= 0.0f) {
    // Claim the best measured pair and drop to the tracking fast path.
    s.aligning = 0;
    s.claimed_gain = static_cast<float>(link.mean_pair_gain(
        codebooks_.tx.codeword(s.tx_beam), codebooks_.rx.codeword(s.rx_beam)));
    ++frame.claims;
    if (s.realigns > 0) ++frame.realignments;
  }
}

void ServingEngine::step_shard(index_t site, index_t slab,
                               MetricFrame& frame) {
  static thread_local Workspace tls_workspace;
  Workspace& ws = tls_workspace;
  pools_[site].for_each_live_in_slab(slab, [&](index_t, UserSession& s) {
    if (s.aligning != 0)
      step_align(site, s, frame, ws);
    else
      step_track(site, s, frame);
    ++frame.stepped;
  });
}

void ServingEngine::publish_obs(const MetricFrame& total) const {
  if (!obs::enabled()) return;
  const ServeMetrics& m = ServeMetrics::get();
  m.stepped.add(total.stepped);
  m.arrivals.add(total.arrivals);
  m.departures.add(total.departures);
  m.slots.add(total.measurement_slots);
  m.outages.add(total.outages);
  m.live.set(static_cast<real>(live_sessions()));
  if (total.loss.count() > 0)
    m.mean_loss_db.set(total.loss.sum() /
                       static_cast<real>(total.loss.count()));
  m.resident_bytes.set(static_cast<real>(resident_bytes()));
  m.high_water_bytes.set(static_cast<real>(high_water_bytes()));
}

EpochReport ServingEngine::step_epoch() {
  obs::TraceScope span("serve.epoch", "serve");
  span.arg("epoch", static_cast<double>(epoch_));
  const obs::WallTimer epoch_timer;
  const index_t sites = pools_.size();
  const TelemetryConfig& tc = config_.telemetry;

  // Phase 1 — churn, sharded by site (each site's pool and key counter are
  // touched by exactly one iteration).
  std::vector<MetricFrame> churn_frames(sites);
  auto churn_one = [&](index_t site) {
    churn_site(site, churn_frames[site]);
    progress_.fetch_add(1, std::memory_order_relaxed);
  };
  if (thread_pool_ && sites > 1) {
    thread_pool_->parallel_for(0, sites, churn_one);
  } else {
    for (index_t site = 0; site < sites; ++site) churn_one(site);
  }

  // Phase 2 — step every live session, sharded (site × slab).
  shards_.clear();
  for (index_t site = 0; site < sites; ++site)
    for (index_t slab = 0; slab < pools_[site].n_slabs(); ++slab)
      if (pools_[site].live_in_slab(slab) > 0) shards_.emplace_back(site, slab);
  std::vector<MetricFrame> step_frames(shards_.size());
  const obs::WallTimer step_timer;
  auto step_one = [&](index_t i) {
    // Watchdog test hook: a wall-clock sleep in the first shard of the
    // chosen epoch. No Rng, no session state — results are untouched.
    if (tc.stall_test_seconds > 0.0 && epoch_ == tc.stall_test_epoch &&
        i == 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(tc.stall_test_seconds));
    step_shard(shards_[i].first, shards_[i].second, step_frames[i]);
    progress_.fetch_add(1, std::memory_order_relaxed);
  };
  if (thread_pool_ && shards_.size() > 1) {
    thread_pool_->parallel_for(0, shards_.size(), step_one);
  } else {
    for (index_t i = 0; i < shards_.size(); ++i) step_one(i);
  }
  step_seconds_ += step_timer.seconds();

  // Reduce in flat shard order — parallel output == serial output.
  MetricFrame total;
  for (const MetricFrame& f : churn_frames) total.merge(f);
  for (const MetricFrame& f : step_frames) total.merge(f);

  EpochReport r;
  r.epoch = epoch_;
  r.live_sessions = total.stepped;
  r.arrivals = total.arrivals;
  r.departures = total.departures;
  r.aligning_steps = total.aligning;
  r.tracking_steps = total.tracking;
  r.outages = total.outages;
  r.realignments = total.realignments;
  r.claims = total.claims;
  r.measurement_slots = total.measurement_slots;
  r.estimator_nonconverged = total.nonconverged;
  r.loss_samples = total.loss.count();
  r.mean_loss_db =
      r.loss_samples > 0
          ? total.loss.sum() / static_cast<real>(r.loss_samples)
          : 0.0;
  r.p50_loss_db = total.loss.quantile(0.50);
  r.p90_loss_db = total.loss.quantile(0.90);
  r.p99_loss_db = total.loss.quantile(0.99);
  r.p999_loss_db = total.loss.quantile(0.999);
  r.max_loss_db = total.loss.max_value();

  sessions_stepped_ += total.stepped;
  peak_live_ = std::max<std::uint64_t>(peak_live_, live_sessions());
  publish_obs(total);

  // Telemetry plane: run-level digests, watchdog feed, outage-burst dump,
  // NDJSON record. All observe-only.
  run_loss_digest_.merge(total.loss);
  const double epoch_seconds = epoch_timer.seconds();
  epoch_seconds_digest_.add(epoch_seconds);
  health_live_.store(live_sessions(), std::memory_order_relaxed);
  health_epoch_.store(epoch_, std::memory_order_relaxed);
  if (watchdog_) watchdog_->note_epoch_seconds(epoch_seconds);
  if (tc.outage_burst_dump_threshold > 0 && !outage_burst_dumped_ &&
      total.outages >= tc.outage_burst_dump_threshold) {
    outage_burst_dumped_ = true;
    obs::FlightRecorder::global().dump("outage_burst");
  }
  emit_telemetry(r, epoch_seconds);

  progress_.fetch_add(1, std::memory_order_relaxed);
  ++epoch_;
  return r;
}

void ServingEngine::emit_telemetry(const EpochReport& report,
                                   double epoch_seconds) {
  if (!sink_.is_open()) return;

  obs::TelemetryRecord rec;
  rec.epoch = report.epoch;
  rec.live_sessions = report.live_sessions;
  rec.arrivals = report.arrivals;
  rec.departures = report.departures;
  rec.aligning_steps = report.aligning_steps;
  rec.tracking_steps = report.tracking_steps;
  rec.outages = report.outages;
  rec.realignments = report.realignments;
  rec.claims = report.claims;
  rec.measurement_slots = report.measurement_slots;
  rec.estimator_nonconverged = report.estimator_nonconverged;
  rec.pool_resident_bytes = resident_bytes();
  rec.pool_high_water_bytes = high_water_bytes();
  rec.loss_count = report.loss_samples;
  rec.loss_mean_db = report.mean_loss_db;
  rec.loss_p50_db = report.p50_loss_db;
  rec.loss_p90_db = report.p90_loss_db;
  rec.loss_p99_db = report.p99_loss_db;
  rec.loss_p999_db = report.p999_loss_db;
  rec.loss_max_db = report.max_loss_db;

  rec.epoch_seconds = epoch_seconds;
  rec.epoch_seconds_p50 = epoch_seconds_digest_.quantile(0.50);
  rec.epoch_seconds_p99 = epoch_seconds_digest_.quantile(0.99);
  // Pool utilization as per-epoch deltas of the core.pool.* counters (zero
  // while obs is disabled — the counters don't advance).
  const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
  const auto counter_value = [&](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it != snap.counters.end() ? it->second.value : 0;
  };
  const std::uint64_t busy = counter_value("core.pool.busy_us");
  const std::uint64_t idle = counter_value("core.pool.idle_us");
  rec.pool_busy_us = busy - std::min(busy, prev_pool_busy_us_);
  rec.pool_idle_us = idle - std::min(idle, prev_pool_idle_us_);
  prev_pool_busy_us_ = busy;
  prev_pool_idle_us_ = idle;
  rec.rss_bytes = obs::current_rss_bytes();
  rec.arena_high_water_bytes =
      static_cast<std::uint64_t>(linalg::kernels::arena_high_water_bytes());
  rec.flight_events = obs::FlightRecorder::global().event_count();

  sink_.write(rec);
}

ServeResult ServingEngine::run() {
  ServeResult result;
  result.epochs.reserve(config_.epochs);
  for (index_t e = 0; e < config_.epochs; ++e)
    result.epochs.push_back(step_epoch());
  result.sessions_stepped = sessions_stepped_;
  result.peak_live_sessions = peak_live_;
  result.step_seconds = step_seconds_;
  result.resident_bytes = resident_bytes();
  result.high_water_bytes = high_water_bytes();
  result.loss_samples = run_loss_digest_.count();
  result.loss_p50_db = run_loss_digest_.quantile(0.50);
  result.loss_p90_db = run_loss_digest_.quantile(0.90);
  result.loss_p99_db = run_loss_digest_.quantile(0.99);
  result.loss_p999_db = run_loss_digest_.quantile(0.999);
  result.epoch_seconds_p50 = epoch_seconds_digest_.quantile(0.50);
  result.epoch_seconds_p99 = epoch_seconds_digest_.quantile(0.99);
  result.watchdog_tripped = watchdog_ && watchdog_->tripped();
  result.telemetry_records = sink_.records_written();
  return result;
}

std::string render_serving_csv(const std::vector<EpochReport>& epochs) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << "epoch,live_sessions,arrivals,departures,aligning_steps,"
        "tracking_steps,outages,realignments,claims,measurement_slots,"
        "loss_samples,mean_loss_db,p50_loss_db,p90_loss_db,p99_loss_db,"
        "p999_loss_db\n";
  for (const EpochReport& r : epochs) {
    os << r.epoch << ',' << r.live_sessions << ',' << r.arrivals << ','
       << r.departures << ',' << r.aligning_steps << ',' << r.tracking_steps
       << ',' << r.outages << ',' << r.realignments << ',' << r.claims << ','
       << r.measurement_slots << ',' << r.loss_samples << ','
       << r.mean_loss_db << ',' << r.p50_loss_db << ',' << r.p90_loss_db
       << ',' << r.p99_loss_db << ',' << r.p999_loss_db << '\n';
  }
  return os.str();
}

}  // namespace mmw::serve
