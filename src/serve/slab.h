// Pooled slab allocator for resident sessions.
//
// Why not a std::vector<UserSession>: the pool must absorb Poisson
// arrival/departure churn for millions of sessions with (a) no per-session
// heap traffic, (b) stable addresses (a stepping thread holds a reference
// while another site's churn admits users), and (c) O(live) deterministic
// iteration. It allocates whole slabs of `slab_capacity` sessions, never
// frees or moves them, and recycles dead slots through a LIFO free list —
// steady-state churn therefore touches the heap zero times, and the
// resident footprint is a high-water mark, not a function of churn history.
//
// Slots are dense integers slab·capacity + offset; each slab owns its own
// liveness bytes (not vector<bool>: adjacent slabs must be writable from
// different churn threads without sharing a bit-packed word).
//
// Determinism: allocate() order is a pure function of the allocate/release
// history (fresh slabs hand out ascending offsets; releases are reused
// LIFO), and iteration is ascending-slot within a slab — both independent
// of thread count, because churn for one pool is always single-threaded
// (the engine shards churn by site, one pool per site).
//
// Thread-safety: none inside the pool. The engine's phases provide it:
// churn mutates a pool from its site's one churn thread; the step phase
// only reads liveness and mutates distinct sessions from distinct slab
// shards.
#pragma once

#include <memory>
#include <vector>

#include "serve/session_state.h"

namespace mmw::serve {

class SessionPool {
 public:
  /// `slab_capacity` sessions per slab (the session-block sharding grain).
  explicit SessionPool(index_t slab_capacity);

  /// Claims a slot (growing by one slab when the free list is empty) and
  /// value-initializes its session. Returns the slot id.
  index_t allocate();

  /// Returns `slot` to the free list. Precondition: live(slot).
  void release(index_t slot);

  UserSession& operator[](index_t slot) {
    return slabs_[slot / slab_capacity_].cells[slot % slab_capacity_];
  }
  const UserSession& operator[](index_t slot) const {
    return slabs_[slot / slab_capacity_].cells[slot % slab_capacity_];
  }

  bool live(index_t slot) const {
    return slabs_[slot / slab_capacity_].live[slot % slab_capacity_] != 0;
  }

  index_t slab_capacity() const { return slab_capacity_; }
  index_t n_slabs() const { return slabs_.size(); }
  index_t capacity() const { return slabs_.size() * slab_capacity_; }
  index_t live_count() const { return live_count_; }
  index_t live_in_slab(index_t slab) const {
    return slabs_[slab].live_count;
  }

  /// Bytes currently owned by the pool: session cells, liveness bytes, and
  /// the free list's reserved storage. Monotone under churn (slabs are
  /// never returned), which is exactly the fixed-memory evidence the E9
  /// manifest records.
  std::size_t resident_bytes() const;

  /// High-water mark of resident_bytes() over the pool's lifetime.
  std::size_t high_water_bytes() const { return high_water_; }

  /// Calls f(slot, session) for every live session of `slab`, ascending
  /// slot order. The engine's step shards use the mutable form; f must not
  /// allocate or release.
  template <class F>
  void for_each_live_in_slab(index_t slab, F&& f) {
    Slab& s = slabs_[slab];
    const index_t base = slab * slab_capacity_;
    for (index_t i = 0; i < slab_capacity_; ++i)
      if (s.live[i] != 0) f(base + i, s.cells[i]);
  }
  template <class F>
  void for_each_live_in_slab(index_t slab, F&& f) const {
    const Slab& s = slabs_[slab];
    const index_t base = slab * slab_capacity_;
    for (index_t i = 0; i < slab_capacity_; ++i)
      if (s.live[i] != 0) f(base + i, s.cells[i]);
  }

  /// Ascending-slot iteration over every live session of the pool.
  template <class F>
  void for_each_live(F&& f) const {
    for (index_t slab = 0; slab < slabs_.size(); ++slab)
      for_each_live_in_slab(slab, f);
  }

 private:
  struct Slab {
    std::unique_ptr<UserSession[]> cells;
    std::unique_ptr<std::uint8_t[]> live;
    index_t live_count = 0;
  };

  void update_high_water();

  index_t slab_capacity_;
  std::vector<Slab> slabs_;
  std::vector<index_t> free_;  ///< dead slots, reused LIFO
  index_t live_count_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mmw::serve
