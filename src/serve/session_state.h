// Resident per-user state of the serving engine — the ONLY thing the
// engine keeps per session between epochs.
//
// The city-scale contract (DESIGN.md §13) is that resident memory is a hard
// per-session byte budget times the live-session count, independent of the
// array sizes, the codebook sizes, and the epoch count. So a UserSession
// holds no link, no codebook, no measurement records, and no N-dimensional
// vector: the channel is rebuilt on demand from the session's deterministic
// RNG identity stream (seed, site, user_key), and the covariance estimate
// lives in beam-space component form (estimation/beamspace.h) — at most
// kMaxComponents (codeword index, weight) pairs — instead of any {B, Q_r}
// factor, whose O(N·r) basis alone would blow the budget a thousand times
// over at N = 64.
//
// The struct is a trivially-copyable POD with no heap members so the slab
// pool (serve/slab.h) can hold millions of them in flat arrays with zero
// per-session allocations.
#pragma once

#include <cstdint>
#include <type_traits>

#include "linalg/common.h"

namespace mmw::serve {

/// Beam-space covariance components kept per session (r in the paper's
/// low-rank story; 6 covers the NYC multipath clusters with room to spare).
inline constexpr index_t kMaxComponents = 6;

/// Hard resident-memory budget per session, enforced at compile time below
/// and re-checked against the slab pool's accounting in the E9 bench
/// manifest. Headroom over sizeof(UserSession) is deliberate: it is the
/// budget a field addition must fit in before the slab math changes.
inline constexpr std::size_t kSessionByteBudget = 96;

/// Sentinel departure epoch: the session never leaves on its own.
inline constexpr std::uint32_t kNoDeparture = 0xffffffffu;

/// One resident alignment session. All randomness the session ever
/// consumes is derived from (master seed, its site, user_key, epoch) — no
/// field here feeds an RNG — so a session's trajectory is a pure function
/// of its own identity and the epoch clock, never of its neighbours
/// (the churn-invariance contract, tests/serve/serve_test.cpp).
struct UserSession {
  /// Per-site arrival ordinal, assigned serially at admission; the RNG
  /// identity key that regenerates the drop, the channel, and the sojourn.
  std::uint64_t user_key = 0;

  std::uint32_t birth_epoch = 0;
  /// First epoch the session no longer participates in (kNoDeparture =
  /// immortal). Drawn at admission from the identity stream.
  std::uint32_t departure_epoch = kNoDeparture;
  /// Measurement-slot ledger cursor: total training slots consumed, the
  /// serving analogue of mac::Session::measurements_taken().
  std::uint32_t cursor = 0;

  /// Largest mean pair gain over the codebook product (linear), fixed at
  /// admission — the grading oracle reduced to the one number loss needs.
  float optimal_gain = 0.0f;
  /// Mean pair gain of the claimed pair (linear; valid when !aligning).
  float claimed_gain = 0.0f;
  /// Effective noise variance 1/γ_eff with the serving pathloss folded in.
  float noise_var = 0.0f;
  /// While aligning: best probe energy observed so far (< 0 = none yet).
  /// While tracking: the claimed pair's trained energy — the outage
  /// reference of the collapse test.
  float trained_energy = -1.0f;

  /// Claimed (tracking) or best-so-far (aligning) beam pair.
  std::uint16_t tx_beam = 0;
  std::uint16_t rx_beam = 0;

  /// Beam-space covariance: comp_weight[i] on RX codeword comp_beam[i],
  /// entries [0, rank) strictly ascending by beam index (the canonical
  /// order of estimation/beamspace.h).
  std::uint16_t comp_beam[kMaxComponents] = {};

  /// 1 while the session spends epochs on alignment slots; 0 once it has
  /// claimed a pair and dropped to the O(1) tracking fast path.
  std::uint8_t aligning = 1;
  std::uint8_t slots_aligned = 0;  ///< alignment slots completed this phase
  std::uint8_t rank = 0;           ///< live beam-space components
  std::uint8_t realigns = 0;       ///< outage-triggered re-alignments (sat.)

  float comp_weight[kMaxComponents] = {};
};

static_assert(std::is_trivially_copyable_v<UserSession>);
static_assert(sizeof(UserSession) <= kSessionByteBudget,
              "UserSession outgrew the per-session resident byte budget");

}  // namespace mmw::serve
