#include "serve/slab.h"

namespace mmw::serve {

SessionPool::SessionPool(index_t slab_capacity)
    : slab_capacity_(slab_capacity) {
  MMW_REQUIRE_MSG(slab_capacity > 0, "slab capacity must be positive");
}

std::size_t SessionPool::resident_bytes() const {
  return slabs_.size() * slab_capacity_ *
             (sizeof(UserSession) + sizeof(std::uint8_t)) +
         slabs_.capacity() * sizeof(Slab) +
         free_.capacity() * sizeof(index_t);
}

void SessionPool::update_high_water() {
  const std::size_t bytes = resident_bytes();
  if (bytes > high_water_) high_water_ = bytes;
}

index_t SessionPool::allocate() {
  if (free_.empty()) {
    Slab slab;
    slab.cells = std::make_unique<UserSession[]>(slab_capacity_);
    slab.live = std::make_unique<std::uint8_t[]>(slab_capacity_);
    const index_t base = slabs_.size() * slab_capacity_;
    slabs_.push_back(std::move(slab));
    // Descending push so LIFO pops hand out ascending offsets.
    free_.reserve(free_.size() + slab_capacity_);
    for (index_t i = slab_capacity_; i > 0; --i)
      free_.push_back(base + i - 1);
    update_high_water();
  }
  const index_t slot = free_.back();
  free_.pop_back();
  Slab& s = slabs_[slot / slab_capacity_];
  s.cells[slot % slab_capacity_] = UserSession{};
  s.live[slot % slab_capacity_] = 1;
  ++s.live_count;
  ++live_count_;
  return slot;
}

void SessionPool::release(index_t slot) {
  MMW_REQUIRE_MSG(slot < capacity() && live(slot),
                  "releasing a slot that is not live");
  Slab& s = slabs_[slot / slab_capacity_];
  s.live[slot % slab_capacity_] = 0;
  --s.live_count;
  --live_count_;
  free_.push_back(slot);
  update_high_water();  // free_ may have grown past its reservation
}

}  // namespace mmw::serve
