// The city-scale serving engine: a long-running, epoch-driven alignment
// service over a sim::Topology of sites, holding millions of resident
// UserSessions at a fixed per-session byte budget (DESIGN.md §13).
//
// Each tick (step_epoch) runs two phases:
//
//  1. CHURN, sharded by site: sessions past their departure epoch release
//     their slab slot; Poisson(arrival_rate) new users are admitted per
//     site. Admission realizes the user once from its identity stream
//     (drop → channel → sojourn), reduces the grading oracle to one float
//     (the best mean pair gain), and keeps nothing else resident.
//
//  2. STEP, sharded by (site × slab): every live session advances one
//     epoch. An ALIGNING session rebuilds its link from the identity
//     stream, spends one measurement slot (probes_per_slot matched-filter
//     probes through mac::probe_energy — the same chain as mac::Session),
//     and folds the observed energies into its beam-space covariance; after
//     align_epochs slots it claims its best pair and drops to TRACKING. A
//     tracking session costs O(track_fades) with NO link rebuild: a
//     matched-filter probe of the claimed pair is distribution-equivalent
//     to drawing z ~ CN(0, G + σ²) per fade, so the fast path samples that
//     law directly and applies the mac::Session collapse test; an outage
//     re-enters alignment warm (the beam-space covariance survives).
//
// Determinism contract (the fig5–8 contract, extended to churn): every
// random quantity is drawn from a shared-state-free stream keyed by
// (seed, site, user_key, epoch) — identity key_c = 0, epoch streams
// key_c = epoch + 1, arrival counts on a separate per-site key_a lane — so
// a session's trajectory depends only on its own identity and the epoch
// clock. Metrics are per-shard MetricFrames merged in shard order.
// Consequences, enforced by tests/serve/serve_test.cpp: rendered CSVs are
// byte-identical across thread counts and obs on/off, and arrivals or
// departures of OTHER sessions never perturb a survivor (churn
// invariance).
//
// Memory contract: resident state is the slab pools (sizeof(UserSession) +
// one liveness byte per slot, plus free-list/slab bookkeeping) — O(peak
// sessions), no N×N lifts, no per-trial result vectors; metrics are O(1)
// per shard. resident_bytes()/high_water_bytes() report the exact
// accounting, recorded in every E9 manifest next to peak RSS.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "serve/slab.h"
#include "sim/scenario.h"
#include "sim/topology.h"

namespace mmw::serve {

/// How an aligning session turns a slot's probe energies into its resident
/// beam-space covariance.
enum class EstimatorKind {
  /// Moment excess (energy − noise)₊ per probed beam, merged with
  /// exponential forgetting — allocation-light, the serving default.
  kBeamSpace,
  /// Per-slot regularized ML solve warm-started from the resident prior
  /// (estimation::estimate_covariance_ml_warm), compressed back to beam
  /// space. The paper-faithful estimator; ~10× the alignment-slot cost.
  kWarmMl,
};

struct ServeConfig {
  /// Channel/codebook/gamma/fades knobs plus seed and threads. `trials` is
  /// ignored — the serving engine has sessions, not trials.
  sim::Scenario scenario;
  /// Site layout; topology.cells is the site count, users_per_cell is
  /// ignored (population comes from initial_sessions + churn).
  sim::TopologyConfig topology;

  /// Sessions admitted (round-robin over sites) by the first tick's churn
  /// phase, before any arrivals.
  index_t initial_sessions = 0;
  /// Ticks run() executes.
  index_t epochs = 8;
  /// Poisson mean arrivals per site per epoch (0 = closed population).
  real arrival_rate = 0.0;
  /// Mean sojourn (epochs) drawn exponentially at admission; 0 = immortal.
  real mean_sojourn_epochs = 0.0;

  /// Alignment slots before a session claims its pair and starts tracking.
  index_t align_epochs = 2;
  /// Matched-filter probes per alignment slot (the paper's J).
  index_t probes_per_slot = 4;
  /// Fades averaged per tracking-epoch verification probe.
  index_t track_fades = 2;
  /// Outage declaration: tracked energy fell this many dB below the
  /// trained energy (mac::Session::RealignmentPolicy semantics).
  real collapse_db = 10.0;
  /// Beam-space forgetting factor ρ: prior weights scale by ρ each
  /// alignment slot (1 = accumulate forever).
  real forgetting = 0.7;
  /// Per-slot Bernoulli blockage probability (alignment and tracking).
  real blockage_probability = 0.0;

  EstimatorKind estimator = EstimatorKind::kBeamSpace;

  /// Sessions per slab — the allocator grain AND the step-shard grain.
  index_t session_block = 4096;
};

/// Streaming per-epoch aggregate (merged MetricFrames; O(1) memory).
struct EpochReport {
  index_t epoch = 0;
  std::uint64_t live_sessions = 0;  ///< after churn, i.e. sessions stepped
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t aligning_steps = 0;
  std::uint64_t tracking_steps = 0;
  std::uint64_t outages = 0;        ///< collapse-test failures this epoch
  std::uint64_t measurement_slots = 0;  ///< training slots spent this epoch
  std::uint64_t loss_samples = 0;   ///< tracking sessions contributing loss
  real mean_loss_db = 0.0;          ///< mean claimed-vs-optimal SNR loss
  real p95_loss_db = 0.0;           ///< bucketized (histogram upper bound)
};

struct ServeResult {
  std::vector<EpochReport> epochs;
  std::uint64_t sessions_stepped = 0;  ///< Σ live_sessions over epochs
  std::uint64_t peak_live_sessions = 0;
  double step_seconds = 0.0;  ///< wall time of the step phases only
  std::size_t resident_bytes = 0;      ///< Σ pool resident_bytes at end
  std::size_t high_water_bytes = 0;    ///< Σ pool high-water bytes
};

class ServingEngine {
 public:
  /// Builds topology, codebooks, and one empty slab pool per site. The
  /// thread pool (scenario.threads, 0 = auto) is created once here and
  /// reused by every tick.
  explicit ServingEngine(ServeConfig config);

  /// One tick: churn then step, as described above. Epochs are numbered
  /// from 0; the first call admits initial_sessions.
  EpochReport step_epoch();

  /// Runs config.epochs ticks and returns the streamed reports + totals.
  ServeResult run();

  const ServeConfig& config() const { return config_; }
  index_t current_epoch() const { return epoch_; }
  index_t n_sites() const { return pools_.size(); }
  index_t live_sessions() const;
  std::uint64_t peak_live_sessions() const { return peak_live_; }
  std::uint64_t sessions_stepped() const { return sessions_stepped_; }
  double step_seconds() const { return step_seconds_; }

  /// Resident-memory accounting summed over every site pool.
  std::size_t resident_bytes() const;
  std::size_t high_water_bytes() const;

  /// The live session with this identity, or nullptr. O(site capacity) —
  /// a test/debug accessor, not a serving-path API.
  const UserSession* find_session(index_t site, std::uint64_t user_key) const;

  /// Ascending (site, slot) iteration over every live session.
  template <class F>
  void for_each_session(F&& f) const {
    for (index_t site = 0; site < pools_.size(); ++site)
      pools_[site].for_each_live(
          [&](index_t, const UserSession& s) { f(site, s); });
  }

 private:
  struct MetricFrame;
  struct Workspace;

  void churn_site(index_t site, MetricFrame& frame);
  void admit_one(index_t site, MetricFrame& frame);
  void step_shard(index_t site, index_t slab, MetricFrame& frame);
  void step_align(index_t site, UserSession& s, MetricFrame& frame,
                  Workspace& ws);
  void step_track(index_t site, UserSession& s, MetricFrame& frame);
  void publish_obs(const MetricFrame& total) const;

  ServeConfig config_;
  sim::Topology topology_;
  sim::CodebookPair codebooks_;
  real collapse_scale_ = 0.1;  ///< 10^(−collapse_db/10)
  std::vector<SessionPool> pools_;            ///< one per site
  std::vector<std::uint64_t> next_user_key_;  ///< per-site arrival ordinal
  index_t epoch_ = 0;
  index_t threads_ = 1;
  std::unique_ptr<core::ThreadPool> thread_pool_;  ///< null when serial

  std::uint64_t peak_live_ = 0;
  std::uint64_t sessions_stepped_ = 0;
  double step_seconds_ = 0.0;

  /// Per-epoch scratch, reused across ticks (no per-epoch heap growth
  /// once the shard count stabilizes).
  std::vector<std::pair<index_t, index_t>> shards_;  ///< (site, slab)
};

/// Renders epoch reports as the E9 CSV (fixed 6-digit reals — the byte
/// format the determinism tests compare).
std::string render_serving_csv(const std::vector<EpochReport>& epochs);

}  // namespace mmw::serve
