// The city-scale serving engine: a long-running, epoch-driven alignment
// service over a sim::Topology of sites, holding millions of resident
// UserSessions at a fixed per-session byte budget (DESIGN.md §13).
//
// Each tick (step_epoch) runs two phases:
//
//  1. CHURN, sharded by site: sessions past their departure epoch release
//     their slab slot; Poisson(arrival_rate) new users are admitted per
//     site. Admission realizes the user once from its identity stream
//     (drop → channel → sojourn), reduces the grading oracle to one float
//     (the best mean pair gain), and keeps nothing else resident.
//
//  2. STEP, sharded by (site × slab): every live session advances one
//     epoch. An ALIGNING session rebuilds its link from the identity
//     stream, spends one measurement slot (probes_per_slot matched-filter
//     probes through mac::probe_energy — the same chain as mac::Session),
//     and folds the observed energies into its beam-space covariance; after
//     align_epochs slots it claims its best pair and drops to TRACKING. A
//     tracking session costs O(track_fades) with NO link rebuild: a
//     matched-filter probe of the claimed pair is distribution-equivalent
//     to drawing z ~ CN(0, G + σ²) per fade, so the fast path samples that
//     law directly and applies the mac::Session collapse test; an outage
//     re-enters alignment warm (the beam-space covariance survives).
//
// Determinism contract (the fig5–8 contract, extended to churn): every
// random quantity is drawn from a shared-state-free stream keyed by
// (seed, site, user_key, epoch) — identity key_c = 0, epoch streams
// key_c = epoch + 1, arrival counts on a separate per-site key_a lane — so
// a session's trajectory depends only on its own identity and the epoch
// clock. Metrics are per-shard MetricFrames merged in shard order.
// Consequences, enforced by tests/serve/serve_test.cpp: rendered CSVs are
// byte-identical across thread counts and obs on/off, and arrivals or
// departures of OTHER sessions never perturb a survivor (churn
// invariance).
//
// Memory contract: resident state is the slab pools (sizeof(UserSession) +
// one liveness byte per slot, plus free-list/slab bookkeeping) — O(peak
// sessions), no N×N lifts, no per-trial result vectors; metrics are O(1)
// per shard. resident_bytes()/high_water_bytes() report the exact
// accounting, recorded in every E9 manifest next to peak RSS.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "obs/digest.h"
#include "obs/telemetry.h"
#include "obs/watchdog.h"
#include "serve/slab.h"
#include "sim/scenario.h"
#include "sim/topology.h"
#include "track/policy.h"

namespace mmw::serve {

/// How an aligning session turns a slot's probe energies into its resident
/// beam-space covariance.
enum class EstimatorKind {
  /// Moment excess (energy − noise)₊ per probed beam, merged with
  /// exponential forgetting — allocation-light, the serving default.
  kBeamSpace,
  /// Per-slot regularized ML solve warm-started from the resident prior
  /// (estimation::estimate_covariance_ml_warm), compressed back to beam
  /// space. The paper-faithful estimator; ~10× the alignment-slot cost.
  kWarmMl,
};

/// Live-telemetry knobs (DESIGN.md §14). All of it only OBSERVES: enabling
/// any field cannot change engine results (the CSV-equality contract).
struct TelemetryConfig {
  /// Per-epoch NDJSON export path (schema mmw.telemetry/1); "" disables.
  std::string ndjson_path;
  /// health.json path for the watchdog; "" disables the file.
  std::string health_path;
  /// Run the stall-detection monitor thread.
  bool watchdog = false;
  double watchdog_poll_seconds = 0.25;
  double watchdog_stall_multiplier = 8.0;
  double watchdog_min_stall_seconds = 2.0;
  /// Dump a flight-recorder snapshot when one epoch's outage count reaches
  /// this threshold (first burst only; 0 disables).
  std::uint64_t outage_burst_dump_threshold = 0;

  /// Test hook: sleep this long inside the FIRST step shard of epoch
  /// `stall_test_epoch` (0 disables). Wall-clock only — it never touches
  /// an Rng or session state, so results stay byte-identical; exists so
  /// watchdog trips are testable without a real deadlock.
  double stall_test_seconds = 0.0;
  index_t stall_test_epoch = 0;
};

struct ServeConfig {
  /// Channel/codebook/gamma/fades knobs plus seed and threads. `trials` is
  /// ignored — the serving engine has sessions, not trials.
  sim::Scenario scenario;
  /// Site layout; topology.cells is the site count, users_per_cell is
  /// ignored (population comes from initial_sessions + churn).
  sim::TopologyConfig topology;

  /// Sessions admitted (round-robin over sites) by the first tick's churn
  /// phase, before any arrivals.
  index_t initial_sessions = 0;
  /// Ticks run() executes.
  index_t epochs = 8;
  /// Poisson mean arrivals per site per epoch (0 = closed population).
  real arrival_rate = 0.0;
  /// Mean sojourn (epochs) drawn exponentially at admission; 0 = immortal.
  real mean_sojourn_epochs = 0.0;

  /// Alignment slots before a session claims its pair and starts tracking.
  index_t align_epochs = 2;
  /// Matched-filter probes per alignment slot (the paper's J).
  index_t probes_per_slot = 4;
  /// Fades averaged per tracking-epoch verification probe.
  index_t track_fades = 2;
  /// Outage declaration: tracked energy fell this many dB below the
  /// trained energy (mac::Session::RealignmentPolicy semantics).
  real collapse_db = 10.0;
  /// Beam-space forgetting factor ρ: prior weights scale by ρ each
  /// alignment slot (1 = accumulate forever).
  real forgetting = 0.7;
  /// Per-slot Bernoulli blockage probability (alignment and tracking).
  real blockage_probability = 0.0;

  EstimatorKind estimator = EstimatorKind::kBeamSpace;

  /// How alignment slots pick their exploration probes (track/policy.h).
  /// The default cursor sweep is the legacy PR-9 behavior — every golden
  /// E9 byte is unchanged unless a non-default policy is selected. The
  /// non-default policies make re-aligning residents behave like the
  /// corresponding trackers: kNeighborhood re-scans a widening window
  /// around the last claimed RX beam, kBanditUcb spreads exploration
  /// probes by hash instead of sequentially.
  track::ProbePolicy probe_policy = track::ProbePolicy::kCursorSweep;

  /// Sessions per slab — the allocator grain AND the step-shard grain.
  index_t session_block = 4096;

  TelemetryConfig telemetry;
};

/// Streaming per-epoch aggregate (merged MetricFrames; O(1) memory).
/// Loss quantiles come from the shard-merged QuantileDigest, so the tail
/// (p99/p999) is resolved to ~1/(2·256) rank error rather than histogram
/// bucket bounds; all fields are deterministic across thread counts.
struct EpochReport {
  index_t epoch = 0;
  std::uint64_t live_sessions = 0;  ///< after churn, i.e. sessions stepped
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t aligning_steps = 0;
  std::uint64_t tracking_steps = 0;
  std::uint64_t outages = 0;        ///< collapse-test failures this epoch
  std::uint64_t realignments = 0;   ///< claims by previously-outaged sessions
  std::uint64_t claims = 0;         ///< beam pairs claimed this epoch
  std::uint64_t measurement_slots = 0;  ///< training slots spent this epoch
  std::uint64_t estimator_nonconverged = 0;  ///< kWarmMl ladder rung
  std::uint64_t loss_samples = 0;   ///< tracking sessions contributing loss
  real mean_loss_db = 0.0;          ///< mean claimed-vs-optimal SNR loss
  real p50_loss_db = 0.0;
  real p90_loss_db = 0.0;
  real p99_loss_db = 0.0;
  real p999_loss_db = 0.0;
  real max_loss_db = 0.0;
};

struct ServeResult {
  std::vector<EpochReport> epochs;
  std::uint64_t sessions_stepped = 0;  ///< Σ live_sessions over epochs
  std::uint64_t peak_live_sessions = 0;
  double step_seconds = 0.0;  ///< wall time of the step phases only
  std::size_t resident_bytes = 0;      ///< Σ pool resident_bytes at end
  std::size_t high_water_bytes = 0;    ///< Σ pool high-water bytes
  /// Run-level loss quantiles (every epoch's samples, one digest).
  std::uint64_t loss_samples = 0;
  real loss_p50_db = 0.0;
  real loss_p90_db = 0.0;
  real loss_p99_db = 0.0;
  real loss_p999_db = 0.0;
  /// Epoch wall-time quantiles over the run (timing — not deterministic).
  double epoch_seconds_p50 = 0.0;
  double epoch_seconds_p99 = 0.0;
  bool watchdog_tripped = false;
  std::uint64_t telemetry_records = 0;  ///< NDJSON lines written
};

class ServingEngine {
 public:
  /// Builds topology, codebooks, and one empty slab pool per site. The
  /// thread pool (scenario.threads, 0 = auto) is created once here and
  /// reused by every tick.
  explicit ServingEngine(ServeConfig config);

  /// One tick: churn then step, as described above. Epochs are numbered
  /// from 0; the first call admits initial_sessions.
  EpochReport step_epoch();

  /// Runs config.epochs ticks and returns the streamed reports + totals.
  ServeResult run();

  /// The watchdog, when config.telemetry.watchdog is set (else nullptr).
  /// Started in the constructor, stopped at destruction.
  const obs::Watchdog* watchdog() const { return watchdog_.get(); }

  /// NDJSON records written so far (0 when telemetry.ndjson_path is "").
  std::uint64_t telemetry_records() const { return sink_.records_written(); }

  const ServeConfig& config() const { return config_; }
  index_t current_epoch() const { return epoch_; }
  index_t n_sites() const { return pools_.size(); }
  index_t live_sessions() const;
  std::uint64_t peak_live_sessions() const { return peak_live_; }
  std::uint64_t sessions_stepped() const { return sessions_stepped_; }
  double step_seconds() const { return step_seconds_; }

  /// Resident-memory accounting summed over every site pool.
  std::size_t resident_bytes() const;
  std::size_t high_water_bytes() const;

  /// The live session with this identity, or nullptr. O(site capacity) —
  /// a test/debug accessor, not a serving-path API.
  const UserSession* find_session(index_t site, std::uint64_t user_key) const;

  /// Ascending (site, slot) iteration over every live session.
  template <class F>
  void for_each_session(F&& f) const {
    for (index_t site = 0; site < pools_.size(); ++site)
      pools_[site].for_each_live(
          [&](index_t, const UserSession& s) { f(site, s); });
  }

 private:
  struct MetricFrame;
  struct Workspace;

  void churn_site(index_t site, MetricFrame& frame);
  void admit_one(index_t site, MetricFrame& frame);
  void step_shard(index_t site, index_t slab, MetricFrame& frame);
  void step_align(index_t site, UserSession& s, MetricFrame& frame,
                  Workspace& ws);
  void step_track(index_t site, UserSession& s, MetricFrame& frame);
  void publish_obs(const MetricFrame& total) const;
  void emit_telemetry(const EpochReport& report, double epoch_seconds);

  ServeConfig config_;
  sim::Topology topology_;
  sim::CodebookPair codebooks_;
  real collapse_scale_ = 0.1;  ///< 10^(−collapse_db/10)
  std::vector<SessionPool> pools_;            ///< one per site
  std::vector<std::uint64_t> next_user_key_;  ///< per-site arrival ordinal
  index_t epoch_ = 0;
  index_t threads_ = 1;
  std::unique_ptr<core::ThreadPool> thread_pool_;  ///< null when serial

  std::uint64_t peak_live_ = 0;
  std::uint64_t sessions_stepped_ = 0;
  double step_seconds_ = 0.0;

  /// Per-epoch scratch, reused across ticks (no per-epoch heap growth
  /// once the shard count stabilizes).
  std::vector<std::pair<index_t, index_t>> shards_;  ///< (site, slab)

  // -- telemetry plane (observe-only; DESIGN.md §14) ----------------------
  obs::TelemetrySink sink_;
  obs::QuantileDigest run_loss_digest_;      ///< deterministic, all epochs
  obs::QuantileDigest epoch_seconds_digest_; ///< timing only
  /// Watchdog progress heartbeat: one tick per completed shard + epoch.
  std::atomic<std::uint64_t> progress_{0};
  /// Epoch-boundary copies the watchdog's StatusFn may read (live_sessions()
  /// walks the pools and is not safe concurrently with churn, and epoch_
  /// itself is written by the stepping thread).
  std::atomic<std::uint64_t> health_live_{0};
  std::atomic<std::uint64_t> health_epoch_{0};
  /// Pool busy/idle counter values at the previous epoch boundary, for the
  /// per-epoch deltas in the timing sub-object.
  std::uint64_t prev_pool_busy_us_ = 0;
  std::uint64_t prev_pool_idle_us_ = 0;
  bool outage_burst_dumped_ = false;  ///< first-burst latch
  /// Last member: its monitor thread reads the atomics above (and the
  /// pool's heartbeat), so it must stop before anything else destructs.
  std::unique_ptr<obs::Watchdog> watchdog_;
};

/// Renders epoch reports as the E9 CSV (fixed 6-digit reals — the byte
/// format the determinism tests compare).
std::string render_serving_csv(const std::vector<EpochReport>& epochs);

}  // namespace mmw::serve
