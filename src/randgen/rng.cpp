#include "randgen/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mmw::randgen {

Rng Rng::fork() {
  // A fresh 64-bit draw seeds an independent child engine; mt19937_64
  // streams seeded from distinct values are statistically independent for
  // simulation purposes.
  return Rng(engine_());
}

namespace {

/// SplitMix64 step (Steele, Lea & Flood 2014): advance the state by the
/// golden gamma scaled by (key+1), then run the mixing finalizer. The
/// finalizer is a bijection with strong avalanche, so nearby (state, key)
/// pairs yield unrelated outputs. Key is offset by 1 so key 0 is not a
/// plain finalization of the state itself.
std::uint64_t splitmix_step(std::uint64_t state, std::uint64_t key) {
  std::uint64_t z = state + (key + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

}  // namespace

Rng Rng::stream(std::uint64_t master_seed, std::uint64_t stream_index) {
  return Rng(splitmix_step(master_seed, stream_index));
}

Rng Rng::stream(std::uint64_t master_seed, std::uint64_t key_a,
                std::uint64_t key_b, std::uint64_t key_c) {
  // One chained step per key: each key perturbs the running state through
  // the full avalanche before the next enters, so (a, b, c) and any
  // permutation or prefix of it land on unrelated engines. The extra mixing
  // rounds also keep three-key streams disjoint from single-key ones.
  return Rng(splitmix_step(
      splitmix_step(splitmix_step(master_seed, key_a), key_b), key_c));
}

real Rng::uniform(real lo, real hi) {
  MMW_REQUIRE(lo <= hi);
  return std::uniform_real_distribution<real>(lo, hi)(engine_);
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  MMW_REQUIRE(lo <= hi);
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

real Rng::normal(real mean, real stddev) {
  MMW_REQUIRE(stddev >= 0.0);
  return std::normal_distribution<real>(mean, stddev)(engine_);
}

cx Rng::complex_normal(real variance) {
  MMW_REQUIRE(variance >= 0.0);
  const real s = std::sqrt(variance / 2.0);
  return cx{normal(0.0, s), normal(0.0, s)};
}

real Rng::chi_squared(real k) {
  MMW_REQUIRE(k > 0.0);
  return std::chi_squared_distribution<real>(k)(engine_);
}

real Rng::exponential(real mean) {
  MMW_REQUIRE(mean > 0.0);
  return std::exponential_distribution<real>(1.0 / mean)(engine_);
}

std::uint64_t Rng::poisson(real mean) {
  MMW_REQUIRE(mean > 0.0);
  return std::poisson_distribution<std::uint64_t>(mean)(engine_);
}

real Rng::lognormal(real mu, real sigma) {
  MMW_REQUIRE(sigma >= 0.0);
  return std::lognormal_distribution<real>(mu, sigma)(engine_);
}

real Rng::angle() { return uniform(0.0, 2.0 * M_PI); }

linalg::Vector Rng::complex_gaussian_vector(index_t n, real variance) {
  linalg::Vector v(n);
  for (index_t i = 0; i < n; ++i) v[i] = complex_normal(variance);
  return v;
}

linalg::Matrix Rng::complex_gaussian_matrix(index_t rows, index_t cols,
                                            real variance) {
  linalg::Matrix m(rows, cols);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) m(i, j) = complex_normal(variance);
  return m;
}

linalg::Vector Rng::random_unit_vector(index_t n) {
  MMW_REQUIRE(n > 0);
  linalg::Vector v = complex_gaussian_vector(n);
  while (v.norm() == 0.0) v = complex_gaussian_vector(n);
  return v.normalized();
}

std::vector<index_t> Rng::sample_without_replacement(index_t n, index_t k) {
  MMW_REQUIRE(k <= n);
  // Partial Fisher-Yates: only the first k positions are needed.
  std::vector<index_t> pool(n);
  std::iota(pool.begin(), pool.end(), index_t{0});
  for (index_t i = 0; i < k; ++i) {
    const index_t j = static_cast<index_t>(uniform_int(i, n - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<index_t> Rng::permutation(index_t n) {
  return sample_without_replacement(n, n);
}

}  // namespace mmw::randgen
