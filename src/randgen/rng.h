// Seeded random number generation for reproducible Monte-Carlo simulation.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mmw::randgen {

/// Deterministic random source. Every stochastic component in the library
/// takes an Rng& explicitly — there is no hidden global state — so any
/// simulation is reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child stream by drawing from this engine; the
  /// child is reproducible but the *parent* advances, so fork() chains are
  /// inherently sequential. For parallel work use stream() instead.
  Rng fork();

  /// Derives stream `stream_index` of `master_seed` without any shared
  /// state: the seed is a SplitMix64 finalization of
  /// master_seed + (stream_index+1)·golden-gamma, so any (seed, index)
  /// pair maps to the same engine no matter which thread asks, in what
  /// order, or how many streams exist. This is what gives the Monte-Carlo
  /// drivers bit-exact results independent of thread count (DESIGN.md §7).
  static Rng stream(std::uint64_t master_seed, std::uint64_t stream_index);

  /// Three-key variant for the multi-cell engine: an independent stream per
  /// (key_a, key_b, key_c) — typically (cell, user, trial) — derived by
  /// chaining one SplitMix64 finalization per key. Like the single-key
  /// overload it needs no shared state, so any shard can rebuild any other
  /// shard's stream; the chaining makes the map injective in practice
  /// (each step is a bijection of the running state, keys enter one at a
  /// time), and distinct from every single-key stream of the same seed.
  static Rng stream(std::uint64_t master_seed, std::uint64_t key_a,
                    std::uint64_t key_b, std::uint64_t key_c);

  /// Uniform real in [lo, hi).
  real uniform(real lo = 0.0, real hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// N(mean, stddev²) real Gaussian.
  real normal(real mean = 0.0, real stddev = 1.0);

  /// Circularly-symmetric complex Gaussian CN(0, variance):
  /// real and imaginary parts are each N(0, variance/2), so E|x|² = variance.
  cx complex_normal(real variance = 1.0);

  /// Chi-squared with k degrees of freedom.
  real chi_squared(real k);

  /// Exponential with the given mean.
  real exponential(real mean);

  /// Poisson with the given mean.
  std::uint64_t poisson(real mean);

  /// Lognormal: exp(N(mu, sigma²)).
  real lognormal(real mu, real sigma);

  /// Uniform angle in [0, 2π).
  real angle();

  /// Vector of iid CN(0, variance) entries.
  linalg::Vector complex_gaussian_vector(index_t n, real variance = 1.0);

  /// Matrix of iid CN(0, variance) entries.
  linalg::Matrix complex_gaussian_matrix(index_t rows, index_t cols,
                                         real variance = 1.0);

  /// Random unit-norm complex vector (Haar-uniform on the sphere).
  linalg::Vector random_unit_vector(index_t n);

  /// Uniformly random k-subset of {0, …, n−1}, in random order.
  /// Precondition: k ≤ n.
  std::vector<index_t> sample_without_replacement(index_t n, index_t k);

  /// Random permutation of {0, …, n−1}.
  std::vector<index_t> permutation(index_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mmw::randgen
