// The RNG key-lane registry: every reserved key_a range of the three-key
// Rng::stream(seed, key_a, key_b, key_c) partition, in one place.
//
// Determinism across the repo rests on stream disjointness: two subsystems
// that draw from the same (seed, key_a, key_b, key_c) tuple would silently
// correlate, and a lane collision is invisible until a statistic drifts.
// This header names every reserved lane as a [base, base + span) interval
// of key_a values; tests/randgen/keylanes_test.cpp asserts the intervals
// are pairwise disjoint, so adding a lane that overlaps an existing one is
// a test failure, not a latent bug. The same table is documented in
// DESIGN.md §10 (Conventions).
//
// Unreserved key_a space (experiment drivers use key_a = trial index with
// small key_b/key_c) lives far below every reserved base; the reserved
// bases sit in the upper half of the 64-bit key space precisely so trial
// counts can never walk into them.
#pragma once

#include <cstdint>

namespace mmw::randgen::lanes {

/// One reserved key_a interval [base, base + span).
struct KeyLane {
  const char* name;
  std::uint64_t base;
  std::uint64_t span;
};

// -- serving engine (DESIGN.md §13) -----------------------------------------
// Sites interleave two lanes from key_a = 0: per-user randomness on 2·site
// (key_b = user_key; key_c = 0 the identity stream, key_c = e + 1 the epoch-e
// measurement stream) and per-site churn on 2·site + 1 (key_b = 0, key_c = e
// the epoch-e arrival count). Experiment drivers' trial streams share this
// low region by construction (key_a = trial), which is safe because the
// serving engine and the Monte-Carlo drivers never run under the same master
// seed in one process — but every OTHER subsystem must stay clear of it.
inline constexpr std::uint64_t kServeLaneBase = 0;
inline constexpr std::uint64_t kServeLaneSpan = 1ULL << 33;  // 2^32 sites

inline constexpr std::uint64_t serve_user_lane(std::uint64_t site) {
  return kServeLaneBase + 2 * site;
}
inline constexpr std::uint64_t serve_churn_lane(std::uint64_t site) {
  return kServeLaneBase + 2 * site + 1;
}

// -- fault injection (DESIGN.md §11) ----------------------------------------
// Fault plans draw from key_a = kFaultLaneBase + entity (key_b = trial,
// key_c = 0); fault::kFaultKeyBase aliases this constant.
inline constexpr std::uint64_t kFaultLaneBase = 0xFA17'0000'0000'0000ULL;
inline constexpr std::uint64_t kFaultLaneSpan = 1ULL << 32;

// -- temporal tracking & mobility (DESIGN.md §15) ---------------------------
// Channel evolution: epoch-k innovations of user u served by site s come
// from stream(seed, kTemporalLaneBase + s, u, k) — one lane per site so a
// handover re-enters a DIFFERENT site's evolution without replaying the old
// one.
inline constexpr std::uint64_t kTemporalLaneBase = 0x7E40'0000'0000'0000ULL;
inline constexpr std::uint64_t kTemporalLaneSpan = 1ULL << 32;

inline constexpr std::uint64_t temporal_lane(std::uint64_t site) {
  return kTemporalLaneBase + site;
}

// Mobility trajectories: waypoint w of user u comes from
// stream(seed, kTrajectoryLane, u, w). A single key_a value — users and
// waypoints are the remaining two keys.
inline constexpr std::uint64_t kTrajectoryLane = 0x7E41'0000'0000'0000ULL;

// Base link identity of the (user, site) pair in a tracking run:
// stream(seed, kTrackLinkLaneBase + site, user, 0) draws the path geometry
// the evolution then perturbs.
inline constexpr std::uint64_t kTrackLinkLaneBase = 0x7E42'0000'0000'0000ULL;
inline constexpr std::uint64_t kTrackLinkLaneSpan = 1ULL << 32;

inline constexpr std::uint64_t track_link_lane(std::uint64_t site) {
  return kTrackLinkLaneBase + site;
}

// Tracker measurement noise: epoch-e probes of user u under tracker kind t
// come from stream(seed, kTrackMeasureLaneBase + t, u, e). Keyed by tracker
// so trackers draw INDEPENDENT measurement noise while grading against the
// SAME channel evolution (the temporal lane above is tracker-blind).
inline constexpr std::uint64_t kTrackMeasureLaneBase =
    0x7E43'0000'0000'0000ULL;
inline constexpr std::uint64_t kTrackMeasureLaneSpan = 1ULL << 32;

inline constexpr std::uint64_t track_measure_lane(std::uint64_t tracker) {
  return kTrackMeasureLaneBase + tracker;
}

/// The registry, one entry per reserved interval. Tests iterate this table;
/// every new lane MUST be added here (and to the DESIGN.md §10 table).
inline constexpr KeyLane kReservedLanes[] = {
    {"serve", kServeLaneBase, kServeLaneSpan},
    {"fault", kFaultLaneBase, kFaultLaneSpan},
    {"temporal", kTemporalLaneBase, kTemporalLaneSpan},
    {"trajectory", kTrajectoryLane, 1},
    {"track_link", kTrackLinkLaneBase, kTrackLinkLaneSpan},
    {"track_measure", kTrackMeasureLaneBase, kTrackMeasureLaneSpan},
};

}  // namespace mmw::randgen::lanes
