// Batched structure-of-arrays scoring kernels with runtime SIMD dispatch.
//
// The per-slot hot path of every alignment strategy is "score all |V|
// codewords against one covariance estimate". Done codeword-by-codeword
// through Vector temporaries (the pre-PR-7 path) that is a chain of short
// dot products the compiler cannot batch. This layer restructures the pass
// into split-complex (separate real/imaginary planes) structure-of-arrays
// form so one kernel sweep produces every codeword's score, vectorizing
// ACROSS codewords — each score's own reduction keeps the exact sequential
// accumulation order of the scalar code, which is what makes the tiers
// bit-identical (see "Numeric equivalence" below and DESIGN.md §12).
//
// Dispatch: the implementation tier (AVX2 or portable scalar) is decided
// once, at first use, from CPUID plus the MMW_KERNELS environment override
// (`scalar` | `avx2` | `auto`), and recorded in run manifests. There is no
// per-call branching beyond one indirect call.
//
// Numeric equivalence policy (test-enforced, tests/linalg/kernels_test.cpp):
//  - scalar tier ≡ AVX2 tier, BIT-EXACT. Both tiers perform, per output
//    element, the same IEEE-754 double operations in the same order; SIMD
//    lanes hold DIFFERENT output elements (codewords), never partial sums
//    of one reduction, and FMA contraction is disabled in both translation
//    units (-ffp-contract=off).
//  - batched kernels ≡ the historical per-codeword formulas
//    (FactoredHermitian::rayleigh / hermitian_form), BIT-EXACT: complex
//    multiplies decompose into the same four products and two rounded
//    sums as std::complex arithmetic, and reductions run in the same
//    element order. Golden figure CSVs therefore do not move.
//
// Thread-safety: all kernel entry points are safe to call concurrently —
// they touch only their arguments and the calling thread's scratch arena.
// force_tier_for_testing() is the one exception (see its comment).
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "linalg/common.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mmw::linalg::kernels {

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Implementation tiers, ordered from most portable to most specialized.
enum class Tier {
  kScalar,  ///< portable C++; the reference semantics
  kAvx2,    ///< 4-wide double AVX2 (x86-64), bit-identical to kScalar
};

/// The tier every kernel call routes through. Decided once at first use:
/// the MMW_KERNELS environment variable (`scalar` | `avx2` | `auto`) wins;
/// otherwise the best tier the CPU supports. Requesting `avx2` on a CPU
/// without it falls back to scalar with a note on stderr.
Tier active_tier();

/// Stable lower-case name ("scalar", "avx2") — recorded in run manifests.
std::string_view tier_name(Tier tier);
std::string_view active_tier_name();

/// True when the CPU (and this build) can run the AVX2 tier.
bool cpu_supports_avx2();

/// TEST/BENCH ONLY: rebinds the dispatch table to `tier`. Not thread-safe
/// against concurrent kernel calls — callers must quiesce all scoring
/// threads first. Production code must never call this; the equivalence
/// suite and the A/B micro-benchmarks are the intended users.
/// Precondition: tier is supported (kAvx2 requires cpu_supports_avx2()).
void force_tier_for_testing(Tier tier);

/// TEST/BENCH ONLY: undoes force_tier_for_testing by re-running the normal
/// dispatch decision (MMW_KERNELS, then CPUID). Same thread-safety caveat.
void reset_tier_for_testing();

// ---------------------------------------------------------------------------
// Scratch arena
// ---------------------------------------------------------------------------

/// Bump allocator for kernel workspace. One Arena serves ONE thread (use
/// scratch_arena() for the calling thread's instance); allocation is
/// pointer arithmetic, deallocation only happens wholesale via ArenaScope.
/// Memory is retained across passes, so steady-state scoring performs zero
/// heap allocations — the per-slot temporaries the pre-PR-7 path paid for
/// every codeword are gone.
///
/// Aliasing: spans returned by alloc() are disjoint, 32-byte aligned, and
/// valid until the enclosing outermost ArenaScope closes. They must not be
/// stored beyond that scope.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 32-byte-aligned uninitialized storage for n values of a trivially
  /// destructible T. Grows the arena on demand (amortized: steady state
  /// never allocates).
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return {static_cast<T*>(raw_alloc(n * sizeof(T))), n};
  }

  /// Bytes handed out since the last reset (the live footprint).
  std::size_t used_bytes() const { return used_; }
  /// Largest used_bytes() this arena ever reached.
  std::size_t high_water_bytes() const { return high_water_; }
  /// Total capacity currently reserved.
  std::size_t capacity_bytes() const;

  /// Releases every allocation (capacity is kept, coalesced into one
  /// block). Callers normally use ArenaScope instead.
  void reset();

 private:
  friend class ArenaScope;
  void* raw_alloc(std::size_t bytes);

  struct Block {
    std::vector<std::byte> storage;  ///< over-sized by the alignment slack
    std::size_t used = 0;            ///< bytes consumed from aligned base
    std::byte* base = nullptr;       ///< first 32-byte-aligned byte
    std::size_t size = 0;            ///< usable bytes from base
  };
  std::vector<Block> blocks_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
  int scope_depth_ = 0;
};

/// RAII pass delimiter: the OUTERMOST scope on an arena resets it on
/// destruction (publishing the arena's high-water mark to the process-wide
/// maximum); nested scopes are no-ops, so helpers can open a scope without
/// caring whether a caller already did.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena) {
    ++arena_.scope_depth_;
  }
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
};

/// The calling thread's kernel scratch arena (thread-local; never shared).
Arena& scratch_arena();

/// Largest per-thread arena footprint observed process-wide, in bytes —
/// recorded in run manifests as `kernels.arena_high_water_bytes`.
std::size_t arena_high_water_bytes();

// ---------------------------------------------------------------------------
// Split-complex structure-of-arrays storage
// ---------------------------------------------------------------------------

/// Non-owning mutable view of a rows × cols split-complex matrix: two
/// row-major double planes (re, im), each rows·cols long, row i starting at
/// offset i·cols. The batch dimension is ALWAYS the column index — kernels
/// vectorize along it. `re`/`im` must not alias each other or any other
/// kernel argument.
struct SoAView {
  double* re = nullptr;
  double* im = nullptr;
  index_t rows = 0;
  index_t cols = 0;
};

/// Const counterpart of SoAView; same layout and aliasing rules.
struct SoAConstView {
  const double* re = nullptr;
  const double* im = nullptr;
  index_t rows = 0;
  index_t cols = 0;
};

/// Owning split-complex matrix, used for long-lived packed operands (the
/// codebook's codeword panel). Column j of a packed panel is codeword j;
/// row i holds element i of every codeword contiguously — the stream a
/// batched kernel reads.
///
/// Thread-safety: immutable after construction; share freely across
/// threads.
class SoAComplex {
 public:
  SoAComplex() = default;
  SoAComplex(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), re_(rows * cols, 0.0),
        im_(rows * cols, 0.0) {}

  /// Packs `columns` (all of equal dimension) as the columns of the panel.
  /// Precondition: all vectors share one size (rows() = that size).
  static SoAComplex pack_columns(std::span<const Vector> columns);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  bool empty() const { return re_.empty(); }

  cx at(index_t i, index_t j) const {
    return {re_[i * cols_ + j], im_[i * cols_ + j]};
  }
  void set(index_t i, index_t j, cx v) {
    re_[i * cols_ + j] = v.real();
    im_[i * cols_ + j] = v.imag();
  }

  SoAConstView view() const { return {re_.data(), im_.data(), rows_, cols_}; }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> re_, im_;
};

// ---------------------------------------------------------------------------
// Batched primitives (runtime-dispatched)
// ---------------------------------------------------------------------------
//
// Shape preconditions are checked with MMW_REQUIRE. Output views must not
// alias any input view.

/// out = Aᴴ · X.  A is an n × r Matrix (interleaved complex, broadcast per
/// scalar), X an n × V panel, out an r × V panel. Per output element the
/// reduction over i runs in ascending order — bit-identical to
/// FactoredHermitian::project on each column.
void adjoint_gemm_batch(const Matrix& a, SoAConstView x, SoAView out);

/// out = A · X.  A is an m × n Matrix, X an n × V panel, out an m × V
/// panel. Reduction over j ascending — bit-identical to Matrix·Vector on
/// each column.
void gemm_batch(const Matrix& a, SoAConstView x, SoAView out);

/// out[v] = Re Σ_k conj(P[k][v]) · T[k][v] — the batched form of
/// Re(dot(p, t)) per column, k ascending. P and T are r × V panels,
/// out.size() == V.
void hermitian_inner_batch(SoAConstView p, SoAConstView t,
                           std::span<real> out);

// ---------------------------------------------------------------------------
// Composed scoring passes (arena-backed)
// ---------------------------------------------------------------------------

/// out[v] = c_vᴴ (B Q_r Bᴴ) c_v for every column c_v of `codewords`:
/// P = Bᴴ C, T = Q_r P, then the Hermitian inner product — the factored
/// Rayleigh scoring pass in O(|V|·N·r + |V|·r²) with all workspace on the
/// calling thread's arena. Bit-identical to per-codeword
/// FactoredHermitian::rayleigh. Preconditions: basis is N×r with
/// codewords.rows() == N, core is r×r, out.size() == codewords.cols().
void factored_scores(const Matrix& basis, const Matrix& core,
                     const SoAComplex& codewords, std::span<real> out);

/// out[v] = c_vᴴ Q c_v (dense pass, O(|V|·N²)): T = Q C then the Hermitian
/// inner product. Bit-identical to per-codeword hermitian_form.
/// Preconditions: q is N×N with codewords.rows() == N, out sized to cols.
void dense_scores(const Matrix& q, const SoAComplex& codewords,
                  std::span<real> out);

}  // namespace mmw::linalg::kernels
