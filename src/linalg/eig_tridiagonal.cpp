// Hermitian eigensolver via Householder tridiagonalization + implicit QL.
//
// Pipeline: A (complex Hermitian)
//   → Householder similarity to complex-Hermitian tridiagonal
//   → diagonal phase similarity making the off-diagonal real non-negative
//   → implicit QL with Wilkinson shifts on the real tridiagonal,
// with all transforms accumulated into a complex unitary Z, so finally
// A = Z diag(λ) Zᴴ.
#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/eig.h"
#include "obs/metrics.h"

namespace mmw::linalg {

namespace {

/// Householder reduction of Hermitian `a` (modified in place) to
/// tridiagonal form; `z` accumulates the unitary similarity.
/// Afterwards only a's diagonal and first off-diagonal are meaningful.
void householder_tridiagonalize(Matrix& a, Matrix& z) {
  const index_t n = a.rows();
  Vector u(n), p(n), w(n);

  for (index_t k = 0; k + 2 < n; ++k) {
    // x = a[k+1 .. n-1, k]; reflect it onto ±e1.
    real xnorm_sq = 0.0;
    for (index_t i = k + 1; i < n; ++i) xnorm_sq += std::norm(a(i, k));
    const real xnorm = std::sqrt(xnorm_sq);
    if (xnorm == 0.0) continue;

    const cx x1 = a(k + 1, k);
    // alpha = −e^{i·arg(x1)}·‖x‖ so that v = x − α·e1 never cancels.
    const cx phase = (x1 == cx{0.0, 0.0}) ? cx{1.0, 0.0} : x1 / std::abs(x1);
    const cx alpha = -phase * xnorm;

    // u = (x − α e1) normalized.
    real unorm_sq = 0.0;
    for (index_t i = k + 1; i < n; ++i) {
      u[i] = a(i, k) - ((i == k + 1) ? alpha : cx{0.0, 0.0});
      unorm_sq += std::norm(u[i]);
    }
    if (unorm_sq == 0.0) continue;
    const real inv_unorm = 1.0 / std::sqrt(unorm_sq);
    for (index_t i = k + 1; i < n; ++i) u[i] *= inv_unorm;

    // p = A u on the trailing block.
    for (index_t i = k + 1; i < n; ++i) {
      cx acc{0.0, 0.0};
      for (index_t j = k + 1; j < n; ++j) acc += a(i, j) * u[j];
      p[i] = acc;
    }
    // c = uᴴ p (real for Hermitian A); w = 2p − 2c·u.
    cx c{0.0, 0.0};
    for (index_t i = k + 1; i < n; ++i) c += std::conj(u[i]) * p[i];
    for (index_t i = k + 1; i < n; ++i)
      w[i] = 2.0 * p[i] - 2.0 * c * u[i];

    // Trailing block: A ← A − u wᴴ − w uᴴ.
    for (index_t i = k + 1; i < n; ++i)
      for (index_t j = k + 1; j < n; ++j)
        a(i, j) -= u[i] * std::conj(w[j]) + w[i] * std::conj(u[j]);

    // Column k: x ← α e1 (and the Hermitian mirror row).
    a(k + 1, k) = alpha;
    a(k, k + 1) = std::conj(alpha);
    for (index_t i = k + 2; i < n; ++i) {
      a(i, k) = cx{0.0, 0.0};
      a(k, i) = cx{0.0, 0.0};
    }

    // Accumulate: Z ← Z (I − 2uuᴴ), i.e. columns k+1.. of Z get updated.
    for (index_t r = 0; r < n; ++r) {
      cx acc{0.0, 0.0};
      for (index_t j = k + 1; j < n; ++j) acc += z(r, j) * u[j];
      acc *= 2.0;
      for (index_t j = k + 1; j < n; ++j)
        z(r, j) -= acc * std::conj(u[j]);
    }
  }
}

/// Implicit QL with Wilkinson shifts on a real symmetric tridiagonal
/// (d = diagonal, e = subdiagonal, e[n-1] unused), rotations accumulated
/// into the complex matrix z. Numerical-Recipes tqli structure.
void tridiagonal_ql(std::vector<real>& d, std::vector<real>& e, Matrix& z) {
  const index_t n = d.size();
  if (n == 0) return;
  e[n - 1] = 0.0;

  for (index_t l = 0; l < n; ++l) {
    int iterations = 0;
    index_t m;
    do {
      // Find the first negligible subdiagonal at or above l.
      for (m = l; m + 1 < n; ++m) {
        const real dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd) break;
      }
      if (m == l) break;
      if (++iterations > 50)
        throw convergence_error("hermitian_eig_ql: QL iteration stalled");

      // Wilkinson shift.
      real g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      real r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      real s = 1.0, c = 1.0, p = 0.0;

      bool underflow = false;
      for (index_t i = m; i-- > l;) {
        real f = s * e[i];
        const real b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          // Rotation annihilated early: restart the sweep for this l.
          d[i + 1] -= p;
          e[m] = 0.0;
          underflow = true;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        // Accumulate the rotation into columns i, i+1 of z.
        for (index_t k = 0; k < z.rows(); ++k) {
          const cx zk1 = z(k, i + 1);
          const cx zk0 = z(k, i);
          z(k, i + 1) = s * zk0 + c * zk1;
          z(k, i) = c * zk0 - s * zk1;
        }
      }
      if (underflow) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    } while (m != l);
  }
}

}  // namespace

EigResult hermitian_eig_ql(const Matrix& a_in, real hermitian_tol) {
  MMW_REQUIRE_MSG(a_in.is_square(),
                  "hermitian_eig_ql requires a square matrix");
  const real scale = std::max(a_in.frobenius_norm(), 1e-300);
  MMW_REQUIRE_MSG(a_in.is_hermitian(hermitian_tol * std::max(1.0, scale)),
                  "hermitian_eig_ql requires a Hermitian matrix");

  if (obs::enabled()) {
    static const obs::Counter calls =
        obs::Registry::global().counter("linalg.eig.ql_calls");
    calls.add();
  }

  const index_t n = a_in.rows();
  Matrix a = (a_in + a_in.adjoint()) * cx{0.5, 0.0};
  Matrix z = Matrix::identity(n);
  householder_tridiagonalize(a, z);

  // Phase similarity: make the (complex) subdiagonal real non-negative.
  // With D = diag(e^{iψ_0}, …), (Dᴴ T D)_{i+1,i} = e^{-iψ_{i+1}} t e^{iψ_i};
  // choose ψ cumulatively and fold D into Z (columns scale by e^{iψ_j}).
  std::vector<real> d(n), e(n, 0.0);
  cx psi{1.0, 0.0};  // e^{iψ_j}, built incrementally
  for (index_t i = 0; i < n; ++i) {
    d[i] = a(i, i).real();
    if (i + 1 < n) {
      const cx t = a(i + 1, i);
      const real mag = std::abs(t);
      // e^{iψ_{i+1}} = e^{iψ_i} · t/|t| makes the transformed entry |t|.
      const cx next_psi = (mag == 0.0) ? psi : psi * (t / mag);
      e[i] = mag;
      // Fold the phase into Z's column i (current ψ) now.
      for (index_t r = 0; r < n; ++r) z(r, i) *= psi;
      psi = next_psi;
    } else {
      for (index_t r = 0; r < n; ++r) z(r, i) *= psi;
    }
  }

  tridiagonal_ql(d, e, z);

  // Sort eigenpairs descending.
  std::vector<index_t> order(n);
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(),
            [&](index_t x, index_t y) { return d[x] > d[y]; });

  EigResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (index_t k = 0; k < n; ++k) {
    result.eigenvalues[k] = d[order[k]];
    result.eigenvectors.set_col(k, z.col(order[k]));
  }
  return result;
}

}  // namespace mmw::linalg
