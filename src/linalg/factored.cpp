#include "linalg/factored.h"

namespace mmw::linalg {

FactoredHermitian::FactoredHermitian(Matrix basis, Matrix core)
    : dim_(basis.rows()),
      full_(false),
      basis_(std::move(basis)),
      core_(std::move(core)) {
  MMW_REQUIRE_MSG(core_.is_square(), "factored core must be square");
  MMW_REQUIRE_MSG(core_.rows() == basis_.cols(),
                  "factored core/basis width mismatch");
  MMW_REQUIRE_MSG(basis_.cols() <= basis_.rows(),
                  "factored basis must be tall (r <= N)");
}

FactoredHermitian FactoredHermitian::from_dense(Matrix q) {
  MMW_REQUIRE_MSG(q.is_square(), "dense covariance must be square");
  FactoredHermitian out;
  out.dim_ = q.rows();
  out.full_ = true;
  out.core_ = std::move(q);
  return out;
}

const Matrix& FactoredHermitian::basis() const {
  MMW_REQUIRE_MSG(!full_, "identity basis is implicit; check is_full()");
  return basis_;
}

Vector FactoredHermitian::project(const Vector& v) const {
  MMW_REQUIRE(v.size() == dim_);
  if (full_) return v;
  const index_t r = basis_.cols();
  Vector p(r);
  for (index_t k = 0; k < r; ++k) {
    cx acc{0.0, 0.0};
    for (index_t i = 0; i < dim_; ++i)
      acc += std::conj(basis_(i, k)) * v[i];
    p[k] = acc;
  }
  return p;
}

real FactoredHermitian::rayleigh(const Vector& v) const {
  // Full mode must remain bit-identical to hermitian_form(v, dense), so it
  // takes exactly that code path; the factored mode scores through Bᴴv.
  if (full_) return hermitian_form(v, core_);
  return rayleigh_projected(project(v));
}

real FactoredHermitian::rayleigh_projected(const Vector& p) const {
  return hermitian_form(p, core_);
}

Vector FactoredHermitian::apply(const Vector& v) const {
  if (full_) return core_ * v;
  const Vector t = core_ * project(v);
  Vector out(dim_);
  for (index_t i = 0; i < dim_; ++i) {
    cx acc{0.0, 0.0};
    for (index_t k = 0; k < basis_.cols(); ++k) acc += basis_(i, k) * t[k];
    out[i] = acc;
  }
  return out;
}

EigResult FactoredHermitian::eig() const {
  EigResult core_eig = hermitian_eig_ql(core_);
  if (full_) return core_eig;
  // Lift the r eigenvectors: column k of B·U. The remaining N−r eigenvalues
  // of Q are exactly zero (Q vanishes off the basis span) and are omitted.
  core_eig.eigenvectors = basis_ * core_eig.eigenvectors;
  return core_eig;
}

Vector FactoredHermitian::principal_eigenvector() const {
  const EigResult e = eig();
  return e.principal_eigenvector();
}

const Matrix& FactoredHermitian::dense() const {
  if (dense_ready_) return dense_cache_;
  if (full_) {
    dense_cache_ = core_;
  } else {
    // Lift Q = B Q_r Bᴴ. Loop order and arithmetic deliberately mirror the
    // historical estimator lift so cached dense results stay bit-identical
    // to the pre-factored pipeline (golden figure CSVs depend on it).
    const index_t r = core_.rows();
    Matrix q(dim_, dim_);
    for (index_t a = 0; a < r; ++a) {
      for (index_t b = 0; b < r; ++b) {
        const cx qab = core_(a, b);
        if (qab == cx{0.0, 0.0}) continue;
        for (index_t i = 0; i < dim_; ++i) {
          const cx scaled = qab * basis_(i, a);
          for (index_t j = 0; j < dim_; ++j)
            q(i, j) += scaled * std::conj(basis_(j, b));
        }
      }
    }
    dense_cache_ = std::move(q);
  }
  dense_ready_ = true;
  return dense_cache_;
}

}  // namespace mmw::linalg
