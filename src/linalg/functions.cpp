#include "linalg/functions.h"

#include <algorithm>
#include <cmath>

namespace mmw::linalg {

namespace {

/// Rebuilds V f(diag) Vᴴ from an eigendecomposition with mapped eigenvalues.
Matrix rebuild(const EigResult& eig, const std::vector<real>& mapped) {
  const index_t n = eig.eigenvectors.rows();
  Matrix out(n, n);
  for (index_t k = 0; k < n; ++k) {
    if (mapped[k] == 0.0) continue;
    const Vector vk = eig.eigenvectors.col(k);
    for (index_t i = 0; i < n; ++i) {
      const cx scaled = mapped[k] * vk[i];
      for (index_t j = 0; j < n; ++j)
        out(i, j) += scaled * std::conj(vk[j]);
    }
  }
  return out;
}

}  // namespace

Matrix psd_project(const Matrix& a) {
  const EigResult eig = hermitian_eig(a);
  std::vector<real> clipped(eig.eigenvalues.size());
  for (index_t k = 0; k < clipped.size(); ++k)
    clipped[k] = std::max(eig.eigenvalues[k], 0.0);
  return rebuild(eig, clipped);
}

Matrix hermitian_sqrt(const Matrix& a) {
  const EigResult eig = hermitian_eig(a);
  const real floor =
      -1e-9 * std::max(eig.eigenvalues.empty() ? 0.0 : eig.eigenvalues[0], 1.0);
  std::vector<real> roots(eig.eigenvalues.size());
  for (index_t k = 0; k < roots.size(); ++k) {
    MMW_REQUIRE_MSG(eig.eigenvalues[k] >= floor,
                    "hermitian_sqrt: matrix is not PSD");
    roots[k] = std::sqrt(std::max(eig.eigenvalues[k], 0.0));
  }
  return rebuild(eig, roots);
}

Matrix eigenvalue_soft_threshold(const Matrix& a, real mu) {
  MMW_REQUIRE_MSG(mu >= 0.0, "threshold must be non-negative");
  const EigResult eig = hermitian_eig(a);
  std::vector<real> shrunk(eig.eigenvalues.size());
  for (index_t k = 0; k < shrunk.size(); ++k)
    shrunk[k] = std::max(eig.eigenvalues[k] - mu, 0.0);
  return rebuild(eig, shrunk);
}

real nuclear_norm(const Matrix& a) {
  const SvdResult s = svd(a);
  real acc = 0.0;
  for (const real sigma : s.singular_values) acc += sigma;
  return acc;
}

real spectral_norm(const Matrix& a) {
  const SvdResult s = svd(a);
  return s.singular_values.empty() ? 0.0 : s.singular_values[0];
}

index_t numerical_rank(const Matrix& a, real rel_tol) {
  const SvdResult s = svd(a);
  if (s.singular_values.empty() || s.singular_values[0] == 0.0) return 0;
  const real cutoff = rel_tol * s.singular_values[0];
  index_t rank = 0;
  for (const real sigma : s.singular_values)
    if (sigma > cutoff) ++rank;
  return rank;
}

Matrix kronecker(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) {
      const cx aij = a(i, j);
      if (aij == cx{0.0, 0.0}) continue;
      for (index_t k = 0; k < b.rows(); ++k)
        for (index_t l = 0; l < b.cols(); ++l)
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
    }
  return out;
}

Matrix low_rank_approximation(const Matrix& a, index_t k) {
  const SvdResult s = svd(a);
  const index_t r = std::min<index_t>(k, s.singular_values.size());
  Matrix out(a.rows(), a.cols());
  for (index_t t = 0; t < r; ++t) {
    const Vector ut = s.u.col(t);
    const Vector vt = s.v.col(t);
    for (index_t i = 0; i < a.rows(); ++i) {
      const cx scaled = s.singular_values[t] * ut[i];
      for (index_t j = 0; j < a.cols(); ++j)
        out(i, j) += scaled * std::conj(vt[j]);
    }
  }
  return out;
}

}  // namespace mmw::linalg
