// Cholesky and LU factorizations, linear solves, inverse.
#pragma once

#include <optional>

#include "linalg/matrix.h"

namespace mmw::linalg {

/// Cholesky factor of a Hermitian positive semi-definite matrix:
/// returns lower-triangular L with A = L Lᴴ.
///
/// Accepts semi-definite input: pivots below `tol * trace(A)/n` are treated
/// as exactly zero (the corresponding column of L is zeroed). Throws
/// precondition_error when a pivot is negative beyond tolerance, i.e. the
/// matrix is not PSD.
Matrix cholesky(const Matrix& a, real tol = 1e-12);

/// LU factorization with partial pivoting, packed in-place.
struct LuResult {
  Matrix lu;                    ///< L (unit diagonal, below) and U (above).
  std::vector<index_t> perm;    ///< row permutation: row i of PA is row perm[i] of A
  int sign = 1;                 ///< permutation sign (determinant parity)
  bool singular = false;        ///< true when a zero pivot was hit
};

/// Computes PA = LU with partial pivoting. Never throws on singular input;
/// check `singular` instead.
LuResult lu_decompose(const Matrix& a);

/// Solves A x = b via LU with partial pivoting.
/// Throws precondition_error when A is singular to working precision.
Vector solve(const Matrix& a, const Vector& b);

/// Matrix inverse via LU. Prefer solve() when a single system suffices.
Matrix inverse(const Matrix& a);

/// Determinant via LU.
cx determinant(const Matrix& a);

/// Thin QR factorization A = Q R (Householder): for an m×n matrix with
/// m ≥ n, Q is m×n with orthonormal columns and R is n×n upper triangular
/// with real non-negative diagonal.
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Preconditions: a.rows() ≥ a.cols() ≥ 1.
QrResult qr_decompose(const Matrix& a);

/// Least-squares solution of min ‖A x − b‖₂ via QR.
/// Preconditions: A has full column rank (to working precision),
/// a.rows() ≥ a.cols(), b sized to a.rows().
Vector least_squares(const Matrix& a, const Vector& b);

}  // namespace mmw::linalg
