// Dense complex matrix type (row-major).
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "linalg/common.h"
#include "linalg/vector.h"

namespace mmw::linalg {

/// Dense row-major matrix over mmw::cx.
///
/// Sized for the regimes this library works in (antenna arrays up to a few
/// hundred elements), so plain O(n³) loops are used throughout; there is no
/// blocking or expression-template machinery.
class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of shape rows × cols.
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cx{0.0, 0.0}) {}

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<cx>> init);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  bool is_square() const { return rows_ == cols_; }

  cx& operator()(index_t i, index_t j) { return data_[i * cols_ + j]; }
  const cx& operator()(index_t i, index_t j) const {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked access.
  cx& at(index_t i, index_t j);
  const cx& at(index_t i, index_t j) const;

  std::span<const cx> data() const { return data_; }
  std::span<cx> data() { return data_; }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(cx scalar);
  Matrix& operator/=(cx scalar);

  /// Conjugate transpose Aᴴ.
  Matrix adjoint() const;

  /// Plain transpose Aᵀ (no conjugation).
  Matrix transpose() const;

  /// Element-wise conjugate.
  Matrix conjugate() const;

  /// Trace; requires a square matrix.
  cx trace() const;

  /// Frobenius norm ‖A‖_F.
  real frobenius_norm() const;

  /// Largest |a_ij|.
  real max_abs() const;

  /// Copy of column j.
  Vector col(index_t j) const;

  /// Copy of row i (as a column vector of the row entries).
  Vector row(index_t i) const;

  void set_col(index_t j, const Vector& v);
  void set_row(index_t i, const Vector& v);

  /// True when ‖A − Aᴴ‖_max ≤ tol (requires square).
  bool is_hermitian(real tol = 1e-10) const;

  static Matrix zeros(index_t rows, index_t cols) {
    return Matrix(rows, cols);
  }
  static Matrix identity(index_t n);

  /// Diagonal matrix from the given entries.
  static Matrix diagonal(std::span<const real> entries);
  static Matrix diagonal(std::span<const cx> entries);

  /// Rank-one outer product a bᴴ.
  static Matrix outer(const Vector& a, const Vector& b);

  /// In-place scaled rank-one update  A += (a bᴴ)·α  without materializing
  /// the outer product — the allocation-free form of
  /// `A += alpha * Matrix::outer(a, b)`, with bit-identical arithmetic
  /// (each entry accumulates (a_i·conj(b_j))·α exactly as the temporary
  /// route would). Pass α = −c for a subtraction.
  /// Preconditions: a.size() == rows(), b.size() == cols().
  Matrix& add_scaled_outer(cx alpha, const Vector& a, const Vector& b);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<cx> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, cx scalar);
Matrix operator*(cx scalar, Matrix m);
Matrix operator/(Matrix m, cx scalar);
Matrix operator-(Matrix m);

/// Matrix product A·B. Requires A.cols() == B.rows().
Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix-vector product A·v.
Vector operator*(const Matrix& a, const Vector& v);

/// True when ‖A − B‖_F ≤ tol.
bool approx_equal(const Matrix& a, const Matrix& b, real tol);

/// Rayleigh quotient style sesquilinear form aᴴ M b.
cx quadratic_form(const Vector& a, const Matrix& m, const Vector& b);

/// Hermitian form vᴴ M v, returned as its (real) value. `m` must be square;
/// the imaginary part (zero for Hermitian M up to rounding) is discarded.
real hermitian_form(const Vector& v, const Matrix& m);

}  // namespace mmw::linalg
