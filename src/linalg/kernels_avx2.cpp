// AVX2 tier of the batched scoring kernels.
//
// Compiled with -mavx2 -ffp-contract=off and selected at runtime only when
// CPUID reports AVX2 (see kernels.cpp); nothing in this file runs on CPUs
// without it.
//
// Bit-exactness with the scalar tier: lanes hold FOUR DIFFERENT output
// columns, never partial sums of one reduction, so each output element sees
// the identical sequence of IEEE-754 multiplies and adds as the scalar
// code. No FMA is used (vfmadd rounds once where mul+add rounds twice) and
// -ffp-contract=off keeps the compiler from introducing any.
#include "linalg/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace mmw::linalg::kernels::detail {

namespace {

/// Per-lane complex accumulation step for conj(b)·x (adjoint GEMM):
///   acc_re += br·xr + bi·xi,  acc_im += br·xi − bi·xr.
inline void conj_mul_acc(__m256d br, __m256d bi, __m256d xr, __m256d xi,
                         __m256d& acc_re, __m256d& acc_im) {
  const __m256d t1 = _mm256_mul_pd(br, xr);
  const __m256d t2 = _mm256_mul_pd(bi, xi);
  const __m256d t3 = _mm256_mul_pd(br, xi);
  const __m256d t4 = _mm256_mul_pd(bi, xr);
  acc_re = _mm256_add_pd(acc_re, _mm256_add_pd(t1, t2));
  acc_im = _mm256_add_pd(acc_im, _mm256_sub_pd(t3, t4));
}

/// Per-lane complex accumulation step for a·x (plain GEMM):
///   acc_re += ar·xr − ai·xi,  acc_im += ar·xi + ai·xr.
inline void mul_acc(__m256d ar, __m256d ai, __m256d xr, __m256d xi,
                    __m256d& acc_re, __m256d& acc_im) {
  const __m256d t1 = _mm256_mul_pd(ar, xr);
  const __m256d t2 = _mm256_mul_pd(ai, xi);
  const __m256d t3 = _mm256_mul_pd(ar, xi);
  const __m256d t4 = _mm256_mul_pd(ai, xr);
  acc_re = _mm256_add_pd(acc_re, _mm256_sub_pd(t1, t2));
  acc_im = _mm256_add_pd(acc_im, _mm256_add_pd(t3, t4));
}

}  // namespace

void adjoint_gemm_avx2(const Matrix& a, SoAConstView x, SoAView out) {
  const index_t n = a.rows();
  const index_t r = a.cols();
  const index_t v = x.cols;
  const index_t main = v - v % 8;
  for (index_t k = 0; k < r; ++k) {
    // Two 4-lane column blocks per sweep: 4 accumulator registers, reusing
    // the broadcast scalar across both blocks.
    for (index_t c0 = 0; c0 < main; c0 += 8) {
      __m256d acc_re0 = _mm256_setzero_pd();
      __m256d acc_im0 = _mm256_setzero_pd();
      __m256d acc_re1 = _mm256_setzero_pd();
      __m256d acc_im1 = _mm256_setzero_pd();
      for (index_t i = 0; i < n; ++i) {
        const cx b = a(i, k);
        const __m256d br = _mm256_set1_pd(b.real());
        const __m256d bi = _mm256_set1_pd(b.imag());
        const double* xr = x.re + i * v + c0;
        const double* xi = x.im + i * v + c0;
        conj_mul_acc(br, bi, _mm256_loadu_pd(xr), _mm256_loadu_pd(xi),
                     acc_re0, acc_im0);
        conj_mul_acc(br, bi, _mm256_loadu_pd(xr + 4), _mm256_loadu_pd(xi + 4),
                     acc_re1, acc_im1);
      }
      _mm256_storeu_pd(out.re + k * v + c0, acc_re0);
      _mm256_storeu_pd(out.im + k * v + c0, acc_im0);
      _mm256_storeu_pd(out.re + k * v + c0 + 4, acc_re1);
      _mm256_storeu_pd(out.im + k * v + c0 + 4, acc_im1);
    }
    // Scalar tail, same op order per element.
    for (index_t c = main; c < v; ++c) {
      double acc_re = 0.0;
      double acc_im = 0.0;
      for (index_t i = 0; i < n; ++i) {
        const cx b = a(i, k);
        const double t1 = b.real() * x.re[i * v + c];
        const double t2 = b.imag() * x.im[i * v + c];
        const double t3 = b.real() * x.im[i * v + c];
        const double t4 = b.imag() * x.re[i * v + c];
        acc_re += t1 + t2;
        acc_im += t3 - t4;
      }
      out.re[k * v + c] = acc_re;
      out.im[k * v + c] = acc_im;
    }
  }
}

void gemm_avx2(const Matrix& a, SoAConstView x, SoAView out) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t v = x.cols;
  const index_t main = v - v % 8;
  for (index_t i = 0; i < m; ++i) {
    for (index_t c0 = 0; c0 < main; c0 += 8) {
      __m256d acc_re0 = _mm256_setzero_pd();
      __m256d acc_im0 = _mm256_setzero_pd();
      __m256d acc_re1 = _mm256_setzero_pd();
      __m256d acc_im1 = _mm256_setzero_pd();
      for (index_t j = 0; j < n; ++j) {
        const cx aij = a(i, j);
        const __m256d ar = _mm256_set1_pd(aij.real());
        const __m256d ai = _mm256_set1_pd(aij.imag());
        const double* xr = x.re + j * v + c0;
        const double* xi = x.im + j * v + c0;
        mul_acc(ar, ai, _mm256_loadu_pd(xr), _mm256_loadu_pd(xi), acc_re0,
                acc_im0);
        mul_acc(ar, ai, _mm256_loadu_pd(xr + 4), _mm256_loadu_pd(xi + 4),
                acc_re1, acc_im1);
      }
      _mm256_storeu_pd(out.re + i * v + c0, acc_re0);
      _mm256_storeu_pd(out.im + i * v + c0, acc_im0);
      _mm256_storeu_pd(out.re + i * v + c0 + 4, acc_re1);
      _mm256_storeu_pd(out.im + i * v + c0 + 4, acc_im1);
    }
    for (index_t c = main; c < v; ++c) {
      double acc_re = 0.0;
      double acc_im = 0.0;
      for (index_t j = 0; j < n; ++j) {
        const cx aij = a(i, j);
        const double t1 = aij.real() * x.re[j * v + c];
        const double t2 = aij.imag() * x.im[j * v + c];
        const double t3 = aij.real() * x.im[j * v + c];
        const double t4 = aij.imag() * x.re[j * v + c];
        acc_re += t1 - t2;
        acc_im += t3 + t4;
      }
      out.re[i * v + c] = acc_re;
      out.im[i * v + c] = acc_im;
    }
  }
}

void inner_avx2(SoAConstView p, SoAConstView t, std::span<real> out) {
  const index_t r = p.rows;
  const index_t v = p.cols;
  const index_t main = v - v % 4;
  for (index_t c0 = 0; c0 < main; c0 += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (index_t k = 0; k < r; ++k) {
      const __m256d pr = _mm256_loadu_pd(p.re + k * v + c0);
      const __m256d pi = _mm256_loadu_pd(p.im + k * v + c0);
      const __m256d tr = _mm256_loadu_pd(t.re + k * v + c0);
      const __m256d ti = _mm256_loadu_pd(t.im + k * v + c0);
      // Re(conj(p)·t) = pr·tr + pi·ti, one rounded sum per term.
      const __m256d t1 = _mm256_mul_pd(pr, tr);
      const __m256d t2 = _mm256_mul_pd(pi, ti);
      acc = _mm256_add_pd(acc, _mm256_add_pd(t1, t2));
    }
    _mm256_storeu_pd(out.data() + c0, acc);
  }
  for (index_t c = main; c < v; ++c) {
    double acc = 0.0;
    for (index_t k = 0; k < r; ++k) {
      const double t1 = p.re[k * v + c] * t.re[k * v + c];
      const double t2 = p.im[k * v + c] * t.im[k * v + c];
      acc += t1 + t2;
    }
    out[c] = acc;
  }
}

}  // namespace mmw::linalg::kernels::detail

#endif  // __AVX2__
