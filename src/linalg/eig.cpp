#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"

namespace mmw::linalg {

namespace {

/// Telemetry handles for the Jacobi kernel, resolved once. Every call path
/// through beam alignment funnels into hermitian_eig, so sweep counts are
/// the single best proxy for linalg cost.
struct EigMetrics {
  obs::Counter calls;
  obs::Counter exhausted;
  obs::Histogram sweeps;
  obs::Gauge exit_offdiag;
  static const EigMetrics& get() {
    static const EigMetrics m{
        obs::Registry::global().counter("linalg.eig.jacobi_calls"),
        obs::Registry::global().counter("linalg.eig.sweeps_exhausted"),
        obs::Registry::global().histogram(
            "linalg.eig.jacobi_sweeps",
            obs::HistogramBuckets::linear(1.0, 1.0, 16)),
        obs::Registry::global().gauge("linalg.eig.exit_offdiag"),
    };
    return m;
  }
};

/// Sum of squared magnitudes of the strictly-off-diagonal entries.
real off_diagonal_sq(const Matrix& a) {
  real acc = 0.0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j)
      if (i != j) acc += std::norm(a(i, j));
  return acc;
}

/// Applies the complex Jacobi rotation G on the (p,q) plane:
///   A ← Gᴴ A G,  V ← V G
/// where G[p][p] = c, G[p][q] = s·e^{iθ}, G[q][p] = −s·e^{−iθ}, G[q][q] = c.
void apply_rotation(Matrix& a, Matrix& v, index_t p, index_t q, real c,
                    real s, cx phase) {
  const index_t n = a.rows();
  const cx sp = s * phase;           // s·e^{iθ}
  const cx spc = s * std::conj(phase);  // s·e^{−iθ}

  // Column update: [a_ip, a_iq] ← [a_ip c − a_iq s e^{−iθ},
  //                                 a_ip s e^{iθ} + a_iq c]
  for (index_t i = 0; i < n; ++i) {
    const cx aip = a(i, p);
    const cx aiq = a(i, q);
    a(i, p) = aip * c - aiq * spc;
    a(i, q) = aip * sp + aiq * c;
  }
  // Row update with Gᴴ on the left.
  for (index_t j = 0; j < n; ++j) {
    const cx apj = a(p, j);
    const cx aqj = a(q, j);
    a(p, j) = c * apj - std::conj(spc) * aqj;
    a(q, j) = std::conj(sp) * apj + c * aqj;
  }
  // Accumulate eigenvectors.
  for (index_t i = 0; i < n; ++i) {
    const cx vip = v(i, p);
    const cx viq = v(i, q);
    v(i, p) = vip * c - viq * spc;
    v(i, q) = vip * sp + viq * c;
  }
}

}  // namespace

real EigResult::energy_fraction(index_t k) const {
  real total = 0.0;
  real top = 0.0;
  for (index_t i = 0; i < eigenvalues.size(); ++i) {
    const real mag = std::abs(eigenvalues[i]);
    total += mag;
    if (i < k) top += mag;
  }
  return total > 0.0 ? top / total : 0.0;
}

EigResult hermitian_eig(const Matrix& a_in, const JacobiOptions& opts,
                        real hermitian_tol) {
  MMW_REQUIRE_MSG(a_in.is_square(), "hermitian_eig requires a square matrix");
  const real scale = std::max(a_in.frobenius_norm(), 1e-300);
  MMW_REQUIRE_MSG(a_in.is_hermitian(hermitian_tol * std::max(1.0, scale)),
                  "hermitian_eig requires a Hermitian matrix");

  const index_t n = a_in.rows();
  Matrix a = a_in;
  // Symmetrize to wash out tiny Hermitian violations up front.
  a = (a + a.adjoint()) * cx{0.5, 0.0};
  Matrix v = Matrix::identity(n);

  const real stop = opts.tolerance * scale;
  int sweep = 0;
  real offdiag = std::sqrt(off_diagonal_sq(a));
  while (offdiag > stop) {
    if (++sweep > opts.max_sweeps) {
      if (obs::enabled()) EigMetrics::get().exhausted.add();
      throw convergence_error("hermitian_eig: Jacobi sweeps exhausted");
    }
    for (index_t p = 0; p + 1 < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const cx apq = a(p, q);
        const real r = std::abs(apq);
        if (r <= stop / static_cast<real>(n)) continue;
        const cx phase = apq / r;  // e^{iθ} with a_pq = r e^{iθ}
        const real app = a(p, p).real();
        const real aqq = a(q, q).real();
        const real tau = (aqq - app) / (2.0 * r);
        const real t = (tau >= 0.0)
                           ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                           : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        const real c = 1.0 / std::sqrt(1.0 + t * t);
        const real s = t * c;
        apply_rotation(a, v, p, q, c, s, phase);
      }
    }
    offdiag = std::sqrt(off_diagonal_sq(a));
  }

  if (obs::enabled()) {
    const EigMetrics& m = EigMetrics::get();
    m.calls.add();
    m.sweeps.record(static_cast<real>(sweep));
    m.exit_offdiag.set(offdiag);
  }

  EigResult result;
  result.eigenvalues.resize(n);
  for (index_t i = 0; i < n; ++i) result.eigenvalues[i] = a(i, i).real();

  // Sort eigenpairs descending by eigenvalue.
  std::vector<index_t> order(n);
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return result.eigenvalues[x] > result.eigenvalues[y];
  });
  std::vector<real> sorted_vals(n);
  Matrix sorted_vecs(n, n);
  for (index_t k = 0; k < n; ++k) {
    sorted_vals[k] = result.eigenvalues[order[k]];
    sorted_vecs.set_col(k, v.col(order[k]));
  }
  result.eigenvalues = std::move(sorted_vals);
  result.eigenvectors = std::move(sorted_vecs);
  return result;
}

SvdResult svd(const Matrix& a, const JacobiOptions& opts) {
  MMW_REQUIRE_MSG(!a.empty(), "svd of an empty matrix");
  const bool tall = a.rows() >= a.cols();
  // Work with the smaller Gram matrix: AᴴA (n×n) when tall, AAᴴ otherwise.
  const Matrix gram = tall ? a.adjoint() * a : a * a.adjoint();
  const EigResult eig = hermitian_eig(gram, opts);

  const index_t r = gram.rows();
  SvdResult out;
  out.singular_values.resize(r);
  for (index_t k = 0; k < r; ++k)
    out.singular_values[k] = std::sqrt(std::max(eig.eigenvalues[k], 0.0));

  // Threshold below which a singular triplet is treated as part of the null
  // space: recovered vectors there would just amplify rounding noise.
  const real tiny =
      1e-13 * std::max(out.singular_values.empty() ? 0.0
                                                   : out.singular_values[0],
                       1.0);

  if (tall) {
    out.v = eig.eigenvectors;  // n×n
    out.u = Matrix(a.rows(), r);
    for (index_t k = 0; k < r; ++k) {
      if (out.singular_values[k] > tiny) {
        Vector uk = a * out.v.col(k);
        uk /= cx{out.singular_values[k], 0.0};
        out.u.set_col(k, uk);
      } else {
        out.u.set_col(k, Vector::basis(a.rows(), k % a.rows()));
      }
    }
  } else {
    out.u = eig.eigenvectors;  // m×m
    out.v = Matrix(a.cols(), r);
    for (index_t k = 0; k < r; ++k) {
      if (out.singular_values[k] > tiny) {
        Vector vk = a.adjoint() * out.u.col(k);
        vk /= cx{out.singular_values[k], 0.0};
        out.v.set_col(k, vk);
      } else {
        out.v.set_col(k, Vector::basis(a.cols(), k % a.cols()));
      }
    }
  }
  return out;
}

}  // namespace mmw::linalg
