// Common scalar types and contract-checking utilities shared by all modules.
#pragma once

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace mmw {

/// The scalar type used throughout the library: double-precision complex.
using cx = std::complex<double>;

/// Real scalar type.
using real = double;

/// Index type for matrix/vector dimensions.
using index_t = std::size_t;

/// Thrown when a documented precondition of a public API is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an iterative numerical routine fails to converge.
class convergence_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  throw precondition_error(std::string("precondition failed: ") + expr +
                           " at " + file + ":" + std::to_string(line) +
                           (msg.empty() ? "" : (" — " + msg)));
}
}  // namespace detail

}  // namespace mmw

/// Precondition check that always fires (also in release builds): numerical
/// code misbehaving silently on bad shapes is far worse than the branch cost.
#define MMW_REQUIRE(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::mmw::detail::require_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MMW_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr))                                                       \
      ::mmw::detail::require_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
