// Factored Hermitian PSD representation Q = B Q_r Bᴴ (N×r basis, r×r core).
//
// The covariance matrices this library estimates are low-rank by
// construction: the likelihood only sees Q through the measured beam span,
// so the estimators solve an r×r problem (r ≤ J ≪ N) and the N×N dense
// matrix is pure bookkeeping. FactoredHermitian makes that factorization a
// first-class value so Rayleigh quotients, eigenpairs, traces and codebook
// scores are computed through the factor at O(N·r + r²) instead of O(N²) —
// the dense lift is available but explicit and lazy (`dense()`).
#pragma once

#include "linalg/eig.h"
#include "linalg/matrix.h"

namespace mmw::linalg {

/// Hermitian PSD matrix held as Q = B Q_r Bᴴ with B an N×r matrix whose
/// columns are orthonormal and Q_r an r×r Hermitian core.
///
/// Two storage modes:
///  - factored (r < N): basis + core are stored; operations project through
///    the basis. `dense()` lifts lazily and caches the result.
///  - full (constructed via `from_dense`): the basis is the identity and is
///    not stored; operations read the core directly, bit-for-bit matching
///    the plain dense formulas (`rayleigh` ≡ `hermitian_form`).
///
/// Thread-safety: all const operations except the FIRST `dense()` call are
/// safe to run concurrently; `dense()` populates a lazy cache, so share a
/// FactoredHermitian across threads only after lifting it once (or copy it
/// per thread, which the Monte-Carlo drivers do anyway).
class FactoredHermitian {
 public:
  /// Empty (dimension-0) value; `empty()` is true.
  FactoredHermitian() = default;

  /// Factored form Q = basis · core · basisᴴ.
  ///
  /// Preconditions: core is square with core.rows() == basis.cols(); the
  /// caller guarantees the basis columns are orthonormal (not re-checked —
  /// the estimators produce them by Gram–Schmidt).
  FactoredHermitian(Matrix basis, Matrix core);

  /// Full-rank wrapper: Q = q with an implicit identity basis. All factor
  /// operations degenerate to the plain dense formulas bit-for-bit.
  static FactoredHermitian from_dense(Matrix q);

  bool empty() const { return dim_ == 0; }

  /// Ambient dimension N.
  index_t dim() const { return dim_; }

  /// Factor width r (an upper bound on the numerical rank, not the rank
  /// itself: core eigenvalues may vanish).
  index_t rank() const { return core_.rows(); }

  /// True when the basis is the implicit identity (from_dense).
  bool is_full() const { return full_; }

  /// The r×r Hermitian core Q_r (the full matrix itself when is_full()).
  const Matrix& core() const { return core_; }

  /// The N×r orthonormal basis B. Precondition: !is_full() — the identity
  /// basis is implicit and never materialized.
  const Matrix& basis() const;

  /// Projection p = Bᴴ v (length r). Identity basis: returns v.
  Vector project(const Vector& v) const;

  /// Rayleigh quotient vᴴ Q v = (Bᴴv)ᴴ Q_r (Bᴴv), O(N·r + r²).
  real rayleigh(const Vector& v) const;

  /// Rayleigh quotient from an already-projected p = Bᴴ v: pᴴ Q_r p, O(r²).
  real rayleigh_projected(const Vector& p) const;

  /// Matrix-vector product Q v = B (Q_r (Bᴴ v)), O(N·r + r²).
  Vector apply(const Vector& v) const;

  /// tr(Q) = tr(Q_r) (B has orthonormal columns).
  real trace() const { return core_.trace().real(); }

  /// Eigendecomposition of Q through the core: decompose Q_r (r×r, via
  /// hermitian_eig_ql) and lift the r eigenvectors as B·u. The remaining
  /// N−r eigenvalues of Q are exactly zero and are omitted, so the result
  /// holds r eigenpairs sorted descending. O(N·r² + r³) versus O(N³) dense.
  EigResult eig() const;

  /// Unit eigenvector of the largest eigenvalue, O(N·r + r³).
  Vector principal_eigenvector() const;

  /// Dense N×N lift Q = B Q_r Bᴴ, computed on first call and cached.
  /// Callers should reach for this only when a genuinely dense consumer
  /// (Frobenius-distance metrics, matrix accumulation, I/O) needs it — every
  /// scoring-path operation has a factor-aware method above.
  const Matrix& dense() const;

 private:
  index_t dim_ = 0;
  bool full_ = false;
  Matrix basis_;  ///< N×r; empty when full_
  Matrix core_;   ///< r×r (the dense matrix itself when full_)
  mutable Matrix dense_cache_;
  mutable bool dense_ready_ = false;
};

}  // namespace mmw::linalg
