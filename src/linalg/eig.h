// Hermitian eigendecomposition and singular value decomposition.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace mmw::linalg {

/// Result of a Hermitian eigendecomposition A = V diag(λ) Vᴴ.
///
/// Eigenvalues are real (A Hermitian) and sorted in DESCENDING order;
/// `eigenvectors.col(k)` is the unit eigenvector for `eigenvalues[k]`.
struct EigResult {
  std::vector<real> eigenvalues;
  Matrix eigenvectors;

  /// Unit eigenvector for the largest eigenvalue.
  Vector principal_eigenvector() const { return eigenvectors.col(0); }

  /// Fraction of total |λ| mass captured by the top-k eigenvalues; used to
  /// quantify the low-rank concentration of channel covariance matrices.
  real energy_fraction(index_t k) const;
};

/// Options for the cyclic-Jacobi eigensolver.
struct JacobiOptions {
  /// Stop when the off-diagonal Frobenius norm falls below
  /// `tolerance * ‖A‖_F`.
  real tolerance = 1e-12;
  /// Maximum number of full sweeps before convergence_error is thrown.
  int max_sweeps = 100;
};

/// Eigendecomposition of a Hermitian matrix by the cyclic complex Jacobi
/// method. Numerically robust at the problem sizes used here (n ≲ 256).
///
/// Preconditions: `a` is square and Hermitian within `hermitian_tol`.
/// Throws convergence_error if `max_sweeps` is exhausted (does not happen
/// for genuinely Hermitian input at reasonable tolerance).
EigResult hermitian_eig(const Matrix& a, const JacobiOptions& opts = {},
                        real hermitian_tol = 1e-8);

/// Eigendecomposition of a Hermitian matrix by Householder reduction to a
/// real symmetric tridiagonal followed by the implicit QL algorithm with
/// Wilkinson shifts — a single-pass O(n³) method, roughly an order of
/// magnitude faster than Jacobi at n = 64 (see bench/micro_linalg).
/// Same contract and result layout as hermitian_eig.
EigResult hermitian_eig_ql(const Matrix& a, real hermitian_tol = 1e-8);

/// Result of a (thin) singular value decomposition A = U diag(σ) Vᴴ with
/// σ sorted descending; U is m×r, V is n×r where r = min(m, n).
struct SvdResult {
  Matrix u;
  std::vector<real> singular_values;
  Matrix v;
};

/// Thin SVD via the eigendecomposition of AᴴA (or AAᴴ when m < n).
/// Accurate to ~sqrt(machine-eps) for the smallest singular values, which is
/// ample for rank decisions and nuclear-norm computation on covariance-scale
/// matrices.
SvdResult svd(const Matrix& a, const JacobiOptions& opts = {});

}  // namespace mmw::linalg
