#include "linalg/decompositions.h"

#include <cmath>

namespace mmw::linalg {

Matrix cholesky(const Matrix& a, real tol) {
  MMW_REQUIRE_MSG(a.is_square(), "cholesky requires a square matrix");
  const index_t n = a.rows();
  MMW_REQUIRE_MSG(a.is_hermitian(1e-8 * std::max(1.0, a.max_abs())),
                  "cholesky requires a Hermitian matrix");

  const real pivot_floor =
      tol * std::max(std::abs(a.trace().real()) / std::max<index_t>(n, 1), 1e-300);

  Matrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    real diag = a(j, j).real();
    for (index_t k = 0; k < j; ++k) diag -= std::norm(l(j, k));
    if (diag < -pivot_floor)
      throw precondition_error("cholesky: matrix is not positive semi-definite");
    if (diag <= pivot_floor) {
      // Semi-definite direction: zero column, consistent with A = L Lᴴ up to tol.
      continue;
    }
    const real ljj = std::sqrt(diag);
    l(j, j) = cx{ljj, 0.0};
    for (index_t i = j + 1; i < n; ++i) {
      cx acc = a(i, j);
      for (index_t k = 0; k < j; ++k) acc -= l(i, k) * std::conj(l(j, k));
      l(i, j) = acc / ljj;
    }
  }
  return l;
}

LuResult lu_decompose(const Matrix& a) {
  MMW_REQUIRE_MSG(a.is_square(), "lu_decompose requires a square matrix");
  const index_t n = a.rows();
  LuResult r;
  r.lu = a;
  r.perm.resize(n);
  for (index_t i = 0; i < n; ++i) r.perm[i] = i;

  for (index_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    index_t piv = k;
    real best = std::abs(r.lu(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      const real mag = std::abs(r.lu(i, k));
      if (mag > best) {
        best = mag;
        piv = i;
      }
    }
    if (best == 0.0) {
      r.singular = true;
      continue;
    }
    if (piv != k) {
      for (index_t j = 0; j < n; ++j) std::swap(r.lu(k, j), r.lu(piv, j));
      std::swap(r.perm[k], r.perm[piv]);
      r.sign = -r.sign;
    }
    const cx pivot = r.lu(k, k);
    for (index_t i = k + 1; i < n; ++i) {
      const cx factor = r.lu(i, k) / pivot;
      r.lu(i, k) = factor;
      for (index_t j = k + 1; j < n; ++j) r.lu(i, j) -= factor * r.lu(k, j);
    }
  }
  return r;
}

Vector solve(const Matrix& a, const Vector& b) {
  MMW_REQUIRE(a.rows() == b.size());
  const LuResult f = lu_decompose(a);
  MMW_REQUIRE_MSG(!f.singular, "solve: singular matrix");
  const index_t n = a.rows();

  // Forward substitution on Pb with unit-lower L.
  Vector y(n);
  for (index_t i = 0; i < n; ++i) {
    cx acc = b[f.perm[i]];
    for (index_t j = 0; j < i; ++j) acc -= f.lu(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution with U.
  Vector x(n);
  for (index_t ii = n; ii-- > 0;) {
    cx acc = y[ii];
    for (index_t j = ii + 1; j < n; ++j) acc -= f.lu(ii, j) * x[j];
    x[ii] = acc / f.lu(ii, ii);
  }
  return x;
}

Matrix inverse(const Matrix& a) {
  MMW_REQUIRE_MSG(a.is_square(), "inverse requires a square matrix");
  const index_t n = a.rows();
  const LuResult f = lu_decompose(a);
  MMW_REQUIRE_MSG(!f.singular, "inverse: singular matrix");

  Matrix inv(n, n);
  for (index_t col = 0; col < n; ++col) {
    Vector y(n);
    for (index_t i = 0; i < n; ++i) {
      cx acc = (f.perm[i] == col) ? cx{1.0, 0.0} : cx{0.0, 0.0};
      for (index_t j = 0; j < i; ++j) acc -= f.lu(i, j) * y[j];
      y[i] = acc;
    }
    Vector x(n);
    for (index_t ii = n; ii-- > 0;) {
      cx acc = y[ii];
      for (index_t j = ii + 1; j < n; ++j) acc -= f.lu(ii, j) * x[j];
      x[ii] = acc / f.lu(ii, ii);
    }
    inv.set_col(col, x);
  }
  return inv;
}

cx determinant(const Matrix& a) {
  const LuResult f = lu_decompose(a);
  if (f.singular) return cx{0.0, 0.0};
  cx det{static_cast<real>(f.sign), 0.0};
  for (index_t i = 0; i < a.rows(); ++i) det *= f.lu(i, i);
  return det;
}

QrResult qr_decompose(const Matrix& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  MMW_REQUIRE_MSG(m >= n && n >= 1, "qr requires a tall (m >= n) matrix");

  Matrix r = a;                       // reduced in place to R (top block)
  Matrix q_full = Matrix::identity(m);  // accumulates the reflections

  for (index_t k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    real xnorm_sq = 0.0;
    for (index_t i = k; i < m; ++i) xnorm_sq += std::norm(r(i, k));
    const real xnorm = std::sqrt(xnorm_sq);
    if (xnorm == 0.0) continue;
    const cx x0 = r(k, k);
    const cx phase =
        (x0 == cx{0.0, 0.0}) ? cx{1.0, 0.0} : x0 / std::abs(x0);
    const cx alpha = -phase * xnorm;

    Vector u(m);
    real unorm_sq = 0.0;
    for (index_t i = k; i < m; ++i) {
      u[i] = r(i, k) - ((i == k) ? alpha : cx{0.0, 0.0});
      unorm_sq += std::norm(u[i]);
    }
    if (unorm_sq == 0.0) continue;
    const real inv = 1.0 / std::sqrt(unorm_sq);
    for (index_t i = k; i < m; ++i) u[i] *= inv;

    // R ← (I − 2uuᴴ) R on the trailing columns.
    for (index_t j = k; j < n; ++j) {
      cx proj{0.0, 0.0};
      for (index_t i = k; i < m; ++i) proj += std::conj(u[i]) * r(i, j);
      proj *= 2.0;
      for (index_t i = k; i < m; ++i) r(i, j) -= proj * u[i];
    }
    // Q ← Q (I − 2uuᴴ).
    for (index_t row = 0; row < m; ++row) {
      cx proj{0.0, 0.0};
      for (index_t i = k; i < m; ++i) proj += q_full(row, i) * u[i];
      proj *= 2.0;
      for (index_t i = k; i < m; ++i)
        q_full(row, i) -= proj * std::conj(u[i]);
    }
  }

  // Canonicalize: make R's diagonal real non-negative by a phase similarity.
  QrResult out;
  out.q = Matrix(m, n);
  out.r = Matrix(n, n);
  for (index_t k = 0; k < n; ++k) {
    const cx d = r(k, k);
    const cx phase =
        (d == cx{0.0, 0.0}) ? cx{1.0, 0.0} : d / std::abs(d);
    for (index_t j = k; j < n; ++j)
      out.r(k, j) = std::conj(phase) * r(k, j);
    for (index_t i = 0; i < m; ++i) out.q(i, k) = q_full(i, k) * phase;
  }
  return out;
}

Vector least_squares(const Matrix& a, const Vector& b) {
  MMW_REQUIRE(b.size() == a.rows());
  const QrResult f = qr_decompose(a);
  const index_t n = a.cols();
  // x = R⁻¹ Qᴴ b (back substitution).
  Vector y(n);
  for (index_t k = 0; k < n; ++k) {
    cx acc{0.0, 0.0};
    for (index_t i = 0; i < a.rows(); ++i)
      acc += std::conj(f.q(i, k)) * b[i];
    y[k] = acc;
  }
  Vector x(n);
  for (index_t kk = n; kk-- > 0;) {
    cx acc = y[kk];
    for (index_t j = kk + 1; j < n; ++j) acc -= f.r(kk, j) * x[j];
    MMW_REQUIRE_MSG(std::abs(f.r(kk, kk)) > 1e-13 * (1.0 + f.r(0, 0).real()),
                    "least_squares: rank-deficient matrix");
    x[kk] = acc / f.r(kk, kk);
  }
  return x;
}

}  // namespace mmw::linalg
