// Dense complex vector type.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "linalg/common.h"

namespace mmw::linalg {

/// Dense column vector over mmw::cx.
///
/// Value type with the usual arithmetic; Hermitian inner products follow the
/// physics convention `dot(a, b) = aᴴ b` (conjugate-linear in the first
/// argument), matching the beamforming expressions `vᴴ H u` in the paper.
class Vector {
 public:
  Vector() = default;

  /// Zero vector of dimension n.
  explicit Vector(index_t n) : data_(n, cx{0.0, 0.0}) {}

  Vector(std::initializer_list<cx> init) : data_(init) {}

  /// Copies the span contents.
  explicit Vector(std::span<const cx> values)
      : data_(values.begin(), values.end()) {}

  index_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  cx& operator[](index_t i) { return data_[i]; }
  const cx& operator[](index_t i) const { return data_[i]; }

  /// Bounds-checked access.
  cx& at(index_t i);
  const cx& at(index_t i) const;

  std::span<const cx> data() const { return data_; }
  std::span<cx> data() { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(cx scalar);
  Vector& operator/=(cx scalar);

  /// Element-wise conjugate.
  Vector conjugate() const;

  /// Euclidean norm ‖v‖₂.
  real norm() const;

  /// Squared Euclidean norm.
  real squared_norm() const;

  /// Returns v / ‖v‖₂. Precondition: ‖v‖₂ > 0.
  Vector normalized() const;

  /// All-zeros vector.
  static Vector zeros(index_t n) { return Vector(n); }

  /// All-ones vector.
  static Vector ones(index_t n);

  /// Standard basis vector e_i of dimension n.
  static Vector basis(index_t n, index_t i);

 private:
  std::vector<cx> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(Vector v, cx scalar);
Vector operator*(cx scalar, Vector v);
Vector operator/(Vector v, cx scalar);
Vector operator-(Vector v);

/// Hermitian inner product aᴴ b (conjugate-linear in `a`).
cx dot(const Vector& a, const Vector& b);

/// True when ‖a − b‖₂ ≤ tol.
bool approx_equal(const Vector& a, const Vector& b, real tol);

}  // namespace mmw::linalg
