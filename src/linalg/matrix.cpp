#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace mmw::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<cx>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    MMW_REQUIRE_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

cx& Matrix::at(index_t i, index_t j) {
  MMW_REQUIRE_MSG(i < rows_ && j < cols_, "matrix index out of range");
  return (*this)(i, j);
}

const cx& Matrix::at(index_t i, index_t j) const {
  MMW_REQUIRE_MSG(i < rows_ && j < cols_, "matrix index out of range");
  return (*this)(i, j);
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  MMW_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (index_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  MMW_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (index_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(cx scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix& Matrix::operator/=(cx scalar) {
  MMW_REQUIRE_MSG(std::abs(scalar) > 0.0, "division by zero");
  for (auto& v : data_) v /= scalar;
  return *this;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = 0; j < cols_; ++j) out(j, i) = std::conj((*this)(i, j));
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::conjugate() const {
  Matrix out(rows_, cols_);
  for (index_t i = 0; i < data_.size(); ++i)
    out.data_[i] = std::conj(data_[i]);
  return out;
}

cx Matrix::trace() const {
  MMW_REQUIRE_MSG(is_square(), "trace requires a square matrix");
  cx acc{0.0, 0.0};
  for (index_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

real Matrix::frobenius_norm() const {
  real acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return std::sqrt(acc);
}

real Matrix::max_abs() const {
  real m = 0.0;
  for (const auto& v : data_) m = std::max(m, std::abs(v));
  return m;
}

Vector Matrix::col(index_t j) const {
  MMW_REQUIRE(j < cols_);
  Vector out(rows_);
  for (index_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Vector Matrix::row(index_t i) const {
  MMW_REQUIRE(i < rows_);
  Vector out(cols_);
  for (index_t j = 0; j < cols_; ++j) out[j] = (*this)(i, j);
  return out;
}

void Matrix::set_col(index_t j, const Vector& v) {
  MMW_REQUIRE(j < cols_ && v.size() == rows_);
  for (index_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

void Matrix::set_row(index_t i, const Vector& v) {
  MMW_REQUIRE(i < rows_ && v.size() == cols_);
  for (index_t j = 0; j < cols_; ++j) (*this)(i, j) = v[j];
}

bool Matrix::is_hermitian(real tol) const {
  if (!is_square()) return false;
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = i; j < cols_; ++j)
      if (std::abs((*this)(i, j) - std::conj((*this)(j, i))) > tol)
        return false;
  return true;
}

Matrix Matrix::identity(index_t n) {
  Matrix out(n, n);
  for (index_t i = 0; i < n; ++i) out(i, i) = cx{1.0, 0.0};
  return out;
}

Matrix Matrix::diagonal(std::span<const real> entries) {
  Matrix out(entries.size(), entries.size());
  for (index_t i = 0; i < entries.size(); ++i)
    out(i, i) = cx{entries[i], 0.0};
  return out;
}

Matrix Matrix::diagonal(std::span<const cx> entries) {
  Matrix out(entries.size(), entries.size());
  for (index_t i = 0; i < entries.size(); ++i) out(i, i) = entries[i];
  return out;
}

Matrix Matrix::outer(const Vector& a, const Vector& b) {
  Matrix out(a.size(), b.size());
  for (index_t i = 0; i < a.size(); ++i)
    for (index_t j = 0; j < b.size(); ++j)
      out(i, j) = a[i] * std::conj(b[j]);
  return out;
}

Matrix& Matrix::add_scaled_outer(cx alpha, const Vector& a, const Vector& b) {
  MMW_REQUIRE_MSG(a.size() == rows_ && b.size() == cols_,
                  "rank-one update shape mismatch");
  cx* out = data_.data();
  for (index_t i = 0; i < rows_; ++i) {
    const cx ai = a[i];
    for (index_t j = 0; j < cols_; ++j)
      out[i * cols_ + j] += (ai * std::conj(b[j])) * alpha;
  }
  return *this;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, cx scalar) { return m *= scalar; }
Matrix operator*(cx scalar, Matrix m) { return m *= scalar; }
Matrix operator/(Matrix m, cx scalar) { return m /= scalar; }

Matrix operator-(Matrix m) {
  for (auto& v : m.data()) v = -v;
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  MMW_REQUIRE_MSG(a.cols() == b.rows(), "matrix product shape mismatch");
  // ikj order: the inner loop streams contiguous rows of B and OUT, which
  // the compiler can keep in registers / vectorize; raw pointers sidestep
  // the per-access index arithmetic of operator(). Accumulation order is
  // identical to the classical triple loop, so results are bit-stable.
  Matrix out(a.rows(), b.cols());
  const index_t n = b.cols();
  const cx* bp = b.data().data();
  cx* op = out.data().data();
  for (index_t i = 0; i < a.rows(); ++i) {
    cx* out_row = op + i * n;
    for (index_t k = 0; k < a.cols(); ++k) {
      const cx aik = a(i, k);
      if (aik == cx{0.0, 0.0}) continue;
      const cx* b_row = bp + k * n;
      for (index_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Vector operator*(const Matrix& a, const Vector& v) {
  MMW_REQUIRE_MSG(a.cols() == v.size(), "matrix-vector shape mismatch");
  Vector out(a.rows());
  const cx* ap = a.data().data();
  const cx* vp = v.data().data();
  for (index_t i = 0; i < a.rows(); ++i) {
    const cx* a_row = ap + i * a.cols();
    cx acc{0.0, 0.0};
    for (index_t j = 0; j < a.cols(); ++j) acc += a_row[j] * vp[j];
    out[i] = acc;
  }
  return out;
}

bool approx_equal(const Matrix& a, const Matrix& b, real tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return (a - b).frobenius_norm() <= tol;
}

cx quadratic_form(const Vector& a, const Matrix& m, const Vector& b) {
  MMW_REQUIRE(a.size() == m.rows() && b.size() == m.cols());
  return dot(a, m * b);
}

real hermitian_form(const Vector& v, const Matrix& m) {
  MMW_REQUIRE(m.is_square());
  return quadratic_form(v, m, v).real();
}

}  // namespace mmw::linalg
