// Scalar tier, arena, and runtime dispatch for the batched scoring kernels.
//
// This translation unit is compiled with -ffp-contract=off (see
// src/linalg/CMakeLists.txt): the bit-exactness contract between tiers
// forbids the compiler from fusing the kernels' separate multiply and add
// steps into FMAs that round differently.
#include "linalg/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mmw::linalg::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier
// ---------------------------------------------------------------------------
//
// Each kernel blocks the batch (column) dimension so the per-block
// accumulators live in registers across the whole reduction. Blocking never
// changes results: every output element still accumulates its own terms in
// ascending reduction order, one rounded sum per term — exactly the
// std::complex arithmetic of the historical per-codeword path.

constexpr index_t kBlock = 8;

/// out-rows k of Aᴴ·X for one column block [c0, c0+width).
template <index_t kWidth>
void adjoint_gemm_block(const Matrix& a, const SoAConstView& x, SoAView& out,
                        index_t k, index_t c0) {
  const index_t n = a.rows();
  const index_t v = x.cols;
  double acc_re[kWidth] = {};
  double acc_im[kWidth] = {};
  for (index_t i = 0; i < n; ++i) {
    const cx b = a(i, k);
    const double br = b.real();
    const double bi = b.imag();
    const double* xr = x.re + i * v + c0;
    const double* xi = x.im + i * v + c0;
    for (index_t c = 0; c < kWidth; ++c) {
      // conj(b)·x: re = br·xr + bi·xi, im = br·xi − bi·xr; each product
      // rounded individually, then ONE rounded sum per component, then the
      // accumulator add — the same three roundings std::conj(b) * x does.
      const double t1 = br * xr[c];
      const double t2 = bi * xi[c];
      const double t3 = br * xi[c];
      const double t4 = bi * xr[c];
      acc_re[c] += t1 + t2;
      acc_im[c] += t3 - t4;
    }
  }
  for (index_t c = 0; c < kWidth; ++c) {
    out.re[k * v + c0 + c] = acc_re[c];
    out.im[k * v + c0 + c] = acc_im[c];
  }
}

void adjoint_gemm_scalar_tail(const Matrix& a, const SoAConstView& x,
                              SoAView& out, index_t k, index_t c0) {
  const index_t n = a.rows();
  const index_t v = x.cols;
  for (index_t c = c0; c < v; ++c) {
    double acc_re = 0.0;
    double acc_im = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const cx b = a(i, k);
      const double t1 = b.real() * x.re[i * v + c];
      const double t2 = b.imag() * x.im[i * v + c];
      const double t3 = b.real() * x.im[i * v + c];
      const double t4 = b.imag() * x.re[i * v + c];
      acc_re += t1 + t2;
      acc_im += t3 - t4;
    }
    out.re[k * v + c] = acc_re;
    out.im[k * v + c] = acc_im;
  }
}

void adjoint_gemm_scalar(const Matrix& a, SoAConstView x, SoAView out) {
  const index_t r = a.cols();
  const index_t v = x.cols;
  const index_t main = v - v % kBlock;
  for (index_t k = 0; k < r; ++k) {
    for (index_t c0 = 0; c0 < main; c0 += kBlock)
      adjoint_gemm_block<kBlock>(a, x, out, k, c0);
    adjoint_gemm_scalar_tail(a, x, out, k, main);
  }
}

template <index_t kWidth>
void gemm_block(const Matrix& a, const SoAConstView& x, SoAView& out,
                index_t i, index_t c0) {
  const index_t n = a.cols();
  const index_t v = x.cols;
  double acc_re[kWidth] = {};
  double acc_im[kWidth] = {};
  for (index_t j = 0; j < n; ++j) {
    const cx aij = a(i, j);
    const double ar = aij.real();
    const double ai = aij.imag();
    const double* xr = x.re + j * v + c0;
    const double* xi = x.im + j * v + c0;
    for (index_t c = 0; c < kWidth; ++c) {
      // a·x: re = ar·xr − ai·xi, im = ar·xi + ai·xr.
      const double t1 = ar * xr[c];
      const double t2 = ai * xi[c];
      const double t3 = ar * xi[c];
      const double t4 = ai * xr[c];
      acc_re[c] += t1 - t2;
      acc_im[c] += t3 + t4;
    }
  }
  for (index_t c = 0; c < kWidth; ++c) {
    out.re[i * v + c0 + c] = acc_re[c];
    out.im[i * v + c0 + c] = acc_im[c];
  }
}

void gemm_scalar_tail(const Matrix& a, const SoAConstView& x, SoAView& out,
                      index_t i, index_t c0) {
  const index_t n = a.cols();
  const index_t v = x.cols;
  for (index_t c = c0; c < v; ++c) {
    double acc_re = 0.0;
    double acc_im = 0.0;
    for (index_t j = 0; j < n; ++j) {
      const cx aij = a(i, j);
      const double t1 = aij.real() * x.re[j * v + c];
      const double t2 = aij.imag() * x.im[j * v + c];
      const double t3 = aij.real() * x.im[j * v + c];
      const double t4 = aij.imag() * x.re[j * v + c];
      acc_re += t1 - t2;
      acc_im += t3 + t4;
    }
    out.re[i * v + c] = acc_re;
    out.im[i * v + c] = acc_im;
  }
}

void gemm_scalar(const Matrix& a, SoAConstView x, SoAView out) {
  const index_t m = a.rows();
  const index_t v = x.cols;
  const index_t main = v - v % kBlock;
  for (index_t i = 0; i < m; ++i) {
    for (index_t c0 = 0; c0 < main; c0 += kBlock)
      gemm_block<kBlock>(a, x, out, i, c0);
    gemm_scalar_tail(a, x, out, i, main);
  }
}

void inner_scalar(SoAConstView p, SoAConstView t, std::span<real> out) {
  const index_t r = p.rows;
  const index_t v = p.cols;
  for (index_t c = 0; c < v; ++c) out[c] = 0.0;
  for (index_t k = 0; k < r; ++k) {
    const double* pr = p.re + k * v;
    const double* pi = p.im + k * v;
    const double* tr = t.re + k * v;
    const double* ti = t.im + k * v;
    for (index_t c = 0; c < v; ++c) {
      // Re(conj(p)·t) = pr·tr + pi·ti, one rounded sum per term — the real
      // component of linalg::dot's accumulation.
      const double t1 = pr[c] * tr[c];
      const double t2 = pi[c] * ti[c];
      out[c] += t1 + t2;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

struct KernelTable {
  void (*adjoint_gemm)(const Matrix&, SoAConstView, SoAView);
  void (*gemm)(const Matrix&, SoAConstView, SoAView);
  void (*inner)(SoAConstView, SoAConstView, std::span<real>);
  Tier tier;
};

}  // namespace

#if defined(MMW_HAVE_AVX2_TU)
// Defined in kernels_avx2.cpp (compiled with -mavx2 -ffp-contract=off).
namespace detail {
void adjoint_gemm_avx2(const Matrix& a, SoAConstView x, SoAView out);
void gemm_avx2(const Matrix& a, SoAConstView x, SoAView out);
void inner_avx2(SoAConstView p, SoAConstView t, std::span<real> out);
}  // namespace detail
#endif

namespace {

KernelTable make_table(Tier tier) {
#if defined(MMW_HAVE_AVX2_TU)
  if (tier == Tier::kAvx2)
    return {detail::adjoint_gemm_avx2, detail::gemm_avx2, detail::inner_avx2,
            Tier::kAvx2};
#endif
  return {adjoint_gemm_scalar, gemm_scalar, inner_scalar, Tier::kScalar};
}

KernelTable init_table() {
  Tier want = cpu_supports_avx2() ? Tier::kAvx2 : Tier::kScalar;
  if (const char* env = std::getenv("MMW_KERNELS")) {
    if (std::strcmp(env, "scalar") == 0) {
      want = Tier::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      if (cpu_supports_avx2()) {
        want = Tier::kAvx2;
      } else {
        std::fprintf(stderr,
                     "note: MMW_KERNELS=avx2 requested but this CPU/build "
                     "has no AVX2 tier; using scalar kernels\n");
        want = Tier::kScalar;
      }
    } else if (std::strcmp(env, "auto") != 0 && env[0] != '\0') {
      std::fprintf(stderr,
                   "note: unknown MMW_KERNELS value '%s' (expected scalar, "
                   "avx2, or auto); using auto dispatch\n",
                   env);
    }
  }
  return make_table(want);
}

KernelTable& table() {
  static KernelTable t = init_table();
  return t;
}

std::atomic<std::size_t> g_arena_high_water{0};

void publish_high_water(std::size_t bytes) {
  std::size_t seen = g_arena_high_water.load(std::memory_order_relaxed);
  while (bytes > seen &&
         !g_arena_high_water.compare_exchange_weak(
             seen, bytes, std::memory_order_relaxed)) {
  }
}

}  // namespace

Tier active_tier() { return table().tier; }

std::string_view tier_name(Tier tier) {
  switch (tier) {
    case Tier::kAvx2: return "avx2";
    case Tier::kScalar: break;
  }
  return "scalar";
}

std::string_view active_tier_name() { return tier_name(active_tier()); }

bool cpu_supports_avx2() {
#if defined(MMW_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

void force_tier_for_testing(Tier tier) {
  MMW_REQUIRE_MSG(tier == Tier::kScalar || cpu_supports_avx2(),
                  "forcing a tier this CPU/build cannot run");
  table() = make_table(tier);
}

void reset_tier_for_testing() { table() = init_table(); }

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kArenaAlign = 32;
constexpr std::size_t kArenaMinBlock = 1 << 14;  // 16 KiB

std::size_t round_up(std::size_t n) {
  return (n + kArenaAlign - 1) & ~(kArenaAlign - 1);
}
}  // namespace

std::size_t Arena::capacity_bytes() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.size;
  return total;
}

void* Arena::raw_alloc(std::size_t bytes) {
  bytes = round_up(std::max<std::size_t>(bytes, 1));
  if (blocks_.empty() || blocks_.back().used + bytes > blocks_.back().size) {
    // Grow geometrically so steady state settles into one block that every
    // pass fits in; reset() coalesces the stragglers.
    const std::size_t size =
        std::max({bytes, kArenaMinBlock, 2 * capacity_bytes()});
    Block b;
    b.storage.resize(size + kArenaAlign);
    const auto addr = reinterpret_cast<std::uintptr_t>(b.storage.data());
    b.base = b.storage.data() + (round_up(addr) - addr);
    b.size = size;
    blocks_.push_back(std::move(b));
  }
  Block& b = blocks_.back();
  void* out = b.base + b.used;
  b.used += bytes;
  used_ += bytes;
  high_water_ = std::max(high_water_, used_);
  return out;
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    const std::size_t total = capacity_bytes();
    blocks_.clear();
    Block b;
    b.storage.resize(total + kArenaAlign);
    const auto addr = reinterpret_cast<std::uintptr_t>(b.storage.data());
    b.base = b.storage.data() + (round_up(addr) - addr);
    b.size = total;
    blocks_.push_back(std::move(b));
  }
  if (!blocks_.empty()) blocks_.back().used = 0;
  used_ = 0;
}

ArenaScope::~ArenaScope() {
  if (--arena_.scope_depth_ == 0) {
    publish_high_water(arena_.high_water_bytes());
    arena_.reset();
  }
}

Arena& scratch_arena() {
  thread_local Arena arena;
  return arena;
}

std::size_t arena_high_water_bytes() {
  return g_arena_high_water.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// SoAComplex
// ---------------------------------------------------------------------------

SoAComplex SoAComplex::pack_columns(std::span<const Vector> columns) {
  if (columns.empty()) return {};
  const index_t rows = columns.front().size();
  SoAComplex out(rows, columns.size());
  for (index_t j = 0; j < columns.size(); ++j) {
    MMW_REQUIRE_MSG(columns[j].size() == rows,
                    "packed columns must share one dimension");
    for (index_t i = 0; i < rows; ++i) out.set(i, j, columns[j][i]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

void adjoint_gemm_batch(const Matrix& a, SoAConstView x, SoAView out) {
  MMW_REQUIRE_MSG(a.rows() == x.rows && a.cols() == out.rows &&
                      x.cols == out.cols,
                  "adjoint_gemm_batch shape mismatch");
  table().adjoint_gemm(a, x, out);
}

void gemm_batch(const Matrix& a, SoAConstView x, SoAView out) {
  MMW_REQUIRE_MSG(a.cols() == x.rows && a.rows() == out.rows &&
                      x.cols == out.cols,
                  "gemm_batch shape mismatch");
  table().gemm(a, x, out);
}

void hermitian_inner_batch(SoAConstView p, SoAConstView t,
                           std::span<real> out) {
  MMW_REQUIRE_MSG(p.rows == t.rows && p.cols == t.cols && out.size() == p.cols,
                  "hermitian_inner_batch shape mismatch");
  table().inner(p, t, out);
}

void factored_scores(const Matrix& basis, const Matrix& core,
                     const SoAComplex& codewords, std::span<real> out) {
  const index_t n = codewords.rows();
  const index_t v = codewords.cols();
  const index_t r = core.rows();
  MMW_REQUIRE_MSG(basis.rows() == n && basis.cols() == r && core.is_square() &&
                      out.size() == v,
                  "factored_scores shape mismatch");
  Arena& arena = scratch_arena();
  ArenaScope scope(arena);
  const auto p_re = arena.alloc<double>(r * v);
  const auto p_im = arena.alloc<double>(r * v);
  const auto t_re = arena.alloc<double>(r * v);
  const auto t_im = arena.alloc<double>(r * v);
  SoAView p{p_re.data(), p_im.data(), r, v};
  SoAView t{t_re.data(), t_im.data(), r, v};
  adjoint_gemm_batch(basis, codewords.view(), p);
  const SoAConstView pc{p.re, p.im, r, v};
  gemm_batch(core, pc, t);
  hermitian_inner_batch(pc, {t.re, t.im, r, v}, out);
}

void dense_scores(const Matrix& q, const SoAComplex& codewords,
                  std::span<real> out) {
  const index_t n = codewords.rows();
  const index_t v = codewords.cols();
  MMW_REQUIRE_MSG(q.is_square() && q.rows() == n && out.size() == v,
                  "dense_scores shape mismatch");
  Arena& arena = scratch_arena();
  ArenaScope scope(arena);
  const auto t_re = arena.alloc<double>(n * v);
  const auto t_im = arena.alloc<double>(n * v);
  SoAView t{t_re.data(), t_im.data(), n, v};
  gemm_batch(q, codewords.view(), t);
  hermitian_inner_batch(codewords.view(), {t.re, t.im, n, v}, out);
}

}  // namespace mmw::linalg::kernels
