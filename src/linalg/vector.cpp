#include "linalg/vector.h"

#include <cmath>

namespace mmw::linalg {

cx& Vector::at(index_t i) {
  MMW_REQUIRE_MSG(i < size(), "vector index out of range");
  return data_[i];
}

const cx& Vector::at(index_t i) const {
  MMW_REQUIRE_MSG(i < size(), "vector index out of range");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  MMW_REQUIRE(size() == rhs.size());
  for (index_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  MMW_REQUIRE(size() == rhs.size());
  for (index_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(cx scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Vector& Vector::operator/=(cx scalar) {
  MMW_REQUIRE_MSG(std::abs(scalar) > 0.0, "division by zero");
  for (auto& v : data_) v /= scalar;
  return *this;
}

Vector Vector::conjugate() const {
  Vector out(size());
  for (index_t i = 0; i < size(); ++i) out[i] = std::conj(data_[i]);
  return out;
}

real Vector::norm() const { return std::sqrt(squared_norm()); }

real Vector::squared_norm() const {
  real acc = 0.0;
  for (const auto& v : data_) acc += std::norm(v);
  return acc;
}

Vector Vector::normalized() const {
  const real n = norm();
  MMW_REQUIRE_MSG(n > 0.0, "cannot normalize the zero vector");
  Vector out = *this;
  out /= cx{n, 0.0};
  return out;
}

Vector Vector::ones(index_t n) {
  Vector out(n);
  for (auto& v : out) v = cx{1.0, 0.0};
  return out;
}

Vector Vector::basis(index_t n, index_t i) {
  MMW_REQUIRE(i < n);
  Vector out(n);
  out[i] = cx{1.0, 0.0};
  return out;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(Vector v, cx scalar) { return v *= scalar; }
Vector operator*(cx scalar, Vector v) { return v *= scalar; }
Vector operator/(Vector v, cx scalar) { return v /= scalar; }

Vector operator-(Vector v) {
  for (auto& x : v) x = -x;
  return v;
}

cx dot(const Vector& a, const Vector& b) {
  MMW_REQUIRE(a.size() == b.size());
  cx acc{0.0, 0.0};
  for (index_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

bool approx_equal(const Vector& a, const Vector& b, real tol) {
  if (a.size() != b.size()) return false;
  return (a - b).norm() <= tol;
}

}  // namespace mmw::linalg
