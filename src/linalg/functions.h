// Matrix functions built on the Hermitian eigendecomposition: PSD projection,
// square roots, nuclear-norm proximal operator, matrix norms and rank.
#pragma once

#include "linalg/eig.h"
#include "linalg/matrix.h"

namespace mmw::linalg {

/// Projection of a Hermitian matrix onto the PSD cone: negative eigenvalues
/// are clipped to zero. This is the Euclidean (Frobenius) projection.
Matrix psd_project(const Matrix& a);

/// Hermitian PSD square root: returns S with S·S = A, S Hermitian PSD.
/// Eigenvalues slightly negative from rounding are clipped to zero.
Matrix hermitian_sqrt(const Matrix& a);

/// Proximal operator of μ‖·‖₁ (eigenvalue soft-thresholding) restricted to
/// the PSD cone:  prox(A) = V diag(max(λ − μ, 0)) Vᴴ.
///
/// For Hermitian PSD matrices the nuclear norm equals the trace, and this is
/// exactly the prox of μ‖·‖₁ composed with PSD projection — the update used
/// by the regularized ML covariance solver (paper eq. 23).
Matrix eigenvalue_soft_threshold(const Matrix& a, real mu);

/// Nuclear norm ‖A‖₁ = Σσᵢ (sum of singular values).
real nuclear_norm(const Matrix& a);

/// Spectral norm ‖A‖₂ = σ_max.
real spectral_norm(const Matrix& a);

/// Numerical rank: number of singular values above `rel_tol · σ_max`.
index_t numerical_rank(const Matrix& a, real rel_tol = 1e-9);

/// Kronecker product A ⊗ B.
Matrix kronecker(const Matrix& a, const Matrix& b);

/// Best rank-k approximation in Frobenius norm (truncated SVD).
Matrix low_rank_approximation(const Matrix& a, index_t k);

}  // namespace mmw::linalg
