#include "phy/hybrid.h"

#include <algorithm>
#include <cmath>

#include "linalg/decompositions.h"
#include "linalg/eig.h"

namespace mmw::phy {

using linalg::Matrix;
using linalg::Vector;

Matrix optimal_digital_precoder(const Matrix& h, index_t n_streams) {
  MMW_REQUIRE_MSG(!h.empty(), "empty channel matrix");
  MMW_REQUIRE(n_streams >= 1 &&
              n_streams <= std::min(h.rows(), h.cols()));
  const auto svd = linalg::svd(h);
  Matrix f(h.cols(), n_streams);
  for (index_t s = 0; s < n_streams; ++s) f.set_col(s, svd.v.col(s));
  return f;
}

HybridPrecoderResult design_hybrid_precoder(
    const Matrix& h, index_t n_streams, index_t n_rf,
    std::span<const Vector> dictionary) {
  MMW_REQUIRE_MSG(!dictionary.empty(), "empty dictionary");
  MMW_REQUIRE(n_streams >= 1 && n_streams <= n_rf);
  MMW_REQUIRE_MSG(n_rf <= dictionary.size(),
                  "more RF chains than dictionary atoms");
  const index_t m = h.cols();
  for (const Vector& a : dictionary)
    MMW_REQUIRE_MSG(a.size() == m, "dictionary atom dimension mismatch");

  const Matrix f_opt = optimal_digital_precoder(h, n_streams);
  const real f_opt_norm = f_opt.frobenius_norm();

  HybridPrecoderResult result;
  result.f_rf = Matrix(m, 0);
  Matrix residual = f_opt;
  std::vector<bool> used(dictionary.size(), false);
  Matrix f_bb;

  for (index_t r = 0; r < n_rf; ++r) {
    // Select the atom most correlated with the residual subspace.
    index_t best = dictionary.size();
    real best_score = -1.0;
    for (index_t a = 0; a < dictionary.size(); ++a) {
      if (used[a]) continue;
      real score = 0.0;
      for (index_t s = 0; s < residual.cols(); ++s)
        score += std::norm(linalg::dot(dictionary[a], residual.col(s)));
      if (score > best_score) {
        best_score = score;
        best = a;
      }
    }
    if (best == dictionary.size()) break;
    used[best] = true;
    result.atom_indices.push_back(best);

    // Grow F_RF and refit F_BB = argmin ‖F_opt − F_RF F_BB‖_F column-wise.
    Matrix f_rf(m, result.atom_indices.size());
    for (index_t c = 0; c < result.atom_indices.size(); ++c)
      f_rf.set_col(c, dictionary[result.atom_indices[c]]);
    f_bb = Matrix(result.atom_indices.size(), n_streams);
    for (index_t s = 0; s < n_streams; ++s)
      f_bb.set_col(s, linalg::least_squares(f_rf, f_opt.col(s)));
    residual = f_opt - f_rf * f_bb;
    result.f_rf = std::move(f_rf);
  }

  // Power normalization: ‖F_RF F_BB‖_F = √n_streams.
  const Matrix combined = result.f_rf * f_bb;
  const real norm = combined.frobenius_norm();
  MMW_REQUIRE_MSG(norm > 0.0, "degenerate hybrid precoder");
  result.f_bb =
      f_bb * cx{std::sqrt(static_cast<real>(n_streams)) / norm, 0.0};
  result.approximation_error = residual.frobenius_norm() / f_opt_norm;
  return result;
}

real precoded_spectral_efficiency(const Matrix& h, const Matrix& f,
                                  real total_power) {
  MMW_REQUIRE(f.rows() == h.cols());
  MMW_REQUIRE_MSG(total_power > 0.0, "power must be positive");
  const index_t n_streams = f.cols();
  MMW_REQUIRE(n_streams >= 1);
  const Matrix heff = h * f;  // N × n_streams
  // log2 det(I + (P/ns)·Heffᴴ Heff) — use the smaller Gram matrix.
  Matrix gram = heff.adjoint() * heff;
  gram *= cx{total_power / static_cast<real>(n_streams), 0.0};
  gram += Matrix::identity(n_streams);
  const cx det = linalg::determinant(gram);
  // The Gram matrix is Hermitian PSD + I: determinant is real positive.
  return std::log2(std::max(det.real(), 1e-300));
}

}  // namespace mmw::phy
