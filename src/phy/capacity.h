// Link-capacity evaluation: Shannon rates for the beamformed link and the
// full-MIMO upper bounds (waterfilling / equal power) it is compared to.
// Used to quantify how much of a sparse mmWave channel's capacity a single
// analog beam pair captures (cf. the paper's related work [14] on
// diversity/multiplexing with multiple arrays).
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace mmw::phy {

/// Scalar AWGN capacity log2(1 + snr), bit/s/Hz. Precondition: snr ≥ 0.
real awgn_capacity_bps_hz(real snr);

/// Waterfilling power allocation over the eigenmodes of H with unit noise:
/// maximizes Σ log2(1 + p_i σ_i²) s.t. Σ p_i = total_power, p_i ≥ 0.
struct WaterfillingResult {
  std::vector<real> mode_powers;  ///< per singular mode, descending σ order
  real water_level = 0.0;
  real capacity_bps_hz = 0.0;
};

/// Preconditions: non-empty H, total_power > 0.
WaterfillingResult waterfilling_capacity(const linalg::Matrix& h,
                                         real total_power);

/// Equal-power spatial multiplexing (no CSIT): C = Σ log2(1 + P/s·σ_i²)
/// over the s = min(N,M) modes.
real equal_power_capacity(const linalg::Matrix& h, real total_power);

/// Rank-one analog beamforming rate with the pair (u, v):
/// log2(1 + P·|vᴴ H u|²). Preconditions: shapes match, total_power > 0.
real beamforming_capacity(const linalg::Matrix& h, const linalg::Vector& u,
                          const linalg::Vector& v, real total_power);

/// The best possible rank-one rate: log2(1 + P·σ_max²) (optimal
/// unconstrained transmit/receive beamformers).
real optimal_beamforming_capacity(const linalg::Matrix& h, real total_power);

}  // namespace mmw::phy
