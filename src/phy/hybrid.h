// Hybrid analog/digital precoding via spatially sparse approximation
// (Orthogonal Matching Pursuit over a steering dictionary — the El Ayach /
// Heath construction). A mmWave transmitter with only n_rf RF chains
// implements F = F_RF · F_BB where F_RF's columns are analog
// (steering-vector) beams and F_BB is a small digital mixer; on sparse
// channels a handful of RF chains recovers almost all of the fully-digital
// precoder's spectral efficiency.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace mmw::phy {

struct HybridPrecoderResult {
  std::vector<index_t> atom_indices;  ///< dictionary columns used by F_RF
  linalg::Matrix f_rf;  ///< M × n_rf analog beamformer (unit-norm columns)
  linalg::Matrix f_bb;  ///< n_rf × n_streams digital mixer
  real approximation_error = 0.0;  ///< ‖F_opt − F_RF F_BB‖_F / ‖F_opt‖_F
};

/// Designs a hybrid precoder approximating the optimal fully-digital one
/// (the top-`n_streams` right singular vectors of H) using `n_rf` analog
/// beams drawn from `dictionary`. The combined precoder is normalized to
/// ‖F_RF F_BB‖_F² = n_streams (total power constraint).
///
/// Preconditions: 1 ≤ n_streams ≤ n_rf ≤ dictionary.size(); dictionary
/// vectors sized to H's columns; H non-empty.
HybridPrecoderResult design_hybrid_precoder(
    const linalg::Matrix& h, index_t n_streams, index_t n_rf,
    std::span<const linalg::Vector> dictionary);

/// Spectral efficiency (bit/s/Hz) of transmitting n_streams equal-power
/// streams through precoder F over channel H with unit noise:
///   log2 det(I + (P/n_streams)·(H F)(H F)ᴴ).
/// Preconditions: F = f (M × n_streams) shaped to H, total_power > 0.
real precoded_spectral_efficiency(const linalg::Matrix& h,
                                  const linalg::Matrix& f, real total_power);

/// The fully-digital reference: the optimal rank-n_streams precoder
/// (top right singular vectors, waterfilling-free equal power).
linalg::Matrix optimal_digital_precoder(const linalg::Matrix& h,
                                        index_t n_streams);

}  // namespace mmw::phy
