#include "phy/capacity.h"

#include <cmath>

#include "linalg/eig.h"

namespace mmw::phy {

using linalg::Matrix;
using linalg::Vector;

real awgn_capacity_bps_hz(real snr) {
  MMW_REQUIRE_MSG(snr >= 0.0, "SNR must be non-negative");
  return std::log2(1.0 + snr);
}

WaterfillingResult waterfilling_capacity(const Matrix& h, real total_power) {
  MMW_REQUIRE_MSG(!h.empty(), "empty channel matrix");
  MMW_REQUIRE_MSG(total_power > 0.0, "power must be positive");

  const auto svd = linalg::svd(h);
  // Mode gains g_i = σ_i²; usable modes have g_i > 0.
  std::vector<real> gains;
  for (const real s : svd.singular_values) {
    const real g = s * s;
    if (g > 1e-14 * svd.singular_values[0] * svd.singular_values[0])
      gains.push_back(g);
  }
  MMW_REQUIRE_MSG(!gains.empty(), "channel is identically zero");

  // Active-set waterfilling: gains are sorted descending (svd order); try
  // the k strongest modes and find the largest k whose water level keeps
  // every active power non-negative.
  WaterfillingResult result;
  result.mode_powers.assign(svd.singular_values.size(), 0.0);
  for (index_t k = gains.size(); k >= 1; --k) {
    real inv_sum = 0.0;
    for (index_t i = 0; i < k; ++i) inv_sum += 1.0 / gains[i];
    const real level = (total_power + inv_sum) / static_cast<real>(k);
    if (level - 1.0 / gains[k - 1] >= 0.0) {
      result.water_level = level;
      for (index_t i = 0; i < k; ++i) {
        const real p = level - 1.0 / gains[i];
        result.mode_powers[i] = p;
        result.capacity_bps_hz += std::log2(1.0 + p * gains[i]);
      }
      return result;
    }
  }
  throw convergence_error("waterfilling: no feasible active set");
}

real equal_power_capacity(const Matrix& h, real total_power) {
  MMW_REQUIRE_MSG(!h.empty(), "empty channel matrix");
  MMW_REQUIRE_MSG(total_power > 0.0, "power must be positive");
  const auto svd = linalg::svd(h);
  const real per_mode =
      total_power / static_cast<real>(svd.singular_values.size());
  real c = 0.0;
  for (const real s : svd.singular_values)
    c += std::log2(1.0 + per_mode * s * s);
  return c;
}

real beamforming_capacity(const Matrix& h, const Vector& u, const Vector& v,
                          real total_power) {
  MMW_REQUIRE(u.size() == h.cols() && v.size() == h.rows());
  MMW_REQUIRE_MSG(total_power > 0.0, "power must be positive");
  const real gain = std::norm(linalg::dot(v, h * u));
  return std::log2(1.0 + total_power * gain);
}

real optimal_beamforming_capacity(const Matrix& h, real total_power) {
  MMW_REQUIRE_MSG(!h.empty(), "empty channel matrix");
  MMW_REQUIRE_MSG(total_power > 0.0, "power must be positive");
  const auto svd = linalg::svd(h);
  const real smax = svd.singular_values[0];
  return std::log2(1.0 + total_power * smax * smax);
}

}  // namespace mmw::phy
