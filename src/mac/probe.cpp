#include "mac/probe.h"

#include <cmath>

#include "linalg/matrix.h"
#include "obs/metrics.h"

namespace mmw::mac {

real probe_energy(const ProbeView& view, index_t tx_beam, index_t rx_beam,
                  index_t fades, randgen::Rng& rng, linalg::Vector& scratch) {
  MMW_REQUIRE(view.link != nullptr && view.tx_codebook != nullptr &&
              view.rx_codebook != nullptr);
  MMW_REQUIRE(tx_beam < view.tx_codebook->size());
  MMW_REQUIRE(rx_beam < view.rx_codebook->size());
  MMW_REQUIRE(fades > 0);
  MMW_REQUIRE(view.interference.empty() ||
              view.interference.size() == view.rx_codebook->size());
  const linalg::Vector& u = view.tx_codebook->codeword(tx_beam);
  const linalg::Vector& v = view.rx_codebook->codeword(rx_beam);
  // Bernoulli blockage shadows the whole slot, not individual fades.
  const bool blocked = view.blockage_probability > 0.0 &&
                       rng.uniform() < view.blockage_probability;
  // Effective noise floor: thermal 1/γ plus the beam's mean co-channel
  // interference power (multi-cell runs; 0 otherwise).
  const real noise_var =
      1.0 / view.gamma +
      (view.interference.empty() ? 0.0 : view.interference[rx_beam]);
  // Average matched-filter energy over the slot's independent fades.
  real energy = 0.0;
  for (index_t k = 0; k < fades; ++k) {
    cx z = rng.complex_normal(noise_var);
    if (!blocked) {
      view.link->draw_effective_channel_into(u, rng, scratch);
      z += linalg::dot(v, scratch);
    }
    energy += std::norm(z);
  }
  if (blocked && obs::enabled()) {
    static const obs::Counter counter =
        obs::Registry::global().counter("mac.session.blocked");
    counter.add();
  }
  return energy / static_cast<real>(fades);
}

}  // namespace mmw::mac
