#include "mac/timing.h"

#include <algorithm>
#include <cmath>

namespace mmw::mac {

real ProtocolTiming::alignment_latency_us(index_t measurements,
                                          index_t tx_slots) const {
  if (measurements == 0) return 0.0;
  MMW_REQUIRE_MSG(tx_slots >= 1, "need at least one TX-slot");
  MMW_REQUIRE_MSG(measurements >= tx_slots,
                  "more TX-slots than measurements");
  return static_cast<real>(measurements) *
             (measurement_slot_us + beam_switch_us) +
         static_cast<real>(tx_slots) * (feedback_slot_us + estimation_us);
}

real ProtocolTiming::overhead_fraction(index_t measurements,
                                       index_t tx_slots,
                                       real frame_us) const {
  MMW_REQUIRE_MSG(frame_us > 0.0, "frame duration must be positive");
  return std::clamp(alignment_latency_us(measurements, tx_slots) / frame_us,
                    0.0, 1.0);
}

real ProtocolTiming::net_spectral_efficiency(index_t measurements,
                                             index_t tx_slots, real frame_us,
                                             real post_beamforming_snr) const {
  MMW_REQUIRE_MSG(post_beamforming_snr >= 0.0, "SNR must be non-negative");
  const real overhead = overhead_fraction(measurements, tx_slots, frame_us);
  return (1.0 - overhead) * std::log2(1.0 + post_beamforming_snr);
}

}  // namespace mmw::mac
