// The resident-state-free measurement chain: one matched-filter probe of a
// beam pair over a realized link, with blockage and interference folded in.
//
// mac::Session owns per-run resident state (budget, ledger, records) around
// this chain; the serving engine (src/serve/) rebuilds links from RNG
// streams every epoch and probes through the SAME chain without holding a
// Session per user — which is why the chain lives here as a borrowed-view
// free function instead of a Session private (DESIGN.md §13).
//
// Determinism: probe_energy consumes a fixed draw sequence from `rng` —
// one uniform when blockage_probability > 0, then per fade one
// complex-normal noise draw plus (unless the slot is blocked) one effective
// channel draw — identical to the historical Session::probe_energy, so
// extracting it moved no bytes in any golden CSV.
#pragma once

#include <span>

#include "antenna/codebook.h"
#include "channel/link.h"
#include "randgen/rng.h"

namespace mmw::mac {

/// Borrowed view of everything one probe needs. All pointers are non-owning
/// and must outlive the call; `link` is the ACTIVE link (callers with a
/// fault plan resolve clean vs degraded before building the view).
struct ProbeView {
  const channel::Link* link = nullptr;
  const antenna::Codebook* tx_codebook = nullptr;
  const antenna::Codebook* rx_codebook = nullptr;
  /// Linear pre-beamforming Es/N0 (noise variance is 1/gamma).
  real gamma = 0.0;
  /// Per-slot Bernoulli blockage: with this probability the whole probe is
  /// shadowed and the matched filter sees noise only. 0 = never.
  real blockage_probability = 0.0;
  /// Mean co-channel interference power per RX codeword (linear, added to
  /// the noise floor); empty = no interference.
  std::span<const real> interference = {};
};

/// Simulates one measurement slot of `fades` independent fades on the pair
/// (tx_beam, rx_beam) and returns the average matched-filter energy |z|².
/// `scratch` is the caller's reusable effective-channel buffer; it must be
/// sized to the link's RX array and must not alias anything in `view`.
/// Preconditions: indices valid, fades ≥ 1, view pointers non-null,
/// view.interference empty or sized to the RX codebook.
real probe_energy(const ProbeView& view, index_t tx_beam, index_t rx_beam,
                  index_t fades, randgen::Rng& rng, linalg::Vector& scratch);

}  // namespace mmw::mac
