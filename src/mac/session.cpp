#include "mac/session.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace mmw::mac {

namespace {

struct SessionMetrics {
  obs::Counter measurements;
  obs::Counter blocked;
  obs::Counter dropped;
  obs::Counter outliers;
  obs::Counter realign_checks;
  obs::Counter realign_outages;
  obs::Counter realign_recoveries;
  obs::Counter realign_slots;
  static const SessionMetrics& get() {
    static const SessionMetrics m{
        obs::Registry::global().counter("mac.session.measurements"),
        obs::Registry::global().counter("mac.session.blocked"),
        obs::Registry::global().counter("mac.session.dropped"),
        obs::Registry::global().counter("mac.session.outliers"),
        obs::Registry::global().counter("mac.session.realign.checks"),
        obs::Registry::global().counter("mac.session.realign.outages"),
        obs::Registry::global().counter("mac.session.realign.recoveries"),
        obs::Registry::global().counter("mac.session.realign.slots"),
    };
    return m;
  }
};

}  // namespace

Session::Session(const channel::Link& link,
                 const antenna::Codebook& tx_codebook,
                 const antenna::Codebook& rx_codebook, real gamma,
                 index_t budget, randgen::Rng& rng,
                 index_t fades_per_measurement)
    : link_(&link),
      tx_codebook_(&tx_codebook),
      rx_codebook_(&rx_codebook),
      gamma_(gamma),
      budget_(std::min(budget, tx_codebook.size() * rx_codebook.size())),
      fades_(fades_per_measurement),
      rng_(&rng),
      measured_(tx_codebook.size() * rx_codebook.size(), false),
      fade_scratch_(link.rx_size()) {
  MMW_REQUIRE_MSG(gamma > 0.0, "SNR gamma must be positive");
  MMW_REQUIRE_MSG(budget > 0, "measurement budget must be positive");
  MMW_REQUIRE_MSG(fades_per_measurement > 0,
                  "need at least one fade per measurement");
  MMW_REQUIRE_MSG(tx_codebook.codeword(0).size() == link.tx_size(),
                  "TX codebook does not match the TX array");
  MMW_REQUIRE_MSG(rx_codebook.codeword(0).size() == link.rx_size(),
                  "RX codebook does not match the RX array");
}

bool Session::has_measured(index_t tx_beam, index_t rx_beam) const {
  MMW_REQUIRE(tx_beam < tx_codebook_->size());
  MMW_REQUIRE(rx_beam < rx_codebook_->size());
  return measured_[tx_beam * rx_codebook_->size() + rx_beam];
}

void Session::set_blockage_probability(real p) {
  MMW_REQUIRE_MSG(p >= 0.0 && p <= 1.0,
                  "blockage probability must be in [0, 1]");
  MMW_REQUIRE_MSG(records_.empty(),
                  "blockage must be configured before training starts");
  blockage_probability_ = p;
}

void Session::set_interference(std::vector<real> per_rx_beam_power) {
  MMW_REQUIRE_MSG(per_rx_beam_power.size() == rx_codebook_->size(),
                  "interference profile must cover every RX codeword");
  MMW_REQUIRE_MSG(records_.empty(),
                  "interference must be configured before training starts");
  for (const real p : per_rx_beam_power)
    MMW_REQUIRE_MSG(p >= 0.0, "interference power must be non-negative");
  interference_ = std::move(per_rx_beam_power);
}

real Session::interference_power(index_t rx_beam) const {
  MMW_REQUIRE(rx_beam < rx_codebook_->size());
  return interference_.empty() ? 0.0 : interference_[rx_beam];
}

void Session::arm_faults(const fault::FaultPlan* plan,
                         const channel::Link* degraded_link) {
  MMW_REQUIRE_MSG(records_.empty(),
                  "faults must be armed before training starts");
  if (plan != nullptr && plan->has_blockage()) {
    MMW_REQUIRE_MSG(degraded_link != nullptr,
                    "a blockage plan needs the post-onset degraded link");
    MMW_REQUIRE_MSG(degraded_link->tx_size() == link_->tx_size() &&
                        degraded_link->rx_size() == link_->rx_size(),
                    "degraded link must match the clean link's array sizes");
  }
  fault_plan_ = plan;
  degraded_link_ = degraded_link;
}

real Session::probe_energy(index_t tx_beam, index_t rx_beam, index_t fades,
                           index_t slot) {
  ProbeView view;
  // A blockage event is a large-scale transition: once active, every probe
  // (training or recovery) sees the degraded link until the session ends.
  view.link = (fault_plan_ != nullptr && fault_plan_->has_blockage() &&
               fault_plan_->blockage_active(slot))
                  ? degraded_link_
                  : link_;
  view.tx_codebook = tx_codebook_;
  view.rx_codebook = rx_codebook_;
  view.gamma = gamma_;
  view.blockage_probability = blockage_probability_;
  view.interference = interference_;
  return mac::probe_energy(view, tx_beam, rx_beam, fades, *rng_,
                           fade_scratch_);
}

real Session::measure(index_t tx_beam, index_t rx_beam) {
  MMW_REQUIRE_MSG(!exhausted(), "measurement budget exhausted");
  MMW_REQUIRE_MSG(!has_measured(tx_beam, rx_beam),
                  "beam pair measured twice");

  const index_t slot = records_.size();
  const fault::SlotFault slot_fault =
      fault_plan_ != nullptr ? fault_plan_->slot(slot) : fault::SlotFault{};
  real energy = 0.0;
  if (slot_fault.dropped) {
    // Control-channel loss: the slot is spent and nothing is observed. No
    // random draws are consumed, so the sequence of draws for the
    // remaining slots is exactly the clean run's (determinism contract).
    if (obs::enabled()) SessionMetrics::get().dropped.add();
  } else {
    energy = probe_energy(tx_beam, rx_beam, fades_, slot) *
             slot_fault.energy_scale;
    if (slot_fault.energy_scale != 1.0 && obs::enabled())
      SessionMetrics::get().outliers.add();
  }

  measured_[tx_beam * rx_codebook_->size() + rx_beam] = true;
  records_.push_back({tx_beam, rx_beam, energy});
  if (obs::enabled()) SessionMetrics::get().measurements.add();
  return energy;
}

std::optional<MeasurementRecord> Session::best_measured() const {
  if (records_.empty()) return std::nullopt;
  return *std::max_element(records_.begin(), records_.end(),
                           [](const MeasurementRecord& a,
                              const MeasurementRecord& b) {
                             return a.energy < b.energy;
                           });
}

Session::RealignmentReport Session::verify_and_realign() {
  return verify_and_realign(RealignmentPolicy{});
}

Session::RealignmentReport Session::verify_and_realign(
    const RealignmentPolicy& policy) {
  MMW_REQUIRE_MSG(policy.verify_fades > 0,
                  "verification needs at least one fade");
  MMW_REQUIRE_MSG(policy.collapse_db > 0.0,
                  "collapse threshold must be positive dB");
  RealignmentReport report;
  const std::optional<MeasurementRecord> best = best_measured();
  if (!best) return report;

  // Recovery probes occupy slot indices past the training schedule, so the
  // per-slot fault schedule (sized to the budget) never applies to them;
  // a blockage event, being a persistent large-scale state, still does.
  auto probe = [&](index_t tx_beam, index_t rx_beam) {
    const index_t slot = budget_ + recovery_records_.size();
    const real e = probe_energy(tx_beam, rx_beam, policy.verify_fades, slot);
    recovery_records_.push_back({tx_beam, rx_beam, e});
    if (obs::enabled()) SessionMetrics::get().realign_slots.add();
    return e;
  };

  if (obs::enabled()) SessionMetrics::get().realign_checks.add();
  const real threshold =
      best->energy * std::pow(10.0, -policy.collapse_db / 10.0);
  real best_energy = probe(best->tx_beam, best->rx_beam);
  index_t best_tx = best->tx_beam;
  index_t best_rx = best->rx_beam;
  if (best_energy < threshold) {
    report.outage = true;
    if (obs::enabled()) SessionMetrics::get().realign_outages.add();
    // Widened-beam fallback: retry r sweeps the Chebyshev window of radius
    // r·widen_radius around the claimed pair — first the TX ring against
    // the claimed RX beam, then the RX window against the claimed TX beam.
    // Codeword indices wrap (the codebooks tile the angular domain).
    const index_t n_tx = tx_codebook_->size();
    const index_t n_rx = rx_codebook_->size();
    std::vector<bool> probed(n_tx * n_rx, false);
    probed[best->tx_beam * n_rx + best->rx_beam] = true;
    auto try_pair = [&](index_t tx_beam, index_t rx_beam) {
      if (probed[tx_beam * n_rx + rx_beam]) return false;
      probed[tx_beam * n_rx + rx_beam] = true;
      const real e = probe(tx_beam, rx_beam);
      if (e > best_energy) {
        best_energy = e;
        best_tx = tx_beam;
        best_rx = rx_beam;
      }
      return e >= threshold;
    };
    auto wrap = [](index_t center, long long offset, index_t size) {
      const long long s = static_cast<long long>(size);
      const long long i = (static_cast<long long>(center) + offset % s + s) % s;
      return static_cast<index_t>(i);
    };
    for (index_t retry = 1;
         retry <= policy.max_retries && !report.recovered; ++retry) {
      const long long radius =
          static_cast<long long>(retry * policy.widen_radius);
      for (long long off = -radius;
           off <= radius && !report.recovered; ++off) {
        if (try_pair(wrap(best->tx_beam, off, n_tx), best->rx_beam) ||
            try_pair(best->tx_beam, wrap(best->rx_beam, off, n_rx)))
          report.recovered = true;
      }
    }
    if (report.recovered && obs::enabled())
      SessionMetrics::get().realign_recoveries.add();
  }

  report.tx_beam = best_tx;
  report.rx_beam = best_rx;
  report.energy = best_energy;
  return report;
}

}  // namespace mmw::mac
