#include "mac/session.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace mmw::mac {

namespace {

struct SessionMetrics {
  obs::Counter measurements;
  obs::Counter blocked;
  static const SessionMetrics& get() {
    static const SessionMetrics m{
        obs::Registry::global().counter("mac.session.measurements"),
        obs::Registry::global().counter("mac.session.blocked"),
    };
    return m;
  }
};

}  // namespace

Session::Session(const channel::Link& link,
                 const antenna::Codebook& tx_codebook,
                 const antenna::Codebook& rx_codebook, real gamma,
                 index_t budget, randgen::Rng& rng,
                 index_t fades_per_measurement)
    : link_(&link),
      tx_codebook_(&tx_codebook),
      rx_codebook_(&rx_codebook),
      gamma_(gamma),
      budget_(std::min(budget, tx_codebook.size() * rx_codebook.size())),
      fades_(fades_per_measurement),
      rng_(&rng),
      measured_(tx_codebook.size() * rx_codebook.size(), false) {
  MMW_REQUIRE_MSG(gamma > 0.0, "SNR gamma must be positive");
  MMW_REQUIRE_MSG(budget > 0, "measurement budget must be positive");
  MMW_REQUIRE_MSG(fades_per_measurement > 0,
                  "need at least one fade per measurement");
  MMW_REQUIRE_MSG(tx_codebook.codeword(0).size() == link.tx_size(),
                  "TX codebook does not match the TX array");
  MMW_REQUIRE_MSG(rx_codebook.codeword(0).size() == link.rx_size(),
                  "RX codebook does not match the RX array");
}

bool Session::has_measured(index_t tx_beam, index_t rx_beam) const {
  MMW_REQUIRE(tx_beam < tx_codebook_->size());
  MMW_REQUIRE(rx_beam < rx_codebook_->size());
  return measured_[tx_beam * rx_codebook_->size() + rx_beam];
}

void Session::set_blockage_probability(real p) {
  MMW_REQUIRE_MSG(p >= 0.0 && p <= 1.0,
                  "blockage probability must be in [0, 1]");
  MMW_REQUIRE_MSG(records_.empty(),
                  "blockage must be configured before training starts");
  blockage_probability_ = p;
}

void Session::set_interference(std::vector<real> per_rx_beam_power) {
  MMW_REQUIRE_MSG(per_rx_beam_power.size() == rx_codebook_->size(),
                  "interference profile must cover every RX codeword");
  MMW_REQUIRE_MSG(records_.empty(),
                  "interference must be configured before training starts");
  for (const real p : per_rx_beam_power)
    MMW_REQUIRE_MSG(p >= 0.0, "interference power must be non-negative");
  interference_ = std::move(per_rx_beam_power);
}

real Session::interference_power(index_t rx_beam) const {
  MMW_REQUIRE(rx_beam < rx_codebook_->size());
  return interference_.empty() ? 0.0 : interference_[rx_beam];
}

real Session::measure(index_t tx_beam, index_t rx_beam) {
  MMW_REQUIRE_MSG(!exhausted(), "measurement budget exhausted");
  MMW_REQUIRE_MSG(!has_measured(tx_beam, rx_beam),
                  "beam pair measured twice");

  const linalg::Vector& u = tx_codebook_->codeword(tx_beam);
  const linalg::Vector& v = rx_codebook_->codeword(rx_beam);
  // Blockage shadows the whole measurement slot, not individual fades.
  const bool blocked = blockage_probability_ > 0.0 &&
                       rng_->uniform() < blockage_probability_;
  // Effective noise floor: thermal 1/γ plus the beam's mean co-channel
  // interference power (multi-cell runs; 0 otherwise).
  const real noise_var =
      1.0 / gamma_ +
      (interference_.empty() ? 0.0 : interference_[rx_beam]);
  // Average matched-filter energy over the slot's independent fades.
  real energy = 0.0;
  for (index_t k = 0; k < fades_; ++k) {
    cx z = rng_->complex_normal(noise_var);
    if (!blocked) {
      const linalg::Vector h = link_->draw_effective_channel(u, *rng_);
      z += linalg::dot(v, h);
    }
    energy += std::norm(z);
  }
  energy /= static_cast<real>(fades_);

  measured_[tx_beam * rx_codebook_->size() + rx_beam] = true;
  records_.push_back({tx_beam, rx_beam, energy});
  if (obs::enabled()) {
    const SessionMetrics& m = SessionMetrics::get();
    m.measurements.add();
    if (blocked) m.blocked.add();
  }
  return energy;
}

std::optional<MeasurementRecord> Session::best_measured() const {
  if (records_.empty()) return std::nullopt;
  return *std::max_element(records_.begin(), records_.end(),
                           [](const MeasurementRecord& a,
                              const MeasurementRecord& b) {
                             return a.energy < b.energy;
                           });
}

}  // namespace mmw::mac
