// The MAC-layer measurement session: the interface an alignment strategy
// uses to train beam pairs. It owns the measurement budget, the no-repeat
// ledger, and the noisy matched-filter measurement chain (paper Sec. III-B).
//
// Ownership: a Session BORROWS the link, both codebooks, and the Rng (it
// stores non-owning pointers); the caller must keep all four alive for the
// session's lifetime. It OWNS its measurement records and ledger.
//
// Thread-safety: a Session is single-threaded by design — measure() mutates
// the ledger and advances the borrowed Rng, so a session must be confined
// to one thread at a time, and sessions sharing an Rng must not run
// concurrently. The parallel Monte-Carlo drivers give every trial its own
// Session + Rng stream; the borrowed Link and Codebooks are only read
// through const methods and may be shared across threads freely.
//
// Units: gamma is LINEAR pre-beamforming Es/N0 (callers convert from dB);
// recorded energies are linear |z|² averages, not dB.
#pragma once

#include <optional>
#include <vector>

#include "antenna/codebook.h"
#include "channel/link.h"
#include "fault/fault.h"
#include "mac/probe.h"
#include "randgen/rng.h"

namespace mmw::mac {

/// One completed beam-pair measurement.
struct MeasurementRecord {
  index_t tx_beam = 0;   ///< index into the TX codebook (u_i)
  index_t rx_beam = 0;   ///< index into the RX codebook (v_j)
  real energy = 0.0;     ///< matched-filter energy |z|²
};

/// A beam-training session over one realized link.
///
/// Each measure() call simulates the full chain of paper eqs. (4)–(10):
/// the TX dwells on codeword u, the RX points codeword v, the channel fades
/// independently (H_j iid), and the matched filter yields
///   z = vᴴ H u + n,   n ~ CN(0, 1/γ).
/// A measurement slot spans `fades_per_measurement` independent fades
/// (OFDM-style frequency/time diversity within the slot); the recorded
/// energy is the average of the per-fade |z|², so its mean is the paper's
/// λ = vᴴ(Q_u + γ⁻¹I)v with relative spread 1/√K. K = 1 reproduces the
/// strict single-sample model of eq. (9); the paper's premise that a 100%
/// scan finds the optimal pair with no loss requires K ≫ 1.
///
/// Beam pairs are never measured twice (paper Sec. V: "if a beam pair has
/// already been measured, it will no longer be measured") — a repeat is a
/// strategy bug and throws.
class Session {
 public:
  /// `budget` is L, the total number of measurements allowed; it is clamped
  /// to the codebook product T = |U|·|V|.
  Session(const channel::Link& link, const antenna::Codebook& tx_codebook,
          const antenna::Codebook& rx_codebook, real gamma, index_t budget,
          randgen::Rng& rng, index_t fades_per_measurement = 1);

  const antenna::Codebook& tx_codebook() const { return *tx_codebook_; }
  const antenna::Codebook& rx_codebook() const { return *rx_codebook_; }
  real gamma() const { return gamma_; }
  index_t fades_per_measurement() const { return fades_; }
  randgen::Rng& rng() { return *rng_; }

  index_t budget() const { return budget_; }
  index_t measurements_taken() const { return records_.size(); }
  index_t remaining_budget() const { return budget_ - records_.size(); }
  bool exhausted() const { return remaining_budget() == 0; }

  bool has_measured(index_t tx_beam, index_t rx_beam) const;

  /// Failure injection: with this probability a measurement slot is
  /// blocked — the mmWave path is shadowed (a passing pedestrian/vehicle)
  /// and the matched filter sees noise only. Models the blockage events
  /// mmWave links are notorious for. Default 0 (no blockage).
  /// Precondition: 0 ≤ p ≤ 1. Must be set before training starts.
  void set_blockage_probability(real p);
  real blockage_probability() const { return blockage_probability_; }

  /// Inter-cell interference, folded into the matched-filter noise floor:
  /// entry v is the mean co-channel interference power seen by RX codeword
  /// v (linear, same units as the 1/γ noise variance), precomputed by the
  /// multi-cell engine from the other cells' currently-active TX beams
  /// (sim/multicell.h). Each fade of a measurement on RX beam v then draws
  /// its additive term from CN(0, 1/γ + I_v) — interference from many
  /// unsynchronized co-channel fades is Gaussian to the matched filter, so
  /// it raises the noise floor beam-selectively without changing how many
  /// random draws a measurement consumes (the serial/parallel determinism
  /// contract is untouched).
  /// Preconditions: size == |V|, entries ≥ 0, set before training starts.
  void set_interference(std::vector<real> per_rx_beam_power);

  /// Mean interference power on RX beam v (0 when no profile is set).
  real interference_power(index_t rx_beam) const;
  bool has_interference() const { return !interference_.empty(); }

  /// Arms deterministic fault injection (DESIGN.md §11): slot drops and
  /// energy outliers follow `plan`'s schedule keyed by the slot index, and
  /// from the plan's blockage onset onwards measurements draw their signal
  /// from `degraded_link` instead of the clean link. Both pointers are
  /// BORROWED for the session's lifetime; `degraded_link` is required
  /// exactly when the plan has a blockage event and must share the clean
  /// link's array sizes. Must be armed before training starts. A dropped
  /// slot consumes NO random draws; every other fault leaves the draw
  /// sequence untouched, so the determinism contract is preserved.
  void arm_faults(const fault::FaultPlan* plan,
                  const channel::Link* degraded_link);
  bool faults_armed() const { return fault_plan_ != nullptr; }

  /// Performs one measurement and returns the observed energy |z|².
  /// Preconditions: budget not exhausted, indices valid, pair unmeasured.
  real measure(index_t tx_beam, index_t rx_beam);

  /// All measurements, in the order they were taken.
  const std::vector<MeasurementRecord>& records() const { return records_; }

  /// The pair with the highest measured energy so far (the best pair a
  /// receiver can claim from its observations, paper eq. 30), or nullopt if
  /// nothing has been measured.
  std::optional<MeasurementRecord> best_measured() const;

  /// Post-alignment verification / re-alignment policy (DESIGN.md §11).
  struct RealignmentPolicy {
    /// Independent fades averaged per verification/recovery probe.
    index_t verify_fades = 4;
    /// Outage declaration: the verified energy of the claimed pair fell
    /// this many dB below its trained energy (SNR collapse — blockage).
    real collapse_db = 10.0;
    /// Bounded retry rounds after an outage; round r probes the widened
    /// neighborhood of Chebyshev radius r·widen_radius.
    index_t max_retries = 2;
    index_t widen_radius = 1;
  };

  struct RealignmentReport {
    bool outage = false;     ///< verified energy collapsed below threshold
    bool recovered = false;  ///< a recovery probe restored energy above it
    index_t tx_beam = 0;     ///< final claimed pair (post-recovery)
    index_t rx_beam = 0;
    real energy = 0.0;       ///< verified energy of the final pair
  };

  /// Verifies the claimed best pair with fresh fades and, on SNR collapse
  /// (mid-alignment blockage), retries with a widened-beam fallback: each
  /// retry probes the union of codewords in a growing Chebyshev window
  /// around the claimed pair (TX ring × claimed RX plus claimed TX × RX
  /// window), keeping the best energy seen; it stops early when a probe
  /// clears the collapse threshold. All probes are charged to the separate
  /// recovery ledger (recovery_slots()), NOT to the training budget or
  /// records() — prefix grading of the training trajectory is untouched,
  /// and cost metrics add recovery_slots() explicitly (bench E8). Returns
  /// the best pair found (best-effort even when recovery fails); a session
  /// with no measurements reports a default (no-outage) record.
  RealignmentReport verify_and_realign(const RealignmentPolicy& policy);
  RealignmentReport verify_and_realign();  ///< default policy

  /// Recovery/verification probes taken by verify_and_realign, in order.
  const std::vector<MeasurementRecord>& recovery_records() const {
    return recovery_records_;
  }
  /// Extra measurement slots spent on verification and recovery.
  index_t recovery_slots() const { return recovery_records_.size(); }

 private:
  /// Shared measurement chain of measure() and the recovery probes:
  /// `slot` indexes the fault plan (training slot or post-training
  /// recovery slot) and selects the clean or post-onset-degraded link.
  real probe_energy(index_t tx_beam, index_t rx_beam, index_t fades,
                    index_t slot);
  const channel::Link* link_;
  const antenna::Codebook* tx_codebook_;
  const antenna::Codebook* rx_codebook_;
  real gamma_;
  index_t budget_;
  index_t fades_;
  real blockage_probability_ = 0.0;
  std::vector<real> interference_;  ///< per-RX-beam power; empty = none
  const fault::FaultPlan* fault_plan_ = nullptr;    ///< borrowed; may be null
  const channel::Link* degraded_link_ = nullptr;    ///< borrowed; may be null
  randgen::Rng* rng_;
  std::vector<MeasurementRecord> records_;
  std::vector<MeasurementRecord> recovery_records_;
  std::vector<bool> measured_;  ///< tx_beam·|V| + rx_beam
  linalg::Vector fade_scratch_;  ///< reused per-fade effective channel H·u
};

}  // namespace mmw::mac
