// Protocol timing model: converts measurement counts into air-time and
// alignment overhead — the quantity the paper's introduction is really
// about ("direction finding ... would significantly compromise the
// transmission capacity").
#pragma once

#include "linalg/common.h"

namespace mmw::mac {

/// Durations of the MAC primitives involved in beam training. Defaults are
/// representative of 802.15.3c/5G-NR-style numerology (microseconds).
struct ProtocolTiming {
  real measurement_slot_us = 10.0;  ///< one beam-pair sounding + matched filter
  real beam_switch_us = 0.5;        ///< analog phase-shifter retune
  real feedback_slot_us = 25.0;     ///< RX→TX report at the end of a TX-slot
  real estimation_us = 50.0;        ///< covariance-estimate compute budget

  /// Air time to take `measurements` measurements organized into
  /// `tx_slots` TX-slots (one feedback + one estimation per TX-slot, one
  /// beam switch per measurement). Preconditions: tx_slots ≥ 1 when
  /// measurements > 0, and measurements ≥ tx_slots.
  real alignment_latency_us(index_t measurements, index_t tx_slots) const;

  /// Fraction of a frame lost to alignment when re-training every
  /// `frame_us` microseconds. Clamped to [0, 1].
  real overhead_fraction(index_t measurements, index_t tx_slots,
                         real frame_us) const;

  /// Net spectral efficiency (bit/s/Hz) after paying the alignment
  /// overhead: (1 − overhead)·log2(1 + post_beamforming_snr).
  real net_spectral_efficiency(index_t measurements, index_t tx_slots,
                               real frame_us,
                               real post_beamforming_snr) const;
};

}  // namespace mmw::mac
