// Watchdog: stall detection plus a health endpoint-on-disk.
//
// A long-running serving process needs two things end-of-run manifests
// cannot give: (1) detection that the epoch loop has STOPPED making
// progress (a deadlocked shard, a wedged worker) while the process still
// looks alive from outside, and (2) a machine-readable liveness signal an
// operator can tail without attaching a debugger.
//
// The watchdog runs one monitor thread that polls a caller-supplied
// progress counter. The stall threshold adapts to the workload: the engine
// reports each epoch's duration via note_epoch_seconds() and the watchdog
// trips when no progress lands within `stall_multiplier ×` the rolling
// (EWMA) epoch time — floored at `min_stall_seconds` so startup and tiny
// test configs don't false-trip. A trip optionally dumps the flight
// recorder (the last K spans per thread are exactly the forensic record of
// what each thread was doing when progress stopped), increments the
// "obs.watchdog.trips" counter, and flips the health status to "stalled";
// progress resuming flips it back to "ok" (the trip count is sticky).
//
// Each poll atomically rewrites `health.json` (schema mmw.health/1) via
// write-temp-then-rename, so an external `watch cat health.json` never
// observes a torn document. The watchdog only OBSERVES — it never touches
// engine state or any Rng — so enabling it cannot change results
// (determinism contract, DESIGN.md §8).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mmw::obs {

struct WatchdogConfig {
  /// Health file path; empty disables the file (stall detection still runs).
  std::string health_path;
  double poll_seconds = 0.25;
  /// Trip when no progress for stall_multiplier × rolling epoch seconds.
  double stall_multiplier = 8.0;
  /// Threshold floor, so sub-millisecond epochs don't make the watchdog
  /// hair-triggered.
  double min_stall_seconds = 2.0;
  bool dump_flight_on_trip = true;
};

class Watchdog {
 public:
  /// Returns a monotonically increasing progress value. Called from the
  /// monitor thread concurrently with the workload: it must read only
  /// atomics (e.g. the engine's shard counter + the pool heartbeat).
  using ProgressFn = std::function<std::uint64_t()>;
  /// Optional extra health fields, (key, numeric value) pairs appended to
  /// the health document. Same concurrency contract as ProgressFn.
  using StatusFn =
      std::function<std::vector<std::pair<std::string, double>>()>;

  /// Starts the monitor thread immediately.
  Watchdog(WatchdogConfig config, ProgressFn progress, StatusFn status = {});
  ~Watchdog();  ///< stop()s if still running
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Feeds one epoch duration into the rolling estimate that scales the
  /// stall threshold. Callable from any thread.
  void note_epoch_seconds(double seconds);

  /// True once any stall was detected (sticky; `trips()` counts them).
  bool tripped() const { return trips_.load(std::memory_order_relaxed) > 0; }
  std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }

  /// True while the CURRENT state is stalled (clears when progress resumes).
  bool stalled() const { return stalled_.load(std::memory_order_relaxed); }

  /// Stops the monitor thread and writes a final health document with
  /// status "stopped". Idempotent.
  void stop();

  /// Current stall threshold in seconds (tests).
  double stall_threshold_seconds() const;

 private:
  void run(std::stop_token st);
  void write_health(const std::string& status, std::uint64_t progress,
                    double since_progress_s) const;

  WatchdogConfig config_;
  ProgressFn progress_;
  StatusFn status_;
  std::atomic<double> epoch_ewma_s_{0.0};
  std::atomic<std::uint64_t> trips_{0};
  std::atomic<bool> stalled_{false};
  std::atomic<bool> stopped_{false};
  std::uint64_t start_us_ = 0;
  mutable std::mutex stop_mutex_;
  std::condition_variable_any stop_cv_;
  std::jthread thread_;  ///< last member: joins before the rest destructs
};

}  // namespace mmw::obs
