// Run manifests: one JSON document per experiment/bench run recording what
// was run (config, seed, threads), on what (compiler, build type), how long
// it took, and the aggregated metrics snapshot — so a CSV artifact is never
// an orphan. Schema documented in EXPERIMENTS.md §Observability.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace mmw::obs {

/// Builder for a run manifest. Config entries preserve insertion order.
class RunManifest {
 public:
  explicit RunManifest(std::string name) : name_(std::move(name)) {}

  void add_config(std::string key, std::string value);
  void add_config(std::string key, double value);
  void add_config(std::string key, std::uint64_t value);
  void add_config(std::string key, bool value);

  void set_wall_seconds(double s) { wall_seconds_ = s; }

  /// Adds one top-level health indicator (solver non-convergence totals,
  /// fallback counts, quarantined trials — DESIGN.md §11). Health entries
  /// are surfaced at the document's top level so a reader never has to dig
  /// through the full metrics snapshot to judge whether a run degraded.
  void add_health(std::string key, std::uint64_t value);

  /// Captures Registry::global()'s current merged state into the manifest.
  void capture_metrics() { metrics_json_ = Registry::global().snapshot().to_json(); }

  /// Renders the manifest document:
  ///   {"schema": "mmw.run_manifest/1", "name": ..., "build": {...},
  ///    "config": {...}, "wall_seconds": ..., "health": {...},
  ///    "metrics": {...}}
  std::string to_json() const;

 private:
  std::string name_;
  /// (key, pre-rendered JSON value) — rendering happens in add_config so
  /// heterogeneous types need no variant.
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, std::uint64_t>> health_;
  double wall_seconds_ = 0.0;
  std::string metrics_json_;
};

/// Writes `content` to `path`, creating parent directories on demand.
/// Returns false (after printing a note to stderr) on failure — telemetry
/// output must never take down a run.
bool write_text_file(const std::string& path, const std::string& content);

/// Peak resident-set size of this process in bytes (Linux: VmHWM from
/// /proc/self/status, falling back to getrusage ru_maxrss; 0 when neither
/// source is available). Recorded in every bench manifest so memory claims
/// — the serving engine's fixed-budget contract above all — are
/// evidence-backed rather than asserted.
std::uint64_t peak_rss_bytes();

/// Current resident-set size in bytes (Linux: VmRSS from /proc/self/status;
/// 0 elsewhere). Sampled per epoch by the telemetry sink and per poll by
/// the watchdog — a live complement to the end-of-run peak above.
std::uint64_t current_rss_bytes();

}  // namespace mmw::obs
