#include "obs/digest.h"

#include <algorithm>
#include <cmath>

namespace mmw::obs {

namespace {

/// Total order over centroids: by mean, weight as tiebreak. A strict weak
/// ordering with no ties in practice is what makes merge deterministic.
struct CentroidLess {
  template <typename C>
  bool operator()(const C& a, const C& b) const {
    if (a.mean != b.mean) return a.mean < b.mean;
    return a.weight < b.weight;
  }
};

}  // namespace

QuantileDigest::QuantileDigest(index_t compression)
    : compression_(std::max<index_t>(compression, 8)) {
  buffer_.reserve(compression_);
}

void QuantileDigest::add(real value) {
  if (!std::isfinite(value)) return;
  if (count() == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  sum_ += value;
  buffer_.push_back(value);
  if (buffer_.size() >= compression_) flush();
}

void QuantileDigest::flush() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  // Merge-sort the buffered samples (weight 1 each) with the existing
  // centroid list into one sorted sequence, then re-cluster.
  std::vector<Centroid> merged;
  merged.reserve(centroids_.size() + buffer_.size());
  index_t ci = 0, bi = 0;
  while (ci < centroids_.size() || bi < buffer_.size()) {
    if (bi == buffer_.size() ||
        (ci < centroids_.size() && centroids_[ci].mean <= buffer_[bi])) {
      merged.push_back(centroids_[ci++]);
    } else {
      merged.push_back(Centroid{buffer_[bi++], 1});
    }
  }
  total_weight_ += buffer_.size();
  buffer_.clear();
  compress(merged);
}

void QuantileDigest::compress(std::vector<Centroid>& merged) {
  if (merged.size() <= compression_) {
    centroids_ = std::move(merged);
    return;
  }
  // Greedy left-to-right clustering: grow the current cluster while its
  // weight stays within the uniform bound ceil(W / compression). The bound
  // caps every cluster's rank span at W/compression + 1, so midpoint
  // interpolation stays within ~1/(2·compression) rank error.
  const std::uint64_t limit =
      (total_weight_ + compression_ - 1) / compression_;
  std::vector<Centroid> out;
  out.reserve(compression_ + 1);
  Centroid cur = merged.front();
  // Weighted mean accumulated as Σ(mean·weight): left-to-right order makes
  // the floating-point result a pure function of the merged sequence.
  real cur_sum = cur.mean * static_cast<real>(cur.weight);
  for (index_t i = 1; i < merged.size(); ++i) {
    const Centroid& next = merged[i];
    if (cur.weight + next.weight <= limit) {
      cur.weight += next.weight;
      cur_sum += next.mean * static_cast<real>(next.weight);
      cur.mean = cur_sum / static_cast<real>(cur.weight);
    } else {
      out.push_back(cur);
      cur = next;
      cur_sum = cur.mean * static_cast<real>(cur.weight);
    }
  }
  out.push_back(cur);
  centroids_ = std::move(out);
}

void QuantileDigest::merge(const QuantileDigest& other) {
  if (other.count() == 0) return;
  if (count() == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;

  flush();
  // Fold the other digest's state — clustered centroids plus any buffered
  // raw samples — through one sort + compress pass.
  std::vector<Centroid> merged;
  merged.reserve(centroids_.size() + other.centroids_.size() +
                 other.buffer_.size());
  merged.insert(merged.end(), centroids_.begin(), centroids_.end());
  merged.insert(merged.end(), other.centroids_.begin(),
                other.centroids_.end());
  for (real v : other.buffer_) merged.push_back(Centroid{v, 1});
  std::sort(merged.begin(), merged.end(), CentroidLess{});
  total_weight_ += other.total_weight_ + other.buffer_.size();
  compress(merged);
}

real QuantileDigest::quantile(real q) {
  flush();
  if (total_weight_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;

  // Midpoint rule: centroid i covers cumulative ranks
  // [before, before + weight); its mean sits at before + weight/2.
  // Interpolate linearly between adjacent midpoints.
  const real target = q * static_cast<real>(total_weight_);
  real before = 0.0;
  real prev_mid = 0.0;
  real prev_mean = min_;
  for (index_t i = 0; i < centroids_.size(); ++i) {
    const real w = static_cast<real>(centroids_[i].weight);
    const real mid = before + w / 2.0;
    if (target < mid) {
      if (i == 0) return min_;
      const real span = mid - prev_mid;
      const real t = span > 0.0 ? (target - prev_mid) / span : 0.0;
      const real v = prev_mean + t * (centroids_[i].mean - prev_mean);
      return std::clamp(v, min_, max_);
    }
    before += w;
    prev_mid = mid;
    prev_mean = centroids_[i].mean;
  }
  return max_;
}

}  // namespace mmw::obs
