// Minimal JSON writer for the observability exporters (metrics snapshots,
// Chrome traces, run manifests). Dependency-free by design — the obs layer
// must not pull a serialization library into every leaf target.
//
// Usage is push-style and the caller owns well-formedness of the nesting:
//   JsonWriter w;
//   w.begin_object();
//   w.key("name"); w.string("fig5");
//   w.key("trials"); w.number(25);
//   w.end_object();
//   std::string out = std::move(w).str();
// Commas between siblings are inserted automatically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/common.h"

namespace mmw::obs {

class JsonWriter {
 public:
  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Object key; must be followed by exactly one value (or container).
  void key(std::string_view k) {
    comma();
    append_quoted(k);
    out_ += ':';
    expect_value_ = true;
  }

  void string(std::string_view v) {
    comma();
    append_quoted(v);
  }
  void number(double v);
  void number(std::uint64_t v);
  void number(std::int64_t v);
  void boolean(bool v) {
    comma();
    out_ += v ? "true" : "false";
  }
  void null() {
    comma();
    out_ += "null";
  }

  /// Splices a pre-rendered JSON fragment in value position (e.g. a nested
  /// snapshot rendered by its own writer). The fragment must be valid JSON.
  void raw(std::string_view json) {
    comma();
    out_ += json;
  }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  void comma() {
    if (expect_value_) {
      expect_value_ = false;
      return;
    }
    if (!out_.empty() && out_.back() != '{' && out_.back() != '[' &&
        out_.back() != ':')
      out_ += ',';
  }
  void open(char c) {
    comma();
    out_ += c;
  }
  void close(char c) {
    out_ += c;
    expect_value_ = false;
  }
  void append_quoted(std::string_view s);

  std::string out_;
  bool expect_value_ = false;
};

}  // namespace mmw::obs
