// Flight recorder: always-on per-thread ring buffers of recent trace spans.
//
// Full tracing (TraceCollector) costs memory per event and is therefore
// opt-in; the flight recorder is its complement for hour-long serving runs:
// every thread keeps only its last K spans in a fixed ring, so when an
// anomaly fires — a quarantined trial, an outage burst, a watchdog trip —
// the moments leading up to it can be dumped as a Chrome-trace snapshot
// without having traced the whole run.
//
// "Always on" is literal: TraceScope feeds the ring even when
// obs::enabled() is false, because the anomalies worth debugging occur in
// production runs that keep full instrumentation off. The cost is bounded
// by the ring write (TLS lookup + uncontended mutex + slot store) and is
// held under the same ≤3% budget as the disabled-obs path by
// tools/check_obs_overhead.py (--flight-off A/B on BM_SlotCycle*).
// MMW_FLIGHT=off (read by obs::init_from_env) disarms it for bare runs.
//
// Dumps are capped (kMaxDumps per recorder) so a pathological run — every
// epoch bursting — cannot fill the disk; the cap and every dump are counted
// in the "obs.flight.dumps" metric.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/common.h"

namespace mmw::obs {

/// One recorded span. Name/category are `const char*` into static storage,
/// same contract as TraceEvent.
struct FlightEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
};

class FlightRecorder {
 public:
  static constexpr index_t kDefaultCapacity = 256;  ///< spans kept per thread
  static constexpr std::uint64_t kMaxDumps = 8;     ///< per recorder lifetime

  /// Process-wide instance fed by TraceScope. Armed by default.
  static FlightRecorder& global();

  explicit FlightRecorder(index_t capacity = kDefaultCapacity);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Whether spans are being recorded. One relaxed load — this is the
  /// TraceScope fast-path check.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  void set_armed(bool on) { armed_.store(on, std::memory_order_relaxed); }

  /// Records one completed span into the calling thread's ring,
  /// overwriting the oldest entry when full.
  void record(const char* name, const char* category, std::uint64_t ts_us,
              std::uint64_t dur_us);

  /// Renders the current ring contents (all threads, ordinal order, oldest
  /// first) as a Chrome trace JSON document; `reason` lands in the
  /// document's "otherData" so a dump is self-describing.
  std::string chrome_json(std::string_view reason) const;

  /// Writes a snapshot to `<dump_dir>/flight_<seq>_<reason>.json`.
  /// Returns the path, or "" when disarmed, over the dump cap, or the
  /// write failed. `reason` should be a short identifier (it is sanitized
  /// into the filename).
  std::string dump(std::string_view reason);

  /// Directory for dump files (default "bench_results").
  void set_dump_directory(std::string dir);

  std::uint64_t dump_count() const {
    return dumps_taken_.load(std::memory_order_relaxed);
  }

  /// Spans currently held across all rings (point-in-time; tests).
  std::uint64_t event_count() const;

  /// Empties every ring (rings stay registered; run boundaries, tests).
  void clear();

 private:
  struct Ring;
  Ring& local_ring();

  std::atomic<bool> armed_{true};
  index_t capacity_;
  std::atomic<std::uint64_t> dumps_taken_{0};
  mutable std::mutex mutex_;  ///< guards rings_ list and dump_dir_
  std::vector<std::shared_ptr<Ring>> rings_;
  std::uint64_t next_sequence_ = 0;
  std::string dump_dir_ = "bench_results";
};

}  // namespace mmw::obs
