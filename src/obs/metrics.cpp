#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "obs/json.h"

namespace mmw::obs {

namespace {

/// Thread-local registry→shard associations. A plain vector with linear
/// scan: a process holds one or two registries, so this beats a hash map.
/// Entries hold shared_ptr so shard data outlives the recording thread —
/// the registry snapshots pool-worker shards after the pool is gone.
struct TlsShards {
  std::vector<std::pair<const Registry*, std::shared_ptr<void>>> entries;
};
TlsShards& tls_shards() {
  thread_local TlsShards tls;
  return tls;
}

}  // namespace

HistogramBuckets HistogramBuckets::linear(real first_upper, real width,
                                          index_t count) {
  MMW_REQUIRE(width > 0.0);
  MMW_REQUIRE(count >= 1);
  HistogramBuckets b;
  b.upper_bounds.reserve(count);
  for (index_t i = 0; i < count; ++i)
    b.upper_bounds.push_back(first_upper + width * static_cast<real>(i));
  return b;
}

HistogramBuckets HistogramBuckets::exponential(real first_upper, real factor,
                                               index_t count) {
  MMW_REQUIRE(first_upper > 0.0);
  MMW_REQUIRE(factor > 1.0);
  MMW_REQUIRE(count >= 1);
  HistogramBuckets b;
  b.upper_bounds.reserve(count);
  real bound = first_upper;
  for (index_t i = 0; i < count; ++i) {
    b.upper_bounds.push_back(bound);
    bound *= factor;
  }
  return b;
}

void Counter::add(std::uint64_t delta) const {
  if (registry_ == nullptr || !enabled()) return;
  registry_->record_add(id_, delta);
}

void Gauge::set(real value) const {
  if (registry_ == nullptr || !enabled()) return;
  registry_->record_gauge(id_, value);
}

void Histogram::record(real value) const {
  if (registry_ == nullptr || !enabled()) return;
  registry_->record_histogram(id_, value, *bounds_);
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives TLS dtors
  return *instance;
}

Registry::~Registry() {
  // Drop this registry's TLS association for the destroying thread only;
  // other threads' entries hold shared_ptrs that keep shard data alive and
  // harmless (their Registry* key is never matched again unless the
  // address is reused — tests create registries on the stack one at a
  // time, and the global registry is never destroyed).
  auto& entries = tls_shards().entries;
  std::erase_if(entries, [this](const auto& e) { return e.first == this; });
}

index_t Registry::register_metric(
    std::string_view name, Kind kind,
    std::shared_ptr<const std::vector<real>> bounds) {
  MMW_REQUIRE_MSG(!name.empty(), "metric name must be non-empty");
  std::lock_guard lock(mutex_);
  if (const auto it = ids_.find(name); it != ids_.end()) {
    MMW_REQUIRE_MSG(defs_[it->second].kind == kind,
                    "metric re-registered with a different kind");
    return it->second;
  }
  if (kind == Kind::kHistogram) {
    MMW_REQUIRE_MSG(bounds && !bounds->empty(), "histogram needs buckets");
    MMW_REQUIRE_MSG(std::is_sorted(bounds->begin(), bounds->end()),
                    "histogram bucket bounds must be ascending");
  }
  const index_t id = defs_.size();
  defs_.push_back(Def{std::string(name), kind, std::move(bounds)});
  ids_.emplace(defs_.back().name, id);
  return id;
}

Counter Registry::counter(std::string_view name) {
  return Counter(this, register_metric(name, Kind::kCounter, nullptr));
}

Gauge Registry::gauge(std::string_view name) {
  return Gauge(this, register_metric(name, Kind::kGauge, nullptr));
}

Histogram Registry::histogram(std::string_view name,
                              HistogramBuckets buckets) {
  auto bounds = std::make_shared<const std::vector<real>>(
      std::move(buckets.upper_bounds));
  const index_t id = register_metric(name, Kind::kHistogram, bounds);
  // An earlier registration's bounds win; fetch them so every handle for
  // this name records against the same layout.
  {
    std::lock_guard lock(mutex_);
    bounds = defs_[id].upper_bounds;
  }
  return Histogram(this, id, std::move(bounds));
}

Registry::Shard& Registry::local_shard() {
  auto& entries = tls_shards().entries;
  for (auto& [registry, shard] : entries)
    if (registry == this) return *static_cast<Shard*>(shard.get());

  auto shard = std::make_shared<Shard>();
  shard->ordinal = thread_ordinal();
  {
    std::lock_guard lock(mutex_);
    shard->sequence = next_shard_sequence_++;
    shards_.push_back(shard);
  }
  entries.emplace_back(this, shard);
  return *shard;
}

Registry::Cell& Registry::cell_for(Shard& shard, index_t id) {
  if (shard.cells.size() <= id) shard.cells.resize(id + 1);
  Cell& cell = shard.cells[id];
  return cell;
}

void Registry::record_add(index_t id, std::uint64_t delta) {
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mutex);
  cell_for(shard, id).count += delta;
}

void Registry::record_gauge(index_t id, real value) {
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mutex);
  Cell& cell = cell_for(shard, id);
  if (cell.count == 0) {
    cell.minimum = value;
    cell.maximum = value;
  } else {
    cell.minimum = std::min(cell.minimum, value);
    cell.maximum = std::max(cell.maximum, value);
  }
  ++cell.count;
  cell.sum += value;
  cell.last = value;
}

void Registry::record_histogram(index_t id, real value,
                                const std::vector<real>& bounds) {
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mutex);
  Cell& cell = cell_for(shard, id);
  if (cell.bucket_counts.empty())
    cell.bucket_counts.assign(bounds.size() + 1, 0);
  const auto it =
      std::lower_bound(bounds.begin(), bounds.end(), value);  // le bucket
  ++cell.bucket_counts[static_cast<index_t>(it - bounds.begin())];
  ++cell.count;
  cell.sum += value;
}

MetricsSnapshot Registry::snapshot() const {
  // Stable copy of the shard list + defs under the registry mutex, then
  // merge shard-by-shard under each shard's own mutex.
  std::vector<std::shared_ptr<Shard>> shards;
  std::vector<Def> defs;
  {
    std::lock_guard lock(mutex_);
    shards = shards_;
    defs = defs_;
  }
  std::sort(shards.begin(), shards.end(),
            [](const auto& a, const auto& b) {
              if (a->ordinal != b->ordinal) return a->ordinal < b->ordinal;
              return a->sequence < b->sequence;
            });

  MetricsSnapshot snap;
  // Pre-create every registered metric so the snapshot lists zero-valued
  // metrics too (a manifest consumer can tell "never fired" from "absent").
  for (const Def& def : defs) {
    switch (def.kind) {
      case Kind::kCounter:
        snap.counters.emplace(def.name, CounterSnapshot{});
        break;
      case Kind::kGauge:
        snap.gauges.emplace(def.name, GaugeSnapshot{});
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.upper_bounds = *def.upper_bounds;
        h.counts.assign(def.upper_bounds->size() + 1, 0);
        snap.histograms.emplace(def.name, std::move(h));
        break;
      }
    }
  }

  for (const auto& shard : shards) {
    std::lock_guard lock(shard->mutex);
    for (index_t id = 0; id < shard->cells.size() && id < defs.size(); ++id) {
      const Cell& cell = shard->cells[id];
      if (cell.count == 0) continue;
      const Def& def = defs[id];
      switch (def.kind) {
        case Kind::kCounter:
          snap.counters[def.name].value += cell.count;
          break;
        case Kind::kGauge: {
          GaugeSnapshot& g = snap.gauges[def.name];
          if (g.count == 0) {
            g.minimum = cell.minimum;
            g.maximum = cell.maximum;
          } else {
            g.minimum = std::min(g.minimum, cell.minimum);
            g.maximum = std::max(g.maximum, cell.maximum);
          }
          g.count += cell.count;
          g.sum += cell.sum;
          // Last-write-wins over the DETERMINISTIC (ordinal, sequence)
          // shard order, not wall-clock update order: the highest-ordered
          // shard that ever set the gauge owns `last`. A pure function of
          // which threads recorded what — stable across re-runs.
          g.last = cell.last;
          break;
        }
        case Kind::kHistogram: {
          HistogramSnapshot& h = snap.histograms[def.name];
          h.count += cell.count;
          h.sum += cell.sum;
          for (index_t b = 0; b < cell.bucket_counts.size(); ++b)
            h.counts[b] += cell.bucket_counts[b];
          break;
        }
      }
    }
  }
  return snap;
}

void Registry::reset() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::lock_guard lock(mutex_);
    shards = shards_;
  }
  for (const auto& shard : shards) {
    std::lock_guard lock(shard->mutex);
    for (Cell& cell : shard->cells) cell = Cell{};
  }
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters) {
    w.key(name);
    w.number(c.value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.number(g.count);
    w.key("last");
    w.number(g.last);
    w.key("min");
    w.number(g.minimum);
    w.key("max");
    w.number(g.maximum);
    w.key("sum");
    w.number(g.sum);
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name);
    w.begin_object();
    w.key("upper_bounds");
    w.begin_array();
    for (const real b : h.upper_bounds) w.number(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (const std::uint64_t c : h.counts) w.number(c);
    w.end_array();
    w.key("count");
    w.number(h.count);
    w.key("sum");
    w.number(h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace mmw::obs
