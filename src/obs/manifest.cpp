#include "obs/manifest.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "obs/json.h"

namespace mmw::obs {

namespace {

std::string render_string(const std::string& v) {
  JsonWriter w;
  w.string(v);
  return std::move(w).str();
}

}  // namespace

void RunManifest::add_config(std::string key, std::string value) {
  config_.emplace_back(std::move(key), render_string(value));
}

void RunManifest::add_config(std::string key, double value) {
  JsonWriter w;
  w.number(value);
  config_.emplace_back(std::move(key), std::move(w).str());
}

void RunManifest::add_config(std::string key, std::uint64_t value) {
  JsonWriter w;
  w.number(value);
  config_.emplace_back(std::move(key), std::move(w).str());
}

void RunManifest::add_config(std::string key, bool value) {
  config_.emplace_back(std::move(key), value ? "true" : "false");
}

void RunManifest::add_health(std::string key, std::uint64_t value) {
  health_.emplace_back(std::move(key), value);
}

std::string RunManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string("mmw.run_manifest/1");
  w.key("name");
  w.string(name_);
  w.key("build");
  w.begin_object();
  w.key("compiler");
#if defined(__VERSION__)
  w.string(__VERSION__);
#else
  w.string("unknown");
#endif
  w.key("build_type");
#if defined(MMW_BUILD_TYPE)
  w.string(MMW_BUILD_TYPE);
#elif defined(NDEBUG)
  w.string("Release");
#else
  w.string("Debug");
#endif
  w.key("obs_enabled");
  w.boolean(enabled());
  w.end_object();
  w.key("config");
  w.begin_object();
  for (const auto& [key, value] : config_) {
    w.key(key);
    w.raw(value);
  }
  w.end_object();
  w.key("wall_seconds");
  w.number(wall_seconds_);
  w.key("health");
  w.begin_object();
  for (const auto& [key, value] : health_) {
    w.key(key);
    w.number(value);
  }
  w.end_object();
  w.key("metrics");
  if (metrics_json_.empty())
    w.null();
  else
    w.raw(metrics_json_);
  w.end_object();
  return std::move(w).str();
}

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  // VmHWM is the kernel's own high-water mark for resident pages; it
  // survives any frees the allocator has since returned to the OS.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      unsigned long long kb = 0;
      if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
        std::fclose(f);
        return static_cast<std::uint64_t>(kb) * 1024u;
      }
    }
    std::fclose(f);
  }
#endif
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  std::memset(&ru, 0, sizeof ru);
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024u;  // kB elsewhere
#endif
  }
#endif
  return 0;
}

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      unsigned long long kb = 0;
      if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
        std::fclose(f);
        return static_cast<std::uint64_t>(kb) * 1024u;
      }
    }
    std::fclose(f);
  }
#endif
  return 0;
}

bool write_text_file(const std::string& path, const std::string& content) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "note: could not create %s: %s\n",
                   p.parent_path().c_str(), ec.message().c_str());
      return false;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "note: could not write %s\n", path.c_str());
    return false;
  }
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace mmw::obs
