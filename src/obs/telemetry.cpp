#include "obs/telemetry.h"

#include <filesystem>
#include <system_error>

#include "obs/json.h"

namespace mmw::obs {

std::string TelemetryRecord::to_json(bool include_timing) const {
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string("mmw.telemetry/1");
  w.key("epoch");
  w.number(epoch);

  w.key("counters");
  w.begin_object();
  w.key("live_sessions");
  w.number(live_sessions);
  w.key("arrivals");
  w.number(arrivals);
  w.key("departures");
  w.number(departures);
  w.key("aligning_steps");
  w.number(aligning_steps);
  w.key("tracking_steps");
  w.number(tracking_steps);
  w.key("outages");
  w.number(outages);
  w.key("realignments");
  w.number(realignments);
  w.key("claims");
  w.number(claims);
  w.key("measurement_slots");
  w.number(measurement_slots);
  w.key("estimator_nonconverged");
  w.number(estimator_nonconverged);
  w.end_object();

  w.key("memory");
  w.begin_object();
  w.key("pool_resident_bytes");
  w.number(pool_resident_bytes);
  w.key("pool_high_water_bytes");
  w.number(pool_high_water_bytes);
  w.end_object();

  w.key("loss_db");
  w.begin_object();
  w.key("count");
  w.number(loss_count);
  w.key("mean");
  w.number(loss_mean_db);
  w.key("p50");
  w.number(loss_p50_db);
  w.key("p90");
  w.number(loss_p90_db);
  w.key("p99");
  w.number(loss_p99_db);
  w.key("p999");
  w.number(loss_p999_db);
  w.key("max");
  w.number(loss_max_db);
  w.end_object();

  // "timing" must stay the last key: the determinism gate strips it by
  // truncating the serialized line at `,"timing":`.
  if (include_timing) {
    w.key("timing");
    w.begin_object();
    w.key("epoch_seconds");
    w.number(epoch_seconds);
    w.key("epoch_seconds_p50");
    w.number(epoch_seconds_p50);
    w.key("epoch_seconds_p99");
    w.number(epoch_seconds_p99);
    w.key("pool_busy_us");
    w.number(pool_busy_us);
    w.key("pool_idle_us");
    w.number(pool_idle_us);
    w.key("rss_bytes");
    w.number(rss_bytes);
    w.key("arena_high_water_bytes");
    w.number(arena_high_water_bytes);
    w.key("flight_events");
    w.number(flight_events);
    w.end_object();
  }

  w.end_object();
  return std::move(w).str();
}

bool TelemetrySink::open(const std::string& path) {
  close();
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) {
      std::fprintf(stderr, "note: could not create %s: %s\n",
                   p.parent_path().c_str(), ec.message().c_str());
      return false;
    }
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    std::fprintf(stderr, "note: could not open telemetry file %s\n",
                 path.c_str());
    return false;
  }
  return true;
}

void TelemetrySink::write(const TelemetryRecord& record) {
  if (file_ == nullptr) return;
  const std::string line = record.to_json(true);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // Per-line flush is the point: an external tail must see the epoch as
  // soon as it completes, and a crash must not lose buffered history.
  std::fflush(file_);
  ++records_written_;
}

void TelemetrySink::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace mmw::obs
