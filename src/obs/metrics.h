// Thread-safe metrics registry: counters, gauges, and fixed-bucket
// histograms with per-thread sharded sinks.
//
// Recording model (DESIGN.md §8):
//  - Metric handles are registered once by name (cheap to copy, trivially
//    destructible); hot paths hold them in function-local statics.
//  - Every recording thread writes to its OWN shard — a per-thread vector
//    of cells guarded by an uncontended per-shard mutex — so concurrent
//    recording never contends across threads (TSan-covered in
//    tests/obs/obs_test.cpp).
//  - `snapshot()` merges all shards in deterministic (thread-ordinal,
//    registration-sequence) order; core::ThreadPool labels its workers
//    1..n via obs::set_thread_ordinal so the merge order is stable.
//    Counter and histogram merges are integer sums (order-independent);
//    gauge `last` is last-write-wins over that SAME shard order — the
//    highest (ordinal, sequence) shard that ever set the gauge owns the
//    merged `last`, making the snapshot a pure function of what each
//    thread recorded rather than of scheduling. (Within one shard, `last`
//    is the thread's program-order latest set(), which is already
//    deterministic.) The PR-2 determinism contract is untouched either
//    way: no metric value ever feeds back into the simulation.
//  - The disabled path of every record call is one relaxed atomic load
//    (obs::enabled()) and an immediate return.
//
// Histogram bucket semantics are Prometheus-style "le": a sample v lands in
// the first bucket whose upper_bound >= v; samples above the last bound go
// to the implicit overflow bucket, so `counts` has upper_bounds.size() + 1
// entries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace mmw::obs {

class Registry;

/// Fixed histogram bucket layout: ascending upper bounds (implicit +inf
/// overflow bucket appended by the registry).
struct HistogramBuckets {
  std::vector<real> upper_bounds;

  /// count buckets: first_upper, first_upper + width, ...
  static HistogramBuckets linear(real first_upper, real width, index_t count);
  /// count buckets: first_upper, first_upper·factor, ... (factor > 1).
  static HistogramBuckets exponential(real first_upper, real factor,
                                      index_t count);
};

/// Monotone event counter. Copyable value handle; add() is thread-safe.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) const;

 private:
  friend class Registry;
  Counter(Registry* r, index_t id) : registry_(r), id_(id) {}
  Registry* registry_ = nullptr;
  index_t id_ = 0;
};

/// Last-value gauge that also tracks min/max/sum/count of everything set,
/// so the merged view keeps order-independent aggregates alongside `last`.
class Gauge {
 public:
  Gauge() = default;
  void set(real value) const;

 private:
  friend class Registry;
  Gauge(Registry* r, index_t id) : registry_(r), id_(id) {}
  Registry* registry_ = nullptr;
  index_t id_ = 0;
};

/// Fixed-bucket histogram. The handle carries an immutable pointer to its
/// bucket bounds so the hot path never touches the registry's (mutex-
/// guarded, growable) definition table.
class Histogram {
 public:
  Histogram() = default;
  void record(real value) const;

 private:
  friend class Registry;
  Histogram(Registry* r, index_t id,
            std::shared_ptr<const std::vector<real>> bounds)
      : registry_(r), id_(id), bounds_(std::move(bounds)) {}
  Registry* registry_ = nullptr;
  index_t id_ = 0;
  std::shared_ptr<const std::vector<real>> bounds_;
};

struct CounterSnapshot {
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::uint64_t count = 0;  ///< number of set() calls
  real last = 0.0;
  real minimum = 0.0;
  real maximum = 0.0;
  real sum = 0.0;
};

struct HistogramSnapshot {
  std::vector<real> upper_bounds;
  std::vector<std::uint64_t> counts;  ///< upper_bounds.size() + 1 (overflow)
  std::uint64_t count = 0;
  real sum = 0.0;
};

/// Merged view of every metric, keyed by name.
struct MetricsSnapshot {
  std::map<std::string, CounterSnapshot> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// JSON object {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  std::string to_json() const;
};

/// The registry. Most code uses Registry::global(); independent instances
/// exist for tests. Registration (counter/gauge/histogram) takes the
/// registry mutex; recording touches only the caller's shard.
class Registry {
 public:
  Registry() = default;
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  /// Returns the handle for `name`, registering it on first call. A name
  /// keeps its kind forever; re-registering with a different kind throws.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `buckets` is fixed at first registration; later calls for the same
  /// name ignore their argument.
  Histogram histogram(std::string_view name, HistogramBuckets buckets);

  /// Merges every shard (thread-ordinal order, see header comment) into a
  /// point-in-time view. Safe to call while other threads record.
  MetricsSnapshot snapshot() const;

  /// Zeroes every cell in every shard (run boundaries, tests). Metric
  /// definitions and handles stay valid.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  enum class Kind { kCounter, kGauge, kHistogram };

  struct Def {
    std::string name;
    Kind kind;
    /// Histograms only; shared with every handle and never mutated after
    /// registration, so hot paths read it lock-free.
    std::shared_ptr<const std::vector<real>> upper_bounds;
  };

  /// One recording cell; the union of what the three kinds need.
  struct Cell {
    std::uint64_t count = 0;
    real sum = 0.0;
    real minimum = 0.0;
    real maximum = 0.0;
    real last = 0.0;
    std::vector<std::uint64_t> bucket_counts;
  };

  /// Per-thread sink. The mutex is only ever contended by snapshot()/
  /// reset() racing a recording — never by two recorders.
  struct Shard {
    mutable std::mutex mutex;
    std::uint64_t ordinal = 0;
    std::uint64_t sequence = 0;  ///< registration order (merge tiebreak)
    std::vector<Cell> cells;
  };

  index_t register_metric(std::string_view name, Kind kind,
                          std::shared_ptr<const std::vector<real>> bounds);
  Shard& local_shard();
  Cell& cell_for(Shard& shard, index_t id);

  void record_add(index_t id, std::uint64_t delta);
  void record_gauge(index_t id, real value);
  void record_histogram(index_t id, real value,
                        const std::vector<real>& bounds);

  mutable std::mutex mutex_;  ///< guards defs_, ids_, shards_
  std::vector<Def> defs_;
  std::map<std::string, index_t, std::less<>> ids_;
  std::vector<std::shared_ptr<Shard>> shards_;
  std::uint64_t next_shard_sequence_ = 0;
};

}  // namespace mmw::obs
