// Scoped tracing spans with a Chrome trace_event JSON exporter.
//
// Capture model mirrors the metrics registry: per-thread event buffers
// (no cross-thread contention while recording) flushed into one JSON
// document on export, buffers ordered by thread ordinal. Span names and
// categories are `const char*` and must point at STATIC storage (string
// literals) — events store the pointer, not a copy.
//
// Two independent switches gate capture:
//   obs::enabled()            — the master instrumentation toggle;
//   TraceCollector::set_capturing(true) — tracing opt-in (traces cost
//                               memory per event; metrics do not).
// A span records only when both are on AT CONSTRUCTION TIME; the disabled
// path is two relaxed atomic loads and no clock read.
//
// The exported JSON loads directly in chrome://tracing and Perfetto
// (ui.perfetto.dev → "Open trace file"); see EXPERIMENTS.md §Observability.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/flight.h"
#include "obs/obs.h"

namespace mmw::obs {

/// One trace_event entry. 'X' = complete span, 'C' = counter sample,
/// 'i' = instant event.
struct TraceEvent {
  static constexpr int kMaxArgs = 4;
  struct Arg {
    const char* key = nullptr;
    double value = 0.0;
  };

  const char* name = nullptr;
  const char* category = nullptr;
  char phase = 'X';
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  double value = 0.0;  ///< counter phase only
  Arg args[kMaxArgs];
  int num_args = 0;
};

class TraceCollector {
 public:
  static TraceCollector& global();

  TraceCollector() = default;
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Opt into event capture (still requires obs::enabled()).
  void set_capturing(bool on) {
    capturing_.store(on, std::memory_order_relaxed);
  }
  bool capturing() const {
    return enabled() && capturing_.load(std::memory_order_relaxed);
  }

  /// Records a completed span. `args` may be null when `num_args` is 0.
  void complete(const char* name, const char* category, std::uint64_t ts_us,
                std::uint64_t dur_us, const TraceEvent::Arg* args,
                int num_args);

  /// Records a counter sample at the current time (e.g. an NLL trajectory
  /// point); rendered as a counter track in the trace viewer.
  void counter(const char* name, double value);

  /// Records an instant event at the current time.
  void instant(const char* name, const char* category = "mmw");

  /// Number of captured events (all threads).
  std::uint64_t event_count() const;

  /// Renders every captured event as a Chrome trace JSON document
  /// ({"traceEvents": [...]}). Thread buffers are emitted in ordinal
  /// order; safe to call while capture continues (point-in-time view).
  std::string chrome_json() const;

  /// Drops all captured events (buffers stay registered).
  void clear();

 private:
  struct Buffer;
  Buffer& local_buffer();
  void push(const TraceEvent& event);

  std::atomic<bool> capturing_{false};
  mutable std::mutex mutex_;  ///< guards buffers_ list
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::uint64_t next_sequence_ = 0;
};

/// RAII span: captures the start time at construction, records a complete
/// event at destruction. Every span feeds two sinks: the opt-in
/// TraceCollector (full traces, when capturing) and the always-armed
/// FlightRecorder ring (last-K spans, see flight.h). Inert — no clock
/// read, no recording — only when BOTH are off at construction. Up to
/// kMaxArgs numeric args may be attached (full traces only); keys must be
/// string literals.
class TraceScope {
 public:
  explicit TraceScope(const char* name, const char* category = "mmw")
      : active_(TraceCollector::global().capturing()),
        flight_(FlightRecorder::global().armed()) {
    if (active_ || flight_) {
      name_ = name;
      category_ = category;
      start_us_ = now_us();
    }
  }
  ~TraceScope() {
    if (!active_ && !flight_) return;
    const std::uint64_t dur_us = now_us() - start_us_;
    if (active_)
      TraceCollector::global().complete(name_, category_, start_us_, dur_us,
                                        args_, num_args_);
    if (flight_)
      FlightRecorder::global().record(name_, category_, start_us_, dur_us);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attaches a numeric argument shown in the viewer's span details.
  void arg(const char* key, double value) {
    if (active_ && num_args_ < TraceEvent::kMaxArgs)
      args_[num_args_++] = {key, value};
  }

  bool active() const { return active_; }

 private:
  bool active_;
  bool flight_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_us_ = 0;
  TraceEvent::Arg args_[TraceEvent::kMaxArgs];
  int num_args_ = 0;
};

#define MMW_OBS_CONCAT_INNER(a, b) a##b
#define MMW_OBS_CONCAT(a, b) MMW_OBS_CONCAT_INNER(a, b)

/// Anonymous scoped span: MMW_TRACE_SCOPE("estimation.ml.solve");
#define MMW_TRACE_SCOPE(...) \
  ::mmw::obs::TraceScope MMW_OBS_CONCAT(mmw_trace_scope_, __COUNTER__)(__VA_ARGS__)

}  // namespace mmw::obs
