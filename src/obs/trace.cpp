#include "obs/trace.h"

#include <algorithm>

#include "obs/json.h"

namespace mmw::obs {

/// Per-thread event sink. The mutex is only contended when an export or
/// clear races ongoing capture; recorder-vs-recorder is impossible.
struct TraceCollector::Buffer {
  mutable std::mutex mutex;
  std::uint64_t ordinal = 0;   ///< thread ordinal at first event
  std::uint64_t sequence = 0;  ///< registration order (merge tiebreak)
  std::vector<TraceEvent> events;
};

namespace {

struct TlsBuffers {
  // shared_ptr<void>: Buffer is private to TraceCollector; ownership is
  // what matters here, the type is recovered at the lookup site.
  std::vector<std::pair<const TraceCollector*, std::shared_ptr<void>>>
      entries;
};
TlsBuffers& tls_buffers() {
  thread_local TlsBuffers tls;
  return tls;
}

}  // namespace

TraceCollector& TraceCollector::global() {
  static TraceCollector* instance = new TraceCollector();  // outlives TLS
  return *instance;
}

TraceCollector::~TraceCollector() {
  auto& entries = tls_buffers().entries;
  std::erase_if(entries, [this](const auto& e) { return e.first == this; });
}

TraceCollector::Buffer& TraceCollector::local_buffer() {
  auto& entries = tls_buffers().entries;
  for (auto& [collector, buffer] : entries)
    if (collector == this) return *static_cast<Buffer*>(buffer.get());

  auto buffer = std::make_shared<Buffer>();
  buffer->ordinal = thread_ordinal();
  {
    std::lock_guard lock(mutex_);
    buffer->sequence = next_sequence_++;
    buffers_.push_back(buffer);
  }
  entries.emplace_back(this, buffer);
  return *buffer;
}

void TraceCollector::push(const TraceEvent& event) {
  Buffer& buffer = local_buffer();
  std::lock_guard lock(buffer.mutex);
  buffer.events.push_back(event);
}

void TraceCollector::complete(const char* name, const char* category,
                              std::uint64_t ts_us, std::uint64_t dur_us,
                              const TraceEvent::Arg* args, int num_args) {
  if (!capturing()) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.num_args = std::min(num_args, TraceEvent::kMaxArgs);
  for (int i = 0; i < e.num_args; ++i) e.args[i] = args[i];
  push(e);
}

void TraceCollector::counter(const char* name, double value) {
  if (!capturing()) return;
  TraceEvent e;
  e.name = name;
  e.category = "mmw";
  e.phase = 'C';
  e.ts_us = now_us();
  e.value = value;
  push(e);
}

void TraceCollector::instant(const char* name, const char* category) {
  if (!capturing()) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.ts_us = now_us();
  push(e);
}

std::uint64_t TraceCollector::event_count() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  std::uint64_t n = 0;
  for (const auto& buffer : buffers) {
    std::lock_guard lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

std::string TraceCollector::chrome_json() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  std::sort(buffers.begin(), buffers.end(),
            [](const auto& a, const auto& b) {
              if (a->ordinal != b->ordinal) return a->ordinal < b->ordinal;
              return a->sequence < b->sequence;
            });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& buffer : buffers) {
    std::lock_guard lock(buffer->mutex);
    // tid: ordinal when labelled (pool workers are 1..n, main stays 0);
    // unlabelled extra threads collapse onto 0, which the viewer tolerates.
    const std::uint64_t tid = buffer->ordinal;
    for (const TraceEvent& e : buffer->events) {
      w.begin_object();
      w.key("name");
      w.string(e.name);
      w.key("cat");
      w.string(e.category != nullptr ? e.category : "mmw");
      w.key("ph");
      w.string(std::string_view(&e.phase, 1));
      w.key("pid");
      w.number(std::uint64_t{1});
      w.key("tid");
      w.number(tid);
      w.key("ts");
      w.number(e.ts_us);
      if (e.phase == 'X') {
        w.key("dur");
        w.number(e.dur_us);
      }
      if (e.phase == 'C') {
        w.key("args");
        w.begin_object();
        w.key("value");
        w.number(e.value);
        w.end_object();
      } else if (e.num_args > 0) {
        w.key("args");
        w.begin_object();
        for (int i = 0; i < e.num_args; ++i) {
          w.key(e.args[i].key);
          w.number(e.args[i].value);
        }
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.string("ms");
  w.end_object();
  return std::move(w).str();
}

void TraceCollector::clear() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard lock(buffer->mutex);
    buffer->events.clear();
  }
}

}  // namespace mmw::obs
