// Steady-clock timer abstraction shared by tracing and the run manifests.
//
// All instrumentation timestamps come from ONE monotonic source so spans
// from different threads order consistently in a trace. Chrome's
// trace_event format wants microseconds; we keep integers end-to-end to
// avoid float drift in long runs.
#pragma once

#include <chrono>
#include <cstdint>

#include "linalg/common.h"

namespace mmw::obs {

/// Monotonic microseconds since an arbitrary process-local epoch (the
/// steady clock's). Comparable across threads; never goes backwards.
inline std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Elapsed-time stopwatch for run manifests: started at construction,
/// `seconds()` reads the elapsed steady-clock time. Despite the name it
/// does NOT read the wall (system) clock — the monotonic source above is
/// its contract, so measured durations are immune to NTP steps and
/// timezone changes, at the cost of not being convertible to a calendar
/// timestamp.
class WallTimer {
 public:
  WallTimer() : start_us_(now_us()) {}
  double seconds() const {
    return static_cast<double>(now_us() - start_us_) * 1e-6;
  }
  std::uint64_t elapsed_us() const { return now_us() - start_us_; }

 private:
  std::uint64_t start_us_;
};

}  // namespace mmw::obs
