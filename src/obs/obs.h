// Global on/off switch for the instrumentation layer (metrics + tracing).
//
// Design constraint (DESIGN.md §8): the DISABLED path must be near-free so
// instrumentation can stay compiled into release binaries. Every recording
// site guards itself with `obs::enabled()`, which is a single relaxed
// atomic load — no locks, no TLS lookups, no clock reads happen before that
// check passes. The toggle is runtime state, not a compile-time option, so
// one binary serves both instrumented and bare runs (the micro-bench
// overhead gate in CI holds the disabled path to within 3% of the
// pre-instrumentation baseline).
//
// Determinism: instrumentation only OBSERVES — no hook feeds a value back
// into the simulation and no hook touches an Rng — so toggling it cannot
// change any experiment output. tests/sim/parallel_determinism_test.cpp
// asserts byte-identical CSVs with the layer enabled and disabled.
#pragma once

#include <atomic>
#include <cstdint>

#include "linalg/common.h"

namespace mmw::obs {

namespace detail {
/// Single process-wide flag; relaxed is sufficient — readers only need to
/// see *some* recent value, and recording is tolerant of a stale read
/// during the toggle itself.
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}
}  // namespace detail

/// True when metric/trace recording is active. The disabled fast path of
/// every hook is exactly this one relaxed load.
inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}

/// Turns recording on or off at runtime. Safe to call from any thread;
/// counts recorded before a disable are retained until Registry::reset().
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Applies the MMW_OBS environment variable on top of `default_on`:
/// "off"/"0"/"false" force-disables, "on"/"1"/"true" force-enables, unset
/// or anything else keeps the default. Also applies MMW_FLIGHT with the
/// same vocabulary to the flight recorder's armed flag (default: armed —
/// the recorder is always on unless explicitly disarmed; see flight.h).
/// Returns the resulting obs state. Binaries (benches, CLI) call this once
/// at startup; the library itself never reads the environment.
bool init_from_env(bool default_on);

/// Deterministic merge key for the calling thread's metric shards and trace
/// buffers. The thread pool labels its workers 1..n (core::ThreadPool);
/// the main thread keeps the default 0. Snapshot/export walk shards sorted
/// by (ordinal, registration sequence), so merged output has a stable
/// thread order regardless of which worker raced ahead.
void set_thread_ordinal(std::uint64_t ordinal);

/// The calling thread's current ordinal (0 unless set_thread_ordinal ran).
std::uint64_t thread_ordinal();

}  // namespace mmw::obs
