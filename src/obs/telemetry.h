// Streaming per-epoch telemetry: NDJSON export, schema mmw.telemetry/1.
//
// The serving engine (src/serve) runs for hours; one end-of-run manifest
// cannot show WHEN an outage burst hit or which epoch's re-alignment storm
// ate the latency budget. The telemetry sink emits one self-describing
// JSON record per epoch, newline-delimited, flushed per line so an
// external tail (tools/telemetry_report.py --tail) sees epochs live.
//
// Determinism split (DESIGN.md §14): every field OUTSIDE the "timing"
// sub-object is a pure function of (config, seed) — counters merged from
// the engine's MetricFrames in flat shard order, loss quantiles from
// shard-merged QuantileDigests, memory figures from deterministic slab
// arithmetic. Byte-identity across --threads is a CI gate. Wall-time and
// process-level measurements (epoch seconds, pool busy/idle, RSS) live
// ONLY in "timing", which is rendered LAST in each record so a comparison
// can strip it by truncating the line at `,"timing":` — no JSON parser
// needed in tests.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "linalg/common.h"

namespace mmw::obs {

/// One epoch's exportable state. Counter/memory/loss fields must be
/// deterministic (see header comment); timing fields need not be.
struct TelemetryRecord {
  std::uint64_t epoch = 0;

  // -- counters: integer event totals for the epoch -----------------------
  std::uint64_t live_sessions = 0;  ///< resident sessions after churn
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t aligning_steps = 0;  ///< session-epochs spent aligning
  std::uint64_t tracking_steps = 0;  ///< session-epochs spent tracking
  std::uint64_t outages = 0;
  std::uint64_t realignments = 0;  ///< re-entries after an outage
  std::uint64_t claims = 0;        ///< beam pairs claimed this epoch
  std::uint64_t measurement_slots = 0;
  std::uint64_t estimator_nonconverged = 0;  ///< ladder rung: ML fallbacks

  // -- memory: deterministic slab arithmetic ------------------------------
  std::uint64_t pool_resident_bytes = 0;
  std::uint64_t pool_high_water_bytes = 0;

  // -- loss_db: quantiles of per-session loss this epoch ------------------
  std::uint64_t loss_count = 0;
  real loss_mean_db = 0.0;
  real loss_p50_db = 0.0;
  real loss_p90_db = 0.0;
  real loss_p99_db = 0.0;
  real loss_p999_db = 0.0;
  real loss_max_db = 0.0;

  // -- timing: wall-clock / process state, excluded from determinism ------
  double epoch_seconds = 0.0;
  double epoch_seconds_p50 = 0.0;  ///< rolling, over epochs so far
  double epoch_seconds_p99 = 0.0;
  std::uint64_t pool_busy_us = 0;  ///< this epoch's delta
  std::uint64_t pool_idle_us = 0;
  std::uint64_t rss_bytes = 0;
  std::uint64_t arena_high_water_bytes = 0;
  std::uint64_t flight_events = 0;

  /// Renders one record. The "timing" key, when included, is the LAST key
  /// of the document (the determinism-comparison contract).
  std::string to_json(bool include_timing = true) const;
};

/// Appends records to an NDJSON file, one flushed line each. Parent
/// directories are created on demand; all I/O failures degrade to a
/// stderr note — telemetry must never take down a run.
class TelemetrySink {
 public:
  TelemetrySink() = default;
  ~TelemetrySink() { close(); }
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Opens (truncates) `path`. Returns false on failure, leaving the sink
  /// closed; write() on a closed sink is a no-op.
  bool open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }

  void write(const TelemetryRecord& record);
  std::uint64_t records_written() const { return records_written_; }

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t records_written_ = 0;
};

}  // namespace mmw::obs
