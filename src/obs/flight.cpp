#include "obs/flight.h"

#include <algorithm>
#include <cctype>

#include "obs/clock.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace mmw::obs {

/// Per-thread fixed ring. The mutex is only contended when a snapshot or
/// clear races ongoing recording; recorder-vs-recorder is impossible.
struct FlightRecorder::Ring {
  mutable std::mutex mutex;
  std::uint64_t ordinal = 0;   ///< thread ordinal at first record
  std::uint64_t sequence = 0;  ///< registration order (merge tiebreak)
  std::vector<FlightEvent> slots;
  index_t head = 0;   ///< next slot to overwrite
  index_t count = 0;  ///< live entries (≤ slots.size())
};

namespace {

struct TlsRings {
  // shared_ptr<void>: Ring is private to FlightRecorder; ownership is what
  // matters here, the type is recovered at the lookup site.
  std::vector<std::pair<const FlightRecorder*, std::shared_ptr<void>>>
      entries;
};
TlsRings& tls_rings() {
  thread_local TlsRings tls;
  return tls;
}

std::string sanitize_reason(std::string_view reason) {
  std::string out;
  out.reserve(reason.size());
  for (char c : reason)
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  if (out.empty()) out = "unspecified";
  return out;
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* instance = new FlightRecorder();  // outlives TLS
  return *instance;
}

FlightRecorder::FlightRecorder(index_t capacity)
    : capacity_(std::max<index_t>(capacity, 1)) {}

FlightRecorder::~FlightRecorder() {
  auto& entries = tls_rings().entries;
  std::erase_if(entries, [this](const auto& e) { return e.first == this; });
}

FlightRecorder::Ring& FlightRecorder::local_ring() {
  auto& entries = tls_rings().entries;
  for (auto& [recorder, ring] : entries)
    if (recorder == this) return *static_cast<Ring*>(ring.get());

  auto ring = std::make_shared<Ring>();
  ring->ordinal = thread_ordinal();
  ring->slots.resize(capacity_);
  {
    std::lock_guard lock(mutex_);
    ring->sequence = next_sequence_++;
    rings_.push_back(ring);
  }
  entries.emplace_back(this, ring);
  return *ring;
}

void FlightRecorder::record(const char* name, const char* category,
                            std::uint64_t ts_us, std::uint64_t dur_us) {
  if (!armed()) return;
  Ring& ring = local_ring();
  std::lock_guard lock(ring.mutex);
  ring.slots[ring.head] = FlightEvent{name, category, ts_us, dur_us};
  ring.head = (ring.head + 1) % ring.slots.size();
  if (ring.count < ring.slots.size()) ++ring.count;
}

std::string FlightRecorder::chrome_json(std::string_view reason) const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lock(mutex_);
    rings = rings_;
  }
  std::sort(rings.begin(), rings.end(), [](const auto& a, const auto& b) {
    if (a->ordinal != b->ordinal) return a->ordinal < b->ordinal;
    return a->sequence < b->sequence;
  });

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mutex);
    const std::uint64_t tid = ring->ordinal;
    // Oldest-first: the ring's logical start is `head` when full, 0 before.
    const index_t n = ring->count;
    const index_t start =
        n == ring->slots.size() ? ring->head : index_t{0};
    for (index_t i = 0; i < n; ++i) {
      const FlightEvent& e = ring->slots[(start + i) % ring->slots.size()];
      w.begin_object();
      w.key("name");
      w.string(e.name != nullptr ? e.name : "?");
      w.key("cat");
      w.string(e.category != nullptr ? e.category : "mmw");
      w.key("ph");
      w.string("X");
      w.key("pid");
      w.number(std::uint64_t{1});
      w.key("tid");
      w.number(tid);
      w.key("ts");
      w.number(e.ts_us);
      w.key("dur");
      w.number(e.dur_us);
      w.end_object();
    }
  }
  w.end_array();
  w.key("displayTimeUnit");
  w.string("ms");
  w.key("otherData");
  w.begin_object();
  w.key("source");
  w.string("mmw.flight_recorder/1");
  w.key("reason");
  w.string(reason);
  w.key("snapshot_us");
  w.number(now_us());
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

std::string FlightRecorder::dump(std::string_view reason) {
  if (!armed()) return "";
  const std::uint64_t seq =
      dumps_taken_.fetch_add(1, std::memory_order_relaxed);
  if (seq >= kMaxDumps) {
    // Keep the counter saturated at the cap instead of growing forever.
    dumps_taken_.store(kMaxDumps, std::memory_order_relaxed);
    return "";
  }
  std::string dir;
  {
    std::lock_guard lock(mutex_);
    dir = dump_dir_;
  }
  const std::string path = dir + "/flight_" + std::to_string(seq) + "_" +
                           sanitize_reason(reason) + ".json";
  if (!write_text_file(path, chrome_json(reason))) return "";
  Registry::global().counter("obs.flight.dumps").add();
  return path;
}

void FlightRecorder::set_dump_directory(std::string dir) {
  std::lock_guard lock(mutex_);
  dump_dir_ = std::move(dir);
}

std::uint64_t FlightRecorder::event_count() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lock(mutex_);
    rings = rings_;
  }
  std::uint64_t n = 0;
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mutex);
    n += ring->count;
  }
  return n;
}

void FlightRecorder::clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard lock(mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    std::lock_guard lock(ring->mutex);
    ring->head = 0;
    ring->count = 0;
  }
}

}  // namespace mmw::obs
