// Fixed-memory streaming quantile digest (DESIGN.md §14).
//
// The serving telemetry plane needs tail quantiles (p99/p999 loss-dB,
// epoch-latency percentiles) over hour-long runs without keeping samples:
// a per-session or per-sample record would break the O(sessions + buckets)
// memory contract of the serving engine. This sketch is a merging-buffer
// digest in the t-digest family with a UNIFORM size bound instead of a
// scale function:
//
//  - add() appends to a small raw buffer; when the buffer fills, it is
//    sorted and merged into the centroid list (weighted means);
//  - whenever the centroid list exceeds `compression` entries, adjacent
//    centroids are re-clustered greedily so no cluster outweighs
//    ceil(total/compression) — the worst-case rank error of the midpoint
//    interpolation rule is therefore ~1/(2·compression) per query
//    (≈0.2% at the default 256; tests/obs/digest_test.cpp verifies ≤1%
//    against exact quantiles, including after shard merges);
//  - memory is O(compression) forever: ≤2·compression centroids plus the
//    buffer, independent of how many samples stream through.
//
// Determinism contract (the serving NDJSON export depends on it): every
// operation is a PURE FUNCTION of the operation sequence — sorting uses a
// total order, clustering walks left-to-right, and merge(a, b) folds b's
// state in one deterministic pass. Two digests fed the same sequence are
// bit-identical, and shard digests merged in the engine's fixed flat-shard
// order yield bit-identical quantiles at any --threads value.
//
// Not thread-safe; the serving engine keeps one digest per shard frame and
// merges on the coordinating thread, mirroring MetricFrame.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/common.h"

namespace mmw::obs {

class QuantileDigest {
 public:
  static constexpr index_t kDefaultCompression = 256;

  explicit QuantileDigest(index_t compression = kDefaultCompression);

  /// Streams one sample. Non-finite values are dropped (JSON could not
  /// carry the resulting quantiles anyway). Amortized O(log compression).
  void add(real value);

  /// Folds `other` into this digest (other is unchanged). Deterministic:
  /// the result depends only on the two digests' states, never on timing.
  void merge(const QuantileDigest& other);

  /// Samples absorbed so far (buffered + clustered).
  std::uint64_t count() const { return total_weight_ + buffer_.size(); }
  bool empty() const { return count() == 0; }

  /// The q-quantile estimate, q in [0, 1]; exact at q = 0 and q = 1 (true
  /// min/max are tracked separately). Returns 0 for an empty digest.
  /// Non-const because buffered samples are clustered on demand.
  real quantile(real q);

  real min_value() const { return count() == 0 ? 0.0 : min_; }
  real max_value() const { return count() == 0 ? 0.0 : max_; }
  real sum() const { return sum_; }

  /// Clusters any buffered samples now (add() does this automatically when
  /// the buffer fills; call before inspecting centroid state in tests).
  void flush();

  /// Centroids currently held — memory/bound introspection for tests.
  index_t centroid_count() const { return centroids_.size(); }
  index_t compression() const { return compression_; }

 private:
  struct Centroid {
    real mean = 0.0;
    std::uint64_t weight = 0;
  };

  /// Re-clusters `merged` (sorted by mean) so no output cluster outweighs
  /// ceil(W/compression), writing the result into centroids_.
  void compress(std::vector<Centroid>& merged);

  index_t compression_;
  std::vector<Centroid> centroids_;  ///< sorted by (mean, weight)
  std::vector<real> buffer_;         ///< raw samples awaiting clustering
  std::uint64_t total_weight_ = 0;   ///< Σ weight over centroids_
  real min_ = 0.0;
  real max_ = 0.0;
  real sum_ = 0.0;
};

}  // namespace mmw::obs
