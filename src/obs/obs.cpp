#include "obs/obs.h"

#include <cstdlib>
#include <optional>
#include <string_view>

#include "obs/flight.h"

namespace mmw::obs {

namespace {

std::uint64_t& tls_ordinal() {
  thread_local std::uint64_t ordinal = 0;
  return ordinal;
}

std::optional<bool> env_switch(const char* name) {
  if (const char* env = std::getenv(name)) {
    const std::string_view v(env);
    if (v == "off" || v == "0" || v == "false") return false;
    if (v == "on" || v == "1" || v == "true") return true;
  }
  return std::nullopt;
}

}  // namespace

bool init_from_env(bool default_on) {
  const bool on = env_switch("MMW_OBS").value_or(default_on);
  set_enabled(on);
  FlightRecorder::global().set_armed(env_switch("MMW_FLIGHT").value_or(true));
  return on;
}

void set_thread_ordinal(std::uint64_t ordinal) { tls_ordinal() = ordinal; }

std::uint64_t thread_ordinal() { return tls_ordinal(); }

}  // namespace mmw::obs
