#include "obs/obs.h"

#include <cstdlib>
#include <string_view>

namespace mmw::obs {

namespace {

std::uint64_t& tls_ordinal() {
  thread_local std::uint64_t ordinal = 0;
  return ordinal;
}

}  // namespace

bool init_from_env(bool default_on) {
  bool on = default_on;
  if (const char* env = std::getenv("MMW_OBS")) {
    const std::string_view v(env);
    if (v == "off" || v == "0" || v == "false")
      on = false;
    else if (v == "on" || v == "1" || v == "true")
      on = true;
  }
  set_enabled(on);
  return on;
}

void set_thread_ordinal(std::uint64_t ordinal) { tls_ordinal() = ordinal; }

std::uint64_t thread_ordinal() { return tls_ordinal(); }

}  // namespace mmw::obs
