#include "obs/watchdog.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "obs/clock.h"
#include "obs/flight.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace mmw::obs {

Watchdog::Watchdog(WatchdogConfig config, ProgressFn progress,
                   StatusFn status)
    : config_(std::move(config)),
      progress_(std::move(progress)),
      status_(std::move(status)),
      start_us_(now_us()) {
  thread_ = std::jthread([this](std::stop_token st) { run(st); });
}

Watchdog::~Watchdog() { stop(); }

void Watchdog::note_epoch_seconds(double seconds) {
  if (seconds <= 0.0) return;
  // Lock-free EWMA: a lost race just drops one sample's influence, which
  // the next epoch recovers — fine for a threshold estimate.
  const double prev = epoch_ewma_s_.load(std::memory_order_relaxed);
  const double next = prev == 0.0 ? seconds : 0.8 * prev + 0.2 * seconds;
  epoch_ewma_s_.store(next, std::memory_order_relaxed);
}

double Watchdog::stall_threshold_seconds() const {
  const double ewma = epoch_ewma_s_.load(std::memory_order_relaxed);
  return std::max(config_.min_stall_seconds, config_.stall_multiplier * ewma);
}

void Watchdog::run(std::stop_token st) {
  std::uint64_t last_progress = progress_ ? progress_() : 0;
  std::uint64_t last_change_us = now_us();
  const auto poll = std::chrono::duration<double>(
      config_.poll_seconds > 0.0 ? config_.poll_seconds : 0.25);

  while (!st.stop_requested()) {
    {
      std::unique_lock lock(stop_mutex_);
      // Wakes early on stop() so shutdown never waits a full poll.
      stop_cv_.wait_for(lock, st, poll, [] { return false; });
    }
    if (st.stop_requested()) break;

    const std::uint64_t progress = progress_ ? progress_() : 0;
    const std::uint64_t now = now_us();
    if (progress != last_progress) {
      last_progress = progress;
      last_change_us = now;
      stalled_.store(false, std::memory_order_relaxed);
    }
    const double since_s =
        static_cast<double>(now - last_change_us) * 1e-6;

    if (!stalled_.load(std::memory_order_relaxed) &&
        since_s > stall_threshold_seconds()) {
      stalled_.store(true, std::memory_order_relaxed);
      trips_.fetch_add(1, std::memory_order_relaxed);
      Registry::global().counter("obs.watchdog.trips").add();
      if (config_.dump_flight_on_trip)
        FlightRecorder::global().dump("watchdog_trip");
    }

    write_health(stalled_.load(std::memory_order_relaxed) ? "stalled" : "ok",
                 progress, since_s);
  }
}

void Watchdog::stop() {
  if (stopped_.exchange(true)) return;
  thread_.request_stop();
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_health("stopped", progress_ ? progress_() : 0, 0.0);
}

void Watchdog::write_health(const std::string& status,
                            std::uint64_t progress,
                            double since_progress_s) const {
  if (config_.health_path.empty()) return;

  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string("mmw.health/1");
  w.key("status");
  w.string(status);
  w.key("progress");
  w.number(progress);
  w.key("seconds_since_progress");
  w.number(since_progress_s);
  w.key("stall_threshold_seconds");
  w.number(stall_threshold_seconds());
  w.key("epoch_seconds_ewma");
  w.number(epoch_ewma_s_.load(std::memory_order_relaxed));
  w.key("trips");
  w.number(trips_.load(std::memory_order_relaxed));
  w.key("uptime_seconds");
  w.number(static_cast<double>(now_us() - start_us_) * 1e-6);
  w.key("rss_bytes");
  w.number(current_rss_bytes());
  if (status_) {
    for (const auto& [key, value] : status_()) {
      w.key(key);
      w.number(value);
    }
  }
  w.end_object();

  // Write-then-rename: a reader tailing the file sees either the previous
  // document or this one, never a torn mix.
  const std::string tmp = config_.health_path + ".tmp";
  if (!write_text_file(tmp, std::move(w).str())) return;
  std::error_code ec;
  std::filesystem::rename(tmp, config_.health_path, ec);
  if (ec)
    std::fprintf(stderr, "note: could not update %s: %s\n",
                 config_.health_path.c_str(), ec.message().c_str());
}

}  // namespace mmw::obs
