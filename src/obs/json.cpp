#include "obs/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace mmw::obs {

void JsonWriter::number(double v) {
  comma();
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN literals; null keeps consumers parsing.
    out_ += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips doubles; trim to the shortest that is still exact is
  // not worth the complexity for telemetry output.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void JsonWriter::number(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::number(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::append_quoted(std::string_view s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

}  // namespace mmw::obs
