// The temporal tracking engine: runs Tracker strategies against mobile
// users whose channels evolve epoch by epoch, with hysteresis handover
// between sites — the E10 experiment (steady-state loss and re-alignment
// rate vs user speed).
//
// Per (tracker, user) shard, per epoch e:
//   1. The user's trajectory position at e picks the serving site through
//      select_serving_site (hysteresis); a change is a HANDOVER — the
//      tracker's beam-space state is exported, carried, and re-imported
//      (the codec round-trip the serving engine's sessions use).
//   2. The (user, site) base link — drawn once per pair from the reserved
//      track-link lane — is evolved to epoch e (channel::LinkEvolution on
//      the reserved temporal lane; random-access seek, so handing over to
//      a site mid-run lands on the same state as having tracked it from
//      epoch 0).
//   3. The tracker spends its probes over the evolved link at the
//      pathloss-scaled γ, drawing measurement noise from the reserved
//      track-measure lane keyed by (tracker, user, epoch).
//   4. The claimed pair is graded against the epoch's exhaustive oracle
//      (max mean pair gain); epochs ≥ warmup_epochs feed the steady-state
//      statistics.
//
// Determinism contract (DESIGN.md §7/§15): shards are (tracker × user),
// every random quantity comes from the reserved lanes above — keyed by
// entity and epoch, never by thread — and shard results (counters + one
// QuantileDigest per shard) merge in flat shard order. Rendered CSVs are
// byte-identical for any thread count; tests/track/engine_test.cpp and the
// E10 CI job enforce it. obs publication happens once, from merged totals,
// on the calling thread (obs on/off cannot move a byte of results).
#pragma once

#include <string>
#include <vector>

#include "channel/temporal.h"
#include "sim/mobility.h"
#include "sim/scenario.h"
#include "sim/topology.h"
#include "track/tracker.h"

namespace mmw::track {

struct TrackingConfig {
  /// Channel/codebook/gamma/fades/seed/threads knobs (trials ignored —
  /// tracking has users × epochs, not trials).
  sim::Scenario scenario;
  sim::TopologyConfig topology;
  /// Channel evolution knobs; speed_mps and epoch_seconds are overwritten
  /// from `mobility` so one knob drives geometry and channel alike.
  channel::EvolutionConfig evolution;
  sim::MobilityConfig mobility;
  TrackerOptions options;

  index_t users = 16;
  index_t epochs = 64;
  /// Epochs excluded from steady-state statistics (acquisition transient).
  index_t warmup_epochs = 16;
};

/// Steady-state outcome of one tracker over one run (all users pooled).
struct TrackerCaseResult {
  std::string name;
  std::uint64_t steady_epochs = 0;  ///< user-epochs graded
  real mean_loss_db = 0.0;          ///< claimed-vs-oracle SNR loss
  real p50_loss_db = 0.0;
  real p90_loss_db = 0.0;
  real p99_loss_db = 0.0;
  real max_loss_db = 0.0;
  real realign_rate = 0.0;      ///< re-aligning epochs / steady epochs
  real outage_rate = 0.0;       ///< collapse-test failures / steady epochs
  real probes_per_epoch = 0.0;  ///< mean probes per steady epoch
  std::uint64_t probes_total = 0;  ///< whole run, warmup included
};

struct TrackingResult {
  index_t users = 0;
  index_t epochs = 0;
  index_t warmup_epochs = 0;
  /// One entry per requested kind, in request order.
  std::vector<TrackerCaseResult> trackers;
  /// Handovers per user over the run (identical for every tracker — the
  /// trajectory and hysteresis rule don't depend on tracking decisions).
  real handovers_per_user = 0.0;
};

/// Runs every requested tracker kind over the same mobile population.
/// Preconditions: users ≥ 1, epochs ≥ 1, warmup_epochs < epochs, kinds
/// non-empty.
TrackingResult run_tracking(const TrackingConfig& config,
                            const std::vector<TrackerKind>& kinds);

/// Renders one sweep as CSV: a row per x value; per-tracker columns
/// <name>_loss_db, <name>_p99_loss_db, <name>_realign_rate,
/// <name>_probes_per_epoch (request order), then handovers_per_user.
/// Fixed 6-digit reals — the byte format the determinism tests compare.
std::string render_tracking_csv(const std::string& x_label,
                                const std::vector<real>& xs,
                                const std::vector<TrackingResult>& results);

}  // namespace mmw::track
