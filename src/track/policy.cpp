#include "track/policy.h"

#include <algorithm>

namespace mmw::track {

namespace {

bool contains(const std::vector<index_t>& v, index_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

void append_cursor_probes(std::uint64_t user_key, std::uint64_t cursor,
                          index_t n_rx, index_t want,
                          std::vector<index_t>& out) {
  MMW_REQUIRE(n_rx >= 1 && want <= n_rx);
  index_t cand = static_cast<index_t>((user_key + cursor) %
                                      static_cast<std::uint64_t>(n_rx));
  while (out.size() < want) {
    while (contains(out, cand)) cand = (cand + 1) % n_rx;
    out.push_back(cand);
    cand = (cand + 1) % n_rx;
  }
}

void append_neighborhood_probes(index_t center, index_t radius, index_t n_rx,
                                index_t want, std::vector<index_t>& out) {
  MMW_REQUIRE(n_rx >= 1 && center < n_rx);
  const long long n = static_cast<long long>(n_rx);
  const auto wrap = [&](long long offset) {
    const long long i = (static_cast<long long>(center) + offset % n + n) % n;
    return static_cast<index_t>(i);
  };
  const auto push = [&](long long offset) {
    const index_t cand = wrap(offset);
    if (!contains(out, cand)) out.push_back(cand);
  };
  push(0);
  for (long long r = 1; r <= static_cast<long long>(radius); ++r) {
    if (out.size() >= want) break;
    push(-r);
    if (out.size() >= want) break;
    push(r);
  }
}

void append_spread_probes(std::uint64_t user_key, std::uint64_t cursor,
                          index_t n_rx, index_t want,
                          std::vector<index_t>& out) {
  MMW_REQUIRE(n_rx >= 1 && want <= n_rx);
  // SplitMix64 over a state derived from (user_key, cursor): the standard
  // finalizer, the same mixing family Rng::stream chains — but used here as
  // a stateless index hash, not a random stream (no draws are consumed).
  std::uint64_t state = user_key * 0x9E3779B97F4A7C15ULL + cursor;
  while (out.size() < want) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    index_t cand = static_cast<index_t>(z % static_cast<std::uint64_t>(n_rx));
    while (contains(out, cand)) cand = (cand + 1) % n_rx;
    out.push_back(cand);
  }
}

}  // namespace mmw::track
