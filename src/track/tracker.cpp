#include "track/tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "estimation/covariance_ml.h"
#include "mac/probe.h"
#include "track/policy.h"

namespace mmw::track {

namespace {

real collapse_scale(const TrackerOptions& o) {
  return std::pow(10.0, -o.collapse_db / 10.0);
}

/// One matched-filter probe through the shared mac chain (no blockage
/// Bernoulli here — blockage is a deterministic large-scale state of the
/// evolved link, not per-probe noise).
class ProbeRig {
 public:
  real probe(const TrackerContext& ctx, index_t tx, index_t rx) {
    if (scratch_.size() != ctx.link->rx_size())
      scratch_ = linalg::Vector(ctx.link->rx_size());
    mac::ProbeView view;
    view.link = ctx.link;
    view.tx_codebook = ctx.tx_codebook;
    view.rx_codebook = ctx.rx_codebook;
    view.gamma = ctx.gamma;
    return mac::probe_energy(view, tx, rx, ctx.fades, *ctx.rng, scratch_);
  }

 private:
  linalg::Vector scratch_;
};

struct SweepOutcome {
  index_t tx = 0, rx = 0;
  real energy = -1.0;
  index_t probes = 0;
};

/// Exhaustive raster sweep; per-RX best excess lands in `rx_excess` (sized
/// by the callee) for beam-space compression. Ties → first seen (lowest
/// raster index).
SweepOutcome full_sweep(const TrackerContext& ctx, ProbeRig& rig,
                        std::vector<real>& rx_excess) {
  const index_t m = ctx.tx_codebook->size();
  const index_t n = ctx.rx_codebook->size();
  const real noise = 1.0 / ctx.gamma;
  rx_excess.assign(n, 0.0);
  SweepOutcome out;
  for (index_t t = 0; t < m; ++t)
    for (index_t r = 0; r < n; ++r) {
      const real e = rig.probe(ctx, t, r);
      if (e > out.energy) {
        out.energy = e;
        out.tx = t;
        out.rx = r;
      }
      rx_excess[r] = std::max(rx_excess[r], e - noise);
      ++out.probes;
    }
  return out;
}

/// Compresses per-RX excess energies to the canonical component list (top
/// max_components positive weights, ascending beam order) via the codec's
/// merge with an empty prior.
std::vector<estimation::BeamComponent> components_from_excess(
    const std::vector<real>& rx_excess, index_t max_components) {
  std::vector<estimation::BeamComponent> update;
  for (index_t r = 0; r < rx_excess.size(); ++r)
    if (rx_excess[r] > 0.0) update.push_back({r, rx_excess[r]});
  return estimation::merge_beam_space({}, 0.0, update, max_components);
}

// ---------------------------------------------------------------------------
// Cold start: the baseline that re-aligns from scratch every epoch.
class ColdStartTracker final : public Tracker {
 public:
  explicit ColdStartTracker(const TrackerOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "cold_start"; }

  void reset() override { state_ = BeamState{}; }

  TrackerReport step(const TrackerContext& ctx) override {
    const SweepOutcome sweep = full_sweep(ctx, rig_, rx_excess_);
    state_.tx_beam = sweep.tx;
    state_.rx_beam = sweep.rx;
    state_.trained_energy = sweep.energy;
    state_.components =
        components_from_excess(rx_excess_, options_.max_components);
    TrackerReport report;
    report.tx_beam = sweep.tx;
    report.rx_beam = sweep.rx;
    report.probes = sweep.probes;
    report.realigned = true;
    return report;
  }

  BeamState export_state() const override { return state_; }

  void import_state(const BeamState& state) override {
    // A cold-start tracker re-sweeps next epoch regardless; the imported
    // pair only seeds the report until then.
    state_ = state;
  }

 private:
  TrackerOptions options_;
  ProbeRig rig_;
  std::vector<real> rx_excess_;
  BeamState state_;
};

// ---------------------------------------------------------------------------
// Warm covariance-ML re-entry.
class WarmMlTracker final : public Tracker {
 public:
  explicit WarmMlTracker(const TrackerOptions& options) : options_(options) {}

  std::string_view name() const override { return "warm_ml"; }

  void reset() override {
    state_ = BeamState{};
    aligning_ = true;
    bootstrapped_ = false;
    slots_ = 0;
    cursor_ = 0;
    phase_energy_ = -1.0;
  }

  TrackerReport step(const TrackerContext& ctx) override {
    TrackerReport report;
    if (!aligning_) {
      const real e = rig_.probe(ctx, state_.tx_beam, state_.rx_beam);
      report.probes = 1;
      if (e < state_.trained_energy * collapse_scale(options_)) {
        report.outage = true;
        aligning_ = true;
        slots_ = 0;
        phase_energy_ = -1.0;
      }
      report.tx_beam = state_.tx_beam;
      report.rx_beam = state_.rx_beam;
      return report;
    }
    report.realigned = true;
    if (!bootstrapped_) {
      // Nothing to warm-start from: acquire once like a cold attach.
      const SweepOutcome sweep = full_sweep(ctx, rig_, scores_);
      state_.tx_beam = sweep.tx;
      state_.rx_beam = sweep.rx;
      state_.trained_energy = sweep.energy;
      state_.components =
          components_from_excess(scores_, options_.max_components);
      report.probes = sweep.probes;
      bootstrapped_ = true;
      aligning_ = false;
      report.tx_beam = sweep.tx;
      report.rx_beam = sweep.rx;
      return report;
    }
    report.probes = align_slot(ctx);
    report.tx_beam = state_.tx_beam;
    report.rx_beam = state_.rx_beam;
    return report;
  }

  BeamState export_state() const override { return state_; }

  void import_state(const BeamState& state) override {
    state_ = state;
    state_.trained_energy = -1.0;  // foreign site: the claim is a hypothesis
    aligning_ = true;
    bootstrapped_ = true;  // the prior replaces the bootstrap sweep
    slots_ = 0;
    phase_energy_ = -1.0;
  }

 private:
  /// One covariance-directed re-alignment slot (the serving engine's
  /// alignment shape, warm-started from the resident prior): TX dwells on
  /// the last claimed beam then cycles, RX probes the prior's top scoring
  /// codewords plus cursor exploration, energies feed the warm ML solve.
  index_t align_slot(const TrackerContext& ctx) {
    const index_t m = ctx.tx_codebook->size();
    const index_t n = ctx.rx_codebook->size();
    const index_t j = std::min(options_.probes_per_slot, n);
    const real noise = 1.0 / ctx.gamma;
    const index_t tx =
        static_cast<index_t>((state_.tx_beam + slots_) % m);

    probe_rx_.clear();
    if (!state_.components.empty()) {
      const linalg::FactoredHermitian q =
          estimation::expand_beam_space(state_.components, *ctx.rx_codebook);
      if (!q.empty()) {
        if (scores_.size() != n) scores_.assign(n, 0.0);
        ctx.rx_codebook->covariance_scores_into(q, scores_);
        const index_t top = j > 1 ? j - 1 : 1;
        for (index_t pick = 0; pick < top; ++pick) {
          index_t best = n;
          real best_score = 0.0;
          for (index_t v = 0; v < n; ++v) {
            if (!(scores_[v] > best_score)) continue;  // ties → lowest v
            if (std::find(probe_rx_.begin(), probe_rx_.end(), v) !=
                probe_rx_.end())
              continue;
            best = v;
            best_score = scores_[v];
          }
          if (best == n) break;
          probe_rx_.push_back(best);
        }
      }
    }
    append_cursor_probes(0, cursor_, n, j, probe_rx_);
    std::sort(probe_rx_.begin(), probe_rx_.end());
    cursor_ += j;

    measurements_.clear();
    for (const index_t rx : probe_rx_) {
      const real e = rig_.probe(ctx, tx, rx);
      measurements_.push_back({ctx.rx_codebook->codeword(rx), e});
      if (e > phase_energy_) {
        phase_energy_ = e;
        phase_tx_ = tx;
        phase_rx_ = rx;
      }
    }

    estimation::CovarianceMlOptions opts;
    opts.gamma = ctx.gamma;
    opts.max_iterations = 40;
    opts.tolerance = 1e-4;
    const linalg::FactoredHermitian prior =
        estimation::expand_beam_space(state_.components, *ctx.rx_codebook);
    const estimation::CovarianceMlResult res =
        estimation::estimate_covariance_ml_warm(n, measurements_, opts,
                                                prior);
    if (scores_.size() != n) scores_.assign(n, 0.0);
    std::vector<estimation::BeamComponent> update =
        estimation::compress_to_beam_space(res.q, *ctx.rx_codebook,
                                           options_.max_components, scores_);
    state_.components = estimation::merge_beam_space(
        state_.components, options_.forgetting, update,
        options_.max_components);

    ++slots_;
    if (slots_ >= options_.align_slots && phase_energy_ > noise) {
      state_.tx_beam = phase_tx_;
      state_.rx_beam = phase_rx_;
      state_.trained_energy = phase_energy_;
      aligning_ = false;
    }
    return j;
  }

  TrackerOptions options_;
  ProbeRig rig_;
  BeamState state_;
  bool aligning_ = true;
  bool bootstrapped_ = false;
  index_t slots_ = 0;
  std::uint64_t cursor_ = 0;
  real phase_energy_ = -1.0;
  index_t phase_tx_ = 0, phase_rx_ = 0;
  std::vector<real> scores_;
  std::vector<index_t> probe_rx_;
  std::vector<estimation::BeamMeasurement> measurements_;
};

// ---------------------------------------------------------------------------
// Neighborhood re-scan (the PR-6 widened-window recovery as a tracker).
class NeighborhoodTracker final : public Tracker {
 public:
  explicit NeighborhoodTracker(const TrackerOptions& options)
      : options_(options) {}

  std::string_view name() const override { return "neighborhood"; }

  void reset() override {
    state_ = BeamState{};
    aligned_ = false;
    reacquire_ = false;
  }

  TrackerReport step(const TrackerContext& ctx) override {
    TrackerReport report;
    if (!aligned_) {
      const SweepOutcome sweep = full_sweep(ctx, rig_, rx_excess_);
      state_.tx_beam = sweep.tx;
      state_.rx_beam = sweep.rx;
      state_.trained_energy = sweep.energy;
      state_.components =
          components_from_excess(rx_excess_, options_.max_components);
      aligned_ = true;
      report.tx_beam = sweep.tx;
      report.rx_beam = sweep.rx;
      report.probes = sweep.probes;
      report.realigned = true;
      return report;
    }
    if (reacquire_) {
      // Post-handover: the imported pair is a hypothesis on a new site —
      // rescan its widest window immediately instead of trusting it.
      reacquire_ = false;
      report.probes = scan_windows(ctx, options_.max_retries);
      report.tx_beam = state_.tx_beam;
      report.rx_beam = state_.rx_beam;
      report.realigned = true;
      return report;
    }
    const real e = rig_.probe(ctx, state_.tx_beam, state_.rx_beam);
    report.probes = 1;
    if (e >= state_.trained_energy * collapse_scale(options_)) {
      report.tx_beam = state_.tx_beam;
      report.rx_beam = state_.rx_beam;
      return report;
    }
    report.outage = true;
    report.realigned = true;
    best_energy_ = e;
    best_tx_ = state_.tx_beam;
    best_rx_ = state_.rx_beam;
    report.probes += scan_windows(ctx, options_.max_retries);
    report.tx_beam = state_.tx_beam;
    report.rx_beam = state_.rx_beam;
    return report;
  }

  BeamState export_state() const override { return state_; }

  void import_state(const BeamState& state) override {
    state_ = state;
    state_.trained_energy = -1.0;
    aligned_ = true;
    reacquire_ = true;
  }

 private:
  /// The PR-6 shape: retry r sweeps the Chebyshev window of radius
  /// r·widen_radius around the claimed pair — the TX ring against the
  /// claimed RX beam, then the claimed TX against the RX window, indices
  /// wrapping — and stops at the first recovery; exhausting every retry
  /// falls back to a full sweep. Returns probes spent, updates state_.
  index_t scan_windows(const TrackerContext& ctx, index_t retries) {
    const index_t m = ctx.tx_codebook->size();
    const index_t n = ctx.rx_codebook->size();
    const real threshold =
        state_.trained_energy > 0.0
            ? state_.trained_energy * collapse_scale(options_)
            : std::numeric_limits<real>::infinity();
    if (best_energy_ < 0.0) {
      best_tx_ = state_.tx_beam;
      best_rx_ = state_.rx_beam;
    }
    index_t probes = 0;
    bool recovered = false;
    probed_.assign(m * n, false);
    const auto wrap = [](index_t center, long long off, index_t size) {
      const long long s = static_cast<long long>(size);
      const long long i = (static_cast<long long>(center) + off % s + s) % s;
      return static_cast<index_t>(i);
    };
    const auto try_pair = [&](index_t t, index_t r) {
      if (probed_[t * n + r]) return false;
      probed_[t * n + r] = true;
      const real e = rig_.probe(ctx, t, r);
      ++probes;
      if (e > best_energy_) {
        best_energy_ = e;
        best_tx_ = t;
        best_rx_ = r;
      }
      return e >= threshold;
    };
    for (index_t retry = 1; retry <= retries && !recovered; ++retry) {
      const long long radius =
          static_cast<long long>(retry * options_.widen_radius);
      for (long long off = -radius; off <= radius && !recovered; ++off) {
        if (try_pair(wrap(state_.tx_beam, off, m), state_.rx_beam) ||
            try_pair(state_.tx_beam, wrap(state_.rx_beam, off, n)))
          recovered = true;
      }
    }
    if (!recovered && state_.trained_energy > 0.0) {
      // The window missed: the pair moved further than drift explains.
      const SweepOutcome sweep = full_sweep(ctx, rig_, rx_excess_);
      probes += sweep.probes;
      best_energy_ = sweep.energy;
      best_tx_ = sweep.tx;
      best_rx_ = sweep.rx;
      state_.components =
          components_from_excess(rx_excess_, options_.max_components);
    }
    state_.tx_beam = best_tx_;
    state_.rx_beam = best_rx_;
    state_.trained_energy = best_energy_;
    best_energy_ = -1.0;
    return probes;
  }

  TrackerOptions options_;
  ProbeRig rig_;
  BeamState state_;
  bool aligned_ = false;
  bool reacquire_ = false;
  real best_energy_ = -1.0;
  index_t best_tx_ = 0, best_rx_ = 0;
  std::vector<bool> probed_;
  std::vector<real> rx_excess_;
};

// ---------------------------------------------------------------------------
// Correlated UCB bandit over beam pairs.
class BanditTracker final : public Tracker {
 public:
  explicit BanditTracker(const TrackerOptions& options) : options_(options) {}

  std::string_view name() const override { return "bandit_ucb"; }

  void reset() override {
    mu_.clear();
    weight_.clear();
    initialized_ = false;
    t_ = 0;
    state_ = BeamState{};
  }

  TrackerReport step(const TrackerContext& ctx) override {
    const index_t m = ctx.tx_codebook->size();
    const index_t n = ctx.rx_codebook->size();
    ensure_arms(m, n);
    TrackerReport report;
    if (!initialized_) {
      // Cold attach: one exhaustive pass seeds every arm.
      const SweepOutcome sweep = full_sweep(ctx, rig_, rx_excess_);
      const real noise = 1.0 / ctx.gamma;
      // Storing every pair's sweep energy would defeat the point of a
      // bandit; seed arm means from the per-RX excess (shared across the
      // TX axis) and let subsequent pulls re-localize TX.
      for (index_t t = 0; t < m; ++t)
        for (index_t r = 0; r < n; ++r) mu_[t * n + r] = rx_excess_[r] + noise;
      weight_.assign(m * n, 0.5);
      mu_[sweep.tx * n + sweep.rx] = sweep.energy;
      weight_[sweep.tx * n + sweep.rx] = 1.0;
      initialized_ = true;
      t_ = 1;
      report.probes = sweep.probes;
      report.realigned = true;
      claim(n);
      report.tx_beam = state_.tx_beam;
      report.rx_beam = state_.rx_beam;
      return report;
    }

    ++t_;
    for (real& w : weight_) w *= options_.bandit_forgetting;
    const index_t pulls =
        std::min<index_t>(options_.bandit_probes, mu_.size());
    // Select all arms first (UCB without replacement, ties → lowest
    // index), then probe in ascending arm order — the canonical
    // measurement order every other engine uses.
    pulls_.clear();
    real scale = 0.0;
    for (const real v : mu_) scale += v;
    scale /= static_cast<real>(mu_.size());
    for (index_t k = 0; k < pulls; ++k) {
      index_t best = mu_.size();
      real best_score = -std::numeric_limits<real>::infinity();
      for (index_t a = 0; a < mu_.size(); ++a) {
        if (std::find(pulls_.begin(), pulls_.end(), a) != pulls_.end())
          continue;
        const real bonus =
            options_.ucb_c * scale *
            std::sqrt(std::log(static_cast<real>(t_) + 1.0) /
                      std::max(weight_[a], 1e-3));
        const real score = mu_[a] + bonus;
        if (score > best_score) {  // ties → lowest a
          best_score = score;
          best = a;
        }
      }
      pulls_.push_back(best);
    }
    std::sort(pulls_.begin(), pulls_.end());
    const index_t old_tx = state_.tx_beam, old_rx = state_.rx_beam;
    for (const index_t a : pulls_) {
      const index_t t = a / n, r = a % n;
      const real e = rig_.probe(ctx, t, r);
      absorb(a, e, 1.0);
      // Correlated update: adjacent arms on either beam axis share the
      // reward at a discount (the angular overlap of neighboring
      // codewords makes their means strongly correlated).
      const real k = options_.neighbor_coupling;
      if (r > 0) absorb(a - 1, e, k);
      if (r + 1 < n) absorb(a + 1, e, k);
      if (t > 0) absorb(a - n, e, k);
      if (t + 1 < m) absorb(a + n, e, k);
      ++report.probes;
    }
    claim(n);
    report.tx_beam = state_.tx_beam;
    report.rx_beam = state_.rx_beam;
    report.realigned =
        state_.tx_beam != old_tx || state_.rx_beam != old_rx;
    return report;
  }

  BeamState export_state() const override {
    BeamState out = state_;
    if (!mu_.empty()) {
      const index_t n = rx_count_;
      std::vector<real> rx_best(n, 0.0);
      for (index_t a = 0; a < mu_.size(); ++a)
        rx_best[a % n] = std::max(rx_best[a % n], mu_[a]);
      // Weights are energies above the global floor so the codec's ≥ 0
      // contract holds whatever the noise level was.
      const real floor = *std::min_element(rx_best.begin(), rx_best.end());
      for (real& v : rx_best) v = std::max(v - floor, 0.0);
      out.components =
          components_from_excess(rx_best, options_.max_components);
    }
    return out;
  }

  void import_state(const BeamState& state) override {
    state_ = state;
    state_.trained_energy = -1.0;
    pending_prior_ = state.components;
    has_pending_prior_ = true;
    initialized_ = false;  // ensure_arms + first step consume the prior
  }

 private:
  void ensure_arms(index_t m, index_t n) {
    if (mu_.size() == m * n && !has_pending_prior_) return;
    if (mu_.size() != m * n) {
      mu_.assign(m * n, 0.0);
      weight_.assign(m * n, 0.0);
    }
    rx_count_ = n;
    if (has_pending_prior_) {
      // Prior carried through handover: seed every TX row of each named RX
      // beam (the component list is TX-blind) with a weak weight, so UCB
      // exploits the angular prior but still explores.
      std::fill(mu_.begin(), mu_.end(), 0.0);
      weight_.assign(m * n, 0.25);
      for (const estimation::BeamComponent& c : pending_prior_)
        for (index_t t = 0; t < m; ++t) mu_[t * n + c.beam] = c.weight;
      has_pending_prior_ = false;
      initialized_ = true;
      t_ = 1;
      claim(n);
    }
  }

  void absorb(index_t arm, real energy, real w) {
    const real total = weight_[arm] + w;
    mu_[arm] = (weight_[arm] * mu_[arm] + w * energy) / total;
    weight_[arm] = total;
  }

  void claim(index_t n) {
    index_t best = 0;
    for (index_t a = 1; a < mu_.size(); ++a)
      if (mu_[a] > mu_[best]) best = a;  // ties → lowest arm
    state_.tx_beam = best / n;
    state_.rx_beam = best % n;
    state_.trained_energy = mu_[best];
  }

  TrackerOptions options_;
  ProbeRig rig_;
  std::vector<real> mu_;      ///< arm mean energy
  std::vector<real> weight_;  ///< arm evidence weight (decayed)
  std::vector<index_t> pulls_;
  std::vector<real> rx_excess_;
  std::vector<estimation::BeamComponent> pending_prior_;
  bool has_pending_prior_ = false;
  bool initialized_ = false;
  std::uint64_t t_ = 0;
  BeamState state_;
  index_t rx_count_ = 0;
};

}  // namespace

const char* tracker_name(TrackerKind kind) {
  switch (kind) {
    case TrackerKind::kColdStart: return "cold_start";
    case TrackerKind::kWarmMl: return "warm_ml";
    case TrackerKind::kNeighborhood: return "neighborhood";
    case TrackerKind::kBanditUcb: return "bandit_ucb";
  }
  MMW_REQUIRE_MSG(false, "unknown tracker kind");
  return "";
}

std::unique_ptr<Tracker> make_tracker(TrackerKind kind,
                                      const TrackerOptions& options) {
  switch (kind) {
    case TrackerKind::kColdStart:
      return std::make_unique<ColdStartTracker>(options);
    case TrackerKind::kWarmMl:
      return std::make_unique<WarmMlTracker>(options);
    case TrackerKind::kNeighborhood:
      return std::make_unique<NeighborhoodTracker>(options);
    case TrackerKind::kBanditUcb:
      return std::make_unique<BanditTracker>(options);
  }
  MMW_REQUIRE_MSG(false, "unknown tracker kind");
  return nullptr;
}

}  // namespace mmw::track
