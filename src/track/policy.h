// Deterministic RX probe-selection policies shared by the tracking layer
// and the serving engine. Each selector is a pure function of its inputs —
// no RNG, no hidden state — so a 96-byte resident UserSession (serve/) can
// run the same selection logic as a heap-backed Tracker (track/tracker.h):
// the session's cursor/beam fields ARE the tracker state.
#pragma once

#include <vector>

#include "linalg/common.h"

namespace mmw::track {

/// How serve::ServingEngine picks the exploration probes of an alignment
/// slot (the covariance-directed exploit picks are policy-independent).
enum class ProbePolicy {
  /// Sequential cursor sweep over the RX codebook (the legacy PR-9
  /// behavior; byte-identical CSVs to pre-tracking builds). Default.
  kCursorSweep,
  /// Re-aligning sessions scan a widening Chebyshev window around the last
  /// claimed RX beam (the PR-6 recovery shape); fresh sessions fall back to
  /// the cursor sweep.
  kNeighborhood,
  /// UCB-flavored selection: exploration probes jump pseudo-randomly
  /// (hash-spread, not sequential) so repeated re-alignments of the same
  /// session decorrelate — the serving-engine face of the bandit tracker.
  kBanditUcb,
};

/// Cursor-sweep candidates: appends probes (user_key + cursor + i) mod n_rx,
/// skipping indices already in `out`, until out has `want` entries.
/// Preconditions: want ≤ n_rx, n_rx ≥ 1.
void append_cursor_probes(std::uint64_t user_key, std::uint64_t cursor,
                          index_t n_rx, index_t want,
                          std::vector<index_t>& out);

/// Chebyshev-window candidates around `center` with wraparound: offsets
/// 0, −1, +1, −2, +2, … up to ±radius, skipping duplicates, until `out`
/// has `want` entries or the window is exhausted (callers top up with
/// another selector). Preconditions: center < n_rx, n_rx ≥ 1.
void append_neighborhood_probes(index_t center, index_t radius, index_t n_rx,
                                index_t want, std::vector<index_t>& out);

/// Hash-spread candidates: a SplitMix64 sequence seeded by (user_key,
/// cursor) mapped onto [0, n_rx), skipping duplicates, until `out` has
/// `want` entries. Deterministic for fixed inputs, decorrelated across
/// cursor values. Preconditions: want ≤ n_rx, n_rx ≥ 1.
void append_spread_probes(std::uint64_t user_key, std::uint64_t cursor,
                          index_t n_rx, index_t want,
                          std::vector<index_t>& out);

}  // namespace mmw::track
