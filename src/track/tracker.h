// Tracker strategies: how a served user keeps a claimed beam pair good as
// the channel evolves underneath it (channel::LinkEvolution). Where
// core::AlignmentStrategy answers "align once from nothing inside a
// budget", a Tracker answers the steady-state question: each epoch it may
// spend a few probes, must report a servable pair, and decides for itself
// when the pair has collapsed and a re-alignment is worth the probes.
//
// The four implementations span the paper-adjacent design space:
//  - kColdStart: exhaustive re-sweep every epoch. The probe-cost upper
//    bound and loss lower bound the E10 bench grades everything against.
//  - kWarmMl: covariance-ML re-entry — verify one probe per epoch; on
//    collapse, re-align with covariance-directed slots warm-started from
//    the resident beam-space prior (estimation/beamspace expand/compress,
//    the PR-8 codec).
//  - kNeighborhood: verify one probe per epoch; on collapse, re-scan
//    widening Chebyshev windows around the last pair (the PR-6
//    verify_and_realign shape), falling back to a full sweep.
//  - kBanditUcb: a correlated UCB bandit over beam pairs with exponential
//    forgetting and neighbor-discounted reward sharing; the arm prior is
//    seeded from the factored Q̂ beam scores carried through handover.
//
// Determinism: step() draws only from ctx.rng (the caller supplies the
// reserved track-measure stream per (tracker, user, epoch)), all ranking
// ties break toward the lowest index, and export_state() returns the
// canonical beam-space form — so two trackers fed identical contexts are
// bit-identical, which the engine's thread-count CSV contract rests on.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "antenna/codebook.h"
#include "channel/link.h"
#include "estimation/beamspace.h"
#include "randgen/rng.h"

namespace mmw::track {

/// Session state a tracker carries across epochs — and across HANDOVER:
/// the beam-space component list is exactly the serving engine's resident
/// wire format (estimation/beamspace.h: ≤ max_components entries, ascending
/// beam order, u16-expressible beams + f32-expressible weights), so this is
/// what survives a site change. Everything else is rebuilt on re-entry.
struct BeamState {
  std::vector<estimation::BeamComponent> components;  ///< canonical order
  index_t tx_beam = 0;
  index_t rx_beam = 0;
  /// Matched-filter energy the pair trained at (−1 = nothing claimed yet).
  real trained_energy = -1.0;
};

/// Everything one tracking epoch needs; all pointers borrowed, non-null.
struct TrackerContext {
  const channel::Link* link = nullptr;
  const antenna::Codebook* tx_codebook = nullptr;
  const antenna::Codebook* rx_codebook = nullptr;
  /// Effective pre-beamforming SNR (pathloss folded in by the engine).
  real gamma = 1.0;
  /// Independent fades averaged per probe.
  index_t fades = 4;
  /// The epoch's measurement stream (reserved track-measure lane).
  randgen::Rng* rng = nullptr;
};

/// What one epoch of tracking did.
struct TrackerReport {
  index_t tx_beam = 0;
  index_t rx_beam = 0;
  index_t probes = 0;      ///< measurement probes spent this epoch
  bool realigned = false;  ///< spent probes re-deciding the pair
  bool outage = false;     ///< collapse test failed this epoch
};

enum class TrackerKind : std::uint8_t {
  kColdStart = 0,
  kWarmMl = 1,
  kNeighborhood = 2,
  kBanditUcb = 3,
};

/// Tuning knobs shared by every tracker (each reads the subset it needs).
struct TrackerOptions {
  // -- verify/re-align (warm + neighborhood) --------------------------------
  real collapse_db = 10.0;    ///< outage: energy fell this far below trained
  index_t probes_per_slot = 8;   ///< J probes per warm re-alignment slot
  index_t align_slots = 2;       ///< warm re-alignment slots before claiming
  real forgetting = 0.7;         ///< beam-space merge factor across slots
  index_t max_components = 6;    ///< resident component budget (serve parity)
  // -- neighborhood window --------------------------------------------------
  index_t widen_radius = 2;   ///< window radius grows by this per retry
  index_t max_retries = 2;    ///< widening retries before full-sweep fallback
  // -- bandit ---------------------------------------------------------------
  index_t bandit_probes = 2;     ///< arms pulled per epoch in steady state
  real ucb_c = 2.0;              ///< exploration weight
  real bandit_forgetting = 0.98; ///< per-epoch decay of arm statistics
  real neighbor_coupling = 0.5;  ///< reward share granted to adjacent arms
};

class Tracker {
 public:
  virtual ~Tracker() = default;
  virtual std::string_view name() const = 0;
  /// Back to the never-aligned state (forgets any imported prior).
  virtual void reset() = 0;
  /// One tracking epoch over the context's link.
  virtual TrackerReport step(const TrackerContext& ctx) = 0;
  /// Canonical beam-space snapshot (the handover wire format).
  virtual BeamState export_state() const = 0;
  /// Re-enters with a prior carried from another site: the tracker must
  /// treat the pair as a hypothesis (re-verify / re-align), not a claim.
  virtual void import_state(const BeamState& state) = 0;
};

const char* tracker_name(TrackerKind kind);

std::unique_ptr<Tracker> make_tracker(TrackerKind kind,
                                      const TrackerOptions& options);

}  // namespace mmw::track
