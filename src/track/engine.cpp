#include "track/engine.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <sstream>

#include "core/thread_pool.h"
#include "obs/digest.h"
#include "obs/metrics.h"
#include "randgen/keylanes.h"

namespace mmw::track {

namespace {

using randgen::lanes::kTrajectoryLane;
using randgen::lanes::temporal_lane;
using randgen::lanes::track_link_lane;
using randgen::lanes::track_measure_lane;

/// track.* telemetry, published once per run from the MERGED totals on the
/// calling thread (obs on/off cannot perturb results — DESIGN.md §7).
struct TrackMetrics {
  obs::Counter epochs;
  obs::Counter probes;
  obs::Counter realignments;
  obs::Counter outages;
  obs::Counter handovers;
  obs::Gauge mean_loss_db;
  static const TrackMetrics& get() {
    static const TrackMetrics m{
        obs::Registry::global().counter("track.epochs"),
        obs::Registry::global().counter("track.probes"),
        obs::Registry::global().counter("track.realignments"),
        obs::Registry::global().counter("track.outages"),
        obs::Registry::global().counter("track.handovers"),
        obs::Registry::global().gauge("track.loss.mean_db"),
    };
    return m;
  }
};

/// Per-shard accumulator, merged in flat (tracker, user) shard order.
struct Frame {
  std::uint64_t steady_epochs = 0;
  std::uint64_t realigns = 0;
  std::uint64_t outages = 0;
  std::uint64_t probes_steady = 0;
  std::uint64_t probes_total = 0;
  std::uint64_t handovers = 0;
  obs::QuantileDigest loss;

  void merge(const Frame& o) {
    steady_epochs += o.steady_epochs;
    realigns += o.realigns;
    outages += o.outages;
    probes_steady += o.probes_steady;
    probes_total += o.probes_total;
    handovers += o.handovers;
    loss.merge(o.loss);
  }
};

/// Oracle: the best mean pair gain over the codebook product at this
/// epoch's link (exhaustive — the grading reference, not a strategy).
real oracle_best_gain(const channel::Link& link,
                      const sim::CodebookPair& codebooks) {
  real best = 0.0;
  for (index_t t = 0; t < codebooks.tx.size(); ++t)
    for (index_t r = 0; r < codebooks.rx.size(); ++r)
      best = std::max(best, link.mean_pair_gain(codebooks.tx.codeword(t),
                                                codebooks.rx.codeword(r)));
  return best;
}

/// One (tracker, user) shard: the user's whole journey, sequential in
/// epochs (trackers are stateful), independent of every other shard.
void run_shard(const TrackingConfig& config, const sim::Topology& topology,
               const sim::CodebookPair& codebooks,
               const channel::EvolutionConfig& evolution, TrackerKind kind,
               index_t user, Frame& frame) {
  const sim::Scenario& sc = config.scenario;
  const antenna::ArrayGeometry tx_geom =
      antenna::ArrayGeometry::upa(sc.tx_grid_x, sc.tx_grid_y);
  const antenna::ArrayGeometry rx_geom =
      antenna::ArrayGeometry::upa(sc.rx_grid_x, sc.rx_grid_y);

  const sim::Trajectory trajectory(topology, config.mobility.speed_mps,
                                   config.mobility.epoch_seconds, sc.seed,
                                   user);
  std::unique_ptr<Tracker> tracker = make_tracker(kind, config.options);
  tracker->reset();

  const auto evolution_for = [&](index_t site) {
    randgen::Rng link_rng =
        randgen::Rng::stream(sc.seed, track_link_lane(site), user, 0);
    const channel::Link base = sim::make_scenario_link(sc, link_rng);
    return channel::LinkEvolution(tx_geom, rx_geom, base.paths(), evolution,
                                  sc.seed, temporal_lane(site), user);
  };

  index_t site = sim::nearest_site(topology, trajectory.position_at(0));
  std::optional<channel::LinkEvolution> evo(evolution_for(site));

  for (index_t epoch = 0; epoch < config.epochs; ++epoch) {
    const sim::UserPlacement pos = trajectory.position_at(epoch);
    const index_t next_site = sim::select_serving_site(
        topology, pos, site, config.mobility.hysteresis_db);
    if (next_site != site) {
      // Handover: the beam-space state is the only survivor (the codec
      // round-trip the serving engine's resident sessions perform).
      const BeamState carried = tracker->export_state();
      site = next_site;
      evo.emplace(evolution_for(site));
      tracker->import_state(carried);
      ++frame.handovers;
    }
    evo->seek(epoch);
    const channel::Link link = evo->current();

    randgen::Rng rng = randgen::Rng::stream(
        sc.seed, track_measure_lane(static_cast<std::uint64_t>(kind)), user,
        epoch);
    TrackerContext ctx;
    ctx.link = &link;
    ctx.tx_codebook = &codebooks.tx;
    ctx.rx_codebook = &codebooks.rx;
    ctx.gamma = sc.gamma * topology.pathloss_gain(site, pos);
    ctx.fades = sc.fades_per_measurement;
    ctx.rng = &rng;
    const TrackerReport report = tracker->step(ctx);

    frame.probes_total += report.probes;
    if (epoch < config.warmup_epochs) continue;
    const real best = oracle_best_gain(link, codebooks);
    const real claimed =
        link.mean_pair_gain(codebooks.tx.codeword(report.tx_beam),
                            codebooks.rx.codeword(report.rx_beam));
    // Cap the loss at 60 dB (a zero-gain claim would otherwise be −inf).
    const real loss_db =
        10.0 * std::log10(best / std::max(claimed, best * 1e-6));
    frame.loss.add(loss_db);
    ++frame.steady_epochs;
    frame.probes_steady += report.probes;
    if (report.realigned) ++frame.realigns;
    if (report.outage) ++frame.outages;
  }
}

}  // namespace

TrackingResult run_tracking(const TrackingConfig& config,
                            const std::vector<TrackerKind>& kinds) {
  MMW_REQUIRE(config.users >= 1 && config.epochs >= 1);
  MMW_REQUIRE_MSG(config.warmup_epochs < config.epochs,
                  "warmup must leave at least one steady epoch");
  MMW_REQUIRE(!kinds.empty());

  const sim::Topology topology = sim::Topology::build(config.topology);
  const sim::CodebookPair codebooks =
      sim::make_scenario_codebooks(config.scenario);
  channel::EvolutionConfig evolution = config.evolution;
  evolution.speed_mps = config.mobility.speed_mps;
  evolution.epoch_seconds = config.mobility.epoch_seconds;

  const index_t n_shards = kinds.size() * config.users;
  std::vector<Frame> frames(n_shards);
  const auto body = [&](index_t shard) {
    const TrackerKind kind = kinds[shard / config.users];
    const index_t user = shard % config.users;
    run_shard(config, topology, codebooks, evolution, kind, user,
              frames[shard]);
  };
  const index_t threads =
      core::resolve_thread_count(config.scenario.threads);
  if (threads <= 1) {
    for (index_t s = 0; s < n_shards; ++s) body(s);
  } else {
    core::ThreadPool pool(threads);
    pool.parallel_for(0, n_shards, body);
  }

  TrackingResult result;
  result.users = config.users;
  result.epochs = config.epochs;
  result.warmup_epochs = config.warmup_epochs;
  Frame grand_total;
  for (index_t k = 0; k < kinds.size(); ++k) {
    Frame total;  // merged in ascending user order — the flat shard order
    for (index_t u = 0; u < config.users; ++u)
      total.merge(frames[k * config.users + u]);
    TrackerCaseResult r;
    r.name = tracker_name(kinds[k]);
    r.steady_epochs = total.steady_epochs;
    if (total.steady_epochs > 0) {
      const real n = static_cast<real>(total.steady_epochs);
      r.mean_loss_db = total.loss.sum() / n;
      r.p50_loss_db = total.loss.quantile(0.5);
      r.p90_loss_db = total.loss.quantile(0.9);
      r.p99_loss_db = total.loss.quantile(0.99);
      r.max_loss_db = total.loss.max_value();
      r.realign_rate = static_cast<real>(total.realigns) / n;
      r.outage_rate = static_cast<real>(total.outages) / n;
      r.probes_per_epoch = static_cast<real>(total.probes_steady) / n;
    }
    r.probes_total = total.probes_total;
    if (k == 0)
      result.handovers_per_user =
          static_cast<real>(total.handovers) / config.users;
    result.trackers.push_back(std::move(r));
    grand_total.merge(total);
  }

  if (obs::enabled()) {
    const TrackMetrics& m = TrackMetrics::get();
    m.epochs.add(static_cast<std::uint64_t>(config.epochs) * config.users *
                 kinds.size());
    m.probes.add(grand_total.probes_total);
    m.realignments.add(grand_total.realigns);
    m.outages.add(grand_total.outages);
    m.handovers.add(grand_total.handovers);
    if (grand_total.steady_epochs > 0)
      m.mean_loss_db.set(grand_total.loss.sum() /
                         static_cast<real>(grand_total.steady_epochs));
  }
  return result;
}

std::string render_tracking_csv(const std::string& x_label,
                                const std::vector<real>& xs,
                                const std::vector<TrackingResult>& results) {
  MMW_REQUIRE(xs.size() == results.size());
  MMW_REQUIRE(!results.empty());
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << x_label;
  for (const TrackerCaseResult& t : results.front().trackers)
    os << ',' << t.name << "_loss_db," << t.name << "_p99_loss_db,"
       << t.name << "_realign_rate," << t.name << "_probes_per_epoch";
  os << ",handovers_per_user\n";
  for (index_t i = 0; i < xs.size(); ++i) {
    const TrackingResult& r = results[i];
    MMW_REQUIRE_MSG(r.trackers.size() == results.front().trackers.size(),
                    "every row must cover the same trackers");
    os << xs[i];
    for (const TrackerCaseResult& t : r.trackers)
      os << ',' << t.mean_loss_db << ',' << t.p99_loss_db << ','
         << t.realign_rate << ',' << t.probes_per_epoch;
    os << ',' << r.handovers_per_user << '\n';
  }
  return os.str();
}

}  // namespace mmw::track
