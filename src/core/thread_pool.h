// A small fixed-size thread pool for data-parallel Monte-Carlo work.
//
// Design constraints (see DESIGN.md §7):
//  - no external dependencies: C++20 std::jthread + mutex/condition_variable;
//  - no work stealing: one shared FIFO queue is plenty when tasks are
//    coarse (a whole Monte-Carlo trial each) — contention on the queue is
//    negligible next to the milliseconds a trial costs;
//  - determinism lives in the *caller*: the pool makes no ordering promises
//    about execution, so callers that need reproducible output must write
//    results into per-index slots and reduce in index order (which is
//    exactly what sim::run_search_effectiveness does).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "linalg/common.h"

namespace mmw::core {

/// Returns the thread count a knob value of 0 ("auto") resolves to:
/// std::thread::hardware_concurrency(), clamped to at least 1.
index_t resolve_thread_count(index_t requested);

/// One captured iteration failure of parallel_for_quarantined.
struct IterationFailure {
  index_t index = 0;     ///< the iteration that threw
  std::string message;   ///< what() of the thrown exception
};

/// Fixed-size thread pool. Threads are started in the constructor and
/// joined in the destructor; there is no dynamic resizing.
///
/// Thread-safety: submit() and parallel_for() may be called from any
/// thread, including concurrently. Tasks must not themselves call
/// parallel_for() on the same pool (no nested parallelism — a task waiting
/// on the pool it runs in would deadlock).
class ThreadPool {
 public:
  /// Starts `thread_count` workers; 0 means resolve_thread_count(0)
  /// (hardware concurrency).
  explicit ThreadPool(index_t thread_count = 0);

  /// Drains nothing: tasks still queued are executed before shutdown
  /// completes (the destructor signals stop and joins all workers).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  index_t thread_count() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. Exceptions escaping `task` are
  /// swallowed by the worker (use parallel_for when you need propagation).
  void submit(std::function<void()> task);

  /// Runs body(i) for every i in [begin, end) across the pool and blocks
  /// until all iterations finished. Iterations are claimed dynamically, so
  /// execution order is unspecified; side effects must go to per-index
  /// storage. An empty range returns immediately without touching the
  /// queue.
  ///
  /// Failure semantics: the exception rethrown on the calling thread is
  /// DETERMINISTICALLY the one from the lowest-index failing iteration, so
  /// failure reports are thread-count invariant. Why this holds: indices
  /// are claimed in ascending order from one atomic counter, so by the
  /// time any iteration g fails, every index below g has already been
  /// claimed and will run to completion before the call returns — the
  /// lowest failing index is therefore always among the iterations that
  /// ran, and a min-index reduction over recorded failures picks it
  /// regardless of timing. The first failure still cancels all
  /// *unclaimed* iterations (they are above every claimed index, hence
  /// above the minimum, and cannot affect it).
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t)>& body);

  /// Quarantine variant: every iteration runs regardless of other
  /// iterations' failures; a throwing iteration is captured — never
  /// rethrown — and reported in the returned list, sorted by index. The
  /// set of failures is a pure function of `body` (no cancellation, no
  /// timing dependence), which is what lets the Monte-Carlo drivers
  /// exclude poisoned trials identically at any thread count
  /// (DESIGN.md §11).
  std::vector<IterationFailure> parallel_for_quarantined(
      index_t begin, index_t end,
      const std::function<void(index_t)>& body);

  /// Monotone progress counter: bumped once per completed parallel_for /
  /// parallel_for_quarantined iteration and per drained submit() task.
  /// The obs::Watchdog reads this (plus the engine's own counters) to tell
  /// "slow epoch" from "wedged pool" — any forward motion anywhere in the
  /// pool resets the stall clock. Safe to read from any thread.
  std::uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }

 private:
  /// `ordinal` is the 1-based worker index, reported to obs as the thread
  /// ordinal so metric shards and trace buffers merge in a stable order
  /// (the caller thread keeps ordinal 0).
  void worker_loop(index_t ordinal);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> heartbeat_{0};
  std::vector<std::jthread> workers_;
};

}  // namespace mmw::core
