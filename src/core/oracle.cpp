#include "core/oracle.h"

#include <cmath>
#include <limits>
#include <vector>

namespace mmw::core {

PairGainOracle::PairGainOracle(const channel::Link& link,
                               const antenna::Codebook& tx_codebook,
                               const antenna::Codebook& rx_codebook)
    : gains_(tx_codebook.size(), rx_codebook.size()) {
  MMW_REQUIRE(tx_codebook.codeword(0).size() == link.tx_size());
  MMW_REQUIRE(rx_codebook.codeword(0).size() == link.rx_size());

  // G(t, r) = NM · Σ_l p_l |a_tx,lᴴ u_t|² |v_rᴴ a_rx,l|² factorizes into
  // per-path coupling tables, so the full T-pair table costs
  // O(paths · (|U| + |V|)) inner products instead of O(paths · T).
  const auto& paths = link.paths();
  const index_t nt = tx_codebook.size();
  const index_t nr = rx_codebook.size();
  std::vector<real> tx_coupling(paths.size() * nt);
  std::vector<real> rx_coupling(paths.size() * nr);
  for (index_t l = 0; l < paths.size(); ++l) {
    for (index_t t = 0; t < nt; ++t)
      tx_coupling[l * nt + t] =
          std::norm(linalg::dot(link.tx_steering(l), tx_codebook.codeword(t)));
    for (index_t r = 0; r < nr; ++r)
      rx_coupling[l * nr + r] =
          std::norm(linalg::dot(rx_codebook.codeword(r), link.rx_steering(l)));
  }
  const real nm = static_cast<real>(link.tx_size() * link.rx_size());
  for (index_t t = 0; t < nt; ++t) {
    for (index_t r = 0; r < nr; ++r) {
      real acc = 0.0;
      for (index_t l = 0; l < paths.size(); ++l)
        acc += paths[l].power * tx_coupling[l * nt + t] *
               rx_coupling[l * nr + r];
      const real g = nm * acc;
      gains_(t, r) = cx{g, 0.0};
      if (g > optimal_gain_) {
        optimal_gain_ = g;
        optimal_ = {t, r};
      }
    }
  }
  MMW_REQUIRE_MSG(optimal_gain_ > 0.0,
                  "degenerate link: every codebook pair has zero gain");
}

real PairGainOracle::gain(index_t tx_beam, index_t rx_beam) const {
  MMW_REQUIRE(tx_beam < tx_size() && rx_beam < rx_size());
  return gains_(tx_beam, rx_beam).real();
}

real PairGainOracle::loss_db(index_t tx_beam, index_t rx_beam) const {
  const real g = gain(tx_beam, rx_beam);
  if (g <= 0.0) return std::numeric_limits<real>::infinity();
  return 10.0 * std::log10(optimal_gain_ / g);
}

}  // namespace mmw::core
