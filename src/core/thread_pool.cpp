#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/clock.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmw::core {

namespace {

/// Pool utilization telemetry (ROADMAP: the evidence for the multi-core
/// re-measure item). busy/idle are wall-microsecond integrals per worker;
/// tasks counts queue claims, not parallel_for iterations.
struct PoolMetrics {
  obs::Counter tasks;
  obs::Counter busy_us;
  obs::Counter idle_us;
  static const PoolMetrics& get() {
    static const PoolMetrics m{
        obs::Registry::global().counter("core.pool.tasks"),
        obs::Registry::global().counter("core.pool.busy_us"),
        obs::Registry::global().counter("core.pool.idle_us"),
    };
    return m;
  }
};

}  // namespace

index_t resolve_thread_count(index_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<index_t>(hw) : index_t{1};
}

ThreadPool::ThreadPool(index_t thread_count) {
  const index_t n = resolve_thread_count(thread_count);
  workers_.reserve(n);
  for (index_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  // std::jthread joins on destruction; workers drain the queue first.
}

void ThreadPool::submit(std::function<void()> task) {
  MMW_REQUIRE(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    MMW_REQUIRE_MSG(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop(index_t ordinal) {
  obs::set_thread_ordinal(ordinal);
  for (;;) {
    std::function<void()> task;
    const std::uint64_t wait_start = obs::enabled() ? obs::now_us() : 0;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Gate on the flag captured BEFORE the wait: if obs flipped on while we
    // slept, wait_start is 0 and the interval would be garbage.
    const bool timed = wait_start != 0 && obs::enabled();
    const std::uint64_t run_start = timed ? obs::now_us() : 0;
    if (timed) {
      const PoolMetrics& m = PoolMetrics::get();
      m.tasks.add();
      m.idle_us.add(run_start - wait_start);
    }
    try {
      MMW_TRACE_SCOPE("core.pool.task", "pool");
      task();
    } catch (...) {
      // submit() is fire-and-forget; parallel_for captures its own errors.
    }
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    if (timed) PoolMetrics::get().busy_us.add(obs::now_us() - run_start);
  }
}

void ThreadPool::parallel_for(index_t begin, index_t end,
                              const std::function<void(index_t)>& body) {
  MMW_REQUIRE(begin <= end);
  if (begin == end) return;

  // Per-call shared state; heap-allocated so stray notify-side references
  // stay valid even if the caller unwinds first (they cannot here — the
  // caller blocks until pending hits 0 — but shared_ptr keeps the lambda
  // copyable into N queue slots without lifetime reasoning).
  struct Sync {
    std::atomic<index_t> next;
    std::mutex m;
    std::condition_variable done;
    index_t pending;
    index_t error_index;
    std::exception_ptr error;
  };
  auto sync = std::make_shared<Sync>();
  sync->next.store(begin, std::memory_order_relaxed);
  sync->error_index = end;  // sentinel: no failure recorded

  const index_t tasks = std::min<index_t>(thread_count(), end - begin);
  sync->pending = tasks;

  auto drain = [this, sync, end, &body] {
    // Claim indices until the range is exhausted or an error was recorded.
    for (;;) {
      const index_t i = sync->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      try {
        body(i);
      } catch (...) {
        // Keep the LOWEST failing index: claims are monotone, so every
        // index below the first failure is already claimed and runs to
        // completion — the min-reduction is timing-independent (see the
        // header's failure-semantics contract).
        std::lock_guard lock(sync->m);
        if (!sync->error || i < sync->error_index) {
          sync->error = std::current_exception();
          sync->error_index = i;
        }
        sync->next.store(end, std::memory_order_relaxed);  // cancel the rest
      }
      heartbeat_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard lock(sync->m);
    if (--sync->pending == 0) sync->done.notify_all();
  };

  // The calling thread is a worker too: queue tasks-1 helpers, run one
  // drain inline. With a single-thread pool this degenerates to a plain
  // serial loop on the caller (helpers find the range already exhausted).
  for (index_t i = 1; i < tasks; ++i) submit(drain);
  drain();

  std::unique_lock lock(sync->m);
  sync->done.wait(lock, [&] { return sync->pending == 0; });
  if (sync->error) std::rethrow_exception(sync->error);
}

std::vector<IterationFailure> ThreadPool::parallel_for_quarantined(
    index_t begin, index_t end, const std::function<void(index_t)>& body) {
  MMW_REQUIRE(begin <= end);
  if (begin == end) return {};

  struct Sync {
    std::atomic<index_t> next;
    std::mutex m;
    std::condition_variable done;
    index_t pending;
    std::vector<IterationFailure> failures;
  };
  auto sync = std::make_shared<Sync>();
  sync->next.store(begin, std::memory_order_relaxed);

  const index_t tasks = std::min<index_t>(thread_count(), end - begin);
  sync->pending = tasks;

  auto drain = [this, sync, end, &body] {
    // Claim indices until the range is exhausted; failures never cancel.
    for (;;) {
      const index_t i = sync->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) break;
      try {
        body(i);
      } catch (const std::exception& e) {
        std::lock_guard lock(sync->m);
        sync->failures.push_back({i, e.what()});
      } catch (...) {
        std::lock_guard lock(sync->m);
        sync->failures.push_back({i, "unknown exception"});
      }
      heartbeat_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard lock(sync->m);
    if (--sync->pending == 0) sync->done.notify_all();
  };

  for (index_t i = 1; i < tasks; ++i) submit(drain);
  drain();

  std::unique_lock lock(sync->m);
  sync->done.wait(lock, [&] { return sync->pending == 0; });
  // Capture order is timing-dependent; the sorted list is not.
  std::sort(sync->failures.begin(), sync->failures.end(),
            [](const IterationFailure& a, const IterationFailure& b) {
              return a.index < b.index;
            });
  // A quarantined failure is exactly the anomaly the flight recorder
  // exists for: snapshot the last K spans per thread while the evidence is
  // fresh. Gated on obs::enabled() so bare runs (and fault-injection tests
  // that expect silence) don't emit dump files; the recorder itself caps
  // dumps per process either way.
  if (!sync->failures.empty() && obs::enabled())
    obs::FlightRecorder::global().dump("quarantined_iteration");
  return std::move(sync->failures);
}

}  // namespace mmw::core
