// IEEE 802.15.3c-style two-stage codebook beamforming protocol — the
// "existing standard" rotational training the paper positions its scheme
// against ([4], [9], [10]).
//
// Stage 1 (sector-level sweep): both ends form WIDE beams by activating a
// small subarray and steering it at the centre of each sector (a block of
// the fine beam grid); every TX-sector × RX-sector pair is measured.
// Stage 2 (beam-level sweep): within the winning sector pair, every fine
// TX beam × fine RX beam is measured; the best fine pair is selected.
//
// Unlike the strategies in core/strategy.h this protocol measures
// off-codebook (sector) patterns, so it runs against the Link directly and
// reports its own measurement count; graded with the same PairGainOracle.
#pragma once

#include "antenna/codebook.h"
#include "channel/link.h"
#include "randgen/rng.h"

namespace mmw::core {

struct StandardSweepConfig {
  /// Sector grid at each end (sectors_x × sectors_y blocks of the fine
  /// beam grid). Grid dimensions must be divisible by the sector counts.
  index_t tx_sectors_x = 2, tx_sectors_y = 2;
  index_t rx_sectors_x = 2, rx_sectors_y = 2;

  /// Subarray used to form the wide sector beams (elements per axis).
  index_t sector_subarray = 2;

  real gamma = 1.0;               ///< pre-beamforming SNR (linear)
  index_t fades_per_measurement = 8;
};

struct StandardSweepResult {
  index_t tx_beam = 0;            ///< selected fine TX codeword
  index_t rx_beam = 0;            ///< selected fine RX codeword
  index_t sector_measurements = 0;
  index_t beam_measurements = 0;
  real best_energy = 0.0;

  index_t total_measurements() const {
    return sector_measurements + beam_measurements;
  }
};

/// Runs the two-stage sweep over a realized link.
///
/// Preconditions: codebook grids divisible by the sector counts; codebook
/// dimensions match the arrays; gamma > 0.
StandardSweepResult run_standard_sweep(const channel::Link& link,
                                       const antenna::ArrayGeometry& tx_array,
                                       const antenna::ArrayGeometry& rx_array,
                                       const antenna::Codebook& tx_codebook,
                                       const antenna::Codebook& rx_codebook,
                                       const StandardSweepConfig& config,
                                       randgen::Rng& rng);

}  // namespace mmw::core
