#include "core/standard_sweep.h"

#include <cmath>

#include "antenna/steering.h"

namespace mmw::core {

using antenna::ArrayGeometry;
using antenna::Codebook;
using linalg::Vector;

namespace {

/// One matched-filter energy measurement for arbitrary weight vectors,
/// averaged over the configured fades (same chain as mac::Session but not
/// restricted to codebook entries).
real measure_energy(const channel::Link& link, const Vector& u,
                    const Vector& v, const StandardSweepConfig& cfg,
                    randgen::Rng& rng) {
  real energy = 0.0;
  for (index_t k = 0; k < cfg.fades_per_measurement; ++k) {
    const Vector h = link.draw_effective_channel(u, rng);
    const cx z = linalg::dot(v, h) + rng.complex_normal(1.0 / cfg.gamma);
    energy += std::norm(z);
  }
  return energy / static_cast<real>(cfg.fades_per_measurement);
}

/// Wide sector beam: the fine codeword at the sector's central grid cell,
/// restricted to a small subarray (same pointing direction, much wider
/// main lobe).
Vector sector_beam(const Codebook& fine, const ArrayGeometry& array,
                   index_t sector_x, index_t sector_y, index_t sectors_x,
                   index_t sectors_y, index_t subarray) {
  const index_t block_x = fine.grid_x() / sectors_x;
  const index_t block_y = fine.grid_y() / sectors_y;
  const index_t cx_ = sector_x * block_x + block_x / 2;
  const index_t cy_ = sector_y * block_y + block_y / 2;
  const Vector& center = fine.codeword(cx_ * fine.grid_y() + cy_);
  return antenna::subarray_restriction(array, center,
                                       std::min(subarray, array.grid_x()),
                                       std::min(subarray, array.grid_y()));
}

}  // namespace

StandardSweepResult run_standard_sweep(const channel::Link& link,
                                       const ArrayGeometry& tx_array,
                                       const ArrayGeometry& rx_array,
                                       const Codebook& tx_codebook,
                                       const Codebook& rx_codebook,
                                       const StandardSweepConfig& cfg,
                                       randgen::Rng& rng) {
  MMW_REQUIRE(cfg.gamma > 0.0);
  MMW_REQUIRE(cfg.fades_per_measurement >= 1);
  MMW_REQUIRE(cfg.sector_subarray >= 1);
  MMW_REQUIRE(tx_codebook.codeword(0).size() == link.tx_size());
  MMW_REQUIRE(rx_codebook.codeword(0).size() == link.rx_size());
  MMW_REQUIRE_MSG(tx_codebook.grid_x() % cfg.tx_sectors_x == 0 &&
                      tx_codebook.grid_y() % cfg.tx_sectors_y == 0,
                  "TX grid not divisible into sectors");
  MMW_REQUIRE_MSG(rx_codebook.grid_x() % cfg.rx_sectors_x == 0 &&
                      rx_codebook.grid_y() % cfg.rx_sectors_y == 0,
                  "RX grid not divisible into sectors");

  StandardSweepResult result;

  // --- Stage 1: sector-level sweep. ------------------------------------
  index_t best_tx_sector = 0, best_rx_sector = 0;
  real best_sector_energy = -1.0;
  for (index_t ts = 0; ts < cfg.tx_sectors_x * cfg.tx_sectors_y; ++ts) {
    const Vector tx_wide =
        sector_beam(tx_codebook, tx_array, ts / cfg.tx_sectors_y,
                    ts % cfg.tx_sectors_y, cfg.tx_sectors_x,
                    cfg.tx_sectors_y, cfg.sector_subarray);
    for (index_t rs = 0; rs < cfg.rx_sectors_x * cfg.rx_sectors_y; ++rs) {
      const Vector rx_wide =
          sector_beam(rx_codebook, rx_array, rs / cfg.rx_sectors_y,
                      rs % cfg.rx_sectors_y, cfg.rx_sectors_x,
                      cfg.rx_sectors_y, cfg.sector_subarray);
      const real e = measure_energy(link, tx_wide, rx_wide, cfg, rng);
      ++result.sector_measurements;
      if (e > best_sector_energy) {
        best_sector_energy = e;
        best_tx_sector = ts;
        best_rx_sector = rs;
      }
    }
  }

  // --- Stage 2: beam-level sweep inside the winning sectors. -----------
  const index_t tbx = tx_codebook.grid_x() / cfg.tx_sectors_x;
  const index_t tby = tx_codebook.grid_y() / cfg.tx_sectors_y;
  const index_t rbx = rx_codebook.grid_x() / cfg.rx_sectors_x;
  const index_t rby = rx_codebook.grid_y() / cfg.rx_sectors_y;
  const index_t tx0 = (best_tx_sector / cfg.tx_sectors_y) * tbx;
  const index_t ty0 = (best_tx_sector % cfg.tx_sectors_y) * tby;
  const index_t rx0 = (best_rx_sector / cfg.rx_sectors_y) * rbx;
  const index_t ry0 = (best_rx_sector % cfg.rx_sectors_y) * rby;

  real best_energy = -1.0;
  for (index_t tx = tx0; tx < tx0 + tbx; ++tx) {
    for (index_t ty = ty0; ty < ty0 + tby; ++ty) {
      const index_t t = tx * tx_codebook.grid_y() + ty;
      for (index_t rx = rx0; rx < rx0 + rbx; ++rx) {
        for (index_t ry = ry0; ry < ry0 + rby; ++ry) {
          const index_t r = rx * rx_codebook.grid_y() + ry;
          const real e = measure_energy(link, tx_codebook.codeword(t),
                                        rx_codebook.codeword(r), cfg, rng);
          ++result.beam_measurements;
          if (e > best_energy) {
            best_energy = e;
            result.tx_beam = t;
            result.rx_beam = r;
          }
        }
      }
    }
  }
  result.best_energy = best_energy;
  return result;
}

}  // namespace mmw::core
