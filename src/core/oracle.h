// Ground-truth evaluation of beam pairs: the oracle the simulator (not the
// receiver!) uses to grade what a strategy selected.
#pragma once

#include "antenna/codebook.h"
#include "channel/link.h"
#include "linalg/matrix.h"

namespace mmw::core {

/// Precomputed table of the true mean beamforming gains
///   G(t, r) = E|v_rᴴ H u_t|²
/// for every codebook pair. The paper's metric R(u, v) is γ·G and the
/// SNR Loss of a pair is 10·log10(R_opt / R) — invariant to γ, so the
/// oracle works on gains directly.
class PairGainOracle {
 public:
  PairGainOracle(const channel::Link& link,
                 const antenna::Codebook& tx_codebook,
                 const antenna::Codebook& rx_codebook);

  index_t tx_size() const { return gains_.rows(); }
  index_t rx_size() const { return gains_.cols(); }

  /// True mean gain of pair (tx_beam, rx_beam).
  real gain(index_t tx_beam, index_t rx_beam) const;

  /// The optimal pair (u_opt, v_opt) over the full codebook product
  /// (paper eq. 2) and its gain R_opt.
  std::pair<index_t, index_t> optimal_pair() const { return optimal_; }
  real optimal_gain() const { return optimal_gain_; }

  /// SNR loss of a pair relative to the optimum, in dB, ≥ 0
  /// (paper eq. 31 reports 10·log10(R/R_opt) ≤ 0; figures plot the
  /// magnitude, which is what this returns).
  real loss_db(index_t tx_beam, index_t rx_beam) const;

 private:
  linalg::Matrix gains_;  ///< real gains stored in the real part
  std::pair<index_t, index_t> optimal_{0, 0};
  real optimal_gain_ = 0.0;
};

}  // namespace mmw::core
