// Beam-alignment strategies: the paper's proposed learning-based scheme
// (Algorithm 1) and the baselines it is evaluated against.
//
// Ownership: strategies own nothing but their options structs (plain
// values). They borrow the mac::Session passed to run() only for the call's
// duration and keep no reference to it afterwards.
//
// Thread-safety: run() is const and every strategy in this header keeps all
// per-run state on the stack, so ONE strategy instance may drive MANY
// sessions concurrently from different threads — the Monte-Carlo drivers in
// sim/experiments.h rely on exactly this. All randomness comes from the
// session's Rng, never from strategy members. The one exception is
// ProposedAlignment::run_with_state(), whose `covariance` in/out parameter
// is caller-owned mutable state: concurrent calls must pass distinct
// matrices.
//
// Units: measured energies are linear matched-filter powers |z|²; SNR-loss
// grading is in dB (core::PairGainOracle::loss_db); the session's gamma is
// linear Es/N0.
#pragma once

#include <memory>
#include <string_view>

#include "estimation/covariance_ml.h"
#include "estimation/robust.h"
#include "mac/session.h"

namespace mmw::core {

/// A beam-alignment strategy drives a mac::Session, choosing which beam
/// pairs to measure until the measurement budget is exhausted (or it has
/// nothing left to measure). The selected pair is then read off the session
/// as the highest-energy measurement (paper eq. 30).
class AlignmentStrategy {
 public:
  virtual ~AlignmentStrategy() = default;
  virtual std::string_view name() const = 0;
  virtual void run(mac::Session& session) const = 0;
};

/// "Random" baseline: every measurement picks a uniformly random beam pair
/// among those not yet measured.
class RandomSearch final : public AlignmentStrategy {
 public:
  std::string_view name() const override { return "Random"; }
  void run(mac::Session& session) const override;
};

/// "Scan" baseline: starts from a random beam pair and walks the full pair
/// grid in spatially-adjacent (boustrophedon) order, wrapping cyclically.
class ScanSearch final : public AlignmentStrategy {
 public:
  std::string_view name() const override { return "Scan"; }
  void run(mac::Session& session) const override;
};

/// Exhaustive scan of all T pairs in raster order. All three schemes reduce
/// to this at a 100% search rate; with a smaller budget it measures a
/// deterministic prefix (mainly useful as a reference and in tests).
class ExhaustiveSearch final : public AlignmentStrategy {
 public:
  std::string_view name() const override { return "Exhaustive"; }
  void run(mac::Session& session) const override;
};

/// Which covariance estimator the proposed scheme runs per slot. The enum
/// lives with the degradation ladder (estimation/robust.h) since the
/// ladder's primary rung is exactly this switch; the alias keeps the
/// established core::EstimatorKind spelling working.
using EstimatorKind = estimation::EstimatorKind;

/// Configuration of the proposed scheme.
struct ProposedOptions {
  /// Estimator ablation switch (A4 in DESIGN.md).
  EstimatorKind estimator_kind = EstimatorKind::kRegularizedMl;

  /// J — measurements the RX takes per TX-slot (paper Fig. 4). Must be
  /// ≥ 2: J−1 selected probes plus the eigen-directed J-th one. The scheme
  /// is an anytime algorithm: slots continue (cycling over TX beams, only
  /// unmeasured pairs) until the budget runs out, so a 100% search rate
  /// degenerates to the exhaustive scan exactly as the paper states.
  index_t measurements_per_slot = 6;

  /// Covariance-estimator settings (μ, iteration budget). The estimator's γ
  /// is overwritten from the session.
  estimation::CovarianceMlOptions estimator;

  /// When true (default), the covariance carried to the next TX-slot is
  /// re-estimated from all J measurements of the slot rather than the first
  /// J−1 — strictly more information at one extra solver call.
  bool reestimate_with_final = true;

  /// Exploration safeguard: when the previous slot's estimate carries no
  /// signal — tr(Q̂) below this factor times the aggregate noise floor
  /// N/γ — the next slot's probes revert to random instead of the top
  /// Rayleigh-quotient beams. Exploiting a pure-noise estimate would lock
  /// the scheme onto the same uninformative beams forever; the paper's
  /// derivation implicitly assumes the estimate has seen signal. Set to 0
  /// to disable (strictly-literal Algorithm 1).
  real exploration_floor = 1.0;
};

/// The paper's proposed beam-alignment scheme (Algorithm 1).
///
/// Per TX-slot i (TX beam chosen uniformly at random without repetition):
///  1. RX picks its first J−1 beams: random in the first slot, afterwards
///     the codewords with the J−1 largest Rayleigh quotients vᴴ Q̂ v under
///     the previous slot's covariance estimate (Sec. IV-B2).
///  2. RX measures them, then solves the nuclear-norm-regularized ML
///     problem (eq. 23) for Q̂ on this slot's measurements.
///  3. The J-th measurement points at the best unmeasured codeword under
///     Q̂ (eq. 26 quantized to the codebook, Sec. IV-B1).
///  4. Q̂ is carried to the next slot.
class ProposedAlignment final : public AlignmentStrategy {
 public:
  explicit ProposedAlignment(ProposedOptions options = {});
  std::string_view name() const override { return "Proposed"; }
  void run(mac::Session& session) const override;

  /// Stateful variant for beam tracking across re-alignment epochs: the
  /// incoming `covariance` (empty matrix = no prior) seeds half of the
  /// first slot's probe selection (an external prior is stale by
  /// construction, so its influence is bounded), and the average of this
  /// run's per-slot estimates — an approximation of the full RX covariance
  /// E[HHᴴ] — is written back. Measured effect at ~1°/frame drift: roughly
  /// cost-neutral versus cold re-alignment (see examples/mobility_tracking);
  /// exposed so downstream trackers can build on it.
  void run_with_state(mac::Session& session,
                      linalg::Matrix& covariance) const;

 private:
  ProposedOptions options_;
};

/// Two-stage hierarchical search (extension; cf. Hur et al. [11]): measures
/// a strided coarse subgrid of the pair space, then refines exhaustively in
/// the full-resolution neighbourhood of the best coarse pair, then spends
/// any leftover budget randomly.
struct HierarchicalOptions {
  index_t stride = 2;        ///< coarse subsampling stride on both grids
  index_t refine_radius = 1; ///< Chebyshev radius of the refinement window
};

class HierarchicalSearch final : public AlignmentStrategy {
 public:
  explicit HierarchicalSearch(HierarchicalOptions options = {});
  std::string_view name() const override { return "Hierarchical"; }
  void run(mac::Session& session) const override;

 private:
  HierarchicalOptions options_;
};

/// Bidirectional ("ping-pong") extension of the proposed scheme, building
/// on the paper's remark that the reverse link can train too (Sec. III-A,
/// IV-B1 feedback discussion). Slots alternate roles:
///  - RX-phase: the TX dwells on the best beam under the TX-side estimate
///    (random at first) while the RX probes/learns its covariance exactly
///    as in Algorithm 1;
///  - TX-phase: the RX dwells on its best beam while the TX beam varies —
///    for fixed v the measurement mean is uᴴ Q_tx|v u + 1/γ with
///    Q_tx|v = NM·Σ p_l|vᴴa_rx,l|² a_tx,l a_tx,lᴴ, so the SAME estimator
///    learns the TX-side covariance from the same energy ledger.
/// This removes Algorithm 1's main weakness — TX beams chosen blindly at
/// random — at no extra measurement cost (see bench/ext_bidirectional).
struct PingPongOptions {
  index_t measurements_per_slot = 6;      ///< J per slot (≥ 2)
  estimation::CovarianceMlOptions estimator;
  real exploration_floor = 1.0;           ///< as in ProposedOptions
};

class PingPongAlignment final : public AlignmentStrategy {
 public:
  explicit PingPongAlignment(PingPongOptions options = {});
  std::string_view name() const override { return "PingPong"; }
  void run(mac::Session& session) const override;

 private:
  PingPongOptions options_;
};

/// Local (hill-climbing) search on the joint beam-pair grid with random
/// restarts — the "numerical optimization over a small region" family of
/// beam training (cf. B. Li et al. [13]). From a random pair, repeatedly
/// measures all unmeasured neighbours (one grid step in either codebook)
/// and moves to the best; restarts from a random unmeasured pair when no
/// neighbour improves. Strong when the gain surface is unimodal over the
/// grid, brittle on multipath channels with several distant optima.
class LocalSearch final : public AlignmentStrategy {
 public:
  std::string_view name() const override { return "LocalSearch"; }
  void run(mac::Session& session) const override;
};

}  // namespace mmw::core
