#include "core/strategy.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmw::core {

namespace {

/// Per-slot alignment telemetry for the proposed scheme (DESIGN.md §8).
struct SlotMetrics {
  obs::Counter slots;
  obs::Histogram measurements;
  obs::Histogram estimated_rank;
  static const SlotMetrics& get() {
    static const SlotMetrics m{
        obs::Registry::global().counter("core.strategy.slots"),
        obs::Registry::global().histogram(
            "core.strategy.slot_measurements",
            obs::HistogramBuckets::linear(1.0, 1.0, 16)),
        obs::Registry::global().histogram(
            "core.strategy.estimated_rank",
            obs::HistogramBuckets::linear(0.0, 1.0, 17)),
    };
    return m;
  }
};

}  // namespace

using antenna::Codebook;
using estimation::BeamMeasurement;
using linalg::FactoredHermitian;
using linalg::Matrix;
using mac::Session;

void RandomSearch::run(Session& session) const {
  const index_t total =
      session.tx_codebook().size() * session.rx_codebook().size();
  const index_t nr = session.rx_codebook().size();
  // A random permutation of all pairs, consumed front-to-back, is exactly
  // "uniformly random among unmeasured pairs" with no rejection loop.
  const auto order = session.rng().permutation(total);
  for (const index_t flat : order) {
    if (session.exhausted()) return;
    session.measure(flat / nr, flat % nr);
  }
}

void ScanSearch::run(Session& session) const {
  const auto tx_order = session.tx_codebook().serpentine_order();
  const auto rx_order = session.rx_codebook().serpentine_order();
  const index_t nt = tx_order.size();
  const index_t nr = rx_order.size();

  // Joint boustrophedon: the RX sweep direction alternates per TX step, so
  // consecutive pairs always differ by one grid step in exactly one beam.
  std::vector<std::pair<index_t, index_t>> path;
  path.reserve(nt * nr);
  for (index_t ti = 0; ti < nt; ++ti) {
    if (ti % 2 == 0) {
      for (index_t ri = 0; ri < nr; ++ri)
        path.emplace_back(tx_order[ti], rx_order[ri]);
    } else {
      for (index_t ri = nr; ri-- > 0;)
        path.emplace_back(tx_order[ti], rx_order[ri]);
    }
  }

  // Random starting pair, then cyclic traversal (paper: "a starting beam
  // pair is selected, and then ... spatially adjacent to the previous").
  const index_t start = static_cast<index_t>(
      session.rng().uniform_int(0, path.size() - 1));
  for (index_t k = 0; k < path.size(); ++k) {
    if (session.exhausted()) return;
    const auto& [t, r] = path[(start + k) % path.size()];
    session.measure(t, r);
  }
}

void ExhaustiveSearch::run(Session& session) const {
  const index_t nr = session.rx_codebook().size();
  const index_t total = session.tx_codebook().size() * nr;
  for (index_t flat = 0; flat < total; ++flat) {
    if (session.exhausted()) return;
    session.measure(flat / nr, flat % nr);
  }
}

ProposedAlignment::ProposedAlignment(ProposedOptions options)
    : options_(std::move(options)) {
  MMW_REQUIRE_MSG(options_.measurements_per_slot >= 2,
                  "proposed scheme needs J >= 2 measurements per TX-slot");
}

void ProposedAlignment::run(Session& session) const {
  linalg::Matrix state;  // no prior
  run_with_state(session, state);
}

void ProposedAlignment::run_with_state(Session& session,
                                       linalg::Matrix& covariance) const {
  const Codebook& rx_cb = session.rx_codebook();
  const index_t n = rx_cb.codeword(0).size();
  MMW_REQUIRE_MSG(covariance.empty() ||
                      (covariance.rows() == n && covariance.cols() == n),
                  "prior covariance has the wrong shape");

  estimation::CovarianceMlOptions est = options_.estimator;
  est.gamma = session.gamma();

  // Estimates stay in factored form end-to-end: the solvers return B Q_r Bᴴ
  // and every downstream consumer (codebook scoring, probe ranking) goes
  // through the factor, so the N×N lift happens only for the exported
  // tracking state. All solves route through the degradation ladder
  // (estimation/robust.h): with no fault context armed this is
  // bit-identical to calling the configured estimator directly.
  const auto estimate =
      [&](std::span<const BeamMeasurement> ms) -> FactoredHermitian {
    return estimation::robust_estimate_covariance(
               n, ms, est, options_.estimator_kind)
        .q;
  };

  const index_t j_total =
      std::min<index_t>(options_.measurements_per_slot, rx_cb.size());

  // Random TX direction per slot, never repeated within a round
  // (Sec. IV-B2). When the budget outlasts one pass over U, further rounds
  // revisit TX beams with their still-unmeasured RX beams, so the scheme is
  // an anytime algorithm that degenerates to the exhaustive scan at a 100%
  // search rate, as the paper states.
  const auto tx_order =
      session.rng().permutation(session.tx_codebook().size());

  // Per-beam score below which the previous estimate carries no usable
  // information about a beam; such probe slots are filled randomly instead
  // of by (arbitrary) rank order among zero scores.
  const real beam_floor = options_.exploration_floor / session.gamma();

  std::optional<FactoredHermitian> q_prev;
  if (!covariance.empty())
    q_prev = FactoredHermitian::from_dense(covariance);
  // An externally supplied prior is stale by construction (it survived a
  // channel drift and was conditioned on a different TX beam), so it only
  // drives half of the first slot's probes; in-frame estimates, which are
  // fresh, drive all of them.
  bool prior_is_external = q_prev.has_value();
  // Exported tracking state: the running average of the per-slot estimates.
  // Each slot's Q̂ is conditioned on that slot's TX beam; the average over
  // slots approximates the full RX covariance E[HHᴴ], which is what remains
  // valid for the NEXT alignment epoch under a different TX beam order.
  Matrix state_accum;
  index_t state_slots = 0;
  index_t slot = 0;
  index_t idle_slots = 0;  // consecutive TX beams with nothing left
  // One score buffer for every slot of the run: covariance_scores_into
  // writes over it in place, so the per-slot feedback loop allocates
  // nothing for scoring.
  std::vector<real> scores(rx_cb.size());
  while (!session.exhausted() && idle_slots < tx_order.size()) {
    const index_t u_idx = tx_order[slot % tx_order.size()];
    ++slot;

    obs::TraceScope slot_span("core.strategy.slot", "alignment");
    slot_span.arg("slot", static_cast<double>(slot));
    slot_span.arg("tx_beam", static_cast<double>(u_idx));

    std::vector<index_t> unmeasured;
    unmeasured.reserve(rx_cb.size());
    for (index_t v = 0; v < rx_cb.size(); ++v)
      if (!session.has_measured(u_idx, v)) unmeasured.push_back(v);
    if (unmeasured.empty()) {
      ++idle_slots;
      continue;
    }
    idle_slots = 0;

    // --- Step 1: choose the first J−1 RX beams: the J−1 largest Rayleigh
    // quotients under the previous slot's estimate (Sec. IV-B2); beams the
    // estimate knows nothing about are drawn randomly. -------------------
    const index_t j_explore =
        std::min<index_t>(j_total - 1, unmeasured.size());
    std::vector<index_t> probes;
    probes.reserve(j_explore);
    std::vector<bool> picked(rx_cb.size(), false);
    if (q_prev.has_value()) {
      const index_t score_budget =
          prior_is_external ? (j_explore + 1) / 2 : j_explore;
      rx_cb.covariance_scores_into(*q_prev, scores);
      std::vector<index_t> order = unmeasured;
      // Ties break by lowest codeword index (std::sort is unstable); see
      // top_k_for_covariance — same determinism requirement.
      std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
        return scores[a] != scores[b] ? scores[a] > scores[b] : a < b;
      });
      for (const index_t v : order) {
        if (probes.size() == score_budget || scores[v] <= beam_floor) break;
        probes.push_back(v);
        picked[v] = true;
      }
    }
    if (probes.size() < j_explore) {
      std::vector<index_t> rest;
      for (const index_t v : unmeasured)
        if (!picked[v]) rest.push_back(v);
      const auto shuffle = session.rng().permutation(rest.size());
      for (const index_t k : shuffle) {
        if (probes.size() == j_explore) break;
        probes.push_back(rest[k]);
      }
    }

    // --- Step 2: measure them and estimate Q̂ for this slot. -------------
    std::vector<BeamMeasurement> slot_measurements;
    slot_measurements.reserve(j_total);
    for (const index_t v_idx : probes) {
      if (session.exhausted()) return;
      const real energy = session.measure(u_idx, v_idx);
      slot_measurements.push_back({rx_cb.codeword(v_idx), energy});
    }
    FactoredHermitian q_hat = estimate(slot_measurements);

    // --- Step 3: J-th measurement along the best unmeasured codeword under
    // Q̂ (eq. 26 restricted to the codebook). -----------------------------
    if (session.exhausted()) return;
    for (const index_t v_idx :
         rx_cb.top_k_for_covariance(q_hat, rx_cb.size())) {
      if (session.has_measured(u_idx, v_idx)) continue;
      const real energy = session.measure(u_idx, v_idx);
      slot_measurements.push_back({rx_cb.codeword(v_idx), energy});
      break;
    }

    // --- Step 4: carry the slot's covariance estimate forward. ----------
    if (options_.reestimate_with_final &&
        slot_measurements.size() > probes.size()) {
      q_hat = estimate(slot_measurements);
    }
    slot_span.arg("beams", static_cast<double>(slot_measurements.size()));
    slot_span.arg("rank", static_cast<double>(q_hat.rank()));
    if (obs::enabled()) {
      const SlotMetrics& m = SlotMetrics::get();
      m.slots.add();
      m.measurements.record(static_cast<real>(slot_measurements.size()));
      m.estimated_rank.record(static_cast<real>(q_hat.rank()));
    }

    if (state_accum.empty())
      state_accum = q_hat.dense();
    else
      state_accum += q_hat.dense();
    ++state_slots;
    covariance = state_accum / cx{static_cast<real>(state_slots), 0.0};
    q_prev = std::move(q_hat);
    prior_is_external = false;
  }
}

PingPongAlignment::PingPongAlignment(PingPongOptions options)
    : options_(std::move(options)) {
  MMW_REQUIRE_MSG(options_.measurements_per_slot >= 2,
                  "ping-pong needs J >= 2 measurements per slot");
}

void PingPongAlignment::run(Session& session) const {
  const Codebook& tx_cb = session.tx_codebook();
  const Codebook& rx_cb = session.rx_codebook();
  const index_t j_total = std::min<index_t>(
      options_.measurements_per_slot,
      std::min(tx_cb.size(), rx_cb.size()));

  estimation::CovarianceMlOptions est = options_.estimator;
  est.gamma = session.gamma();
  const real beam_floor = options_.exploration_floor / session.gamma();

  // Both running estimates live in factored form; scoring goes through the
  // beam-span factor.
  std::optional<FactoredHermitian> q_rx;  // dim N, learned in RX-phase slots
  std::optional<FactoredHermitian> q_tx;  // dim M, learned in TX-phase slots

  // One score buffer shared by both phases (resized per codebook; capacity
  // sticks at the larger side after the first TX/RX round trip).
  std::vector<real> scores;

  // Picks the best-scoring index under an optional covariance among those
  // for which `usable` holds, falling back to a random usable index.
  const auto pick = [&](const Codebook& cb,
                        const std::optional<FactoredHermitian>& q,
                        auto&& usable) -> std::optional<index_t> {
    if (q.has_value()) {
      scores.resize(cb.size());
      cb.covariance_scores_into(*q, scores);
      index_t best = cb.size();
      real best_score = beam_floor;
      for (index_t i = 0; i < cb.size(); ++i)
        if (usable(i) && scores[i] > best_score) {
          best_score = scores[i];
          best = i;
        }
      if (best < cb.size()) return best;
    }
    for (const index_t i : session.rng().permutation(cb.size()))
      if (usable(i)) return i;
    return std::nullopt;
  };

  // Ranked probe list for one slot: top scores above the floor, then
  // random fill, all restricted to `usable`.
  const auto choose_probes = [&](const Codebook& cb,
                                 const std::optional<FactoredHermitian>& q,
                                 auto&& usable, index_t count) {
    std::vector<index_t> probes;
    std::vector<bool> picked(cb.size(), false);
    if (q.has_value()) {
      scores.resize(cb.size());
      cb.covariance_scores_into(*q, scores);
      std::vector<index_t> order;
      for (index_t i = 0; i < cb.size(); ++i)
        if (usable(i)) order.push_back(i);
      // Ties break by lowest codeword index, as in ProposedAlignment.
      std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
        return scores[a] != scores[b] ? scores[a] > scores[b] : a < b;
      });
      for (const index_t i : order) {
        if (probes.size() == count || scores[i] <= beam_floor) break;
        probes.push_back(i);
        picked[i] = true;
      }
    }
    for (const index_t i : session.rng().permutation(cb.size())) {
      if (probes.size() == count) break;
      if (usable(i) && !picked[i]) probes.push_back(i);
    }
    return probes;
  };

  bool rx_phase = true;
  index_t stalled = 0;
  while (!session.exhausted() && stalled < 2) {
    if (rx_phase) {
      // TX dwells on its best-believed beam; RX probes and learns.
      const auto u_idx = pick(tx_cb, q_tx, [&](index_t u) {
        for (index_t v = 0; v < rx_cb.size(); ++v)
          if (!session.has_measured(u, v)) return true;
        return false;
      });
      if (!u_idx) {
        ++stalled;
        rx_phase = false;
        continue;
      }
      stalled = 0;
      const auto usable_v = [&](index_t v) {
        return !session.has_measured(*u_idx, v);
      };
      std::vector<estimation::BeamMeasurement> ms;
      for (const index_t v : choose_probes(rx_cb, q_rx, usable_v,
                                           j_total - 1)) {
        if (session.exhausted()) return;
        ms.push_back({rx_cb.codeword(v), session.measure(*u_idx, v)});
      }
      if (!ms.empty()) {
        FactoredHermitian q =
            estimation::robust_estimate_covariance(
                rx_cb.codeword(0).size(), ms, est,
                estimation::EstimatorKind::kRegularizedMl)
                .q;
        if (!session.exhausted()) {
          for (const index_t v :
               rx_cb.top_k_for_covariance(q, rx_cb.size())) {
            if (!usable_v(v)) continue;
            ms.push_back({rx_cb.codeword(v), session.measure(*u_idx, v)});
            q = estimation::robust_estimate_covariance(
                    rx_cb.codeword(0).size(), ms, est,
                    estimation::EstimatorKind::kRegularizedMl)
                    .q;
            break;
          }
        }
        q_rx = std::move(q);
      }
    } else {
      // RX dwells on its best-believed beam; TX probes and learns.
      const auto v_idx = pick(rx_cb, q_rx, [&](index_t v) {
        for (index_t u = 0; u < tx_cb.size(); ++u)
          if (!session.has_measured(u, v)) return true;
        return false;
      });
      if (!v_idx) {
        ++stalled;
        rx_phase = true;
        continue;
      }
      stalled = 0;
      const auto usable_u = [&](index_t u) {
        return !session.has_measured(u, *v_idx);
      };
      std::vector<estimation::BeamMeasurement> ms;
      for (const index_t u : choose_probes(tx_cb, q_tx, usable_u,
                                           j_total - 1)) {
        if (session.exhausted()) return;
        ms.push_back({tx_cb.codeword(u), session.measure(u, *v_idx)});
      }
      if (!ms.empty()) {
        FactoredHermitian q =
            estimation::robust_estimate_covariance(
                tx_cb.codeword(0).size(), ms, est,
                estimation::EstimatorKind::kRegularizedMl)
                .q;
        if (!session.exhausted()) {
          for (const index_t u :
               tx_cb.top_k_for_covariance(q, tx_cb.size())) {
            if (!usable_u(u)) continue;
            ms.push_back({tx_cb.codeword(u), session.measure(u, *v_idx)});
            q = estimation::robust_estimate_covariance(
                    tx_cb.codeword(0).size(), ms, est,
                    estimation::EstimatorKind::kRegularizedMl)
                    .q;
            break;
          }
        }
        q_tx = std::move(q);
      }
    }
    rx_phase = !rx_phase;
  }
}

void LocalSearch::run(Session& session) const {
  const Codebook& tx_cb = session.tx_codebook();
  const Codebook& rx_cb = session.rx_codebook();
  const index_t nr = rx_cb.size();

  // Random unmeasured pair for (re)starts, consumed lazily.
  const auto restart_order = session.rng().permutation(tx_cb.size() * nr);
  index_t restart_cursor = 0;
  auto next_restart = [&]() -> std::optional<std::pair<index_t, index_t>> {
    while (restart_cursor < restart_order.size()) {
      const index_t flat = restart_order[restart_cursor++];
      const index_t t = flat / nr, r = flat % nr;
      if (!session.has_measured(t, r)) return std::make_pair(t, r);
    }
    return std::nullopt;
  };

  while (!session.exhausted()) {
    const auto start = next_restart();
    if (!start) return;  // every pair measured
    index_t cur_t = start->first, cur_r = start->second;
    real cur_energy = session.measure(cur_t, cur_r);

    // Hill climb until no unmeasured neighbour improves.
    bool improved = true;
    while (improved && !session.exhausted()) {
      improved = false;
      index_t best_t = cur_t, best_r = cur_r;
      real best_energy = cur_energy;
      // Neighbours: one grid step in the TX beam OR the RX beam.
      for (const index_t t : tx_cb.neighbors(cur_t)) {
        if (session.exhausted()) break;
        if (session.has_measured(t, cur_r)) continue;
        const real e = session.measure(t, cur_r);
        if (e > best_energy) {
          best_energy = e;
          best_t = t;
          best_r = cur_r;
        }
      }
      for (const index_t r : rx_cb.neighbors(cur_r)) {
        if (session.exhausted()) break;
        if (session.has_measured(cur_t, r)) continue;
        const real e = session.measure(cur_t, r);
        if (e > best_energy) {
          best_energy = e;
          best_t = cur_t;
          best_r = r;
        }
      }
      if (best_energy > cur_energy) {
        cur_t = best_t;
        cur_r = best_r;
        cur_energy = best_energy;
        improved = true;
      }
    }
  }
}

HierarchicalSearch::HierarchicalSearch(HierarchicalOptions options)
    : options_(options) {
  MMW_REQUIRE_MSG(options_.stride >= 1, "stride must be at least 1");
}

void HierarchicalSearch::run(Session& session) const {
  const Codebook& tx_cb = session.tx_codebook();
  const Codebook& rx_cb = session.rx_codebook();
  const index_t s = options_.stride;

  auto subgrid = [s](const Codebook& cb) {
    std::vector<index_t> out;
    for (index_t x = 0; x < cb.grid_x(); x += s)
      for (index_t y = 0; y < cb.grid_y(); y += s)
        out.push_back(x * cb.grid_y() + y);
    return out;
  };

  // Stage 1: coarse sweep.
  index_t best_t = 0, best_r = 0;
  real best_energy = -1.0;
  for (const index_t t : subgrid(tx_cb)) {
    for (const index_t r : subgrid(rx_cb)) {
      if (session.exhausted()) return;
      const real e = session.measure(t, r);
      if (e > best_energy) {
        best_energy = e;
        best_t = t;
        best_r = r;
      }
    }
  }

  // Stage 2: exhaustive refinement inside the Chebyshev window around the
  // coarse winner (window radius = stride·refine_radius so the window
  // covers the coarse cell).
  const index_t radius = s * options_.refine_radius;
  auto window = [radius](const Codebook& cb, index_t center) {
    const auto [cx_, cy_] = cb.coordinates(center);
    std::vector<index_t> out;
    const index_t x_lo = cx_ >= radius ? cx_ - radius : 0;
    const index_t y_lo = cy_ >= radius ? cy_ - radius : 0;
    const index_t x_hi = std::min(cb.grid_x() - 1, cx_ + radius);
    const index_t y_hi = std::min(cb.grid_y() - 1, cy_ + radius);
    for (index_t x = x_lo; x <= x_hi; ++x)
      for (index_t y = y_lo; y <= y_hi; ++y)
        out.push_back(x * cb.grid_y() + y);
    return out;
  };
  for (const index_t t : window(tx_cb, best_t)) {
    for (const index_t r : window(rx_cb, best_r)) {
      if (session.exhausted()) return;
      if (!session.has_measured(t, r)) session.measure(t, r);
    }
  }

  // Stage 3: leftover budget explores randomly.
  const index_t nr = rx_cb.size();
  for (const index_t flat :
       session.rng().permutation(tx_cb.size() * nr)) {
    if (session.exhausted()) return;
    if (!session.has_measured(flat / nr, flat % nr))
      session.measure(flat / nr, flat % nr);
  }
}

}  // namespace mmw::core
