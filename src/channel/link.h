// A realized mmWave MIMO link: a fixed set of propagation paths between a TX
// and an RX array, with independent small-scale (Rayleigh) fading per
// measurement slot — the paper's channel model (Sec. III-B).
#pragma once

#include <span>
#include <vector>

#include "antenna/geometry.h"
#include "linalg/matrix.h"
#include "randgen/rng.h"

namespace mmw::channel {

/// One propagation subpath of a realized link.
struct Path {
  real power = 1.0;               ///< E|g|², the subpath's mean power
  antenna::Direction aod;         ///< angle of departure (TX side)
  antenna::Direction aoa;         ///< angle of arrival (RX side)
};

/// A realized link: path geometry is FIXED (large-scale state), while the
/// per-path complex gains fade independently from measurement to measurement
/// (the paper assumes H_j iid CN(0, Q) across measurements j).
///
/// The instantaneous channel is
///   H = √(N·M) · Σ_l g_l · a_rx(θ_l) a_tx(φ_l)ᴴ,  g_l ~ CN(0, power_l),
/// with unit-norm steering vectors, so a perfectly aligned beam pair on a
/// single unit-power path attains |vᴴHu|² ≈ N·M (full array gain).
///
/// Conditioned on the geometry, the second-order statistics are exact:
///  - full RX covariance       Q   = E[H Hᴴ]    = NM Σ_l p_l a_rx a_rxᴴ
///  - per-TX-beam covariance   Q_u = E[Hu uᴴHᴴ] = NM Σ_l p_l |a_txᴴu|² a_rx a_rxᴴ
/// Q_u is what the receiver can learn within a TX-slot (the paper's Q); its
/// dominant eigenspace is shared across TX beams, which is what lets slot-i
/// estimates guide slot-(i+1) measurements.
class Link {
 public:
  Link(const antenna::ArrayGeometry& tx, const antenna::ArrayGeometry& rx,
       std::vector<Path> paths);

  index_t tx_size() const { return m_; }
  index_t rx_size() const { return n_; }
  const std::vector<Path>& paths() const { return paths_; }

  /// Total mean path power Σ_l p_l.
  real total_power() const;

  /// Copy of this link with path l's mean power multiplied by scale[l]
  /// (large-scale transition on a FIXED geometry: steering vectors and
  /// array sizes are reused, only the per-path powers change). Used by
  /// channel::blocked_link to realize a sudden blockage event.
  /// Preconditions: scale.size() == paths().size(), entries ≥ 0.
  Link with_scaled_path_powers(std::span<const real> scale) const;

  /// Full RX-side spatial covariance Q = E[H Hᴴ] (N×N, Hermitian PSD).
  linalg::Matrix rx_covariance() const;

  /// Effective RX covariance for a fixed TX beam u: Q_u = E[(Hu)(Hu)ᴴ].
  /// Precondition: ‖u‖ sized to the TX array.
  linalg::Matrix rx_covariance_for_beam(const linalg::Vector& u) const;

  /// Mean beamforming gain of the pair (u, v):
  ///   E|vᴴ H u|² = NM Σ_l p_l |vᴴ a_rx,l|² |a_tx,lᴴ u|².
  /// The paper's metric R(u,v) is γ times this.
  real mean_pair_gain(const linalg::Vector& u, const linalg::Vector& v) const;

  /// Draws an instantaneous channel matrix H (N×M), independent across calls.
  linalg::Matrix draw_channel(randgen::Rng& rng) const;

  /// Draws the effective channel h = H·u directly (avoids forming H).
  linalg::Vector draw_effective_channel(const linalg::Vector& u,
                                        randgen::Rng& rng) const;

  /// Allocation-free variant: overwrites `h` with a fresh draw of H·u.
  /// Identical RNG consumption and arithmetic to draw_effective_channel —
  /// per-slot fade loops (mac::Session::probe_energy) reuse one vector
  /// across all fades of a run. `h` must not alias `u`.
  /// Precondition: h.size() == rx_size().
  void draw_effective_channel_into(const linalg::Vector& u, randgen::Rng& rng,
                                   linalg::Vector& h) const;

  /// RX steering vector of path l (unit norm).
  const linalg::Vector& rx_steering(index_t l) const { return rx_steering_[l]; }
  /// TX steering vector of path l (unit norm).
  const linalg::Vector& tx_steering(index_t l) const { return tx_steering_[l]; }

 private:
  index_t m_ = 0;  ///< TX elements
  index_t n_ = 0;  ///< RX elements
  std::vector<Path> paths_;
  std::vector<linalg::Vector> tx_steering_;
  std::vector<linalg::Vector> rx_steering_;
  real amplitude_scale_ = 1.0;  ///< √(N·M)
};

/// Draws x ~ CN(0, Q) for a Hermitian PSD covariance Q (via its PSD square
/// root). Utility for tests and for synthetic covariance experiments.
linalg::Vector sample_complex_gaussian(const linalg::Matrix& q,
                                       randgen::Rng& rng);

}  // namespace mmw::channel
