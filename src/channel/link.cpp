#include "channel/link.h"

#include <algorithm>
#include <cmath>

#include "antenna/steering.h"
#include "linalg/functions.h"

namespace mmw::channel {

using linalg::Matrix;
using linalg::Vector;

Link::Link(const antenna::ArrayGeometry& tx, const antenna::ArrayGeometry& rx,
           std::vector<Path> paths)
    : m_(tx.size()), n_(rx.size()), paths_(std::move(paths)) {
  MMW_REQUIRE_MSG(!paths_.empty(), "a link needs at least one path");
  tx_steering_.reserve(paths_.size());
  rx_steering_.reserve(paths_.size());
  for (const Path& p : paths_) {
    MMW_REQUIRE_MSG(p.power >= 0.0, "path power must be non-negative");
    tx_steering_.push_back(antenna::steering_vector(tx, p.aod));
    rx_steering_.push_back(antenna::steering_vector(rx, p.aoa));
  }
  amplitude_scale_ = std::sqrt(static_cast<real>(n_ * m_));
}

real Link::total_power() const {
  real acc = 0.0;
  for (const Path& p : paths_) acc += p.power;
  return acc;
}

Link Link::with_scaled_path_powers(std::span<const real> scale) const {
  MMW_REQUIRE_MSG(scale.size() == paths_.size(),
                  "need one power scale per path");
  Link scaled = *this;
  for (index_t l = 0; l < paths_.size(); ++l) {
    MMW_REQUIRE_MSG(scale[l] >= 0.0, "power scale must be non-negative");
    scaled.paths_[l].power *= scale[l];
  }
  return scaled;
}

Matrix Link::rx_covariance() const {
  Matrix q(n_, n_);
  const real nm = static_cast<real>(n_ * m_);
  for (index_t l = 0; l < paths_.size(); ++l)
    q += cx{nm * paths_[l].power, 0.0} *
         Matrix::outer(rx_steering_[l], rx_steering_[l]);
  return q;
}

Matrix Link::rx_covariance_for_beam(const Vector& u) const {
  MMW_REQUIRE(u.size() == m_);
  Matrix q(n_, n_);
  const real nm = static_cast<real>(n_ * m_);
  for (index_t l = 0; l < paths_.size(); ++l) {
    const real coupling = std::norm(linalg::dot(tx_steering_[l], u));
    q += cx{nm * paths_[l].power * coupling, 0.0} *
         Matrix::outer(rx_steering_[l], rx_steering_[l]);
  }
  return q;
}

real Link::mean_pair_gain(const Vector& u, const Vector& v) const {
  MMW_REQUIRE(u.size() == m_ && v.size() == n_);
  const real nm = static_cast<real>(n_ * m_);
  real acc = 0.0;
  for (index_t l = 0; l < paths_.size(); ++l) {
    acc += paths_[l].power * std::norm(linalg::dot(rx_steering_[l], v)) *
           std::norm(linalg::dot(tx_steering_[l], u));
  }
  return nm * acc;
}

Matrix Link::draw_channel(randgen::Rng& rng) const {
  Matrix h(n_, m_);
  for (index_t l = 0; l < paths_.size(); ++l) {
    const cx g = rng.complex_normal(paths_[l].power) *
                 cx{amplitude_scale_, 0.0};
    // h += g · a_rx a_txᴴ
    const Vector& ar = rx_steering_[l];
    const Vector& at = tx_steering_[l];
    for (index_t i = 0; i < n_; ++i) {
      const cx gi = g * ar[i];
      for (index_t j = 0; j < m_; ++j) h(i, j) += gi * std::conj(at[j]);
    }
  }
  return h;
}

Vector Link::draw_effective_channel(const Vector& u, randgen::Rng& rng) const {
  Vector h(n_);
  draw_effective_channel_into(u, rng, h);
  return h;
}

void Link::draw_effective_channel_into(const Vector& u, randgen::Rng& rng,
                                       Vector& h) const {
  MMW_REQUIRE(u.size() == m_);
  MMW_REQUIRE(h.size() == n_);
  std::fill(h.begin(), h.end(), cx{0.0, 0.0});
  for (index_t l = 0; l < paths_.size(); ++l) {
    const cx g = rng.complex_normal(paths_[l].power) *
                 cx{amplitude_scale_, 0.0} *
                 linalg::dot(tx_steering_[l], u);
    for (index_t i = 0; i < n_; ++i) h[i] += g * rx_steering_[l][i];
  }
}

Vector sample_complex_gaussian(const Matrix& q, randgen::Rng& rng) {
  MMW_REQUIRE(q.is_square());
  const Matrix root = linalg::hermitian_sqrt(q);
  return root * rng.complex_gaussian_vector(q.rows());
}

}  // namespace mmw::channel
