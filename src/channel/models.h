// Stochastic link generators: the single-path channel and the NYC-derived
// multipath cluster channel (Akdeniz et al. [3]) the paper evaluates on.
#pragma once

#include "channel/link.h"

namespace mmw::channel {

/// Angular sector the paths are drawn from (base-station style sector):
/// ±60° around boresight in azimuth, ±30° in elevation.
struct AngularSector {
  real az_min = -M_PI / 3;
  real az_max = M_PI / 3;
  real el_min = -M_PI / 6;
  real el_max = M_PI / 6;
};

/// Single-path channel: one dominant specular path with unit power and
/// uniformly random AoD/AoA inside the sector. The covariance Q is exactly
/// rank one — the paper's first evaluation scenario (Fig. 5/7).
Link make_single_path_link(const antenna::ArrayGeometry& tx,
                           const antenna::ArrayGeometry& rx,
                           randgen::Rng& rng,
                           const AngularSector& sector = {});

/// Parameters of the cluster-based NYC statistical channel.
///
/// The paper has no access to raw NYC traces and neither do we; both sample
/// from the statistical model PUBLISHED in Akdeniz et al. 2014:
///  - cluster count   K = max(1, Poisson(lambda_clusters));
///  - cluster power fractions  γ'_k = U_k^{r_tau−1} · 10^{−0.6·Z_k/10},
///    U~U(0,1), Z~N(0,zeta²), normalized to Σγ_k = 1 — a heavy-tailed split
///    that makes 2–3 clusters dominant, the low-rank property the algorithm
///    exploits;
///  - cluster central angles uniform in the sector;
///  - subpath angle offsets: wrapped-Gaussian with per-side rms spreads.
struct NycClusterParams {
  real lambda_clusters = 1.8;     ///< E[#clusters] before the max(1,·)
  index_t subpaths_per_cluster = 10;
  real r_tau = 2.8;               ///< power-decay exponent
  real zeta_db = 4.0;             ///< per-cluster shadowing (dB)
  real aod_az_spread_rad = 10.2 * M_PI / 180.0;  ///< BS-side azimuth rms
  real aod_el_spread_rad = 0.0;                  ///< BS-side elevation rms
  real aoa_az_spread_rad = 15.5 * M_PI / 180.0;  ///< UE-side azimuth rms
  real aoa_el_spread_rad = 6.0 * M_PI / 180.0;   ///< UE-side elevation rms
  AngularSector sector;
};

/// Multipath NYC channel: cluster-structured link with total power 1.
/// The returned link's RX covariance is approximately low-rank (tests assert
/// the dominant-cluster energy concentration reported in the literature).
Link make_nyc_multipath_link(const antenna::ArrayGeometry& tx,
                             const antenna::ArrayGeometry& rx,
                             randgen::Rng& rng,
                             const NycClusterParams& params = {});

/// Deterministic k-path link with the given powers and angles; mainly for
/// tests and controlled ablations (rank sweeps).
Link make_fixed_paths_link(const antenna::ArrayGeometry& tx,
                           const antenna::ArrayGeometry& rx,
                           std::vector<Path> paths);

}  // namespace mmw::channel
