// Temporal channel evolution: first-order Gauss–Markov (AR(1)) fading on a
// fixed path geometry. The paper assumes the covariance "doesn't change
// dramatically between consecutive TX-slots" while the instantaneous H_j
// refades — this model makes both statements precise: per-path gains evolve
// with correlation ρ per step, so the covariance (set by the geometry) is
// exactly stationary while H decorrelates at a controllable rate.
#pragma once

#include "channel/link.h"

namespace mmw::channel {

/// Clarke/Jakes temporal correlation ρ = J₀(2π f_D τ) for Doppler f_D and
/// step interval τ. Preconditions: both non-negative.
real jakes_correlation(real doppler_hz, real step_seconds);

/// Sudden blockage as a large-scale temporal transition: the post-onset
/// link is `link` with each path's mean power scaled by
/// per_path_gain[l] ∈ (0, 1] (1 = unshadowed, small = deeply shadowed).
/// The AR(1) small-scale model above keeps the covariance stationary; a
/// blockage event is the complementary NON-stationary jump — the paper's
/// geometry holds but a blocker suppresses a subset of paths, which is the
/// regime the fault-injection runtime (src/fault) stresses.
/// Preconditions: one gain per path, entries in (0, 1].
Link blocked_link(const Link& link, std::span<const real> per_path_gain);

/// Stateful fader over a Link: holds per-path complex gains that evolve as
///   g[t+1] = ρ·g[t] + √(1−ρ²)·w,  w ~ CN(0, p_l),
/// so every marginal matches the Link's Rayleigh statistics and
/// E[g[t+k] g[t]*] = ρᵏ·p_l.
class TemporalFader {
 public:
  /// Preconditions: 0 ≤ correlation ≤ 1.
  TemporalFader(const Link& link, real correlation, randgen::Rng& rng);

  real correlation() const { return rho_; }

  /// Advances the fading state by one step.
  void advance(randgen::Rng& rng);

  /// Instantaneous channel matrix for the current state (N×M).
  linalg::Matrix current_channel() const;

  /// Effective RX channel H·u for the current state.
  linalg::Vector current_effective(const linalg::Vector& u) const;

 private:
  const Link* link_;
  real rho_;
  real amplitude_scale_;
  std::vector<cx> gains_;
};

}  // namespace mmw::channel
