// Temporal channel evolution: first-order Gauss–Markov (AR(1)) fading on a
// fixed path geometry. The paper assumes the covariance "doesn't change
// dramatically between consecutive TX-slots" while the instantaneous H_j
// refades — this model makes both statements precise: per-path gains evolve
// with correlation ρ per step, so the covariance (set by the geometry) is
// exactly stationary while H decorrelates at a controllable rate.
#pragma once

#include "antenna/geometry.h"
#include "channel/link.h"

namespace mmw::channel {

/// Clarke/Jakes temporal correlation ρ = J₀(2π f_D τ) for Doppler f_D and
/// step interval τ. Preconditions: both non-negative.
real jakes_correlation(real doppler_hz, real step_seconds);

/// Doppler frequency f_D = v·f_c/c (Hz) of a terminal moving at
/// `speed_mps` under carrier `carrier_ghz`. Preconditions: both ≥ 0.
real doppler_hz(real speed_mps, real carrier_ghz);

/// Sudden blockage as a large-scale temporal transition: the post-onset
/// link is `link` with each path's mean power scaled by
/// per_path_gain[l] ∈ (0, 1] (1 = unshadowed, small = deeply shadowed).
/// The AR(1) small-scale model above keeps the covariance stationary; a
/// blockage event is the complementary NON-stationary jump — the paper's
/// geometry holds but a blocker suppresses a subset of paths, which is the
/// regime the fault-injection runtime (src/fault) stresses.
/// Preconditions: one gain per path, entries in (0, 1].
Link blocked_link(const Link& link, std::span<const real> per_path_gain);

/// Stateful fader over a Link: holds per-path complex gains that evolve as
///   g[t+1] = ρ·g[t] + √(1−ρ²)·w,  w ~ CN(0, p_l),
/// so every marginal matches the Link's Rayleigh statistics and
/// E[g[t+k] g[t]*] = ρᵏ·p_l.
class TemporalFader {
 public:
  /// Preconditions: 0 ≤ correlation ≤ 1.
  TemporalFader(const Link& link, real correlation, randgen::Rng& rng);

  real correlation() const { return rho_; }

  /// Advances the fading state by one step.
  void advance(randgen::Rng& rng);

  /// Instantaneous channel matrix for the current state (N×M).
  linalg::Matrix current_channel() const;

  /// Effective RX channel H·u for the current state.
  linalg::Vector current_effective(const linalg::Vector& u) const;

 private:
  const Link* link_;
  real rho_;
  real amplitude_scale_;
  std::vector<cx> gains_;
};

/// Epoch-scale large-scale evolution knobs for LinkEvolution. Everything is
/// expressed per meter traveled where it physically scales with motion, so
/// one config covers walking and train speeds by changing `speed_mps` only
/// — the property tests (drift ∝ speed) pin exactly that scaling.
struct EvolutionConfig {
  real epoch_seconds = 0.5;   ///< wall time between epochs (τ)
  real speed_mps = 1.4;       ///< terminal speed (walking default)
  real carrier_ghz = 28.0;    ///< mmWave carrier, sets the Doppler

  /// Angular random-walk scale: each path's AoA/AoD azimuth and elevation
  /// gain an independent N(0, (drift_rad_per_meter·d)²) increment per epoch,
  /// d = speed·τ meters traveled.
  real drift_rad_per_meter = 0.004;

  /// Log-normal shadow fading: per-path AR(1) process in dB with stationary
  /// std `shadow_sigma_db` and correlation exp(−d / shadow_coherence_m) per
  /// epoch (Gudmundson's model). 0 disables shadowing.
  real shadow_sigma_db = 0.0;
  real shadow_coherence_m = 15.0;

  /// Blockage as a two-state Markov chain over epochs: an UNBLOCKED link
  /// becomes blocked with probability onset_per_epoch + onset_per_meter·d
  /// (clamped to [0, 1]); a BLOCKED link clears with clear_probability.
  /// While blocked, the dominant path's mean power is scaled by
  /// blockage_gain (partial shadowing — secondary paths survive, which is
  /// what lets a tracker recover via an alternate beam).
  real blockage_onset_per_epoch = 0.0;
  real blockage_onset_per_meter = 0.0;
  real blockage_clear_probability = 0.2;
  real blockage_gain = 0.02;

  real meters_per_epoch() const { return speed_mps * epoch_seconds; }
  real drift_std_rad() const {
    return drift_rad_per_meter * meters_per_epoch();
  }
  real shadow_correlation() const;  ///< exp(−d/coherence), 0 if coherence ≤ 0
  real onset_probability() const;   ///< clamped per-epoch onset
  real doppler() const { return doppler_hz(speed_mps, carrier_ghz); }
  /// Jakes fade correlation across one epoch, clamped to [0, 1] (the AR(1)
  /// fader requires a non-negative ρ; past the first Bessel zero the fades
  /// are effectively independent anyway).
  real fade_correlation() const;
};

/// Deterministic epoch-by-epoch evolution of one link's LARGE-SCALE state:
/// path angles drift as a seeded random walk, per-path shadow fading follows
/// an AR(1) log-normal, and blockage switches on/off as a Markov chain. The
/// small-scale Rayleigh refades stay where they always were (the probe
/// chain / TemporalFader); this class only moves the geometry the paper
/// holds fixed within a trial.
///
/// Determinism contract: the state at epoch e is a pure function of
/// (seed, key_a, key_b, e) — epoch k's innovations are drawn from the
/// epoch-keyed stream Rng::stream(seed, key_a, key_b, k) in a fixed order
/// (per path: 4 angle normals, 1 shadow normal; then 1 blockage uniform) and
/// accumulated in ascending-epoch order. seek() therefore reaches identical
/// state whether called once, stepwise, or backwards (a backward seek
/// replays from the base state), and distinct users/sites never share a
/// stream. Callers pick key_a from the reserved temporal lane
/// (randgen/keylanes.h).
class LinkEvolution {
 public:
  /// Preconditions: at least one path; config rates in range (probabilities
  /// in [0, 1], blockage_gain in (0, 1], epoch_seconds and speed ≥ 0).
  LinkEvolution(antenna::ArrayGeometry tx, antenna::ArrayGeometry rx,
                std::vector<Path> base_paths, EvolutionConfig config,
                std::uint64_t seed, std::uint64_t key_a, std::uint64_t key_b);

  index_t epoch() const { return epoch_; }
  bool blocked() const { return blocked_; }
  const EvolutionConfig& config() const { return config_; }
  const std::vector<Path>& base_paths() const { return base_; }
  /// The path whose power a blockage event suppresses (largest base power,
  /// ties toward the lowest index).
  index_t dominant_path() const { return dominant_; }
  /// Current shadow state of path l, dB.
  real shadow_db(index_t l) const { return shadow_db_[l]; }
  /// Current cumulative AoA azimuth drift of path l, radians.
  real aoa_azimuth_drift(index_t l) const { return daoa_az_[l]; }

  /// Moves the state to `epoch` (0 = the unperturbed base state). Forward
  /// seeks advance incrementally; backward seeks replay from the base.
  void seek(index_t epoch);

  /// Realizes the link at the current state: drifted angles, shadowed and
  /// blockage-scaled mean powers, on the constructor's array geometries.
  Link current() const;

 private:
  void step(index_t epoch);  ///< applies epoch `epoch`'s innovations

  antenna::ArrayGeometry tx_;
  antenna::ArrayGeometry rx_;
  std::vector<Path> base_;
  EvolutionConfig config_;
  std::uint64_t seed_ = 0, key_a_ = 0, key_b_ = 0;
  index_t epoch_ = 0;
  index_t dominant_ = 0;
  bool blocked_ = false;
  std::vector<real> daoa_az_, daoa_el_, daod_az_, daod_el_;  ///< drift, rad
  std::vector<real> shadow_db_;                              ///< AR(1) state
};

}  // namespace mmw::channel
