#include "channel/models.h"

#include <algorithm>
#include <cmath>

namespace mmw::channel {

namespace {

antenna::Direction random_direction(randgen::Rng& rng,
                                    const AngularSector& s) {
  return {rng.uniform(s.az_min, s.az_max), rng.uniform(s.el_min, s.el_max)};
}

real clamp_to(real x, real lo, real hi) { return std::clamp(x, lo, hi); }

}  // namespace

Link make_single_path_link(const antenna::ArrayGeometry& tx,
                           const antenna::ArrayGeometry& rx,
                           randgen::Rng& rng, const AngularSector& sector) {
  std::vector<Path> paths(1);
  paths[0].power = 1.0;
  paths[0].aod = random_direction(rng, sector);
  paths[0].aoa = random_direction(rng, sector);
  return Link(tx, rx, std::move(paths));
}

Link make_nyc_multipath_link(const antenna::ArrayGeometry& tx,
                             const antenna::ArrayGeometry& rx,
                             randgen::Rng& rng,
                             const NycClusterParams& params) {
  MMW_REQUIRE(params.subpaths_per_cluster >= 1);
  MMW_REQUIRE(params.lambda_clusters > 0.0);

  const index_t k =
      std::max<index_t>(1, static_cast<index_t>(rng.poisson(params.lambda_clusters)));

  // Unnormalized heavy-tailed cluster powers (Akdeniz eq. for γ'_k).
  std::vector<real> gamma(k);
  real total = 0.0;
  for (index_t c = 0; c < k; ++c) {
    const real u = rng.uniform(1e-12, 1.0);
    const real z = rng.normal(0.0, params.zeta_db);
    gamma[c] = std::pow(u, params.r_tau - 1.0) * std::pow(10.0, -0.06 * z);
    total += gamma[c];
  }

  const AngularSector& s = params.sector;
  std::vector<Path> paths;
  paths.reserve(k * params.subpaths_per_cluster);
  for (index_t c = 0; c < k; ++c) {
    const real cluster_power = gamma[c] / total;
    const antenna::Direction aod_center = random_direction(rng, s);
    const antenna::Direction aoa_center = random_direction(rng, s);
    const real subpath_power =
        cluster_power / static_cast<real>(params.subpaths_per_cluster);
    for (index_t l = 0; l < params.subpaths_per_cluster; ++l) {
      Path p;
      p.power = subpath_power;
      p.aod = {clamp_to(aod_center.azimuth +
                            rng.normal(0.0, params.aod_az_spread_rad),
                        s.az_min, s.az_max),
               clamp_to(aod_center.elevation +
                            rng.normal(0.0, params.aod_el_spread_rad),
                        s.el_min, s.el_max)};
      p.aoa = {clamp_to(aoa_center.azimuth +
                            rng.normal(0.0, params.aoa_az_spread_rad),
                        s.az_min, s.az_max),
               clamp_to(aoa_center.elevation +
                            rng.normal(0.0, params.aoa_el_spread_rad),
                        s.el_min, s.el_max)};
      paths.push_back(p);
    }
  }
  return Link(tx, rx, std::move(paths));
}

Link make_fixed_paths_link(const antenna::ArrayGeometry& tx,
                           const antenna::ArrayGeometry& rx,
                           std::vector<Path> paths) {
  return Link(tx, rx, std::move(paths));
}

}  // namespace mmw::channel
