// Wideband (frequency-selective) extension of the link model: every path
// carries an excess delay, so the channel becomes
//   H(f) = √(NM) · Σ_l g_l · e^{−j2πf·τ_l} · a_rx,l a_tx,lᴴ
// across the signal band. Beam alignment itself is a narrowband decision —
// the MEAN pair gain E|vᴴH(f)u|² is frequency-flat because the delay phases
// cancel inside the expectation (tested) — but the realized per-subcarrier
// response is selective, and a well-aligned beam pair filters the channel
// down to one cluster, shrinking the conditional delay spread (the classic
// "beamforming flattens the mmWave channel" effect; see
// bench/ext_wideband_selectivity).
#pragma once

#include "channel/link.h"
#include "channel/models.h"

namespace mmw::channel {

/// A wideband link: a Link plus one excess delay per path (seconds).
class WidebandLink {
 public:
  /// Preconditions: one delay per path of `link`, all non-negative.
  WidebandLink(Link link, std::vector<real> delays_s);

  const Link& narrowband() const { return link_; }
  const std::vector<real>& delays_s() const { return delays_; }

  /// One small-scale realization: the per-path complex gains, including the
  /// √(NM) array factor. Independent across calls.
  struct Realization {
    std::vector<cx> gains;
  };
  Realization draw_realization(randgen::Rng& rng) const;

  /// Scalar channel seen by the pair (u, v) at baseband frequency offset f:
  ///   Σ_l g_l e^{−j2πfτ_l} (vᴴ a_rx,l)(a_tx,lᴴ u).
  cx pair_response(const Realization& realization, const linalg::Vector& u,
                   const linalg::Vector& v, real frequency_hz) const;

  /// Full N×M channel matrix at frequency offset f.
  linalg::Matrix frequency_response(const Realization& realization,
                                    real frequency_hz) const;

  /// Power-weighted RMS delay spread seen THROUGH the pair (u, v): weights
  /// are p_l·|vᴴa_rx,l|²·|a_tx,lᴴu|². Narrow beams select one cluster and
  /// shrink this relative to the omni (all-paths) spread.
  real rms_delay_spread_s(const linalg::Vector& u,
                          const linalg::Vector& v) const;

  /// Unconditioned (omni) RMS delay spread, weights p_l.
  real omni_rms_delay_spread_s() const;

 private:
  Link link_;
  std::vector<real> delays_;
};

/// Wideband NYC channel: the cluster model of make_nyc_multipath_link plus
/// exponential per-cluster excess delays (mean `cluster_delay_scale_s`) and
/// a small intra-cluster jitter. Total power 1, delays sorted so the first
/// cluster is the earliest.
struct WidebandParams {
  NycClusterParams cluster;
  real cluster_delay_scale_s = 100e-9;  ///< mean excess delay between clusters
  real intra_cluster_jitter_s = 5e-9;   ///< per-subpath delay spread
};

WidebandLink make_nyc_wideband_link(const antenna::ArrayGeometry& tx,
                                    const antenna::ArrayGeometry& rx,
                                    randgen::Rng& rng,
                                    const WidebandParams& params = {});

}  // namespace mmw::channel
