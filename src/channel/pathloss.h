// Path-loss models for mmWave links: free-space (Friis) and the empirical
// NYC 28/73 GHz model of Akdeniz et al. (IEEE JSAC 2014), the channel the
// paper evaluates on.
#pragma once

#include "linalg/common.h"
#include "randgen/rng.h"

namespace mmw::channel {

/// Free-space path loss in dB: 20·log10(4π·d·f/c).
/// Preconditions: distance_m > 0, frequency_ghz > 0.
real friis_path_loss_db(real frequency_ghz, real distance_m);

/// Link state of the Akdeniz NYC model.
enum class LinkState { kLos, kNlos, kOutage };

/// Parameters of the empirical floating-intercept path-loss law
///   PL(d) [dB] = alpha + beta·10·log10(d) + xi,  xi ~ N(0, sigma²),
/// plus the LOS/NLOS/outage probability law
///   p_outage(d) = max(0, 1 − exp(−a_out·d + b_out)),
///   p_los(d)    = (1 − p_outage(d))·exp(−a_los·d).
struct NycPathLossParams {
  real alpha_los;
  real beta_los;
  real sigma_los_db;
  real alpha_nlos;
  real beta_nlos;
  real sigma_nlos_db;
  real a_los;   ///< 1/m
  real a_out;   ///< 1/m
  real b_out;

  /// Fitted values from the 28 GHz New York City measurement campaign.
  static NycPathLossParams nyc_28ghz();
  /// Fitted values from the 73 GHz campaign.
  static NycPathLossParams nyc_73ghz();
};

/// Samples the link state at the given distance.
LinkState sample_link_state(const NycPathLossParams& params, real distance_m,
                            randgen::Rng& rng);

/// Path loss in dB for a given realized link state, including lognormal
/// shadowing. Outage returns +infinity (no usable link).
real nyc_path_loss_db(const NycPathLossParams& params, LinkState state,
                      real distance_m, randgen::Rng& rng);

/// Link-budget helper mapping a physical deployment onto the pre-beamforming
/// SNR γ = Es/N0 used by the measurement model (paper eq. 15).
struct LinkBudget {
  real tx_power_dbm = 30.0;        ///< base-station transmit power
  real bandwidth_hz = 1e9;         ///< system bandwidth
  real noise_figure_db = 7.0;      ///< receiver noise figure
  real path_loss_db = 100.0;       ///< realized path loss

  /// Thermal noise floor: −174 dBm/Hz + 10·log10(BW) + NF.
  real noise_power_dbm() const;

  /// Pre-beamforming SNR in dB (element-to-element, no array gain).
  real snr_db() const;

  /// Pre-beamforming SNR as a linear ratio (the paper's γ).
  real snr_linear() const;
};

}  // namespace mmw::channel
