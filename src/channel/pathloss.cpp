#include "channel/pathloss.h"

#include <cmath>
#include <limits>

namespace mmw::channel {

real friis_path_loss_db(real frequency_ghz, real distance_m) {
  MMW_REQUIRE(frequency_ghz > 0.0);
  MMW_REQUIRE(distance_m > 0.0);
  constexpr real c = 299792458.0;  // m/s
  const real f_hz = frequency_ghz * 1e9;
  return 20.0 * std::log10(4.0 * M_PI * distance_m * f_hz / c);
}

NycPathLossParams NycPathLossParams::nyc_28ghz() {
  // Akdeniz et al., "Millimeter wave channel modeling and cellular capacity
  // evaluation," IEEE JSAC 32(6), 2014, Table I (28 GHz).
  return {
      .alpha_los = 61.4,
      .beta_los = 2.0,
      .sigma_los_db = 5.8,
      .alpha_nlos = 72.0,
      .beta_nlos = 2.92,
      .sigma_nlos_db = 8.7,
      .a_los = 1.0 / 67.1,
      .a_out = 1.0 / 30.0,
      .b_out = 5.2,
  };
}

NycPathLossParams NycPathLossParams::nyc_73ghz() {
  // Same campaign at 73 GHz.
  return {
      .alpha_los = 69.8,
      .beta_los = 2.0,
      .sigma_los_db = 5.8,
      .alpha_nlos = 86.6,
      .beta_nlos = 2.45,
      .sigma_nlos_db = 8.0,
      .a_los = 1.0 / 67.1,
      .a_out = 1.0 / 30.0,
      .b_out = 5.2,
  };
}

LinkState sample_link_state(const NycPathLossParams& params, real distance_m,
                            randgen::Rng& rng) {
  MMW_REQUIRE(distance_m > 0.0);
  const real p_out =
      std::max(0.0, 1.0 - std::exp(-params.a_out * distance_m + params.b_out));
  const real p_los = (1.0 - p_out) * std::exp(-params.a_los * distance_m);
  const real x = rng.uniform();
  if (x < p_out) return LinkState::kOutage;
  if (x < p_out + p_los) return LinkState::kLos;
  return LinkState::kNlos;
}

real nyc_path_loss_db(const NycPathLossParams& params, LinkState state,
                      real distance_m, randgen::Rng& rng) {
  MMW_REQUIRE(distance_m > 0.0);
  switch (state) {
    case LinkState::kLos:
      return params.alpha_los +
             params.beta_los * 10.0 * std::log10(distance_m) +
             rng.normal(0.0, params.sigma_los_db);
    case LinkState::kNlos:
      return params.alpha_nlos +
             params.beta_nlos * 10.0 * std::log10(distance_m) +
             rng.normal(0.0, params.sigma_nlos_db);
    case LinkState::kOutage:
      return std::numeric_limits<real>::infinity();
  }
  throw precondition_error("nyc_path_loss_db: invalid link state");
}

real LinkBudget::noise_power_dbm() const {
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

real LinkBudget::snr_db() const {
  return tx_power_dbm - path_loss_db - noise_power_dbm();
}

real LinkBudget::snr_linear() const { return std::pow(10.0, snr_db() / 10.0); }

}  // namespace mmw::channel
