#include "channel/temporal.h"

#include <algorithm>
#include <cmath>

namespace mmw::channel {

real jakes_correlation(real doppler_hz, real step_seconds) {
  MMW_REQUIRE(doppler_hz >= 0.0);
  MMW_REQUIRE(step_seconds >= 0.0);
  return std::cyl_bessel_j(0.0, 2.0 * M_PI * doppler_hz * step_seconds);
}

real doppler_hz(real speed_mps, real carrier_ghz) {
  MMW_REQUIRE(speed_mps >= 0.0);
  MMW_REQUIRE(carrier_ghz >= 0.0);
  constexpr real kSpeedOfLight = 299'792'458.0;
  return speed_mps * carrier_ghz * 1e9 / kSpeedOfLight;
}

real EvolutionConfig::shadow_correlation() const {
  if (shadow_coherence_m <= 0.0) return 0.0;
  return std::exp(-meters_per_epoch() / shadow_coherence_m);
}

real EvolutionConfig::onset_probability() const {
  const real p =
      blockage_onset_per_epoch + blockage_onset_per_meter * meters_per_epoch();
  return std::clamp(p, 0.0, 1.0);
}

real EvolutionConfig::fade_correlation() const {
  return std::clamp(jakes_correlation(doppler(), epoch_seconds), 0.0, 1.0);
}

LinkEvolution::LinkEvolution(antenna::ArrayGeometry tx,
                             antenna::ArrayGeometry rx,
                             std::vector<Path> base_paths,
                             EvolutionConfig config, std::uint64_t seed,
                             std::uint64_t key_a, std::uint64_t key_b)
    : tx_(std::move(tx)),
      rx_(std::move(rx)),
      base_(std::move(base_paths)),
      config_(config),
      seed_(seed),
      key_a_(key_a),
      key_b_(key_b) {
  MMW_REQUIRE_MSG(!base_.empty(), "evolution needs at least one path");
  MMW_REQUIRE(config.epoch_seconds >= 0.0 && config.speed_mps >= 0.0);
  MMW_REQUIRE(config.drift_rad_per_meter >= 0.0);
  MMW_REQUIRE(config.shadow_sigma_db >= 0.0);
  MMW_REQUIRE(config.blockage_clear_probability >= 0.0 &&
              config.blockage_clear_probability <= 1.0);
  MMW_REQUIRE(config.blockage_onset_per_epoch >= 0.0 &&
              config.blockage_onset_per_epoch <= 1.0);
  MMW_REQUIRE(config.blockage_onset_per_meter >= 0.0);
  MMW_REQUIRE_MSG(config.blockage_gain > 0.0 && config.blockage_gain <= 1.0,
                  "blockage gain must be in (0, 1]");
  for (index_t l = 1; l < base_.size(); ++l)
    if (base_[l].power > base_[dominant_].power) dominant_ = l;
  const index_t n = base_.size();
  daoa_az_.assign(n, 0.0);
  daoa_el_.assign(n, 0.0);
  daod_az_.assign(n, 0.0);
  daod_el_.assign(n, 0.0);
  shadow_db_.assign(n, 0.0);
}

void LinkEvolution::step(index_t epoch) {
  randgen::Rng rng = randgen::Rng::stream(seed_, key_a_, key_b_,
                                          static_cast<std::uint64_t>(epoch));
  const real drift = config_.drift_std_rad();
  const real rho = config_.shadow_correlation();
  const real innovation =
      config_.shadow_sigma_db * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  // Fixed draw order per epoch — per path: AoA az/el, AoD az/el, shadow;
  // then one uniform for the blockage Markov transition. The order is part
  // of the determinism contract (replay / random-access equality).
  for (index_t l = 0; l < base_.size(); ++l) {
    daoa_az_[l] += drift * rng.normal();
    daoa_el_[l] += drift * rng.normal();
    daod_az_[l] += drift * rng.normal();
    daod_el_[l] += drift * rng.normal();
    shadow_db_[l] = rho * shadow_db_[l] + innovation * rng.normal();
  }
  const real u = rng.uniform();
  if (blocked_)
    blocked_ = !(u < config_.blockage_clear_probability);
  else
    blocked_ = u < config_.onset_probability();
}

void LinkEvolution::seek(index_t epoch) {
  if (epoch < epoch_) {
    // Backward seek: replay from the base state. Identical arithmetic to
    // the original forward pass, so the result is bit-identical.
    std::fill(daoa_az_.begin(), daoa_az_.end(), 0.0);
    std::fill(daoa_el_.begin(), daoa_el_.end(), 0.0);
    std::fill(daod_az_.begin(), daod_az_.end(), 0.0);
    std::fill(daod_el_.begin(), daod_el_.end(), 0.0);
    std::fill(shadow_db_.begin(), shadow_db_.end(), 0.0);
    blocked_ = false;
    epoch_ = 0;
  }
  for (index_t e = epoch_ + 1; e <= epoch; ++e) step(e);
  epoch_ = epoch;
}

Link LinkEvolution::current() const {
  std::vector<Path> paths;
  paths.reserve(base_.size());
  for (index_t l = 0; l < base_.size(); ++l) {
    Path p = base_[l];
    p.aoa.azimuth += daoa_az_[l];
    p.aoa.elevation += daoa_el_[l];
    p.aod.azimuth += daod_az_[l];
    p.aod.elevation += daod_el_[l];
    real scale = std::pow(10.0, shadow_db_[l] / 10.0);
    if (blocked_ && l == dominant_) scale *= config_.blockage_gain;
    p.power *= scale;
    paths.push_back(p);
  }
  return Link(tx_, rx_, std::move(paths));
}

Link blocked_link(const Link& link, std::span<const real> per_path_gain) {
  MMW_REQUIRE_MSG(per_path_gain.size() == link.paths().size(),
                  "need one blockage gain per path");
  for (const real g : per_path_gain)
    MMW_REQUIRE_MSG(g > 0.0 && g <= 1.0,
                    "blockage gain must be in (0, 1]");
  return link.with_scaled_path_powers(per_path_gain);
}

TemporalFader::TemporalFader(const Link& link, real correlation,
                             randgen::Rng& rng)
    : link_(&link), rho_(correlation) {
  MMW_REQUIRE_MSG(correlation >= 0.0 && correlation <= 1.0,
                  "correlation must be in [0, 1]");
  amplitude_scale_ =
      std::sqrt(static_cast<real>(link.tx_size() * link.rx_size()));
  gains_.reserve(link.paths().size());
  for (const Path& p : link.paths())
    gains_.push_back(rng.complex_normal(p.power));
}

void TemporalFader::advance(randgen::Rng& rng) {
  const real innovation = std::sqrt(1.0 - rho_ * rho_);
  for (index_t l = 0; l < gains_.size(); ++l)
    gains_[l] = rho_ * gains_[l] +
                innovation * rng.complex_normal(link_->paths()[l].power);
}

linalg::Matrix TemporalFader::current_channel() const {
  const index_t n = link_->rx_size();
  const index_t m = link_->tx_size();
  linalg::Matrix h(n, m);
  for (index_t l = 0; l < gains_.size(); ++l) {
    const cx g = gains_[l] * cx{amplitude_scale_, 0.0};
    const linalg::Vector& ar = link_->rx_steering(l);
    const linalg::Vector& at = link_->tx_steering(l);
    for (index_t i = 0; i < n; ++i) {
      const cx gi = g * ar[i];
      for (index_t j = 0; j < m; ++j) h(i, j) += gi * std::conj(at[j]);
    }
  }
  return h;
}

linalg::Vector TemporalFader::current_effective(
    const linalg::Vector& u) const {
  MMW_REQUIRE(u.size() == link_->tx_size());
  linalg::Vector h(link_->rx_size());
  for (index_t l = 0; l < gains_.size(); ++l) {
    const cx g = gains_[l] * cx{amplitude_scale_, 0.0} *
                 linalg::dot(link_->tx_steering(l), u);
    const linalg::Vector& ar = link_->rx_steering(l);
    for (index_t i = 0; i < h.size(); ++i) h[i] += g * ar[i];
  }
  return h;
}

}  // namespace mmw::channel
