#include "channel/temporal.h"

#include <cmath>

namespace mmw::channel {

real jakes_correlation(real doppler_hz, real step_seconds) {
  MMW_REQUIRE(doppler_hz >= 0.0);
  MMW_REQUIRE(step_seconds >= 0.0);
  return std::cyl_bessel_j(0.0, 2.0 * M_PI * doppler_hz * step_seconds);
}

Link blocked_link(const Link& link, std::span<const real> per_path_gain) {
  MMW_REQUIRE_MSG(per_path_gain.size() == link.paths().size(),
                  "need one blockage gain per path");
  for (const real g : per_path_gain)
    MMW_REQUIRE_MSG(g > 0.0 && g <= 1.0,
                    "blockage gain must be in (0, 1]");
  return link.with_scaled_path_powers(per_path_gain);
}

TemporalFader::TemporalFader(const Link& link, real correlation,
                             randgen::Rng& rng)
    : link_(&link), rho_(correlation) {
  MMW_REQUIRE_MSG(correlation >= 0.0 && correlation <= 1.0,
                  "correlation must be in [0, 1]");
  amplitude_scale_ =
      std::sqrt(static_cast<real>(link.tx_size() * link.rx_size()));
  gains_.reserve(link.paths().size());
  for (const Path& p : link.paths())
    gains_.push_back(rng.complex_normal(p.power));
}

void TemporalFader::advance(randgen::Rng& rng) {
  const real innovation = std::sqrt(1.0 - rho_ * rho_);
  for (index_t l = 0; l < gains_.size(); ++l)
    gains_[l] = rho_ * gains_[l] +
                innovation * rng.complex_normal(link_->paths()[l].power);
}

linalg::Matrix TemporalFader::current_channel() const {
  const index_t n = link_->rx_size();
  const index_t m = link_->tx_size();
  linalg::Matrix h(n, m);
  for (index_t l = 0; l < gains_.size(); ++l) {
    const cx g = gains_[l] * cx{amplitude_scale_, 0.0};
    const linalg::Vector& ar = link_->rx_steering(l);
    const linalg::Vector& at = link_->tx_steering(l);
    for (index_t i = 0; i < n; ++i) {
      const cx gi = g * ar[i];
      for (index_t j = 0; j < m; ++j) h(i, j) += gi * std::conj(at[j]);
    }
  }
  return h;
}

linalg::Vector TemporalFader::current_effective(
    const linalg::Vector& u) const {
  MMW_REQUIRE(u.size() == link_->tx_size());
  linalg::Vector h(link_->rx_size());
  for (index_t l = 0; l < gains_.size(); ++l) {
    const cx g = gains_[l] * cx{amplitude_scale_, 0.0} *
                 linalg::dot(link_->tx_steering(l), u);
    const linalg::Vector& ar = link_->rx_steering(l);
    for (index_t i = 0; i < h.size(); ++i) h[i] += g * ar[i];
  }
  return h;
}

}  // namespace mmw::channel
