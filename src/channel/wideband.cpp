#include "channel/wideband.h"

#include <algorithm>
#include <cmath>

namespace mmw::channel {

using linalg::Matrix;
using linalg::Vector;

WidebandLink::WidebandLink(Link link, std::vector<real> delays_s)
    : link_(std::move(link)), delays_(std::move(delays_s)) {
  MMW_REQUIRE_MSG(delays_.size() == link_.paths().size(),
                  "need exactly one delay per path");
  for (const real d : delays_)
    MMW_REQUIRE_MSG(d >= 0.0, "delays must be non-negative");
}

WidebandLink::Realization WidebandLink::draw_realization(
    randgen::Rng& rng) const {
  const real scale =
      std::sqrt(static_cast<real>(link_.tx_size() * link_.rx_size()));
  Realization r;
  r.gains.reserve(delays_.size());
  for (const Path& p : link_.paths())
    r.gains.push_back(rng.complex_normal(p.power) * cx{scale, 0.0});
  return r;
}

cx WidebandLink::pair_response(const Realization& realization,
                               const Vector& u, const Vector& v,
                               real frequency_hz) const {
  MMW_REQUIRE(realization.gains.size() == delays_.size());
  MMW_REQUIRE(u.size() == link_.tx_size() && v.size() == link_.rx_size());
  cx acc{0.0, 0.0};
  for (index_t l = 0; l < delays_.size(); ++l) {
    const real phase = -2.0 * M_PI * frequency_hz * delays_[l];
    acc += realization.gains[l] * cx{std::cos(phase), std::sin(phase)} *
           linalg::dot(v, link_.rx_steering(l)) *
           linalg::dot(link_.tx_steering(l), u);
  }
  return acc;
}

Matrix WidebandLink::frequency_response(const Realization& realization,
                                        real frequency_hz) const {
  MMW_REQUIRE(realization.gains.size() == delays_.size());
  Matrix h(link_.rx_size(), link_.tx_size());
  for (index_t l = 0; l < delays_.size(); ++l) {
    const real phase = -2.0 * M_PI * frequency_hz * delays_[l];
    const cx g = realization.gains[l] * cx{std::cos(phase), std::sin(phase)};
    const Vector& ar = link_.rx_steering(l);
    const Vector& at = link_.tx_steering(l);
    for (index_t i = 0; i < h.rows(); ++i) {
      const cx gi = g * ar[i];
      for (index_t j = 0; j < h.cols(); ++j)
        h(i, j) += gi * std::conj(at[j]);
    }
  }
  return h;
}

namespace {

real weighted_rms_spread(const std::vector<real>& delays,
                         const std::vector<real>& weights) {
  real total = 0.0, mean = 0.0;
  for (index_t l = 0; l < delays.size(); ++l) {
    total += weights[l];
    mean += weights[l] * delays[l];
  }
  if (total <= 0.0) return 0.0;
  mean /= total;
  real var = 0.0;
  for (index_t l = 0; l < delays.size(); ++l)
    var += weights[l] * (delays[l] - mean) * (delays[l] - mean);
  return std::sqrt(var / total);
}

}  // namespace

real WidebandLink::rms_delay_spread_s(const Vector& u,
                                      const Vector& v) const {
  MMW_REQUIRE(u.size() == link_.tx_size() && v.size() == link_.rx_size());
  std::vector<real> weights(delays_.size());
  for (index_t l = 0; l < delays_.size(); ++l)
    weights[l] = link_.paths()[l].power *
                 std::norm(linalg::dot(v, link_.rx_steering(l))) *
                 std::norm(linalg::dot(link_.tx_steering(l), u));
  return weighted_rms_spread(delays_, weights);
}

real WidebandLink::omni_rms_delay_spread_s() const {
  std::vector<real> weights(delays_.size());
  for (index_t l = 0; l < delays_.size(); ++l)
    weights[l] = link_.paths()[l].power;
  return weighted_rms_spread(delays_, weights);
}

WidebandLink make_nyc_wideband_link(const antenna::ArrayGeometry& tx,
                                    const antenna::ArrayGeometry& rx,
                                    randgen::Rng& rng,
                                    const WidebandParams& params) {
  MMW_REQUIRE(params.cluster_delay_scale_s > 0.0);
  MMW_REQUIRE(params.intra_cluster_jitter_s >= 0.0);

  Link link = make_nyc_multipath_link(tx, rx, rng, params.cluster);
  // Paths are cluster-major with a fixed subpath count per cluster (see
  // make_nyc_multipath_link), so cluster boundaries are recoverable.
  const index_t per_cluster = params.cluster.subpaths_per_cluster;
  const index_t clusters = link.paths().size() / per_cluster;

  std::vector<real> cluster_delay(clusters);
  for (index_t c = 0; c < clusters; ++c)
    cluster_delay[c] =
        c == 0 ? 0.0 : rng.exponential(params.cluster_delay_scale_s);
  std::sort(cluster_delay.begin(), cluster_delay.end());

  std::vector<real> delays;
  delays.reserve(link.paths().size());
  for (index_t c = 0; c < clusters; ++c)
    for (index_t l = 0; l < per_cluster; ++l)
      delays.push_back(cluster_delay[c] +
                       std::abs(rng.normal(0.0, params.intra_cluster_jitter_s)));
  return WidebandLink(std::move(link), std::move(delays));
}

}  // namespace mmw::channel
