#include "sim/evaluation.h"

#include <limits>

#include "obs/metrics.h"

namespace mmw::sim {

mac::MeasurementRecord best_in_prefix(
    std::span<const mac::MeasurementRecord> records, index_t count) {
  MMW_REQUIRE_MSG(count >= 1 && count <= records.size(),
                  "prefix length out of range");
  mac::MeasurementRecord best = records[0];
  for (index_t k = 1; k < count; ++k)
    if (records[k].energy > best.energy) best = records[k];
  return best;
}

real loss_after(const core::PairGainOracle& oracle,
                std::span<const mac::MeasurementRecord> records,
                index_t count) {
  const mac::MeasurementRecord best = best_in_prefix(records, count);
  const real loss = oracle.loss_db(best.tx_beam, best.rx_beam);
  // Instantaneous SNR loss of the selected pair — the paper's headline
  // quantity. Gauge aggregates (min/max/mean) summarize a whole run.
  if (obs::enabled()) {
    static const obs::Gauge gauge =
        obs::Registry::global().gauge("sim.loss_db");
    gauge.set(loss);
  }
  return loss;
}

std::vector<real> loss_trajectory(
    const core::PairGainOracle& oracle,
    std::span<const mac::MeasurementRecord> records) {
  std::vector<real> out;
  out.reserve(records.size());
  // Single pass: the argmax prefix only changes when a new maximum arrives.
  real best_energy = -1.0;
  real current_loss = std::numeric_limits<real>::infinity();
  for (const mac::MeasurementRecord& r : records) {
    if (r.energy > best_energy) {
      best_energy = r.energy;
      current_loss = oracle.loss_db(r.tx_beam, r.rx_beam);
    }
    out.push_back(current_loss);
  }
  return out;
}

std::optional<index_t> measurements_to_reach(
    const core::PairGainOracle& oracle,
    std::span<const mac::MeasurementRecord> records, real target_loss_db) {
  MMW_REQUIRE(target_loss_db >= 0.0);
  const std::vector<real> losses = loss_trajectory(oracle, records);
  for (index_t k = 0; k < losses.size(); ++k)
    if (losses[k] <= target_loss_db) return k + 1;
  return std::nullopt;
}

}  // namespace mmw::sim
