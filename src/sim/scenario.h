// Experiment scenarios: the paper's simulation setup in one value type.
//
// Ownership / thread-safety: Scenario is a plain value type (cheap to copy,
// no hidden references); the experiment drivers take it by const& and never
// mutate it, so one Scenario may be shared by any number of concurrent
// experiment runs. TrialContext owns everything a trial touches (link,
// codebooks, oracle) by value — trials built from independent Rng streams
// share no state and are safe to run on different threads.
#pragma once

#include <memory>

#include "antenna/codebook.h"
#include "channel/models.h"
#include "core/oracle.h"
#include "fault/fault.h"
#include "mac/session.h"

namespace mmw::sim {

/// Which channel a trial draws its link from.
enum class ChannelKind {
  kSinglePath,    ///< one specular path (paper Figs. 5 & 7)
  kNycMultipath,  ///< Akdeniz NYC cluster channel (paper Figs. 6 & 8)
};

/// Which beam codebook the terminals train over.
enum class CodebookKind {
  /// Steering vectors on a uniform angular grid covering the sector.
  /// Neighbouring codewords overlap, which is what lets a covariance
  /// estimate score directions it has not probed — the property the
  /// paper's eigen-directed measurement relies on. Default.
  kAngularGrid,
  /// Orthonormal DFT beams. With orthogonal codewords the regularized ML
  /// estimate provably cannot extrapolate outside the probed span (see
  /// estimate_covariance_ml), so the adaptive scheme degrades to its
  /// cross-slot reuse effect only. Kept for ablation.
  kDft,
};

/// A reproducible experiment configuration. Defaults mirror the paper's
/// setup (Sec. V-A): TX 4×4 λ/2 UPA, RX 8×8 λ/2 UPA, one codebook beam per
/// antenna element, so T = 16·64 = 1024 beam pairs.
struct Scenario {
  ChannelKind channel = ChannelKind::kSinglePath;
  channel::NycClusterParams nyc;  ///< used when channel == kNycMultipath

  /// Angular sector shared by the channel path generator and the angular
  /// codebooks.
  channel::AngularSector sector;

  CodebookKind codebook = CodebookKind::kAngularGrid;

  index_t tx_grid_x = 4, tx_grid_y = 4;
  index_t rx_grid_x = 8, rx_grid_y = 8;

  /// Pre-beamforming SNR γ = Es/N0, **linear** (not dB: a CLI "--gamma-db G"
  /// maps to gamma = 10^(G/10)). 1.0 (0 dB) puts the aligned pair ≈30 dB
  /// above noise while off paths stay near the floor.
  real gamma = 1.0;

  /// Independent fades averaged per measurement slot (see mac::Session).
  index_t fades_per_measurement = 8;

  /// Master seed. Trial t of an experiment driver uses the independent
  /// stream randgen::Rng::stream(seed, t); results are bit-identical for a
  /// given seed regardless of `threads`.
  std::uint64_t seed = 1;
  index_t trials = 20;

  /// Worker threads the Monte-Carlo drivers spread trials over.
  /// 0 = auto (std::thread::hardware_concurrency()); 1 = pure serial path
  /// (no pool constructed). Any value yields identical results — this knob
  /// only trades wall-clock for cores.
  index_t threads = 0;

  /// Deterministic fault injection (DESIGN.md §11). Default-constructed =
  /// all faults off, in which case the drivers take the exact code path
  /// they took before the fault runtime existed (bit-identical outputs).
  /// Trial t draws its plan from the reserved fault key range
  /// (fault::fault_stream), never from the trial's measurement stream, so
  /// enabling one fault type does not shift any other randomness.
  fault::FaultConfig faults;

  index_t total_pairs() const {
    return tx_grid_x * tx_grid_y * rx_grid_x * rx_grid_y;
  }
};

/// Everything one Monte-Carlo trial needs: a realized link, the codebooks,
/// and the grading oracle.
struct TrialContext {
  channel::Link link;
  antenna::Codebook tx_codebook;
  antenna::Codebook rx_codebook;
  core::PairGainOracle oracle;
};

/// The scenario's TX/RX codebook pair (deterministic — no randomness).
/// Split out of make_trial so engines that run many links against the same
/// codebooks (sim/multicell.h) can build them once and share them
/// read-only across shards.
struct CodebookPair {
  antenna::Codebook tx;
  antenna::Codebook rx;
};
CodebookPair make_scenario_codebooks(const Scenario& scenario);

/// Draws one realized link of the scenario's channel kind between the
/// scenario's arrays. Reads only `scenario` (const) and draws only from
/// `rng`; safe to call concurrently with distinct Rng objects.
channel::Link make_scenario_link(const Scenario& scenario, randgen::Rng& rng);

/// Draws the trial-specific link and builds codebooks/oracle. Composes the
/// two helpers above; same thread-safety contract.
TrialContext make_trial(const Scenario& scenario, randgen::Rng& rng);

}  // namespace mmw::sim
