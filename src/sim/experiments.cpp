#include "sim/experiments.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>
#include <sstream>

#include "channel/temporal.h"
#include "core/thread_pool.h"
#include "fault/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/evaluation.h"

namespace mmw::sim {

namespace {

index_t rate_to_budget(real rate, index_t total) {
  MMW_REQUIRE_MSG(rate > 0.0 && rate <= 1.0,
                  "search rate must be in (0, 1]");
  return std::max<index_t>(1, static_cast<index_t>(std::llround(rate * total)));
}

// Runs body(t) for every trial t, serially when the scenario asks for one
// thread and across a pool otherwise. `body` must confine its side effects
// to trial-t slots: results are reduced in trial-index order afterwards, so
// the two paths are bit-identical — each trial draws from the shared-state-
// free stream Rng::stream(seed, t), not from a sequentially forked root.
//
// Returns the ascending indices of quarantined trials: when the scenario
// sets faults.quarantine_trials, a trial whose body throws is recorded here
// instead of aborting the run, and the caller MUST exclude those slots from
// its reduction (they may be partially written). Without the knob this
// returns empty and the first failure propagates — deterministically the
// lowest-index one (see core::ThreadPool::parallel_for).
template <typename Body>
std::vector<index_t> for_each_trial(const Scenario& scenario,
                                    const Body& body) {
  static const obs::Counter trials_counter =
      obs::Registry::global().counter("sim.trials");
  static const obs::Counter quarantined_counter =
      obs::Registry::global().counter("sim.trials.quarantined");
  const auto run_trial = [&](index_t t) {
    MMW_TRACE_SCOPE("sim.trial", "sim");
    if (obs::enabled()) trials_counter.add();
    body(t);
  };
  const index_t threads =
      std::min(core::resolve_thread_count(scenario.threads), scenario.trials);
  std::vector<index_t> quarantined;
  if (!scenario.faults.quarantine_trials) {
    if (threads <= 1) {
      for (index_t t = 0; t < scenario.trials; ++t) run_trial(t);
    } else {
      core::ThreadPool pool(threads);
      pool.parallel_for(0, scenario.trials, [&](index_t t) { run_trial(t); });
    }
    return quarantined;
  }
  if (threads <= 1) {
    for (index_t t = 0; t < scenario.trials; ++t) {
      try {
        run_trial(t);
      } catch (...) {  // parity with parallel_for_quarantined's net
        quarantined.push_back(t);
      }
    }
  } else {
    core::ThreadPool pool(threads);
    for (const core::IterationFailure& f : pool.parallel_for_quarantined(
             0, scenario.trials, [&](index_t t) { run_trial(t); }))
      quarantined.push_back(f.index);
  }
  if (!quarantined.empty()) {
    if (obs::enabled()) quarantined_counter.add(quarantined.size());
    std::cerr << "[sim] quarantined " << quarantined.size() << "/"
              << scenario.trials << " trials after in-trial failures\n";
  }
  return quarantined;
}

// The per-trial fault realization shared by every strategy in the trial
// (fairness: strategies face the same blockage onset, the same dropped
// slots, the same stressed solves). Drawn from the reserved fault key range
// so the trial's measurement stream is untouched.
struct TrialFaults {
  fault::FaultPlan plan;
  std::optional<channel::Link> degraded;  ///< set iff plan has a blockage

  const channel::Link* degraded_ptr() const {
    return degraded ? &*degraded : nullptr;
  }
};

std::optional<TrialFaults> draw_trial_faults(const Scenario& scenario,
                                             index_t trial,
                                             const TrialContext& ctx,
                                             index_t budget) {
  if (!scenario.faults.any()) return std::nullopt;
  randgen::Rng rng = fault::fault_stream(scenario.seed, 0, trial);
  std::optional<TrialFaults> out;
  out.emplace(TrialFaults{
      fault::FaultPlan::draw(scenario.faults, budget,
                             ctx.link.paths().size(), rng),
      std::nullopt});
  if (out->plan.has_blockage())
    out->degraded =
        channel::blocked_link(ctx.link, out->plan.path_power_scale());
  return out;
}

}  // namespace

EffectivenessResult run_search_effectiveness(
    const Scenario& scenario,
    const std::vector<const core::AlignmentStrategy*>& strategies,
    const std::vector<real>& search_rates) {
  MMW_REQUIRE(!strategies.empty());
  MMW_REQUIRE(!search_rates.empty());
  MMW_REQUIRE(scenario.trials >= 1);
  MMW_REQUIRE(std::is_sorted(search_rates.begin(), search_rates.end()));

  obs::TraceScope span("sim.run_search_effectiveness", "sim");
  span.arg("trials", static_cast<double>(scenario.trials));
  span.arg("strategies", static_cast<double>(strategies.size()));

  const index_t total = scenario.total_pairs();
  const index_t max_budget = rate_to_budget(search_rates.back(), total);

  // per_trial[t][strategy][rate] — each trial owns its slot, so trials can
  // run on any thread in any order.
  std::vector<std::vector<std::vector<real>>> per_trial(scenario.trials);

  const std::vector<index_t> quarantined =
      for_each_trial(scenario, [&](index_t t) {
        randgen::Rng trial_rng = randgen::Rng::stream(scenario.seed, t);
        const TrialContext ctx = make_trial(scenario, trial_rng);
        const std::optional<TrialFaults> faults =
            draw_trial_faults(scenario, t, ctx, max_budget);
        auto& mine = per_trial[t];
        mine.clear();  // may rerun after a quarantined partial write
        mine.reserve(strategies.size());
        for (const auto* strategy : strategies) {
          randgen::Rng run_rng = trial_rng.fork();
          mac::Session session(ctx.link, ctx.tx_codebook, ctx.rx_codebook,
                               scenario.gamma, max_budget, run_rng,
                               scenario.fades_per_measurement);
          fault::TrialFaultState fault_state;
          std::optional<fault::ScopedTrialFaults> fault_guard;
          if (faults) {
            session.arm_faults(&faults->plan, faults->degraded_ptr());
            fault_state.plan = &faults->plan;
            fault_guard.emplace(fault_state);
          }
          strategy->run(session);
          std::vector<real> losses;
          losses.reserve(search_rates.size());
          for (index_t k = 0; k < search_rates.size(); ++k) {
            const index_t budget = std::min<index_t>(
                rate_to_budget(search_rates[k], total),
                session.records().size());
            losses.push_back(
                loss_after(ctx.oracle, session.records(), budget));
          }
          mine.push_back(std::move(losses));
        }
      });

  // Reduce in trial-index order: parallel output == serial output.
  // Quarantined trials hold partial data and are skipped identically at
  // every thread count (the set is a function of the seed alone).
  std::vector<bool> skip(scenario.trials, false);
  for (const index_t t : quarantined) skip[t] = true;
  std::map<std::string, std::vector<std::vector<real>>> losses;
  for (const auto* s : strategies)
    losses[std::string(s->name())].assign(search_rates.size(), {});
  for (index_t t = 0; t < scenario.trials; ++t) {
    if (skip[t]) continue;
    for (index_t si = 0; si < strategies.size(); ++si) {
      auto& per_rate = losses[std::string(strategies[si]->name())];
      for (index_t k = 0; k < search_rates.size(); ++k)
        per_rate[k].push_back(per_trial[t][si][k]);
    }
  }
  MMW_REQUIRE_MSG(quarantined.size() < scenario.trials,
                  "every trial was quarantined — nothing to summarize");

  EffectivenessResult out;
  out.search_rates = search_rates;
  out.quarantined_trials = quarantined;
  for (auto& [name, per_rate] : losses) {
    std::vector<Summary> row;
    row.reserve(per_rate.size());
    for (const auto& sample : per_rate) row.push_back(summarize(sample));
    out.loss_db.emplace(name, std::move(row));
  }
  return out;
}

CostEfficiencyResult run_cost_efficiency(
    const Scenario& scenario,
    const std::vector<const core::AlignmentStrategy*>& strategies,
    const std::vector<real>& target_loss_db) {
  MMW_REQUIRE(!strategies.empty());
  MMW_REQUIRE(!target_loss_db.empty());
  MMW_REQUIRE(scenario.trials >= 1);

  obs::TraceScope span("sim.run_cost_efficiency", "sim");
  span.arg("trials", static_cast<double>(scenario.trials));
  span.arg("strategies", static_cast<double>(strategies.size()));

  const index_t total = scenario.total_pairs();

  // per_trial[t][strategy][target] — see run_search_effectiveness.
  std::vector<std::vector<std::vector<real>>> per_trial(scenario.trials);

  const std::vector<index_t> quarantined =
      for_each_trial(scenario, [&](index_t t) {
        randgen::Rng trial_rng = randgen::Rng::stream(scenario.seed, t);
        const TrialContext ctx = make_trial(scenario, trial_rng);
        const std::optional<TrialFaults> faults =
            draw_trial_faults(scenario, t, ctx, total);
        auto& mine = per_trial[t];
        mine.clear();  // may rerun after a quarantined partial write
        mine.reserve(strategies.size());
        for (const auto* strategy : strategies) {
          randgen::Rng run_rng = trial_rng.fork();
          mac::Session session(ctx.link, ctx.tx_codebook, ctx.rx_codebook,
                               scenario.gamma, total, run_rng,
                               scenario.fades_per_measurement);
          fault::TrialFaultState fault_state;
          std::optional<fault::ScopedTrialFaults> fault_guard;
          if (faults) {
            session.arm_faults(&faults->plan, faults->degraded_ptr());
            fault_state.plan = &faults->plan;
            fault_guard.emplace(fault_state);
          }
          strategy->run(session);
          std::vector<real> needed_rates;
          needed_rates.reserve(target_loss_db.size());
          for (index_t k = 0; k < target_loss_db.size(); ++k) {
            const auto needed = measurements_to_reach(
                ctx.oracle, session.records(), target_loss_db[k]);
            needed_rates.push_back(
                needed
                    ? static_cast<real>(*needed) / static_cast<real>(total)
                    : 1.0);
          }
          mine.push_back(std::move(needed_rates));
        }
      });

  std::vector<bool> skip(scenario.trials, false);
  for (const index_t t : quarantined) skip[t] = true;
  std::map<std::string, std::vector<std::vector<real>>> rates;
  for (const auto* s : strategies)
    rates[std::string(s->name())].assign(target_loss_db.size(), {});
  for (index_t t = 0; t < scenario.trials; ++t) {
    if (skip[t]) continue;
    for (index_t si = 0; si < strategies.size(); ++si) {
      auto& per_target = rates[std::string(strategies[si]->name())];
      for (index_t k = 0; k < target_loss_db.size(); ++k)
        per_target[k].push_back(per_trial[t][si][k]);
    }
  }
  MMW_REQUIRE_MSG(quarantined.size() < scenario.trials,
                  "every trial was quarantined — nothing to summarize");

  CostEfficiencyResult out;
  out.target_loss_db = target_loss_db;
  out.quarantined_trials = quarantined;
  for (auto& [name, per_target] : rates) {
    std::vector<Summary> row;
    row.reserve(per_target.size());
    for (const auto& sample : per_target) row.push_back(summarize(sample));
    out.required_rate.emplace(name, std::move(row));
  }
  return out;
}

std::string render_table(
    const std::string& x_label, const std::vector<real>& xs,
    const std::map<std::string, std::vector<Summary>>& series) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << x_label;
  for (const auto& [name, values] : series) {
    MMW_REQUIRE_MSG(values.size() == xs.size(),
                    "series length must match x axis");
    os << '\t' << name << " (mean±ci95)";
  }
  os << '\n';
  for (index_t i = 0; i < xs.size(); ++i) {
    os << xs[i];
    for (const auto& [name, values] : series)
      os << '\t' << values[i].mean << "±" << values[i].ci95_half_width();
    os << '\n';
  }
  return os.str();
}

std::string render_csv(
    const std::string& x_label, const std::vector<real>& xs,
    const std::map<std::string, std::vector<Summary>>& series) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << x_label;
  for (const auto& [name, values] : series) {
    MMW_REQUIRE(values.size() == xs.size());
    os << ',' << name;
  }
  os << '\n';
  for (index_t i = 0; i < xs.size(); ++i) {
    os << xs[i];
    for (const auto& [name, values] : series) os << ',' << values[i].mean;
    os << '\n';
  }
  return os.str();
}

}  // namespace mmw::sim
