#include "sim/experiments.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/evaluation.h"

namespace mmw::sim {

namespace {

index_t rate_to_budget(real rate, index_t total) {
  MMW_REQUIRE_MSG(rate > 0.0 && rate <= 1.0,
                  "search rate must be in (0, 1]");
  return std::max<index_t>(1, static_cast<index_t>(std::llround(rate * total)));
}

}  // namespace

EffectivenessResult run_search_effectiveness(
    const Scenario& scenario,
    const std::vector<const core::AlignmentStrategy*>& strategies,
    const std::vector<real>& search_rates) {
  MMW_REQUIRE(!strategies.empty());
  MMW_REQUIRE(!search_rates.empty());
  MMW_REQUIRE(scenario.trials >= 1);
  MMW_REQUIRE(std::is_sorted(search_rates.begin(), search_rates.end()));

  const index_t total = scenario.total_pairs();
  const index_t max_budget = rate_to_budget(search_rates.back(), total);

  // losses[strategy][rate][trial]
  std::map<std::string, std::vector<std::vector<real>>> losses;
  for (const auto* s : strategies)
    losses[std::string(s->name())].assign(search_rates.size(), {});

  randgen::Rng root(scenario.seed);
  for (index_t t = 0; t < scenario.trials; ++t) {
    randgen::Rng trial_rng = root.fork();
    const TrialContext ctx = make_trial(scenario, trial_rng);
    for (const auto* strategy : strategies) {
      randgen::Rng run_rng = trial_rng.fork();
      mac::Session session(ctx.link, ctx.tx_codebook, ctx.rx_codebook,
                           scenario.gamma, max_budget, run_rng,
                           scenario.fades_per_measurement);
      strategy->run(session);
      auto& per_rate = losses[std::string(strategy->name())];
      for (index_t k = 0; k < search_rates.size(); ++k) {
        const index_t budget = std::min<index_t>(
            rate_to_budget(search_rates[k], total),
            session.records().size());
        per_rate[k].push_back(
            loss_after(ctx.oracle, session.records(), budget));
      }
    }
  }

  EffectivenessResult out;
  out.search_rates = search_rates;
  for (auto& [name, per_rate] : losses) {
    std::vector<Summary> row;
    row.reserve(per_rate.size());
    for (const auto& sample : per_rate) row.push_back(summarize(sample));
    out.loss_db.emplace(name, std::move(row));
  }
  return out;
}

CostEfficiencyResult run_cost_efficiency(
    const Scenario& scenario,
    const std::vector<const core::AlignmentStrategy*>& strategies,
    const std::vector<real>& target_loss_db) {
  MMW_REQUIRE(!strategies.empty());
  MMW_REQUIRE(!target_loss_db.empty());
  MMW_REQUIRE(scenario.trials >= 1);

  const index_t total = scenario.total_pairs();
  std::map<std::string, std::vector<std::vector<real>>> rates;
  for (const auto* s : strategies)
    rates[std::string(s->name())].assign(target_loss_db.size(), {});

  randgen::Rng root(scenario.seed);
  for (index_t t = 0; t < scenario.trials; ++t) {
    randgen::Rng trial_rng = root.fork();
    const TrialContext ctx = make_trial(scenario, trial_rng);
    for (const auto* strategy : strategies) {
      randgen::Rng run_rng = trial_rng.fork();
      mac::Session session(ctx.link, ctx.tx_codebook, ctx.rx_codebook,
                           scenario.gamma, total, run_rng,
                           scenario.fades_per_measurement);
      strategy->run(session);
      auto& per_target = rates[std::string(strategy->name())];
      for (index_t k = 0; k < target_loss_db.size(); ++k) {
        const auto needed = measurements_to_reach(
            ctx.oracle, session.records(), target_loss_db[k]);
        per_target[k].push_back(
            needed ? static_cast<real>(*needed) / static_cast<real>(total)
                   : 1.0);
      }
    }
  }

  CostEfficiencyResult out;
  out.target_loss_db = target_loss_db;
  for (auto& [name, per_target] : rates) {
    std::vector<Summary> row;
    row.reserve(per_target.size());
    for (const auto& sample : per_target) row.push_back(summarize(sample));
    out.required_rate.emplace(name, std::move(row));
  }
  return out;
}

std::string render_table(
    const std::string& x_label, const std::vector<real>& xs,
    const std::map<std::string, std::vector<Summary>>& series) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << x_label;
  for (const auto& [name, values] : series) {
    MMW_REQUIRE_MSG(values.size() == xs.size(),
                    "series length must match x axis");
    os << '\t' << name << " (mean±ci95)";
  }
  os << '\n';
  for (index_t i = 0; i < xs.size(); ++i) {
    os << xs[i];
    for (const auto& [name, values] : series)
      os << '\t' << values[i].mean << "±" << values[i].ci95_half_width();
    os << '\n';
  }
  return os.str();
}

std::string render_csv(
    const std::string& x_label, const std::vector<real>& xs,
    const std::map<std::string, std::vector<Summary>>& series) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << x_label;
  for (const auto& [name, values] : series) {
    MMW_REQUIRE(values.size() == xs.size());
    os << ',' << name;
  }
  os << '\n';
  for (index_t i = 0; i < xs.size(); ++i) {
    os << xs[i];
    for (const auto& [name, values] : series) os << ',' << values[i].mean;
    os << '\n';
  }
  return os.str();
}

}  // namespace mmw::sim
