// The paper's two experiment families, as reusable Monte-Carlo drivers:
//  - search effectiveness: mean SNR loss vs search rate (Figs. 5 & 6);
//  - cost efficiency: required search rate vs target loss (Figs. 7 & 8).
//
// Both drivers spread trials over a core::ThreadPool sized by
// Scenario::threads (0 = all cores, 1 = serial fallback with no pool).
// Determinism contract: trial t draws from randgen::Rng::stream(seed, t)
// and per-trial results are reduced in trial-index order, so for a fixed
// Scenario the results — down to render_csv bytes — are identical for any
// thread count. tests/sim/parallel_determinism_test.cpp asserts this.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "sim/scenario.h"
#include "sim/stats.h"

namespace mmw::sim {

/// Result of a search-effectiveness sweep: per strategy, one loss summary
/// per requested search rate.
struct EffectivenessResult {
  std::vector<real> search_rates;  ///< fractions of T, ascending
  std::map<std::string, std::vector<Summary>> loss_db;
  /// Trials excluded from every summary because a strategy threw while the
  /// scenario ran with faults.quarantine_trials set (ascending, empty
  /// otherwise). The same set is excluded at every thread count.
  std::vector<index_t> quarantined_trials;
};

/// Runs every strategy once per trial with the largest budget and grades
/// each requested search rate on the trajectory prefix — all strategies
/// here are budget-oblivious (greedy sequences), so prefix grading is exact.
/// Trials run in parallel per Scenario::threads; strategies must be
/// const-callable from multiple threads (see core::AlignmentStrategy).
EffectivenessResult run_search_effectiveness(
    const Scenario& scenario,
    const std::vector<const core::AlignmentStrategy*>& strategies,
    const std::vector<real>& search_rates);

/// Result of a cost-efficiency sweep: per strategy, the search rate needed
/// to reach each target loss (runs that never reach a target are charged
/// the full 100% rate, matching "keep searching until the loss is met").
struct CostEfficiencyResult {
  std::vector<real> target_loss_db;  ///< descending in difficulty
  std::map<std::string, std::vector<Summary>> required_rate;
  /// See EffectivenessResult::quarantined_trials.
  std::vector<index_t> quarantined_trials;
};

CostEfficiencyResult run_cost_efficiency(
    const Scenario& scenario,
    const std::vector<const core::AlignmentStrategy*>& strategies,
    const std::vector<real>& target_loss_db);

/// Renders an aligned ASCII table: one row per x value, one column per
/// strategy (mean ± 95% CI). `x_label` captions the first column.
std::string render_table(
    const std::string& x_label, const std::vector<real>& xs,
    const std::map<std::string, std::vector<Summary>>& series);

/// Renders the same data as CSV (mean values only).
std::string render_csv(
    const std::string& x_label, const std::vector<real>& xs,
    const std::map<std::string, std::vector<Summary>>& series);

}  // namespace mmw::sim
