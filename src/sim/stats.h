// Small statistics helpers for Monte-Carlo aggregation.
#pragma once

#include <span>
#include <vector>

#include "linalg/common.h"

namespace mmw::sim {

/// Summary statistics of a sample.
struct Summary {
  index_t count = 0;
  real mean = 0.0;
  real stddev = 0.0;      ///< sample standard deviation (n−1)
  real minimum = 0.0;
  real maximum = 0.0;
  real median = 0.0;

  /// Half-width of the normal-approximation 95% confidence interval of the
  /// mean: 1.96·s/√n (0 when n < 2).
  real ci95_half_width() const;
};

/// Computes summary statistics. Precondition: non-empty sample.
Summary summarize(std::span<const real> values);

/// Arithmetic mean. Precondition: non-empty.
real mean(std::span<const real> values);

}  // namespace mmw::sim
