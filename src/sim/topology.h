// Cell-site geometry for the sharded multi-cell engine: hexagonal and
// square-grid base-station layouts, deterministic per-user placement, and
// the power-law pathloss coupling between an interfering BS and a victim
// user.
//
// Thread-safety: Topology is immutable after build() — all queries are
// const and safe to share across shards. place_user() draws only from the
// Rng it is handed (exactly two uniform variates), so per-shard streams
// keep user drops reproducible and thread-count-independent.
#pragma once

#include <vector>

#include "linalg/common.h"
#include "randgen/rng.h"

namespace mmw::sim {

/// Base-station layout of the multi-cell deployment.
enum class TopologyKind {
  /// Hexagonal lattice filled in spiral ring order from the center site
  /// (ring k holds 6k sites), the classic cellular tessellation. Inter-site
  /// distance is √3 · cell_radius.
  kHexagonal,
  /// Square lattice filled row-major over the smallest near-square box,
  /// centered on the origin. Inter-site distance is 2 · cell_radius.
  kSquareGrid,
};

/// Deployment knobs. Defaults give the textbook 7-site hex cluster
/// (one center cell plus its first interference ring).
struct TopologyConfig {
  TopologyKind kind = TopologyKind::kHexagonal;
  index_t cells = 7;
  index_t users_per_cell = 1;

  /// Maximum BS-to-user drop distance (meters); also sets the inter-site
  /// distance through the lattice constant of `kind`.
  real cell_radius_m = 100.0;

  /// Pathloss exponent of the coupling law (urban mmWave macro ≈ 3).
  real pathloss_exponent = 3.0;

  /// Users never drop closer to their BS than this, and no interferer
  /// distance is evaluated below it (keeps the power law finite).
  real min_distance_m = 10.0;
};

/// One base-station site (meters, deployment plane).
struct CellSite {
  real x = 0.0;
  real y = 0.0;
};

/// One dropped user (absolute coordinates, meters).
struct UserPlacement {
  real x = 0.0;
  real y = 0.0;
};

/// An immutable realized deployment: site coordinates plus the coupling
/// law. Built once per run and shared read-only by every shard.
class Topology {
 public:
  /// Lays out `config.cells` sites of the requested lattice.
  /// Preconditions: cells ≥ 1, users_per_cell ≥ 1,
  /// 0 < min_distance_m < cell_radius_m, pathloss_exponent ≥ 0.
  static Topology build(const TopologyConfig& config);

  const TopologyConfig& config() const { return config_; }
  index_t n_cells() const { return sites_.size(); }
  const CellSite& site(index_t cell) const;

  /// Euclidean distance (meters) between site `cell` and a user position,
  /// clamped below by min_distance_m.
  real distance(index_t cell, const UserPlacement& user) const;

  /// Drops one user uniformly on the annulus
  /// [min_distance_m, cell_radius_m) around its serving site. Consumes
  /// exactly two uniform draws from `rng`, so callers can rely on a fixed
  /// stream offset regardless of the drop's outcome.
  UserPlacement place_user(index_t cell, randgen::Rng& rng) const;

  /// Serving-link pathloss gain of a user relative to the closest possible
  /// drop: (min_distance_m / d)^α ∈ (0, 1], equal to 1 at the min-distance
  /// clamp. The serving engine scales each session's effective SNR by this,
  /// so cell-edge users align against a genuinely lower γ than cell-center
  /// users (the heterogeneity a city-scale run is supposed to have).
  real pathloss_gain(index_t cell, const UserPlacement& user) const;

  /// Relative mean power of interfering site `interferer` at a victim user
  /// served by `serving`: (d_serving / d_interferer)^α with both distances
  /// clamped by min_distance_m. Equals 1 when the interferer is as far as
  /// the serving BS; cell-edge users see couplings near 1, cell-center
  /// users see them fall off by the power law. Precondition:
  /// interferer ≠ serving.
  real coupling(index_t interferer, index_t serving,
                const UserPlacement& user) const;

 private:
  Topology(TopologyConfig config, std::vector<CellSite> sites)
      : config_(config), sites_(std::move(sites)) {}

  TopologyConfig config_;
  std::vector<CellSite> sites_;
};

}  // namespace mmw::sim
