#include "sim/robustness.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>
#include <sstream>

#include "channel/temporal.h"
#include "core/thread_pool.h"
#include "estimation/robust.h"
#include "fault/context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/evaluation.h"

namespace mmw::sim {

namespace {

index_t rate_to_budget(real rate, index_t total) {
  MMW_REQUIRE_MSG(rate > 0.0 && rate <= 1.0,
                  "budget rate must be in (0, 1]");
  return std::max<index_t>(1,
                           static_cast<index_t>(std::llround(rate * total)));
}

/// One (trial, strategy) cell of the matrix, owned by its trial slot.
struct RunOutcome {
  real loss_db = 0.0;
  bool outage = false;
  bool recovered = false;
  index_t recovery_slots = 0;
  std::array<std::uint64_t, 4> rung_counts{};
  std::uint64_t stressed_solves = 0;
};

}  // namespace

std::vector<FaultCaseResult> run_fault_robustness(
    const RobustnessConfig& config,
    const std::vector<const core::AlignmentStrategy*>& strategies,
    const std::vector<FaultCase>& cases) {
  MMW_REQUIRE(!strategies.empty());
  MMW_REQUIRE(!cases.empty());
  MMW_REQUIRE(config.scenario.trials >= 1);
  MMW_REQUIRE_MSG(config.failure_loss_db > 0.0,
                  "failure threshold must be positive dB");

  const Scenario& sc = config.scenario;

  obs::TraceScope span("sim.run_fault_robustness", "sim");
  span.arg("trials", static_cast<double>(sc.trials));
  span.arg("strategies", static_cast<double>(strategies.size()));
  span.arg("cases", static_cast<double>(cases.size()));

  const index_t total = sc.total_pairs();
  const index_t budget = rate_to_budget(config.budget_rate, total);

  std::vector<FaultCaseResult> results;
  results.reserve(cases.size());

  for (index_t ci = 0; ci < cases.size(); ++ci) {
    const FaultCase& fault_case = cases[ci];

    // per_trial[t][strategy] — each trial owns its slot (reduced in
    // trial-index order below, so parallel output == serial output).
    std::vector<std::vector<RunOutcome>> per_trial(sc.trials);

    const auto run_trial = [&](index_t t) {
      MMW_TRACE_SCOPE("sim.robustness.trial", "sim");
      randgen::Rng trial_rng = randgen::Rng::stream(sc.seed, t);
      const TrialContext ctx = make_trial(sc, trial_rng);

      // The fault entity is the CASE index: independent realizations per
      // case, one shared plan per (case, trial) across strategies.
      std::optional<fault::FaultPlan> plan;
      std::optional<channel::Link> degraded;
      std::optional<core::PairGainOracle> degraded_oracle;
      if (fault_case.faults.any()) {
        randgen::Rng fault_rng = fault::fault_stream(sc.seed, ci, t);
        plan.emplace(fault::FaultPlan::draw(fault_case.faults, budget,
                                            ctx.link.paths().size(),
                                            fault_rng));
        if (plan->has_blockage()) {
          degraded =
              channel::blocked_link(ctx.link, plan->path_power_scale());
          // The final pair is held on the POST-onset link, so it is graded
          // against the degraded truth — a strategy that re-aligns onto a
          // surviving path is rewarded, one that clings to the blocked
          // dominant path is not.
          degraded_oracle.emplace(*degraded, ctx.tx_codebook,
                                  ctx.rx_codebook);
        }
      }
      const core::PairGainOracle& grade_oracle =
          degraded_oracle ? *degraded_oracle : ctx.oracle;

      auto& mine = per_trial[t];
      mine.clear();  // may rerun after a quarantined partial write
      mine.reserve(strategies.size());
      for (const auto* strategy : strategies) {
        randgen::Rng run_rng = trial_rng.fork();
        mac::Session session(ctx.link, ctx.tx_codebook, ctx.rx_codebook,
                             sc.gamma, budget, run_rng,
                             sc.fades_per_measurement);
        fault::TrialFaultState fault_state;
        std::optional<fault::ScopedTrialFaults> fault_guard;
        if (plan) {
          session.arm_faults(&*plan, degraded ? &*degraded : nullptr);
          fault_state.plan = &*plan;
          fault_guard.emplace(fault_state);
        }
        strategy->run(session);

        RunOutcome out;
        if (config.realign) {
          const mac::Session::RealignmentReport report =
              session.verify_and_realign(config.realignment);
          out.outage = report.outage;
          out.recovered = report.recovered;
          out.recovery_slots = session.recovery_slots();
          out.loss_db = grade_oracle.loss_db(report.tx_beam, report.rx_beam);
        } else {
          const auto best = session.best_measured();
          MMW_REQUIRE_MSG(best.has_value(),
                          "strategy took no measurements");
          out.loss_db = grade_oracle.loss_db(best->tx_beam, best->rx_beam);
        }
        out.rung_counts = fault_state.rung_counts;
        out.stressed_solves = fault_state.stressed_solves;
        mine.push_back(out);
      }
    };

    const index_t threads =
        std::min(core::resolve_thread_count(sc.threads), sc.trials);
    std::vector<index_t> quarantined;
    if (!fault_case.faults.quarantine_trials) {
      if (threads <= 1) {
        for (index_t t = 0; t < sc.trials; ++t) run_trial(t);
      } else {
        core::ThreadPool pool(threads);
        pool.parallel_for(0, sc.trials, [&](index_t t) { run_trial(t); });
      }
    } else if (threads <= 1) {
      for (index_t t = 0; t < sc.trials; ++t) {
        try {
          run_trial(t);
        } catch (...) {  // parity with parallel_for_quarantined's net
          quarantined.push_back(t);
        }
      }
    } else {
      core::ThreadPool pool(threads);
      for (const core::IterationFailure& f : pool.parallel_for_quarantined(
               0, sc.trials, [&](index_t t) { run_trial(t); }))
        quarantined.push_back(f.index);
    }
    if (!quarantined.empty()) {
      static const obs::Counter quarantined_counter =
          obs::Registry::global().counter("sim.trials.quarantined");
      if (obs::enabled()) quarantined_counter.add(quarantined.size());
      std::cerr << "[sim] case '" << fault_case.name << "': quarantined "
                << quarantined.size() << "/" << sc.trials << " trials\n";
    }
    MMW_REQUIRE_MSG(quarantined.size() < sc.trials,
                    "every trial was quarantined — nothing to summarize");

    // Reduce in trial-index order, skipping quarantined slots identically
    // at every thread count (the set is a function of the seed alone).
    std::vector<bool> skip(sc.trials, false);
    for (const index_t t : quarantined) skip[t] = true;

    FaultCaseResult result;
    result.name = fault_case.name;
    result.quarantined = quarantined.size();
    for (index_t si = 0; si < strategies.size(); ++si) {
      std::vector<real> losses, slots;
      index_t outages = 0, recoveries = 0, failures = 0, included = 0;
      StrategyRobustness sr;
      for (index_t t = 0; t < sc.trials; ++t) {
        if (skip[t]) continue;
        const RunOutcome& out = per_trial[t][si];
        ++included;
        losses.push_back(out.loss_db);
        slots.push_back(static_cast<real>(out.recovery_slots));
        if (out.outage) ++outages;
        if (out.recovered) ++recoveries;
        if (out.loss_db > config.failure_loss_db) ++failures;
        for (index_t r = 0; r < sr.fallback_rungs.size(); ++r)
          sr.fallback_rungs[r] += out.rung_counts[r];
        sr.stressed_solves += out.stressed_solves;
      }
      sr.trials = included;
      sr.loss_db = summarize(losses);
      sr.recovery_slots = summarize(slots);
      const real n = static_cast<real>(included);
      sr.failure_rate = static_cast<real>(failures) / n;
      sr.outage_rate = static_cast<real>(outages) / n;
      sr.recovery_rate =
          outages > 0 ? static_cast<real>(recoveries) /
                            static_cast<real>(outages)
                      : 0.0;
      result.by_strategy.emplace(std::string(strategies[si]->name()),
                                 std::move(sr));
    }
    results.push_back(std::move(result));
  }
  return results;
}

std::string render_robustness_csv(
    const std::vector<FaultCaseResult>& results) {
  MMW_REQUIRE(!results.empty());
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << "fault_case";
  for (const auto& [name, sr] : results.front().by_strategy)
    os << ',' << name << "_loss_db" << ',' << name << "_fail_rate" << ','
       << name << "_outage_rate" << ',' << name << "_recovery_rate" << ','
       << name << "_recovery_slots" << ',' << name << "_fallback_em" << ','
       << name << "_fallback_sample" << ',' << name << "_fallback_uniform";
  os << ",quarantined\n";
  for (const FaultCaseResult& r : results) {
    MMW_REQUIRE_MSG(
        r.by_strategy.size() == results.front().by_strategy.size(),
        "every case must cover the same strategies");
    os << r.name;
    for (const auto& [name, sr] : r.by_strategy) {
      using Rung = estimation::SolveRung;
      os << ',' << sr.loss_db.mean << ',' << sr.failure_rate << ','
         << sr.outage_rate << ',' << sr.recovery_rate << ','
         << sr.recovery_slots.mean << ','
         << sr.fallback_rungs[static_cast<int>(Rung::kEm)] << ','
         << sr.fallback_rungs[static_cast<int>(Rung::kSample)] << ','
         << sr.fallback_rungs[static_cast<int>(Rung::kUniform)];
    }
    os << ',' << r.quarantined << '\n';
  }
  return os.str();
}

}  // namespace mmw::sim
