#include "sim/scenario.h"

namespace mmw::sim {

TrialContext make_trial(const Scenario& scenario, randgen::Rng& rng) {
  const antenna::ArrayGeometry tx =
      antenna::ArrayGeometry::upa(scenario.tx_grid_x, scenario.tx_grid_y);
  const antenna::ArrayGeometry rx =
      antenna::ArrayGeometry::upa(scenario.rx_grid_x, scenario.rx_grid_y);

  channel::NycClusterParams nyc = scenario.nyc;
  nyc.sector = scenario.sector;

  channel::Link link =
      scenario.channel == ChannelKind::kSinglePath
          ? channel::make_single_path_link(tx, rx, rng, scenario.sector)
          : channel::make_nyc_multipath_link(tx, rx, rng, nyc);

  auto make_codebook = [&](const antenna::ArrayGeometry& geo) {
    if (scenario.codebook == CodebookKind::kDft)
      return antenna::Codebook::dft(geo);
    return antenna::Codebook::angular_grid(
        geo, geo.grid_x(), geo.grid_y(), scenario.sector.az_min,
        scenario.sector.az_max, scenario.sector.el_min,
        scenario.sector.el_max);
  };

  antenna::Codebook tx_cb = make_codebook(tx);
  antenna::Codebook rx_cb = make_codebook(rx);
  core::PairGainOracle oracle(link, tx_cb, rx_cb);
  return TrialContext{std::move(link), std::move(tx_cb), std::move(rx_cb),
                      std::move(oracle)};
}

}  // namespace mmw::sim
