#include "sim/scenario.h"

namespace mmw::sim {

CodebookPair make_scenario_codebooks(const Scenario& scenario) {
  const antenna::ArrayGeometry tx =
      antenna::ArrayGeometry::upa(scenario.tx_grid_x, scenario.tx_grid_y);
  const antenna::ArrayGeometry rx =
      antenna::ArrayGeometry::upa(scenario.rx_grid_x, scenario.rx_grid_y);
  auto make_codebook = [&](const antenna::ArrayGeometry& geo) {
    if (scenario.codebook == CodebookKind::kDft)
      return antenna::Codebook::dft(geo);
    return antenna::Codebook::angular_grid(
        geo, geo.grid_x(), geo.grid_y(), scenario.sector.az_min,
        scenario.sector.az_max, scenario.sector.el_min,
        scenario.sector.el_max);
  };
  return CodebookPair{make_codebook(tx), make_codebook(rx)};
}

channel::Link make_scenario_link(const Scenario& scenario,
                                 randgen::Rng& rng) {
  const antenna::ArrayGeometry tx =
      antenna::ArrayGeometry::upa(scenario.tx_grid_x, scenario.tx_grid_y);
  const antenna::ArrayGeometry rx =
      antenna::ArrayGeometry::upa(scenario.rx_grid_x, scenario.rx_grid_y);
  if (scenario.channel == ChannelKind::kSinglePath)
    return channel::make_single_path_link(tx, rx, rng, scenario.sector);
  channel::NycClusterParams nyc = scenario.nyc;
  nyc.sector = scenario.sector;
  return channel::make_nyc_multipath_link(tx, rx, rng, nyc);
}

TrialContext make_trial(const Scenario& scenario, randgen::Rng& rng) {
  channel::Link link = make_scenario_link(scenario, rng);
  CodebookPair cbs = make_scenario_codebooks(scenario);
  core::PairGainOracle oracle(link, cbs.tx, cbs.rx);
  return TrialContext{std::move(link), std::move(cbs.tx), std::move(cbs.rx),
                      std::move(oracle)};
}

}  // namespace mmw::sim
