#include "sim/mobility.h"

#include <algorithm>
#include <cmath>

namespace mmw::sim {

Trajectory::Trajectory(const Topology& topology, real speed_mps,
                       real epoch_seconds, std::uint64_t seed,
                       std::uint64_t user)
    : speed_(speed_mps),
      epoch_seconds_(epoch_seconds),
      seed_(seed),
      user_(user) {
  MMW_REQUIRE(speed_mps >= 0.0);
  MMW_REQUIRE(epoch_seconds >= 0.0);
  const real r = topology.config().cell_radius_m;
  min_x_ = max_x_ = topology.site(0).x;
  min_y_ = max_y_ = topology.site(0).y;
  for (index_t c = 0; c < topology.n_cells(); ++c) {
    min_x_ = std::min(min_x_, topology.site(c).x);
    max_x_ = std::max(max_x_, topology.site(c).x);
    min_y_ = std::min(min_y_, topology.site(c).y);
    max_y_ = std::max(max_y_, topology.site(c).y);
  }
  min_x_ -= r;
  max_x_ += r;
  min_y_ -= r;
  max_y_ += r;
  waypoints_.push_back(draw_waypoint(0));
  cumulative_m_.push_back(0.0);
}

UserPlacement Trajectory::draw_waypoint(index_t w) const {
  randgen::Rng rng = randgen::Rng::stream(
      seed_, randgen::lanes::kTrajectoryLane, user_,
      static_cast<std::uint64_t>(w));
  return {rng.uniform(min_x_, max_x_), rng.uniform(min_y_, max_y_)};
}

void Trajectory::ensure_waypoints(real distance) const {
  while (cumulative_m_.back() <= distance) {
    const UserPlacement next = draw_waypoint(waypoints_.size());
    const UserPlacement& prev = waypoints_.back();
    const real leg = std::hypot(next.x - prev.x, next.y - prev.y);
    // A zero-length leg (astronomically unlikely but possible) would stall
    // the walk; skip ahead on the same stream index sequence by nudging the
    // cumulative length so the loop always progresses.
    waypoints_.push_back(next);
    cumulative_m_.push_back(cumulative_m_.back() + std::max(leg, 1e-9));
  }
}

UserPlacement Trajectory::position_at(index_t epoch) const {
  const real distance =
      speed_ * epoch_seconds_ * static_cast<real>(epoch);
  ensure_waypoints(distance);
  // Find the leg containing `distance`: cumulative_m_[w] ≤ d < [w+1].
  const auto it = std::upper_bound(cumulative_m_.begin(), cumulative_m_.end(),
                                   distance);
  const index_t leg = static_cast<index_t>(it - cumulative_m_.begin()) - 1;
  const UserPlacement& a = waypoints_[leg];
  const UserPlacement& b = waypoints_[leg + 1];
  const real len = cumulative_m_[leg + 1] - cumulative_m_[leg];
  const real t = (distance - cumulative_m_[leg]) / len;
  return {a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
}

index_t nearest_site(const Topology& topology, const UserPlacement& position) {
  index_t best = 0;
  real best_gain = topology.pathloss_gain(0, position);
  for (index_t c = 1; c < topology.n_cells(); ++c) {
    const real g = topology.pathloss_gain(c, position);
    if (g > best_gain) {  // ties → lowest index
      best = c;
      best_gain = g;
    }
  }
  return best;
}

index_t select_serving_site(const Topology& topology,
                            const UserPlacement& position, index_t current,
                            real hysteresis_db) {
  MMW_REQUIRE(current < topology.n_cells());
  const index_t best = nearest_site(topology, position);
  if (best == current) return current;
  const real margin =
      10.0 * std::log10(topology.pathloss_gain(best, position) /
                        topology.pathloss_gain(current, position));
  return margin > hysteresis_db ? best : current;
}

}  // namespace mmw::sim
