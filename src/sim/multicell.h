// Sharded multi-cell Monte-Carlo engine: a topology of base stations each
// runs an independent beam-alignment session against its attached users,
// with inter-cell interference folded into the matched-filter noise floor
// of every measurement (mac::Session::set_interference).
//
// Determinism contract (DESIGN.md §9): work is sharded at (cell × trial)
// granularity over core::ThreadPool. Every random quantity inside a shard
// comes from a shared-state-free three-key stream
// Rng::stream(seed, key, user, trial) — serving links, user drops, cross
// links, and the interferers' active TX beams all have fixed key spaces —
// and shard results are reduced in shard-index order, so results down to
// rendered CSV bytes are identical for any thread count
// (tests/sim/multicell_test.cpp asserts this).
//
// Interference model: while cell c's user trains, every other BS o is
// serving traffic on one active TX beam (held for the victim's alignment
// epoch, redrawn per trial). The mean interference power landing on victim
// RX codeword v is
//   I_v = scale · (d_serving/d_o)^α · vᴴ Q^cross_{o,u_o} v,
// computed for the whole RX codebook in one pass through the existing
// factored codebook scoring (the cross covariance for one TX beam has rank
// ≤ #paths, so it is built as a B Q_r Bᴴ factor via thin QR of the scaled
// RX steering vectors). The session then draws each fade's additive term
// from CN(0, 1/γ + I_v).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "sim/scenario.h"
#include "sim/stats.h"
#include "sim/topology.h"

namespace mmw::sim {

/// Configuration of one multi-cell run. The embedded Scenario supplies the
/// per-link knobs (channel kind, arrays, codebooks, gamma, fades) plus the
/// engine-wide seed/trials/threads; the topology supplies the deployment.
struct MultiCellConfig {
  TopologyConfig topology;
  Scenario scenario;

  /// Grading point: the search rate (fraction of T = |U|·|V|) whose prefix
  /// loss is reported per session. Must be in (0, budget_rate].
  real search_rate = 0.10;

  /// Training budget as a fraction of T (the trajectory is graded at
  /// search_rate and scanned for target_loss_db up to this rate). Sessions
  /// that never reach the target within the budget are charged the full
  /// 100% rate, as in run_cost_efficiency.
  real budget_rate = 0.35;

  /// Loss target (dB) of the required-search-rate metric.
  real target_loss_db = 3.0;

  /// Global interference-to-signal knob multiplying every coupling; 0
  /// disables interference entirely (isolated-cells baseline).
  real interference_scale = 1.0;
};

/// Pooled result over every (cell, user, trial) session, per strategy.
struct MultiCellResult {
  index_t cells = 0;             ///< sites actually simulated
  index_t sessions_per_strategy = 0;  ///< cells · users_per_cell · trials
  /// SNR loss (dB) of the claimed pair after the search_rate prefix.
  std::map<std::string, Summary> loss_db;
  /// Search rate needed to reach target_loss_db (1.0 when unreached).
  std::map<std::string, Summary> required_rate;
  /// Per-session mean interference-to-noise ratio 10·log10(1 + γ·Ī) where
  /// Ī averages I_v over the RX codebook — one sample per (cell, user,
  /// trial), identical for every strategy.
  Summary interference_over_noise_db;
  /// (cell × trial) shards excluded from every summary because a session
  /// threw while scenario.faults.quarantine_trials was set (ascending,
  /// empty otherwise; shard = trial·n_cells + cell). The same set is
  /// excluded at every thread count.
  std::vector<index_t> quarantined_shards;
};

/// Runs every strategy through every (cell, user, trial) session under the
/// configured topology and interference. Strategies must be const-callable
/// from multiple threads (core::AlignmentStrategy contract). Shards run in
/// parallel per scenario.threads with bit-exact thread-count independence.
MultiCellResult run_multicell(
    const MultiCellConfig& config,
    const std::vector<const core::AlignmentStrategy*>& strategies);

/// Renders one sweep of multi-cell results as CSV: one row per x value,
/// columns <strategy>_loss_db, <strategy>_required_rate (strategy order of
/// the results' maps), then interference_over_noise_db. Used by
/// bench/ext_multicell_interference and its determinism test.
std::string render_multicell_csv(const std::string& x_label,
                                 const std::vector<real>& xs,
                                 const std::vector<MultiCellResult>& results);

}  // namespace mmw::sim
