// The fault-robustness experiment (EXPERIMENTS.md E8): every strategy runs
// under every fault case of a sweep, with the session's post-alignment
// verification/re-alignment loop engaged, and the engine reports the
// robustness matrix — loss, alignment-failure rate, outage/recovery rates,
// recovery-slot overhead, and the degradation-ladder rung histogram.
//
// Determinism contract: trial t of case c draws its measurement stream from
// Rng::stream(seed, t) (same as the single-link drivers) and its fault plan
// from fault_stream(seed, c, t) — the case index is the fault entity, so
// every case faces independent fault realizations while strategies within a
// (case, trial) cell share one plan (fairness). Per-trial slots are reduced
// in trial-index order; results are byte-identical for any thread count.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "sim/scenario.h"
#include "sim/stats.h"

namespace mmw::sim {

/// One column of the robustness matrix: a named fault configuration.
struct FaultCase {
  std::string name;  ///< CSV row label, e.g. "blockage", "clean"
  fault::FaultConfig faults;
};

/// Configuration of one robustness run. scenario.faults is ignored — each
/// FaultCase supplies its own; everything else (channel, arrays, gamma,
/// seed, trials, threads) comes from the scenario.
struct RobustnessConfig {
  Scenario scenario;

  /// Training budget as a fraction of T = |U|·|V|.
  real budget_rate = 0.10;

  /// Post-alignment verification/re-alignment (mac::Session). When
  /// `realign` is false the claimed trained pair is graded as-is and no
  /// recovery slots are spent (the ablation baseline for E8).
  mac::Session::RealignmentPolicy realignment;
  bool realign = true;

  /// A (trial, strategy) run counts as an alignment failure when the true
  /// loss of its final pair exceeds this threshold (dB).
  real failure_loss_db = 10.0;
};

/// Pooled per-strategy outcomes of one fault case.
struct StrategyRobustness {
  Summary loss_db;             ///< true loss of the final (post-recovery) pair
  real failure_rate = 0.0;     ///< fraction of trials with loss > threshold
  real outage_rate = 0.0;      ///< fraction of trials declaring an outage
  real recovery_rate = 0.0;    ///< recovered / outages (0 when no outages)
  Summary recovery_slots;      ///< verification + recovery probes per trial
  /// Final-rung histogram over every covariance solve of every trial,
  /// indexed by estimation::SolveRung (primary, em, sample, uniform).
  std::array<std::uint64_t, 4> fallback_rungs{};
  std::uint64_t stressed_solves = 0;  ///< forced-stress injections hit
  index_t trials = 0;                 ///< trials summarized (non-quarantined)
};

struct FaultCaseResult {
  std::string name;
  index_t quarantined = 0;  ///< trials excluded after in-trial failures
  std::map<std::string, StrategyRobustness> by_strategy;
};

/// Runs the full strategy × fault-case matrix. Strategies must be
/// const-callable from multiple threads (core::AlignmentStrategy contract).
std::vector<FaultCaseResult> run_fault_robustness(
    const RobustnessConfig& config,
    const std::vector<const core::AlignmentStrategy*>& strategies,
    const std::vector<FaultCase>& cases);

/// Renders the matrix as CSV: one row per fault case, per-strategy columns
/// <name>_loss_db, <name>_fail_rate, <name>_outage_rate,
/// <name>_recovery_rate, <name>_recovery_slots, <name>_fallback_em,
/// <name>_fallback_sample, <name>_fallback_uniform (map order), then a
/// trailing quarantined count.
std::string render_robustness_csv(const std::vector<FaultCaseResult>& results);

}  // namespace mmw::sim
