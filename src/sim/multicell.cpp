#include "sim/multicell.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>
#include <sstream>

#include "channel/temporal.h"
#include "core/thread_pool.h"
#include "fault/context.h"
#include "linalg/decompositions.h"
#include "linalg/factored.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/evaluation.h"

namespace mmw::sim {

namespace {

/// sim.multicell.* telemetry (DESIGN.md §9): shard/session volume, the
/// interference histogram, and per-shard busy time. Busy time is the one
/// wall-clock-dependent metric; it never feeds back into the simulation,
/// so the determinism contract is untouched.
struct MultiCellMetrics {
  obs::Counter cells;     ///< one per (cell, trial) shard simulated
  obs::Counter sessions;  ///< one per (cell, user, trial, strategy) run
  obs::Histogram interference_power;  ///< per-user mean I (linear)
  obs::Histogram shard_busy_us;
  static const MultiCellMetrics& get() {
    static const MultiCellMetrics m{
        obs::Registry::global().counter("sim.multicell.cells"),
        obs::Registry::global().counter("sim.multicell.sessions"),
        obs::Registry::global().histogram(
            "sim.multicell.interference_power",
            obs::HistogramBuckets::exponential(1e-3, 10.0, 9)),
        obs::Registry::global().histogram(
            "sim.multicell.shard_busy_us",
            obs::HistogramBuckets::exponential(100.0, 4.0, 12)),
    };
    return m;
  }
};

index_t rate_to_budget(real rate, index_t total) {
  MMW_REQUIRE_MSG(rate > 0.0 && rate <= 1.0,
                  "search rate must be in (0, 1]");
  return std::max<index_t>(1,
                           static_cast<index_t>(std::llround(rate * total)));
}

/// Key spaces of the engine's three-key streams. A run uses
/// Rng::stream(seed, key_a, user, trial) with key_a partitioned as:
///   [0, n_cells)              serving link + user drop + session forks
///   [n_cells, 2·n_cells)      cross-link realizations seen by that victim
///   [2·n_cells, 3·n_cells)    the interferer's active TX beam (key_b = 0 —
///                             one beam per (interferer, trial), shared by
///                             every victim in the trial)
/// Any shard can rebuild any of these without shared state, which is what
/// keeps (cell × trial) shards order- and thread-count-independent.
constexpr std::uint64_t serving_key(index_t cell) { return cell; }
std::uint64_t cross_key(index_t cell, index_t n_cells) {
  return static_cast<std::uint64_t>(n_cells) + cell;
}
std::uint64_t beam_key(index_t interferer, index_t n_cells) {
  return 2 * static_cast<std::uint64_t>(n_cells) + interferer;
}

/// Factored cross covariance Q_u = E[(Hu)(Hu)ᴴ] of an interfering link for
/// one active TX beam: Q_u = S Sᴴ with S's columns the RX steering vectors
/// scaled by √(NM·p_l)·|a_tx,lᴴu|. A thin QR of S (= B R) yields the
/// B (R Rᴴ) Bᴴ factor directly, so the RX codebook is scored through the
/// O(|V|·N·r) factored path instead of the dense O(|V|·N²) form. Falls
/// back to the dense lift when the path count reaches N (QR needs a tall
/// matrix; at that point the factor saves nothing anyway).
linalg::FactoredHermitian cross_covariance_factored(
    const channel::Link& link, const linalg::Vector& u) {
  const index_t n = link.rx_size();
  const real nm =
      static_cast<real>(link.rx_size()) * static_cast<real>(link.tx_size());
  const auto& paths = link.paths();

  std::vector<real> weight(paths.size());
  real w_max = 0.0;
  for (index_t l = 0; l < paths.size(); ++l) {
    weight[l] = std::sqrt(nm * paths[l].power) *
                std::abs(linalg::dot(link.tx_steering(l), u));
    w_max = std::max(w_max, weight[l]);
  }
  std::vector<index_t> kept;
  for (index_t l = 0; l < paths.size(); ++l)
    if (weight[l] > 1e-12 * w_max) kept.push_back(l);

  if (kept.empty())  // beam orthogonal to every path: zero interference
    return linalg::FactoredHermitian::from_dense(linalg::Matrix(n, n));
  if (kept.size() >= n)
    return linalg::FactoredHermitian::from_dense(
        link.rx_covariance_for_beam(u));

  linalg::Matrix s(n, kept.size());
  for (index_t k = 0; k < kept.size(); ++k) {
    const linalg::Vector& a = link.rx_steering(kept[k]);
    const cx w{weight[kept[k]], 0.0};
    for (index_t i = 0; i < n; ++i) s(i, k) = w * a[i];
  }
  linalg::QrResult qr = linalg::qr_decompose(s);
  return linalg::FactoredHermitian(std::move(qr.q),
                                   qr.r * qr.r.adjoint());
}

/// Per-(cell, user, trial) outputs, one slot per strategy.
struct UserOutcome {
  std::vector<real> loss_db;
  std::vector<real> required_rate;
  real interference_over_noise_db = 0.0;
};

}  // namespace

MultiCellResult run_multicell(
    const MultiCellConfig& config,
    const std::vector<const core::AlignmentStrategy*>& strategies) {
  MMW_REQUIRE(!strategies.empty());
  MMW_REQUIRE(config.scenario.trials >= 1);
  MMW_REQUIRE_MSG(config.search_rate > 0.0 &&
                      config.search_rate <= config.budget_rate &&
                      config.budget_rate <= 1.0,
                  "need 0 < search_rate <= budget_rate <= 1");
  MMW_REQUIRE_MSG(config.interference_scale >= 0.0,
                  "interference scale must be non-negative");

  const Scenario& sc = config.scenario;
  const Topology topo = Topology::build(config.topology);
  const index_t n_cells = topo.n_cells();
  const index_t users = config.topology.users_per_cell;

  obs::TraceScope span("sim.run_multicell", "sim");
  span.arg("cells", static_cast<double>(n_cells));
  span.arg("users_per_cell", static_cast<double>(users));
  span.arg("trials", static_cast<double>(sc.trials));

  // Codebooks are scenario-determined and read-only: build once, share
  // across every shard.
  const CodebookPair cbs = make_scenario_codebooks(sc);
  const index_t total = cbs.tx.size() * cbs.rx.size();
  const index_t budget = rate_to_budget(config.budget_rate, total);
  const index_t grade_budget = rate_to_budget(config.search_rate, total);
  const bool interfering = config.interference_scale > 0.0 && n_cells > 1;

  // One shard per (cell, trial); each owns its slot, reduced in shard-index
  // order afterwards so parallel output == serial output.
  const index_t n_shards = n_cells * sc.trials;
  std::vector<std::vector<UserOutcome>> per_shard(n_shards);

  const auto run_shard = [&](index_t shard) {
    MMW_TRACE_SCOPE("sim.multicell.shard", "sim");
    const obs::WallTimer shard_timer;
    const index_t trial = shard / n_cells;
    const index_t cell = shard % n_cells;

    auto& mine = per_shard[shard];
    mine.reserve(users);
    for (index_t user = 0; user < users; ++user) {
      randgen::Rng rng =
          randgen::Rng::stream(sc.seed, serving_key(cell), user, trial);
      const UserPlacement drop = topo.place_user(cell, rng);
      const channel::Link link = make_scenario_link(sc, rng);

      // Interference profile: every other BS dwells on its trial-fixed
      // active beam; fold the coupled per-RX-beam powers into one vector.
      std::vector<real> interference;
      std::vector<real> cross_scores(cbs.rx.size());
      real mean_interference = 0.0;
      if (interfering) {
        interference.assign(cbs.rx.size(), 0.0);
        randgen::Rng cross_rng = randgen::Rng::stream(
            sc.seed, cross_key(cell, n_cells), user, trial);
        for (index_t other = 0; other < n_cells; ++other) {
          if (other == cell) continue;
          const channel::Link cross = make_scenario_link(sc, cross_rng);
          randgen::Rng beam_rng = randgen::Rng::stream(
              sc.seed, beam_key(other, n_cells), 0, trial);
          const index_t active_beam = static_cast<index_t>(
              beam_rng.uniform_int(0, cbs.tx.size() - 1));
          const linalg::FactoredHermitian q_cross =
              cross_covariance_factored(cross,
                                        cbs.tx.codeword(active_beam));
          cbs.rx.covariance_scores_into(q_cross, cross_scores);
          const real coupled = config.interference_scale *
                               topo.coupling(other, cell, drop);
          for (index_t v = 0; v < interference.size(); ++v)
            interference[v] += coupled * cross_scores[v];
        }
        for (const real p : interference) mean_interference += p;
        mean_interference /= static_cast<real>(interference.size());
      }

      // Fault plan for this (cell, user, trial): entity key
      // cell·users + user of the reserved fault range, so enabling faults
      // perturbs no serving/cross/beam stream and each user fails
      // independently of cell count and thread count.
      std::optional<fault::FaultPlan> plan;
      std::optional<channel::Link> degraded;
      if (sc.faults.any()) {
        randgen::Rng fault_rng = fault::fault_stream(
            sc.seed, static_cast<std::uint64_t>(cell) * users + user, trial);
        plan.emplace(fault::FaultPlan::draw(sc.faults, budget,
                                            link.paths().size(), fault_rng));
        if (plan->has_blockage())
          degraded = channel::blocked_link(link, plan->path_power_scale());
      }

      const core::PairGainOracle oracle(link, cbs.tx, cbs.rx);
      UserOutcome out;
      out.interference_over_noise_db =
          10.0 * std::log10(1.0 + sc.gamma * mean_interference);
      out.loss_db.reserve(strategies.size());
      out.required_rate.reserve(strategies.size());
      for (const auto* strategy : strategies) {
        randgen::Rng run_rng = rng.fork();
        mac::Session session(link, cbs.tx, cbs.rx, sc.gamma, budget,
                             run_rng, sc.fades_per_measurement);
        if (interfering) session.set_interference(interference);
        fault::TrialFaultState fault_state;
        std::optional<fault::ScopedTrialFaults> fault_guard;
        if (plan) {
          session.arm_faults(&*plan, degraded ? &*degraded : nullptr);
          fault_state.plan = &*plan;
          fault_guard.emplace(fault_state);
        }
        strategy->run(session);
        const index_t graded = std::min<index_t>(
            grade_budget, session.records().size());
        out.loss_db.push_back(
            loss_after(oracle, session.records(), graded));
        const auto needed = measurements_to_reach(
            oracle, session.records(), config.target_loss_db);
        out.required_rate.push_back(
            needed ? static_cast<real>(*needed) / static_cast<real>(total)
                   : 1.0);
      }
      if (obs::enabled()) {
        const MultiCellMetrics& m = MultiCellMetrics::get();
        m.sessions.add(static_cast<std::uint64_t>(strategies.size()));
        m.interference_power.record(mean_interference);
      }
      mine.push_back(std::move(out));
    }
    if (obs::enabled()) {
      const MultiCellMetrics& m = MultiCellMetrics::get();
      m.cells.add();
      m.shard_busy_us.record(
          static_cast<real>(shard_timer.elapsed_us()));
    }
  };

  const index_t threads =
      std::min(core::resolve_thread_count(sc.threads), n_shards);
  std::vector<index_t> quarantined;
  if (!sc.faults.quarantine_trials) {
    if (threads <= 1) {
      for (index_t s = 0; s < n_shards; ++s) run_shard(s);
    } else {
      core::ThreadPool pool(threads);
      pool.parallel_for(0, n_shards, [&](index_t s) { run_shard(s); });
    }
  } else if (threads <= 1) {
    for (index_t s = 0; s < n_shards; ++s) {
      try {
        run_shard(s);
      } catch (...) {  // parity with parallel_for_quarantined's net
        quarantined.push_back(s);
      }
    }
  } else {
    core::ThreadPool pool(threads);
    for (const core::IterationFailure& f : pool.parallel_for_quarantined(
             0, n_shards, [&](index_t s) { run_shard(s); }))
      quarantined.push_back(f.index);
  }
  if (!quarantined.empty()) {
    static const obs::Counter quarantined_counter =
        obs::Registry::global().counter("sim.multicell.shards_quarantined");
    if (obs::enabled()) quarantined_counter.add(quarantined.size());
    std::cerr << "[sim] quarantined " << quarantined.size() << "/"
              << n_shards << " multicell shards after in-shard failures\n";
  }
  MMW_REQUIRE_MSG(quarantined.size() < n_shards,
                  "every shard was quarantined — nothing to summarize");

  // Reduce in shard-index order: parallel output == serial output.
  // Quarantined shards hold partial data and are skipped identically at
  // every thread count (the set is a function of the seed alone).
  std::vector<bool> skip(n_shards, false);
  for (const index_t s : quarantined) skip[s] = true;
  std::vector<std::vector<real>> loss(strategies.size());
  std::vector<std::vector<real>> rate(strategies.size());
  std::vector<real> inr_db;
  for (index_t s = 0; s < n_shards; ++s) {
    if (skip[s]) continue;
    for (const UserOutcome& out : per_shard[s]) {
      for (index_t k = 0; k < strategies.size(); ++k) {
        loss[k].push_back(out.loss_db[k]);
        rate[k].push_back(out.required_rate[k]);
      }
      inr_db.push_back(out.interference_over_noise_db);
    }
  }

  MultiCellResult result;
  result.cells = n_cells;
  result.sessions_per_strategy = (n_shards - quarantined.size()) * users;
  result.quarantined_shards = std::move(quarantined);
  for (index_t k = 0; k < strategies.size(); ++k) {
    const std::string name(strategies[k]->name());
    result.loss_db.emplace(name, summarize(loss[k]));
    result.required_rate.emplace(name, summarize(rate[k]));
  }
  result.interference_over_noise_db = summarize(inr_db);
  return result;
}

std::string render_multicell_csv(const std::string& x_label,
                                 const std::vector<real>& xs,
                                 const std::vector<MultiCellResult>& results) {
  MMW_REQUIRE(xs.size() == results.size());
  MMW_REQUIRE(!results.empty());
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << x_label;
  for (const auto& [name, summary] : results.front().loss_db)
    os << ',' << name << "_loss_db";
  for (const auto& [name, summary] : results.front().required_rate)
    os << ',' << name << "_required_rate";
  os << ",interference_over_noise_db\n";
  for (index_t i = 0; i < xs.size(); ++i) {
    const MultiCellResult& r = results[i];
    MMW_REQUIRE_MSG(r.loss_db.size() == results.front().loss_db.size(),
                    "every row must cover the same strategies");
    os << xs[i];
    for (const auto& [name, summary] : r.loss_db) os << ',' << summary.mean;
    for (const auto& [name, summary] : r.required_rate)
      os << ',' << summary.mean;
    os << ',' << r.interference_over_noise_db.mean << '\n';
  }
  return os.str();
}

}  // namespace mmw::sim
