// User mobility over a sim::Topology: seeded piecewise-linear trajectories
// across the deployment plane, plus hysteresis-gated serving-site selection
// — the geometry half of the temporal tracking layer (src/track/).
//
// Determinism contract: a Trajectory is a pure function of
// (topology bounds, speed, epoch_seconds, seed, user). Waypoint w is drawn
// from the reserved trajectory lane Rng::stream(seed, kTrajectoryLane,
// user, w) — two uniforms per waypoint, nothing else — so position_at(e)
// returns bit-identical coordinates regardless of call order, thread, or
// which other users exist. The waypoint cache only ever APPENDS values that
// are pure functions of the keys, so caching is invisible to callers.
//
// Thread-safety: const queries mutate the internal waypoint cache, so one
// Trajectory must not be shared across threads. The tracking engine builds
// one per (tracker, user) shard; they are cheap (a handful of waypoints).
#pragma once

#include <vector>

#include "randgen/keylanes.h"
#include "sim/topology.h"

namespace mmw::sim {

/// Mobility knobs of one tracking run. Speed lives here (not on
/// channel::EvolutionConfig) so one value drives BOTH the trajectory and
/// the channel evolution; run_tracking copies it across.
struct MobilityConfig {
  real speed_mps = 1.4;     ///< walking default
  real epoch_seconds = 0.5;
  /// Serving-site switch margin: a candidate site must beat the current
  /// one by this many dB of pathloss gain before a handover fires. 0
  /// degenerates to nearest-site selection (the ping-pong regime the
  /// hysteresis test crafts).
  real hysteresis_db = 3.0;
};

/// A seeded piecewise-linear walk: waypoints are drawn uniformly on the
/// deployment bounding box (sites inflated by cell_radius_m) and the user
/// moves between consecutive waypoints at constant speed. Waypoint 0 is the
/// starting position.
class Trajectory {
 public:
  /// Preconditions: speed ≥ 0, epoch_seconds ≥ 0.
  Trajectory(const Topology& topology, real speed_mps, real epoch_seconds,
             std::uint64_t seed, std::uint64_t user);

  /// Position after e epochs of travel (speed·epoch_seconds·e meters along
  /// the waypoint chain). Pure: any call order yields identical results.
  UserPlacement position_at(index_t epoch) const;

  real speed_mps() const { return speed_; }
  real epoch_seconds() const { return epoch_seconds_; }

 private:
  void ensure_waypoints(real distance) const;
  UserPlacement draw_waypoint(index_t w) const;

  real speed_ = 0.0;
  real epoch_seconds_ = 0.0;
  real min_x_ = 0.0, max_x_ = 0.0, min_y_ = 0.0, max_y_ = 0.0;
  std::uint64_t seed_ = 0, user_ = 0;
  mutable std::vector<UserPlacement> waypoints_;
  mutable std::vector<real> cumulative_m_;  ///< path length up to waypoint w
};

/// The site with the largest pathloss gain at `position` (nearest site
/// under the power law); ties break toward the lowest site index.
index_t nearest_site(const Topology& topology, const UserPlacement& position);

/// Hysteresis-gated serving-site selection: returns the best site only when
/// its pathloss gain beats the current site's by more than hysteresis_db;
/// otherwise keeps `current`. Ties break toward the lowest site index.
/// Precondition: current < topology.n_cells().
index_t select_serving_site(const Topology& topology,
                            const UserPlacement& position, index_t current,
                            real hysteresis_db);

}  // namespace mmw::sim
