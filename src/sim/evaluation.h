// Offline grading of an alignment run: prefix-wise best pair, SNR loss
// trajectories, and measurements-to-target — the quantities behind the
// paper's two evaluation axes (search effectiveness and cost efficiency).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/oracle.h"
#include "mac/session.h"

namespace mmw::sim {

/// The pair with the highest measured energy among the first `count`
/// records (the pair the receiver would claim after `count` measurements).
/// Precondition: 1 ≤ count ≤ records.size().
mac::MeasurementRecord best_in_prefix(
    std::span<const mac::MeasurementRecord> records, index_t count);

/// True SNR loss (dB) of the claimed pair after `count` measurements.
real loss_after(const core::PairGainOracle& oracle,
                std::span<const mac::MeasurementRecord> records,
                index_t count);

/// Full loss trajectory: entry k is the loss after k+1 measurements.
std::vector<real> loss_trajectory(
    const core::PairGainOracle& oracle,
    std::span<const mac::MeasurementRecord> records);

/// Smallest number of measurements whose claimed pair has true loss ≤
/// `target_loss_db`, or nullopt if the run never got there.
std::optional<index_t> measurements_to_reach(
    const core::PairGainOracle& oracle,
    std::span<const mac::MeasurementRecord> records, real target_loss_db);

}  // namespace mmw::sim
