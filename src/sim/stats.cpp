#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace mmw::sim {

real Summary::ci95_half_width() const {
  if (count < 2) return 0.0;
  return 1.96 * stddev / std::sqrt(static_cast<real>(count));
}

Summary summarize(std::span<const real> values) {
  MMW_REQUIRE_MSG(!values.empty(), "cannot summarize an empty sample");
  Summary s;
  s.count = values.size();
  real acc = 0.0;
  s.minimum = values[0];
  s.maximum = values[0];
  for (const real v : values) {
    acc += v;
    s.minimum = std::min(s.minimum, v);
    s.maximum = std::max(s.maximum, v);
  }
  s.mean = acc / static_cast<real>(s.count);
  if (s.count > 1) {
    real sq = 0.0;
    for (const real v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<real>(s.count - 1));
  }
  std::vector<real> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const index_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1)
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

real mean(std::span<const real> values) { return summarize(values).mean; }

}  // namespace mmw::sim
