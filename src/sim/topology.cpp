#include "sim/topology.h"

#include <cmath>

namespace mmw::sim {

namespace {

/// Hex sites in spiral ring order: the center, then ring k = 1, 2, … walked
/// with the standard six axial directions. Deterministic and prefix-stable:
/// growing `cells` never moves an existing site.
std::vector<CellSite> hex_sites(index_t cells, real isd) {
  // Axial (q, r) to cartesian for a pointy-top hex lattice.
  const auto to_site = [isd](long long q, long long r) {
    return CellSite{isd * (static_cast<real>(q) + 0.5 * static_cast<real>(r)),
                    isd * (std::sqrt(3.0) / 2.0) * static_cast<real>(r)};
  };
  static constexpr long long kDirs[6][2] = {
      {1, 0}, {0, 1}, {-1, 1}, {-1, 0}, {0, -1}, {1, -1}};

  std::vector<CellSite> sites;
  sites.reserve(cells);
  sites.push_back(to_site(0, 0));
  for (long long ring = 1; sites.size() < cells; ++ring) {
    long long q = 0, r = -ring;  // start of the ring (dir 4 scaled by k)
    for (int d = 0; d < 6 && sites.size() < cells; ++d) {
      for (long long step = 0; step < ring && sites.size() < cells; ++step) {
        sites.push_back(to_site(q, r));
        q += kDirs[d][0];
        r += kDirs[d][1];
      }
    }
  }
  return sites;
}

/// Square sites row-major over the smallest near-square box, centered so a
/// single cell sits at the origin.
std::vector<CellSite> square_sites(index_t cells, real isd) {
  const index_t side =
      static_cast<index_t>(std::ceil(std::sqrt(static_cast<real>(cells))));
  const real offset = 0.5 * static_cast<real>(side - 1);
  std::vector<CellSite> sites;
  sites.reserve(cells);
  for (index_t row = 0; row < side && sites.size() < cells; ++row)
    for (index_t col = 0; col < side && sites.size() < cells; ++col)
      sites.push_back({isd * (static_cast<real>(col) - offset),
                       isd * (static_cast<real>(row) - offset)});
  return sites;
}

}  // namespace

Topology Topology::build(const TopologyConfig& config) {
  MMW_REQUIRE_MSG(config.cells >= 1, "topology needs at least one cell");
  MMW_REQUIRE_MSG(config.users_per_cell >= 1,
                  "topology needs at least one user per cell");
  MMW_REQUIRE_MSG(
      config.min_distance_m > 0.0 &&
          config.min_distance_m < config.cell_radius_m,
      "need 0 < min_distance_m < cell_radius_m");
  MMW_REQUIRE_MSG(config.pathloss_exponent >= 0.0,
                  "pathloss exponent must be non-negative");

  const real isd = config.kind == TopologyKind::kHexagonal
                       ? std::sqrt(3.0) * config.cell_radius_m
                       : 2.0 * config.cell_radius_m;
  std::vector<CellSite> sites = config.kind == TopologyKind::kHexagonal
                                    ? hex_sites(config.cells, isd)
                                    : square_sites(config.cells, isd);
  return Topology(config, std::move(sites));
}

const CellSite& Topology::site(index_t cell) const {
  MMW_REQUIRE(cell < sites_.size());
  return sites_[cell];
}

real Topology::distance(index_t cell, const UserPlacement& user) const {
  const CellSite& s = site(cell);
  const real dx = user.x - s.x;
  const real dy = user.y - s.y;
  return std::max(config_.min_distance_m, std::hypot(dx, dy));
}

UserPlacement Topology::place_user(index_t cell, randgen::Rng& rng) const {
  const CellSite& s = site(cell);
  // Uniform on the annulus: area-uniform radius, then a uniform angle —
  // exactly two draws in a fixed order.
  const real r_lo_sq = config_.min_distance_m * config_.min_distance_m;
  const real r_hi_sq = config_.cell_radius_m * config_.cell_radius_m;
  const real radius = std::sqrt(r_lo_sq + rng.uniform() * (r_hi_sq - r_lo_sq));
  const real angle = rng.angle();
  return {s.x + radius * std::cos(angle), s.y + radius * std::sin(angle)};
}

real Topology::pathloss_gain(index_t cell, const UserPlacement& user) const {
  return std::pow(config_.min_distance_m / distance(cell, user),
                  config_.pathloss_exponent);
}

real Topology::coupling(index_t interferer, index_t serving,
                        const UserPlacement& user) const {
  MMW_REQUIRE_MSG(interferer != serving,
                  "a cell does not interfere with itself");
  const real d_serving = distance(serving, user);
  const real d_interferer = distance(interferer, user);
  return std::pow(d_serving / d_interferer, config_.pathloss_exponent);
}

}  // namespace mmw::sim
