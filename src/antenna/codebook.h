// Beam codebooks: finite sets of unit-norm beamforming vectors arranged on a
// 2-D grid, with the spatial-adjacency structure the Scan baseline needs.
#pragma once

#include <span>
#include <vector>

#include "antenna/geometry.h"
#include "linalg/factored.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mmw::antenna {

/// A beam codebook: the finite sets U (TX) and V (RX) of the paper.
///
/// Codewords sit on a gx × gy grid (index = x·gy + y), which defines the
/// "spatially adjacent" relation used by raster scanning. Two constructions:
///
///  - `dft(geometry)`: the orthonormal DFT codebook (the Kronecker product
///    of per-axis DFT bases for a UPA). Spatial frequencies are circular, so
///    grid adjacency wraps around.
///  - `angular_grid(geometry, n_az, n_el, …)`: steering vectors on a uniform
///    grid of physical angles (an oversampled codebook); no wraparound.
class Codebook {
 public:
  static Codebook dft(const ArrayGeometry& geometry);

  static Codebook angular_grid(const ArrayGeometry& geometry, index_t n_az,
                               index_t n_el, real az_min = -M_PI / 2,
                               real az_max = M_PI / 2,
                               real el_min = -M_PI / 3,
                               real el_max = M_PI / 3);

  index_t size() const { return codewords_.size(); }
  const linalg::Vector& codeword(index_t i) const { return codewords_[i]; }

  /// The codewords packed as a split-complex structure-of-arrays panel
  /// (linalg::kernels::SoAComplex): column v is codeword v, row i streams
  /// element i of every codeword — the layout the batched scoring kernels
  /// read. Built once at construction and immutable afterwards, so the
  /// panel may be read concurrently from any number of threads; it aliases
  /// nothing (it is a copy of the codewords, not a view into them).
  const linalg::kernels::SoAComplex& packed() const { return packed_; }

  index_t grid_x() const { return grid_x_; }
  index_t grid_y() const { return grid_y_; }
  bool wraps() const { return wraps_; }

  /// Grid coordinates of codeword i.
  std::pair<index_t, index_t> coordinates(index_t i) const;

  /// 4-neighbourhood of codeword i on the grid (wrapping when wraps()).
  std::vector<index_t> neighbors(index_t i) const;

  /// Codeword index maximizing |c_iᴴ v| — the codebook quantization of an
  /// arbitrary beamforming vector (used to map an eigen-beam into V).
  index_t best_match(const linalg::Vector& v) const;

  /// Codeword index maximizing the Rayleigh quotient c_iᴴ Q c_i (paper
  /// eq. 26 restricted to the codebook). k = 1 selection is a single
  /// linear scan — no sort.
  index_t best_for_covariance(const linalg::Matrix& q) const;
  index_t best_for_covariance(const linalg::FactoredHermitian& q) const;

  /// Indices of the k codewords with the largest cᴴ Q c, descending
  /// (paper §IV-B2, step 3): partial selection, O(|V| log k) after
  /// scoring, never a full sort. Exactly tied scores break by lowest
  /// codeword index, so the ranking is a pure function of the scores —
  /// independent of standard-library sort internals — which the
  /// bit-exact determinism contract (DESIGN.md §7) relies on.
  /// Precondition: 1 ≤ k ≤ size().
  std::vector<index_t> top_k_for_covariance(const linalg::Matrix& q,
                                            index_t k) const;
  std::vector<index_t> top_k_for_covariance(
      const linalg::FactoredHermitian& q, index_t k) const;

  /// Rayleigh quotients c_iᴴ Q c_i for every codeword. The factored
  /// overload scores through the projected panel Bᴴ C — O(|V|·N·r +
  /// |V|·r²) instead of the dense form's O(|V|·N²) — which is the per-slot
  /// hot path of the alignment strategies. Both overloads run the batched
  /// SoA kernels (linalg/kernels.h) over packed(); results are
  /// bit-identical to per-codeword FactoredHermitian::rayleigh /
  /// hermitian_form (the kernel layer's equivalence contract).
  std::vector<real> covariance_scores(const linalg::Matrix& q) const;
  std::vector<real> covariance_scores(
      const linalg::FactoredHermitian& q) const;

  /// Allocation-free variants: write the scores into caller-owned storage
  /// (kernel workspace comes from the calling thread's scratch arena).
  /// Feedback loops that score every slot should reuse one buffer across
  /// slots. `out` must not alias the codebook's storage.
  /// Preconditions: out.size() == size(); q sized to the codewords.
  void covariance_scores_into(const linalg::Matrix& q,
                              std::span<real> out) const;
  void covariance_scores_into(const linalg::FactoredHermitian& q,
                              std::span<real> out) const;

  /// Boustrophedon (serpentine) visiting order of the grid: consecutive
  /// entries are always grid-adjacent. Scan baselines walk this order.
  std::vector<index_t> serpentine_order() const;

  /// Hardware-constrained copy of this codebook: every codeword element is
  /// forced to constant modulus 1/√N with its phase rounded to 2^bits
  /// levels — the analog phase-shifter front end the paper's "low
  /// complexity analog beamforming" assumes (Sec. III-A). Grid structure is
  /// preserved. Precondition: 1 ≤ bits ≤ 16.
  Codebook with_quantized_phases(index_t bits) const;

 private:
  Codebook(std::vector<linalg::Vector> codewords, index_t gx, index_t gy,
           bool wraps)
      : codewords_(std::move(codewords)),
        packed_(linalg::kernels::SoAComplex::pack_columns(codewords_)),
        grid_x_(gx),
        grid_y_(gy),
        wraps_(wraps) {}

  std::vector<linalg::Vector> codewords_;
  linalg::kernels::SoAComplex packed_;  ///< SoA copy for the batched kernels
  index_t grid_x_ = 0;
  index_t grid_y_ = 0;
  bool wraps_ = false;
};

}  // namespace mmw::antenna
