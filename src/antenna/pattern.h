// Beam-pattern analytics: azimuth cuts, half-power beamwidth, peak sidelobe
// level, and sector-coverage metrics of a codebook — the quantities codebook
// designers trade off against training cost.
#pragma once

#include <vector>

#include "antenna/codebook.h"
#include "antenna/steering.h"

namespace mmw::antenna {

/// One sample of an azimuth pattern cut.
struct PatternSample {
  real azimuth = 0.0;  ///< radians
  real gain = 0.0;     ///< linear power gain (beam_gain convention)
};

/// Samples the azimuth cut of a beam pattern at fixed elevation.
/// Preconditions: samples ≥ 2, az_min < az_max, w sized to the array.
std::vector<PatternSample> azimuth_cut(const ArrayGeometry& geometry,
                                       const linalg::Vector& w,
                                       real elevation = 0.0,
                                       index_t samples = 361,
                                       real az_min = -M_PI / 2,
                                       real az_max = M_PI / 2);

/// Half-power (−3 dB) beamwidth around the pattern peak of an azimuth cut,
/// in radians. Throws precondition_error when the pattern never drops 3 dB
/// below its peak inside the cut (beam wider than the cut).
real half_power_beamwidth(const std::vector<PatternSample>& cut);

/// Peak sidelobe level relative to the main lobe, in dB (≤ 0): the largest
/// local maximum outside the main lobe (main lobe = contiguous region
/// around the peak above the first nulls). Returns −infinity when the cut
/// has no sidelobe.
real peak_sidelobe_level_db(const std::vector<PatternSample>& cut);

/// Sector coverage of a codebook: the worst-case best-codeword gain over a
/// grid of directions inside the sector, relative to the full array gain N
/// (≤ 1; 1 means some codeword always realizes full gain). The classic
/// figure of merit for codebook sizing.
real worst_case_coverage(const ArrayGeometry& geometry,
                         const Codebook& codebook, real az_min, real az_max,
                         real el_min, real el_max, index_t grid_az = 48,
                         index_t grid_el = 16);

}  // namespace mmw::antenna
