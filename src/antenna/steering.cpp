#include "antenna/steering.h"

#include <cmath>

namespace mmw::antenna {

Position unit_wave_vector(const Direction& dir) {
  const real ce = std::cos(dir.elevation);
  // Boresight (az = el = 0) is +z, perpendicular to the x–y array plane:
  // azimuth tilts the beam along the array's x-axis, elevation along y.
  return {ce * std::sin(dir.azimuth), std::sin(dir.elevation),
          ce * std::cos(dir.azimuth)};
}

linalg::Vector steering_vector(const ArrayGeometry& geometry,
                               const Direction& dir) {
  const Position k = unit_wave_vector(dir);
  const index_t n = geometry.size();
  const real scale = 1.0 / std::sqrt(static_cast<real>(n));
  linalg::Vector a(n);
  for (index_t i = 0; i < n; ++i) {
    const Position& p = geometry.position(i);
    const real phase = 2.0 * M_PI * (p.x * k.x + p.y * k.y + p.z * k.z);
    a[i] = scale * cx{std::cos(phase), std::sin(phase)};
  }
  return a;
}

real beam_gain(const ArrayGeometry& geometry, const linalg::Vector& w,
               const Direction& dir) {
  MMW_REQUIRE(w.size() == geometry.size());
  const linalg::Vector a = steering_vector(geometry, dir);
  return static_cast<real>(geometry.size()) * std::norm(linalg::dot(a, w));
}

linalg::Vector subarray_restriction(const ArrayGeometry& geometry,
                                    const linalg::Vector& w, index_t active_x,
                                    index_t active_y) {
  MMW_REQUIRE(w.size() == geometry.size());
  MMW_REQUIRE(active_x >= 1 && active_x <= geometry.grid_x());
  MMW_REQUIRE(active_y >= 1 && active_y <= geometry.grid_y());
  linalg::Vector out(w.size());
  // Element index is row-major over (ix, iy), matching ArrayGeometry.
  for (index_t ix = 0; ix < active_x; ++ix)
    for (index_t iy = 0; iy < active_y; ++iy)
      out[ix * geometry.grid_y() + iy] = w[ix * geometry.grid_y() + iy];
  MMW_REQUIRE_MSG(out.norm() > 0.0,
                  "subarray restriction muted every active element");
  return out.normalized();
}

}  // namespace mmw::antenna
