#include "antenna/pattern.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mmw::antenna {

std::vector<PatternSample> azimuth_cut(const ArrayGeometry& geometry,
                                       const linalg::Vector& w,
                                       real elevation, index_t samples,
                                       real az_min, real az_max) {
  MMW_REQUIRE(samples >= 2);
  MMW_REQUIRE(az_min < az_max);
  MMW_REQUIRE(w.size() == geometry.size());
  std::vector<PatternSample> cut;
  cut.reserve(samples);
  for (index_t k = 0; k < samples; ++k) {
    const real az = az_min + (az_max - az_min) * static_cast<real>(k) /
                                 static_cast<real>(samples - 1);
    cut.push_back({az, beam_gain(geometry, w, {az, elevation})});
  }
  return cut;
}

namespace {

index_t peak_index(const std::vector<PatternSample>& cut) {
  MMW_REQUIRE_MSG(cut.size() >= 3, "pattern cut too short");
  index_t best = 0;
  for (index_t k = 1; k < cut.size(); ++k)
    if (cut[k].gain > cut[best].gain) best = k;
  return best;
}

}  // namespace

real half_power_beamwidth(const std::vector<PatternSample>& cut) {
  const index_t peak = peak_index(cut);
  const real half = cut[peak].gain / 2.0;
  MMW_REQUIRE_MSG(cut[peak].gain > 0.0, "pattern peak is zero");

  // Walk outwards from the peak to the first crossings of the −3 dB level,
  // interpolating linearly between samples.
  real left = cut.front().azimuth;
  bool found_left = false;
  for (index_t k = peak; k-- > 0;) {
    if (cut[k].gain <= half) {
      const real t = (half - cut[k].gain) / (cut[k + 1].gain - cut[k].gain);
      left = cut[k].azimuth + t * (cut[k + 1].azimuth - cut[k].azimuth);
      found_left = true;
      break;
    }
  }
  real right = cut.back().azimuth;
  bool found_right = false;
  for (index_t k = peak + 1; k < cut.size(); ++k) {
    if (cut[k].gain <= half) {
      const real t = (cut[k - 1].gain - half) / (cut[k - 1].gain - cut[k].gain);
      right = cut[k - 1].azimuth + t * (cut[k].azimuth - cut[k - 1].azimuth);
      found_right = true;
      break;
    }
  }
  MMW_REQUIRE_MSG(found_left && found_right,
                  "main lobe wider than the sampled cut");
  return right - left;
}

real peak_sidelobe_level_db(const std::vector<PatternSample>& cut) {
  const index_t peak = peak_index(cut);
  // Main lobe extent: from the first local minimum on each side of the peak.
  index_t lo = 0;
  for (index_t k = peak; k-- > 0;) {
    if (cut[k].gain > cut[k + 1].gain) {
      lo = k + 1;
      break;
    }
  }
  index_t hi = cut.size() - 1;
  for (index_t k = peak + 1; k < cut.size(); ++k) {
    if (cut[k].gain > cut[k - 1].gain) {
      hi = k - 1;
      break;
    }
  }
  real sidelobe = 0.0;
  for (index_t k = 0; k < cut.size(); ++k) {
    if (k >= lo && k <= hi) continue;
    sidelobe = std::max(sidelobe, cut[k].gain);
  }
  if (sidelobe <= 0.0) return -std::numeric_limits<real>::infinity();
  return 10.0 * std::log10(sidelobe / cut[peak].gain);
}

real worst_case_coverage(const ArrayGeometry& geometry,
                         const Codebook& codebook, real az_min, real az_max,
                         real el_min, real el_max, index_t grid_az,
                         index_t grid_el) {
  MMW_REQUIRE(grid_az >= 2 && grid_el >= 1);
  MMW_REQUIRE(az_min < az_max && el_min <= el_max);
  const real full_gain = static_cast<real>(geometry.size());
  real worst = std::numeric_limits<real>::infinity();
  for (index_t ia = 0; ia < grid_az; ++ia) {
    const real az = az_min + (az_max - az_min) * static_cast<real>(ia) /
                                 static_cast<real>(grid_az - 1);
    for (index_t ie = 0; ie < grid_el; ++ie) {
      const real el =
          grid_el == 1
              ? el_min
              : el_min + (el_max - el_min) * static_cast<real>(ie) /
                             static_cast<real>(grid_el - 1);
      const Direction dir{az, el};
      real best = 0.0;
      for (index_t c = 0; c < codebook.size(); ++c)
        best = std::max(best,
                        beam_gain(geometry, codebook.codeword(c), dir));
      worst = std::min(worst, best / full_gain);
    }
  }
  return worst;
}

}  // namespace mmw::antenna
