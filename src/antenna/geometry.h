// Antenna array geometries: uniform linear and uniform planar arrays.
#pragma once

#include <vector>

#include "linalg/common.h"

namespace mmw::antenna {

/// Physical propagation direction, radians, relative to the array's
/// boresight (the normal of the array plane): azimuth tilts along the
/// array's x-axis, elevation along its y-axis; (0, 0) is boresight.
struct Direction {
  real azimuth = 0.0;
  real elevation = 0.0;
};

/// Element position in wavelength units.
struct Position {
  real x = 0.0;
  real y = 0.0;
  real z = 0.0;
};

/// An antenna array described by its element positions (in wavelengths).
///
/// The canonical constructions:
///  - `ula(n, d)`:       n elements along the x-axis, spacing d·λ;
///  - `upa(nx, ny, d)`:  nx × ny grid in the x–y plane, spacing d·λ.
/// The paper's setup is a 4×4 λ/2 UPA at the TX (M = 16) and an 8×8 λ/2 UPA
/// at the RX (N = 64).
class ArrayGeometry {
 public:
  /// Uniform linear array along x: positions (i·spacing, 0, 0).
  static ArrayGeometry ula(index_t n, real spacing = 0.5);

  /// Uniform planar array in the x–y plane: positions
  /// (ix·spacing, iy·spacing, 0), row-major over (ix, iy).
  static ArrayGeometry upa(index_t nx, index_t ny, real spacing = 0.5);

  index_t size() const { return positions_.size(); }
  const Position& position(index_t i) const { return positions_[i]; }
  const std::vector<Position>& positions() const { return positions_; }

  /// Grid extents: (nx, ny) for a UPA, (n, 1) for a ULA.
  index_t grid_x() const { return grid_x_; }
  index_t grid_y() const { return grid_y_; }

 private:
  ArrayGeometry(std::vector<Position> positions, index_t gx, index_t gy)
      : positions_(std::move(positions)), grid_x_(gx), grid_y_(gy) {}

  std::vector<Position> positions_;
  index_t grid_x_ = 0;
  index_t grid_y_ = 0;
};

}  // namespace mmw::antenna
