#include "antenna/codebook.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "antenna/steering.h"
#include "obs/metrics.h"

namespace mmw::antenna {

namespace {

/// Codebook scoring telemetry: one "pass" = scoring every codeword against
/// one covariance estimate. Factored vs. dense passes are split because
/// the factored path is the PR-3 optimization the metrics exist to witness.
struct ScoreMetrics {
  obs::Counter passes_factored;
  obs::Counter passes_dense;
  obs::Counter scored_codewords;
  static const ScoreMetrics& get() {
    static const ScoreMetrics m{
        obs::Registry::global().counter(
            "antenna.codebook.score_passes_factored"),
        obs::Registry::global().counter("antenna.codebook.score_passes_dense"),
        obs::Registry::global().counter("antenna.codebook.scored_codewords"),
    };
    return m;
  }
};

}  // namespace

Codebook Codebook::dft(const ArrayGeometry& geometry) {
  const index_t nx = geometry.grid_x();
  const index_t ny = geometry.grid_y();
  const index_t n = geometry.size();
  MMW_REQUIRE_MSG(nx * ny == n, "DFT codebook requires a grid geometry");

  const real scale = 1.0 / std::sqrt(static_cast<real>(n));
  std::vector<linalg::Vector> codewords;
  codewords.reserve(n);
  // Element index is row-major over (ix, iy), matching ArrayGeometry::upa.
  for (index_t kx = 0; kx < nx; ++kx) {
    for (index_t ky = 0; ky < ny; ++ky) {
      linalg::Vector c(n);
      for (index_t ix = 0; ix < nx; ++ix) {
        for (index_t iy = 0; iy < ny; ++iy) {
          const real phase =
              2.0 * M_PI *
              (static_cast<real>(ix * kx) / static_cast<real>(nx) +
               static_cast<real>(iy * ky) / static_cast<real>(ny));
          c[ix * ny + iy] = scale * cx{std::cos(phase), std::sin(phase)};
        }
      }
      codewords.push_back(std::move(c));
    }
  }
  return Codebook(std::move(codewords), nx, ny, /*wraps=*/true);
}

Codebook Codebook::angular_grid(const ArrayGeometry& geometry, index_t n_az,
                                index_t n_el, real az_min, real az_max,
                                real el_min, real el_max) {
  MMW_REQUIRE(n_az > 0 && n_el > 0);
  MMW_REQUIRE(az_min < az_max || (n_az == 1 && az_min == az_max));
  MMW_REQUIRE(el_min < el_max || (n_el == 1 && el_min == el_max));
  std::vector<linalg::Vector> codewords;
  codewords.reserve(n_az * n_el);
  for (index_t ia = 0; ia < n_az; ++ia) {
    const real az =
        n_az == 1 ? az_min
                  : az_min + (az_max - az_min) * static_cast<real>(ia) /
                                 static_cast<real>(n_az - 1);
    for (index_t ie = 0; ie < n_el; ++ie) {
      const real el =
          n_el == 1 ? el_min
                    : el_min + (el_max - el_min) * static_cast<real>(ie) /
                                   static_cast<real>(n_el - 1);
      codewords.push_back(steering_vector(geometry, {az, el}));
    }
  }
  return Codebook(std::move(codewords), n_az, n_el, /*wraps=*/false);
}

std::pair<index_t, index_t> Codebook::coordinates(index_t i) const {
  MMW_REQUIRE(i < size());
  return {i / grid_y_, i % grid_y_};
}

std::vector<index_t> Codebook::neighbors(index_t i) const {
  const auto [x, y] = coordinates(i);
  std::vector<index_t> out;
  out.reserve(4);
  auto push = [&](index_t nx_, index_t ny_) {
    out.push_back(nx_ * grid_y_ + ny_);
  };
  if (x > 0)
    push(x - 1, y);
  else if (wraps_ && grid_x_ > 1)
    push(grid_x_ - 1, y);
  if (x + 1 < grid_x_)
    push(x + 1, y);
  else if (wraps_ && grid_x_ > 1)
    push(0, y);
  if (y > 0)
    push(x, y - 1);
  else if (wraps_ && grid_y_ > 1)
    push(x, grid_y_ - 1);
  if (y + 1 < grid_y_)
    push(x, y + 1);
  else if (wraps_ && grid_y_ > 1)
    push(x, 0);
  // Wraparound on a 2-wide axis can produce the same neighbour twice.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

index_t Codebook::best_match(const linalg::Vector& v) const {
  MMW_REQUIRE(size() > 0);
  index_t best = 0;
  real best_mag = -1.0;
  for (index_t i = 0; i < size(); ++i) {
    const real mag = std::abs(linalg::dot(codewords_[i], v));
    if (mag > best_mag) {
      best_mag = mag;
      best = i;
    }
  }
  return best;
}

namespace {

/// First index of the maximal score — identical tie behavior to
/// partial_sort with k = 1 (both keep the earliest maximum).
index_t argmax_score(std::span<const real> score) {
  return static_cast<index_t>(
      std::max_element(score.begin(), score.end()) - score.begin());
}

/// Top-k indices by descending score. k = 1 skips sorting entirely; larger
/// k partially sorts the index range — never a full sort of all |V| scores.
/// Equal scores break by LOWEST codeword index: partial_sort is unstable,
/// so without the explicit tie-break the order of tied codewords (exact
/// ties are common — symmetric arrays, rank-deficient estimates, pure-noise
/// covariances) would be implementation-defined, and the J-th eigen-
/// directed measurement of the proposed scheme could pick different beams
/// on different standard libraries or build modes, silently shifting
/// golden figures (tests/sim/golden_figures_test.cpp).
std::vector<index_t> top_k_by_score(std::span<const real> score, index_t k) {
  if (k == 1) return {argmax_score(score)};
  std::vector<index_t> order(score.size());
  std::iota(order.begin(), order.end(), index_t{0});
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](index_t a, index_t b) {
                      return score[a] != score[b] ? score[a] > score[b]
                                                  : a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace

index_t Codebook::best_for_covariance(const linalg::Matrix& q) const {
  linalg::kernels::Arena& arena = linalg::kernels::scratch_arena();
  linalg::kernels::ArenaScope scope(arena);
  const std::span<real> score = arena.alloc<real>(size());
  covariance_scores_into(q, score);
  return argmax_score(score);
}

index_t Codebook::best_for_covariance(
    const linalg::FactoredHermitian& q) const {
  linalg::kernels::Arena& arena = linalg::kernels::scratch_arena();
  linalg::kernels::ArenaScope scope(arena);
  const std::span<real> score = arena.alloc<real>(size());
  covariance_scores_into(q, score);
  return argmax_score(score);
}

void Codebook::covariance_scores_into(const linalg::Matrix& q,
                                      std::span<real> out) const {
  MMW_REQUIRE(q.rows() == codewords_.front().size());
  MMW_REQUIRE(out.size() == size());
  if (obs::enabled()) {
    const ScoreMetrics& m = ScoreMetrics::get();
    m.passes_dense.add();
    m.scored_codewords.add(static_cast<std::uint64_t>(size()));
  }
  linalg::kernels::dense_scores(q, packed_, out);
}

void Codebook::covariance_scores_into(const linalg::FactoredHermitian& q,
                                      std::span<real> out) const {
  MMW_REQUIRE(q.dim() == codewords_.front().size());
  MMW_REQUIRE(out.size() == size());
  if (obs::enabled()) {
    const ScoreMetrics& m = ScoreMetrics::get();
    m.passes_factored.add();
    m.scored_codewords.add(static_cast<std::uint64_t>(size()));
  }
  // Full mode has no stored basis (the identity is implicit) and must keep
  // matching the dense formulas bit-for-bit, so it takes the dense kernel
  // on the core — exactly what FactoredHermitian::rayleigh does per
  // codeword.
  if (q.is_full())
    linalg::kernels::dense_scores(q.core(), packed_, out);
  else
    linalg::kernels::factored_scores(q.basis(), q.core(), packed_, out);
}

std::vector<real> Codebook::covariance_scores(const linalg::Matrix& q) const {
  std::vector<real> score(size());
  covariance_scores_into(q, score);
  return score;
}

std::vector<real> Codebook::covariance_scores(
    const linalg::FactoredHermitian& q) const {
  std::vector<real> score(size());
  covariance_scores_into(q, score);
  return score;
}

std::vector<index_t> Codebook::top_k_for_covariance(const linalg::Matrix& q,
                                                    index_t k) const {
  MMW_REQUIRE(k >= 1 && k <= size());
  linalg::kernels::Arena& arena = linalg::kernels::scratch_arena();
  linalg::kernels::ArenaScope scope(arena);
  const std::span<real> score = arena.alloc<real>(size());
  covariance_scores_into(q, score);
  return top_k_by_score(score, k);
}

std::vector<index_t> Codebook::top_k_for_covariance(
    const linalg::FactoredHermitian& q, index_t k) const {
  MMW_REQUIRE(k >= 1 && k <= size());
  linalg::kernels::Arena& arena = linalg::kernels::scratch_arena();
  linalg::kernels::ArenaScope scope(arena);
  const std::span<real> score = arena.alloc<real>(size());
  covariance_scores_into(q, score);
  return top_k_by_score(score, k);
}

Codebook Codebook::with_quantized_phases(index_t bits) const {
  MMW_REQUIRE_MSG(bits >= 1 && bits <= 16, "phase bits out of range");
  const real levels = std::pow(2.0, static_cast<real>(bits));
  const real step = 2.0 * M_PI / levels;
  std::vector<linalg::Vector> out;
  out.reserve(size());
  for (const linalg::Vector& c : codewords_) {
    const real modulus = 1.0 / std::sqrt(static_cast<real>(c.size()));
    linalg::Vector q(c.size());
    for (index_t i = 0; i < c.size(); ++i) {
      const real phase = step * std::round(std::arg(c[i]) / step);
      q[i] = modulus * cx{std::cos(phase), std::sin(phase)};
    }
    out.push_back(std::move(q));
  }
  return Codebook(std::move(out), grid_x_, grid_y_, wraps_);
}

std::vector<index_t> Codebook::serpentine_order() const {
  std::vector<index_t> order;
  order.reserve(size());
  for (index_t x = 0; x < grid_x_; ++x) {
    if (x % 2 == 0) {
      for (index_t y = 0; y < grid_y_; ++y) order.push_back(x * grid_y_ + y);
    } else {
      for (index_t y = grid_y_; y-- > 0;) order.push_back(x * grid_y_ + y);
    }
  }
  return order;
}

}  // namespace mmw::antenna
