// Array steering (response) vectors.
#pragma once

#include "antenna/geometry.h"
#include "linalg/vector.h"

namespace mmw::antenna {

/// Unit propagation vector for a physical direction:
/// k = (cos el · cos az, cos el · sin az, sin el).
Position unit_wave_vector(const Direction& dir);

/// Unit-norm array steering vector a(dir):
///   a_k = exp(+j·2π·(p_k · k(dir))) / √N.
///
/// This is both the array response to a plane wave arriving from `dir` and
/// the beamforming weight vector that points the beam at `dir` (the paper's
/// u / v vectors are unit-norm, ‖u‖ = ‖v‖ = 1).
linalg::Vector steering_vector(const ArrayGeometry& geometry,
                               const Direction& dir);

/// Far-field beamforming gain |aᴴ(dir) w|² of weight vector `w` toward
/// direction `dir`, normalized so an N-element array steered exactly at
/// `dir` attains gain N.
real beam_gain(const ArrayGeometry& geometry, const linalg::Vector& w,
               const Direction& dir);

/// Restricts a beamforming vector to the top-left `active_x × active_y`
/// subarray of a grid geometry (remaining elements muted), renormalized to
/// unit norm. A steering vector restricted this way is the same-direction
/// steering vector of the smaller subarray — i.e. a WIDE beam: this is how
/// IEEE 802.15.3c-style protocols form quasi-omni / sector-level patterns
/// on one analog front end.
///
/// Preconditions: `w` sized to the geometry; 1 ≤ active_x ≤ grid_x,
/// 1 ≤ active_y ≤ grid_y; the restriction of `w` must be non-zero.
linalg::Vector subarray_restriction(const ArrayGeometry& geometry,
                                    const linalg::Vector& w, index_t active_x,
                                    index_t active_y);

}  // namespace mmw::antenna
