#include "antenna/geometry.h"

namespace mmw::antenna {

ArrayGeometry ArrayGeometry::ula(index_t n, real spacing) {
  MMW_REQUIRE_MSG(n > 0, "array needs at least one element");
  MMW_REQUIRE_MSG(spacing > 0.0, "element spacing must be positive");
  std::vector<Position> positions;
  positions.reserve(n);
  for (index_t i = 0; i < n; ++i)
    positions.push_back({static_cast<real>(i) * spacing, 0.0, 0.0});
  return ArrayGeometry(std::move(positions), n, 1);
}

ArrayGeometry ArrayGeometry::upa(index_t nx, index_t ny, real spacing) {
  MMW_REQUIRE_MSG(nx > 0 && ny > 0, "array needs at least one element");
  MMW_REQUIRE_MSG(spacing > 0.0, "element spacing must be positive");
  std::vector<Position> positions;
  positions.reserve(nx * ny);
  for (index_t ix = 0; ix < nx; ++ix)
    for (index_t iy = 0; iy < ny; ++iy)
      positions.push_back({static_cast<real>(ix) * spacing,
                           static_cast<real>(iy) * spacing, 0.0});
  return ArrayGeometry(std::move(positions), nx, ny);
}

}  // namespace mmw::antenna
