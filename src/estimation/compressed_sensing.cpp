#include "estimation/compressed_sensing.h"

#include <algorithm>
#include <cmath>

#include "antenna/steering.h"
#include "linalg/decompositions.h"

namespace mmw::estimation {

using linalg::Matrix;
using linalg::Vector;

BeamspaceDictionary::BeamspaceDictionary(const antenna::ArrayGeometry& tx,
                                         const antenna::ArrayGeometry& rx,
                                         index_t tx_az, index_t tx_el,
                                         index_t rx_az, index_t rx_el,
                                         real az_min, real az_max,
                                         real el_min, real el_max) {
  MMW_REQUIRE(tx_az >= 1 && tx_el >= 1 && rx_az >= 1 && rx_el >= 1);
  MMW_REQUIRE(az_min < az_max && el_min <= el_max);
  auto grid = [&](const antenna::ArrayGeometry& geo, index_t n_az,
                  index_t n_el, std::vector<Vector>& steering,
                  std::vector<antenna::Direction>& dirs) {
    for (index_t ia = 0; ia < n_az; ++ia) {
      const real az = n_az == 1 ? az_min
                                : az_min + (az_max - az_min) *
                                               static_cast<real>(ia) /
                                               static_cast<real>(n_az - 1);
      for (index_t ie = 0; ie < n_el; ++ie) {
        const real el = n_el == 1 ? el_min
                                  : el_min + (el_max - el_min) *
                                                 static_cast<real>(ie) /
                                                 static_cast<real>(n_el - 1);
        dirs.push_back({az, el});
        steering.push_back(antenna::steering_vector(geo, {az, el}));
      }
    }
  };
  grid(tx, tx_az, tx_el, tx_steering_, tx_dirs_);
  grid(rx, rx_az, rx_el, rx_steering_, rx_dirs_);
}

OmpResult omp_channel_estimate(const BeamspaceDictionary& dict,
                               std::span<const CoherentMeasurement> ms,
                               const OmpOptions& opts) {
  MMW_REQUIRE_MSG(!ms.empty(), "need at least one measurement");
  MMW_REQUIRE(opts.max_atoms >= 1);
  MMW_REQUIRE_MSG(opts.max_atoms <= ms.size(),
                  "more atoms than measurements is underdetermined");
  const index_t m_count = ms.size();
  for (const CoherentMeasurement& m : ms) {
    MMW_REQUIRE(m.tx_beam.size() == dict.tx_steering(0).size());
    MMW_REQUIRE(m.rx_beam.size() == dict.rx_steering(0).size());
  }

  // Precompute the factorized sensing coefficients:
  //   z_k = Σ_{ij} x_{ij} · rxc[k][j] · txc[k][i],
  // where txc[k][i] = a_tx,iᴴ u_k and rxc[k][j] = v_kᴴ a_rx,j.
  const index_t gt = dict.tx_atoms();
  const index_t gr = dict.rx_atoms();
  std::vector<cx> txc(m_count * gt), rxc(m_count * gr);
  for (index_t k = 0; k < m_count; ++k) {
    for (index_t i = 0; i < gt; ++i)
      txc[k * gt + i] = linalg::dot(dict.tx_steering(i), ms[k].tx_beam);
    for (index_t j = 0; j < gr; ++j)
      rxc[k * gr + j] = linalg::dot(ms[k].rx_beam, dict.rx_steering(j));
  }
  auto column = [&](index_t i, index_t j) {
    Vector phi(m_count);
    for (index_t k = 0; k < m_count; ++k)
      phi[k] = rxc[k * gr + j] * txc[k * gt + i];
    return phi;
  };

  Vector z(m_count);
  for (index_t k = 0; k < m_count; ++k) z[k] = ms[k].observation;
  const real z_norm = std::max(z.norm(), 1e-300);

  OmpResult result;
  Vector residual = z;
  std::vector<Vector> support_columns;

  for (index_t iter = 0; iter < opts.max_atoms; ++iter) {
    // Atom selection: maximize |φᴴ r| / ‖φ‖ over all (i, j) pairs.
    index_t best_i = 0, best_j = 0;
    real best_score = -1.0;
    for (index_t i = 0; i < gt; ++i) {
      for (index_t j = 0; j < gr; ++j) {
        cx corr{0.0, 0.0};
        real norm_sq = 0.0;
        for (index_t k = 0; k < m_count; ++k) {
          const cx phi = rxc[k * gr + j] * txc[k * gt + i];
          corr += std::conj(phi) * residual[k];
          norm_sq += std::norm(phi);
        }
        if (norm_sq <= 1e-24) continue;
        const real score = std::norm(corr) / norm_sq;
        if (score > best_score) {
          best_score = score;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_score <= 0.0) break;

    // Skip duplicates (can happen when the residual is pure noise).
    const bool duplicate = std::any_of(
        result.atoms.begin(), result.atoms.end(), [&](const auto& a) {
          return a.tx_index == best_i && a.rx_index == best_j;
        });
    if (duplicate) break;

    result.atoms.push_back({best_i, best_j, cx{0.0, 0.0}});
    support_columns.push_back(column(best_i, best_j));

    // Least squares on the support, then refresh the residual.
    Matrix phi_s(m_count, support_columns.size());
    for (index_t c = 0; c < support_columns.size(); ++c)
      phi_s.set_col(c, support_columns[c]);
    const Vector gains = linalg::least_squares(phi_s, z);
    for (index_t c = 0; c < result.atoms.size(); ++c)
      result.atoms[c].gain = gains[c];
    residual = z - phi_s * gains;

    result.relative_residual = residual.norm() / z_norm;
    if (result.relative_residual <= opts.residual_tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

Matrix synthesize_channel(const BeamspaceDictionary& dict,
                          const OmpResult& result) {
  const index_t n = dict.rx_steering(0).size();
  const index_t m = dict.tx_steering(0).size();
  Matrix h(n, m);
  for (const OmpResult::Atom& atom : result.atoms) {
    const Vector& ar = dict.rx_steering(atom.rx_index);
    const Vector& at = dict.tx_steering(atom.tx_index);
    for (index_t i = 0; i < n; ++i) {
      const cx gi = atom.gain * ar[i];
      for (index_t j = 0; j < m; ++j) h(i, j) += gi * std::conj(at[j]);
    }
  }
  return h;
}

}  // namespace mmw::estimation
