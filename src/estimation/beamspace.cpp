#include "estimation/beamspace.h"

#include <algorithm>

#include "linalg/functions.h"

namespace mmw::estimation {

using linalg::FactoredHermitian;
using linalg::Matrix;
using linalg::Vector;

FactoredHermitian expand_beam_space(std::span<const BeamComponent> components,
                                    const antenna::Codebook& codebook) {
  // Orthonormal basis of the named codewords, modified Gram–Schmidt with
  // the same dependence floor as the estimator's beam-span reduction.
  std::vector<Vector> basis;
  std::vector<index_t> live;  // indices into `components` with weight > 0
  for (index_t i = 0; i < components.size(); ++i) {
    const BeamComponent& c = components[i];
    MMW_REQUIRE_MSG(c.beam < codebook.size(),
                    "beam-space component names an out-of-range codeword");
    if (!(c.weight > 0.0)) continue;
    live.push_back(i);
    Vector v = codebook.codeword(c.beam);
    const real norm0 = v.norm();
    for (const Vector& b : basis) v -= linalg::dot(b, v) * b;
    if (v.norm() > 1e-9 * norm0) basis.push_back(v.normalized());
  }
  if (live.empty()) return FactoredHermitian{};

  const index_t n = codebook.codeword(0).size();
  const index_t r = basis.size();
  Matrix b(n, r);
  for (index_t k = 0; k < r; ++k) b.set_col(k, basis[k]);

  // Core = Σ w_i p_i p_iᴴ with p_i = Bᴴ c_i (exact: c_i lies in span(B)).
  Matrix core(r, r);
  Vector p(r);
  for (const index_t i : live) {
    const Vector& c = codebook.codeword(components[i].beam);
    for (index_t k = 0; k < r; ++k) p[k] = linalg::dot(basis[k], c);
    core.add_scaled_outer(cx{components[i].weight, 0.0}, p, p);
  }
  return FactoredHermitian(std::move(b), std::move(core));
}

std::vector<BeamComponent> compress_to_beam_space(
    const FactoredHermitian& q, const antenna::Codebook& codebook,
    index_t max_components, std::span<real> scores) {
  MMW_REQUIRE_MSG(max_components > 0, "need room for at least one component");
  MMW_REQUIRE_MSG(scores.size() == codebook.size(),
                  "scores scratch must cover every codeword");
  if (q.empty()) return {};
  codebook.covariance_scores_into(q, scores);

  // Top-k by (score desc, beam asc) without sorting the full score table:
  // selection over ≤ max_components candidates per codeword.
  std::vector<BeamComponent> out;
  out.reserve(max_components);
  for (index_t v = 0; v < scores.size(); ++v) {
    if (!(scores[v] > 0.0)) continue;
    if (out.size() == max_components && scores[v] <= out.back().weight)
      continue;  // ties keep the incumbent (lower beam index)
    BeamComponent c{v, scores[v]};
    auto pos = std::upper_bound(
        out.begin(), out.end(), c,
        [](const BeamComponent& a, const BeamComponent& b) {
          return a.weight > b.weight;  // stable: equal weights keep order
        });
    out.insert(pos, c);
    if (out.size() > max_components) out.pop_back();
  }
  std::sort(out.begin(), out.end(),
            [](const BeamComponent& a, const BeamComponent& b) {
              return a.beam < b.beam;
            });
  return out;
}

std::vector<BeamComponent> compress_to_beam_space(
    const FactoredHermitian& q, const antenna::Codebook& codebook,
    index_t max_components) {
  std::vector<real> scores(codebook.size());
  return compress_to_beam_space(q, codebook, max_components, scores);
}

std::vector<BeamComponent> merge_beam_space(
    std::span<const BeamComponent> prior, real forgetting,
    std::span<const BeamComponent> update, index_t max_components) {
  MMW_REQUIRE_MSG(forgetting >= 0.0 && forgetting <= 1.0,
                  "forgetting factor must be in [0, 1]");
  MMW_REQUIRE_MSG(max_components > 0, "need room for at least one component");
  // Two-pointer union over the canonically-ordered inputs.
  std::vector<BeamComponent> merged;
  merged.reserve(prior.size() + update.size());
  index_t i = 0, j = 0;
  while (i < prior.size() || j < update.size()) {
    if (j == update.size() ||
        (i < prior.size() && prior[i].beam < update[j].beam)) {
      MMW_REQUIRE_MSG(i + 1 == prior.size() ||
                          prior[i].beam < prior[i + 1].beam,
                      "prior components must be strictly ascending by beam");
      merged.push_back({prior[i].beam, forgetting * prior[i].weight});
      ++i;
    } else if (i == prior.size() || update[j].beam < prior[i].beam) {
      MMW_REQUIRE_MSG(j + 1 == update.size() ||
                          update[j].beam < update[j + 1].beam,
                      "update components must be strictly ascending by beam");
      merged.push_back(update[j]);
      ++j;
    } else {
      merged.push_back(
          {prior[i].beam, forgetting * prior[i].weight + update[j].weight});
      ++i;
      ++j;
    }
  }
  std::erase_if(merged, [](const BeamComponent& c) { return !(c.weight > 0.0); });
  if (merged.size() > max_components) {
    // Keep the heaviest; stable_sort preserves the ascending-beam order of
    // equals, implementing the lowest-index tie-break.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const BeamComponent& a, const BeamComponent& b) {
                       return a.weight > b.weight;
                     });
    merged.resize(max_components);
    std::sort(merged.begin(), merged.end(),
              [](const BeamComponent& a, const BeamComponent& b) {
                return a.beam < b.beam;
              });
  }
  return merged;
}

}  // namespace mmw::estimation
