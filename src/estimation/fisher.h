// Fisher information and Cramér–Rao bounds for the beam-energy measurement
// model. Each measurement energy is exponentially distributed with mean
// λ_j(Q) = v_jᴴ(Q + γ⁻¹I)v_j (paper eqs. 12–14, K·χ²/2K for K fades), so
// the information each beam carries about a scalar channel feature is
// computable in closed form — the yardstick the estimators are judged by,
// and a principled way to score candidate probe beams.
#pragma once

#include <span>

#include "estimation/measurement_model.h"

namespace mmw::estimation {

/// Fisher information of a single K-fade-averaged energy measurement about
/// its own mean λ: I(λ) = K/λ². Preconditions: lambda > 0, fades ≥ 1.
real energy_fisher_information(real lambda, index_t fades = 1);

/// Fisher information matrix about a scalar parameter vector θ that enters
/// the means linearly: λ_j = Σ_t θ_t·s_{jt} + 1/γ with known sensitivities
/// s. Entry (a,b) = Σ_j K·s_{ja}s_{jb}/λ_j². Used for codebook-domain
/// covariance coefficients (θ_t = power on beam t, s_{jt} = |v_jᴴc_t|²).
///
/// Preconditions: sensitivity row count divides evenly into measurements
/// (row-major J×T), all λ_j > 0.
linalg::Matrix linear_model_fisher_matrix(
    std::span<const real> sensitivities, index_t parameters,
    std::span<const real> lambdas, index_t fades = 1);

/// Cramér–Rao lower bound on the variance of any unbiased estimate of the
/// single scalar λ from J iid K-fade measurements: λ²/(J·K).
real scalar_crb(real lambda, index_t measurements, index_t fades = 1);

/// Information-theoretic probe score of a candidate RX beam v under a prior
/// covariance guess Q̂: the Fisher information the measurement would carry
/// about the beam's own Rayleigh quotient, K/λ(Q̂,v)² · (∂λ/∂q)² with the
/// natural ∂λ/∂q = 1 parameterization — i.e. beams whose predicted energy
/// is close to the noise floor are the most informative per unit energy.
/// (The paper instead probes the top Rayleigh quotients — exploitation;
/// this score is the exploration-optimal alternative, used in tests.)
real probe_information_score(const linalg::Matrix& q_hat,
                             const linalg::Vector& v, real gamma,
                             index_t fades = 1);

}  // namespace mmw::estimation
