#include "estimation/covariance_ml.h"

#include <algorithm>
#include <cmath>

#include "linalg/eig.h"
#include "linalg/functions.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmw::estimation {

using linalg::FactoredHermitian;
using linalg::Matrix;
using linalg::Vector;

namespace {

/// Euclidean gradient of the smooth part J(Q) = Σ log λ_j + w_j/λ_j:
///   ∇J = Σ_j (λ_j − w_j)/λ_j² · v_j v_jᴴ   (Hermitian).
Matrix gradient(const Matrix& q, std::span<const BeamMeasurement> ms,
                real gamma) {
  Matrix g(q.rows(), q.cols());
  for (const BeamMeasurement& m : ms) {
    const real lambda = expected_energy(q, m.beam, gamma);
    const real coeff = (lambda - m.energy) / (lambda * lambda);
    g.add_scaled_outer(cx{coeff, 0.0}, m.beam, m.beam);
  }
  return g;
}

real inner_real(const Matrix& a, const Matrix& b) {
  // Re tr(Aᴴ B) — the real inner product on Hermitian matrices.
  real acc = 0.0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j)
      acc += (std::conj(a(i, j)) * b(i, j)).real();
  return acc;
}

}  // namespace

namespace {

/// Dense solver output before the factored wrap-up.
struct SolveResult {
  Matrix q;
  real objective = 0.0;
  int iterations = 0;
  int backtracks = 0;  ///< rejected trial points across all iterations
  bool converged = false;
};

/// Telemetry handles for the proximal-gradient solver (DESIGN.md §8).
struct MlMetrics {
  obs::Counter solves;
  obs::Counter nonconverged;
  obs::Counter backtracks;
  obs::Histogram iterations;
  obs::Histogram recovered_rank;
  static const MlMetrics& get() {
    static const MlMetrics m{
        obs::Registry::global().counter("estimation.ml.solves"),
        obs::Registry::global().counter("estimation.ml.nonconverged"),
        obs::Registry::global().counter("estimation.ml.backtracks"),
        obs::Registry::global().histogram(
            "estimation.ml.iterations",
            obs::HistogramBuckets::exponential(1.0, 2.0, 12)),
        obs::Registry::global().histogram(
            "estimation.ml.recovered_rank",
            obs::HistogramBuckets::linear(0.0, 1.0, 17)),
    };
    return m;
  }
};

struct EmMetrics {
  obs::Counter solves;
  obs::Counter nonconverged;
  obs::Histogram iterations;
  static const EmMetrics& get() {
    static const EmMetrics m{
        obs::Registry::global().counter("estimation.em.solves"),
        obs::Registry::global().counter("estimation.em.nonconverged"),
        obs::Registry::global().histogram(
            "estimation.em.iterations",
            obs::HistogramBuckets::exponential(1.0, 2.0, 12)),
    };
    return m;
  }
};

/// Numerical rank of the recovered covariance: eigenvalues above a relative
/// floor. Only evaluated when instrumentation is on — it costs an r×r
/// eigendecomposition (r ≤ J) per solve.
index_t recovered_rank(const FactoredHermitian& q) {
  if (q.empty()) return 0;
  const linalg::EigResult eig = q.eig();
  if (eig.eigenvalues.empty()) return 0;
  const real floor = 1e-12 * std::max(eig.eigenvalues[0], real{0.0});
  index_t rank = 0;
  for (const real lambda : eig.eigenvalues)
    if (lambda > floor) ++rank;
  return rank;
}

/// Records the per-solve metrics shared by both wrapper entry points.
/// Satellite fix: non-converged solves used to vanish silently; they are now
/// counted (estimation.ml.nonconverged) and surface in run manifests. Beam
/// selection is unchanged — the estimate is still used as-is.
void record_ml_solve(const SolveResult& solve,
                     const CovarianceMlResult& result) {
  if (!obs::enabled()) return;
  const MlMetrics& m = MlMetrics::get();
  m.solves.add();
  if (!solve.converged) m.nonconverged.add();
  if (solve.backtracks > 0)
    m.backtracks.add(static_cast<std::uint64_t>(solve.backtracks));
  m.iterations.record(static_cast<real>(solve.iterations));
  m.recovered_rank.record(static_cast<real>(recovered_rank(result.q)));
}

/// Core projected proximal-gradient loop on an n-dimensional problem.
/// After the beam-span reduction n is the span rank r ≤ J, so every matrix
/// here — gradient, trial point, eigendecomposition inside the prox — is
/// r×r. The eigendecomposition is NOT hoisted out of the backtracking loop:
/// each trial point q − step·∇J has a different eigenbasis, so reusing one
/// across step sizes would change the iterates (and the golden figure
/// CSVs); one decomposition per trial point is the exact-arithmetic
/// optimum. The smooth objective, however, IS cached: the accepted trial's
/// likelihood is reused for both the convergence test and the next
/// iteration's linearization point, saving two full likelihood passes per
/// iteration at bit-identical results.
/// `init`, when non-null, replaces the moment-based starting iterate (the
/// warm-start entry point projects a prior estimate here); it must be an
/// n×n Hermitian PSD matrix. Null reproduces the cold start bit-for-bit.
SolveResult solve_full(index_t n,
                       std::span<const BeamMeasurement> measurements,
                       const CovarianceMlOptions& opts,
                       const Matrix* init = nullptr) {
  obs::TraceScope span("estimation.ml.solve", "estimation");
  span.arg("n", static_cast<double>(n));
  span.arg("measurements", static_cast<double>(measurements.size()));
  const bool tracing = span.active();

  // Moment-based warm start keeps the likelihood well-conditioned from the
  // first iteration (Q = 0 would put all mass on the noise floor).
  Matrix q = init != nullptr
                 ? *init
                 : sample_covariance_estimate(n, measurements, opts.gamma);

  SolveResult result;
  // Smooth part J(Q) at the current iterate; the penalized objective is
  // nll_cur + μ·tr(Q) (‖Q‖₁ = tr(Q) on the PSD cone).
  real nll_cur = negative_log_likelihood(q, measurements, opts.gamma);
  real f_prev = nll_cur + opts.mu * q.trace().real();
  real step = opts.initial_step;
  if (tracing)
    obs::TraceCollector::global().counter("estimation.ml.nll", nll_cur);

  for (int it = 0; it < opts.max_iterations; ++it) {
    const Matrix grad = gradient(q, measurements, opts.gamma);
    const real f_smooth = nll_cur;

    // Backtracking proximal gradient step.
    Matrix q_next = q;
    real nll_next = nll_cur;
    bool accepted = false;
    for (int bt = 0; bt < opts.max_backtracks; ++bt) {
      const Matrix trial = linalg::eigenvalue_soft_threshold(
          q - cx{step, 0.0} * grad, step * opts.mu);
      const Matrix delta = trial - q;
      const real quad =
          f_smooth + inner_real(grad, delta) +
          inner_real(delta, delta) / (2.0 * step);
      const real f_trial =
          negative_log_likelihood(trial, measurements, opts.gamma);
      if (f_trial <= quad + 1e-12 * std::abs(quad)) {
        q_next = trial;
        nll_next = f_trial;
        accepted = true;
        break;
      }
      step *= 0.5;
      ++result.backtracks;
    }
    if (!accepted) {
      // The step has shrunk below usefulness: we are at (numerical)
      // stationarity.
      result.converged = true;
      result.iterations = it;
      break;
    }

    q = q_next;
    nll_cur = nll_next;
    const real f_now = nll_cur + opts.mu * q.trace().real();
    result.iterations = it + 1;
    if (tracing)
      obs::TraceCollector::global().counter("estimation.ml.nll", nll_cur);
    if (std::abs(f_prev - f_now) <=
        opts.tolerance * std::max(1.0, std::abs(f_prev))) {
      result.converged = true;
      f_prev = f_now;
      break;
    }
    f_prev = f_now;
    // Gentle step recovery so one conservative backtrack doesn't pin the
    // step size for the rest of the run.
    step = std::min(step * 2.0, opts.initial_step);
  }

  result.q = std::move(q);
  result.objective = f_prev;
  span.arg("iterations", static_cast<double>(result.iterations));
  span.arg("converged", result.converged ? 1.0 : 0.0);
  return result;
}

/// Exact subspace reduction shared by both likelihood solvers. The
/// likelihood depends on Q only through v_jᴴ Q v_j, and replacing Q by
/// P Q P (P = projector onto span{v_j}) leaves every λ_j unchanged while
/// never increasing tr(Q); hence an optimum exists inside the beam span
/// and an r×r problem (r ≤ J ≪ N) can be solved instead of an N×N one.
struct ReducedProblem {
  std::vector<Vector> basis;             ///< orthonormal basis of span{v_j}
  std::vector<BeamMeasurement> reduced;  ///< measurements with ṽ = Bᴴv

  /// Basis packed as the N×r matrix FactoredHermitian stores (column k =
  /// basis[k]).
  Matrix basis_matrix(index_t n) const {
    Matrix b(n, basis.size());
    for (index_t k = 0; k < basis.size(); ++k) b.set_col(k, basis[k]);
    return b;
  }
};

ReducedProblem reduce_to_beam_span(
    std::span<const BeamMeasurement> measurements) {
  ReducedProblem out;
  // Modified Gram–Schmidt, dropping nearly dependent beams.
  for (const BeamMeasurement& m : measurements) {
    Vector v = m.beam;
    for (const Vector& b : out.basis) v -= linalg::dot(b, v) * b;
    if (v.norm() > 1e-9 * m.beam.norm())
      out.basis.push_back(v.normalized());
  }
  const index_t r = out.basis.size();
  out.reduced.reserve(measurements.size());
  for (const BeamMeasurement& m : measurements) {
    Vector vt(r);
    for (index_t k = 0; k < r; ++k) vt[k] = linalg::dot(out.basis[k], m.beam);
    out.reduced.push_back({std::move(vt), m.energy});
  }
  return out;
}

void check_measurements(index_t n,
                        std::span<const BeamMeasurement> measurements) {
  MMW_REQUIRE_MSG(!measurements.empty(), "need at least one measurement");
  for (const BeamMeasurement& m : measurements)
    MMW_REQUIRE_MSG(m.beam.size() == n, "beam dimension mismatch");
}

}  // namespace

CovarianceMlResult estimate_covariance_ml(
    index_t n, std::span<const BeamMeasurement> measurements,
    const CovarianceMlOptions& opts) {
  check_measurements(n, measurements);
  MMW_REQUIRE(opts.mu >= 0.0);
  MMW_REQUIRE(opts.gamma > 0.0);
  MMW_REQUIRE(opts.max_iterations > 0);

  CovarianceMlResult result;
  const ReducedProblem rp = reduce_to_beam_span(measurements);
  if (rp.basis.size() == n) {
    // Beams already span the full space; no reduction possible.
    SolveResult full = solve_full(n, measurements, opts);
    result.q = FactoredHermitian::from_dense(std::move(full.q));
    result.objective = full.objective;
    result.iterations = full.iterations;
    result.converged = full.converged;
    record_ml_solve(full, result);
    return result;
  }
  SolveResult red = solve_full(rp.basis.size(), rp.reduced, opts);
  result.q = FactoredHermitian(rp.basis_matrix(n), std::move(red.q));
  result.objective = red.objective;
  result.iterations = red.iterations;
  result.converged = red.converged;
  record_ml_solve(red, result);
  return result;
}

CovarianceMlResult estimate_covariance_ml_warm(
    index_t n, std::span<const BeamMeasurement> measurements,
    const CovarianceMlOptions& opts,
    const linalg::FactoredHermitian& prior) {
  if (prior.empty()) return estimate_covariance_ml(n, measurements, opts);
  check_measurements(n, measurements);
  MMW_REQUIRE_MSG(prior.dim() == n, "prior dimension mismatch");
  MMW_REQUIRE(opts.mu >= 0.0);
  MMW_REQUIRE(opts.gamma > 0.0);
  MMW_REQUIRE(opts.max_iterations > 0);

  CovarianceMlResult result;
  const ReducedProblem rp = reduce_to_beam_span(measurements);
  if (rp.basis.size() == n) {
    const Matrix init = prior.dense();
    SolveResult full = solve_full(n, measurements, opts, &init);
    result.q = FactoredHermitian::from_dense(std::move(full.q));
    result.objective = full.objective;
    result.iterations = full.iterations;
    result.converged = full.converged;
    record_ml_solve(full, result);
    return result;
  }
  // Project the prior into the measured beam span: q₀(k,l) = b_kᴴ(Q b_l).
  // The compression B Bᴴ Q B Bᴴ of a PSD prior is PSD, so the solver starts
  // inside its feasible cone. Explicit Hermitization kills the rounding
  // asymmetry of computing the two triangles from separate apply() calls.
  const index_t r = rp.basis.size();
  Matrix init(r, r);
  for (index_t l = 0; l < r; ++l) {
    const Vector ql = prior.apply(rp.basis[l]);
    for (index_t k = 0; k < r; ++k)
      init(k, l) = linalg::dot(rp.basis[k], ql);
  }
  for (index_t k = 0; k < r; ++k) {
    init(k, k) = cx{init(k, k).real(), 0.0};
    for (index_t l = k + 1; l < r; ++l) {
      const cx avg = 0.5 * (init(k, l) + std::conj(init(l, k)));
      init(k, l) = avg;
      init(l, k) = std::conj(avg);
    }
  }
  SolveResult red = solve_full(r, rp.reduced, opts, &init);
  result.q = FactoredHermitian(rp.basis_matrix(n), std::move(red.q));
  result.objective = red.objective;
  result.iterations = red.iterations;
  result.converged = red.converged;
  record_ml_solve(red, result);
  return result;
}

CovarianceMlResult estimate_covariance_em(
    index_t n, std::span<const BeamMeasurement> measurements,
    const CovarianceEmOptions& opts) {
  check_measurements(n, measurements);
  MMW_REQUIRE(opts.mu >= 0.0);
  MMW_REQUIRE(opts.gamma > 0.0);
  MMW_REQUIRE(opts.max_iterations > 0);

  const ReducedProblem rp = reduce_to_beam_span(measurements);
  const bool reduced = rp.basis.size() < n;
  const std::span<const BeamMeasurement> ms =
      reduced ? std::span<const BeamMeasurement>(rp.reduced)
              : measurements;
  const index_t dim = reduced ? rp.basis.size() : n;
  const real j_count = static_cast<real>(ms.size());

  obs::TraceScope span("estimation.em.solve", "estimation");
  span.arg("n", static_cast<double>(dim));
  span.arg("measurements", static_cast<double>(ms.size()));
  const bool tracing = span.active();

  Matrix q = sample_covariance_estimate(dim, ms, opts.gamma);
  // A zero warm start is an EM fixed point; nudge it off the boundary.
  if (q.trace().real() <= 0.0)
    q = Matrix::identity(dim) * cx{1.0 / opts.gamma, 0.0};

  CovarianceMlResult result;
  real nll_prev = negative_log_likelihood(q, ms, opts.gamma);
  for (int it = 0; it < opts.max_iterations; ++it) {
    // E-step folded into the M-step update:
    //   S = Q − (1/J) Σ_j (1 − w_j/λ_j)·(Q v_j)(Q v_j)ᴴ / λ_j.
    Matrix s = q;
    for (const BeamMeasurement& m : ms) {
      const real lambda = expected_energy(q, m.beam, opts.gamma);
      const Vector qv = q * m.beam;
      const real coeff =
          (1.0 - m.energy / lambda) / (lambda * j_count);
      s.add_scaled_outer(cx{-coeff, 0.0}, qv, qv);
    }
    if (opts.mu == 0.0) {
      q = std::move(s);
    } else {
      // Penalized M-step: with S = U diag(d) Uᴴ, each eigenvalue solves
      // μ·q² + J·q − J·d = 0 (trace penalty μ on the complete-data ML).
      const linalg::EigResult eig = linalg::hermitian_eig_ql(s);
      std::vector<real> shrunk(eig.eigenvalues.size());
      for (index_t k = 0; k < shrunk.size(); ++k) {
        const real d = std::max(eig.eigenvalues[k], 0.0);
        shrunk[k] = (-j_count + std::sqrt(j_count * j_count +
                                          4.0 * opts.mu * j_count * d)) /
                    (2.0 * opts.mu);
      }
      Matrix rebuilt(dim, dim);
      for (index_t k = 0; k < shrunk.size(); ++k) {
        if (shrunk[k] == 0.0) continue;
        const Vector uk = eig.eigenvectors.col(k);
        rebuilt.add_scaled_outer(cx{shrunk[k], 0.0}, uk, uk);
      }
      q = std::move(rebuilt);
    }

    const real nll = negative_log_likelihood(q, ms, opts.gamma);
    result.iterations = it + 1;
    if (tracing)
      obs::TraceCollector::global().counter("estimation.em.nll", nll);
    if (std::abs(nll_prev - nll) <=
        opts.tolerance * std::max(1.0, std::abs(nll_prev))) {
      result.converged = true;
      nll_prev = nll;
      break;
    }
    nll_prev = nll;
  }
  result.objective = nll_prev + opts.mu * q.trace().real();
  result.q = reduced
                 ? FactoredHermitian(rp.basis_matrix(n), std::move(q))
                 : FactoredHermitian::from_dense(std::move(q));
  span.arg("iterations", static_cast<double>(result.iterations));
  span.arg("converged", result.converged ? 1.0 : 0.0);
  if (obs::enabled()) {
    const EmMetrics& m = EmMetrics::get();
    m.solves.add();
    if (!result.converged) m.nonconverged.add();
    m.iterations.record(static_cast<real>(result.iterations));
  }
  return result;
}

Matrix sample_covariance_estimate(index_t n,
                                  std::span<const BeamMeasurement> ms,
                                  real gamma) {
  MMW_REQUIRE(!ms.empty());
  MMW_REQUIRE(gamma > 0.0);
  Matrix q(n, n);
  for (const BeamMeasurement& m : ms) {
    MMW_REQUIRE(m.beam.size() == n);
    const real excess =
        std::max(m.energy - m.beam.squared_norm() / gamma, 0.0);
    q.add_scaled_outer(cx{excess, 0.0}, m.beam, m.beam);
  }
  const real scale =
      static_cast<real>(n) / static_cast<real>(ms.size());
  return q * cx{scale, 0.0};
}

Matrix diagonal_loading_estimate(index_t n,
                                 std::span<const BeamMeasurement> ms,
                                 real gamma, real epsilon) {
  MMW_REQUIRE(epsilon >= 0.0);
  Matrix q = sample_covariance_estimate(n, ms, gamma);
  const real load = epsilon * q.trace().real() / static_cast<real>(n);
  return q + Matrix::identity(n) * cx{load, 0.0};
}

}  // namespace mmw::estimation
