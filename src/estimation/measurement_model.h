// The measurement model shared by the covariance estimators.
//
// Within a TX-slot the receiver observes, for RX beam v_j, the matched-filter
// output z_j = v_jᴴ h_j + n_j with h_j ~ CN(0, Q) iid and n_j ~ CN(0, 1/γ)
// (paper eqs. 7–9 after normalization by the signal energy). Hence
//   |z_j|² ~ (λ_j/2)·χ²₂  with  λ_j(Q) = v_jᴴ (Q + γ⁻¹ I) v_j   (eq. 14).
// The energies |z_j|² are the sufficient statistics the estimators consume.
#pragma once

#include <span>

#include "linalg/factored.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace mmw::estimation {

/// One beam-domain energy measurement: the RX beam used and the measured
/// matched-filter energy |z|².
struct BeamMeasurement {
  linalg::Vector beam;  ///< unit-norm RX beamforming vector v_j
  real energy = 0.0;    ///< |z_j|²
};

/// Expected measurement energy λ(Q) = vᴴ(Q + γ⁻¹I)v for SNR γ (paper eq. 14).
real expected_energy(const linalg::Matrix& q, const linalg::Vector& v,
                     real gamma);

/// Factored form: the Rayleigh quotient goes through the beam-span factor,
/// O(N·r + r²) instead of O(N²).
real expected_energy(const linalg::FactoredHermitian& q,
                     const linalg::Vector& v, real gamma);

/// Negative log-likelihood of the measurement set under covariance Q:
///   J(Q) = Σ_j [ log λ_j(Q) + |z_j|² / λ_j(Q) ]          (paper eq. 18).
real negative_log_likelihood(const linalg::Matrix& q,
                             std::span<const BeamMeasurement> measurements,
                             real gamma);

/// Factored overload — same value, evaluated through the factor.
real negative_log_likelihood(const linalg::FactoredHermitian& q,
                             std::span<const BeamMeasurement> measurements,
                             real gamma);

}  // namespace mmw::estimation
