#include "estimation/measurement_model.h"

#include <cmath>

#include "obs/metrics.h"

namespace mmw::estimation {

real expected_energy(const linalg::Matrix& q, const linalg::Vector& v,
                     real gamma) {
  MMW_REQUIRE(gamma > 0.0);
  return linalg::hermitian_form(v, q) + v.squared_norm() / gamma;
}

real expected_energy(const linalg::FactoredHermitian& q,
                     const linalg::Vector& v, real gamma) {
  MMW_REQUIRE(gamma > 0.0);
  return q.rayleigh(v) + v.squared_norm() / gamma;
}

namespace {

template <typename Cov>
real nll_impl(const Cov& q, std::span<const BeamMeasurement> measurements,
              real gamma) {
  // Likelihood passes dominate solver cost; the count (vs. solver
  // iterations) exposes how much the backtracking line search re-evaluates.
  if (obs::enabled()) {
    static const obs::Counter evals =
        obs::Registry::global().counter("estimation.nll_evals");
    evals.add();
  }
  real acc = 0.0;
  for (const BeamMeasurement& m : measurements) {
    const real lambda = expected_energy(q, m.beam, gamma);
    MMW_REQUIRE_MSG(lambda > 0.0, "non-positive predicted energy");
    acc += std::log(lambda) + m.energy / lambda;
  }
  return acc;
}

}  // namespace

real negative_log_likelihood(const linalg::Matrix& q,
                             std::span<const BeamMeasurement> measurements,
                             real gamma) {
  return nll_impl(q, measurements, gamma);
}

real negative_log_likelihood(const linalg::FactoredHermitian& q,
                             std::span<const BeamMeasurement> measurements,
                             real gamma) {
  return nll_impl(q, measurements, gamma);
}

}  // namespace mmw::estimation
