#include "estimation/measurement_model.h"

#include <cmath>

namespace mmw::estimation {

real expected_energy(const linalg::Matrix& q, const linalg::Vector& v,
                     real gamma) {
  MMW_REQUIRE(gamma > 0.0);
  return linalg::hermitian_form(v, q) + v.squared_norm() / gamma;
}

real negative_log_likelihood(const linalg::Matrix& q,
                             std::span<const BeamMeasurement> measurements,
                             real gamma) {
  real acc = 0.0;
  for (const BeamMeasurement& m : measurements) {
    const real lambda = expected_energy(q, m.beam, gamma);
    MMW_REQUIRE_MSG(lambda > 0.0, "non-positive predicted energy");
    acc += std::log(lambda) + m.energy / lambda;
  }
  return acc;
}

}  // namespace mmw::estimation
