// Structured failure propagation for the covariance estimators: a
// SolveStatus-carrying wrapper with a fixed degradation ladder, so the
// alignment hot path never has to let a solver exception escape a trial.
//
// Ladder (DESIGN.md §11): primary estimator → EM → PSD-projected sample
// covariance → uniform prior. Each rung is strictly cheaper and strictly
// more conservative than the one above; the last rung cannot fail. A rung
// falls through when it throws (convergence_error, precondition_error),
// returns a non-finite estimate, or — ONLY while a fault context is armed
// (fault::current_trial_faults) — reports non-convergence. Clean runs take
// the primary rung unconditionally and are bit-identical to calling the
// underlying estimator directly, which is what keeps the committed golden
// figures byte-stable with faults disabled.
#pragma once

#include <span>

#include "estimation/covariance_ml.h"

namespace mmw::estimation {

/// Which covariance estimator a strategy runs as its primary rung (the A4
/// ablation switch; core::EstimatorKind aliases this).
enum class EstimatorKind {
  kRegularizedMl,     ///< nuclear-norm-regularized ML (the paper's, eq. 23)
  kEmMl,              ///< EM solver of the same likelihood (ref [5] family)
  kSampleCovariance,  ///< moment matching baseline
  kDiagonalLoading,   ///< moment matching + ridge baseline
};

/// The ladder rung an estimate finally came from.
enum class SolveRung : int {
  kPrimary = 0,  ///< the configured estimator succeeded
  kEm = 1,       ///< fell back to the EM solver
  kSample = 2,   ///< fell back to the PSD-projected sample covariance
  kUniform = 3,  ///< fell back to the uniform (scaled-identity) prior
};

/// What happened to the primary attempt.
enum class SolveStatus {
  kOk,            ///< converged (or non-convergence accepted: no faults armed)
  kNonConverged,  ///< iteration budget exhausted while faults were armed
  kStressed,      ///< forced solver stress (starved budget, treated as failed)
  kThrew,         ///< solver threw or produced a non-finite estimate
};

struct RobustEstimateResult {
  linalg::FactoredHermitian q;  ///< always finite, Hermitian PSD
  SolveRung rung = SolveRung::kPrimary;
  SolveStatus primary_status = SolveStatus::kOk;
};

/// Estimates an n×n covariance with the degradation ladder. Never throws
/// for solver-side reasons (precondition violations of the *call itself* —
/// empty measurements, bad options — still throw).
///
/// Observability: estimation.fallback.{em,sample,uniform} count the final
/// rung of every degraded solve and estimation.fallback.stressed counts
/// forced-stress injections; the armed fault context (when present)
/// accumulates the same tallies per trial for the E8 robustness matrix.
RobustEstimateResult robust_estimate_covariance(
    index_t n, std::span<const BeamMeasurement> measurements,
    const CovarianceMlOptions& options, EstimatorKind kind);

}  // namespace mmw::estimation
