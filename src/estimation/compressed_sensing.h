// Compressed-sensing channel estimation in beamspace: recover the sparse
// mmWave channel H ≈ Σ_k g_k · a_rx(θ_k) a_tx(φ_k)ᴴ from a few beamformed
// COHERENT measurements z = vᴴ H u + n via Orthogonal Matching Pursuit over
// a dictionary of steering-vector pairs (the Alkhateeb/Heath estimator
// family the paper's related work builds on).
//
// Contrast with estimation/covariance_ml.h: the covariance estimator works
// from measurement ENERGIES and tolerates the channel refading between
// measurements (the paper's model); OMP needs the complex z's, i.e. all
// measurements inside one channel coherence interval. Both substrates are
// provided; see examples/sparse_channel_estimation.
#pragma once

#include <span>
#include <vector>

#include "antenna/codebook.h"
#include "antenna/geometry.h"
#include "linalg/matrix.h"

namespace mmw::estimation {

/// Factorized dictionary of candidate departure/arrival steering vectors on
/// oversampled angular grids; atom (i, j) is the rank-one matrix
/// a_rx[j] a_tx[i]ᴴ.
class BeamspaceDictionary {
 public:
  /// Uniform angular grids over the sector at both ends.
  BeamspaceDictionary(const antenna::ArrayGeometry& tx,
                      const antenna::ArrayGeometry& rx, index_t tx_az,
                      index_t tx_el, index_t rx_az, index_t rx_el,
                      real az_min, real az_max, real el_min, real el_max);

  index_t tx_atoms() const { return tx_steering_.size(); }
  index_t rx_atoms() const { return rx_steering_.size(); }
  index_t size() const { return tx_atoms() * rx_atoms(); }

  const linalg::Vector& tx_steering(index_t i) const { return tx_steering_[i]; }
  const linalg::Vector& rx_steering(index_t j) const { return rx_steering_[j]; }
  const antenna::Direction& tx_direction(index_t i) const { return tx_dirs_[i]; }
  const antenna::Direction& rx_direction(index_t j) const { return rx_dirs_[j]; }

 private:
  std::vector<linalg::Vector> tx_steering_;
  std::vector<linalg::Vector> rx_steering_;
  std::vector<antenna::Direction> tx_dirs_;
  std::vector<antenna::Direction> rx_dirs_;
};

/// One coherent beamformed observation z = vᴴ H u + n.
struct CoherentMeasurement {
  linalg::Vector tx_beam;  ///< u
  linalg::Vector rx_beam;  ///< v
  cx observation;          ///< z
};

struct OmpOptions {
  index_t max_atoms = 6;       ///< sparsity budget (paths to extract)
  real residual_tolerance = 5e-2;  ///< stop when ‖r‖/‖z‖ falls below
};

struct OmpResult {
  /// One recovered path: dictionary indices and complex gain.
  struct Atom {
    index_t tx_index = 0;
    index_t rx_index = 0;
    cx gain;
  };
  std::vector<Atom> atoms;
  real relative_residual = 1.0;
  bool converged = false;  ///< residual tolerance reached
};

/// OMP over the pair dictionary. Preconditions: at least one measurement,
/// beams sized to the dictionary's arrays, max_atoms ≥ 1 and not larger
/// than the measurement count.
OmpResult omp_channel_estimate(const BeamspaceDictionary& dictionary,
                               std::span<const CoherentMeasurement> ms,
                               const OmpOptions& options = {});

/// Synthesizes the channel estimate Ĥ = Σ g_k a_rx a_txᴴ from OMP atoms.
linalg::Matrix synthesize_channel(const BeamspaceDictionary& dictionary,
                                  const OmpResult& result);

}  // namespace mmw::estimation
