#include "estimation/fisher.h"

#include <cmath>

namespace mmw::estimation {

real energy_fisher_information(real lambda, index_t fades) {
  MMW_REQUIRE_MSG(lambda > 0.0, "lambda must be positive");
  MMW_REQUIRE(fades >= 1);
  // w̄ ~ Gamma(K, λ/K): I(λ) = K/λ².
  return static_cast<real>(fades) / (lambda * lambda);
}

linalg::Matrix linear_model_fisher_matrix(std::span<const real> sensitivities,
                                          index_t parameters,
                                          std::span<const real> lambdas,
                                          index_t fades) {
  MMW_REQUIRE(parameters >= 1);
  MMW_REQUIRE_MSG(!lambdas.empty(), "need at least one measurement");
  MMW_REQUIRE_MSG(sensitivities.size() == lambdas.size() * parameters,
                  "sensitivity matrix shape mismatch");
  linalg::Matrix fim(parameters, parameters);
  for (index_t j = 0; j < lambdas.size(); ++j) {
    const real info = energy_fisher_information(lambdas[j], fades);
    for (index_t a = 0; a < parameters; ++a) {
      const real sa = sensitivities[j * parameters + a];
      if (sa == 0.0) continue;
      for (index_t b = 0; b < parameters; ++b)
        fim(a, b) += cx{info * sa * sensitivities[j * parameters + b], 0.0};
    }
  }
  return fim;
}

real scalar_crb(real lambda, index_t measurements, index_t fades) {
  MMW_REQUIRE(measurements >= 1);
  return 1.0 / (static_cast<real>(measurements) *
                energy_fisher_information(lambda, fades));
}

real probe_information_score(const linalg::Matrix& q_hat,
                             const linalg::Vector& v, real gamma,
                             index_t fades) {
  MMW_REQUIRE(gamma > 0.0);
  const real lambda = expected_energy(q_hat, v, gamma);
  return energy_fisher_information(lambda, fades);
}

}  // namespace mmw::estimation
