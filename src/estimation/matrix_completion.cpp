#include "estimation/matrix_completion.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "linalg/eig.h"

namespace mmw::estimation {

using linalg::Matrix;

namespace {

void check_entries(index_t rows, index_t cols,
                   std::span<const ObservedEntry> entries) {
  MMW_REQUIRE_MSG(!entries.empty(), "need at least one observed entry");
  std::set<std::pair<index_t, index_t>> seen;
  for (const ObservedEntry& e : entries) {
    MMW_REQUIRE_MSG(e.row < rows && e.col < cols, "entry out of range");
    MMW_REQUIRE_MSG(seen.insert({e.row, e.col}).second,
                    "duplicate observed entry");
  }
}

real observed_norm(std::span<const ObservedEntry> entries) {
  real acc = 0.0;
  for (const ObservedEntry& e : entries) acc += std::norm(e.value);
  return std::sqrt(acc);
}

real residual_on_observed(const Matrix& x,
                          std::span<const ObservedEntry> entries) {
  real acc = 0.0;
  for (const ObservedEntry& e : entries)
    acc += std::norm(x(e.row, e.col) - e.value);
  return std::sqrt(acc);
}

real default_tau(index_t rows, index_t cols, real tau) {
  if (tau > 0.0) return tau;
  // The SVT paper's heuristic: τ = 5·√(n₁·n₂).
  return 5.0 * std::sqrt(static_cast<real>(rows) * static_cast<real>(cols));
}

}  // namespace

Matrix singular_value_shrink(const Matrix& x, real tau) {
  MMW_REQUIRE(tau >= 0.0);
  const linalg::SvdResult s = linalg::svd(x);
  Matrix out(x.rows(), x.cols());
  for (index_t k = 0; k < s.singular_values.size(); ++k) {
    const real shrunk = s.singular_values[k] - tau;
    if (shrunk <= 0.0) continue;
    const linalg::Vector uk = s.u.col(k);
    const linalg::Vector vk = s.v.col(k);
    for (index_t i = 0; i < x.rows(); ++i) {
      const cx scaled = shrunk * uk[i];
      for (index_t j = 0; j < x.cols(); ++j)
        out(i, j) += scaled * std::conj(vk[j]);
    }
  }
  return out;
}

MatrixCompletionResult complete_svt(index_t rows, index_t cols,
                                    std::span<const ObservedEntry> entries,
                                    const MatrixCompletionOptions& opts) {
  check_entries(rows, cols, entries);
  MMW_REQUIRE(opts.max_iterations > 0);
  const real tau = default_tau(rows, cols, opts.tau);
  const real sampling_ratio = static_cast<real>(entries.size()) /
                              (static_cast<real>(rows) * cols);
  const real delta = opts.step / sampling_ratio;
  const real m_norm = std::max(observed_norm(entries), 1e-300);

  MatrixCompletionResult result;
  Matrix y(rows, cols);
  // Warm start the dual so the first shrink is not identically zero: the
  // SVT paper's k₀ scaling.
  {
    real spectral_guess = 0.0;
    Matrix p_omega(rows, cols);
    for (const ObservedEntry& e : entries) p_omega(e.row, e.col) = e.value;
    spectral_guess = std::max(linalg::svd(p_omega).singular_values[0], 1e-300);
    const real k0 = std::ceil(tau / (delta * spectral_guess));
    y = p_omega * cx{k0 * delta, 0.0};
  }

  for (int it = 0; it < opts.max_iterations; ++it) {
    const Matrix x = singular_value_shrink(y, tau);
    const real res = residual_on_observed(x, entries) / m_norm;
    result.iterations = it + 1;
    result.relative_residual = res;
    if (res <= opts.tolerance) {
      result.x = x;
      result.converged = true;
      return result;
    }
    for (const ObservedEntry& e : entries)
      y(e.row, e.col) += delta * (e.value - x(e.row, e.col));
    if (it + 1 == opts.max_iterations) result.x = x;
  }
  return result;
}

MatrixCompletionResult complete_soft_impute(
    index_t rows, index_t cols, std::span<const ObservedEntry> entries,
    const MatrixCompletionOptions& opts) {
  check_entries(rows, cols, entries);
  MMW_REQUIRE(opts.max_iterations > 0);
  const real tau = default_tau(rows, cols, opts.tau) *
                   0.002;  // soft-impute wants a much smaller threshold
  const real m_norm = std::max(observed_norm(entries), 1e-300);

  MatrixCompletionResult result;
  Matrix x(rows, cols);
  for (int it = 0; it < opts.max_iterations; ++it) {
    Matrix z = x;
    for (const ObservedEntry& e : entries)
      z(e.row, e.col) = e.value;  // X + P_Ω(M − X)
    const Matrix x_next = singular_value_shrink(z, tau);
    const real change = (x_next - x).frobenius_norm() /
                        std::max(x.frobenius_norm(), 1.0);
    x = x_next;
    result.iterations = it + 1;
    result.relative_residual = residual_on_observed(x, entries) / m_norm;
    if (change <= opts.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.x = std::move(x);
  return result;
}

}  // namespace mmw::estimation
