#include "estimation/robust.h"

#include <cmath>
#include <utility>

#include "fault/context.h"
#include "linalg/functions.h"
#include "obs/metrics.h"

namespace mmw::estimation {

namespace {

/// Degradation-ladder telemetry (DESIGN.md §11): one count per degraded
/// solve, keyed by the rung that finally produced the estimate, plus the
/// forced-stress injections.
struct FallbackMetrics {
  obs::Counter em;
  obs::Counter sample;
  obs::Counter uniform;
  obs::Counter stressed;
  static const FallbackMetrics& get() {
    static const FallbackMetrics m{
        obs::Registry::global().counter("estimation.fallback.em"),
        obs::Registry::global().counter("estimation.fallback.sample"),
        obs::Registry::global().counter("estimation.fallback.uniform"),
        obs::Registry::global().counter("estimation.fallback.stressed"),
    };
    return m;
  }
};

bool finite(const linalg::FactoredHermitian& q) {
  return std::isfinite(q.trace());
}

/// Rung: the primary estimator, exactly as the strategies called it before
/// the ladder existed (bit-identical on the success path).
CovarianceMlResult run_primary(index_t n,
                               std::span<const BeamMeasurement> ms,
                               const CovarianceMlOptions& options,
                               EstimatorKind kind, bool starved) {
  switch (kind) {
    case EstimatorKind::kSampleCovariance: {
      CovarianceMlResult r;
      r.q = linalg::FactoredHermitian::from_dense(
          sample_covariance_estimate(n, ms, options.gamma));
      r.converged = true;
      return r;
    }
    case EstimatorKind::kDiagonalLoading: {
      CovarianceMlResult r;
      r.q = linalg::FactoredHermitian::from_dense(
          diagonal_loading_estimate(n, ms, options.gamma));
      r.converged = true;
      return r;
    }
    case EstimatorKind::kEmMl: {
      CovarianceEmOptions em;
      em.gamma = options.gamma;
      em.mu = options.mu;
      if (starved) em.max_iterations = 1;
      return estimate_covariance_em(n, ms, em);
    }
    case EstimatorKind::kRegularizedMl:
      break;
  }
  CovarianceMlOptions ml = options;
  if (starved) {
    ml.max_iterations = 1;
    ml.max_backtracks = 2;
  }
  return estimate_covariance_ml(n, ms, ml);
}

/// Rung: EM at full budget (only reached from a failed regularized-ML
/// primary — the derivative-free solver survives stiff likelihoods the
/// proximal one gives up on).
linalg::FactoredHermitian run_em_rung(index_t n,
                                      std::span<const BeamMeasurement> ms,
                                      const CovarianceMlOptions& options,
                                      bool& converged) {
  CovarianceEmOptions em;
  em.gamma = options.gamma;
  em.mu = options.mu;
  const CovarianceMlResult r = estimate_covariance_em(n, ms, em);
  converged = r.converged;
  return r.q;
}

/// Rung: PSD-projected sample covariance — moment matching needs no
/// iteration and the projection clips whatever the corrupted energies did.
linalg::FactoredHermitian run_sample_rung(
    index_t n, std::span<const BeamMeasurement> ms, real gamma) {
  return linalg::FactoredHermitian::from_dense(
      linalg::psd_project(sample_covariance_estimate(n, ms, gamma)));
}

/// Rung of last resort: a scaled identity matching the measured excess
/// energy — an uninformative prior that ranks every beam equally (the
/// strategies then fall back to their random-probe paths). Cannot fail.
linalg::FactoredHermitian run_uniform_rung(
    index_t n, std::span<const BeamMeasurement> ms, real gamma) {
  real excess = 0.0;
  for (const BeamMeasurement& m : ms)
    excess += std::max(m.energy - 1.0 / gamma, 0.0);
  const real c = ms.empty() ? 0.0 : excess / static_cast<real>(ms.size());
  linalg::Matrix q(n, n);
  for (index_t i = 0; i < n; ++i) q(i, i) = cx{c, 0.0};
  return linalg::FactoredHermitian::from_dense(std::move(q));
}

}  // namespace

RobustEstimateResult robust_estimate_covariance(
    index_t n, std::span<const BeamMeasurement> measurements,
    const CovarianceMlOptions& options, EstimatorKind kind) {
  fault::TrialFaultState* faults = fault::current_trial_faults();
  const bool armed = faults != nullptr;
  const bool stressed = armed && faults->plan != nullptr &&
                        faults->plan->solve_stressed(faults->solves);
  if (armed) {
    ++faults->solves;
    if (stressed) ++faults->stressed_solves;
  }
  if (stressed && obs::enabled()) FallbackMetrics::get().stressed.add();

  RobustEstimateResult out;

  // Primary rung. A starved (stressed) attempt is treated as failed even
  // if it nominally converged — stress models a hard deadline abort.
  bool primary_ok = false;
  try {
    CovarianceMlResult r =
        run_primary(n, measurements, options, kind, stressed);
    if (!finite(r.q)) {
      out.primary_status = SolveStatus::kThrew;
    } else if (stressed) {
      out.primary_status = SolveStatus::kStressed;
    } else if (!r.converged && armed) {
      out.primary_status = SolveStatus::kNonConverged;
    } else {
      // Clean path: non-convergence without an armed fault context is
      // accepted as-is, exactly as the strategies always did.
      out.q = std::move(r.q);
      primary_ok = true;
    }
  } catch (const std::exception&) {
    out.primary_status = SolveStatus::kThrew;
  }

  // Fallback rungs. On these, non-convergence always falls through —
  // a degraded solve should not hand back a half-iterated estimate when a
  // cheaper rung is guaranteed to produce a sane one.
  if (!primary_ok && kind == EstimatorKind::kRegularizedMl) {
    try {
      bool converged = false;
      linalg::FactoredHermitian q =
          run_em_rung(n, measurements, options, converged);
      if (converged && finite(q)) {
        out.q = std::move(q);
        out.rung = SolveRung::kEm;
        primary_ok = true;
      }
    } catch (const std::exception&) {
    }
  }
  if (!primary_ok && kind != EstimatorKind::kSampleCovariance &&
      kind != EstimatorKind::kDiagonalLoading) {
    try {
      linalg::FactoredHermitian q =
          run_sample_rung(n, measurements, options.gamma);
      if (finite(q)) {
        out.q = std::move(q);
        out.rung = SolveRung::kSample;
        primary_ok = true;
      }
    } catch (const std::exception&) {
    }
  }
  if (!primary_ok) {
    out.q = run_uniform_rung(n, measurements, options.gamma);
    out.rung = SolveRung::kUniform;
  }

  if (armed) ++faults->rung_counts[static_cast<int>(out.rung)];
  if (out.rung != SolveRung::kPrimary && obs::enabled()) {
    const FallbackMetrics& m = FallbackMetrics::get();
    switch (out.rung) {
      case SolveRung::kEm: m.em.add(); break;
      case SolveRung::kSample: m.sample.add(); break;
      case SolveRung::kUniform: m.uniform.add(); break;
      case SolveRung::kPrimary: break;
    }
  }
  return out;
}

}  // namespace mmw::estimation
