// Nuclear-norm-regularized maximum-likelihood covariance estimation — the
// paper's channel estimator (Sec. IV-A2, eq. 23):
//
//   Q̂ = argmin_{Q ⪰ 0}  J(Q) + μ‖Q‖₁
//
// where J is the measurement negative log-likelihood and, on the PSD cone,
// ‖Q‖₁ (nuclear norm) = tr(Q). Solved by projected proximal gradient with
// backtracking: the prox of μ‖·‖₁ composed with the PSD projection is
// eigenvalue soft-thresholding at μ (linalg::eigenvalue_soft_threshold),
// the same update family as the nuclear-norm trace-regression solvers the
// paper cites ([18], Koltchinskii et al.).
#pragma once

#include <span>

#include "estimation/measurement_model.h"
#include "linalg/factored.h"

namespace mmw::estimation {

struct CovarianceMlOptions {
  real mu = 0.05;          ///< nuclear-norm weight μ (paper eq. 25)
  real gamma = 100.0;      ///< pre-beamforming SNR γ = Es/N0 (paper eq. 15)
  int max_iterations = 150;
  real tolerance = 1e-5;   ///< stop when relative objective decrease < tol
  real initial_step = 1.0;
  int max_backtracks = 40;
};

struct CovarianceMlResult {
  /// Estimate Q̂ (Hermitian PSD) in factored form Q̂ = B Q_r Bᴴ, where B is
  /// an orthonormal basis of the measured beam span (r ≤ J ≪ N). Scoring,
  /// eigenpairs and traces go through the factor; call `q.dense()` only
  /// when a consumer genuinely needs the N×N lift.
  linalg::FactoredHermitian q;
  real objective = 0.0;    ///< final J_μ(Q̂)
  int iterations = 0;
  bool converged = false;
};

/// Estimates an n×n covariance from beam-energy measurements.
///
/// Preconditions: at least one measurement; every beam has dimension n;
/// options.mu ≥ 0, options.gamma > 0.
CovarianceMlResult estimate_covariance_ml(
    index_t n, std::span<const BeamMeasurement> measurements,
    const CovarianceMlOptions& options);

/// Warm-started variant for tracking (DESIGN.md §13): `prior` — typically
/// last epoch's estimate, or a beam-space expansion of a resident session's
/// component list — is projected onto the new measurements' beam span and
/// used as the solver's initial iterate in place of the moment-based cold
/// start. The optimization problem is IDENTICAL (same objective, same
/// stationary points); only the starting point changes, so a good prior
/// converges in a fraction of the iterations. An empty() prior falls back
/// to estimate_covariance_ml bit-for-bit.
/// Preconditions: those of estimate_covariance_ml; prior empty or of
/// dimension n.
CovarianceMlResult estimate_covariance_ml_warm(
    index_t n, std::span<const BeamMeasurement> measurements,
    const CovarianceMlOptions& options,
    const linalg::FactoredHermitian& prior);

/// Expectation-Maximization solver for the SAME maximum-likelihood problem
/// (unregularized), treating the per-measurement effective channels h_j as
/// latent variables — the estimator family of Eliasi, Rangan & Rappaport
/// (the paper's ref [5]). Each iteration performs the closed-form update
///
///   Q ← (1/J) Σ_j E[h hᴴ | z_j; Q]
///     = Q − (1/J) Σ_j (1 − w_j/λ_j) · (Q v_j)(Q v_j)ᴴ / λ_j,
///
/// which is monotone in likelihood and keeps Q Hermitian PSD by
/// construction; an optional trace shrinkage approximates the nuclear-norm
/// penalty. Slower per-digit than the proximal solver but derivative-free
/// and unconditionally stable — kept both as a cross-check oracle for tests
/// and as a baseline.
struct CovarianceEmOptions {
  real gamma = 100.0;
  real mu = 0.0;            ///< trace-shrinkage weight (0 = pure ML)
  int max_iterations = 200;
  real tolerance = 1e-6;    ///< relative NLL decrease stopping rule
};

CovarianceMlResult estimate_covariance_em(
    index_t n, std::span<const BeamMeasurement> measurements,
    const CovarianceEmOptions& options);

/// Moment-matching baseline ("sample covariance" in beam space):
///   Q̂ = Σ_j (|z_j|² − 1/γ)₊ · v_j v_jᴴ · (N / J).
/// Unbiased direction weighting but no rank structure; A4 ablation baseline.
linalg::Matrix sample_covariance_estimate(
    index_t n, std::span<const BeamMeasurement> measurements, real gamma);

/// Diagonally-loaded variant of the moment estimator: adds ε·tr(Q̂)/N·I,
/// a classic robustification baseline.
linalg::Matrix diagonal_loading_estimate(
    index_t n, std::span<const BeamMeasurement> measurements, real gamma,
    real epsilon = 0.1);

}  // namespace mmw::estimation
