// Beam-space compact covariance: a covariance estimate quantized onto the
// RX codebook grid, stored as a handful of (codeword index, weight) pairs.
//
// The serving engine (src/serve/) keeps ~10⁶ resident user sessions; a
// factored {B, Q_r} estimate costs O(N·r) complex doubles per user, which
// is already two orders of magnitude over the per-session byte budget.
// The beam-space form exploits the same structure one level harder: the
// paper's covariances concentrate on a few angular clusters, and the DFT
// codebook samples exactly those angles, so  Q ≈ Σ_i w_i c_{b_i} c_{b_i}ᴴ
// with a small number of codewords c_b captures what beam selection needs.
// A component list is 6 bytes/entry when packed (u16 beam + f32 weight) —
// the session state that makes the fixed-memory budget of DESIGN.md §13
// possible.
//
// The three operations here are the codec:
//  - expand:   components → FactoredHermitian (orthonormalize the named
//              codewords, accumulate the weighted outer products in the
//              reduced basis) — what warm-starts an estimator or scores a
//              codebook.
//  - compress: FactoredHermitian → components (per-codeword Rayleigh
//              scores, keep the top-k; exact for codeword-aligned rank-1).
//  - merge:    exponential forgetting of a prior list into an update list
//              (tracking across epochs).
//
// Determinism: every function is a pure function of its inputs; ranking
// ties break toward the LOWEST codeword index (the repo-wide tie-break
// convention), and component lists are canonically ordered by ascending
// beam index.
#pragma once

#include <span>
#include <vector>

#include "antenna/codebook.h"
#include "linalg/factored.h"

namespace mmw::estimation {

/// One beam-space covariance component: `weight` (≥ 0, linear energy units)
/// on the rank-1 direction of codeword `beam`.
struct BeamComponent {
  index_t beam = 0;
  real weight = 0.0;
};

/// Lifts a component list to Q = Σ_i w_i c_{b_i} c_{b_i}ᴴ in factored form.
/// Components with weight ≤ 0 are skipped; an effectively empty list yields
/// an empty() FactoredHermitian. The basis is built by modified
/// Gram–Schmidt over the named codewords in list order, so canonical
/// (ascending-beam) input order gives a reproducible factor.
/// Preconditions: every beam index is valid for `codebook`.
linalg::FactoredHermitian expand_beam_space(
    std::span<const BeamComponent> components,
    const antenna::Codebook& codebook);

/// Quantizes a covariance onto the codebook: scores every codeword by its
/// Rayleigh quotient c_vᴴ Q c_v (the batched kernel path), keeps the
/// `max_components` highest-scoring codewords with positive score, and
/// returns them in ascending beam order. `scores` is caller scratch sized
/// to codebook.size() (the serving hot path reuses one buffer per thread).
/// Exact inverse of expand_beam_space for a single codeword-aligned rank-1
/// covariance; a lossy angular-domain projection otherwise.
std::vector<BeamComponent> compress_to_beam_space(
    const linalg::FactoredHermitian& q, const antenna::Codebook& codebook,
    index_t max_components, std::span<real> scores);

/// Allocating convenience overload.
std::vector<BeamComponent> compress_to_beam_space(
    const linalg::FactoredHermitian& q, const antenna::Codebook& codebook,
    index_t max_components);

/// Tracking update: out(b) = forgetting·prior(b) + update(b) over the union
/// of beams, truncated to the `max_components` heaviest (ties toward the
/// lowest beam), returned in ascending beam order. forgetting ∈ [0, 1];
/// 0 discards the prior, 1 accumulates forever.
/// Preconditions: both inputs in canonical (strictly ascending beam) order.
std::vector<BeamComponent> merge_beam_space(
    std::span<const BeamComponent> prior, real forgetting,
    std::span<const BeamComponent> update, index_t max_components);

}  // namespace mmw::estimation
