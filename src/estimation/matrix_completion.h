// Generic low-rank matrix completion — the substrate technique the paper
// builds its covariance estimator on ([15] Keshavan et al., [18] nuclear-norm
// penalization). Recovers a low-rank matrix from a subset of its entries.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace mmw::estimation {

/// One observed entry of the matrix being completed.
struct ObservedEntry {
  index_t row = 0;
  index_t col = 0;
  cx value;
};

/// Singular-value shrinkage operator D_τ(X) = U·max(σ−τ, 0)·Vᴴ — the
/// proximal operator of τ‖·‖₁ for general (non-Hermitian) matrices.
linalg::Matrix singular_value_shrink(const linalg::Matrix& x, real tau);

struct MatrixCompletionOptions {
  real tau = 0.0;          ///< shrinkage threshold; 0 → heuristic 5·√(n₁n₂)
  real step = 1.2;         ///< SVT dual step δ (relative to n₁n₂/|Ω|)
  int max_iterations = 1500;
  real tolerance = 1e-4;   ///< relative residual on observed entries
};

struct MatrixCompletionResult {
  linalg::Matrix x;
  int iterations = 0;
  bool converged = false;
  real relative_residual = 0.0;  ///< ‖P_Ω(X−M)‖_F / ‖P_Ω(M)‖_F
};

/// Singular Value Thresholding (Cai, Candès & Shen): dual ascent
///   X^k = D_τ(Y^{k−1}),  Y^k = Y^{k−1} + δ·P_Ω(M − X^k).
/// Preconditions: at least one observed entry; entries in range; no
/// duplicate (row, col) pairs.
MatrixCompletionResult complete_svt(index_t rows, index_t cols,
                                    std::span<const ObservedEntry> entries,
                                    const MatrixCompletionOptions& options = {});

/// Soft-Impute (proximal gradient / Mazumder et al.):
///   X ← D_τ(X + P_Ω(M − X)).
/// Slower per-iteration contraction than SVT on easy problems but robust to
/// noisy observations.
MatrixCompletionResult complete_soft_impute(
    index_t rows, index_t cols, std::span<const ObservedEntry> entries,
    const MatrixCompletionOptions& options = {});

}  // namespace mmw::estimation
