// Per-trial fault context: the channel by which the degradation ladder
// (estimation/robust.h) learns that fault injection is armed for the
// strategy run currently on this thread, without threading a fault handle
// through every strategy/estimator signature.
//
// The context is a thread-local pointer armed RAII-style by the
// Monte-Carlo drivers around each strategy run. A strategy run is
// single-threaded (mac::Session contract), so thread-local scoping is
// exact: concurrent trials on other threads each see their own context,
// and clean runs see none — robust_estimate_covariance treats a null
// context as "faults disabled" and is then bit-identical to the direct
// estimator calls (the golden-figure contract).
#pragma once

#include <array>
#include <cstdint>

#include "fault/fault.h"

namespace mmw::fault {

/// Mutable state of one (trial, strategy) run under fault injection.
struct TrialFaultState {
  const FaultPlan* plan = nullptr;  ///< borrowed; may be null (quarantine-only)

  /// Covariance solves consumed so far — the index into the plan's
  /// stressed-solve schedule. Advanced by robust_estimate_covariance.
  index_t solves = 0;
  std::uint64_t stressed_solves = 0;  ///< solves hit by forced stress

  /// Final-rung histogram over this run's solves, indexed by
  /// estimation::SolveRung (0 = primary succeeded, then em/sample/uniform).
  std::array<std::uint64_t, 4> rung_counts{};
};

/// Arms `state` as the current thread's fault context for its lifetime,
/// restoring the previous context (usually none) on destruction.
class ScopedTrialFaults {
 public:
  explicit ScopedTrialFaults(TrialFaultState& state);
  ~ScopedTrialFaults();
  ScopedTrialFaults(const ScopedTrialFaults&) = delete;
  ScopedTrialFaults& operator=(const ScopedTrialFaults&) = delete;

 private:
  TrialFaultState* previous_;
};

/// The fault context armed on this thread, or nullptr when none is.
TrialFaultState* current_trial_faults();

}  // namespace mmw::fault
