// Deterministic fault injection for the alignment runtime.
//
// A FaultPlan is the complete, pre-drawn fault schedule of ONE trial:
// which measurement slots are dropped or corrupted, whether and when a
// blockage event hits the link, and which covariance solves are stressed.
// Drawing the whole schedule up front (instead of flipping coins inside
// the measurement chain) keeps two contracts intact:
//  - determinism: the plan comes from a reserved key range of the
//    three-key Rng::stream partition (DESIGN.md §9/§11), so any shard can
//    rebuild any trial's plan with no shared state and results stay
//    byte-identical for any thread count;
//  - fairness: every strategy evaluated on a trial faces the SAME fault
//    pattern, because the plan is a function of (seed, entity, trial)
//    only — not of how many random draws a strategy happens to consume.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/common.h"
#include "randgen/keylanes.h"
#include "randgen/rng.h"

namespace mmw::fault {

/// Fault-injection knobs, carried on sim::Scenario. All probabilities are
/// in [0, 1]; everything defaults to off, and a default FaultConfig is a
/// guaranteed no-op on every code path (the golden-figure byte-identity
/// contract relies on this).
struct FaultConfig {
  /// Probability that the trial suffers a blockage event: at a uniformly
  /// drawn onset slot the link's per-path mean powers drop suddenly
  /// (channel::blocked_link) and stay down for the rest of the trial.
  real blockage_probability = 0.0;
  /// Mean attenuation depth (dB) of a shadowed path; the per-path depth is
  /// jittered uniformly in [0.5, 1.5]× this value.
  real blockage_attenuation_db = 20.0;
  /// Each path is shadowed independently with this probability (at least
  /// one path is always shadowed when the blockage event fires). Partial
  /// shadowing keeps multipath recovery via alternate beams possible.
  real blockage_path_probability = 0.75;

  /// Per-measurement-slot probability of a heavy-tailed energy outlier:
  /// the recorded energy is multiplied by a Pareto(outlier_shape) spike of
  /// at least outlier_scale — a calibration glitch or interference burst.
  real outlier_probability = 0.0;
  real outlier_shape = 1.5;  ///< Pareto tail index (> 1)
  real outlier_scale = 10.0; ///< minimum spike multiplier (> 0)

  /// Per-measurement-slot probability that the slot is lost outright (the
  /// sync/control channel dropped): the radio records zero energy and the
  /// measurement chain consumes NO random draws for the slot.
  real drop_probability = 0.0;

  /// Per-covariance-solve probability of forced solver stress: the primary
  /// estimator runs with a starved iteration budget (a real-time deadline
  /// abort) and is treated as failed, engaging the degradation ladder
  /// (estimation::robust_estimate_covariance).
  real solver_stress_probability = 0.0;

  /// Monte-Carlo driver behavior: when true, a trial/shard that throws is
  /// recorded and excluded from the reduction (sim.trials.quarantined)
  /// instead of aborting the whole run. Orthogonal to the injection knobs
  /// above — it may be set alone to harden a clean run.
  bool quarantine_trials = false;

  /// True when any fault is actually injected (quarantine alone is not an
  /// injection: it changes error handling, not the data).
  bool any() const {
    return blockage_probability > 0.0 || outlier_probability > 0.0 ||
           drop_probability > 0.0 || solver_stress_probability > 0.0;
  }
};

/// Faults applying to one measurement slot.
struct SlotFault {
  bool dropped = false;     ///< slot lost: zero energy, no RNG draws
  real energy_scale = 1.0;  ///< multiplicative outlier on the recorded energy
};

/// The pre-drawn fault schedule of one trial. Immutable after draw();
/// shared read-only across the strategies evaluated on the trial.
class FaultPlan {
 public:
  /// No-fault plan (every accessor reports a clean slot/solve).
  FaultPlan() = default;

  /// Draws a plan covering `budget` measurement slots, up to 2·budget
  /// covariance solves, and `n_paths` link paths. Every random quantity
  /// comes from `rng`, which callers derive via fault_stream() so the plan
  /// is a pure function of (seed, entity, trial). The draw order is fixed
  /// and every coin is flipped even when its probability is 0 or 1, so a
  /// plan never depends on which faults are enabled alongside it.
  static FaultPlan draw(const FaultConfig& config, index_t budget,
                        index_t n_paths, randgen::Rng& rng);

  /// Hand-scripted plan for tests and tooling: explicit slot faults,
  /// blockage onset (>= slots.size() or npos-like large value = never),
  /// per-path power scales, and stressed-solve flags.
  static FaultPlan scripted(std::vector<SlotFault> slots,
                            index_t blockage_onset,
                            std::vector<real> path_power_scale,
                            std::vector<bool> stressed_solves);

  /// Fault state of measurement slot `i`; slots beyond the drawn schedule
  /// are clean (recovery probes after training are never slot-faulted).
  SlotFault slot(index_t i) const {
    return i < slots_.size() ? slots_[i] : SlotFault{};
  }

  /// True when solve number `k` (0-based, counted per strategy run) is
  /// scheduled for forced stress; solves beyond the schedule are clean.
  bool solve_stressed(index_t k) const {
    return k < stressed_solves_.size() && stressed_solves_[k];
  }

  bool has_blockage() const { return blockage_onset_ < kNeverBlocked; }
  /// First slot at which the blockage attenuation applies.
  index_t blockage_onset() const { return blockage_onset_; }
  bool blockage_active(index_t slot) const {
    return slot >= blockage_onset_;
  }

  /// Per-path linear power scale of the post-onset (blocked) link; size 0
  /// when the plan has no blockage, else n_paths with entries in (0, 1].
  std::span<const real> path_power_scale() const {
    return path_power_scale_;
  }

 private:
  static constexpr index_t kNeverBlocked = ~index_t{0};

  std::vector<SlotFault> slots_;
  std::vector<bool> stressed_solves_;
  index_t blockage_onset_ = kNeverBlocked;
  std::vector<real> path_power_scale_;
};

/// Reserved key_a base of the fault plans inside the three-key stream
/// partition. The multi-cell engine owns key_a ∈ [0, 3·n_cells)
/// (sim/multicell.cpp); fault plans live at kFaultKeyBase + entity, far
/// outside any realistic cell count, so adding fault injection never
/// collides with — or perturbs — an existing stream (DESIGN.md §11).
/// Aliases the registry entry in randgen/keylanes.h (the registry test
/// keeps every reserved lane pairwise disjoint).
inline constexpr std::uint64_t kFaultKeyBase = randgen::lanes::kFaultLaneBase;

/// The fault stream of (seed, entity, trial). Single-link drivers use
/// entity 0; the multi-cell engine uses entity = cell·users_per_cell + user.
inline randgen::Rng fault_stream(std::uint64_t seed, std::uint64_t entity,
                                 std::uint64_t trial) {
  return randgen::Rng::stream(seed, kFaultKeyBase + entity, trial, 0);
}

}  // namespace mmw::fault
