#include "fault/fault.h"

#include <cmath>

namespace mmw::fault {

namespace {

void require_probability(real p, const char* what) {
  MMW_REQUIRE_MSG(p >= 0.0 && p <= 1.0, what);
}

}  // namespace

FaultPlan FaultPlan::draw(const FaultConfig& config, index_t budget,
                          index_t n_paths, randgen::Rng& rng) {
  require_probability(config.blockage_probability,
                      "blockage probability must be in [0, 1]");
  require_probability(config.blockage_path_probability,
                      "blockage path probability must be in [0, 1]");
  require_probability(config.outlier_probability,
                      "outlier probability must be in [0, 1]");
  require_probability(config.drop_probability,
                      "drop probability must be in [0, 1]");
  require_probability(config.solver_stress_probability,
                      "solver stress probability must be in [0, 1]");
  MMW_REQUIRE_MSG(config.blockage_attenuation_db >= 0.0,
                  "blockage attenuation must be non-negative dB");
  MMW_REQUIRE_MSG(config.outlier_shape > 1.0,
                  "outlier shape must exceed 1 (finite-mean Pareto)");
  MMW_REQUIRE_MSG(config.outlier_scale > 0.0,
                  "outlier scale must be positive");
  MMW_REQUIRE_MSG(budget > 0, "fault plan needs a positive budget");
  MMW_REQUIRE_MSG(n_paths > 0, "fault plan needs at least one path");

  FaultPlan plan;

  // Fixed draw order; every coin is flipped unconditionally so the
  // schedule of one fault type never shifts when another is toggled.
  // 1. Blockage event: onset fraction, per-path shadowing, per-path depth.
  const bool blocked = rng.uniform() < config.blockage_probability;
  const real onset_fraction = rng.uniform();
  std::vector<bool> shadowed(n_paths);
  bool any_shadowed = false;
  for (index_t l = 0; l < n_paths; ++l) {
    shadowed[l] = rng.uniform() < config.blockage_path_probability;
    any_shadowed = any_shadowed || shadowed[l];
  }
  std::vector<real> depth_jitter(n_paths);
  for (index_t l = 0; l < n_paths; ++l)
    depth_jitter[l] = rng.uniform(0.5, 1.5);
  if (blocked) {
    plan.blockage_onset_ =
        static_cast<index_t>(onset_fraction * static_cast<real>(budget));
    if (!any_shadowed) shadowed[0] = true;  // a blocker blocks something
    plan.path_power_scale_.assign(n_paths, 1.0);
    for (index_t l = 0; l < n_paths; ++l)
      if (shadowed[l])
        plan.path_power_scale_[l] = std::pow(
            10.0,
            -config.blockage_attenuation_db * depth_jitter[l] / 10.0);
  }

  // 2. Per-slot faults: drop wins over outlier (a lost slot has no energy
  // to corrupt); both coins are always consumed.
  plan.slots_.resize(budget);
  for (index_t i = 0; i < budget; ++i) {
    const bool dropped = rng.uniform() < config.drop_probability;
    const bool outlier = rng.uniform() < config.outlier_probability;
    const real pareto_u = rng.uniform();
    plan.slots_[i].dropped = dropped;
    if (!dropped && outlier)
      plan.slots_[i].energy_scale =
          config.outlier_scale *
          std::pow(1.0 - pareto_u, -1.0 / config.outlier_shape);
  }

  // 3. Forced solver stress: up to two covariance solves per measurement
  // slot (the proposed scheme's estimate + re-estimate) is a safe bound.
  plan.stressed_solves_.resize(2 * budget);
  for (index_t k = 0; k < plan.stressed_solves_.size(); ++k)
    plan.stressed_solves_[k] =
        rng.uniform() < config.solver_stress_probability;

  return plan;
}

FaultPlan FaultPlan::scripted(std::vector<SlotFault> slots,
                              index_t blockage_onset,
                              std::vector<real> path_power_scale,
                              std::vector<bool> stressed_solves) {
  for (const real s : path_power_scale)
    MMW_REQUIRE_MSG(s > 0.0 && s <= 1.0,
                    "path power scale must be in (0, 1]");
  FaultPlan plan;
  plan.slots_ = std::move(slots);
  plan.blockage_onset_ = blockage_onset;
  plan.path_power_scale_ = std::move(path_power_scale);
  plan.stressed_solves_ = std::move(stressed_solves);
  if (plan.blockage_onset_ != kNeverBlocked)
    MMW_REQUIRE_MSG(!plan.path_power_scale_.empty(),
                    "a blocked plan needs per-path power scales");
  return plan;
}

}  // namespace mmw::fault
