#include "fault/context.h"

namespace mmw::fault {

namespace {

thread_local TrialFaultState* g_current = nullptr;

}  // namespace

ScopedTrialFaults::ScopedTrialFaults(TrialFaultState& state)
    : previous_(g_current) {
  g_current = &state;
}

ScopedTrialFaults::~ScopedTrialFaults() { g_current = previous_; }

TrialFaultState* current_trial_faults() { return g_current; }

}  // namespace mmw::fault
