// Extension E6: bidirectional ("ping-pong") training vs Algorithm 1.
//
// Algorithm 1 picks TX beams blindly at random and only learns the RX side;
// the ping-pong variant alternates roles so both ends learn, which the
// paper's Sec. III-A remark about reverse-link transmission invites. Same
// measurement budget, same ledger — the difference is pure algorithm.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ext_bidirectional", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Extension E6", "bidirectional (ping-pong) training");

  core::RandomSearch random_search;
  core::ProposedAlignment proposed;
  core::PingPongAlignment ping_pong;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &proposed, &ping_pong};
  const std::vector<real> rates{0.02, 0.05, 0.10, 0.20};

  for (const auto kind :
       {ChannelKind::kSinglePath, ChannelKind::kNycMultipath}) {
    const Scenario sc = bench::paper_scenario(kind, 25);
    const auto res = run_search_effectiveness(sc, strategies, rates);
    std::printf("%s channel\n%s\n",
                kind == ChannelKind::kSinglePath ? "single-path"
                                                 : "NYC multipath",
                render_table("search_rate", res.search_rates, res.loss_db)
                    .c_str());
  }
  run.finish();
  return 0;
}
