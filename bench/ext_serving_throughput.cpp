// Extension E9: city-scale serving throughput.
//
// Runs the epoch-driven serving engine (src/serve/) over a 64-site hex
// deployment at sessions ∈ {10k, 100k, 1M} resident users and reports, per
// scale:
//
//   users/sec/core   sessions stepped per wall second of the step phases,
//                    divided by the worker-thread count — the headline
//                    capacity number, comparable across machines per-core;
//   bytes/session    pool high-water bytes / peak live sessions — the
//                    realized resident footprint against the hard
//                    kSessionByteBudget contract (slab quantization adds
//                    slack at small scales; at 1M it amortizes away);
//   peak RSS         the kernel's VmHWM for the whole process.
//
// The deployment runs OPEN by default: each epoch admits
// Poisson(1% of the per-site population) new users per site and draws
// exponential sojourns (mean 100 epochs) at admission, so the population
// churns while the scale stays in steady state — the throughput numbers
// include admission, alignment, tracking, and departure work mixed exactly
// as a serving deployment would mix them.
//
// The per-epoch CSVs are deterministic (byte-identical across --threads and
// --obs, enforced by tests/serve/serve_test.cpp); BENCH_serving.json holds
// the timing/memory numbers and is what tools/check_bench_regression.py
// --serving gates in CI.
//
// Knobs: --sessions N (single scale instead of the sweep), --epochs N,
// --arrival-rate R (per site per epoch; overrides the 1% default),
// --sojourn E, --threads N / MMW_THREADS, --obs on|off, --trace[=path],
// --telemetry[=path] (per-epoch mmw.telemetry/1 NDJSON + watchdog with
// health.json next to it; the default path is
// bench_results/ext_serving_throughput_<sessions>_telemetry.ndjson, an
// explicit =path applies verbatim when --sessions pins a single scale).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fig_common.h"
#include "obs/json.h"
#include "serve/serve.h"

namespace {

using namespace mmw;

double cli_real(int argc, char** argv, const char* name, double fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return std::strtod(argv[i] + len + 1, nullptr);
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
      return std::strtod(argv[i + 1], nullptr);
  }
  return fallback;
}

std::uint64_t cli_u64(int argc, char** argv, const char* name,
                      std::uint64_t fallback) {
  const double v = cli_real(argc, argv, name, -1.0);
  return v < 0.0 ? fallback : static_cast<std::uint64_t>(v);
}

/// Presence + value of a --name / --name=value flag: nullptr when absent,
/// "" for the bare flag, the value otherwise.
const char* cli_flag(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return "";
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return argv[i] + len + 1;
  }
  return nullptr;
}

struct ScaleResult {
  index_t sessions = 0;
  serve::ServeResult result;
  double users_per_sec_per_core = 0.0;
  double bytes_per_session = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  std::uint64_t outages = 0;
  real final_mean_loss_db = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mmw;

  bench::BenchRun run("ext_serving_throughput", argc, argv);

  // The serving scenario trades array size for population: TX 2×2 (M = 4),
  // RX 4×4 (N = 16), T = 64 pairs, 4 fades/measurement. Alignment quality
  // is not the point of E9 (figs 5–8 own that) — sustained session count
  // at fixed memory is.
  sim::Scenario sc;
  sc.channel = sim::ChannelKind::kSinglePath;
  sc.tx_grid_x = 2;
  sc.tx_grid_y = 2;
  sc.rx_grid_x = 4;
  sc.rx_grid_y = 4;
  sc.fades_per_measurement = 4;
  // Link budget: cell-edge users see γ_eff = γ·(10 m/100 m)³ = γ − 30 dB,
  // so γ = 30 dB puts the aligned pair (M·N = 64 ≈ 18 dB array gain) a
  // solid margin above the edge noise floor — an alignable population,
  // with ~30 dB of honest SNR heterogeneity between center and edge.
  sc.gamma = 1000.0;
  sc.seed = 2016;
  sc.threads = bench::threads_from_cli(argc, argv);
  run.add_scenario(sc);
  const index_t cores = core::resolve_thread_count(sc.threads);

  sim::TopologyConfig topo;
  topo.cells = 64;
  topo.cell_radius_m = 100.0;

  const std::uint64_t epochs = cli_u64(argc, argv, "--epochs", 8);
  const double arrival_override =
      cli_real(argc, argv, "--arrival-rate", -1.0);
  const double sojourn = cli_real(argc, argv, "--sojourn", 100.0);
  const std::uint64_t single = cli_u64(argc, argv, "--sessions", 0);
  const char* telemetry = cli_flag(argc, argv, "--telemetry");

  std::vector<index_t> scales;
  if (single > 0)
    scales.push_back(static_cast<index_t>(single));
  else
    scales = {10'000, 100'000, 1'000'000};

  run.manifest().add_config("sites", static_cast<std::uint64_t>(topo.cells));
  run.manifest().add_config("epochs", epochs);
  run.manifest().add_config("mean_sojourn_epochs", sojourn);
  run.manifest().add_config(
      "session_struct_bytes",
      static_cast<std::uint64_t>(sizeof(serve::UserSession)));
  run.manifest().add_config(
      "session_byte_budget",
      static_cast<std::uint64_t>(serve::kSessionByteBudget));

  std::printf("=== Extension E9: serving throughput ===\n");
  std::printf(
      "setup: TX 2x2 (M=4), RX 4x4 (N=16), %zu hex sites, %llu epochs, "
      "%zu thread(s); sizeof(UserSession)=%zu B (budget %zu B)\n\n",
      static_cast<std::size_t>(topo.cells),
      static_cast<unsigned long long>(epochs),
      static_cast<std::size_t>(cores), sizeof(serve::UserSession),
      static_cast<std::size_t>(serve::kSessionByteBudget));

  std::vector<ScaleResult> rows;
  for (const index_t sessions : scales) {
    serve::ServeConfig cfg;
    cfg.scenario = sc;
    cfg.topology = topo;
    cfg.initial_sessions = sessions;
    cfg.epochs = static_cast<index_t>(epochs);
    // 1% of the per-site population arrives per epoch (open deployment);
    // sojourns mean 100 epochs, so the population is in steady state.
    const double per_site = static_cast<double>(sessions) /
                            static_cast<double>(topo.cells);
    cfg.arrival_rate =
        arrival_override >= 0.0 ? arrival_override : 0.01 * per_site;
    cfg.mean_sojourn_epochs = sojourn;
    // One alignment slot per TX beam: the deterministic TX sweep covers
    // the whole M=4 codebook before a session claims its pair.
    cfg.align_epochs = cli_u64(argc, argv, "--align-epochs",
                               sc.tx_grid_x * sc.tx_grid_y);
    cfg.probes_per_slot = cli_u64(argc, argv, "--probes", 8);
    cfg.track_fades = cli_u64(argc, argv, "--track-fades", 4);
    // One slab per site holds the initial cohort exactly at small scales
    // (less slab-quantization slack in bytes/session); clamped to the
    // default 4096 grain at city scale so shards stay balanced.
    cfg.session_block = std::clamp<index_t>(
        static_cast<index_t>(per_site) + 1, 256, 4096);

    if (telemetry != nullptr) {
      // Per-scale NDJSON + health file; an explicit =path only applies
      // verbatim when a single --sessions scale is pinned (the sweep would
      // overwrite it otherwise).
      std::string base =
          (telemetry[0] != '\0' && scales.size() == 1)
              ? std::string(telemetry)
              : "bench_results/ext_serving_throughput_" +
                    std::to_string(sessions) + "_telemetry.ndjson";
      cfg.telemetry.ndjson_path = base;
      cfg.telemetry.health_path = base + ".health.json";
      cfg.telemetry.watchdog = true;
    }

    serve::ServingEngine engine(cfg);
    const serve::ServeResult r = engine.run();

    ScaleResult row;
    row.sessions = sessions;
    row.result = r;
    row.users_per_sec_per_core =
        r.step_seconds > 0.0
            ? static_cast<double>(r.sessions_stepped) / r.step_seconds /
                  static_cast<double>(cores)
            : 0.0;
    row.bytes_per_session =
        r.peak_live_sessions > 0
            ? static_cast<double>(r.high_water_bytes) /
                  static_cast<double>(r.peak_live_sessions)
            : 0.0;
    for (const serve::EpochReport& e : r.epochs) {
      row.arrivals += e.arrivals;
      row.departures += e.departures;
      row.outages += e.outages;
    }
    if (!r.epochs.empty())
      row.final_mean_loss_db = r.epochs.back().mean_loss_db;
    rows.push_back(row);

    std::printf(
        "sessions=%zu: %.0f users/sec/core (%llu steps in %.3f s), "
        "peak_live=%llu, %.1f B/session (high water %.1f MB), "
        "arrivals=%llu departures=%llu outages=%llu, "
        "loss mean=%.2f dB p50=%.2f p99=%.2f p999=%.2f dB\n",
        static_cast<std::size_t>(sessions), row.users_per_sec_per_core,
        static_cast<unsigned long long>(r.sessions_stepped), r.step_seconds,
        static_cast<unsigned long long>(r.peak_live_sessions),
        row.bytes_per_session,
        static_cast<double>(r.high_water_bytes) / (1024.0 * 1024.0),
        static_cast<unsigned long long>(row.arrivals),
        static_cast<unsigned long long>(row.departures),
        static_cast<unsigned long long>(row.outages),
        static_cast<double>(row.final_mean_loss_db),
        static_cast<double>(r.loss_p50_db), static_cast<double>(r.loss_p99_db),
        static_cast<double>(r.loss_p999_db));

    bench::write_artifact("ext_serving_throughput_" +
                              std::to_string(sessions) + ".csv",
                          serve::render_serving_csv(r.epochs));
  }
  std::printf("\n");

  // BENCH_serving.json: the committed throughput/memory baseline the CI
  // serving gate (tools/check_bench_regression.py --serving) compares
  // fresh runs against.
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string("mmw.serving_bench/1");
  w.key("threads");
  w.number(static_cast<std::uint64_t>(cores));
  w.key("sites");
  w.number(static_cast<std::uint64_t>(topo.cells));
  w.key("epochs");
  w.number(epochs);
  w.key("session_struct_bytes");
  w.number(static_cast<std::uint64_t>(sizeof(serve::UserSession)));
  w.key("session_byte_budget");
  w.number(static_cast<std::uint64_t>(serve::kSessionByteBudget));
  w.key("scales");
  w.begin_array();
  for (const ScaleResult& row : rows) {
    w.begin_object();
    w.key("sessions");
    w.number(static_cast<std::uint64_t>(row.sessions));
    w.key("sessions_stepped");
    w.number(row.result.sessions_stepped);
    w.key("step_seconds");
    w.number(row.result.step_seconds);
    w.key("users_per_sec_per_core");
    w.number(row.users_per_sec_per_core);
    w.key("peak_live_sessions");
    w.number(row.result.peak_live_sessions);
    w.key("pool_high_water_bytes");
    w.number(static_cast<std::uint64_t>(row.result.high_water_bytes));
    w.key("pool_resident_bytes");
    w.number(static_cast<std::uint64_t>(row.result.resident_bytes));
    w.key("bytes_per_session");
    w.number(row.bytes_per_session);
    w.key("arrivals");
    w.number(row.arrivals);
    w.key("departures");
    w.number(row.departures);
    w.key("outages");
    w.number(row.outages);
    w.key("final_mean_loss_db");
    w.number(static_cast<double>(row.final_mean_loss_db));
    // Run-level loss quantiles (every epoch's samples through one merged
    // digest) — deterministic, so the regression gate can hold p99.
    w.key("loss_p50_db");
    w.number(static_cast<double>(row.result.loss_p50_db));
    w.key("loss_p90_db");
    w.number(static_cast<double>(row.result.loss_p90_db));
    w.key("loss_p99_db");
    w.number(static_cast<double>(row.result.loss_p99_db));
    w.key("loss_p999_db");
    w.number(static_cast<double>(row.result.loss_p999_db));
    // Epoch wall-time quantiles (timing — machine-dependent, reported but
    // never gated byte-wise).
    w.key("epoch_seconds_p50");
    w.number(row.result.epoch_seconds_p50);
    w.key("epoch_seconds_p99");
    w.number(row.result.epoch_seconds_p99);
    w.key("telemetry_records");
    w.number(row.result.telemetry_records);
    w.end_object();
  }
  w.end_array();
  w.key("peak_rss_bytes");
  w.number(obs::peak_rss_bytes());
  w.end_object();
  bench::write_artifact("BENCH_serving.json", std::move(w).str());

  // The per-scale memory accounting, in the manifest next to peak RSS
  // (recorded by BenchRun::finish) so the fixed-memory claim is checkable
  // from the manifest alone.
  for (const ScaleResult& row : rows) {
    const std::string prefix =
        "serve." + std::to_string(row.sessions) + ".";
    run.manifest().add_config(prefix + "users_per_sec_per_core",
                              row.users_per_sec_per_core);
    run.manifest().add_config(
        prefix + "pool_high_water_bytes",
        static_cast<std::uint64_t>(row.result.high_water_bytes));
    run.manifest().add_config(prefix + "bytes_per_session",
                              row.bytes_per_session);
  }

  run.finish();

  // Hard acceptance check: at city scale (≥ 1M sessions) the realized
  // per-session footprint must fit the budget — slab quantization has
  // amortized there. Smaller smoke runs only report the number (a 10k run
  // over 64 sites legitimately pays partial-slab slack).
  const ScaleResult& largest = rows.back();
  if (largest.sessions >= 1'000'000 &&
      largest.bytes_per_session >
          static_cast<double>(serve::kSessionByteBudget)) {
    std::fprintf(stderr,
                 "FAIL: %.1f bytes/session at %zu sessions exceeds the "
                 "%zu-byte budget\n",
                 largest.bytes_per_session,
                 static_cast<std::size_t>(largest.sessions),
                 static_cast<std::size_t>(serve::kSessionByteBudget));
    return 1;
  }
  return 0;
}
