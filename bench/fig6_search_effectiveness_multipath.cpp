// Reproduces paper Fig. 6: SNR Loss (dB) vs Search Rate for the NYC-derived
// multipath channel (Akdeniz cluster model); series = Random, Scan, Proposed.
//
// Expected shape: same ordering as Fig. 5 (Proposed ≤ Random < Scan) with
// smaller absolute losses — the multipath channel has several good beam
// clusters, so every scheme finds a decent pair sooner.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace mmw;
  using namespace mmw::sim;

  bench::BenchRun run("fig6_search_effectiveness_multipath", argc, argv);
  Scenario sc = bench::paper_scenario(ChannelKind::kNycMultipath);
  sc.threads = bench::threads_from_cli(argc, argv);
  run.add_scenario(sc);
  bench::print_header("Figure 6",
                      "search effectiveness, NYC multipath channel",
                      sc.threads);

  core::RandomSearch random_search;
  core::ScanSearch scan_search;
  core::ProposedAlignment proposed;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &scan_search, &proposed};

  const auto result = run_search_effectiveness(sc, strategies,
                                               bench::paper_search_rates());
  std::printf("SNR Loss (dB) vs Search Rate\n%s\n",
              render_table("search_rate", result.search_rates,
                           result.loss_db)
                  .c_str());
  const std::string csv =
      render_csv("search_rate", result.search_rates, result.loss_db);
  std::printf("csv\n%s", csv.c_str());
  bench::write_artifact("fig6_search_effectiveness_multipath.csv", csv);
  run.finish();
  return 0;
}
