// Extension E3: how much of the channel's MIMO capacity a single aligned
// analog beam pair captures, vs the channel's sparsity (cluster count).
//
// Expected shape: on a rank-one (single-path) channel the best beam pair is
// essentially capacity-optimal; as clusters multiply, spatial multiplexing
// pulls ahead and the analog-beamforming gap widens — the result motivating
// hybrid architectures (paper related work [14]).
#include <cstdio>

#include "channel/models.h"
#include "fig_common.h"
#include "phy/capacity.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ext_capacity_gap", argc, argv);
  using namespace mmw;
  using antenna::ArrayGeometry;
  using linalg::Matrix;

  bench::print_header("Extension E3", "beamforming vs MIMO capacity");

  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  const channel::AngularSector sector;
  const real power = 1.0;  // total transmit power (unit noise)
  const int trials = 25;

  std::printf(
      "paths\tbeamforming\tequal_power\twaterfilling\tbf_fraction "
      "(bit/s/Hz, %d trials)\n",
      trials);
  for (const index_t paths : {index_t{1}, index_t{2}, index_t{3}, index_t{4},
                              index_t{6}, index_t{8}}) {
    randgen::Rng rng(41);
    real bf = 0.0, ep = 0.0, wf = 0.0;
    for (int t = 0; t < trials; ++t) {
      std::vector<channel::Path> ps;
      for (index_t p = 0; p < paths; ++p)
        ps.push_back({1.0 / static_cast<real>(paths),
                      {rng.uniform(sector.az_min, sector.az_max),
                       rng.uniform(sector.el_min, sector.el_max)},
                      {rng.uniform(sector.az_min, sector.az_max),
                       rng.uniform(sector.el_min, sector.el_max)}});
      const channel::Link link =
          channel::make_fixed_paths_link(tx, rx, std::move(ps));
      const Matrix h = link.draw_channel(rng);
      bf += phy::optimal_beamforming_capacity(h, power);
      ep += phy::equal_power_capacity(h, power);
      wf += phy::waterfilling_capacity(h, power).capacity_bps_hz;
    }
    std::printf("%zu\t%.3f\t%.3f\t%.3f\t%.2f\n", paths, bf / trials,
                ep / trials, wf / trials, bf / wf);
  }
  run.finish();
  return 0;
}
