// Ablation A1: how J — the number of measurements per TX-slot — trades
// per-slot estimation quality against TX-direction coverage.
//
// Small J visits many TX beams but estimates Q̂ from very few probes;
// large J estimates well but explores few TX directions within a budget.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_j_sweep", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Ablation A1", "J (measurements per TX-slot) sweep");

  const std::vector<real> rates{0.05, 0.10, 0.20};
  for (const auto kind :
       {ChannelKind::kSinglePath, ChannelKind::kNycMultipath}) {
    std::printf("%s channel — mean SNR loss (dB)\n",
                kind == ChannelKind::kSinglePath ? "single-path"
                                                 : "NYC multipath");
    std::printf("J\\rate");
    for (const real r : rates) std::printf("\t%.0f%%", 100.0 * r);
    std::printf("\n");
    const Scenario sc = bench::paper_scenario(kind, 20);
    for (const index_t j : {index_t{3}, index_t{4}, index_t{6}, index_t{8},
                            index_t{12}, index_t{16}}) {
      core::ProposedOptions opts;
      opts.measurements_per_slot = j;
      core::ProposedAlignment proposed(opts);
      const auto res = run_search_effectiveness(sc, {&proposed}, rates);
      std::printf("%zu", j);
      for (const auto& s : res.loss_db.at("Proposed"))
        std::printf("\t%.3f", s.mean);
      std::printf("\n");
    }
    std::printf("\n");
  }
  run.finish();
  return 0;
}
