// Extension E5: hybrid analog/digital precoding — spectral efficiency of
// n_rf-chain hybrid precoders (OMP over a steering dictionary) between the
// pure-analog single-beam architecture the paper assumes and the
// fully-digital upper bound.
//
// Expected shape: on sparse channels the hybrid curve saturates at the
// digital bound with only a few RF chains (≈ #paths), while one analog
// beam leaves the multiplexing gain on the table.
#include <cstdio>

#include "antenna/steering.h"
#include "channel/models.h"
#include "fig_common.h"
#include "phy/capacity.h"
#include "phy/hybrid.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ext_hybrid_beamforming", argc, argv);
  using namespace mmw;
  using antenna::ArrayGeometry;
  using linalg::Matrix;
  using linalg::Vector;

  bench::print_header("Extension E5", "hybrid precoding vs RF chains");

  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  const channel::AngularSector sector;
  std::vector<Vector> dict;
  for (index_t ia = 0; ia < 9; ++ia)
    for (index_t ie = 0; ie < 5; ++ie)
      dict.push_back(antenna::steering_vector(
          tx, {sector.az_min + (sector.az_max - sector.az_min) * ia / 8.0,
               sector.el_min + (sector.el_max - sector.el_min) * ie / 4.0}));

  const real power = 10.0;  // 10 dB total SNR
  const int trials = 20;
  const index_t n_streams = 2;

  for (const index_t paths : {index_t{2}, index_t{4}, index_t{6}}) {
    randgen::Rng rng(paths);
    real analog = 0.0, digital = 0.0;
    std::map<index_t, real> hybrid;
    const std::vector<index_t> rf_counts{2, 3, 4, 6, 8};
    for (int t = 0; t < trials; ++t) {
      std::vector<channel::Path> ps;
      for (index_t p = 0; p < paths; ++p)
        ps.push_back({1.0 / static_cast<real>(paths),
                      {rng.uniform(sector.az_min, sector.az_max),
                       rng.uniform(sector.el_min, sector.el_max)},
                      {rng.uniform(sector.az_min, sector.az_max),
                       rng.uniform(sector.el_min, sector.el_max)}});
      const Matrix h =
          channel::make_fixed_paths_link(tx, rx, std::move(ps))
              .draw_channel(rng);
      analog += phy::optimal_beamforming_capacity(h, power);
      digital += phy::precoded_spectral_efficiency(
          h, phy::optimal_digital_precoder(h, n_streams), power);
      for (const index_t n_rf : rf_counts) {
        const auto res =
            phy::design_hybrid_precoder(h, n_streams, n_rf, dict);
        hybrid[n_rf] += phy::precoded_spectral_efficiency(
            h, res.f_rf * res.f_bb, power);
      }
    }
    std::printf("%zu-path channel (2 streams, 10 dB, %d trials)\n", paths,
                trials);
    std::printf("architecture\tbit/s/Hz\n");
    std::printf("analog_1beam\t%.3f\n", analog / trials);
    for (const index_t n_rf : rf_counts)
      std::printf("hybrid_%zu_rf\t%.3f\n", n_rf, hybrid[n_rf] / trials);
    std::printf("digital\t%.3f\n\n", digital / trials);
  }
  run.finish();
  return 0;
}
