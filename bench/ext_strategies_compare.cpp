// Extension E1: all implemented alignment protocols side by side at their
// natural operating points, including the IEEE 802.15.3c-style two-stage
// sweep (sector sweep + beam refinement) and the hierarchical search —
// reporting measurements, achieved loss, and MAC air-time.
#include <cstdio>

#include "core/standard_sweep.h"
#include "fig_common.h"
#include "mac/timing.h"
#include "sim/evaluation.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ext_strategies_compare", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Extension E1",
                      "protocol comparison incl. 802.15.3c-style sweep");

  const mac::ProtocolTiming timing;
  const index_t budget_10pct = 102;

  for (const auto kind :
       {ChannelKind::kSinglePath, ChannelKind::kNycMultipath}) {
    Scenario sc = bench::paper_scenario(kind, 20);
    std::printf("%s channel (20 trials)\n",
                kind == ChannelKind::kSinglePath ? "single-path"
                                                 : "NYC multipath");
    std::printf("protocol\tmeasurements\tloss_dB\tair_time_us\n");

    // Codebook-session protocols at a 10% search rate.
    core::RandomSearch random_search;
    core::ScanSearch scan_search;
    core::ProposedAlignment proposed;
    core::HierarchicalSearch hierarchical;
    core::LocalSearch local_search;
    const std::vector<const core::AlignmentStrategy*> strategies{
        &random_search, &scan_search, &proposed, &hierarchical,
        &local_search};

    randgen::Rng root(sc.seed);
    std::map<std::string, real> loss_acc;
    for (index_t t = 0; t < sc.trials; ++t) {
      randgen::Rng trial_rng = root.fork();
      const TrialContext ctx = make_trial(sc, trial_rng);
      for (const auto* s : strategies) {
        randgen::Rng run_rng = trial_rng.fork();
        mac::Session session(ctx.link, ctx.tx_codebook, ctx.rx_codebook,
                             sc.gamma, budget_10pct, run_rng,
                             sc.fades_per_measurement);
        s->run(session);
        loss_acc[std::string(s->name())] +=
            loss_after(ctx.oracle, session.records(), budget_10pct);
      }
    }
    for (const auto& [name, acc] : loss_acc) {
      // One TX-slot per J=6 measurements for Proposed; the sweeps batch
      // feedback once per TX beam row (16 slots at 10% budget either way).
      const index_t slots = budget_10pct / 6;
      std::printf("%s\t%zu\t%.3f\t%.0f\n", name.c_str(), budget_10pct,
                  acc / sc.trials,
                  timing.alignment_latency_us(budget_10pct, slots));
    }

    // The 802.15.3c-style two-stage sweep (fixed protocol cost).
    randgen::Rng root2(sc.seed);
    real sweep_loss = 0.0;
    index_t sweep_meas = 0;
    const auto tx = antenna::ArrayGeometry::upa(4, 4);
    const auto rx = antenna::ArrayGeometry::upa(8, 8);
    for (index_t t = 0; t < sc.trials; ++t) {
      randgen::Rng trial_rng = root2.fork();
      const TrialContext ctx = make_trial(sc, trial_rng);
      randgen::Rng run_rng = trial_rng.fork();
      core::StandardSweepConfig cfg;
      cfg.gamma = sc.gamma;
      cfg.fades_per_measurement = sc.fades_per_measurement;
      const auto res = core::run_standard_sweep(
          ctx.link, tx, rx, ctx.tx_codebook, ctx.rx_codebook, cfg, run_rng);
      sweep_loss += ctx.oracle.loss_db(res.tx_beam, res.rx_beam);
      sweep_meas = res.total_measurements();
    }
    std::printf("802.15.3c-sweep\t%zu\t%.3f\t%.0f\n\n", sweep_meas,
                sweep_loss / sc.trials,
                timing.alignment_latency_us(sweep_meas, 16 + 4));
  }
  run.finish();
  return 0;
}
