// Extension E7: multi-cell deployment under inter-cell interference.
//
// Two sweeps through sim::run_multicell on the paper's single-path setup:
//  (a) SNR loss + required search rate vs number of cells (hex topology,
//      one user per cell) — how much alignment quality the noise-floor
//      lift from neighbouring cells' active beams costs each scheme;
//  (b) the same vs users per cell at a fixed 7-cell deployment — more
//      users = more sessions, same interference field per trial.
//
// Expected shape: the isolated cell (cells=1) matches the Fig. 5/7 numbers
// at the grading rate; loss and required rate rise with cell count as the
// interference-over-noise ratio grows; Proposed stays below Random and
// Scan throughout because its covariance scoring is unchanged — only the
// per-measurement noise floor moves.
#include <cstdio>

#include "fig_common.h"
#include "sim/multicell.h"

namespace {

void print_sweep(const char* x_label, const std::vector<mmw::real>& xs,
                 const std::vector<mmw::sim::MultiCellResult>& results) {
  std::printf("%s\tsessions", x_label);
  for (const auto& [name, summary] : results.front().loss_db)
    std::printf("\t%s_loss_dB", name.c_str());
  for (const auto& [name, summary] : results.front().required_rate)
    std::printf("\t%s_rate", name.c_str());
  std::printf("\tINR_dB\n");
  for (mmw::index_t i = 0; i < xs.size(); ++i) {
    const auto& r = results[i];
    std::printf("%.0f\t%zu", xs[i], r.sessions_per_strategy);
    for (const auto& [name, summary] : r.loss_db)
      std::printf("\t%.3f", summary.mean);
    for (const auto& [name, summary] : r.required_rate)
      std::printf("\t%.3f", summary.mean);
    std::printf("\t%.2f\n", r.interference_over_noise_db.mean);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmw;
  using namespace mmw::sim;

  bench::BenchRun run("ext_multicell_interference", argc, argv);
  Scenario sc = bench::paper_scenario(ChannelKind::kSinglePath, 10);
  sc.threads = bench::threads_from_cli(argc, argv);
  run.add_scenario(sc);
  bench::print_header("Extension E7",
                      "multi-cell alignment under inter-cell interference",
                      sc.threads);

  core::RandomSearch random_search;
  core::ScanSearch scan_search;
  core::ProposedAlignment proposed;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &scan_search, &proposed};

  MultiCellConfig config;
  config.scenario = sc;
  run.manifest().add_config(
      "interference_scale", static_cast<double>(config.interference_scale));
  run.manifest().add_config("search_rate",
                            static_cast<double>(config.search_rate));
  run.manifest().add_config(
      "target_loss_db", static_cast<double>(config.target_loss_db));

  // Sweep (a): number of cells, one user each.
  const std::vector<real> cell_counts{1, 2, 4, 7};
  std::vector<MultiCellResult> by_cells;
  for (const real cells : cell_counts) {
    config.topology.cells = static_cast<index_t>(cells);
    config.topology.users_per_cell = 1;
    by_cells.push_back(run_multicell(config, strategies));
  }
  std::printf("SNR loss / required rate vs number of cells (hex, 1 user)\n");
  print_sweep("cells", cell_counts, by_cells);
  const std::string cells_csv =
      render_multicell_csv("cells", cell_counts, by_cells);
  bench::write_artifact("ext_multicell_interference_cells.csv", cells_csv);

  // Sweep (b): users per cell at the classic 7-cell hex deployment.
  const std::vector<real> user_counts{1, 2, 4};
  std::vector<MultiCellResult> by_users;
  for (const real users : user_counts) {
    config.topology.cells = 7;
    config.topology.users_per_cell = static_cast<index_t>(users);
    by_users.push_back(run_multicell(config, strategies));
  }
  std::printf("SNR loss / required rate vs users per cell (hex, 7 cells)\n");
  print_sweep("users_per_cell", user_counts, by_users);
  const std::string users_csv =
      render_multicell_csv("users_per_cell", user_counts, by_users);
  bench::write_artifact("ext_multicell_interference_users.csv", users_csv);

  run.finish();
  return 0;
}
