// Ablation A8: robustness to blockage — with probability p a measurement
// slot is shadowed and carries noise only. Blockage corrupts the training
// data every scheme selects from, and specifically poisons the proposed
// scheme's covariance estimates; this sweep shows how gracefully each
// scheme degrades.
#include <cstdio>

#include "fig_common.h"
#include "mac/session.h"
#include "sim/evaluation.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_blockage", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Ablation A8", "measurement blockage sweep");

  const Scenario sc = bench::paper_scenario(ChannelKind::kSinglePath, 20);
  const index_t budget = 102;  // 10% search rate
  core::RandomSearch random_search;
  core::ProposedAlignment proposed;
  const std::vector<std::pair<const core::AlignmentStrategy*, const char*>>
      strategies{{&proposed, "Proposed"}, {&random_search, "Random"}};

  std::printf("blockage_p");
  for (const auto& [s, name] : strategies) std::printf("\t%s", name);
  std::printf("\t(mean loss dB at 10%% rate, %zu trials)\n", sc.trials);

  for (const real p : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    std::printf("%.2f", p);
    for (const auto& [strategy, name] : strategies) {
      randgen::Rng root(sc.seed);
      real loss = 0.0;
      for (index_t t = 0; t < sc.trials; ++t) {
        randgen::Rng trial_rng = root.fork();
        const TrialContext ctx = make_trial(sc, trial_rng);
        randgen::Rng run_rng = trial_rng.fork();
        mac::Session session(ctx.link, ctx.tx_codebook, ctx.rx_codebook,
                             sc.gamma, budget, run_rng,
                             sc.fades_per_measurement);
        session.set_blockage_probability(p);
        strategy->run(session);
        loss += loss_after(ctx.oracle, session.records(), budget);
      }
      std::printf("\t%.3f", loss / sc.trials);
    }
    std::printf("\n");
  }
  run.finish();
  return 0;
}
