// Ablation A9: the Algorithm-1 implementation choices DESIGN.md §5b calls
// out — the exploration fallback (probes revert to random when the carried
// estimate has no signal) and the end-of-slot re-estimate that folds the
// J-th measurement into the carried covariance. "literal" disables both,
// i.e. the paper's Algorithm 1 exactly as written.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_algorithm_variants", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Ablation A9", "Algorithm 1 variants");

  struct Variant {
    const char* name;
    real exploration_floor;
    bool reestimate_with_final;
  };
  const Variant variants[] = {
      {"default", 1.0, true},
      {"literal_algorithm1", 0.0, false},
      {"no_exploration_fallback", 0.0, true},
      {"no_final_reestimate", 1.0, false},
  };
  const std::vector<real> rates{0.05, 0.10, 0.20};

  for (const auto kind :
       {ChannelKind::kSinglePath, ChannelKind::kNycMultipath}) {
    std::printf("%s channel — mean SNR loss (dB)\n",
                kind == ChannelKind::kSinglePath ? "single-path"
                                                 : "NYC multipath");
    std::printf("variant");
    for (const real r : rates) std::printf("\t%.0f%%", 100.0 * r);
    std::printf("\n");
    const Scenario sc = bench::paper_scenario(kind, 20);
    for (const Variant& v : variants) {
      core::ProposedOptions opts;
      opts.exploration_floor = v.exploration_floor;
      opts.reestimate_with_final = v.reestimate_with_final;
      core::ProposedAlignment proposed(opts);
      const auto res = run_search_effectiveness(sc, {&proposed}, rates);
      std::printf("%s", v.name);
      for (const auto& s : res.loss_db.at("Proposed"))
        std::printf("\t%.3f", s.mean);
      std::printf("\n");
    }
    std::printf("\n");
  }
  run.finish();
  return 0;
}
