// Extension E8: fault-tolerant alignment under deterministic fault
// injection — the strategy × fault-type robustness matrix.
//
// Every strategy trains on the paper's NYC multipath setup while the fault
// runtime injects one failure mode per case (mid-alignment blockage,
// heavy-tailed measurement outliers, dropped slots, forced solver stress,
// then all four combined), with post-alignment verification/re-alignment
// engaged and trial quarantine on. Reported per cell: mean SNR loss of the
// final pair (graded against the post-onset truth when a blockage fired),
// alignment-failure rate, outage/recovery rates, recovery-slot overhead,
// and the degradation-ladder rung histogram.
//
// Expected shape: the clean case reproduces budget-rate Fig. 6 loss with
// zero outages and zero fallbacks; blockage drives outages that the
// widened-beam re-alignment partially recovers on multipath links; drops
// and outliers cost loss but few outages; solver stress moves solves down
// the ladder without aborting any run.
#include <cstdio>

#include "fig_common.h"
#include "sim/robustness.h"

namespace {

mmw::index_t trials_from_cli(int argc, char** argv, mmw::index_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trials=", 9) == 0)
      return std::strtoull(argv[i] + 9, nullptr, 10);
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
      return std::strtoull(argv[i + 1], nullptr, 10);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmw;
  using namespace mmw::sim;

  bench::BenchRun run("ext_fault_robustness", argc, argv);
  Scenario sc = bench::paper_scenario(ChannelKind::kNycMultipath, 15);
  sc.trials = trials_from_cli(argc, argv, sc.trials);
  sc.threads = bench::threads_from_cli(argc, argv);
  run.add_scenario(sc);
  bench::print_header("Extension E8",
                      "alignment robustness under injected faults",
                      sc.threads);

  core::RandomSearch random_search;
  core::ScanSearch scan_search;
  core::ExhaustiveSearch exhaustive;
  core::ProposedAlignment proposed;
  core::HierarchicalSearch hierarchical;
  core::PingPongAlignment ping_pong;
  core::LocalSearch local_search;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &scan_search,  &exhaustive,   &proposed,
      &hierarchical,  &ping_pong,    &local_search};

  RobustnessConfig config;
  config.scenario = sc;
  run.manifest().add_config("budget_rate",
                            static_cast<double>(config.budget_rate));
  run.manifest().add_config("failure_loss_db",
                            static_cast<double>(config.failure_loss_db));
  run.manifest().add_config("collapse_db",
                            static_cast<double>(config.realignment.collapse_db));

  // The fault matrix: one failure mode per case, then all of them at once.
  // Quarantine is on everywhere so a failing trial is excluded, never
  // fatal; with the ladder in place no case is expected to lose any.
  std::vector<FaultCase> cases;
  {
    FaultCase clean{"clean", {}};
    clean.faults.quarantine_trials = true;
    cases.push_back(clean);

    FaultCase blockage{"blockage", {}};
    blockage.faults.blockage_probability = 1.0;
    blockage.faults.quarantine_trials = true;
    cases.push_back(blockage);

    FaultCase outliers{"outliers", {}};
    outliers.faults.outlier_probability = 0.05;
    outliers.faults.quarantine_trials = true;
    cases.push_back(outliers);

    FaultCase drops{"drops", {}};
    drops.faults.drop_probability = 0.10;
    drops.faults.quarantine_trials = true;
    cases.push_back(drops);

    FaultCase stress{"solver_stress", {}};
    stress.faults.solver_stress_probability = 0.50;
    stress.faults.quarantine_trials = true;
    cases.push_back(stress);

    FaultCase combined{"combined", {}};
    combined.faults.blockage_probability = 0.5;
    combined.faults.outlier_probability = 0.05;
    combined.faults.drop_probability = 0.10;
    combined.faults.solver_stress_probability = 0.25;
    combined.faults.quarantine_trials = true;
    cases.push_back(combined);
  }

  const std::vector<FaultCaseResult> results =
      run_fault_robustness(config, strategies, cases);

  for (const FaultCaseResult& r : results) {
    std::printf("case %-13s (quarantined %zu/%zu)\n", r.name.c_str(),
                r.quarantined, sc.trials);
    std::printf(
        "  %-12s %9s %9s %9s %9s %9s  %s\n", "strategy", "loss_dB",
        "fail", "outage", "recover", "slots", "rungs em/sample/uniform");
    for (const auto& [name, sr] : r.by_strategy)
      std::printf("  %-12s %9.3f %9.2f %9.2f %9.2f %9.1f  %llu/%llu/%llu\n",
                  name.c_str(), sr.loss_db.mean, sr.failure_rate,
                  sr.outage_rate, sr.recovery_rate, sr.recovery_slots.mean,
                  static_cast<unsigned long long>(sr.fallback_rungs[1]),
                  static_cast<unsigned long long>(sr.fallback_rungs[2]),
                  static_cast<unsigned long long>(sr.fallback_rungs[3]));
    std::printf("\n");
  }

  bench::write_artifact("ext_fault_robustness.csv",
                        render_robustness_csv(results));
  run.finish();
  return 0;
}
