// Reproduces paper Fig. 5: SNR Loss (dB) vs Search Rate for the single-path
// mmWave channel; series = Random, Scan, Proposed.
//
// Expected shape: loss decreases with search rate for all schemes; Proposed
// sits below Random and Scan across the mid search-rate regime; Scan is the
// worst at small rates (it crawls through one corner of the pair grid).
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace mmw;
  using namespace mmw::sim;

  bench::BenchRun run("fig5_search_effectiveness_singlepath", argc, argv);
  Scenario sc = bench::paper_scenario(ChannelKind::kSinglePath);
  sc.threads = bench::threads_from_cli(argc, argv);
  run.add_scenario(sc);
  bench::print_header("Figure 5", "search effectiveness, single-path channel",
                      sc.threads);

  core::RandomSearch random_search;
  core::ScanSearch scan_search;
  core::ProposedAlignment proposed;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &scan_search, &proposed};

  const auto result = run_search_effectiveness(sc, strategies,
                                               bench::paper_search_rates());
  std::printf("SNR Loss (dB) vs Search Rate\n%s\n",
              render_table("search_rate", result.search_rates,
                           result.loss_db)
                  .c_str());
  const std::string csv =
      render_csv("search_rate", result.search_rates, result.loss_db);
  std::printf("csv\n%s", csv.c_str());
  bench::write_artifact("fig5_search_effectiveness_singlepath.csv", csv);
  run.finish();
  return 0;
}
