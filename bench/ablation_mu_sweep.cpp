// Ablation A2: the nuclear-norm regularization weight μ (paper eq. 25).
//
// Two views: (a) pure estimation quality — relative Frobenius error of Q̂
// against a planted low-rank covariance from undersampled measurements;
// (b) end-to-end alignment loss when the proposed scheme runs with that μ.
#include <cstdio>

#include "channel/link.h"
#include "fig_common.h"
#include "linalg/functions.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_mu_sweep", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;
  using linalg::Matrix;
  using linalg::Vector;

  bench::print_header("Ablation A2", "regularization weight mu sweep");

  const std::vector<real> mus{0.0, 0.01, 0.05, 0.2, 1.0, 5.0};

  // (a) Estimation error on a synthetic rank-2 covariance, N=16, J=10.
  std::printf("estimation view: rank-2 Q, N=16, J=10, gamma=20 dB\n");
  std::printf("mu\trel_frobenius_error\tnumerical_rank\n");
  const real gamma = 100.0;
  for (const real mu : mus) {
    randgen::Rng rng(7);
    real err = 0.0;
    real rank = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      Matrix q(16, 16);
      for (int k = 0; k < 2; ++k) {
        const Vector x = rng.random_unit_vector(16);
        q += Matrix::outer(x, x) * cx{32.0, 0.0};
      }
      const Matrix root = linalg::hermitian_sqrt(q);
      std::vector<estimation::BeamMeasurement> ms;
      for (int j = 0; j < 10; ++j) {
        estimation::BeamMeasurement m;
        m.beam = rng.random_unit_vector(16);
        const Vector h = root * rng.complex_gaussian_vector(16);
        m.energy = std::norm(linalg::dot(m.beam, h) +
                             rng.complex_normal(1.0 / gamma));
        ms.push_back(std::move(m));
      }
      estimation::CovarianceMlOptions opts;
      opts.gamma = gamma;
      opts.mu = mu;
      const auto res = estimation::estimate_covariance_ml(16, ms, opts);
      err += (res.q.dense() - q).frobenius_norm() / q.frobenius_norm();
      rank += static_cast<real>(linalg::numerical_rank(res.q.dense(), 1e-6));
    }
    std::printf("%.3f\t%.4f\t%.1f\n", mu, err / trials, rank / trials);
  }

  // (b) End-to-end alignment loss at a 10% search rate.
  std::printf("\nend-to-end view: mean SNR loss (dB) at 10%% search rate\n");
  std::printf("mu\tsingle-path\tmultipath\n");
  for (const real mu : mus) {
    std::printf("%.3f", mu);
    for (const auto kind :
         {ChannelKind::kSinglePath, ChannelKind::kNycMultipath}) {
      const Scenario sc = bench::paper_scenario(kind, 20);
      core::ProposedOptions opts;
      opts.estimator.mu = mu;
      core::ProposedAlignment proposed(opts);
      const auto res = run_search_effectiveness(sc, {&proposed}, {0.10});
      std::printf("\t%.3f", res.loss_db.at("Proposed")[0].mean);
    }
    std::printf("\n");
  }
  run.finish();
  return 0;
}
