// Ablation A7: analog phase-shifter resolution.
//
// Real analog front ends implement beam weights with b-bit phase shifters
// (constant modulus, 2^b phase levels). This sweeps b and reports both the
// pure beamforming degradation (gain of the quantized beam toward its own
// direction) and the end-to-end alignment loss of the proposed scheme.
#include <cstdio>
#include <string>

#include "antenna/steering.h"
#include "fig_common.h"
#include "mac/session.h"
#include "sim/evaluation.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_phase_quantization", argc, argv);
  using namespace mmw;
  using antenna::ArrayGeometry;
  using antenna::Codebook;

  bench::print_header("Ablation A7", "phase-shifter resolution sweep");

  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  const channel::AngularSector sector;
  const auto tx_ideal = Codebook::angular_grid(
      tx, 4, 4, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const auto rx_ideal = Codebook::angular_grid(
      rx, 8, 8, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const index_t budget = 102;  // 10% of T
  const int trials = 20;

  std::printf(
      "bits\tbeam_gain_loss_dB\tproposed_loss_dB\trandom_loss_dB (10%% "
      "rate, %d trials)\n",
      trials);
  for (const index_t bits :
       {index_t{1}, index_t{2}, index_t{3}, index_t{4}, index_t{0}}) {
    const bool ideal = bits == 0;
    const Codebook tx_cb =
        ideal ? tx_ideal : tx_ideal.with_quantized_phases(bits);
    const Codebook rx_cb =
        ideal ? rx_ideal : rx_ideal.with_quantized_phases(bits);

    // Pure beamforming view: mean gain drop of the quantized boresight-ish
    // codeword toward a matched direction.
    real gain_loss = 0.0;
    {
      randgen::Rng rng(3);
      const int probes = 100;
      for (int i = 0; i < probes; ++i) {
        const antenna::Direction d{rng.uniform(sector.az_min, sector.az_max),
                                   rng.uniform(sector.el_min, sector.el_max)};
        const index_t best_q =
            rx_cb.best_match(antenna::steering_vector(rx, d));
        const index_t best_i =
            rx_ideal.best_match(antenna::steering_vector(rx, d));
        const real gq = antenna::beam_gain(rx, rx_cb.codeword(best_q), d);
        const real gi = antenna::beam_gain(rx, rx_ideal.codeword(best_i), d);
        gain_loss += 10.0 * std::log10(gi / std::max(gq, 1e-12));
      }
      gain_loss /= probes;
    }

    // End-to-end view.
    randgen::Rng rng(17);
    real prop_loss = 0.0, rand_loss = 0.0;
    for (int t = 0; t < trials; ++t) {
      const auto link = channel::make_single_path_link(tx, rx, rng, sector);
      const core::PairGainOracle oracle(link, tx_cb, rx_cb);
      {
        randgen::Rng run = rng.fork();
        mac::Session s(link, tx_cb, rx_cb, 1.0, budget, run, 8);
        core::ProposedAlignment().run(s);
        prop_loss += sim::loss_after(oracle, s.records(), budget);
      }
      {
        randgen::Rng run = rng.fork();
        mac::Session s(link, tx_cb, rx_cb, 1.0, budget, run, 8);
        core::RandomSearch().run(s);
        rand_loss += sim::loss_after(oracle, s.records(), budget);
      }
    }
    std::printf("%s\t%.3f\t%.3f\t%.3f\n", ideal ? "ideal" :
                std::to_string(bits).c_str(), gain_loss, prop_loss / trials,
                rand_loss / trials);
  }
  std::printf(
      "\nnote: the oracle grades against the QUANTIZED codebook's own "
      "optimum, so the\nend-to-end loss isolates the search behaviour; the "
      "beam-gain column shows the\nhardware penalty itself (2-3 bits is "
      "within a fraction of a dB of ideal).\n");
  run.finish();
  return 0;
}
