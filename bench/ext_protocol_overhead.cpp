// Extension E2: net throughput after alignment overhead — the capacity
// argument from the paper's introduction. Schemes re-align once per frame;
// cheaper alignment leaves more of the frame for data.
#include <cmath>
#include <cstdio>

#include "fig_common.h"
#include "mac/timing.h"
#include "sim/evaluation.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ext_protocol_overhead", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Extension E2",
                      "net spectral efficiency vs re-alignment period");

  Scenario sc = bench::paper_scenario(ChannelKind::kNycMultipath, 15);
  const mac::ProtocolTiming timing;

  // Operating points: (name, measurements L, TX-slots I).
  struct Point {
    const char* name;
    index_t measurements;
    index_t slots;
    const core::AlignmentStrategy* strategy;
  };
  core::ProposedAlignment proposed;
  core::RandomSearch random_search;
  core::ExhaustiveSearch exhaustive;
  const Point points[] = {
      {"proposed@10%", 102, 17, &proposed},
      {"random@10%", 102, 17, &random_search},
      {"exhaustive@100%", 1024, 16, &exhaustive},
  };

  // Mean post-beamforming SNR achieved by each scheme at its budget.
  std::map<std::string, real> mean_snr;
  randgen::Rng root(sc.seed);
  for (index_t t = 0; t < sc.trials; ++t) {
    randgen::Rng trial_rng = root.fork();
    const TrialContext ctx = make_trial(sc, trial_rng);
    for (const auto& p : points) {
      randgen::Rng run_rng = trial_rng.fork();
      mac::Session session(ctx.link, ctx.tx_codebook, ctx.rx_codebook,
                           sc.gamma, p.measurements, run_rng,
                           sc.fades_per_measurement);
      p.strategy->run(session);
      const auto best = best_in_prefix(session.records(),
                                       session.records().size());
      mean_snr[p.name] +=
          sc.gamma * ctx.oracle.gain(best.tx_beam, best.rx_beam) / sc.trials;
    }
  }

  std::printf("frame_ms");
  for (const auto& p : points) std::printf("\t%s", p.name);
  std::printf("\t(net bit/s/Hz)\n");
  for (const real frame_ms : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    std::printf("%.0f", frame_ms);
    for (const auto& p : points) {
      const real eff = timing.net_spectral_efficiency(
          p.measurements, p.slots, frame_ms * 1000.0, mean_snr[p.name]);
      std::printf("\t%.3f", eff);
    }
    std::printf("\n");
  }
  std::printf(
      "\nmean post-BF SNR: proposed=%.1f dB, random=%.1f dB, "
      "exhaustive=%.1f dB\n",
      10.0 * std::log10(mean_snr["proposed@10%"]),
      10.0 * std::log10(mean_snr["random@10%"]),
      10.0 * std::log10(mean_snr["exhaustive@100%"]));
  run.finish();
  return 0;
}
