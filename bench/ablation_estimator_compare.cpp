// Ablation A4: the covariance estimator inside the proposed scheme —
// regularized ML (the paper's, eq. 23) vs the moment ("sample covariance")
// estimator vs diagonal loading.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_estimator_compare", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Ablation A4", "covariance estimator comparison");

  const std::vector<real> rates{0.05, 0.10, 0.20};
  const std::pair<core::EstimatorKind, const char*> kinds[] = {
      {core::EstimatorKind::kRegularizedMl, "regularized_ml"},
      {core::EstimatorKind::kEmMl, "em_ml"},
      {core::EstimatorKind::kSampleCovariance, "sample_covariance"},
      {core::EstimatorKind::kDiagonalLoading, "diagonal_loading"},
  };

  for (const auto kind :
       {ChannelKind::kSinglePath, ChannelKind::kNycMultipath}) {
    std::printf("%s channel — mean SNR loss (dB)\n",
                kind == ChannelKind::kSinglePath ? "single-path"
                                                 : "NYC multipath");
    std::printf("estimator");
    for (const real r : rates) std::printf("\t%.0f%%", 100.0 * r);
    std::printf("\n");
    const Scenario sc = bench::paper_scenario(kind, 20);
    for (const auto& [ek, label] : kinds) {
      core::ProposedOptions opts;
      opts.estimator_kind = ek;
      core::ProposedAlignment proposed(opts);
      const auto res = run_search_effectiveness(sc, {&proposed}, rates);
      std::printf("%s", label);
      for (const auto& s : res.loss_db.at("Proposed"))
        std::printf("\t%.3f", s.mean);
      std::printf("\n");
    }
    std::printf("\n");
  }
  run.finish();
  return 0;
}
