// Reproduces paper Fig. 7: Required Search Rate vs Target Loss for the
// single-path channel — each scheme searches until its claimed pair is
// within the target loss of the optimum; the rate of pairs it had to
// measure is the cost.
//
// Expected shape: required rate grows as the target tightens; Proposed
// needs the smallest rate everywhere, saving up to ~25% of all beam pairs
// against the baselines at tight targets.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace mmw;
  using namespace mmw::sim;

  bench::BenchRun run("fig7_cost_efficiency_singlepath", argc, argv);
  Scenario sc = bench::paper_scenario(ChannelKind::kSinglePath);
  sc.threads = bench::threads_from_cli(argc, argv);
  run.add_scenario(sc);
  bench::print_header("Figure 7", "cost efficiency, single-path channel",
                      sc.threads);

  core::RandomSearch random_search;
  core::ScanSearch scan_search;
  core::ProposedAlignment proposed;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &scan_search, &proposed};

  const auto result =
      run_cost_efficiency(sc, strategies, bench::paper_target_losses());
  std::printf("Required Search Rate vs Target Loss (dB)\n%s\n",
              render_table("target_loss_db", result.target_loss_db,
                           result.required_rate)
                  .c_str());
  const std::string csv = render_csv("target_loss_db",
                                     result.target_loss_db,
                                     result.required_rate);
  std::printf("csv\n%s", csv.c_str());
  bench::write_artifact("fig7_cost_efficiency_singlepath.csv", csv);
  run.finish();
  return 0;
}
