// P1: micro-benchmarks of the numerical substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "antenna/codebook.h"
#include "antenna/steering.h"
#include "estimation/covariance_ml.h"
#include "linalg/decompositions.h"
#include "linalg/eig.h"
#include "linalg/functions.h"
#include "obs/obs.h"
#include "randgen/rng.h"

namespace {

using namespace mmw;
using linalg::Matrix;
using linalg::Vector;

Matrix random_hermitian(randgen::Rng& rng, index_t n) {
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  return (g + g.adjoint()) * cx{0.5, 0.0};
}

void BM_MatrixMultiply(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(1);
  const Matrix a = rng.complex_gaussian_matrix(n, n);
  const Matrix b = rng.complex_gaussian_matrix(n, n);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(16)->Arg(64);

void BM_HermitianEig(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(2);
  const Matrix a = random_hermitian(rng, n);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::hermitian_eig(a));
}
BENCHMARK(BM_HermitianEig)->Arg(8)->Arg(16)->Arg(64);

void BM_HermitianEigQl(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(2);
  const Matrix a = random_hermitian(rng, n);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::hermitian_eig_ql(a));
}
BENCHMARK(BM_HermitianEigQl)->Arg(8)->Arg(16)->Arg(64);

void BM_Svd(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(3);
  const Matrix a = rng.complex_gaussian_matrix(n, n);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::svd(a));
}
BENCHMARK(BM_Svd)->Arg(8)->Arg(16);

void BM_Cholesky(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(4);
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  const Matrix a = g * g.adjoint() + Matrix::identity(n) * cx{0.1, 0.0};
  for (auto _ : state) benchmark::DoNotOptimize(linalg::cholesky(a));
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(64);

void BM_SteeringVector(benchmark::State& state) {
  const auto upa = antenna::ArrayGeometry::upa(8, 8);
  for (auto _ : state)
    benchmark::DoNotOptimize(antenna::steering_vector(upa, {0.3, 0.1}));
}
BENCHMARK(BM_SteeringVector);

void BM_CovarianceScores(benchmark::State& state) {
  randgen::Rng rng(5);
  const auto upa = antenna::ArrayGeometry::upa(8, 8);
  const auto cb = antenna::Codebook::dft(upa);
  const Matrix q = random_hermitian(rng, 64);
  for (auto _ : state) benchmark::DoNotOptimize(cb.covariance_scores(q));
}
BENCHMARK(BM_CovarianceScores);

void BM_CovarianceMlEstimate(benchmark::State& state) {
  // The estimator as the alignment loop calls it: N = 64, J measurements
  // (subspace-reduced to an r ≤ J problem internally).
  const index_t j = static_cast<index_t>(state.range(0));
  randgen::Rng rng(6);
  const Vector x = rng.random_unit_vector(64);
  const Matrix q = Matrix::outer(x, x) * cx{256.0, 0.0};
  const Matrix root = linalg::hermitian_sqrt(q);
  std::vector<estimation::BeamMeasurement> ms;
  for (index_t k = 0; k < j; ++k) {
    estimation::BeamMeasurement m;
    m.beam = rng.random_unit_vector(64);
    const Vector h = root * rng.complex_gaussian_vector(64);
    m.energy = std::norm(linalg::dot(m.beam, h) + rng.complex_normal(0.01));
    ms.push_back(std::move(m));
  }
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(estimation::estimate_covariance_ml(64, ms, opts));
}
BENCHMARK(BM_CovarianceMlEstimate)->Arg(5)->Arg(10)->Arg(20);

// ---- Factored vs dense covariance plumbing ---------------------------------
//
// The alignment loop's per-slot hot path is: estimate Q̂ from the slot's J
// energies, then score every RX codeword against Q̂ (probe selection for the
// next slot plus the step-3 beam ranking). The dense variants below lift the
// factored estimate to N×N and score with the O(|V|·N²) dense kernels — the
// pre-factored behaviour; the factored variants keep {B, Q_r} and score via
// Bᴴv projections in O(|V|·(N·r + r²)).

antenna::ArrayGeometry geometry_for(index_t n) {
  switch (n) {
    case 16: return antenna::ArrayGeometry::upa(4, 4);
    case 64: return antenna::ArrayGeometry::upa(8, 8);
    default: return antenna::ArrayGeometry::upa(16, 8);  // 128
  }
}

std::vector<estimation::BeamMeasurement> slot_energies(
    randgen::Rng& rng, const antenna::Codebook& cb, index_t n, index_t j) {
  const Vector x = rng.random_unit_vector(n);
  const Matrix q = Matrix::outer(x, x) * cx{static_cast<real>(4 * n), 0.0};
  const Matrix root = linalg::hermitian_sqrt(q);
  std::vector<estimation::BeamMeasurement> ms;
  for (index_t k = 0; k < j; ++k) {
    estimation::BeamMeasurement m;
    m.beam = cb.codeword((k * 7) % cb.size());
    const Vector h = root * rng.complex_gaussian_vector(n);
    m.energy = std::norm(linalg::dot(m.beam, h) + rng.complex_normal(0.01));
    ms.push_back(std::move(m));
  }
  return ms;
}

void BM_FactoredScores(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t j = static_cast<index_t>(state.range(1));
  randgen::Rng rng(7);
  const auto cb = antenna::Codebook::dft(geometry_for(n));
  const auto ms = slot_energies(rng, cb, n, j);
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const auto res = estimation::estimate_covariance_ml(n, ms, opts);
  for (auto _ : state) benchmark::DoNotOptimize(cb.covariance_scores(res.q));
}
BENCHMARK(BM_FactoredScores)
    ->ArgsProduct({{16, 64, 128}, {4, 8, 16}});

void BM_DenseScores(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t j = static_cast<index_t>(state.range(1));
  randgen::Rng rng(7);
  const auto cb = antenna::Codebook::dft(geometry_for(n));
  const auto ms = slot_energies(rng, cb, n, j);
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const Matrix q = estimation::estimate_covariance_ml(n, ms, opts).q.dense();
  for (auto _ : state) benchmark::DoNotOptimize(cb.covariance_scores(q));
}
BENCHMARK(BM_DenseScores)
    ->ArgsProduct({{16, 64, 128}, {4, 8, 16}});

// Per-slot estimate+score cycle — the part of the slot this PR changed.
// Both arms consume the SAME factored estimator output (the reduced-space
// proximal solve is bit-identical shared machinery in either arm; it is
// measured separately by BM_SlotCycleWithSolver* and BM_CovarianceMlEstimate).
//
// Dense baseline: the pre-factored behaviour — eagerly lift Q̂ to N×N
// (`lift_from_beam_span`, O(r²N²)), then both per-slot codebook passes
// (step-3 full ranking + next-slot probe selection) through the dense
// O(|V|·N²) Hermitian-form kernel.
void BM_SlotCycleDense(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t j = static_cast<index_t>(state.range(1));
  randgen::Rng rng(8);
  const auto cb = antenna::Codebook::dft(geometry_for(n));
  const auto ms = slot_energies(rng, cb, n, j);
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const auto res = estimation::estimate_covariance_ml(n, ms, opts);
  const bool full = res.q.is_full();  // r = N (e.g. 16/16): nothing to lift
  for (auto _ : state) {
    // Rebuild the factor pair so each iteration pays the lift, exactly as
    // the old code did once per slot (the cache would otherwise hide it).
    const linalg::FactoredHermitian f =
        full ? res.q
             : linalg::FactoredHermitian(res.q.basis(), res.q.core());
    const Matrix& q = f.dense();
    benchmark::DoNotOptimize(cb.top_k_for_covariance(q, cb.size()));
    benchmark::DoNotOptimize(cb.top_k_for_covariance(q, j));
  }
}
BENCHMARK(BM_SlotCycleDense)
    ->ArgsProduct({{16, 64, 128}, {4, 8, 16}});

// Factored path: no N×N matrix is ever formed; both passes score via Bᴴv
// projections in O(|V|·(N·r + r²)).
void BM_SlotCycleFactored(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t j = static_cast<index_t>(state.range(1));
  randgen::Rng rng(8);
  const auto cb = antenna::Codebook::dft(geometry_for(n));
  const auto ms = slot_energies(rng, cb, n, j);
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const auto res = estimation::estimate_covariance_ml(n, ms, opts);
  const bool full = res.q.is_full();
  for (auto _ : state) {
    const linalg::FactoredHermitian f =
        full ? res.q
             : linalg::FactoredHermitian(res.q.basis(), res.q.core());
    benchmark::DoNotOptimize(cb.top_k_for_covariance(f, cb.size()));
    benchmark::DoNotOptimize(cb.top_k_for_covariance(f, j));
  }
}
BENCHMARK(BM_SlotCycleFactored)
    ->ArgsProduct({{16, 64, 128}, {4, 8, 16}});

// End-to-end slot including the shared reduced-space ML solve. The solve is
// identical work in both arms, so the ratio here brackets the deployable
// per-slot win from below (solver-bound at small N, scoring-bound at large N).
void BM_SlotCycleWithSolverDense(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t j = static_cast<index_t>(state.range(1));
  randgen::Rng rng(8);
  const auto cb = antenna::Codebook::dft(geometry_for(n));
  const auto ms = slot_energies(rng, cb, n, j);
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  for (auto _ : state) {
    const Matrix q = estimation::estimate_covariance_ml(n, ms, opts).q.dense();
    benchmark::DoNotOptimize(cb.top_k_for_covariance(q, cb.size()));
    benchmark::DoNotOptimize(cb.top_k_for_covariance(q, j));
  }
}
BENCHMARK(BM_SlotCycleWithSolverDense)->Args({64, 8})->Args({128, 8});

void BM_SlotCycleWithSolverFactored(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t j = static_cast<index_t>(state.range(1));
  randgen::Rng rng(8);
  const auto cb = antenna::Codebook::dft(geometry_for(n));
  const auto ms = slot_energies(rng, cb, n, j);
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  for (auto _ : state) {
    const auto res = estimation::estimate_covariance_ml(n, ms, opts);
    benchmark::DoNotOptimize(cb.top_k_for_covariance(res.q, cb.size()));
    benchmark::DoNotOptimize(cb.top_k_for_covariance(res.q, j));
  }
}
BENCHMARK(BM_SlotCycleWithSolverFactored)->Args({64, 8})->Args({128, 8});

// ---- Batched scoring kernel tiers (DESIGN.md §12) --------------------------
//
// A/B of the runtime-dispatched SoA kernels: identical inputs, tier forced
// per benchmark. Both arms produce bit-identical scores (the kernel layer's
// equivalence contract); the ratio is pure SIMD throughput. Scoring goes
// through covariance_scores_into with a reused buffer, so no allocation is
// timed — only kernel work plus the thread-local arena bump.

void BM_BatchedScoresScalar(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t j = static_cast<index_t>(state.range(1));
  randgen::Rng rng(8);
  const auto cb = antenna::Codebook::dft(geometry_for(n));
  const auto ms = slot_energies(rng, cb, n, j);
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const auto res = estimation::estimate_covariance_ml(n, ms, opts);
  std::vector<real> scores(cb.size());
  linalg::kernels::force_tier_for_testing(linalg::kernels::Tier::kScalar);
  for (auto _ : state) {
    cb.covariance_scores_into(res.q, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  linalg::kernels::reset_tier_for_testing();
}
BENCHMARK(BM_BatchedScoresScalar)->ArgsProduct({{16, 64, 128}, {8}});

void BM_BatchedScoresAvx2(benchmark::State& state) {
  if (!linalg::kernels::cpu_supports_avx2()) {
    state.SkipWithError("CPU lacks AVX2");
    return;
  }
  const index_t n = static_cast<index_t>(state.range(0));
  const index_t j = static_cast<index_t>(state.range(1));
  randgen::Rng rng(8);
  const auto cb = antenna::Codebook::dft(geometry_for(n));
  const auto ms = slot_energies(rng, cb, n, j);
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  const auto res = estimation::estimate_covariance_ml(n, ms, opts);
  std::vector<real> scores(cb.size());
  linalg::kernels::force_tier_for_testing(linalg::kernels::Tier::kAvx2);
  for (auto _ : state) {
    cb.covariance_scores_into(res.q, scores);
    benchmark::DoNotOptimize(scores.data());
  }
  linalg::kernels::reset_tier_for_testing();
}
BENCHMARK(BM_BatchedScoresAvx2)->ArgsProduct({{16, 64, 128}, {8}});

void BM_AddScaledOuter(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(9);
  const Vector a = rng.complex_gaussian_vector(n);
  Matrix m(n, n);
  for (auto _ : state) {
    m.add_scaled_outer(cx{1e-3, 0.0}, a, a);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_AddScaledOuter)->Arg(16)->Arg(64)->Arg(128);

void BM_OuterTemporaryAdd(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(9);
  const Vector a = rng.complex_gaussian_vector(n);
  Matrix m(n, n);
  for (auto _ : state) {
    m += cx{1e-3, 0.0} * Matrix::outer(a, a);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_OuterTemporaryAdd)->Arg(16)->Arg(64)->Arg(128);

}  // namespace

// Expanded BENCHMARK_MAIN() so MMW_OBS / MMW_FLIGHT take effect: the
// obs-overhead CI gate A/B-compares this binary with the flight recorder
// armed (default) vs MMW_FLIGHT=off, so the env must be applied before any
// TraceScope runs.
int main(int argc, char** argv) {
  mmw::obs::init_from_env(false);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
