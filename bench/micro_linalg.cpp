// P1: micro-benchmarks of the numerical substrate (google-benchmark).
#include <benchmark/benchmark.h>

#include "antenna/codebook.h"
#include "antenna/steering.h"
#include "estimation/covariance_ml.h"
#include "linalg/decompositions.h"
#include "linalg/eig.h"
#include "linalg/functions.h"
#include "randgen/rng.h"

namespace {

using namespace mmw;
using linalg::Matrix;
using linalg::Vector;

Matrix random_hermitian(randgen::Rng& rng, index_t n) {
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  return (g + g.adjoint()) * cx{0.5, 0.0};
}

void BM_MatrixMultiply(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(1);
  const Matrix a = rng.complex_gaussian_matrix(n, n);
  const Matrix b = rng.complex_gaussian_matrix(n, n);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
}
BENCHMARK(BM_MatrixMultiply)->Arg(16)->Arg(64);

void BM_HermitianEig(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(2);
  const Matrix a = random_hermitian(rng, n);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::hermitian_eig(a));
}
BENCHMARK(BM_HermitianEig)->Arg(8)->Arg(16)->Arg(64);

void BM_HermitianEigQl(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(2);
  const Matrix a = random_hermitian(rng, n);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::hermitian_eig_ql(a));
}
BENCHMARK(BM_HermitianEigQl)->Arg(8)->Arg(16)->Arg(64);

void BM_Svd(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(3);
  const Matrix a = rng.complex_gaussian_matrix(n, n);
  for (auto _ : state) benchmark::DoNotOptimize(linalg::svd(a));
}
BENCHMARK(BM_Svd)->Arg(8)->Arg(16);

void BM_Cholesky(benchmark::State& state) {
  const index_t n = static_cast<index_t>(state.range(0));
  randgen::Rng rng(4);
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  const Matrix a = g * g.adjoint() + Matrix::identity(n) * cx{0.1, 0.0};
  for (auto _ : state) benchmark::DoNotOptimize(linalg::cholesky(a));
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(64);

void BM_SteeringVector(benchmark::State& state) {
  const auto upa = antenna::ArrayGeometry::upa(8, 8);
  for (auto _ : state)
    benchmark::DoNotOptimize(antenna::steering_vector(upa, {0.3, 0.1}));
}
BENCHMARK(BM_SteeringVector);

void BM_CovarianceScores(benchmark::State& state) {
  randgen::Rng rng(5);
  const auto upa = antenna::ArrayGeometry::upa(8, 8);
  const auto cb = antenna::Codebook::dft(upa);
  const Matrix q = random_hermitian(rng, 64);
  for (auto _ : state) benchmark::DoNotOptimize(cb.covariance_scores(q));
}
BENCHMARK(BM_CovarianceScores);

void BM_CovarianceMlEstimate(benchmark::State& state) {
  // The estimator as the alignment loop calls it: N = 64, J measurements
  // (subspace-reduced to an r ≤ J problem internally).
  const index_t j = static_cast<index_t>(state.range(0));
  randgen::Rng rng(6);
  const Vector x = rng.random_unit_vector(64);
  const Matrix q = Matrix::outer(x, x) * cx{256.0, 0.0};
  const Matrix root = linalg::hermitian_sqrt(q);
  std::vector<estimation::BeamMeasurement> ms;
  for (index_t k = 0; k < j; ++k) {
    estimation::BeamMeasurement m;
    m.beam = rng.random_unit_vector(64);
    const Vector h = root * rng.complex_gaussian_vector(64);
    m.energy = std::norm(linalg::dot(m.beam, h) + rng.complex_normal(0.01));
    ms.push_back(std::move(m));
  }
  estimation::CovarianceMlOptions opts;
  opts.gamma = 100.0;
  for (auto _ : state)
    benchmark::DoNotOptimize(estimation::estimate_covariance_ml(64, ms, opts));
}
BENCHMARK(BM_CovarianceMlEstimate)->Arg(5)->Arg(10)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
