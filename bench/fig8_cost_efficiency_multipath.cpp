// Reproduces paper Fig. 8: Required Search Rate vs Target Loss for the NYC
// multipath channel.
//
// Expected shape: as Fig. 7 — Proposed requires the smallest search rate at
// every target; Scan is by far the most expensive.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  using namespace mmw;
  using namespace mmw::sim;

  bench::BenchRun run("fig8_cost_efficiency_multipath", argc, argv);
  Scenario sc = bench::paper_scenario(ChannelKind::kNycMultipath);
  sc.threads = bench::threads_from_cli(argc, argv);
  run.add_scenario(sc);
  bench::print_header("Figure 8", "cost efficiency, NYC multipath channel",
                      sc.threads);

  core::RandomSearch random_search;
  core::ScanSearch scan_search;
  core::ProposedAlignment proposed;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &scan_search, &proposed};

  const auto result =
      run_cost_efficiency(sc, strategies, bench::paper_target_losses());
  std::printf("Required Search Rate vs Target Loss (dB)\n%s\n",
              render_table("target_loss_db", result.target_loss_db,
                           result.required_rate)
                  .c_str());
  const std::string csv = render_csv("target_loss_db",
                                     result.target_loss_db,
                                     result.required_rate);
  std::printf("csv\n%s", csv.c_str());
  bench::write_artifact("fig8_cost_efficiency_multipath.csv", csv);
  run.finish();
  return 0;
}
