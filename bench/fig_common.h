// Shared setup for the figure-reproduction benches: the paper's simulation
// configuration (Sec. V-A) and a uniform report format.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>

#include "core/thread_pool.h"
#include "sim/experiments.h"

namespace mmw::bench {

/// Thread-count knob shared by every figure bench: `--threads N` (or
/// `--threads=N`) on the command line, else the MMW_THREADS environment
/// variable, else 0 = auto (all hardware threads). The results are
/// bit-identical for any value — this only trades wall-clock for cores.
inline index_t threads_from_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      return std::strtoull(argv[i] + 10, nullptr, 10);
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      return std::strtoull(argv[i + 1], nullptr, 10);
  }
  if (const char* env = std::getenv("MMW_THREADS"))
    return std::strtoull(env, nullptr, 10);
  return 0;
}

/// The paper's setup: TX 4×4 λ/2 UPA (M = 16), RX 8×8 λ/2 UPA (N = 64),
/// angular-grid codebooks over a ±60°×±30° sector, T = 1024 beam pairs.
inline sim::Scenario paper_scenario(sim::ChannelKind channel,
                                    index_t trials = 25,
                                    std::uint64_t seed = 2016) {
  sim::Scenario sc;
  sc.channel = channel;
  sc.trials = trials;
  sc.seed = seed;
  return sc;
}

/// Search rates matching the span of the paper's Figs. 5–6 x-axes.
inline std::vector<real> paper_search_rates() {
  return {0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30, 0.35};
}

/// Target losses matching the span of the paper's Figs. 7–8 x-axes.
inline std::vector<real> paper_target_losses() {
  return {6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5};
}

inline void print_header(const char* figure, const char* description,
                         index_t threads = 0) {
  std::printf("=== %s: %s ===\n", figure, description);
  std::printf(
      "setup: TX 4x4 UPA (M=16), RX 8x8 UPA (N=64), T=1024 pairs, "
      "gamma=0 dB, 8 fades/measurement, %zu thread(s)\n\n",
      core::resolve_thread_count(threads));
}

/// Writes a CSV artifact under bench_results/ (created on demand) so the
/// figure data can be plotted without re-running the sweep. Failures are
/// reported but non-fatal: the printed table remains the primary output.
inline void write_artifact(const std::string& filename,
                           const std::string& content) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "note: could not create bench_results/: %s\n",
                 ec.message().c_str());
    return;
  }
  const std::string path = "bench_results/" + filename;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("(csv written to %s)\n", path.c_str());
  } else {
    std::fprintf(stderr, "note: could not write %s\n", path.c_str());
  }
}

}  // namespace mmw::bench
