// Shared setup for the figure-reproduction benches: the paper's simulation
// configuration (Sec. V-A) and a uniform report format.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>

#include "core/thread_pool.h"
#include "linalg/kernels.h"
#include "obs/clock.h"
#include "obs/manifest.h"
#include "obs/trace.h"
#include "sim/experiments.h"

namespace mmw::bench {

/// Thread-count knob shared by every figure bench: `--threads N` (or
/// `--threads=N`) on the command line, else the MMW_THREADS environment
/// variable, else 0 = auto (all hardware threads). The results are
/// bit-identical for any value — this only trades wall-clock for cores.
inline index_t threads_from_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0)
      return std::strtoull(argv[i] + 10, nullptr, 10);
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      return std::strtoull(argv[i + 1], nullptr, 10);
  }
  if (const char* env = std::getenv("MMW_THREADS"))
    return std::strtoull(env, nullptr, 10);
  return 0;
}

/// The paper's setup: TX 4×4 λ/2 UPA (M = 16), RX 8×8 λ/2 UPA (N = 64),
/// angular-grid codebooks over a ±60°×±30° sector, T = 1024 beam pairs.
inline sim::Scenario paper_scenario(sim::ChannelKind channel,
                                    index_t trials = 25,
                                    std::uint64_t seed = 2016) {
  sim::Scenario sc;
  sc.channel = channel;
  sc.trials = trials;
  sc.seed = seed;
  return sc;
}

/// Search rates matching the span of the paper's Figs. 5–6 x-axes.
inline std::vector<real> paper_search_rates() {
  return {0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30, 0.35};
}

/// Target losses matching the span of the paper's Figs. 7–8 x-axes.
inline std::vector<real> paper_target_losses() {
  return {6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5};
}

inline void print_header(const char* figure, const char* description,
                         index_t threads = 0) {
  std::printf("=== %s: %s ===\n", figure, description);
  std::printf(
      "setup: TX 4x4 UPA (M=16), RX 8x8 UPA (N=64), T=1024 pairs, "
      "gamma=0 dB, 8 fades/measurement, %zu thread(s)\n\n",
      core::resolve_thread_count(threads));
}

/// Writes a CSV artifact under bench_results/ (created on demand) so the
/// figure data can be plotted without re-running the sweep. Failures are
/// reported but non-fatal: the printed table remains the primary output.
inline void write_artifact(const std::string& filename,
                           const std::string& content) {
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) {
    std::fprintf(stderr, "note: could not create bench_results/: %s\n",
                 ec.message().c_str());
    return;
  }
  const std::string path = "bench_results/" + filename;
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("(csv written to %s)\n", path.c_str());
  } else {
    std::fprintf(stderr, "note: could not write %s\n", path.c_str());
  }
}

/// Observability lifecycle shared by every figure/ablation bench: construct
/// at the top of main, call finish() after the sweep.
///
///  - Instrumentation defaults ON for benches (the library default is off),
///    overridable with MMW_OBS=off or `--obs off|on` (CLI wins over env).
///  - `--trace[=path]` opts into span capture and writes a Chrome trace
///    JSON (chrome://tracing / Perfetto) — default path
///    bench_results/<name>_trace.json.
///  - finish() snapshots the metrics registry into a run manifest
///    (schema mmw.run_manifest/1) written next to the CSV artifact as
///    bench_results/<name>_manifest.json.
class BenchRun {
 public:
  BenchRun(std::string name, int argc, char** argv)
      : name_(std::move(name)), manifest_(name_) {
    bool on = obs::init_from_env(/*default_on=*/true);
    for (int i = 1; i < argc; ++i) {
      const auto flag = [&](const char* prefix) -> const char* {
        const std::size_t len = std::strlen(prefix);
        if (std::strncmp(argv[i], prefix, len) == 0 && argv[i][len] == '=')
          return argv[i] + len + 1;
        if (std::strcmp(argv[i], prefix) == 0)
          return i + 1 < argc ? argv[++i] : "";
        return nullptr;
      };
      if (const char* v = flag("--obs")) {
        on = !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
               std::strcmp(v, "false") == 0);
        obs::set_enabled(on);
      } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
        trace_path_ = argv[i] + 8;
      } else if (std::strcmp(argv[i], "--trace") == 0) {
        trace_path_ = "bench_results/" + name_ + "_trace.json";
      }
    }
    // A fresh registry per run: a bench may execute warm-up work before
    // main's sweep in future; today this is a no-op on first use.
    obs::Registry::global().reset();
    if (!trace_path_.empty())
      obs::TraceCollector::global().set_capturing(true);
    // Which scoring-kernel tier this process dispatched to (DESIGN.md §12):
    // recorded up front so even a crashed run's manifest says what ran.
    manifest_.add_config("kernels.dispatch",
                         std::string(linalg::kernels::active_tier_name()));
  }

  /// Adds the scenario's reproducibility-relevant knobs to the manifest.
  void add_scenario(const sim::Scenario& sc) {
    manifest_.add_config("channel", std::string(sc.channel ==
                                                        sim::ChannelKind::kSinglePath
                                                    ? "single_path"
                                                    : "nyc_multipath"));
    manifest_.add_config("trials", static_cast<std::uint64_t>(sc.trials));
    manifest_.add_config("seed", static_cast<std::uint64_t>(sc.seed));
    manifest_.add_config("threads",
                         static_cast<std::uint64_t>(
                             core::resolve_thread_count(sc.threads)));
    manifest_.add_config("gamma", static_cast<double>(sc.gamma));
    manifest_.add_config(
        "fades_per_measurement",
        static_cast<std::uint64_t>(sc.fades_per_measurement));
    manifest_.add_config("total_pairs",
                         static_cast<std::uint64_t>(sc.total_pairs()));
  }

  obs::RunManifest& manifest() { return manifest_; }

  /// Captures wall time + metrics and writes manifest (and trace, if
  /// enabled) under bench_results/.
  void finish() {
    manifest_.set_wall_seconds(timer_.seconds());
    // Top-level health indicators (DESIGN.md §11): solver non-convergence,
    // degradation-ladder fallbacks, and quarantined trials, surfaced so no
    // one has to dig through the metrics snapshot to spot a degraded run.
    const obs::MetricsSnapshot snap = obs::Registry::global().snapshot();
    const auto counter = [&](const char* name) -> std::uint64_t {
      const auto it = snap.counters.find(name);
      return it == snap.counters.end() ? 0 : it->second.value;
    };
    const std::uint64_t ml_nonconverged =
        counter("estimation.ml.nonconverged");
    const std::uint64_t em_nonconverged =
        counter("estimation.em.nonconverged");
    manifest_.add_health("estimation.ml.nonconverged", ml_nonconverged);
    manifest_.add_health("estimation.em.nonconverged", em_nonconverged);
    manifest_.add_health("estimation.fallback.em",
                         counter("estimation.fallback.em"));
    manifest_.add_health("estimation.fallback.sample",
                         counter("estimation.fallback.sample"));
    manifest_.add_health("estimation.fallback.uniform",
                         counter("estimation.fallback.uniform"));
    manifest_.add_health("estimation.fallback.stressed",
                         counter("estimation.fallback.stressed"));
    manifest_.add_health("sim.trials.quarantined",
                         counter("sim.trials.quarantined"));
    // Peak scoring-scratch footprint across all worker threads: the arena
    // never shrinks during a run, so this is the run's steady-state kernel
    // workspace (bytes, not a rate).
    manifest_.add_config("kernels.arena_high_water_bytes",
                         static_cast<std::uint64_t>(
                             linalg::kernels::arena_high_water_bytes()));
    // Process-wide peak resident set (kernel VmHWM) so every manifest
    // carries a memory high-water mark alongside the arena accounting.
    manifest_.add_config("peak_rss_bytes", obs::peak_rss_bytes());
    if (ml_nonconverged + em_nonconverged > 0)
      std::fprintf(stderr,
                   "warning: %llu covariance solve(s) hit the iteration "
                   "cap without converging (ml=%llu, em=%llu) — see the "
                   "manifest health section\n",
                   static_cast<unsigned long long>(ml_nonconverged +
                                                   em_nonconverged),
                   static_cast<unsigned long long>(ml_nonconverged),
                   static_cast<unsigned long long>(em_nonconverged));
    manifest_.capture_metrics();
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    const std::string manifest_path =
        "bench_results/" + name_ + "_manifest.json";
    if (obs::write_text_file(manifest_path, manifest_.to_json()))
      std::printf("(manifest written to %s)\n", manifest_path.c_str());
    if (!trace_path_.empty()) {
      obs::TraceCollector& tc = obs::TraceCollector::global();
      if (obs::write_text_file(trace_path_, tc.chrome_json()))
        std::printf("(trace written to %s, %llu events)\n",
                    trace_path_.c_str(),
                    static_cast<unsigned long long>(tc.event_count()));
      tc.set_capturing(false);
      tc.clear();
    }
  }

 private:
  std::string name_;
  obs::RunManifest manifest_;
  obs::WallTimer timer_;
  std::string trace_path_;
};

}  // namespace mmw::bench
