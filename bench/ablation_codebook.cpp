// Ablation A5: codebook family — overlapping angular-grid beams vs
// orthonormal DFT beams.
//
// With orthogonal codewords the regularized ML covariance estimate cannot
// extrapolate outside the probed span (it provably lies in span{v_j}), so
// the eigen-directed J-th measurement loses its pointing power and the
// proposed scheme keeps only its cross-slot beam-reuse advantage.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_codebook", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Ablation A5", "codebook family: angular grid vs DFT");

  const std::vector<real> rates{0.05, 0.10, 0.20};
  core::RandomSearch random_search;
  core::ProposedAlignment proposed;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &proposed};

  for (const auto cb : {CodebookKind::kAngularGrid, CodebookKind::kDft}) {
    Scenario sc = bench::paper_scenario(ChannelKind::kSinglePath, 20);
    sc.codebook = cb;
    const auto res = run_search_effectiveness(sc, strategies, rates);
    std::printf("%s codebook\n%s\n",
                cb == CodebookKind::kAngularGrid ? "angular-grid" : "DFT",
                render_table("search_rate", res.search_rates, res.loss_db)
                    .c_str());
  }
  run.finish();
  return 0;
}
