// Extension E10: temporal tracking under mobility.
//
// Runs the tracking engine (src/track/) over a 7-site hex deployment at
// three mobility classes — walk (1.4 m/s), vehicle (13.9 m/s), train
// (33.3 m/s) — with every Tracker strategy on the same evolving channels
// and trajectories:
//
//   cold_start     exhaustive re-sweep every epoch (the probe-budget
//                  ceiling and loss floor — everything is graded against
//                  the same oracle it computes);
//   warm_ml        one verify probe per steady epoch; on collapse,
//                  covariance-ML re-entry warm-started from the resident
//                  beam-space prior;
//   neighborhood   one verify probe; on collapse, PR-6's widening
//                  Chebyshev-window scan around the last claim;
//   bandit_ucb     correlated UCB over (TX, RX) arms with discounted
//                  posteriors seeded from the acquisition sweep.
//
// Expected shape: warm_ml and bandit_ucb hold an order of magnitude fewer
// probes per epoch than cold_start at walking speed with small extra loss;
// the gap narrows as speed (drift + Doppler + handover rate) grows, and
// neighborhood degrades last because its re-scan window tracks total
// drift, not fade rate.
//
// The CSV (one row per speed, per-tracker loss/p99/realign/probe columns)
// is byte-identical for any --threads value — tests/track/engine_test.cpp
// and the E10 CI smoke job (`cmp` of a --threads 1 vs 4 run) enforce it.
// The manifest carries per-cell track.* metrics including the loss
// quantile digests' p50/p90/p99/max.
//
// Knobs: --users N, --epochs N, --warmup N, --speeds a,b,c (m/s),
// --threads N / MMW_THREADS, --tiny (CI smoke: 4 users × 24 epochs,
// warmup 8).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fig_common.h"
#include "track/engine.h"

namespace {

using namespace mmw;

std::uint64_t cli_u64(int argc, char** argv, const char* name,
                      std::uint64_t fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      return std::strtoull(argv[i] + len + 1, nullptr, 10);
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
      return std::strtoull(argv[i + 1], nullptr, 10);
  }
  return fallback;
}

bool cli_has(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

std::vector<real> cli_speeds(int argc, char** argv,
                             std::vector<real> fallback) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = nullptr;
    if (std::strncmp(argv[i], "--speeds=", 9) == 0)
      arg = argv[i] + 9;
    else if (std::strcmp(argv[i], "--speeds") == 0 && i + 1 < argc)
      arg = argv[i + 1];
    if (arg == nullptr) continue;
    std::vector<real> speeds;
    const char* p = arg;
    while (*p != '\0') {
      char* end = nullptr;
      speeds.push_back(std::strtod(p, &end));
      if (end == p) break;
      p = (*end == ',') ? end + 1 : end;
    }
    if (!speeds.empty()) return speeds;
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mmw;

  bench::BenchRun run("ext_tracking_mobility", argc, argv);

  // Tracking scenario: the E9 array split (TX 2×2, RX 4×16 pairs) so a
  // cold sweep is 64 probes — big enough that warm tracking has something
  // to amortize, small enough that the cold baseline stays benchable.
  sim::Scenario sc;
  sc.channel = sim::ChannelKind::kNycMultipath;
  sc.tx_grid_x = 2;
  sc.tx_grid_y = 2;
  sc.rx_grid_x = 4;
  sc.rx_grid_y = 4;
  sc.fades_per_measurement = 4;
  sc.gamma = 1000.0;  // 30 dB at reference distance; pathloss eats ~30 dB
  sc.seed = 20160610;
  sc.threads = bench::threads_from_cli(argc, argv);
  run.add_scenario(sc);

  const bool tiny = cli_has(argc, argv, "--tiny");

  track::TrackingConfig cfg;
  cfg.scenario = sc;
  cfg.topology.cells = 7;
  cfg.topology.cell_radius_m = 100.0;
  cfg.users = static_cast<index_t>(
      cli_u64(argc, argv, "--users", tiny ? 4 : 24));
  cfg.epochs = static_cast<index_t>(
      cli_u64(argc, argv, "--epochs", tiny ? 24 : 120));
  cfg.warmup_epochs = static_cast<index_t>(
      cli_u64(argc, argv, "--warmup", tiny ? 8 : 40));
  cfg.mobility.epoch_seconds = 0.5;
  cfg.mobility.hysteresis_db = 3.0;
  cfg.evolution.drift_rad_per_meter = 0.004;
  cfg.evolution.shadow_sigma_db = 2.0;
  cfg.evolution.shadow_coherence_m = 15.0;
  cfg.evolution.blockage_onset_per_meter = 0.002;
  cfg.evolution.blockage_clear_probability = 0.25;
  cfg.evolution.blockage_gain = 0.02;

  const std::vector<real> speeds =
      cli_speeds(argc, argv, {1.4, 13.9, 33.3});
  const std::vector<track::TrackerKind> kinds{
      track::TrackerKind::kColdStart, track::TrackerKind::kWarmMl,
      track::TrackerKind::kNeighborhood, track::TrackerKind::kBanditUcb};

  run.manifest().add_config("sites",
                            static_cast<std::uint64_t>(cfg.topology.cells));
  run.manifest().add_config("users",
                            static_cast<std::uint64_t>(cfg.users));
  run.manifest().add_config("epochs",
                            static_cast<std::uint64_t>(cfg.epochs));
  run.manifest().add_config(
      "warmup_epochs", static_cast<std::uint64_t>(cfg.warmup_epochs));
  run.manifest().add_config("epoch_seconds",
                            static_cast<double>(cfg.mobility.epoch_seconds));
  run.manifest().add_config("hysteresis_db",
                            static_cast<double>(cfg.mobility.hysteresis_db));

  std::printf("=== Extension E10: steady-state tracking loss vs speed ===\n");
  std::printf(
      "setup: TX 2x2 (M=4), RX 4x4 (N=16), %zu hex sites, %zu users x "
      "%zu epochs (warmup %zu), %zu thread(s)\n\n",
      static_cast<std::size_t>(cfg.topology.cells),
      static_cast<std::size_t>(cfg.users),
      static_cast<std::size_t>(cfg.epochs),
      static_cast<std::size_t>(cfg.warmup_epochs),
      static_cast<std::size_t>(core::resolve_thread_count(sc.threads)));

  std::vector<track::TrackingResult> results;
  for (const real speed : speeds) {
    cfg.mobility.speed_mps = speed;
    const track::TrackingResult r = track::run_tracking(cfg, kinds);
    results.push_back(r);

    std::printf("speed %5.1f m/s (handovers/user %.2f)\n",
                static_cast<double>(speed),
                static_cast<double>(r.handovers_per_user));
    std::printf("  %-13s %9s %9s %9s %9s %9s %11s\n", "tracker", "loss_dB",
                "p90_dB", "p99_dB", "realign", "outage", "probes/epoch");
    for (const track::TrackerCaseResult& t : r.trackers)
      std::printf("  %-13s %9.3f %9.3f %9.3f %9.3f %9.3f %11.2f\n",
                  t.name.c_str(), static_cast<double>(t.mean_loss_db),
                  static_cast<double>(t.p90_loss_db),
                  static_cast<double>(t.p99_loss_db),
                  static_cast<double>(t.realign_rate),
                  static_cast<double>(t.outage_rate),
                  static_cast<double>(t.probes_per_epoch));
    std::printf("\n");

    // track.* manifest metrics: one cell per (speed, tracker), quantile
    // digest cut-points included so the loss tail is checkable from the
    // manifest alone.
    char sp[32];
    std::snprintf(sp, sizeof sp, "%.1f", static_cast<double>(speed));
    run.manifest().add_config("track." + std::string(sp) +
                                  ".handovers_per_user",
                              static_cast<double>(r.handovers_per_user));
    for (const track::TrackerCaseResult& t : r.trackers) {
      const std::string prefix =
          "track." + std::string(sp) + "." + t.name + ".";
      run.manifest().add_config(prefix + "mean_loss_db",
                                static_cast<double>(t.mean_loss_db));
      run.manifest().add_config(prefix + "p50_loss_db",
                                static_cast<double>(t.p50_loss_db));
      run.manifest().add_config(prefix + "p90_loss_db",
                                static_cast<double>(t.p90_loss_db));
      run.manifest().add_config(prefix + "p99_loss_db",
                                static_cast<double>(t.p99_loss_db));
      run.manifest().add_config(prefix + "max_loss_db",
                                static_cast<double>(t.max_loss_db));
      run.manifest().add_config(prefix + "realign_rate",
                                static_cast<double>(t.realign_rate));
      run.manifest().add_config(prefix + "outage_rate",
                                static_cast<double>(t.outage_rate));
      run.manifest().add_config(prefix + "probes_per_epoch",
                                static_cast<double>(t.probes_per_epoch));
      run.manifest().add_config(prefix + "probes_total", t.probes_total);
      run.manifest().add_config(prefix + "steady_epochs", t.steady_epochs);
    }
  }

  bench::write_artifact(
      "ext_tracking_mobility.csv",
      track::render_tracking_csv("speed_mps", speeds, results));
  run.finish();

  // Hard acceptance check (ISSUE 10): at pedestrian speed the warm and
  // bandit trackers must spend fewer probes per epoch than the cold-start
  // baseline — otherwise tracking buys nothing.
  const track::TrackingResult& walk = results.front();
  const real cold = walk.trackers[0].probes_per_epoch;
  for (std::size_t k = 1; k < walk.trackers.size(); ++k) {
    const track::TrackerCaseResult& t = walk.trackers[k];
    if ((t.name == "warm_ml" || t.name == "bandit_ucb") &&
        !(t.probes_per_epoch < cold)) {
      std::fprintf(stderr,
                   "FAIL: %s spends %.2f probes/epoch at %.1f m/s, not "
                   "below cold_start's %.2f\n",
                   t.name.c_str(), static_cast<double>(t.probes_per_epoch),
                   static_cast<double>(speeds.front()),
                   static_cast<double>(cold));
      return 1;
    }
  }
  return 0;
}
