// Ablation A6: fades averaged per measurement slot (K).
//
// K = 1 is the paper's literal single-sample model of eq. (9); larger K
// models intra-slot time/frequency diversity. Selection by max measured
// energy is fade-limited at K = 1 — even an exhaustive scan then claims a
// lucky mediocre pair — which is why the paper's zero-loss-at-100% premise
// needs K ≫ 1.
#include <cstdio>

#include "fig_common.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_fades", argc, argv);
  using namespace mmw;
  using namespace mmw::sim;

  bench::print_header("Ablation A6", "fades per measurement (K) sweep");

  const std::vector<real> rates{0.10, 1.0};
  core::RandomSearch random_search;
  core::ProposedAlignment proposed;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &proposed};

  std::printf(
      "K\tproposed@10%%\trandom@10%%\tproposed@100%%\trandom@100%% (mean "
      "loss dB)\n");
  for (const index_t k :
       {index_t{1}, index_t{2}, index_t{4}, index_t{8}, index_t{32}}) {
    Scenario sc = bench::paper_scenario(ChannelKind::kSinglePath, 15);
    sc.fades_per_measurement = k;
    const auto res = run_search_effectiveness(sc, strategies, rates);
    std::printf("%zu\t%.3f\t%.3f\t%.3f\t%.3f\n", k,
                res.loss_db.at("Proposed")[0].mean,
                res.loss_db.at("Random")[0].mean,
                res.loss_db.at("Proposed")[1].mean,
                res.loss_db.at("Random")[1].mean);
  }
  run.finish();
  return 0;
}
