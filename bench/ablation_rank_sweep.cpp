// Ablation A3: channel rank (number of equal-power specular paths).
//
// The proposed scheme's edge comes from exploiting the low-rank covariance;
// as the channel rank grows, the covariance spreads over more directions
// and the advantage over Random should shrink.
#include <cstdio>

#include "channel/models.h"
#include "fig_common.h"
#include "mac/session.h"
#include "sim/evaluation.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ablation_rank_sweep", argc, argv);
  using namespace mmw;
  using antenna::ArrayGeometry;
  using antenna::Codebook;

  bench::print_header("Ablation A3", "channel rank (path count) sweep");

  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  const channel::AngularSector sector;
  const auto tx_cb = Codebook::angular_grid(
      tx, 4, 4, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const auto rx_cb = Codebook::angular_grid(
      rx, 8, 8, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const index_t budget = 102;  // 10% of T

  std::printf(
      "paths\tproposed_loss_db\trandom_loss_db\tadvantage_db (10%% rate, "
      "20 trials)\n");
  for (const index_t paths : {index_t{1}, index_t{2}, index_t{3}, index_t{4},
                              index_t{6}, index_t{8}}) {
    randgen::Rng rng(31);
    real proposed_loss = 0.0, random_loss = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      std::vector<channel::Path> ps;
      for (index_t p = 0; p < paths; ++p) {
        channel::Path path;
        path.power = 1.0 / static_cast<real>(paths);
        path.aod = {rng.uniform(sector.az_min, sector.az_max),
                    rng.uniform(sector.el_min, sector.el_max)};
        path.aoa = {rng.uniform(sector.az_min, sector.az_max),
                    rng.uniform(sector.el_min, sector.el_max)};
        ps.push_back(path);
      }
      const channel::Link link =
          channel::make_fixed_paths_link(tx, rx, std::move(ps));
      const core::PairGainOracle oracle(link, tx_cb, rx_cb);
      {
        randgen::Rng run = rng.fork();
        mac::Session s(link, tx_cb, rx_cb, 1.0, budget, run, 8);
        core::ProposedAlignment().run(s);
        proposed_loss += sim::loss_after(oracle, s.records(), budget);
      }
      {
        randgen::Rng run = rng.fork();
        mac::Session s(link, tx_cb, rx_cb, 1.0, budget, run, 8);
        core::RandomSearch().run(s);
        random_loss += sim::loss_after(oracle, s.records(), budget);
      }
    }
    std::printf("%zu\t%.3f\t%.3f\t%.3f\n", paths, proposed_loss / trials,
                random_loss / trials,
                (random_loss - proposed_loss) / trials);
  }
  run.finish();
  return 0;
}
