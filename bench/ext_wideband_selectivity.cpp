// Extension E4: wideband behaviour of aligned beams. Beam alignment is a
// narrowband decision; this bench verifies it remains valid across a wide
// signal band by measuring (a) the RMS delay spread seen through the
// aligned pair vs omni, and (b) the per-subcarrier power ripple of the
// aligned link across 1 GHz.
#include <algorithm>
#include <cstdio>

#include "antenna/codebook.h"
#include "channel/wideband.h"
#include "core/oracle.h"
#include "fig_common.h"

int main(int argc, char** argv) {
  mmw::bench::BenchRun run("ext_wideband_selectivity", argc, argv);
  using namespace mmw;
  using antenna::ArrayGeometry;
  using antenna::Codebook;
  using linalg::Vector;

  bench::print_header("Extension E4", "wideband selectivity of aligned beams");

  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  const channel::AngularSector sector;
  const auto tx_cb = Codebook::angular_grid(
      tx, 4, 4, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const auto rx_cb = Codebook::angular_grid(
      rx, 8, 8, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const int trials = 25;

  real omni_spread = 0.0, aligned_spread = 0.0;
  const std::vector<real> deltas_hz{10e6, 20e6, 50e6, 100e6};
  std::vector<real> aligned_coherence(deltas_hz.size(), 0.0);
  std::vector<real> random_coherence(deltas_hz.size(), 0.0);
  randgen::Rng rng(2016);
  for (int t = 0; t < trials; ++t) {
    const channel::WidebandLink wb =
        channel::make_nyc_wideband_link(tx, rx, rng);
    const core::PairGainOracle oracle(wb.narrowband(), tx_cb, rx_cb);
    const auto [bt, br] = oracle.optimal_pair();
    const Vector& u = tx_cb.codeword(bt);
    const Vector& v = rx_cb.codeword(br);

    omni_spread += wb.omni_rms_delay_spread_s();
    aligned_spread += wb.rms_delay_spread_s(u, v);

    // Frequency coherence at subcarrier spacing Δ: the normalized
    // correlation |Σ X(f)X*(f+Δ)| / Σ|X(f)|², averaged over realizations.
    // A frequency-flat link scores 1.
    auto coherence = [&](const Vector& uu, const Vector& vv, real delta) {
      cx cross_acc{0.0, 0.0};
      real power_acc = 0.0;
      for (int rep = 0; rep < 16; ++rep) {
        const auto realization = wb.draw_realization(rng);
        for (int k = 0; k < 10; ++k) {
          const real f = -0.1e9 + k * delta;
          const cx a = wb.pair_response(realization, uu, vv, f);
          const cx b = wb.pair_response(realization, uu, vv, f + delta);
          cross_acc += a * std::conj(b);
          power_acc += 0.5 * (std::norm(a) + std::norm(b));
        }
      }
      return std::abs(cross_acc) / std::max(power_acc, 1e-12);
    };
    randgen::Rng r2 = rng.fork();
    const Vector ru = r2.random_unit_vector(16);
    const Vector rv = r2.random_unit_vector(64);
    for (index_t d = 0; d < deltas_hz.size(); ++d) {
      aligned_coherence[d] += coherence(u, v, deltas_hz[d]);
      random_coherence[d] += coherence(ru, rv, deltas_hz[d]);
    }
  }

  std::printf("metric\taligned_pair\treference\n");
  std::printf("rms_delay_spread_ns\t%.2f\t%.2f (omni)\n",
              aligned_spread / trials * 1e9, omni_spread / trials * 1e9);
  for (index_t d = 0; d < deltas_hz.size(); ++d)
    std::printf("coherence_at_%.0fMHz\t%.3f\t%.3f (random beams)\n",
                deltas_hz[d] / 1e6, aligned_coherence[d] / trials,
                random_coherence[d] / trials);
  std::printf(
      "\naligned beams isolate one cluster: the conditional delay spread "
      "collapses and\n"
      "it stays coherent over far wider bandwidths than an arbitrary beam pair.\n");
  run.finish();
  return 0;
}
