// Codebook design exploration: beam patterns and quantization loss of the
// two codebook families (angular grid vs DFT) on a uniform planar array.
//
// Prints (a) the beam pattern of the boresight codeword across azimuth,
// (b) the average and worst-case quantization loss when a path falls
// between codebook directions — the numbers that drive codebook-size
// choices for beam alignment.
//
//   ./examples/codebook_design
#include <cmath>
#include <cstdio>

#include "antenna/codebook.h"
#include "antenna/steering.h"
#include "randgen/rng.h"

namespace {

using namespace mmw;

/// Best-codeword gain for a path at `dir`, relative to the full array gain.
real quantization_loss_db(const antenna::ArrayGeometry& array,
                          const antenna::Codebook& cb,
                          const antenna::Direction& dir) {
  const auto a = antenna::steering_vector(array, dir);
  real best = 0.0;
  for (index_t i = 0; i < cb.size(); ++i)
    best = std::max(best, std::norm(linalg::dot(cb.codeword(i), a)));
  return -10.0 * std::log10(std::max(best, 1e-12));
}

}  // namespace

int main() {
  const auto array = antenna::ArrayGeometry::upa(8, 8);
  const real az_lim = M_PI / 3, el_lim = M_PI / 6;
  const auto angular = antenna::Codebook::angular_grid(
      array, 8, 8, -az_lim, az_lim, -el_lim, el_lim);
  const auto dft = antenna::Codebook::dft(array);

  // (a) Beam pattern of the codeword nearest boresight, across azimuth.
  const index_t center = angular.best_match(
      antenna::steering_vector(array, {0.0, 0.0}));
  std::printf("boresight codeword pattern (8x8 UPA, angular codebook)\n");
  std::printf("az_deg\tgain_dB\n");
  for (int deg = -60; deg <= 60; deg += 5) {
    const real az = deg * M_PI / 180.0;
    const real g = antenna::beam_gain(array, angular.codeword(center),
                                      {az, 0.0});
    std::printf("%d\t%.1f\n", deg, 10.0 * std::log10(std::max(g, 1e-9)));
  }

  // (b) Quantization loss over random in-sector directions.
  randgen::Rng rng(5);
  real sum_ang = 0.0, worst_ang = 0.0, sum_dft = 0.0, worst_dft = 0.0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const antenna::Direction dir{rng.uniform(-az_lim, az_lim),
                                 rng.uniform(-el_lim, el_lim)};
    const real la = quantization_loss_db(array, angular, dir);
    const real ld = quantization_loss_db(array, dft, dir);
    sum_ang += la;
    sum_dft += ld;
    worst_ang = std::max(worst_ang, la);
    worst_dft = std::max(worst_dft, ld);
  }
  std::printf("\nquantization loss over %d random in-sector paths\n", trials);
  std::printf("codebook\tmean_dB\tworst_dB\n");
  std::printf("angular_64\t%.2f\t%.2f\n", sum_ang / trials, worst_ang);
  std::printf("dft_64\t%.2f\t%.2f\n", sum_dft / trials, worst_dft);
  std::printf(
      "\nthe angular grid concentrates its codewords on the sector, so its "
      "worst-case\nquantization loss inside the sector is lower than the "
      "full-space DFT's.\n");
  return 0;
}
