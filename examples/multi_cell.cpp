// Multi-cell downlink: several base stations serve their own users on the
// same band. Each BS-UE pair aligns its beams independently with the
// proposed scheme; the narrow beams then provide spatial isolation, so the
// post-alignment SINR stays high even with co-channel interferers — the
// cellular deployment the paper targets (Fig. 1).
//
//   ./examples/multi_cell [n_cells] [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "antenna/codebook.h"
#include "channel/models.h"
#include "core/oracle.h"
#include "core/strategy.h"
#include "mac/session.h"

int main(int argc, char** argv) {
  using namespace mmw;
  const int n_cells = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 31;
  randgen::Rng rng(seed);

  const auto bs = antenna::ArrayGeometry::upa(8, 8);
  const auto ue = antenna::ArrayGeometry::upa(4, 4);
  const channel::AngularSector sector;
  const auto bs_cb = antenna::Codebook::angular_grid(
      bs, 8, 8, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const auto ue_cb = antenna::Codebook::angular_grid(
      ue, 4, 4, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const real gamma = 1.0;       // serving-link pre-BF SNR
  const real inr_scale = 0.25;  // interferers arrive weaker (distance)

  // Serving links and the cross links from every other BS to each UE.
  std::vector<channel::Link> serving;
  std::vector<std::vector<channel::Link>> cross(n_cells);
  for (int c = 0; c < n_cells; ++c)
    serving.push_back(channel::make_nyc_multipath_link(bs, ue, rng));
  for (int c = 0; c < n_cells; ++c)
    for (int o = 0; o < n_cells; ++o)
      if (o != c)
        cross[c].push_back(channel::make_nyc_multipath_link(bs, ue, rng));

  // Each cell aligns independently at a 10% search rate.
  std::vector<index_t> tx_beam(n_cells), rx_beam(n_cells);
  const index_t budget = bs_cb.size() * ue_cb.size() / 10;
  for (int c = 0; c < n_cells; ++c) {
    randgen::Rng run_rng = rng.fork();
    mac::Session session(serving[c], bs_cb, ue_cb, gamma, budget, run_rng, 8);
    core::ProposedAlignment().run(session);
    const auto best = session.best_measured();
    tx_beam[c] = best->tx_beam;
    rx_beam[c] = best->rx_beam;
  }

  // Post-alignment SINR: every other cell's BS transmits on its own beam;
  // the UE's RX beam spatially filters the interference.
  std::printf(
      "%d co-channel cells, 10%% search rate each, interferer power %.0f%% "
      "of serving\n",
      n_cells, 100.0 * inr_scale);
  std::printf("cell\tsnr_dB\tsinr_dB\tisolation_dB\n");
  real snr_acc = 0.0, sinr_acc = 0.0;
  for (int c = 0; c < n_cells; ++c) {
    const real signal =
        gamma * serving[c].mean_pair_gain(bs_cb.codeword(tx_beam[c]),
                                          ue_cb.codeword(rx_beam[c]));
    real interference = 0.0;
    int idx = 0;
    for (int o = 0; o < n_cells; ++o) {
      if (o == c) continue;
      interference += inr_scale * gamma *
                      cross[c][idx].mean_pair_gain(
                          bs_cb.codeword(tx_beam[o]),
                          ue_cb.codeword(rx_beam[c]));
      ++idx;
    }
    const real snr_db = 10.0 * std::log10(signal);
    const real sinr_db = 10.0 * std::log10(signal / (1.0 + interference));
    snr_acc += snr_db;
    sinr_acc += sinr_db;
    std::printf("%d\t%.1f\t%.1f\t%.1f\n", c, snr_db, sinr_db,
                snr_db - sinr_db);
  }
  std::printf(
      "\nmean SNR %.1f dB vs mean SINR %.1f dB: spatial filtering by the "
      "narrow aligned\nbeams limits the co-channel penalty to %.1f dB on "
      "average.\n",
      snr_acc / n_cells, sinr_acc / n_cells,
      (snr_acc - sinr_acc) / n_cells);
  return 0;
}
