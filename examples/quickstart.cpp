// Quickstart: align a 16-element base station with a 64-element mobile over
// a single-path mmWave channel using the learning-based scheme, measuring
// only 10% of the beam pairs, and compare against the true optimum.
//
//   ./examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "antenna/codebook.h"
#include "channel/models.h"
#include "core/oracle.h"
#include "core/strategy.h"
#include "mac/session.h"

int main(int argc, char** argv) {
  using namespace mmw;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  randgen::Rng rng(seed);

  // 1. Arrays: the paper's setup — TX 4×4 λ/2 UPA, RX 8×8 λ/2 UPA.
  const auto tx_array = antenna::ArrayGeometry::upa(4, 4);
  const auto rx_array = antenna::ArrayGeometry::upa(8, 8);

  // 2. Codebooks: one beam per element over a ±60°×±30° sector.
  const channel::AngularSector sector;
  const auto tx_codebook = antenna::Codebook::angular_grid(
      tx_array, 4, 4, sector.az_min, sector.az_max, sector.el_min,
      sector.el_max);
  const auto rx_codebook = antenna::Codebook::angular_grid(
      rx_array, 8, 8, sector.az_min, sector.az_max, sector.el_min,
      sector.el_max);

  // 3. Channel: one dominant specular path at a random direction.
  const channel::Link link =
      channel::make_single_path_link(tx_array, rx_array, rng, sector);
  std::printf("channel: single path, AoD az=%.1f° el=%.1f°, "
              "AoA az=%.1f° el=%.1f°\n",
              link.paths()[0].aod.azimuth * 180 / M_PI,
              link.paths()[0].aod.elevation * 180 / M_PI,
              link.paths()[0].aoa.azimuth * 180 / M_PI,
              link.paths()[0].aoa.elevation * 180 / M_PI);

  // 4. Train: 10% of the 1024 beam pairs, 0 dB pre-beamforming SNR.
  const index_t budget = tx_codebook.size() * rx_codebook.size() / 10;
  mac::Session session(link, tx_codebook, rx_codebook, /*gamma=*/1.0, budget,
                       rng, /*fades_per_measurement=*/8);
  core::ProposedAlignment().run(session);

  // 5. Grade against the oracle (the simulator knows the true gains).
  const core::PairGainOracle oracle(link, tx_codebook, rx_codebook);
  const auto best = session.best_measured();
  const auto [opt_tx, opt_rx] = oracle.optimal_pair();
  std::printf("measured %zu of %zu beam pairs (%.1f%%)\n",
              session.measurements_taken(),
              tx_codebook.size() * rx_codebook.size(),
              100.0 * session.measurements_taken() /
                  (tx_codebook.size() * rx_codebook.size()));
  std::printf("selected pair: TX beam %zu, RX beam %zu (gain %.1f)\n",
              best->tx_beam, best->rx_beam,
              oracle.gain(best->tx_beam, best->rx_beam));
  std::printf("optimal  pair: TX beam %zu, RX beam %zu (gain %.1f)\n",
              opt_tx, opt_rx, oracle.optimal_gain());
  std::printf("SNR loss vs optimum: %.2f dB\n",
              oracle.loss_db(best->tx_beam, best->rx_beam));
  return 0;
}
