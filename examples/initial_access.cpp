// Directional initial access (cell search): before any beam alignment can
// happen, the mobile must DETECT the base station at all. The paper's
// introduction describes the core tension — omnidirectional synchronization
// signals don't reach as far as beamformed data, so cells must beam their
// sync signals and mobiles must search directions (cf. Barati et al. [12]).
//
// The base station transmits one synchronization signal per sync slot on a
// random codebook beam. The mobile listens with (a) a quasi-omni pattern
// (single active element), (b) a random directional beam per slot, or
// (c) its best fixed beam per slot chosen by sweeping. Detection declares
// when slot energy exceeds a threshold above the noise floor. Reports the
// mean number of sync slots to detection vs distance.
//
//   ./examples/initial_access [trials] [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "antenna/codebook.h"
#include "antenna/steering.h"
#include "channel/models.h"
#include "channel/pathloss.h"

namespace {

using namespace mmw;

/// Energy of one sync slot: BS beam u, UE combiner v, fresh fade + noise.
real slot_energy(const channel::Link& link, const linalg::Vector& u,
                 const linalg::Vector& v, real gamma, randgen::Rng& rng) {
  const linalg::Vector h = link.draw_effective_channel(u, rng);
  const cx z = linalg::dot(v, h) + rng.complex_normal(1.0 / gamma);
  return std::norm(z);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc > 1 ? std::atoi(argv[1]) : 40;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 77;
  randgen::Rng rng(seed);

  const auto bs = antenna::ArrayGeometry::upa(8, 8);
  const auto ue = antenna::ArrayGeometry::upa(4, 4);
  const channel::AngularSector sector;
  const auto bs_cb = antenna::Codebook::angular_grid(
      bs, 8, 8, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const auto ue_cb = antenna::Codebook::angular_grid(
      ue, 4, 4, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  // Quasi-omni UE pattern: one active element of the first codeword.
  const linalg::Vector ue_omni =
      antenna::subarray_restriction(ue, ue_cb.codeword(0), 1, 1);

  const auto pl = channel::NycPathLossParams::nyc_28ghz();
  const real threshold_over_noise = 6.0;  // detect at 6x the noise floor
  const index_t max_slots = 512;

  std::printf(
      "28 GHz cell search: BS beams sync on random 8x8-codebook beams, "
      "threshold %.0fx noise\n",
      threshold_over_noise);
  std::printf("dist_m\tsnr_dB\tomni_slots\trandom_beam_slots\tmiss%%_omni\n");
  for (const real distance : {30.0, 60.0, 90.0, 130.0}) {
    real slots_omni = 0.0, slots_dir = 0.0;
    int missed_omni = 0;
    int valid = 0;
    for (int t = 0; t < trials; ++t) {
      // NLOS-only comparison so distance is the only variable (NLOS is the
      // regime where the omni/beamformed range discrepancy appears).
      randgen::Rng trial_rng = rng.fork();
      const real pl_db =
          channel::nyc_path_loss_db(pl, channel::LinkState::kNlos, distance,
                                    trial_rng);
      channel::LinkBudget budget;
      budget.path_loss_db = pl_db;
      const real gamma = budget.snr_linear();
      const channel::Link link =
          channel::make_nyc_multipath_link(bs, ue, trial_rng);
      ++valid;

      auto slots_until = [&](bool directional) {
        const real floor = 1.0 / gamma;
        for (index_t s = 0; s < max_slots; ++s) {
          const auto& u = bs_cb.codeword(static_cast<index_t>(
              trial_rng.uniform_int(0, bs_cb.size() - 1)));
          const linalg::Vector& v =
              directional
                  ? ue_cb.codeword(static_cast<index_t>(
                        trial_rng.uniform_int(0, ue_cb.size() - 1)))
                  : ue_omni;
          if (slot_energy(link, u, v, gamma, trial_rng) >
              threshold_over_noise * floor)
            return s + 1;
        }
        return max_slots;  // missed within the window
      };
      const index_t so = slots_until(false);
      slots_omni += static_cast<real>(so);
      if (so == max_slots) ++missed_omni;
      slots_dir += static_cast<real>(slots_until(true));
    }
    channel::LinkBudget nominal;
    nominal.path_loss_db = pl.alpha_nlos +
                           pl.beta_nlos * 10.0 * std::log10(distance);
    std::printf("%.0f\t%.1f\t%.1f\t%.1f\t%.0f\n", distance,
                nominal.snr_db(), slots_omni / valid, slots_dir / valid,
                100.0 * missed_omni / valid);
  }
  std::printf(
      "\ndirectional listening detects the cell in fewer sync slots as SNR "
      "drops; at the\ncell edge the quasi-omni mobile increasingly misses "
      "the %zu-slot search window —\nthe range discrepancy motivating "
      "directional cell search.\n",
      max_slots);
  return 0;
}
