// Command-line experiment driver: run any of the paper's experiments with
// custom parameters without writing code.
//
// Usage:
//   alignment_cli [--channel single|nyc] [--experiment loss|cost]
//                 [--trials N] [--seed S] [--gamma-db G] [--fades K]
//                 [--codebook angular|dft] [--slot-j J]
//                 [--threads T]            (0 = all cores, 1 = serial;
//                                           results identical either way)
//                 [--rates r1,r2,...]      (loss experiment)
//                 [--targets t1,t2,...]    (cost experiment)
//                 [--csv]
//                 [--trace PATH]           (write a Chrome trace JSON —
//                                           load in chrome://tracing or
//                                           ui.perfetto.dev)
//                 [--metrics PATH]         (write the merged metrics
//                                           snapshot as JSON)
//
// Instrumentation: --trace/--metrics turn the obs layer on; otherwise it
// follows MMW_OBS (default off for this example — zero overhead).
//
// Examples:
//   alignment_cli --channel nyc --experiment loss --trials 30
//   alignment_cli --experiment cost --targets 3,2,1 --csv
//   alignment_cli --trials 5 --trace run_trace.json --metrics run_metrics.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "obs/trace.h"
#include "sim/experiments.h"

namespace {

using namespace mmw;

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\nsee the header of alignment_cli.cpp for usage\n",
               message.c_str());
  std::exit(2);
}

std::vector<real> parse_list(const std::string& csv) {
  std::vector<real> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t next = csv.find(',', pos);
    if (next == std::string::npos) next = csv.size();
    try {
      out.push_back(std::stod(csv.substr(pos, next - pos)));
    } catch (const std::exception&) {
      usage_error("could not parse number in list: " + csv);
    }
    pos = next + 1;
  }
  if (out.empty()) usage_error("empty list: " + csv);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  sim::Scenario scenario;
  scenario.trials = 20;
  scenario.seed = 2016;
  std::string experiment = "loss";
  std::vector<real> rates{0.02, 0.05, 0.10, 0.20, 0.30};
  std::vector<real> targets{6.0, 4.0, 3.0, 2.0, 1.0};
  core::ProposedOptions proposed_opts;
  bool csv = false;
  std::string trace_path;
  std::string metrics_path;
  obs::init_from_env(/*default_on=*/false);

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--channel") {
      const std::string v = value();
      if (v == "single")
        scenario.channel = sim::ChannelKind::kSinglePath;
      else if (v == "nyc")
        scenario.channel = sim::ChannelKind::kNycMultipath;
      else
        usage_error("unknown channel: " + v);
    } else if (arg == "--experiment") {
      experiment = value();
      if (experiment != "loss" && experiment != "cost")
        usage_error("unknown experiment: " + experiment);
    } else if (arg == "--trials") {
      scenario.trials = std::strtoull(value().c_str(), nullptr, 10);
      if (scenario.trials == 0) usage_error("trials must be positive");
    } else if (arg == "--seed") {
      scenario.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--gamma-db") {
      scenario.gamma = std::pow(10.0, std::stod(value()) / 10.0);
    } else if (arg == "--fades") {
      scenario.fades_per_measurement =
          std::strtoull(value().c_str(), nullptr, 10);
      if (scenario.fades_per_measurement == 0)
        usage_error("fades must be positive");
    } else if (arg == "--codebook") {
      const std::string v = value();
      if (v == "angular")
        scenario.codebook = sim::CodebookKind::kAngularGrid;
      else if (v == "dft")
        scenario.codebook = sim::CodebookKind::kDft;
      else
        usage_error("unknown codebook: " + v);
    } else if (arg == "--threads") {
      scenario.threads = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--slot-j") {
      proposed_opts.measurements_per_slot =
          std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--rates") {
      rates = parse_list(value());
    } else if (arg == "--targets") {
      targets = parse_list(value());
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--metrics") {
      metrics_path = value();
    } else {
      usage_error("unknown argument: " + arg);
    }
  }

  if (!trace_path.empty() || !metrics_path.empty()) obs::set_enabled(true);
  if (!trace_path.empty())
    obs::TraceCollector::global().set_capturing(true);

  core::RandomSearch random_search;
  core::ScanSearch scan_search;
  core::ProposedAlignment proposed(proposed_opts);
  const std::vector<const core::AlignmentStrategy*> strategies{
      &random_search, &scan_search, &proposed};

  if (experiment == "loss") {
    const auto res = sim::run_search_effectiveness(scenario, strategies, rates);
    const std::string out =
        csv ? sim::render_csv("search_rate", res.search_rates, res.loss_db)
            : sim::render_table("search_rate", res.search_rates, res.loss_db);
    std::fputs(out.c_str(), stdout);
  } else {
    const auto res = sim::run_cost_efficiency(scenario, strategies, targets);
    const std::string out =
        csv ? sim::render_csv("target_loss_db", res.target_loss_db,
                              res.required_rate)
            : sim::render_table("target_loss_db", res.target_loss_db,
                                res.required_rate);
    std::fputs(out.c_str(), stdout);
  }

  if (!metrics_path.empty() &&
      obs::write_text_file(metrics_path,
                           obs::Registry::global().snapshot().to_json()))
    std::fprintf(stderr, "(metrics written to %s)\n", metrics_path.c_str());
  if (!trace_path.empty() &&
      obs::write_text_file(trace_path,
                           obs::TraceCollector::global().chrome_json()))
    std::fprintf(stderr, "(trace written to %s)\n", trace_path.c_str());
  return 0;
}
