// Sparse (compressed-sensing) channel estimation vs the paper's covariance
// approach — a side-by-side of the two estimator families on the same
// channel, highlighting the coherence assumption that separates them:
//
//  * OMP reconstructs H itself from PHASE-COHERENT probes (all measurements
//    within one coherence interval) and pinpoints path angles;
//  * the covariance estimator needs only ENERGIES and works when the
//    channel refades between measurements (the paper's setting), at the
//    price of recovering second-order structure only.
//
//   ./examples/sparse_channel_estimation [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "channel/models.h"
#include "estimation/compressed_sensing.h"
#include "estimation/covariance_ml.h"
#include "linalg/eig.h"
#include "linalg/functions.h"

int main(int argc, char** argv) {
  using namespace mmw;
  using linalg::Matrix;
  using linalg::Vector;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  randgen::Rng rng(seed);

  const auto tx = antenna::ArrayGeometry::upa(4, 4);
  const auto rx = antenna::ArrayGeometry::upa(8, 8);
  const channel::AngularSector s;
  const channel::Link link(
      tx, rx,
      {channel::Path{0.75, {0.42, -0.11}, {-0.29, 0.18}},
       channel::Path{0.25, {-0.51, 0.22}, {0.63, -0.05}}});
  const real gamma = 100.0;  // 20 dB pre-beamforming SNR
  const index_t probes = 48;

  std::printf("two-path channel: AoA az -16.6°/36.1°, 48 probes, 20 dB SNR\n\n");

  // --- Coherent regime: OMP over a beamspace dictionary. ----------------
  const Matrix h = link.draw_channel(rng);  // frozen for the burst
  estimation::BeamspaceDictionary dict(tx, rx, 17, 9, 25, 13, s.az_min,
                                       s.az_max, s.el_min, s.el_max);
  std::vector<estimation::CoherentMeasurement> coherent;
  for (index_t k = 0; k < probes; ++k) {
    estimation::CoherentMeasurement m;
    m.tx_beam = rng.random_unit_vector(16);
    m.rx_beam = rng.random_unit_vector(64);
    m.observation =
        linalg::dot(m.rx_beam, h * m.tx_beam) + rng.complex_normal(1.0 / gamma);
    coherent.push_back(std::move(m));
  }
  estimation::OmpOptions omp_opts;
  omp_opts.max_atoms = 8;
  const auto omp = estimation::omp_channel_estimate(dict, coherent, omp_opts);
  const Matrix h_hat = estimation::synthesize_channel(dict, omp);
  std::printf("OMP (coherent probes): %zu atoms, relative residual %.3f\n",
              omp.atoms.size(), omp.relative_residual);
  for (const auto& a : omp.atoms)
    std::printf("  atom: AoD az %.1f° el %.1f° -> AoA az %.1f° el %.1f°, "
                "|g|=%.2f\n",
                dict.tx_direction(a.tx_index).azimuth * 180 / M_PI,
                dict.tx_direction(a.tx_index).elevation * 180 / M_PI,
                dict.rx_direction(a.rx_index).azimuth * 180 / M_PI,
                dict.rx_direction(a.rx_index).elevation * 180 / M_PI,
                std::abs(a.gain));
  std::printf("channel reconstruction error: %.1f%%\n\n",
              100.0 * (h_hat - h).frobenius_norm() / h.frobenius_norm());

  // --- Fading regime: covariance estimation from energies only. --------
  // Within a TX-slot the TX beam is fixed (here: pointed at the link), and
  // the channel REFADES for every measurement — the paper's setting.
  // Energy-only (phase-retrieval-like) identification of a 64-dim
  // covariance needs ≳2N measurements, so sweep the probe count.
  const Vector u_slot = link.tx_steering(0);
  std::printf("covariance ML (energies under refading, 8 fades/slot):\n");
  std::printf("probes\talignment_with_dominant_path\n");
  for (const index_t count : {probes, index_t{128}, index_t{256}}) {
    std::vector<estimation::BeamMeasurement> energies;
    for (index_t k = 0; k < count; ++k) {
      estimation::BeamMeasurement m;
      m.beam = rng.random_unit_vector(64);
      real energy = 0.0;
      for (int f = 0; f < 8; ++f) {
        const Vector heff = link.draw_effective_channel(u_slot, rng);
        energy += std::norm(linalg::dot(m.beam, heff) +
                            rng.complex_normal(1.0 / gamma));
      }
      m.energy = energy / 8.0;
      energies.push_back(std::move(m));
    }
    estimation::CovarianceMlOptions cov_opts;
    cov_opts.gamma = gamma;
    const auto cov =
        estimation::estimate_covariance_ml(64, energies, cov_opts);
    // Eigenpairs come from the r×r factored core — no 64×64 lift needed.
    const auto eig = cov.q.eig();
    std::printf("%zu\t%.2f\n", count,
                std::abs(linalg::dot(eig.principal_eigenvector(),
                                     link.rx_steering(0))));
  }
  std::printf(
      "\nOMP pinpoints angles from few COHERENT probes; the paper's "
      "energy-only estimator\nsurvives refading but needs ~2N random probes "
      "for the same direction — which is\nexactly why the MAC scheme probes "
      "adaptively instead of randomly.\n");
  return 0;
}
