// Initial cell search in an NYC-style 28 GHz micro-cell (the scenario the
// paper's introduction motivates): a mobile at a random distance from the
// base station must find a beam pair good enough to start communicating.
//
// The physical layer chain is simulated end to end: LOS/NLOS/outage state,
// empirical path loss, link budget → pre-beamforming SNR γ, then beam
// alignment over the NYC multipath cluster channel, and finally a Shannon
// rate estimate with the selected beams.
//
//   ./examples/cell_search [n_mobiles] [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "antenna/codebook.h"
#include "channel/models.h"
#include "channel/pathloss.h"
#include "core/oracle.h"
#include "core/strategy.h"
#include "mac/session.h"

int main(int argc, char** argv) {
  using namespace mmw;
  const int n_mobiles = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2016;
  randgen::Rng rng(seed);

  const auto bs_array = antenna::ArrayGeometry::upa(8, 8);   // base station
  const auto ue_array = antenna::ArrayGeometry::upa(4, 4);   // handset
  const channel::AngularSector sector;
  const auto bs_codebook = antenna::Codebook::angular_grid(
      bs_array, 8, 8, sector.az_min, sector.az_max, sector.el_min,
      sector.el_max);
  const auto ue_codebook = antenna::Codebook::angular_grid(
      ue_array, 4, 4, sector.az_min, sector.az_max, sector.el_min,
      sector.el_max);
  const auto pl_params = channel::NycPathLossParams::nyc_28ghz();

  std::printf(
      "28 GHz micro-cell: BS 8x8 UPA (downlink TX), UE 4x4 UPA, 1 GHz "
      "bandwidth, 30 dBm TX power\n");
  std::printf(
      "dist_m\tstate\tPL_dB\tsnr_dB\tsearch%%\tloss_dB\trate_Gbps\n");

  for (int m = 0; m < n_mobiles; ++m) {
    const real distance = rng.uniform(20.0, 200.0);
    const channel::LinkState state =
        channel::sample_link_state(pl_params, distance, rng);
    if (state == channel::LinkState::kOutage) {
      std::printf("%.0f\toutage\t-\t-\t-\t-\t0\n", distance);
      continue;
    }
    const real pl_db =
        channel::nyc_path_loss_db(pl_params, state, distance, rng);
    channel::LinkBudget budget;
    budget.path_loss_db = pl_db;
    const real gamma = budget.snr_linear();

    // Downlink: base station transmits, handset receives. The cluster
    // channel is drawn for this geometry (BS side = TX).
    const channel::Link link =
        channel::make_nyc_multipath_link(bs_array, ue_array, rng);
    const core::PairGainOracle oracle(link, bs_codebook, ue_codebook);

    const index_t pairs = bs_codebook.size() * ue_codebook.size();
    const index_t train_budget = pairs / 10;  // 10% search rate
    mac::Session session(link, bs_codebook, ue_codebook, gamma, train_budget,
                         rng, 8);
    core::ProposedAlignment().run(session);
    const auto best = session.best_measured();
    const real loss_db = oracle.loss_db(best->tx_beam, best->rx_beam);

    // Post-beamforming SNR and single-stream Shannon rate.
    const real post_snr =
        gamma * oracle.gain(best->tx_beam, best->rx_beam);
    const real rate_gbps =
        budget.bandwidth_hz * std::log2(1.0 + post_snr) / 1e9;

    std::printf("%.0f\t%s\t%.1f\t%.1f\t%.1f\t%.2f\t%.2f\n", distance,
                state == channel::LinkState::kLos ? "LOS" : "NLOS", pl_db,
                budget.snr_db(),
                100.0 * session.measurements_taken() / pairs, loss_db,
                rate_gbps);
  }
  return 0;
}
