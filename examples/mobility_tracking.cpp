// Beam tracking under mobility: the channel geometry drifts between frames
// (the mobile moves, path angles rotate slowly), and the link must re-align
// each frame. The paper's motivation for cheap alignment is exactly this —
// "direction finding may need to be performed constantly before
// transmissions".
//
// Compares the per-frame alignment cost of the proposed scheme against a
// periodic exhaustive re-scan for the same achieved loss budget.
//
//   ./examples/mobility_tracking [frames] [seed]
#include <cstdio>
#include <cstdlib>

#include "antenna/codebook.h"
#include "channel/models.h"
#include "core/oracle.h"
#include "core/strategy.h"
#include "mac/session.h"
#include "sim/evaluation.h"

int main(int argc, char** argv) {
  using namespace mmw;
  const int frames = argc > 1 ? std::atoi(argv[1]) : 10;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 99;
  randgen::Rng rng(seed);

  const auto tx_array = antenna::ArrayGeometry::upa(4, 4);
  const auto rx_array = antenna::ArrayGeometry::upa(8, 8);
  const channel::AngularSector sector;
  const auto tx_cb = antenna::Codebook::angular_grid(
      tx_array, 4, 4, sector.az_min, sector.az_max, sector.el_min,
      sector.el_max);
  const auto rx_cb = antenna::Codebook::angular_grid(
      rx_array, 8, 8, sector.az_min, sector.az_max, sector.el_min,
      sector.el_max);
  const index_t pairs = tx_cb.size() * rx_cb.size();

  // Initial geometry: one dominant path plus a weak reflection.
  channel::Path dominant{0.8,
                         {rng.uniform(-0.5, 0.5), rng.uniform(-0.2, 0.2)},
                         {rng.uniform(-0.5, 0.5), rng.uniform(-0.2, 0.2)}};
  channel::Path reflection{0.2,
                           {rng.uniform(-0.9, 0.9), rng.uniform(-0.3, 0.3)},
                           {rng.uniform(-0.9, 0.9), rng.uniform(-0.3, 0.3)}};
  const real drift = 0.02;  // ~1.1° of angular drift per frame

  std::printf(
      "tracking over %d frames, %.1f deg/frame AoA/AoD drift, target loss "
      "2 dB\n",
      frames, drift * 180 / M_PI);
  std::printf("frame\tcold_meas\tcold_loss\twarm_meas\twarm_loss\n");

  index_t total_cold = 0, total_warm = 0;
  linalg::Matrix carried;  // covariance carried across frames (warm mode)
  for (int f = 0; f < frames; ++f) {
    const channel::Link link = channel::make_fixed_paths_link(
        tx_array, rx_array, {dominant, reflection});
    const core::PairGainOracle oracle(link, tx_cb, rx_cb);

    // Each mode searches until its claimed pair is within 2 dB; the cost is
    // how many pairs it needed (offline trajectory analysis). Both modes
    // share one RNG stream per frame so the comparison is paired — the only
    // difference is the carried covariance.
    const randgen::Rng frame_rng = rng.fork();
    auto align = [&](linalg::Matrix& state) {
      randgen::Rng run_rng = frame_rng;
      mac::Session session(link, tx_cb, rx_cb, 1.0, pairs, run_rng, 8);
      core::ProposedAlignment().run_with_state(session, state);
      const auto needed =
          sim::measurements_to_reach(oracle, session.records(), 2.0);
      const index_t cost = needed.value_or(pairs);
      return std::pair{cost,
                       sim::loss_after(oracle, session.records(), cost)};
    };

    linalg::Matrix cold_state;  // re-aligns from scratch every frame
    const auto [cold_cost, cold_loss] = align(cold_state);
    const auto [warm_cost, warm_loss] = align(carried);
    total_cold += cold_cost;
    total_warm += warm_cost;
    std::printf("%d\t%zu\t%.2f\t%zu\t%.2f\n", f, cold_cost, cold_loss,
                warm_cost, warm_loss);

    // Drift the geometry for the next frame.
    auto wiggle = [&](antenna::Direction& d) {
      d.azimuth += rng.normal(0.0, drift);
      d.elevation += rng.normal(0.0, drift / 2);
    };
    wiggle(dominant.aod);
    wiggle(dominant.aoa);
    wiggle(reflection.aod);
    wiggle(reflection.aoa);
  }
  const index_t exhaustive = static_cast<index_t>(frames) * pairs;
  std::printf(
      "\ntotals: cold %zu vs warm %zu measurements; exhaustive re-scan "
      "would cost %zu\n",
      total_cold, total_warm, exhaustive);
  std::printf(
      "per-frame adaptive alignment is %.1fx cheaper than exhaustive "
      "re-scanning;\nthe cross-frame covariance prior is roughly "
      "cost-neutral at this drift rate\n(the TX beam order, which the "
      "RX-side prior cannot improve, dominates the tail).\n",
      static_cast<real>(exhaustive) / std::min(total_cold, total_warm));
  return 0;
}
