#!/usr/bin/env python3
"""Flag performance regressions against the committed baselines.

Two gates live here:

**Slot-cycle gate** (``--current``): the committed
bench_results/BENCH_micro_linalg.json records the BM_SlotCycle* timings of
the batched-SIMD scoring path (PR 7). A fresh google-benchmark JSON run is
compared against it and the gate fails when any gated benchmark got slower
than the baseline by more than --tolerance — catching accidental
de-optimization of the per-slot hot path (a dropped kernel dispatch, a
reintroduced per-codeword temporary, an arena that stopped reusing memory)
before it merges.

Machine-speed differences between the baseline recorder and the CI runner
are cancelled exactly as in check_obs_overhead.py: the current run is
rescaled by the median current/baseline ratio over instrumentation-free
calibration benchmarks. Multiple --current files (or in-file repetitions)
fold to the per-benchmark minimum, the standard de-noising for
time-based microbenchmarks.

The default tolerance is looser than the obs-overhead gate's (15% vs 3%):
this gate compares kernel-bound timings across heterogeneous runners,
where calibration cancels scale but not microarchitectural differences in
SIMD throughput.

**Serving gate** (``--serving-current``): the committed
bench_results/BENCH_serving.json records the E9 serving-engine sweep
(users/sec/core and bytes/session per scale). A fresh BENCH_serving.json —
any subset of the baseline's scales, e.g. the CI 10k smoke — is checked
for (a) per-session memory: bytes_per_session must not exceed the baseline
(the slab accounting is deterministic, so any growth is a real regression)
and the session struct must fit its byte budget; (b) throughput:
users/sec/core must stay within --serving-tolerance of the baseline
(default 50% — wall-clock throughput across heterogeneous uncalibrated
runners is a tripwire for order-of-magnitude regressions, not a precision
gate); (c) tail quality: loss_p99_db (the digest-derived p99 alignment
loss, PR 9) must not exceed the baseline by more than --loss-tolerance-db
(default 0.5 dB) — skipped per scale when either file predates the
quantile fields.

Usage:
  python3 tools/check_bench_regression.py --current BENCH_micro_linalg.json
  python3 tools/check_bench_regression.py --current run1.json --current run2.json \
      --tolerance 0.10 --filter BM_SlotCycleFactored
  python3 tools/check_bench_regression.py --serving-current bench_results/BENCH_serving.json
  python3 tools/check_bench_regression.py --current new.json \
      --serving-current new_serving.json          # both gates in one call

Exit status 0 if every requested gate passes, 1 otherwise. Only the Python
standard library is used.
"""

import argparse
import statistics
import sys

from check_obs_overhead import CALIBRATION_PREFIXES, load_json, load_times

GATED_PREFIX = "BM_SlotCycle"
SERVING_SCHEMA = "mmw.serving_bench/1"


def check_slot_cycle(args):
    baseline_paths = args.baseline or ["bench_results/BENCH_micro_linalg.json"]
    baseline = load_times(baseline_paths)
    current = load_times(args.current)

    gated = sorted(n for n in baseline
                   if n.startswith(args.filter) and n in current)
    if not gated:
        print(f"error: no benchmarks matching '{args.filter}' present in both "
              f"{baseline_paths} and {args.current}\n"
              f"  (baseline has {len(baseline)} benchmark(s), current has "
              f"{len(current)}; was the right JSON passed, and does the "
              f"--filter prefix match its benchmark names?)", file=sys.stderr)
        return 1

    scale = 1.0
    if not args.no_calibrate:
        ratios = [current[n] / baseline[n]
                  for n in baseline
                  if n.startswith(CALIBRATION_PREFIXES) and n in current
                  and baseline[n] > 0.0]
        if not ratios:
            print("error: no calibration benchmarks in common; "
                  "rerun with --no-calibrate", file=sys.stderr)
            return 1
        scale = statistics.median(ratios)
        print(f"machine-speed scale factor (median over {len(ratios)} "
              f"calibration benches): {scale:.4f}")

    limit = 1.0 + args.tolerance
    failed = []
    print(f"{'benchmark':<40} {'baseline ns':>14} {'current ns':>14} "
          f"{'ratio':>8}")
    for name in gated:
        ratio = current[name] / (baseline[name] * scale)
        verdict = "ok" if ratio <= limit else "FAIL"
        print(f"{name:<40} {baseline[name]:>14.0f} {current[name]:>14.0f} "
              f"{ratio:>8.4f}  {verdict}")
        if ratio > limit:
            failed.append(name)

    if failed:
        print(f"\nFAIL: {len(failed)} benchmark(s) regressed beyond the "
              f"{args.tolerance:.0%} budget vs the committed baseline: "
              + ", ".join(failed), file=sys.stderr)
        return 1
    print(f"\nOK: all {len(gated)} gated benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return 0


def load_serving(path):
    doc = load_json(path, what="serving bench JSON")
    if doc.get("schema") != SERVING_SCHEMA:
        print(f"error: {path} has schema {doc.get('schema')!r}, expected "
              f"{SERVING_SCHEMA!r}\n  (is this really a BENCH_serving.json "
              f"written by ext_serving_throughput?)", file=sys.stderr)
        sys.exit(1)
    scales = {s["sessions"]: s for s in doc.get("scales", [])}
    if not scales:
        print(f"error: {path} contains no scales — the sweep produced no "
              f"results", file=sys.stderr)
        sys.exit(1)
    return doc, scales


def check_serving(args):
    baseline_path = args.serving_baseline or "bench_results/BENCH_serving.json"
    base_doc, base_scales = load_serving(baseline_path)
    cur_doc, cur_scales = load_serving(args.serving_current)

    common = sorted(set(base_scales) & set(cur_scales))
    if not common:
        print(f"error: no common session scales between {baseline_path} "
              f"(has {sorted(base_scales)}) and {args.serving_current} "
              f"(has {sorted(cur_scales)})", file=sys.stderr)
        return 1

    budget = cur_doc.get("session_byte_budget",
                         base_doc.get("session_byte_budget", 0))
    struct_bytes = cur_doc.get("session_struct_bytes", 0)
    failed = []
    if budget and struct_bytes > budget:
        print(f"FAIL: sizeof(UserSession) = {struct_bytes} B exceeds the "
              f"{budget} B per-session budget", file=sys.stderr)
        failed.append("session_struct_bytes")

    limit = 1.0 - args.serving_tolerance
    print(f"{'sessions':>10} {'base users/s/core':>18} "
          f"{'cur users/s/core':>18} {'B/sess base':>12} {'cur':>8} "
          f"{'p99 base':>9} {'cur':>7}")
    for sessions in common:
        base, cur = base_scales[sessions], cur_scales[sessions]
        tput_ok = cur["users_per_sec_per_core"] >= \
            base["users_per_sec_per_core"] * limit
        # bytes/session is a deterministic function of the slab math — any
        # increase is a real footprint regression, so only float rounding
        # slack is allowed.
        mem_ok = cur["bytes_per_session"] <= base["bytes_per_session"] * 1.001
        # p99 alignment loss is deterministic for a fixed (config, seed) but
        # the CI smoke may run a different epoch count than the committed
        # sweep, so a small absolute dB tolerance absorbs the horizon
        # difference while still catching a real tail-quality regression
        # (a broken estimator or codeword-scoring bug moves p99 by many dB).
        base_p99, cur_p99 = base.get("loss_p99_db"), cur.get("loss_p99_db")
        loss_ok = (base_p99 is None or cur_p99 is None or
                   cur_p99 <= base_p99 + args.loss_tolerance_db)
        verdict = "ok" if (tput_ok and mem_ok and loss_ok) else "FAIL"
        print(f"{sessions:>10} {base['users_per_sec_per_core']:>18.0f} "
              f"{cur['users_per_sec_per_core']:>18.0f} "
              f"{base['bytes_per_session']:>12.1f} "
              f"{cur['bytes_per_session']:>8.1f} "
              f"{'-' if base_p99 is None else format(base_p99, '>9.2f')} "
              f"{'-' if cur_p99 is None else format(cur_p99, '>7.2f')}"
              f"  {verdict}")
        if not tput_ok:
            failed.append(f"{sessions}:throughput")
        if not mem_ok:
            failed.append(f"{sessions}:bytes_per_session")
        if not loss_ok:
            failed.append(f"{sessions}:loss_p99_db")

    if failed:
        print(f"\nFAIL: serving gate violations vs {baseline_path}: "
              + ", ".join(str(f) for f in failed), file=sys.stderr)
        return 1
    print(f"\nOK: serving throughput within {args.serving_tolerance:.0%} and "
          f"memory at-or-below baseline across {len(common)} scale(s)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", action="append",
                        help="google-benchmark JSON from this build "
                             "(repeatable; per-benchmark minimum is used)")
    parser.add_argument("--baseline", action="append",
                        help="baseline JSON (repeatable; default: "
                             "bench_results/BENCH_micro_linalg.json)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown (default: %(default)s)")
    parser.add_argument("--filter", default=GATED_PREFIX,
                        help="benchmark-name prefix to gate (default: %(default)s)")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="compare raw times (same-machine runs only)")
    parser.add_argument("--serving-current",
                        help="fresh BENCH_serving.json to gate against the "
                             "committed serving baseline")
    parser.add_argument("--serving-baseline",
                        help="serving baseline JSON (default: "
                             "bench_results/BENCH_serving.json)")
    parser.add_argument("--serving-tolerance", type=float, default=0.5,
                        help="allowed fractional users/sec/core shortfall "
                             "(default: %(default)s)")
    parser.add_argument("--loss-tolerance-db", type=float, default=0.5,
                        help="allowed absolute p99 alignment-loss increase "
                             "in dB (default: %(default)s)")
    args = parser.parse_args()

    if not args.current and not args.serving_current:
        parser.error("nothing to gate: pass --current and/or --serving-current")

    status = 0
    if args.current:
        status |= check_slot_cycle(args)
    if args.serving_current:
        status |= check_serving(args)
    return status


if __name__ == "__main__":
    sys.exit(main())
