#!/usr/bin/env python3
"""Flag slot-cycle performance regressions against the committed baseline.

The committed bench_results/BENCH_micro_linalg.json records the BM_SlotCycle*
timings of the batched-SIMD scoring path (PR 7). This script compares a
fresh google-benchmark JSON run against it and fails when any gated
benchmark got slower than the baseline by more than --tolerance — catching
accidental de-optimization of the per-slot hot path (a dropped kernel
dispatch, a reintroduced per-codeword temporary, an arena that stopped
reusing memory) before it merges.

Machine-speed differences between the baseline recorder and the CI runner
are cancelled exactly as in check_obs_overhead.py: the current run is
rescaled by the median current/baseline ratio over instrumentation-free
calibration benchmarks. Multiple --current files (or in-file repetitions)
fold to the per-benchmark minimum, the standard de-noising for
time-based microbenchmarks.

The default tolerance is looser than the obs-overhead gate's (15% vs 3%):
this gate compares kernel-bound timings across heterogeneous runners,
where calibration cancels scale but not microarchitectural differences in
SIMD throughput.

Usage:
  python3 tools/check_bench_regression.py --current BENCH_micro_linalg.json
  python3 tools/check_bench_regression.py --current run1.json --current run2.json \
      --tolerance 0.10 --filter BM_SlotCycleFactored

Exit status 0 if every gated benchmark is within tolerance, 1 otherwise.
Only the Python standard library is used.
"""

import argparse
import statistics
import sys

from check_obs_overhead import CALIBRATION_PREFIXES, load_times

GATED_PREFIX = "BM_SlotCycle"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, action="append",
                        help="google-benchmark JSON from this build "
                             "(repeatable; per-benchmark minimum is used)")
    parser.add_argument("--baseline", action="append",
                        help="baseline JSON (repeatable; default: "
                             "bench_results/BENCH_micro_linalg.json)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed fractional slowdown (default: %(default)s)")
    parser.add_argument("--filter", default=GATED_PREFIX,
                        help="benchmark-name prefix to gate (default: %(default)s)")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="compare raw times (same-machine runs only)")
    args = parser.parse_args()

    baseline_paths = args.baseline or ["bench_results/BENCH_micro_linalg.json"]
    baseline = load_times(baseline_paths)
    current = load_times(args.current)

    gated = sorted(n for n in baseline
                   if n.startswith(args.filter) and n in current)
    if not gated:
        print(f"error: no benchmarks matching '{args.filter}' present in both "
              f"{baseline_paths} and {args.current}", file=sys.stderr)
        return 1

    scale = 1.0
    if not args.no_calibrate:
        ratios = [current[n] / baseline[n]
                  for n in baseline
                  if n.startswith(CALIBRATION_PREFIXES) and n in current
                  and baseline[n] > 0.0]
        if not ratios:
            print("error: no calibration benchmarks in common; "
                  "rerun with --no-calibrate", file=sys.stderr)
            return 1
        scale = statistics.median(ratios)
        print(f"machine-speed scale factor (median over {len(ratios)} "
              f"calibration benches): {scale:.4f}")

    limit = 1.0 + args.tolerance
    failed = []
    print(f"{'benchmark':<40} {'baseline ns':>14} {'current ns':>14} "
          f"{'ratio':>8}")
    for name in gated:
        ratio = current[name] / (baseline[name] * scale)
        verdict = "ok" if ratio <= limit else "FAIL"
        print(f"{name:<40} {baseline[name]:>14.0f} {current[name]:>14.0f} "
              f"{ratio:>8.4f}  {verdict}")
        if ratio > limit:
            failed.append(name)

    if failed:
        print(f"\nFAIL: {len(failed)} benchmark(s) regressed beyond the "
              f"{args.tolerance:.0%} budget vs the committed baseline: "
              + ", ".join(failed), file=sys.stderr)
        return 1
    print(f"\nOK: all {len(gated)} gated benchmarks within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
