#!/usr/bin/env python3
"""Gate on the disabled-instrumentation overhead of the slot-cycle benches.

The observability layer (src/obs/) is compiled into every hot path; when
disabled its only cost is one relaxed atomic load per instrumentation site.
This script enforces that claim: the BM_SlotCycle* timings of a fresh
google-benchmark JSON run must stay within --tolerance (default 3%) of the
committed pre-instrumentation baseline (bench_results/BENCH_micro_linalg.json,
recorded at PR 3).

Raw nanoseconds are not comparable across machines, so by default the
current run is rescaled by the median current/baseline ratio over a set of
calibration benchmarks whose code paths carry no instrumentation at all
(pure dense linear algebra).  On the machine that recorded the baseline the
scale factor is ~1 and the comparison is direct; on a CI runner the machine
speed difference cancels while a regression isolated to the slot cycle
still shows up.  Pass --no-calibrate for a strict same-machine comparison.

A single benchmark run is itself noisy (the committed baseline is one run),
so --current may be given several times and repeated rows within one file
(--benchmark_repetitions) are folded together; the per-benchmark minimum is
compared, which is the standard de-noising for time-based microbenchmarks.

A second, same-machine gate covers the flight recorder (PR 9): TraceScope
feeds per-thread ring buffers even when obs is disabled (flight.h), so the
"disabled" hot path now carries the ring write. Pass --flight-on and
--flight-off with two runs of the SAME binary on the SAME machine — one
with the recorder armed (the default) and one under MMW_FLIGHT=off — and
the armed run must stay within --tolerance of the disarmed one. No
calibration applies there: both runs share the machine, so raw times are
directly comparable. Set MMW_FLIGHT=on explicitly on the armed side: the
two environments must have EQUAL length, because an extra env var shifts
the initial stack alignment and that alone skews short microbenches by
~10% (Mytkowicz et al., "Producing Wrong Data Without Doing Anything
Obviously Wrong", ASPLOS'09).

Usage:
  python3 tools/check_obs_overhead.py --current BENCH_micro_linalg.json
  python3 tools/check_obs_overhead.py --current run1.json --current run2.json \
      --baseline old.json --tolerance 0.03 --no-calibrate
  MMW_FLIGHT=off ./bench/micro_linalg --benchmark_format=json > off.json
  MMW_FLIGHT=on  ./bench/micro_linalg --benchmark_format=json > on.json
  python3 tools/check_obs_overhead.py --flight-on on.json --flight-off off.json

Exit status 0 if every gated benchmark is within tolerance, 1 otherwise.
Only the Python standard library is used.
"""

import argparse
import json
import statistics
import sys

# Benchmarks the gate protects: the per-slot hot loop of the proposed
# alignment strategy (codebook scoring + covariance update), with and
# without the ML solver in the loop.
GATED_PREFIX = "BM_SlotCycle"

# Instrumentation-free benchmarks used to cancel machine-speed differences.
# These must not touch obs-instrumented code (no eig, no solver, no
# codebook scoring entry points).
CALIBRATION_PREFIXES = (
    "BM_MatrixMultiply",
    "BM_AddScaledOuter",
    "BM_OuterTemporaryAdd",
    "BM_SteeringVector",
)


def load_json(path, what="benchmark JSON"):
    """Load a JSON document, exiting with a one-line diagnosis (not a
    traceback) when the file is missing or malformed — the two ways a CI
    misconfiguration usually presents."""
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        print(f"error: {what} not found: {path}\n"
              f"  (did the bench step run, and is the path relative to the "
              f"repo root?)", file=sys.stderr)
        sys.exit(1)
    except json.JSONDecodeError as e:
        print(f"error: {what} is not valid JSON: {path} ({e})\n"
              f"  (a truncated or interleaved bench run can corrupt the "
              f"file; regenerate it)", file=sys.stderr)
        sys.exit(1)


def load_times(paths):
    """Return {benchmark name: min real_time in ns} over google-benchmark
    JSON files; repeated rows for one name keep the minimum."""
    times = {}
    for path in paths:
        doc = load_json(path)
        for b in doc.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue  # skip aggregate rows (mean/median/stddev)
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
            name = b["name"].split("/repeats:")[0]
            t = float(b["real_time"]) * scale
            times[name] = min(times.get(name, t), t)
    return times


def check_ratios(baseline, current, prefix, tolerance, scale, what):
    """Shared ratio gate: every `prefix` benchmark in both maps must have
    current <= baseline * scale * (1 + tolerance). Returns (exit status)."""
    gated = sorted(n for n in baseline if n.startswith(prefix) and n in current)
    if not gated:
        print(f"error: no benchmarks matching '{prefix}' present in both "
              f"inputs for the {what} gate", file=sys.stderr)
        return 1
    limit = 1.0 + tolerance
    failed = []
    print(f"{'benchmark':<40} {'baseline ns':>14} {'current ns':>14} "
          f"{'ratio':>8}")
    for name in gated:
        ratio = current[name] / (baseline[name] * scale)
        verdict = "ok" if ratio <= limit else "FAIL"
        print(f"{name:<40} {baseline[name]:>14.0f} {current[name]:>14.0f} "
              f"{ratio:>8.4f}  {verdict}")
        if ratio > limit:
            failed.append(name)
    if failed:
        print(f"\nFAIL: {len(failed)} benchmark(s) exceed the "
              f"{tolerance:.0%} {what} budget: " + ", ".join(failed),
              file=sys.stderr)
        return 1
    print(f"\nOK: all {len(gated)} gated benchmarks within "
          f"{tolerance:.0%} of baseline ({what})")
    return 0


def check_flight(args):
    """A/B gate: armed flight recorder vs MMW_FLIGHT=off, same machine.

    Gates on the MEDIAN armed/disarmed ratio across the gated benchmarks,
    not per benchmark: the recorder's cost (a ring write per span) is
    systematic — it moves every instrumented bench together — while
    scheduler/frequency noise is idiosyncratic per bench and routinely
    exceeds 3% either way on shared runners. The per-bench table is still
    printed for diagnosis."""
    on = load_times(args.flight_on)
    off = load_times(args.flight_off)
    gated = sorted(n for n in off if n.startswith(args.filter) and n in on)
    if not gated:
        print(f"error: no benchmarks matching '{args.filter}' present in "
              f"both --flight-on and --flight-off inputs", file=sys.stderr)
        return 1
    print("flight-recorder overhead gate (armed vs MMW_FLIGHT=off, "
          "same machine, no calibration):")
    print(f"{'benchmark':<40} {'off ns':>14} {'on ns':>14} {'ratio':>8}")
    ratios = []
    for name in gated:
        ratio = on[name] / off[name]
        ratios.append(ratio)
        print(f"{name:<40} {off[name]:>14.0f} {on[name]:>14.0f} "
              f"{ratio:>8.4f}")
    med = statistics.median(ratios)
    if med > 1.0 + args.tolerance:
        print(f"\nFAIL: median armed/disarmed ratio {med:.4f} exceeds the "
              f"{args.tolerance:.0%} flight-recorder budget over "
              f"{len(gated)} benchmark(s)", file=sys.stderr)
        return 1
    print(f"\nOK: median armed/disarmed ratio {med:.4f} within "
          f"{args.tolerance:.0%} over {len(gated)} benchmark(s)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", action="append",
                        help="google-benchmark JSON from this build "
                             "(repeatable; per-benchmark minimum is used)")
    parser.add_argument("--baseline", action="append",
                        help="baseline JSON (repeatable; default: "
                             "bench_results/BENCH_micro_linalg.json)")
    parser.add_argument("--tolerance", type=float, default=0.03,
                        help="allowed fractional slowdown (default: %(default)s)")
    parser.add_argument("--filter", default=GATED_PREFIX,
                        help="benchmark-name prefix to gate (default: %(default)s)")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="compare raw times (same-machine runs only)")
    parser.add_argument("--flight-on", action="append",
                        help="bench JSON with the flight recorder armed "
                             "(repeatable; per-benchmark minimum is used)")
    parser.add_argument("--flight-off", action="append",
                        help="bench JSON recorded under MMW_FLIGHT=off on "
                             "the same machine as --flight-on")
    args = parser.parse_args()

    if bool(args.flight_on) != bool(args.flight_off):
        parser.error("--flight-on and --flight-off must be given together")
    if not args.current and not args.flight_on:
        parser.error("nothing to gate: pass --current and/or "
                     "--flight-on/--flight-off")

    status = 0
    if args.current:
        baseline_paths = (args.baseline
                          or ["bench_results/BENCH_micro_linalg.json"])
        baseline = load_times(baseline_paths)
        current = load_times(args.current)

        scale = 1.0
        if not args.no_calibrate:
            ratios = [current[n] / baseline[n]
                      for n in baseline
                      if n.startswith(CALIBRATION_PREFIXES) and n in current
                      and baseline[n] > 0.0]
            if not ratios:
                print("error: no calibration benchmarks in common; "
                      "rerun with --no-calibrate", file=sys.stderr)
                return 1
            scale = statistics.median(ratios)
            print(f"machine-speed scale factor (median over {len(ratios)} "
                  f"calibration benches): {scale:.4f}")
        status |= check_ratios(baseline, current, args.filter, args.tolerance,
                               scale, "disabled-instrumentation overhead")
    if args.flight_on:
        status |= check_flight(args)
    return status


if __name__ == "__main__":
    sys.exit(main())
