#!/usr/bin/env python3
"""Summarize, tail, canonicalize, and SLO-check serving telemetry NDJSON.

The serving engine (src/serve, --telemetry on ext_serving_throughput)
streams one mmw.telemetry/1 record per epoch. This tool is the operator
side of that contract:

**Summary** (default): prints a per-epoch table (sessions, churn, outages,
re-alignments, loss quantiles, epoch wall time) followed by run totals.

**SLO checks**: --slo-p99-loss-db and --slo-outage-rate turn the summary
into a gate — exit status 1 when any epoch's p99 loss exceeds the budget
or the run's outage rate (total outages / total session-epochs) does.
An epoch with no tracking sessions has no loss quantiles and is skipped.

**--tail**: follow mode. Seeks to the end of the file and prints each new
record as it is flushed (the sink flushes per line, so an epoch appears
the moment it completes). Ctrl-C to stop.

**--strip-timing**: canonicalizer for determinism comparisons. Emits each
record with its trailing "timing" object removed — by the schema contract
"timing" is the LAST key, so this is a string truncation, and the output
of two runs at different --threads must be byte-identical. The CI gate
diffs exactly this output.

Usage:
  python3 tools/telemetry_report.py epochs.ndjson
  python3 tools/telemetry_report.py epochs.ndjson \
      --slo-p99-loss-db 3.0 --slo-outage-rate 0.02
  python3 tools/telemetry_report.py epochs.ndjson --tail
  python3 tools/telemetry_report.py a.ndjson --strip-timing > a.stripped

Exit status 0 on success / SLOs met, 1 on malformed input or SLO breach.
Only the Python standard library is used.
"""

import argparse
import json
import sys
import time

SCHEMA = "mmw.telemetry/1"
TIMING_MARKER = ',"timing":'


def strip_timing_line(line):
    """Drops the trailing "timing" object from one serialized record.
    Pure string truncation — valid because "timing" is the last key."""
    pos = line.find(TIMING_MARKER)
    return line[:pos] + "}" if pos >= 0 else line


def parse_record(line, lineno, path):
    try:
        rec = json.loads(line)
    except json.JSONDecodeError as e:
        print(f"error: {path}:{lineno}: not valid JSON ({e})\n"
              f"  (a crashed run can leave a torn final line; every other "
              f"line being broken means this is not a telemetry file)",
              file=sys.stderr)
        return None
    if rec.get("schema") != SCHEMA:
        print(f"error: {path}:{lineno}: schema {rec.get('schema')!r}, "
              f"expected {SCHEMA!r}", file=sys.stderr)
        return None
    return rec


HEADER = (f"{'epoch':>6} {'live':>9} {'arr':>6} {'dep':>6} {'outage':>7} "
          f"{'realign':>8} {'nonconv':>8} {'p50 dB':>8} {'p99 dB':>8} "
          f"{'p999 dB':>8} {'max dB':>8} {'sec':>8}")


def format_row(rec):
    c = rec.get("counters", {})
    loss = rec.get("loss_db", {})
    timing = rec.get("timing", {})

    def q(key):
        return f"{loss[key]:8.2f}" if loss.get("count", 0) > 0 else "       -"

    sec = timing.get("epoch_seconds")
    sec_txt = f"{sec:8.3f}" if sec is not None else f"{'-':>8}"
    return (f"{rec.get('epoch', 0):>6} {c.get('live_sessions', 0):>9} "
            f"{c.get('arrivals', 0):>6} {c.get('departures', 0):>6} "
            f"{c.get('outages', 0):>7} {c.get('realignments', 0):>8} "
            f"{c.get('estimator_nonconverged', 0):>8} "
            f"{q('p50')} {q('p99')} {q('p999')} {q('max')} {sec_txt}")


def summarize(records, args):
    print(HEADER)
    for rec in records:
        print(format_row(rec))

    total_outages = sum(r["counters"].get("outages", 0) for r in records)
    total_steps = sum(r["counters"].get("aligning_steps", 0) +
                      r["counters"].get("tracking_steps", 0)
                      for r in records)
    total_realign = sum(r["counters"].get("realignments", 0)
                        for r in records)
    outage_rate = total_outages / total_steps if total_steps else 0.0
    worst_p99 = max((r["loss_db"]["p99"] for r in records
                     if r.get("loss_db", {}).get("count", 0) > 0),
                    default=None)
    last = records[-1]
    print(f"\n{len(records)} epochs, final live sessions "
          f"{last['counters'].get('live_sessions', 0)}, "
          f"outage rate {outage_rate:.4%} "
          f"({total_outages}/{total_steps} session-epochs), "
          f"{total_realign} re-alignments, worst epoch p99 loss "
          + (f"{worst_p99:.2f} dB" if worst_p99 is not None else "n/a"))
    mem = last.get("memory", {})
    timing = last.get("timing", {})
    if mem:
        print(f"pool resident {mem.get('pool_resident_bytes', 0):,} B "
              f"(high water {mem.get('pool_high_water_bytes', 0):,} B), "
              f"final RSS {timing.get('rss_bytes', 0):,} B")

    failures = []
    if args.slo_p99_loss_db is not None and worst_p99 is not None \
            and worst_p99 > args.slo_p99_loss_db:
        failures.append(f"worst epoch p99 loss {worst_p99:.2f} dB > "
                        f"SLO {args.slo_p99_loss_db:.2f} dB")
    if args.slo_outage_rate is not None \
            and outage_rate > args.slo_outage_rate:
        failures.append(f"outage rate {outage_rate:.4%} > "
                        f"SLO {args.slo_outage_rate:.4%}")
    for f in failures:
        print(f"SLO FAIL: {f}", file=sys.stderr)
    if not failures and (args.slo_p99_loss_db is not None or
                         args.slo_outage_rate is not None):
        print("SLO OK")
    return 1 if failures else 0


def tail(path):
    """Follow mode: print each record as the engine flushes it."""
    printed_header = False
    # Binary mode: a partially flushed line is buffered until its newline
    # arrives, and byte offsets stay honest (text-mode seek arithmetic is
    # not defined).
    with open(path, "rb") as f:
        f.seek(0, 2)  # the past is in the summary; tail shows the future
        pending = b""
        while True:
            chunk = f.readline()
            if not chunk:
                time.sleep(0.2)
                continue
            pending += chunk
            if not pending.endswith(b"\n"):
                continue  # torn line: the writer is mid-flush
            line = pending.decode("utf-8", errors="replace").strip()
            pending = b""
            if not line:
                continue
            rec = parse_record(line, "-", path)
            if rec is None:
                return 1
            if not printed_header:
                print(HEADER)
                printed_header = True
            print(format_row(rec), flush=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="telemetry NDJSON file (mmw.telemetry/1)")
    parser.add_argument("--strip-timing", action="store_true",
                        help="emit records with the timing object removed "
                             "(determinism canonicalizer) and exit")
    parser.add_argument("--tail", action="store_true",
                        help="follow the file, printing new epochs live")
    parser.add_argument("--slo-p99-loss-db", type=float,
                        help="fail if any epoch's p99 loss exceeds this")
    parser.add_argument("--slo-outage-rate", type=float,
                        help="fail if total outages / session-epochs "
                             "exceeds this")
    args = parser.parse_args()

    if args.tail:
        try:
            return tail(args.path)
        except KeyboardInterrupt:
            return 0
        except FileNotFoundError:
            print(f"error: telemetry file not found: {args.path}",
                  file=sys.stderr)
            return 1

    try:
        with open(args.path) as f:
            lines = [ln.rstrip("\n") for ln in f if ln.strip()]
    except FileNotFoundError:
        print(f"error: telemetry file not found: {args.path}\n"
              f"  (did the run use --telemetry, and is the path relative "
              f"to the repo root?)", file=sys.stderr)
        return 1
    if not lines:
        print(f"error: {args.path} is empty — the run wrote no epochs",
              file=sys.stderr)
        return 1

    if args.strip_timing:
        for line in lines:
            print(strip_timing_line(line))
        return 0

    records = []
    for i, line in enumerate(lines, 1):
        rec = parse_record(line, i, args.path)
        if rec is None:
            return 1
        records.append(rec)
    return summarize(records, args)


if __name__ == "__main__":
    sys.exit(main())
