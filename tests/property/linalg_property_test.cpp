// Property-based sweeps over the linear-algebra substrate: every suite runs
// the same invariant across a grid of sizes and seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompositions.h"
#include "linalg/eig.h"
#include "linalg/functions.h"
#include "randgen/rng.h"

namespace mmw::linalg {
namespace {

using randgen::Rng;

struct SizeSeed {
  index_t n;
  std::uint64_t seed;
};

void PrintTo(const SizeSeed& p, std::ostream* os) {
  *os << "n" << p.n << "_seed" << p.seed;
}

Matrix random_hermitian(Rng& rng, index_t n) {
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  return (g + g.adjoint()) * cx{0.5, 0.0};
}

// ------------------------------------------------------------ eig ---------

class EigProperty : public ::testing::TestWithParam<SizeSeed> {};

TEST_P(EigProperty, ReconstructionOrthonormalityOrderingTrace) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = random_hermitian(rng, n);
  const EigResult r = hermitian_eig(a);

  // Orthonormal eigenbasis.
  EXPECT_TRUE(approx_equal(r.eigenvectors.adjoint() * r.eigenvectors,
                           Matrix::identity(n), 1e-9 * n));
  // Descending order.
  for (index_t k = 1; k < n; ++k)
    EXPECT_GE(r.eigenvalues[k - 1], r.eigenvalues[k]);
  // Reconstruction.
  Matrix rebuilt(n, n);
  for (index_t k = 0; k < n; ++k)
    rebuilt += cx{r.eigenvalues[k], 0.0} *
               Matrix::outer(r.eigenvectors.col(k), r.eigenvectors.col(k));
  EXPECT_TRUE(approx_equal(rebuilt, a, 1e-8 * (1.0 + a.frobenius_norm())));
  // Trace preservation.
  real sum = 0.0;
  for (const real e : r.eigenvalues) sum += e;
  EXPECT_NEAR(sum, a.trace().real(), 1e-8 * (1.0 + std::abs(sum)));
}

TEST_P(EigProperty, QlSolverSatisfiesSameInvariants) {
  const auto [n, seed] = GetParam();
  Rng rng(seed + 1000);
  const Matrix a = random_hermitian(rng, n);
  const EigResult r = hermitian_eig_ql(a);

  EXPECT_TRUE(approx_equal(r.eigenvectors.adjoint() * r.eigenvectors,
                           Matrix::identity(n), 1e-9 * n));
  for (index_t k = 1; k < n; ++k)
    EXPECT_GE(r.eigenvalues[k - 1], r.eigenvalues[k]);
  Matrix rebuilt(n, n);
  for (index_t k = 0; k < n; ++k)
    rebuilt += cx{r.eigenvalues[k], 0.0} *
               Matrix::outer(r.eigenvectors.col(k), r.eigenvectors.col(k));
  EXPECT_TRUE(approx_equal(rebuilt, a, 1e-8 * (1.0 + a.frobenius_norm())));
}

TEST_P(EigProperty, SolversAgreeOnSpectrum) {
  const auto [n, seed] = GetParam();
  Rng rng(seed + 2000);
  const Matrix a = random_hermitian(rng, n);
  const EigResult rj = hermitian_eig(a);
  const EigResult rq = hermitian_eig_ql(a);
  for (index_t k = 0; k < n; ++k)
    EXPECT_NEAR(rj.eigenvalues[k], rq.eigenvalues[k],
                1e-9 * (1.0 + std::abs(rj.eigenvalues[k])));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EigProperty,
    ::testing::Values(SizeSeed{2, 1}, SizeSeed{3, 2}, SizeSeed{5, 3},
                      SizeSeed{8, 4}, SizeSeed{13, 5}, SizeSeed{21, 6},
                      SizeSeed{34, 7}, SizeSeed{64, 8}));

// ------------------------------------------------------------ svd ---------

struct ShapeSeed {
  index_t rows, cols;
  std::uint64_t seed;
};

void PrintTo(const ShapeSeed& p, std::ostream* os) {
  *os << p.rows << "x" << p.cols << "_seed" << p.seed;
}

class SvdProperty : public ::testing::TestWithParam<ShapeSeed> {};

TEST_P(SvdProperty, ReconstructionAndOrthonormalFactors) {
  const auto [rows, cols, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = rng.complex_gaussian_matrix(rows, cols);
  const SvdResult s = svd(a);
  const index_t r = std::min(rows, cols);
  ASSERT_EQ(s.singular_values.size(), r);

  Matrix rebuilt(rows, cols);
  for (index_t k = 0; k < r; ++k) {
    EXPECT_GE(s.singular_values[k], 0.0);
    if (k > 0) {
      EXPECT_GE(s.singular_values[k - 1], s.singular_values[k]);
    }
    rebuilt += cx{s.singular_values[k], 0.0} *
               Matrix::outer(s.u.col(k), s.v.col(k));
  }
  EXPECT_TRUE(approx_equal(rebuilt, a, 1e-7 * (1.0 + a.frobenius_norm())));
  // Columns used in the reconstruction are unit norm.
  for (index_t k = 0; k < r; ++k) {
    if (s.singular_values[k] < 1e-9) continue;
    EXPECT_NEAR(s.u.col(k).norm(), 1.0, 1e-8);
    EXPECT_NEAR(s.v.col(k).norm(), 1.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(ShapeSeed{1, 1, 1}, ShapeSeed{3, 7, 2},
                      ShapeSeed{7, 3, 3}, ShapeSeed{8, 8, 4},
                      ShapeSeed{16, 4, 5}, ShapeSeed{4, 16, 6},
                      ShapeSeed{20, 20, 7}));

// ------------------------------------------------------- cholesky ---------

class CholeskyProperty : public ::testing::TestWithParam<SizeSeed> {};

TEST_P(CholeskyProperty, FactorReconstructsAndIsTriangular) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  const Matrix a = g * g.adjoint() + Matrix::identity(n) * cx{0.05, 0.0};
  const Matrix l = cholesky(a);
  EXPECT_TRUE(
      approx_equal(l * l.adjoint(), a, 1e-8 * (1.0 + a.frobenius_norm())));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j)
      EXPECT_NEAR(std::abs(l(i, j)), 0.0, 1e-12);
    EXPECT_GE(l(i, i).real(), 0.0);  // canonical non-negative diagonal
    EXPECT_NEAR(l(i, i).imag(), 0.0, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values(SizeSeed{1, 11}, SizeSeed{2, 12},
                                           SizeSeed{5, 13}, SizeSeed{16, 14},
                                           SizeSeed{64, 15}));

// ----------------------------------------------------------- solve --------

class SolveProperty : public ::testing::TestWithParam<SizeSeed> {};

TEST_P(SolveProperty, ResidualIsSmall) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = rng.complex_gaussian_matrix(n, n);
  const Vector b = rng.complex_gaussian_vector(n);
  const Vector x = solve(a, b);
  EXPECT_LT((a * x - b).norm(), 1e-8 * (1.0 + b.norm()) * n);
}

TEST_P(SolveProperty, InverseRoundTrip) {
  const auto [n, seed] = GetParam();
  Rng rng(seed + 100);
  const Matrix a = rng.complex_gaussian_matrix(n, n);
  EXPECT_TRUE(approx_equal(a * inverse(a), Matrix::identity(n), 1e-7 * n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveProperty,
                         ::testing::Values(SizeSeed{1, 21}, SizeSeed{2, 22},
                                           SizeSeed{7, 23}, SizeSeed{16, 24},
                                           SizeSeed{33, 25}));

// ------------------------------------------------------- functions --------

class PsdFunctionProperty : public ::testing::TestWithParam<SizeSeed> {};

TEST_P(PsdFunctionProperty, ProjectionIsClosestPsdInSpectrum) {
  const auto [n, seed] = GetParam();
  Rng rng(seed);
  const Matrix a = random_hermitian(rng, n);
  const Matrix p = psd_project(a);
  // PSD and no farther than the original negative part.
  const EigResult ep = hermitian_eig(p);
  for (const real e : ep.eigenvalues) EXPECT_GE(e, -1e-8);
  // The projection never moves farther than clipping all of A's negatives.
  const EigResult ea = hermitian_eig(a);
  real clip_sq = 0.0;
  for (const real e : ea.eigenvalues)
    if (e < 0.0) clip_sq += e * e;
  EXPECT_NEAR((p - a).frobenius_norm(), std::sqrt(clip_sq),
              1e-6 * (1.0 + std::sqrt(clip_sq)));
}

TEST_P(PsdFunctionProperty, SqrtSquaresBack) {
  const auto [n, seed] = GetParam();
  Rng rng(seed + 50);
  const Matrix g = rng.complex_gaussian_matrix(n, n);
  const Matrix a = g * g.adjoint();
  const Matrix s = hermitian_sqrt(a);
  EXPECT_TRUE(approx_equal(s * s, a, 1e-7 * (1.0 + a.frobenius_norm())));
}

TEST_P(PsdFunctionProperty, SoftThresholdIsNonexpansive) {
  // prox operators are 1-Lipschitz: ‖prox(A)−prox(B)‖ ≤ ‖A−B‖.
  const auto [n, seed] = GetParam();
  Rng rng(seed + 99);
  const Matrix a = random_hermitian(rng, n);
  const Matrix b = random_hermitian(rng, n);
  const real mu = 0.3;
  const Matrix pa = eigenvalue_soft_threshold(a, mu);
  const Matrix pb = eigenvalue_soft_threshold(b, mu);
  EXPECT_LE((pa - pb).frobenius_norm(),
            (a - b).frobenius_norm() + 1e-8);
}

TEST_P(PsdFunctionProperty, NuclearNormTriangleInequality) {
  const auto [n, seed] = GetParam();
  Rng rng(seed + 7);
  const Matrix a = rng.complex_gaussian_matrix(n, n);
  const Matrix b = rng.complex_gaussian_matrix(n, n);
  EXPECT_LE(nuclear_norm(a + b), nuclear_norm(a) + nuclear_norm(b) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PsdFunctionProperty,
                         ::testing::Values(SizeSeed{2, 31}, SizeSeed{4, 32},
                                           SizeSeed{9, 33}, SizeSeed{16, 34}));

}  // namespace
}  // namespace mmw::linalg
