// Property sweeps over every alignment strategy: budget discipline,
// no-repeat, determinism, and full coverage at 100% budget — for all
// strategies on both channel families and several budgets.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "channel/models.h"
#include "core/strategy.h"

namespace mmw::core {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;
using channel::Link;
using mac::Session;
using randgen::Rng;

enum class Kind { kRandom, kScan, kExhaustive, kProposed, kHierarchical, kLocal, kPingPong };

struct StrategyCase {
  Kind kind;
  index_t budget;
  bool multipath;
  std::uint64_t seed;
};

void PrintTo(const StrategyCase& c, std::ostream* os) {
  static const char* names[] = {"random",   "scan",         "exhaustive",
                                "proposed", "hierarchical", "local",
                                "pingpong"};
  *os << names[static_cast<int>(c.kind)] << "_L" << c.budget
      << (c.multipath ? "_nyc" : "_single") << "_seed" << c.seed;
}

std::unique_ptr<AlignmentStrategy> make_strategy(Kind kind) {
  switch (kind) {
    case Kind::kRandom:
      return std::make_unique<RandomSearch>();
    case Kind::kScan:
      return std::make_unique<ScanSearch>();
    case Kind::kExhaustive:
      return std::make_unique<ExhaustiveSearch>();
    case Kind::kProposed:
      return std::make_unique<ProposedAlignment>();
    case Kind::kHierarchical:
      return std::make_unique<HierarchicalSearch>();
    case Kind::kLocal:
      return std::make_unique<LocalSearch>();
    case Kind::kPingPong:
      return std::make_unique<PingPongAlignment>();
  }
  throw precondition_error("unknown strategy kind");
}

class StrategyProperty : public ::testing::TestWithParam<StrategyCase> {
 protected:
  static constexpr index_t kTotalPairs = 4 * 16;

  Link make_link(Rng& rng) const {
    const auto tx = ArrayGeometry::upa(2, 2);
    const auto rx = ArrayGeometry::upa(4, 4);
    return GetParam().multipath ? channel::make_nyc_multipath_link(tx, rx, rng)
                                : channel::make_single_path_link(tx, rx, rng);
  }

  Codebook tx_cb() const {
    return Codebook::angular_grid(ArrayGeometry::upa(2, 2), 2, 2, -1.0, 1.0,
                                  -0.5, 0.5);
  }
  Codebook rx_cb() const {
    return Codebook::angular_grid(ArrayGeometry::upa(4, 4), 4, 4, -1.0, 1.0,
                                  -0.5, 0.5);
  }
};

TEST_P(StrategyProperty, SpendsFullBudgetWithoutRepeats) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  const Link link = make_link(rng);
  const auto tcb = tx_cb();
  const auto rcb = rx_cb();
  Session session(link, tcb, rcb, 1.0, p.budget, rng, 4);
  make_strategy(p.kind)->run(session);
  EXPECT_EQ(session.measurements_taken(), std::min(p.budget, kTotalPairs));
  std::set<std::pair<index_t, index_t>> seen;
  for (const auto& r : session.records()) {
    EXPECT_LT(r.tx_beam, tcb.size());
    EXPECT_LT(r.rx_beam, rcb.size());
    EXPECT_GE(r.energy, 0.0);
    EXPECT_TRUE(seen.insert({r.tx_beam, r.rx_beam}).second);
  }
}

TEST_P(StrategyProperty, DeterministicGivenSeed) {
  const auto& p = GetParam();
  auto run_once = [&]() {
    Rng rng(p.seed);
    const Link link = make_link(rng);
    const auto tcb = tx_cb();
    const auto rcb = rx_cb();
    Session session(link, tcb, rcb, 1.0, p.budget, rng, 4);
    make_strategy(p.kind)->run(session);
    return session.records();
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (index_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].tx_beam, b[k].tx_beam);
    EXPECT_EQ(a[k].rx_beam, b[k].rx_beam);
    EXPECT_DOUBLE_EQ(a[k].energy, b[k].energy);
  }
}

TEST_P(StrategyProperty, FullBudgetCoversEveryPair) {
  const auto& p = GetParam();
  if (p.budget < kTotalPairs) GTEST_SKIP() << "only for 100% budgets";
  Rng rng(p.seed + 1);
  const Link link = make_link(rng);
  const auto tcb = tx_cb();
  const auto rcb = rx_cb();
  Session session(link, tcb, rcb, 1.0, p.budget, rng, 4);
  make_strategy(p.kind)->run(session);
  EXPECT_EQ(session.measurements_taken(), kTotalPairs);
}

std::vector<StrategyCase> all_cases() {
  std::vector<StrategyCase> out;
  std::uint64_t seed = 1;
  for (const Kind kind :
       {Kind::kRandom, Kind::kScan, Kind::kExhaustive, Kind::kProposed,
        Kind::kHierarchical, Kind::kLocal, Kind::kPingPong}) {
    for (const index_t budget : {index_t{5}, index_t{17}, index_t{64}}) {
      for (const bool multipath : {false, true}) {
        out.push_back({kind, budget, multipath, seed++});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyProperty,
                         ::testing::ValuesIn(all_cases()));

}  // namespace
}  // namespace mmw::core
