// Property sweeps over the covariance estimators: structural invariants
// that must hold for every (dimension, rank, measurement-count) regime.
#include <gtest/gtest.h>

#include <cmath>

#include "estimation/covariance_ml.h"
#include "linalg/eig.h"
#include "linalg/functions.h"
#include "randgen/rng.h"

namespace mmw::estimation {
namespace {

using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

struct EstCase {
  index_t n;
  index_t rank;
  index_t measurements;
  std::uint64_t seed;
};

void PrintTo(const EstCase& c, std::ostream* os) {
  *os << "n" << c.n << "_r" << c.rank << "_J" << c.measurements << "_seed"
      << c.seed;
}

class EstimatorProperty : public ::testing::TestWithParam<EstCase> {
 protected:
  static constexpr real kGamma = 100.0;

  Matrix planted(Rng& rng) const {
    const auto& p = GetParam();
    Matrix q(p.n, p.n);
    for (index_t k = 0; k < p.rank; ++k) {
      const Vector x = rng.random_unit_vector(p.n);
      q += Matrix::outer(x, x) *
           cx{static_cast<real>(p.n) * 2.0 / p.rank, 0.0};
    }
    return q;
  }

  std::vector<BeamMeasurement> measure(const Matrix& q, Rng& rng) const {
    const auto& p = GetParam();
    const Matrix root = linalg::hermitian_sqrt(q);
    std::vector<BeamMeasurement> out;
    for (index_t j = 0; j < p.measurements; ++j) {
      BeamMeasurement m;
      m.beam = rng.random_unit_vector(p.n);
      const Vector h = root * rng.complex_gaussian_vector(p.n);
      m.energy = std::norm(linalg::dot(m.beam, h) +
                           rng.complex_normal(1.0 / kGamma));
      out.push_back(std::move(m));
    }
    return out;
  }
};

TEST_P(EstimatorProperty, MlEstimateIsHermitianPsdInBeamSpan) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  const Matrix q = planted(rng);
  const auto ms = measure(q, rng);
  CovarianceMlOptions opts;
  opts.gamma = kGamma;
  const auto res = estimate_covariance_ml(p.n, ms, opts);

  EXPECT_TRUE(res.q.dense().is_hermitian(1e-8 * (1.0 + res.q.dense().max_abs())));
  const auto eig = res.q.eig();
  for (const real e : eig.eigenvalues)
    EXPECT_GE(e, -1e-7 * (1.0 + std::abs(eig.eigenvalues[0])));

  // Span containment: rank(Q̂) ≤ number of measurements.
  EXPECT_LE(linalg::numerical_rank(res.q.dense(), 1e-7), p.measurements);
}

TEST_P(EstimatorProperty, MlObjectiveNoWorseThanWarmStart) {
  const auto& p = GetParam();
  Rng rng(p.seed + 1);
  const Matrix q = planted(rng);
  const auto ms = measure(q, rng);
  CovarianceMlOptions opts;
  opts.gamma = kGamma;
  const Matrix warm = sample_covariance_estimate(p.n, ms, kGamma);
  const real f_warm = negative_log_likelihood(warm, ms, kGamma) +
                      opts.mu * warm.trace().real();
  const auto res = estimate_covariance_ml(p.n, ms, opts);
  EXPECT_LE(res.objective, f_warm + 1e-9 * (1.0 + std::abs(f_warm)));
}

TEST_P(EstimatorProperty, MomentEstimatorsAreHermitianPsd) {
  const auto& p = GetParam();
  Rng rng(p.seed + 2);
  const Matrix q = planted(rng);
  const auto ms = measure(q, rng);
  for (const Matrix& est :
       {sample_covariance_estimate(p.n, ms, kGamma),
        diagonal_loading_estimate(p.n, ms, kGamma)}) {
    EXPECT_TRUE(est.is_hermitian(1e-9 * (1.0 + est.max_abs())));
    const auto eig = linalg::hermitian_eig(est);
    for (const real e : eig.eigenvalues)
      EXPECT_GE(e, -1e-8 * (1.0 + std::abs(eig.eigenvalues[0])));
  }
}

TEST_P(EstimatorProperty, PredictedEnergiesTrackMeasurementsInAggregate) {
  // Σ_j λ_j(Q̂) should be within a factor of Σ_j w_j — the ML fit cannot
  // systematically run away from the data it maximizes.
  const auto& p = GetParam();
  Rng rng(p.seed + 3);
  const Matrix q = planted(rng);
  const auto ms = measure(q, rng);
  CovarianceMlOptions opts;
  opts.gamma = kGamma;
  const auto res = estimate_covariance_ml(p.n, ms, opts);
  real lambda_sum = 0.0, w_sum = 0.0;
  for (const auto& m : ms) {
    lambda_sum += expected_energy(res.q, m.beam, kGamma);
    w_sum += m.energy;
  }
  EXPECT_GT(lambda_sum, 0.1 * w_sum);
  EXPECT_LT(lambda_sum, 10.0 * w_sum + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, EstimatorProperty,
    ::testing::Values(EstCase{4, 1, 3, 1}, EstCase{8, 1, 6, 2},
                      EstCase{8, 2, 12, 3}, EstCase{16, 1, 8, 4},
                      EstCase{16, 3, 24, 5}, EstCase{32, 2, 10, 6},
                      EstCase{64, 2, 9, 7}));

}  // namespace
}  // namespace mmw::estimation
