// Property sweeps over channel::LinkEvolution — the distributional and
// purity contracts the tracking layer (src/track/) rests on, checked
// across a grid of seeded cases:
//
//   drift ∝ speed         realized angular RMS drift scales linearly with
//                         terminal speed (the per-meter parameterization);
//   blockage duty cycle   the two-state Markov chain's blocked fraction
//                         matches onset/(onset + clear) stationarity;
//   bit-identical replay  two instances with the same keys agree exactly,
//                         epoch by epoch;
//   epoch-order freedom   seeking in any order lands on the same state as
//                         a monotone walk (the handover re-entry contract).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/temporal.h"
#include "randgen/keylanes.h"

namespace mmw::channel {
namespace {

using antenna::ArrayGeometry;

struct EvolutionCase {
  std::uint64_t seed;
  std::uint64_t user;
  real speed_mps;
  real onset;  ///< per-epoch blockage onset probability
  real clear;  ///< per-epoch clear probability
};

void PrintTo(const EvolutionCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_user" << c.user << "_v" << c.speed_mps
      << "_on" << c.onset << "_off" << c.clear;
}

std::vector<EvolutionCase> make_cases() {
  // 50 cases × 4 properties ≈ 200 seeded property checks.
  std::vector<EvolutionCase> cases;
  const real speeds[] = {0.7, 1.4, 5.0, 13.9, 33.3};
  const real onsets[] = {0.05, 0.15};
  for (std::uint64_t seed = 1; seed <= 5; ++seed)
    for (const real v : speeds)
      for (const real on : onsets)
        cases.push_back({seed * 7919, seed * 13 + static_cast<std::uint64_t>(
                                                      v * 10.0),
                         v, on, 0.25});
  return cases;
}

std::vector<Path> base_paths() {
  return {Path{0.5, {0.2, 0.1}, {-0.3, 0.0}},
          Path{0.5, {-0.4, 0.0}, {0.3, -0.1}}};
}

class EvolutionProperty : public ::testing::TestWithParam<EvolutionCase> {
 protected:
  EvolutionConfig config() const {
    const EvolutionCase& c = GetParam();
    EvolutionConfig cfg;
    cfg.epoch_seconds = 0.5;
    cfg.speed_mps = c.speed_mps;
    cfg.shadow_sigma_db = 1.5;
    cfg.blockage_onset_per_epoch = c.onset;
    cfg.blockage_clear_probability = c.clear;
    return cfg;
  }

  LinkEvolution make(const EvolutionConfig& cfg) const {
    const EvolutionCase& c = GetParam();
    return LinkEvolution(ArrayGeometry::upa(2, 2),
                         ArrayGeometry::upa(4, 4), base_paths(), cfg,
                         c.seed, randgen::lanes::temporal_lane(1), c.user);
  }
};

TEST_P(EvolutionProperty, DriftRmsScalesLinearlyWithSpeed) {
  // After E epochs the cumulative drift is N(0, E·σ²) with σ =
  // drift_rad_per_meter·v·τ — doubling v must double the realized RMS.
  // Same stream keys at both speeds → identical standard normals, so the
  // ratio is EXACT (the scaling is deterministic given the draws).
  EvolutionConfig cfg = config();
  cfg.blockage_onset_per_epoch = 0.0;
  LinkEvolution evo = make(cfg);
  EvolutionConfig doubled = cfg;
  doubled.speed_mps = 2.0 * cfg.speed_mps;
  LinkEvolution evo2 = make(doubled);
  const index_t epochs = 32;
  evo.seek(epochs);
  evo2.seek(epochs);
  real sum = 0.0, sum2 = 0.0;
  for (index_t l = 0; l < base_paths().size(); ++l) {
    sum += evo.aoa_azimuth_drift(l) * evo.aoa_azimuth_drift(l);
    sum2 += evo2.aoa_azimuth_drift(l) * evo2.aoa_azimuth_drift(l);
  }
  const real rms = std::sqrt(sum), rms2 = std::sqrt(sum2);
  if (rms > 0.0) EXPECT_NEAR(rms2 / rms, 2.0, 1e-9);
  // And the magnitude is in statistical range: |drift| ≤ 6σ√E.
  const real bound = 6.0 * cfg.drift_std_rad() * std::sqrt(
                               static_cast<real>(epochs));
  EXPECT_LE(rms, bound * std::sqrt(2.0));
}

TEST_P(EvolutionProperty, BlockageDutyCycleMatchesStationaryChain) {
  // Long-run blocked fraction of the on/off chain → p_on/(p_on + p_off).
  const EvolutionCase& c = GetParam();
  EvolutionConfig cfg = config();
  LinkEvolution evo = make(cfg);
  const index_t epochs = 4000;
  index_t blocked = 0;
  for (index_t e = 1; e <= epochs; ++e) {
    evo.seek(e);
    if (evo.blocked()) ++blocked;
  }
  const real duty = static_cast<real>(blocked) / static_cast<real>(epochs);
  const real expected = c.onset / (c.onset + c.clear);
  // Binomial-ish tolerance with correlated samples: generous 5σ of an
  // effective sample count epochs·(onset + clear)/2.
  const real eff = static_cast<real>(epochs) * (c.onset + c.clear) / 2.0;
  const real tol =
      5.0 * std::sqrt(expected * (1.0 - expected) / eff) + 0.01;
  EXPECT_NEAR(duty, expected, tol);
}

TEST_P(EvolutionProperty, ReplayIsBitIdentical) {
  LinkEvolution a = make(config());
  LinkEvolution b = make(config());
  for (index_t e = 1; e <= 24; ++e) {
    a.seek(e);
    b.seek(e);
    ASSERT_EQ(a.blocked(), b.blocked()) << "epoch " << e;
    const Link la = a.current(), lb = b.current();
    for (index_t l = 0; l < la.paths().size(); ++l) {
      // Bit-identical, not approximately equal.
      ASSERT_EQ(la.paths()[l].power, lb.paths()[l].power);
      ASSERT_EQ(la.paths()[l].aoa.azimuth, lb.paths()[l].aoa.azimuth);
      ASSERT_EQ(la.paths()[l].aoa.elevation, lb.paths()[l].aoa.elevation);
      ASSERT_EQ(la.paths()[l].aod.azimuth, lb.paths()[l].aod.azimuth);
      ASSERT_EQ(la.paths()[l].aod.elevation, lb.paths()[l].aod.elevation);
    }
  }
}

TEST_P(EvolutionProperty, SeekOrderIndependence) {
  // Visiting epochs in a scrambled order must land each visit on the same
  // state as a fresh monotone instance — backward seeks replay exactly.
  const index_t visits[] = {12, 3, 20, 20, 7, 15, 1, 18, 0, 9};
  LinkEvolution scrambled = make(config());
  for (const index_t e : visits) {
    scrambled.seek(e);
    LinkEvolution fresh = make(config());
    fresh.seek(e);
    ASSERT_EQ(scrambled.blocked(), fresh.blocked()) << "epoch " << e;
    const Link ls = scrambled.current(), lf = fresh.current();
    for (index_t l = 0; l < ls.paths().size(); ++l) {
      ASSERT_EQ(ls.paths()[l].power, lf.paths()[l].power) << "epoch " << e;
      ASSERT_EQ(ls.paths()[l].aoa.azimuth, lf.paths()[l].aoa.azimuth);
      ASSERT_EQ(ls.paths()[l].aod.azimuth, lf.paths()[l].aod.azimuth);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvolutionProperty,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace mmw::channel
