// Property sweeps over the channel simulator: second-order consistency of
// every generator across seeds and configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/models.h"
#include "linalg/eig.h"

namespace mmw::channel {
namespace {

using antenna::ArrayGeometry;
using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

struct ChannelCase {
  bool multipath;
  index_t tx_n, rx_n;  // square UPA side lengths
  std::uint64_t seed;
};

void PrintTo(const ChannelCase& c, std::ostream* os) {
  *os << (c.multipath ? "nyc" : "single") << "_tx" << c.tx_n << "_rx"
      << c.rx_n << "_seed" << c.seed;
}

class ChannelProperty : public ::testing::TestWithParam<ChannelCase> {
 protected:
  Link make_link(Rng& rng) const {
    const auto& p = GetParam();
    const auto tx = ArrayGeometry::upa(p.tx_n, p.tx_n);
    const auto rx = ArrayGeometry::upa(p.rx_n, p.rx_n);
    return p.multipath ? make_nyc_multipath_link(tx, rx, rng)
                       : make_single_path_link(tx, rx, rng);
  }
};

TEST_P(ChannelProperty, UnitTotalPowerAndPsdCovariance) {
  Rng rng(GetParam().seed);
  const Link link = make_link(rng);
  EXPECT_NEAR(link.total_power(), 1.0, 1e-9);
  const Matrix q = link.rx_covariance();
  EXPECT_TRUE(q.is_hermitian(1e-9 * (1.0 + q.max_abs())));
  const auto eig = linalg::hermitian_eig(q);
  for (const real e : eig.eigenvalues)
    EXPECT_GE(e, -1e-7 * (1.0 + eig.eigenvalues[0]));
}

TEST_P(ChannelProperty, CovarianceTraceIsArrayGainTimesPower) {
  // tr(Q) = NM·Σp_l·‖a_rx‖² = NM (unit powers, unit-norm steering).
  Rng rng(GetParam().seed + 1);
  const Link link = make_link(rng);
  const real nm = static_cast<real>(link.tx_size() * link.rx_size());
  EXPECT_NEAR(link.rx_covariance().trace().real(), nm, 1e-6 * nm);
}

TEST_P(ChannelProperty, BeamCovarianceDominatedByFullCovariance) {
  // Q_u ⪯ Q for any unit-norm u (couplings |a_txᴴu|² ≤ 1).
  Rng rng(GetParam().seed + 2);
  const Link link = make_link(rng);
  const Vector u = rng.random_unit_vector(link.tx_size());
  const Matrix diff =
      link.rx_covariance() - link.rx_covariance_for_beam(u);
  const auto eig = linalg::hermitian_eig(diff);
  for (const real e : eig.eigenvalues)
    EXPECT_GE(e, -1e-7 * (1.0 + std::abs(eig.eigenvalues[0])));
}

TEST_P(ChannelProperty, EffectiveChannelSecondMomentMatchesQu) {
  Rng rng(GetParam().seed + 3);
  const Link link = make_link(rng);
  const Vector u = rng.random_unit_vector(link.tx_size());
  const Matrix qu = link.rx_covariance_for_beam(u);
  const index_t n = link.rx_size();
  Matrix acc(n, n);
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    const Vector h = link.draw_effective_channel(u, rng);
    acc += Matrix::outer(h, h);
  }
  acc /= cx{static_cast<real>(trials), 0.0};
  EXPECT_LT((acc - qu).frobenius_norm(),
            0.35 * (1.0 + qu.frobenius_norm()));
}

TEST_P(ChannelProperty, MeanPairGainBoundedByFullArrayGain) {
  Rng rng(GetParam().seed + 4);
  const Link link = make_link(rng);
  const real nm = static_cast<real>(link.tx_size() * link.rx_size());
  for (int t = 0; t < 20; ++t) {
    const real g = link.mean_pair_gain(rng.random_unit_vector(link.tx_size()),
                                       rng.random_unit_vector(link.rx_size()));
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, nm * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ChannelProperty,
    ::testing::Values(ChannelCase{false, 2, 2, 1}, ChannelCase{false, 4, 4, 2},
                      ChannelCase{false, 2, 4, 3}, ChannelCase{true, 2, 2, 4},
                      ChannelCase{true, 4, 4, 5}, ChannelCase{true, 2, 4, 6},
                      ChannelCase{true, 4, 8, 7}));

}  // namespace
}  // namespace mmw::channel
