// track::run_tracking — the E10 engine. The load-bearing contracts:
// rendered CSVs are byte-identical across thread counts and obs on/off,
// handovers fire under mobility (and identically for every tracker), and
// the warm trackers spend fewer probes than the cold-start baseline at
// pedestrian speed (the tracking layer's reason to exist).
#include "track/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace mmw::track {
namespace {

TrackingConfig tiny_config() {
  TrackingConfig cfg;
  cfg.scenario.channel = sim::ChannelKind::kNycMultipath;
  cfg.scenario.tx_grid_x = 2;
  cfg.scenario.tx_grid_y = 2;
  cfg.scenario.rx_grid_x = 4;
  cfg.scenario.rx_grid_y = 4;
  cfg.scenario.fades_per_measurement = 4;
  cfg.scenario.gamma = 1000.0;
  cfg.scenario.seed = 20160610;
  cfg.topology.cells = 7;
  cfg.topology.cell_radius_m = 100.0;
  cfg.users = 4;
  cfg.epochs = 16;
  cfg.warmup_epochs = 4;
  cfg.mobility.speed_mps = 1.4;
  cfg.evolution.shadow_sigma_db = 2.0;
  cfg.evolution.blockage_onset_per_meter = 0.002;
  return cfg;
}

const std::vector<TrackerKind> kAllKinds{
    TrackerKind::kColdStart, TrackerKind::kWarmMl,
    TrackerKind::kNeighborhood, TrackerKind::kBanditUcb};

std::string csv_at_threads(TrackingConfig cfg, index_t threads) {
  cfg.scenario.threads = threads;
  const TrackingResult r = run_tracking(cfg, kAllKinds);
  return render_tracking_csv("speed_mps", {cfg.mobility.speed_mps}, {r});
}

TEST(TrackingEngineTest, CsvByteIdenticalAcrossThreadCounts) {
  const TrackingConfig cfg = tiny_config();
  const std::string serial = csv_at_threads(cfg, 1);
  EXPECT_EQ(csv_at_threads(cfg, 2), serial);
  EXPECT_EQ(csv_at_threads(cfg, 4), serial);
  EXPECT_EQ(csv_at_threads(cfg, 0), serial);  // auto
}

TEST(TrackingEngineTest, CsvByteIdenticalAcrossObsToggle) {
  const TrackingConfig cfg = tiny_config();
  const bool was = obs::enabled();
  obs::set_enabled(true);
  const std::string on = csv_at_threads(cfg, 2);
  obs::set_enabled(false);
  const std::string off = csv_at_threads(cfg, 2);
  obs::set_enabled(was);
  EXPECT_EQ(on, off);
}

TEST(TrackingEngineTest, ResultShapeMatchesRequest) {
  const TrackingConfig cfg = tiny_config();
  const TrackingResult r = run_tracking(cfg, kAllKinds);
  ASSERT_EQ(r.trackers.size(), kAllKinds.size());
  EXPECT_EQ(r.trackers[0].name, "cold_start");
  EXPECT_EQ(r.trackers[1].name, "warm_ml");
  EXPECT_EQ(r.trackers[2].name, "neighborhood");
  EXPECT_EQ(r.trackers[3].name, "bandit_ucb");
  const std::uint64_t steady =
      static_cast<std::uint64_t>(cfg.users) *
      (cfg.epochs - cfg.warmup_epochs);
  for (const TrackerCaseResult& t : r.trackers) {
    SCOPED_TRACE(t.name);
    EXPECT_EQ(t.steady_epochs, steady);
    EXPECT_GE(t.mean_loss_db, 0.0);
    EXPECT_LE(t.p50_loss_db, t.p99_loss_db + 1e-9);
    EXPECT_LE(t.p99_loss_db, t.max_loss_db + 1e-9);
    EXPECT_GT(t.probes_total, 0u);
    EXPECT_GE(t.realign_rate, 0.0);
    EXPECT_LE(t.realign_rate, 1.0);
    EXPECT_GE(t.outage_rate, 0.0);
    EXPECT_LE(t.outage_rate, 1.0);
  }
  // Cold start re-aligns by definition every epoch.
  EXPECT_DOUBLE_EQ(r.trackers[0].realign_rate, 1.0);
}

TEST(TrackingEngineTest, WarmTrackersBeatColdStartProbeBudget) {
  // The acceptance claim of ISSUE 10, at pedestrian speed: warm-start and
  // bandit tracking spend strictly fewer probes per epoch than re-aligning
  // from scratch.
  TrackingConfig cfg = tiny_config();
  cfg.epochs = 24;
  cfg.warmup_epochs = 8;
  const TrackingResult r = run_tracking(cfg, kAllKinds);
  const real cold = r.trackers[0].probes_per_epoch;
  EXPECT_LT(r.trackers[1].probes_per_epoch, cold) << "warm_ml";
  EXPECT_LT(r.trackers[3].probes_per_epoch, cold) << "bandit_ucb";
}

TEST(TrackingEngineTest, MobilityDrivesHandovers) {
  // At train speed over a multi-site deployment some user crosses a cell
  // boundary within the run; at zero speed nobody can.
  TrackingConfig cfg = tiny_config();
  cfg.mobility.speed_mps = 33.3;
  cfg.epochs = 32;
  cfg.warmup_epochs = 8;
  cfg.users = 6;
  const TrackingResult moving =
      run_tracking(cfg, {TrackerKind::kNeighborhood});
  EXPECT_GT(moving.handovers_per_user, 0.0);

  cfg.mobility.speed_mps = 0.0;
  cfg.evolution.speed_mps = 0.0;
  const TrackingResult still =
      run_tracking(cfg, {TrackerKind::kNeighborhood});
  EXPECT_DOUBLE_EQ(still.handovers_per_user, 0.0);
}

TEST(TrackingEngineTest, RepeatRunsAreDeterministic) {
  const TrackingConfig cfg = tiny_config();
  const TrackingResult a = run_tracking(cfg, kAllKinds);
  const TrackingResult b = run_tracking(cfg, kAllKinds);
  ASSERT_EQ(a.trackers.size(), b.trackers.size());
  EXPECT_EQ(a.handovers_per_user, b.handovers_per_user);
  for (std::size_t i = 0; i < a.trackers.size(); ++i) {
    EXPECT_EQ(a.trackers[i].mean_loss_db, b.trackers[i].mean_loss_db);
    EXPECT_EQ(a.trackers[i].p99_loss_db, b.trackers[i].p99_loss_db);
    EXPECT_EQ(a.trackers[i].probes_total, b.trackers[i].probes_total);
    EXPECT_EQ(a.trackers[i].realign_rate, b.trackers[i].realign_rate);
  }
}

TEST(TrackingEngineTest, CsvShapeAndHeader) {
  const TrackingConfig cfg = tiny_config();
  const TrackingResult r = run_tracking(cfg, {TrackerKind::kWarmMl});
  const std::string csv =
      render_tracking_csv("speed_mps", {1.4}, {r});
  EXPECT_EQ(csv.find("speed_mps,warm_ml_loss_db,warm_ml_p99_loss_db,"
                     "warm_ml_realign_rate,warm_ml_probes_per_epoch,"
                     "handovers_per_user\n"),
            0u);
  // One header + one data row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(TrackingEngineTest, ObsMetricsPublishOnceFromMergedTotals) {
  const bool was = obs::enabled();
  obs::set_enabled(true);
  auto& reg = obs::Registry::global();
  const obs::MetricsSnapshot before = reg.snapshot();
  const auto counter_of = [](const obs::MetricsSnapshot& s,
                             const char* name) -> std::uint64_t {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second.value;
  };
  const std::uint64_t epochs_before = counter_of(before, "track.epochs");
  const std::uint64_t probes_before = counter_of(before, "track.probes");
  const TrackingConfig cfg = tiny_config();
  const TrackingResult r = run_tracking(cfg, kAllKinds);
  const obs::MetricsSnapshot after = reg.snapshot();
  const std::uint64_t epochs_after = counter_of(after, "track.epochs");
  const std::uint64_t probes_after = counter_of(after, "track.probes");
  obs::set_enabled(was);
  EXPECT_EQ(epochs_after - epochs_before,
            static_cast<std::uint64_t>(cfg.users) * cfg.epochs *
                kAllKinds.size());
  std::uint64_t probes_total = 0;
  for (const TrackerCaseResult& t : r.trackers) probes_total += t.probes_total;
  EXPECT_EQ(probes_after - probes_before, probes_total);
}

TEST(TrackingEngineTest, ValidatesConfig) {
  TrackingConfig cfg = tiny_config();
  cfg.users = 0;
  EXPECT_THROW(run_tracking(cfg, kAllKinds), precondition_error);
  cfg = tiny_config();
  cfg.warmup_epochs = cfg.epochs;
  EXPECT_THROW(run_tracking(cfg, kAllKinds), precondition_error);
  cfg = tiny_config();
  EXPECT_THROW(run_tracking(cfg, {}), precondition_error);
}

}  // namespace
}  // namespace mmw::track
