// Tracker strategies (src/track/tracker.h): per-kind probe budgets,
// collapse/outage behavior, determinism, and the handover wire-format
// round-trip (export_state → import_state → export_state must reproduce
// the beam-space components byte for byte).
#include "track/tracker.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mac/probe.h"
#include "sim/scenario.h"
#include "track/policy.h"

namespace mmw::track {
namespace {

using randgen::Rng;

struct Rig {
  sim::Scenario sc;
  sim::CodebookPair books;
  channel::Link link;

  explicit Rig(std::uint64_t seed = 99)
      : sc(make_scenario()),
        books(sim::make_scenario_codebooks(sc)),
        link(make_link(sc, seed)) {}

  static sim::Scenario make_scenario() {
    sim::Scenario sc;
    sc.channel = sim::ChannelKind::kSinglePath;
    sc.tx_grid_x = 2;
    sc.tx_grid_y = 2;
    sc.rx_grid_x = 4;
    sc.rx_grid_y = 4;
    sc.gamma = 10000.0;  // probe noise well below the aligned peak
    return sc;
  }

  static channel::Link make_link(const sim::Scenario& sc,
                                 std::uint64_t seed) {
    Rng rng(seed);
    return sim::make_scenario_link(sc, rng);
  }

  TrackerContext context(Rng& rng) const {
    TrackerContext ctx;
    ctx.link = &link;
    ctx.tx_codebook = &books.tx;
    ctx.rx_codebook = &books.rx;
    ctx.gamma = sc.gamma;
    ctx.fades = 64;  // average fading down so argmaxes are stable
    ctx.rng = &rng;
    return ctx;
  }

  index_t pairs() const { return books.tx.size() * books.rx.size(); }

  real oracle_gain() const {
    real best = 0.0;
    for (index_t t = 0; t < books.tx.size(); ++t)
      for (index_t r = 0; r < books.rx.size(); ++r)
        best = std::max(best, link.mean_pair_gain(books.tx.codeword(t),
                                                  books.rx.codeword(r)));
    return best;
  }

  real pair_gain(index_t t, index_t r) const {
    return link.mean_pair_gain(books.tx.codeword(t), books.rx.codeword(r));
  }
};

real loss_db(const Rig& rig, index_t t, index_t r) {
  return 10.0 * std::log10(rig.oracle_gain() /
                           std::max(rig.pair_gain(t, r), real(1e-12)));
}

TEST(TrackerFactoryTest, NamesMatchKinds) {
  EXPECT_STREQ(tracker_name(TrackerKind::kColdStart), "cold_start");
  EXPECT_STREQ(tracker_name(TrackerKind::kWarmMl), "warm_ml");
  EXPECT_STREQ(tracker_name(TrackerKind::kNeighborhood), "neighborhood");
  EXPECT_STREQ(tracker_name(TrackerKind::kBanditUcb), "bandit_ucb");
  for (const TrackerKind k :
       {TrackerKind::kColdStart, TrackerKind::kWarmMl,
        TrackerKind::kNeighborhood, TrackerKind::kBanditUcb}) {
    const auto tracker = make_tracker(k, TrackerOptions{});
    ASSERT_NE(tracker, nullptr);
    EXPECT_EQ(tracker->name(), tracker_name(k));
  }
}

TEST(ColdStartTrackerTest, SweepsEveryEpochAndFindsAGoodPair) {
  const Rig rig;
  auto tracker = make_tracker(TrackerKind::kColdStart, TrackerOptions{});
  tracker->reset();
  Rng rng = Rng::stream(1, 2, 3, 4);
  for (index_t e = 0; e < 3; ++e) {
    const TrackerContext ctx = rig.context(rng);
    const TrackerReport r = tracker->step(ctx);
    EXPECT_EQ(r.probes, rig.pairs());
    EXPECT_TRUE(r.realigned);
    EXPECT_LE(loss_db(rig, r.tx_beam, r.rx_beam), 3.0);
  }
}

TEST(WarmMlTrackerTest, SteadyStateIsOneVerifyProbe) {
  const Rig rig;
  auto tracker = make_tracker(TrackerKind::kWarmMl, TrackerOptions{});
  tracker->reset();
  Rng rng = Rng::stream(2, 3, 4, 5);
  // Bootstrap epoch: a full acquisition sweep.
  TrackerContext ctx = rig.context(rng);
  TrackerReport r = tracker->step(ctx);
  EXPECT_TRUE(r.realigned);
  EXPECT_EQ(r.probes, rig.pairs());
  // Steady state: one probe, no re-alignment, stable claim.
  for (index_t e = 0; e < 4; ++e) {
    r = tracker->step(ctx);
    EXPECT_EQ(r.probes, 1u);
    EXPECT_FALSE(r.realigned);
    EXPECT_FALSE(r.outage);
  }
  EXPECT_LE(loss_db(rig, r.tx_beam, r.rx_beam), 3.0);
}

TEST(WarmMlTrackerTest, CollapseTriggersOutageAndWarmReentry) {
  const Rig rig;
  TrackerOptions opt;
  auto tracker = make_tracker(TrackerKind::kWarmMl, opt);
  tracker->reset();
  Rng rng = Rng::stream(3, 4, 5, 6);
  TrackerContext ctx = rig.context(rng);
  (void)tracker->step(ctx);  // bootstrap

  // Collapse the channel: same geometry, dominant power crushed 40 dB.
  std::vector<channel::Path> paths = rig.link.paths();
  for (channel::Path& p : paths) p.power *= 1e-4;
  const channel::Link blocked(antenna::ArrayGeometry::upa(2, 2),
                              antenna::ArrayGeometry::upa(4, 4), paths);
  TrackerContext down = ctx;
  down.link = &blocked;
  const TrackerReport r = tracker->step(down);
  EXPECT_TRUE(r.outage);
  EXPECT_EQ(r.probes, 1u);  // the verify probe that failed

  // Re-entry epochs spend warm alignment slots, not full sweeps.
  const TrackerReport re = tracker->step(ctx);
  EXPECT_TRUE(re.realigned);
  EXPECT_LT(re.probes, rig.pairs());
  EXPECT_GT(re.probes, 0u);
}

TEST(NeighborhoodTrackerTest, CollapseEscalatesWindowThenFullSweep) {
  const Rig rig;
  TrackerOptions opt;
  auto tracker = make_tracker(TrackerKind::kNeighborhood, opt);
  tracker->reset();
  Rng rng = Rng::stream(4, 5, 6, 7);
  TrackerContext ctx = rig.context(rng);
  TrackerReport r = tracker->step(ctx);  // acquisition sweep
  EXPECT_EQ(r.probes, rig.pairs());
  r = tracker->step(ctx);  // steady verify
  EXPECT_EQ(r.probes, 1u);
  EXPECT_FALSE(r.outage);

  // A 40 dB collapse the window cannot explain: the widening scan runs,
  // finds nothing above threshold, and escalates to the full-sweep
  // fallback — so probes exceed a bare sweep (verify + window + sweep).
  std::vector<channel::Path> paths = rig.link.paths();
  for (channel::Path& p : paths) p.power *= 1e-4;
  const channel::Link blocked(antenna::ArrayGeometry::upa(2, 2),
                              antenna::ArrayGeometry::upa(4, 4), paths);
  TrackerContext down = ctx;
  down.link = &blocked;
  const TrackerReport out = tracker->step(down);
  EXPECT_TRUE(out.outage);
  EXPECT_TRUE(out.realigned);
  EXPECT_GT(out.probes, rig.pairs());
}

TEST(BanditTrackerTest, SteadyStateSpendsBanditProbes) {
  const Rig rig;
  TrackerOptions opt;
  opt.bandit_probes = 2;
  auto tracker = make_tracker(TrackerKind::kBanditUcb, opt);
  tracker->reset();
  Rng rng = Rng::stream(5, 6, 7, 8);
  TrackerContext ctx = rig.context(rng);
  TrackerReport r = tracker->step(ctx);  // seeding sweep
  EXPECT_EQ(r.probes, rig.pairs());
  for (index_t e = 0; e < 6; ++e) {
    r = tracker->step(ctx);
    EXPECT_EQ(r.probes, 2u);
  }
  EXPECT_LE(loss_db(rig, r.tx_beam, r.rx_beam), 6.0);
}

TEST(TrackerDeterminismTest, IdenticalStreamsYieldIdenticalRuns) {
  const Rig rig;
  for (const TrackerKind k :
       {TrackerKind::kColdStart, TrackerKind::kWarmMl,
        TrackerKind::kNeighborhood, TrackerKind::kBanditUcb}) {
    SCOPED_TRACE(tracker_name(k));
    auto a = make_tracker(k, TrackerOptions{});
    auto b = make_tracker(k, TrackerOptions{});
    a->reset();
    b->reset();
    for (index_t e = 0; e < 8; ++e) {
      // The engine's stream discipline: a fresh epoch-keyed Rng per step.
      Rng ra = Rng::stream(7, 1, 2, e);
      Rng rb = Rng::stream(7, 1, 2, e);
      const TrackerContext ca = rig.context(ra);
      const TrackerContext cb = rig.context(rb);
      const TrackerReport x = a->step(ca);
      const TrackerReport y = b->step(cb);
      ASSERT_EQ(x.tx_beam, y.tx_beam) << "epoch " << e;
      ASSERT_EQ(x.rx_beam, y.rx_beam) << "epoch " << e;
      ASSERT_EQ(x.probes, y.probes) << "epoch " << e;
      ASSERT_EQ(x.realigned, y.realigned) << "epoch " << e;
      ASSERT_EQ(x.outage, y.outage) << "epoch " << e;
    }
    const BeamState sa = a->export_state();
    const BeamState sb = b->export_state();
    ASSERT_EQ(sa.components.size(), sb.components.size());
    if (!sa.components.empty())
      EXPECT_EQ(std::memcmp(sa.components.data(), sb.components.data(),
                            sa.components.size() *
                                sizeof(estimation::BeamComponent)),
                0);
  }
}

TEST(TrackerHandoverTest, ExportImportExportIsByteStable) {
  // The codec round-trip invariant: importing an exported state and
  // exporting again reproduces the component list byte for byte (tx/rx
  // carry over too; trained energy intentionally resets to a hypothesis).
  const Rig rig;
  for (const TrackerKind k :
       {TrackerKind::kColdStart, TrackerKind::kWarmMl,
        TrackerKind::kNeighborhood, TrackerKind::kBanditUcb}) {
    SCOPED_TRACE(tracker_name(k));
    auto source = make_tracker(k, TrackerOptions{});
    source->reset();
    Rng rng = Rng::stream(11, 1, 2, 3);
    for (index_t e = 0; e < 3; ++e) {
      Rng step_rng = Rng::stream(11, 1, 2, e);
      const TrackerContext ctx = rig.context(step_rng);
      (void)source->step(ctx);
    }
    const BeamState exported = source->export_state();
    ASSERT_FALSE(exported.components.empty());
    // Canonical form: ascending beams, positive weights.
    for (std::size_t i = 0; i + 1 < exported.components.size(); ++i)
      EXPECT_LT(exported.components[i].beam,
                exported.components[i + 1].beam);
    for (const estimation::BeamComponent& c : exported.components)
      EXPECT_GT(c.weight, 0.0f);

    auto target = make_tracker(k, TrackerOptions{});
    target->reset();
    target->import_state(exported);
    const BeamState round = target->export_state();
    EXPECT_EQ(round.tx_beam, exported.tx_beam);
    EXPECT_EQ(round.rx_beam, exported.rx_beam);
    ASSERT_EQ(round.components.size(), exported.components.size());
    EXPECT_EQ(std::memcmp(round.components.data(),
                          exported.components.data(),
                          round.components.size() *
                              sizeof(estimation::BeamComponent)),
              0);
  }
}

TEST(TrackerHandoverTest, ImportedPriorIsAHypothesisNotAClaim) {
  // A tracker re-entering from a carried state must re-verify before
  // trusting the pair: the first post-import step spends probes.
  const Rig rig;
  for (const TrackerKind k :
       {TrackerKind::kWarmMl, TrackerKind::kNeighborhood,
        TrackerKind::kBanditUcb}) {
    SCOPED_TRACE(tracker_name(k));
    auto source = make_tracker(k, TrackerOptions{});
    source->reset();
    Rng boot = Rng::stream(13, 1, 2, 0);
    TrackerContext ctx = rig.context(boot);
    (void)source->step(ctx);

    auto target = make_tracker(k, TrackerOptions{});
    target->reset();
    target->import_state(source->export_state());
    Rng rng = Rng::stream(13, 1, 2, 1);
    TrackerContext re = rig.context(rng);
    const TrackerReport r = target->step(re);
    EXPECT_GT(r.probes, 0u);
    // And no full cold sweep either — the prior is supposed to save that
    // (cold_start excluded above: re-sweeping is its contract).
    EXPECT_LT(r.probes, rig.pairs());
  }
}

TEST(TrackerPolicyTest, CursorProbesMatchLegacySweepShape) {
  // append_cursor_probes is the serving engine's historical RX-fill loop;
  // PR-9 byte-compatibility rides on this exact sequence.
  std::vector<index_t> out;
  append_cursor_probes(5, 0, 8, 3, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 5u);  // (5 + 0) % 8
  EXPECT_EQ(out[1], 6u);
  EXPECT_EQ(out[2], 7u);
  out.clear();
  append_cursor_probes(6, 6, 8, 2, out);
  EXPECT_EQ(out[0], 4u);  // (6 + 6) % 8
  EXPECT_EQ(out[1], 5u);
}

TEST(TrackerPolicyTest, NeighborhoodProbesWidenSymmetrically) {
  std::vector<index_t> out;
  append_neighborhood_probes(4, 2, 16, 5, out);
  const std::vector<index_t> expected{4, 3, 5, 2, 6};
  EXPECT_EQ(out, expected);
  out.clear();
  // Wrapping at the edge, deduplicated.
  append_neighborhood_probes(0, 2, 16, 5, out);
  const std::vector<index_t> wrapped{0, 15, 1, 14, 2};
  EXPECT_EQ(out, wrapped);
}

TEST(TrackerPolicyTest, SpreadProbesAreDeterministicAndInRange) {
  std::vector<index_t> a, b;
  append_spread_probes(42, 7, 16, 4, a);
  append_spread_probes(42, 7, 16, 4, b);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 4u);
  for (const index_t v : a) EXPECT_LT(v, 16u);
  // No duplicates.
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = i + 1; j < a.size(); ++j)
      EXPECT_NE(a[i], a[j]);
}

}  // namespace
}  // namespace mmw::track
