#include "antenna/pattern.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmw::antenna {
namespace {

TEST(AzimuthCutTest, SamplesCoverRangeAndPeakAtSteeredDirection) {
  const auto geo = ArrayGeometry::upa(8, 8);
  const Direction steer{0.3, 0.0};
  const auto w = steering_vector(geo, steer);
  const auto cut = azimuth_cut(geo, w, 0.0, 721);
  EXPECT_EQ(cut.size(), 721u);
  EXPECT_NEAR(cut.front().azimuth, -M_PI / 2, 1e-12);
  EXPECT_NEAR(cut.back().azimuth, M_PI / 2, 1e-12);
  // Peak near the steered azimuth with full array gain.
  index_t best = 0;
  for (index_t k = 1; k < cut.size(); ++k)
    if (cut[k].gain > cut[best].gain) best = k;
  EXPECT_NEAR(cut[best].azimuth, 0.3, 0.01);
  EXPECT_NEAR(cut[best].gain, 64.0, 0.5);
}

TEST(AzimuthCutTest, Validation) {
  const auto geo = ArrayGeometry::upa(2, 2);
  const auto w = steering_vector(geo, {0.0, 0.0});
  EXPECT_THROW(azimuth_cut(geo, w, 0.0, 1), precondition_error);
  EXPECT_THROW(azimuth_cut(geo, w, 0.0, 10, 1.0, 0.0), precondition_error);
  EXPECT_THROW(azimuth_cut(geo, linalg::Vector(3), 0.0), precondition_error);
}

TEST(BeamwidthTest, MatchesUlaRuleOfThumb) {
  // Half-power beamwidth of an N-element λ/2 broadside ULA ≈ 0.886·2/N rad
  // in sin-space; at boresight sin≈angle, so ≈ 1.772/N.
  for (const index_t n : {index_t{8}, index_t{16}, index_t{32}}) {
    const auto geo = ArrayGeometry::ula(n);
    const auto w = steering_vector(geo, {0.0, 0.0});
    const auto cut = azimuth_cut(geo, w, 0.0, 2001);
    const real hpbw = half_power_beamwidth(cut);
    EXPECT_NEAR(hpbw, 1.772 / static_cast<real>(n),
                0.2 * 1.772 / static_cast<real>(n))
        << "n=" << n;
  }
}

TEST(BeamwidthTest, LargerArrayIsNarrower) {
  const auto small = ArrayGeometry::ula(4);
  const auto big = ArrayGeometry::ula(32);
  const real w_small = half_power_beamwidth(
      azimuth_cut(small, steering_vector(small, {0.0, 0.0}), 0.0, 1001));
  const real w_big = half_power_beamwidth(
      azimuth_cut(big, steering_vector(big, {0.0, 0.0}), 0.0, 1001));
  EXPECT_GT(w_small, 4.0 * w_big);
}

TEST(BeamwidthTest, TooWideLobeRejected) {
  // A single antenna is omnidirectional: no −3 dB crossing exists.
  const auto geo = ArrayGeometry::ula(1);
  const auto w = steering_vector(geo, {0.0, 0.0});
  EXPECT_THROW(half_power_beamwidth(azimuth_cut(geo, w, 0.0, 101)),
               precondition_error);
}

TEST(SidelobeTest, UniformUlaSidelobeNearMinus13Db) {
  // The first sidelobe of a uniform linear aperture sits ≈ −13.3 dB.
  const auto geo = ArrayGeometry::ula(32);
  const auto w = steering_vector(geo, {0.0, 0.0});
  const auto cut = azimuth_cut(geo, w, 0.0, 4001);
  const real sll = peak_sidelobe_level_db(cut);
  EXPECT_NEAR(sll, -13.3, 1.0);
}

TEST(SidelobeTest, OmniPatternHasNoSidelobe) {
  const auto geo = ArrayGeometry::ula(1);
  const auto w = steering_vector(geo, {0.0, 0.0});
  const auto cut = azimuth_cut(geo, w, 0.0, 101);
  EXPECT_TRUE(std::isinf(peak_sidelobe_level_db(cut)));
}

TEST(CoverageTest, DenserCodebookCoversBetter) {
  const auto geo = ArrayGeometry::upa(4, 4);
  const real az = M_PI / 3, el = M_PI / 6;
  const auto sparse = Codebook::angular_grid(geo, 4, 4, -az, az, -el, el);
  const auto dense = Codebook::angular_grid(geo, 8, 8, -az, az, -el, el);
  const real cov_sparse =
      worst_case_coverage(geo, sparse, -az, az, -el, el, 24, 8);
  const real cov_dense =
      worst_case_coverage(geo, dense, -az, az, -el, el, 24, 8);
  EXPECT_GT(cov_dense, cov_sparse);
  EXPECT_LE(cov_dense, 1.0 + 1e-9);
  EXPECT_GT(cov_sparse, 0.1);
}

TEST(CoverageTest, PerfectCoverageWhenCodebookIsTheGrid) {
  // Evaluating coverage exactly on the codebook's own directions gives 1.
  const auto geo = ArrayGeometry::upa(4, 4);
  const real az = 0.8, el = 0.3;
  const auto cb = Codebook::angular_grid(geo, 5, 3, -az, az, -el, el);
  const real cov = worst_case_coverage(geo, cb, -az, az, -el, el, 5, 3);
  EXPECT_NEAR(cov, 1.0, 1e-9);
}

TEST(CoverageTest, Validation) {
  const auto geo = ArrayGeometry::upa(2, 2);
  const auto cb = Codebook::dft(geo);
  EXPECT_THROW(worst_case_coverage(geo, cb, 1.0, -1.0, 0.0, 0.0),
               precondition_error);
  EXPECT_THROW(worst_case_coverage(geo, cb, -1.0, 1.0, 0.0, 0.0, 1, 1),
               precondition_error);
}

}  // namespace
}  // namespace mmw::antenna
