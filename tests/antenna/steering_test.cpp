#include "antenna/steering.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmw::antenna {
namespace {

TEST(SteeringTest, UnitWaveVectorIsUnitLength) {
  for (const real az : {-1.2, 0.0, 0.7}) {
    for (const real el : {-0.5, 0.0, 0.9}) {
      const Position k = unit_wave_vector({az, el});
      EXPECT_NEAR(k.x * k.x + k.y * k.y + k.z * k.z, 1.0, 1e-12);
    }
  }
}

TEST(SteeringTest, BoresightHasUniformPhase) {
  // (0, 0) is boresight, perpendicular to the x–y array plane, so all
  // elements are in phase.
  const auto upa = ArrayGeometry::upa(4, 4);
  const auto a = steering_vector(upa, {0.0, 0.0});
  for (index_t i = 1; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - a[0]), 0.0, 1e-12);
}

TEST(SteeringTest, SteeringVectorIsUnitNorm) {
  const auto upa = ArrayGeometry::upa(8, 8);
  for (const real az : {-1.0, 0.3, 1.4}) {
    const auto a = steering_vector(upa, {az, 0.2});
    EXPECT_NEAR(a.norm(), 1.0, 1e-12);
  }
}

TEST(SteeringTest, ElementsHaveEqualMagnitude) {
  const auto ula = ArrayGeometry::ula(16);
  const auto a = steering_vector(ula, {0.8, 0.0});
  const real expected = 1.0 / 4.0;
  for (index_t i = 0; i < 16; ++i)
    EXPECT_NEAR(std::abs(a[i]), expected, 1e-12);
}

TEST(SteeringTest, UlaPhaseProgression) {
  // End-fire direction (az = π/2): the wave vector is along the array's
  // x-axis, so the phase step per element is 2π·d.
  const auto ula = ArrayGeometry::ula(4, 0.25);
  const auto a = steering_vector(ula, {M_PI / 2, 0.0});
  for (index_t i = 1; i < 4; ++i) {
    const cx ratio = a[i] / a[i - 1];
    EXPECT_NEAR(std::arg(ratio), 2.0 * M_PI * 0.25, 1e-10);
  }
}

TEST(SteeringTest, MatchedBeamGainEqualsArraySize) {
  const auto upa = ArrayGeometry::upa(4, 4);
  const Direction dir{0.5, 0.2};
  const auto w = steering_vector(upa, dir);
  EXPECT_NEAR(beam_gain(upa, w, dir), 16.0, 1e-9);
}

TEST(SteeringTest, MismatchedBeamGainIsLower) {
  const auto upa = ArrayGeometry::upa(8, 8);
  const Direction dir{0.5, 0.0};
  const auto w = steering_vector(upa, dir);
  EXPECT_LT(beam_gain(upa, w, {-0.5, 0.0}), 8.0);  // far off the main lobe
}

TEST(SteeringTest, GainShapeMismatchThrows) {
  const auto upa = ArrayGeometry::upa(4, 4);
  EXPECT_THROW(beam_gain(upa, linalg::Vector(8), {0.0, 0.0}),
               precondition_error);
}

TEST(SteeringTest, LargerArrayNarrowsBeam) {
  // Half-power beamwidth shrinks with aperture: compare the gain drop at a
  // fixed small angular offset.
  const Direction boresight{0.0, 0.0};
  const Direction off{0.12, 0.0};
  const auto small = ArrayGeometry::ula(4);
  const auto big = ArrayGeometry::ula(32);
  const real rel_small = beam_gain(small, steering_vector(small, boresight), off) / 4.0;
  const real rel_big = beam_gain(big, steering_vector(big, boresight), off) / 32.0;
  EXPECT_LT(rel_big, rel_small);
}

}  // namespace
}  // namespace mmw::antenna
