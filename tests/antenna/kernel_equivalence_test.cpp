// Scalar ↔ SIMD equivalence of the batched codebook scoring path
// (DESIGN.md §12): seeded sweeps over N ∈ {4, 16, 64, 128} and factor
// widths r ∈ {1..8} asserting BIT-identical scores and IDENTICAL beam
// rankings (including the lowest-index tie-break of DESIGN.md §7) across
// the dispatch tiers, plus score agreement with the historical
// per-codeword formulas.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "antenna/codebook.h"
#include "linalg/factored.h"
#include "linalg/kernels.h"
#include "randgen/rng.h"

namespace mmw::antenna {
namespace {

namespace kernels = linalg::kernels;
using linalg::FactoredHermitian;
using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

ArrayGeometry geometry_for(index_t n) {
  switch (n) {
    case 4: return ArrayGeometry::upa(2, 2);
    case 16: return ArrayGeometry::upa(4, 4);
    case 64: return ArrayGeometry::upa(8, 8);
    default: return ArrayGeometry::upa(16, 8);  // 128
  }
}

/// Random N×r matrix with orthonormal columns (Gram–Schmidt on Gaussians).
Matrix random_orthonormal_basis(Rng& rng, index_t n, index_t r) {
  Matrix b(n, r);
  std::vector<Vector> cols;
  for (index_t k = 0; k < r; ++k) {
    Vector v = rng.complex_gaussian_vector(n);
    for (const Vector& c : cols) v -= linalg::dot(c, v) * c;
    cols.push_back(v.normalized());
    b.set_col(k, cols.back());
  }
  return b;
}

/// Random r×r Hermitian PSD core.
Matrix random_psd_core(Rng& rng, index_t r) {
  const Matrix g = rng.complex_gaussian_matrix(r, r);
  return g * g.adjoint();
}

class CodebookTierEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kernels::cpu_supports_avx2())
      GTEST_SKIP() << "CPU/build has no AVX2 tier to compare against";
  }
  void TearDown() override { kernels::reset_tier_for_testing(); }
};

TEST_F(CodebookTierEquivalenceTest, ScoresAndRankingsIdenticalAcrossTiers) {
  for (const index_t n : {4, 16, 64, 128}) {
    const auto cb = Codebook::dft(geometry_for(n));
    for (index_t r = 1; r <= std::min<index_t>(8, n); ++r) {
      // One deterministic stream per (n, r) cell so any failure pinpoints
      // its sweep coordinates.
      Rng rng(1000 * n + r);
      const FactoredHermitian q(random_orthonormal_basis(rng, n, r),
                                random_psd_core(rng, r));
      std::vector<real> scalar(cb.size());
      std::vector<real> avx2(cb.size());
      kernels::force_tier_for_testing(kernels::Tier::kScalar);
      cb.covariance_scores_into(q, scalar);
      const auto ranking_scalar = cb.top_k_for_covariance(q, cb.size());
      const auto top3_scalar =
          cb.top_k_for_covariance(q, std::min<index_t>(3, cb.size()));
      const index_t best_scalar = cb.best_for_covariance(q);
      kernels::force_tier_for_testing(kernels::Tier::kAvx2);
      cb.covariance_scores_into(q, avx2);
      const auto ranking_avx2 = cb.top_k_for_covariance(q, cb.size());
      const auto top3_avx2 =
          cb.top_k_for_covariance(q, std::min<index_t>(3, cb.size()));
      const index_t best_avx2 = cb.best_for_covariance(q);
      EXPECT_EQ(scalar, avx2) << "n=" << n << " r=" << r;
      EXPECT_EQ(ranking_scalar, ranking_avx2) << "n=" << n << " r=" << r;
      EXPECT_EQ(top3_scalar, top3_avx2) << "n=" << n << " r=" << r;
      EXPECT_EQ(best_scalar, best_avx2) << "n=" << n << " r=" << r;
    }
  }
}

TEST_F(CodebookTierEquivalenceTest, DenseScoresIdenticalAcrossTiers) {
  for (const index_t n : {4, 16, 64}) {
    const auto cb = Codebook::dft(geometry_for(n));
    Rng rng(2000 + n);
    const Matrix g = rng.complex_gaussian_matrix(n, n);
    const Matrix q = g * g.adjoint();
    std::vector<real> scalar(cb.size());
    std::vector<real> avx2(cb.size());
    kernels::force_tier_for_testing(kernels::Tier::kScalar);
    cb.covariance_scores_into(q, scalar);
    kernels::force_tier_for_testing(kernels::Tier::kAvx2);
    cb.covariance_scores_into(q, avx2);
    EXPECT_EQ(scalar, avx2) << "n=" << n;
  }
}

// The batched path must preserve the exact scores of the historical
// per-codeword formulas, so beam selections (and the golden figure CSVs
// they drive) cannot move.
TEST(CodebookBatchedScoringTest, MatchesPerCodewordFormulasBitExact) {
  for (const index_t n : {4, 16, 64}) {
    const auto cb = Codebook::dft(geometry_for(n));
    for (index_t r = 1; r <= std::min<index_t>(8, n); ++r) {
      Rng rng(3000 * n + r);
      const FactoredHermitian q(random_orthonormal_basis(rng, n, r),
                                random_psd_core(rng, r));
      const auto scores = cb.covariance_scores(q);
      for (index_t v = 0; v < cb.size(); ++v)
        EXPECT_EQ(scores[v], q.rayleigh(cb.codeword(v)))
            << "n=" << n << " r=" << r << " v=" << v;
      const auto dense = cb.covariance_scores(q.dense());
      for (index_t v = 0; v < cb.size(); ++v)
        EXPECT_EQ(dense[v], linalg::hermitian_form(cb.codeword(v), q.dense()))
            << "n=" << n << " r=" << r << " v=" << v;
    }
  }
}

// Full-mode estimates (is_full(): implicit identity basis) must score
// identically to the plain dense overload — the factored overload routes
// them to the dense kernel.
TEST(CodebookBatchedScoringTest, FullModeMatchesDenseOverload) {
  const auto cb = Codebook::dft(geometry_for(16));
  Rng rng(4016);
  const Matrix g = rng.complex_gaussian_matrix(16, 16);
  const Matrix q = g * g.adjoint();
  const auto full = FactoredHermitian::from_dense(q);
  EXPECT_EQ(cb.covariance_scores(full), cb.covariance_scores(q));
}

// A zero covariance ties every codeword at score 0; the ranking must then
// be 0, 1, 2, … — the lowest-index tie-break the determinism contract
// (DESIGN.md §7) pins, on every tier.
TEST(CodebookBatchedScoringTest, AllTiedScoresRankByLowestIndex) {
  const auto cb = Codebook::dft(geometry_for(16));
  const Matrix zero(16, 16);
  const auto ranking = cb.top_k_for_covariance(zero, cb.size());
  std::vector<index_t> expected(cb.size());
  std::iota(expected.begin(), expected.end(), index_t{0});
  EXPECT_EQ(ranking, expected);
  if (kernels::cpu_supports_avx2()) {
    kernels::force_tier_for_testing(kernels::Tier::kAvx2);
    EXPECT_EQ(cb.top_k_for_covariance(zero, cb.size()), expected);
    kernels::reset_tier_for_testing();
  }
}

// The packed SoA panel is an exact copy of the codewords.
TEST(CodebookBatchedScoringTest, PackedPanelMatchesCodewords) {
  const auto cb = Codebook::dft(geometry_for(16));
  const kernels::SoAComplex& packed = cb.packed();
  ASSERT_EQ(packed.rows(), 16);
  ASSERT_EQ(packed.cols(), cb.size());
  for (index_t v = 0; v < cb.size(); ++v)
    for (index_t i = 0; i < 16; ++i)
      EXPECT_EQ(packed.at(i, v), cb.codeword(v)[i]);
}

}  // namespace
}  // namespace mmw::antenna
