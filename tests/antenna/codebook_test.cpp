#include "antenna/codebook.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "antenna/steering.h"
#include "randgen/rng.h"

namespace mmw::antenna {
namespace {

using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

TEST(DftCodebookTest, SizeMatchesArray) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  EXPECT_EQ(cb.size(), 16u);
  EXPECT_EQ(cb.grid_x(), 4u);
  EXPECT_EQ(cb.grid_y(), 4u);
  EXPECT_TRUE(cb.wraps());
}

TEST(DftCodebookTest, CodewordsAreUnitNorm) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  for (index_t i = 0; i < cb.size(); ++i)
    EXPECT_NEAR(cb.codeword(i).norm(), 1.0, 1e-12);
}

TEST(DftCodebookTest, CodewordsAreOrthonormal) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 2));
  for (index_t i = 0; i < cb.size(); ++i)
    for (index_t j = 0; j < cb.size(); ++j) {
      const real expected = (i == j) ? 1.0 : 0.0;
      EXPECT_NEAR(std::abs(linalg::dot(cb.codeword(i), cb.codeword(j))),
                  expected, 1e-10)
          << i << "," << j;
    }
}

TEST(DftCodebookTest, UlaIsClassicDft) {
  const auto cb = Codebook::dft(ArrayGeometry::ula(4));
  // Codeword k, element i: exp(j2π·ik/4)/2.
  const cx w = std::exp(cx{0.0, 2.0 * M_PI / 4.0});
  for (index_t k = 0; k < 4; ++k)
    for (index_t i = 0; i < 4; ++i)
      EXPECT_NEAR(std::abs(cb.codeword(k)[i] -
                           0.5 * std::pow(w, static_cast<real>(i * k))),
                  0.0, 1e-12);
}

TEST(AngularGridCodebookTest, SizeAndNoWrap) {
  const auto cb = Codebook::angular_grid(ArrayGeometry::upa(4, 4), 6, 5);
  EXPECT_EQ(cb.size(), 30u);
  EXPECT_EQ(cb.grid_x(), 6u);
  EXPECT_EQ(cb.grid_y(), 5u);
  EXPECT_FALSE(cb.wraps());
}

TEST(AngularGridCodebookTest, CodewordsAreSteeringVectors) {
  const auto geo = ArrayGeometry::upa(4, 4);
  const auto cb = Codebook::angular_grid(geo, 3, 3, -1.0, 1.0, -0.5, 0.5);
  // Corner (0,0) is (az_min, el_min).
  const auto expected = steering_vector(geo, {-1.0, -0.5});
  EXPECT_TRUE(linalg::approx_equal(cb.codeword(0), expected, 1e-12));
  // Center of a 3×3 grid is (0, 0).
  const auto center = steering_vector(geo, {0.0, 0.0});
  EXPECT_TRUE(linalg::approx_equal(cb.codeword(4), center, 1e-12));
}

TEST(CodebookTest, CoordinatesRoundTrip) {
  const auto cb = Codebook::angular_grid(ArrayGeometry::upa(4, 4), 5, 3);
  for (index_t i = 0; i < cb.size(); ++i) {
    const auto [x, y] = cb.coordinates(i);
    EXPECT_EQ(x * cb.grid_y() + y, i);
    EXPECT_LT(x, cb.grid_x());
    EXPECT_LT(y, cb.grid_y());
  }
  EXPECT_THROW(cb.coordinates(cb.size()), precondition_error);
}

TEST(CodebookTest, InteriorNeighborsAreFour) {
  const auto cb = Codebook::angular_grid(ArrayGeometry::upa(4, 4), 5, 5);
  const index_t center = 2 * 5 + 2;
  const auto n = cb.neighbors(center);
  EXPECT_EQ(n.size(), 4u);
  const std::set<index_t> expected{1 * 5 + 2, 3 * 5 + 2, 2 * 5 + 1, 2 * 5 + 3};
  EXPECT_EQ(std::set<index_t>(n.begin(), n.end()), expected);
}

TEST(CodebookTest, CornerNeighborsWithoutWrap) {
  const auto cb = Codebook::angular_grid(ArrayGeometry::upa(4, 4), 5, 5);
  EXPECT_EQ(cb.neighbors(0).size(), 2u);
}

TEST(CodebookTest, CornerNeighborsWithWrap) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  EXPECT_EQ(cb.neighbors(0).size(), 4u);  // wraps both axes
}

TEST(CodebookTest, BestMatchFindsExactCodeword) {
  Rng rng(3);
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  for (index_t i = 0; i < cb.size(); ++i)
    EXPECT_EQ(cb.best_match(cb.codeword(i)), i);
}

TEST(CodebookTest, BestMatchIgnoresGlobalPhase) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  const Vector rotated = cb.codeword(7) * cx{0.0, 1.0};  // multiply by i
  EXPECT_EQ(cb.best_match(rotated), 7u);
}

TEST(CodebookTest, BestForCovarianceFindsPlantedBeam) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  const Vector planted = cb.codeword(11);
  const Matrix q = Matrix::outer(planted, planted) * cx{5.0, 0.0};
  EXPECT_EQ(cb.best_for_covariance(q), 11u);
}

TEST(CodebookTest, TopKOrderingAndShape) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  Matrix q = Matrix::outer(cb.codeword(3), cb.codeword(3)) * cx{5.0, 0.0} +
             Matrix::outer(cb.codeword(9), cb.codeword(9)) * cx{2.0, 0.0};
  const auto top = cb.top_k_for_covariance(q, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 9u);
  EXPECT_THROW(cb.top_k_for_covariance(q, 0), precondition_error);
  EXPECT_THROW(cb.top_k_for_covariance(q, cb.size() + 1), precondition_error);
}

TEST(CodebookTest, SerpentineVisitsAllOnceAdjacently) {
  const auto cb = Codebook::angular_grid(ArrayGeometry::upa(4, 4), 6, 4);
  const auto order = cb.serpentine_order();
  EXPECT_EQ(order.size(), cb.size());
  std::set<index_t> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), cb.size());
  for (index_t k = 1; k < order.size(); ++k) {
    const auto [x1, y1] = cb.coordinates(order[k - 1]);
    const auto [x2, y2] = cb.coordinates(order[k]);
    const index_t manhattan = (x1 > x2 ? x1 - x2 : x2 - x1) +
                              (y1 > y2 ? y1 - y2 : y2 - y1);
    EXPECT_EQ(manhattan, 1u) << "step " << k;
  }
}

TEST(QuantizedCodebookTest, ConstantModulusAndQuantizedPhases) {
  const auto cb = Codebook::angular_grid(ArrayGeometry::upa(4, 4), 4, 4);
  const auto q = cb.with_quantized_phases(2);  // 4 phase levels
  ASSERT_EQ(q.size(), cb.size());
  EXPECT_EQ(q.grid_x(), cb.grid_x());
  const real modulus = 0.25;  // 1/√16
  for (index_t i = 0; i < q.size(); ++i) {
    for (index_t k = 0; k < 16; ++k) {
      const cx v = q.codeword(i)[k];
      EXPECT_NEAR(std::abs(v), modulus, 1e-12);
      // Phase on the 4-level grid {0, ±π/2, π}.
      const real phase = std::arg(v);
      const real nearest = (M_PI / 2.0) * std::round(phase / (M_PI / 2.0));
      EXPECT_NEAR(std::remainder(phase - nearest, 2.0 * M_PI), 0.0, 1e-9);
    }
    EXPECT_NEAR(q.codeword(i).norm(), 1.0, 1e-12);
  }
}

TEST(QuantizedCodebookTest, HighResolutionApproachesIdeal) {
  const auto cb = Codebook::angular_grid(ArrayGeometry::upa(4, 4), 4, 4);
  const auto q8 = cb.with_quantized_phases(8);
  for (index_t i = 0; i < cb.size(); ++i)
    EXPECT_GT(std::abs(linalg::dot(q8.codeword(i), cb.codeword(i))), 0.999);
}

TEST(QuantizedCodebookTest, CoarseQuantizationDegradesCorrelation) {
  const auto cb = Codebook::angular_grid(ArrayGeometry::upa(8, 8), 8, 8);
  real corr1 = 0.0, corr4 = 0.0;
  const auto q1 = cb.with_quantized_phases(1);
  const auto q4 = cb.with_quantized_phases(4);
  for (index_t i = 0; i < cb.size(); ++i) {
    corr1 += std::abs(linalg::dot(q1.codeword(i), cb.codeword(i)));
    corr4 += std::abs(linalg::dot(q4.codeword(i), cb.codeword(i)));
  }
  EXPECT_LT(corr1, corr4);
  EXPECT_GT(corr1 / cb.size(), 0.5);  // even 1 bit keeps most of the lobe
}

TEST(QuantizedCodebookTest, BitsValidation) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(2, 2));
  EXPECT_THROW(cb.with_quantized_phases(0), precondition_error);
  EXPECT_THROW(cb.with_quantized_phases(17), precondition_error);
}

TEST(CodebookTest, TopKBreaksExactTiesByLowestIndex) {
  // A zero covariance scores every codeword exactly 0.0 — the fully tied
  // case. The ranking contract (lowest codeword index first) makes the
  // result a pure function of the scores instead of partial_sort
  // internals; the eigen-directed J-th measurement relies on this for
  // bit-exact determinism.
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  const Matrix zero(cb.codeword(0).size(), cb.codeword(0).size());
  const auto top = cb.top_k_for_covariance(zero, cb.size());
  ASSERT_EQ(top.size(), cb.size());
  for (index_t i = 0; i < top.size(); ++i) EXPECT_EQ(top[i], i);
  EXPECT_EQ(cb.best_for_covariance(zero), 0u);
}

TEST(CodebookTest, FactoredTopKBreaksExactTiesByLowestIndex) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  const auto zero = linalg::FactoredHermitian::from_dense(
      Matrix(cb.codeword(0).size(), cb.codeword(0).size()));
  const auto top = cb.top_k_for_covariance(zero, 5);
  ASSERT_EQ(top.size(), 5u);
  for (index_t i = 0; i < top.size(); ++i) EXPECT_EQ(top[i], i);
}

TEST(CodebookTest, TopKDeterministicWithPlantedWinner) {
  // A planted beam strictly wins; the near-zero cross-correlation scores
  // behind it are not exact ties in floating point, so assert the winner
  // and call-to-call stability of the full ranking.
  const auto cb = Codebook::dft(ArrayGeometry::upa(4, 4));
  const Vector planted = cb.codeword(6);
  const Matrix q = Matrix::outer(planted, planted) * cx{4.0, 0.0};
  const auto top = cb.top_k_for_covariance(q, 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0], 6u);
  EXPECT_EQ(top, cb.top_k_for_covariance(q, 4));
}

TEST(CodebookTest, TwoWideWrapHasNoDuplicateNeighbors) {
  const auto cb = Codebook::dft(ArrayGeometry::upa(2, 2));
  for (index_t i = 0; i < cb.size(); ++i) {
    const auto n = cb.neighbors(i);
    const std::set<index_t> unique(n.begin(), n.end());
    EXPECT_EQ(unique.size(), n.size());
  }
}

}  // namespace
}  // namespace mmw::antenna
