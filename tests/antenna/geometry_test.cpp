#include "antenna/geometry.h"

#include <gtest/gtest.h>

namespace mmw::antenna {
namespace {

TEST(GeometryTest, UlaPositionsAlongX) {
  const auto ula = ArrayGeometry::ula(4, 0.5);
  EXPECT_EQ(ula.size(), 4u);
  EXPECT_EQ(ula.grid_x(), 4u);
  EXPECT_EQ(ula.grid_y(), 1u);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(ula.position(i).x, 0.5 * static_cast<real>(i));
    EXPECT_DOUBLE_EQ(ula.position(i).y, 0.0);
    EXPECT_DOUBLE_EQ(ula.position(i).z, 0.0);
  }
}

TEST(GeometryTest, UpaRowMajorLayout) {
  const auto upa = ArrayGeometry::upa(2, 3, 0.5);
  EXPECT_EQ(upa.size(), 6u);
  EXPECT_EQ(upa.grid_x(), 2u);
  EXPECT_EQ(upa.grid_y(), 3u);
  // index = ix·ny + iy
  EXPECT_DOUBLE_EQ(upa.position(0 * 3 + 2).x, 0.0);
  EXPECT_DOUBLE_EQ(upa.position(0 * 3 + 2).y, 1.0);
  EXPECT_DOUBLE_EQ(upa.position(1 * 3 + 0).x, 0.5);
  EXPECT_DOUBLE_EQ(upa.position(1 * 3 + 0).y, 0.0);
}

TEST(GeometryTest, PaperArraySizes) {
  EXPECT_EQ(ArrayGeometry::upa(4, 4).size(), 16u);  // paper's TX, M = 16
  EXPECT_EQ(ArrayGeometry::upa(8, 8).size(), 64u);  // paper's RX, N = 64
}

TEST(GeometryTest, InvalidArgumentsThrow) {
  EXPECT_THROW(ArrayGeometry::ula(0), precondition_error);
  EXPECT_THROW(ArrayGeometry::ula(4, 0.0), precondition_error);
  EXPECT_THROW(ArrayGeometry::upa(0, 4), precondition_error);
  EXPECT_THROW(ArrayGeometry::upa(4, 0), precondition_error);
  EXPECT_THROW(ArrayGeometry::upa(4, 4, -1.0), precondition_error);
}

TEST(GeometryTest, CustomSpacing) {
  const auto a = ArrayGeometry::ula(3, 0.25);
  EXPECT_DOUBLE_EQ(a.position(2).x, 0.5);
}

}  // namespace
}  // namespace mmw::antenna
