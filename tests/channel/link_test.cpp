#include "channel/link.h"

#include <gtest/gtest.h>

#include <cmath>

#include "antenna/steering.h"
#include "linalg/eig.h"
#include "linalg/functions.h"

namespace mmw::channel {
namespace {

using antenna::ArrayGeometry;
using antenna::Direction;
using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

Link one_path_link(real power = 1.0, Direction aod = {0.3, 0.1},
                   Direction aoa = {-0.4, 0.05}) {
  return Link(ArrayGeometry::upa(4, 4), ArrayGeometry::upa(8, 8),
              {Path{power, aod, aoa}});
}

TEST(LinkTest, Dimensions) {
  const Link link = one_path_link();
  EXPECT_EQ(link.tx_size(), 16u);
  EXPECT_EQ(link.rx_size(), 64u);
  EXPECT_EQ(link.paths().size(), 1u);
}

TEST(LinkTest, EmptyPathsRejected) {
  EXPECT_THROW(
      Link(ArrayGeometry::upa(2, 2), ArrayGeometry::upa(2, 2), {}),
      precondition_error);
}

TEST(LinkTest, NegativePowerRejected) {
  EXPECT_THROW(Link(ArrayGeometry::upa(2, 2), ArrayGeometry::upa(2, 2),
                    {Path{-1.0, {}, {}}}),
               precondition_error);
}

TEST(LinkTest, TotalPowerSums) {
  const Link link(ArrayGeometry::upa(2, 2), ArrayGeometry::upa(2, 2),
                  {Path{0.6, {}, {}}, Path{0.4, {0.1, 0.0}, {0.2, 0.0}}});
  EXPECT_NEAR(link.total_power(), 1.0, 1e-12);
}

TEST(LinkTest, SinglePathCovarianceIsRankOne) {
  const Link link = one_path_link();
  const Matrix q = link.rx_covariance();
  EXPECT_TRUE(q.is_hermitian(1e-10));
  EXPECT_EQ(linalg::numerical_rank(q, 1e-8), 1u);
  // trace(Q) = NM·p·‖a_rx‖² = 64·16·1·1.
  EXPECT_NEAR(q.trace().real(), 1024.0, 1e-6);
}

TEST(LinkTest, CovariancePrincipalEigenvectorIsRxSteering) {
  const Link link = one_path_link();
  const auto eig = linalg::hermitian_eig(link.rx_covariance());
  EXPECT_NEAR(
      std::abs(linalg::dot(eig.principal_eigenvector(), link.rx_steering(0))),
      1.0, 1e-9);
}

TEST(LinkTest, BeamCovarianceScalesWithTxCoupling) {
  const Link link = one_path_link();
  const Vector matched = link.tx_steering(0);
  const Matrix q_matched = link.rx_covariance_for_beam(matched);
  // Matched beam: |a_txᴴu|² = 1, so Q_u = full-gain rank-one.
  EXPECT_NEAR(q_matched.trace().real(), 1024.0, 1e-6);
  // A random orthogonal-ish beam couples weakly.
  Rng rng(3);
  const Vector random_beam = rng.random_unit_vector(16);
  const Matrix q_rand = link.rx_covariance_for_beam(random_beam);
  EXPECT_LT(q_rand.trace().real(), q_matched.trace().real());
}

TEST(LinkTest, MeanPairGainMaximizedAtMatchedBeams) {
  const Link link = one_path_link();
  const real matched =
      link.mean_pair_gain(link.tx_steering(0), link.rx_steering(0));
  EXPECT_NEAR(matched, 1024.0, 1e-6);  // NM = 64·16
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const real other = link.mean_pair_gain(rng.random_unit_vector(16),
                                           rng.random_unit_vector(64));
    EXPECT_LE(other, matched + 1e-9);
  }
}

TEST(LinkTest, DrawChannelShape) {
  const Link link = one_path_link();
  Rng rng(5);
  const Matrix h = link.draw_channel(rng);
  EXPECT_EQ(h.rows(), 64u);
  EXPECT_EQ(h.cols(), 16u);
}

TEST(LinkTest, DrawChannelSecondMomentMatchesCovariance) {
  const Link link = one_path_link();
  Rng rng(6);
  const index_t n = link.rx_size();
  Matrix acc(n, n);
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const Matrix h = link.draw_channel(rng);
    acc += h * h.adjoint();
  }
  acc /= cx{static_cast<real>(trials * link.tx_size()), 0.0};
  const Matrix q = link.rx_covariance() / cx{static_cast<real>(link.tx_size()), 0.0};
  // Monte-Carlo agreement within ~10% in Frobenius norm.
  EXPECT_LT((acc - q).frobenius_norm() / q.frobenius_norm(), 0.15);
}

TEST(LinkTest, EffectiveChannelMatchesExplicitProduct) {
  // Statistically: E‖h_eff‖² must equal tr(Q_u) for any u.
  const Link link = one_path_link();
  Rng rng(7);
  const Vector u = rng.random_unit_vector(16);
  const real expected = link.rx_covariance_for_beam(u).trace().real();
  real acc = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t)
    acc += link.draw_effective_channel(u, rng).squared_norm();
  EXPECT_NEAR(acc / trials / expected, 1.0, 0.1);
}

TEST(LinkTest, DrawsAreIndependent) {
  const Link link = one_path_link();
  Rng rng(8);
  const Matrix h1 = link.draw_channel(rng);
  const Matrix h2 = link.draw_channel(rng);
  EXPECT_GT((h1 - h2).frobenius_norm(), 1e-6);
}

TEST(LinkTest, ShapeMismatchesThrow) {
  const Link link = one_path_link();
  Rng rng(9);
  EXPECT_THROW(link.rx_covariance_for_beam(Vector(8)), precondition_error);
  EXPECT_THROW(link.mean_pair_gain(Vector(8), Vector(64)),
               precondition_error);
  EXPECT_THROW(link.draw_effective_channel(Vector(8), rng),
               precondition_error);
}

TEST(SampleComplexGaussianTest, MatchesCovariance) {
  Rng rng(10);
  // Low-rank PSD covariance.
  const Vector x = rng.random_unit_vector(6);
  const Matrix q = Matrix::outer(x, x) * cx{4.0, 0.0} +
                   Matrix::identity(6) * cx{0.5, 0.0};
  Matrix acc(6, 6);
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const Vector s = sample_complex_gaussian(q, rng);
    acc += Matrix::outer(s, s);
  }
  acc /= cx{static_cast<real>(trials), 0.0};
  EXPECT_LT((acc - q).frobenius_norm() / q.frobenius_norm(), 0.15);
}

TEST(SampleComplexGaussianTest, RequiresSquare) {
  Rng rng(11);
  EXPECT_THROW(sample_complex_gaussian(Matrix(2, 3), rng),
               precondition_error);
}

// The allocation-free variant must be a drop-in for the returning one:
// identical draws (bit-exact) from identical RNG state, identical RNG
// consumption, and full overwrite of whatever the reused buffer held.
TEST(LinkTest, DrawEffectiveChannelIntoMatchesReturningVariant) {
  const Link link(ArrayGeometry::upa(4, 4), ArrayGeometry::upa(4, 4),
                  {Path{1.0, {0.3, 0.1}, {-0.4, 0.05}},
                   Path{0.5, {-0.2, 0.0}, {0.6, -0.1}}});
  const Vector u = link.tx_steering(0);
  Rng rng_a(42);
  Rng rng_b(42);
  Vector scratch(link.rx_size());
  for (int rep = 0; rep < 5; ++rep) {
    const Vector fresh = link.draw_effective_channel(u, rng_a);
    // Poison the buffer: a correct into-variant overwrites every element.
    for (index_t i = 0; i < scratch.size(); ++i) scratch[i] = cx{1e9, -1e9};
    link.draw_effective_channel_into(u, rng_b, scratch);
    for (index_t i = 0; i < fresh.size(); ++i)
      EXPECT_EQ(scratch[i], fresh[i]) << "rep=" << rep << " i=" << i;
  }
}

TEST(LinkTest, DrawEffectiveChannelIntoChecksBufferSize) {
  const Link link = one_path_link();
  Rng rng(7);
  Vector wrong(link.rx_size() + 1);
  EXPECT_THROW(
      link.draw_effective_channel_into(link.tx_steering(0), rng, wrong),
      precondition_error);
}

}  // namespace
}  // namespace mmw::channel
