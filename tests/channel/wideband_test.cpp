#include "channel/wideband.h"

#include <gtest/gtest.h>

#include <cmath>

#include "antenna/steering.h"

namespace mmw::channel {
namespace {

using antenna::ArrayGeometry;
using linalg::Matrix;
using linalg::Vector;
using randgen::Rng;

WidebandLink two_cluster_link() {
  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  std::vector<Path> paths{Path{0.7, {0.3, 0.1}, {-0.4, 0.0}},
                          Path{0.3, {-0.6, -0.1}, {0.5, 0.2}}};
  Link link(tx, rx, std::move(paths));
  return WidebandLink(std::move(link), {0.0, 200e-9});
}

TEST(WidebandLinkTest, ConstructionValidation) {
  const auto tx = ArrayGeometry::upa(2, 2);
  const auto rx = ArrayGeometry::upa(2, 2);
  Link link(tx, rx, {Path{1.0, {}, {}}});
  EXPECT_THROW(WidebandLink(link, {}), precondition_error);
  EXPECT_THROW(WidebandLink(link, {-1e-9}), precondition_error);
  EXPECT_NO_THROW(WidebandLink(link, {0.0}));
}

TEST(WidebandLinkTest, ZeroFrequencyMatchesNarrowbandDraw) {
  // At f = 0 the delay phases vanish: H(0) has the same second-order
  // statistics as the narrowband Link.
  const WidebandLink wb = two_cluster_link();
  Rng rng(3);
  Matrix acc(64, 16);
  const int trials = 300;
  real pw = 0.0;
  for (int t = 0; t < trials; ++t) {
    const auto r = wb.draw_realization(rng);
    pw += wb.frequency_response(r, 0.0).frobenius_norm();
  }
  // E‖H‖_F ≈ √(NM·Σp) within Monte-Carlo slack (Jensen gap is small here).
  EXPECT_NEAR(pw / trials / std::sqrt(64.0 * 16.0), 1.0, 0.15);
}

TEST(WidebandLinkTest, PairResponseMatchesMatrixContraction) {
  const WidebandLink wb = two_cluster_link();
  Rng rng(4);
  const auto r = wb.draw_realization(rng);
  const Vector u = rng.random_unit_vector(16);
  const Vector v = rng.random_unit_vector(64);
  for (const real f : {0.0, 50e6, 400e6}) {
    const cx direct = wb.pair_response(r, u, v, f);
    const cx contracted =
        linalg::dot(v, wb.frequency_response(r, f) * u);
    EXPECT_NEAR(std::abs(direct - contracted), 0.0,
                1e-9 * (1.0 + std::abs(direct)));
  }
}

TEST(WidebandLinkTest, MeanPairGainIsFrequencyFlat) {
  // E|vᴴH(f)u|² is the same at every frequency (delay phases cancel in the
  // expectation) and equals the narrowband mean pair gain.
  const WidebandLink wb = two_cluster_link();
  Rng rng(5);
  const Vector u = rng.random_unit_vector(16);
  const Vector v = rng.random_unit_vector(64);
  const real expected = wb.narrowband().mean_pair_gain(u, v);
  const int trials = 4000;
  for (const real f : {0.0, 250e6}) {
    Rng mc(17);
    real acc = 0.0;
    for (int t = 0; t < trials; ++t) {
      const auto r = wb.draw_realization(mc);
      acc += std::norm(wb.pair_response(r, u, v, f));
    }
    EXPECT_NEAR(acc / trials / expected, 1.0, 0.15) << "f=" << f;
  }
}

TEST(WidebandLinkTest, RealizedResponseIsFrequencySelective) {
  // A single realization with two delayed clusters varies across the band.
  const WidebandLink wb = two_cluster_link();
  Rng rng(6);
  const auto r = wb.draw_realization(rng);
  // Beams that couple to BOTH clusters: use sums of the steering vectors.
  const Vector u = (wb.narrowband().tx_steering(0) +
                    wb.narrowband().tx_steering(1))
                       .normalized();
  const Vector v = (wb.narrowband().rx_steering(0) +
                    wb.narrowband().rx_steering(1))
                       .normalized();
  real lo = 1e300, hi = 0.0;
  for (int k = 0; k <= 32; ++k) {
    const real f = k * 500e6 / 32;
    const real p = std::norm(wb.pair_response(r, u, v, f));
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_GT(hi, 2.0 * lo);  // visible ripple across 500 MHz
}

TEST(WidebandLinkTest, BeamformingShrinksDelaySpread) {
  const WidebandLink wb = two_cluster_link();
  // Aligned with cluster 0 only: conditional delay spread collapses.
  const Vector u0 = wb.narrowband().tx_steering(0);
  const Vector v0 = wb.narrowband().rx_steering(0);
  const real conditional = wb.rms_delay_spread_s(u0, v0);
  const real omni = wb.omni_rms_delay_spread_s();
  EXPECT_LT(conditional, 0.3 * omni);
  EXPECT_GT(omni, 50e-9);  // two clusters 200 ns apart
}

TEST(WidebandLinkTest, NycGeneratorProducesSortedClusterDelays) {
  const auto tx = ArrayGeometry::upa(2, 2);
  const auto rx = ArrayGeometry::upa(4, 4);
  Rng rng(7);
  WidebandParams params;
  const WidebandLink wb = make_nyc_wideband_link(tx, rx, rng, params);
  ASSERT_EQ(wb.delays_s().size(), wb.narrowband().paths().size());
  for (const real d : wb.delays_s()) EXPECT_GE(d, 0.0);
  // First cluster starts at (near) zero delay.
  real first_cluster_min = 1e300;
  for (index_t l = 0; l < params.cluster.subpaths_per_cluster; ++l)
    first_cluster_min = std::min(first_cluster_min, wb.delays_s()[l]);
  EXPECT_LT(first_cluster_min, 5 * params.intra_cluster_jitter_s);
}

TEST(WidebandLinkTest, NycGeneratorValidation) {
  const auto tx = ArrayGeometry::upa(2, 2);
  const auto rx = ArrayGeometry::upa(2, 2);
  Rng rng(8);
  WidebandParams bad;
  bad.cluster_delay_scale_s = 0.0;
  EXPECT_THROW(make_nyc_wideband_link(tx, rx, rng, bad), precondition_error);
}

}  // namespace
}  // namespace mmw::channel
