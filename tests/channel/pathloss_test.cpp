#include "channel/pathloss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmw::channel {
namespace {

using randgen::Rng;

TEST(FriisTest, KnownValue) {
  // FSPL at 28 GHz, 100 m: 20·log10(4π·100·28e9/c) ≈ 101.4 dB.
  EXPECT_NEAR(friis_path_loss_db(28.0, 100.0), 101.4, 0.2);
}

TEST(FriisTest, SixDbPerDistanceDoubling) {
  const real a = friis_path_loss_db(28.0, 50.0);
  const real b = friis_path_loss_db(28.0, 100.0);
  EXPECT_NEAR(b - a, 6.02, 0.01);
}

TEST(FriisTest, GrowsWithFrequency) {
  EXPECT_GT(friis_path_loss_db(73.0, 100.0), friis_path_loss_db(28.0, 100.0));
}

TEST(FriisTest, InvalidInputsThrow) {
  EXPECT_THROW(friis_path_loss_db(0.0, 10.0), precondition_error);
  EXPECT_THROW(friis_path_loss_db(28.0, 0.0), precondition_error);
}

TEST(NycPathLossTest, NlosExceedsLosOnAverage) {
  Rng rng(1);
  const auto p = NycPathLossParams::nyc_28ghz();
  real los = 0.0, nlos = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    los += nyc_path_loss_db(p, LinkState::kLos, 100.0, rng);
    nlos += nyc_path_loss_db(p, LinkState::kNlos, 100.0, rng);
  }
  EXPECT_GT(nlos / n, los / n + 10.0);
}

TEST(NycPathLossTest, MeanMatchesInterceptAndSlope) {
  Rng rng(2);
  const auto p = NycPathLossParams::nyc_28ghz();
  real acc = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    acc += nyc_path_loss_db(p, LinkState::kLos, 100.0, rng);
  // α + β·10·log10(100) = 61.4 + 2·20 = 101.4
  EXPECT_NEAR(acc / n, 101.4, 0.5);
}

TEST(NycPathLossTest, OutageIsInfinite) {
  Rng rng(3);
  const auto p = NycPathLossParams::nyc_28ghz();
  EXPECT_TRUE(std::isinf(
      nyc_path_loss_db(p, LinkState::kOutage, 100.0, rng)));
}

TEST(NycPathLossTest, SeventyThreeGhzLossesAreHigher) {
  Rng a(4), b(4);
  const real l28 = nyc_path_loss_db(NycPathLossParams::nyc_28ghz(),
                                    LinkState::kLos, 80.0, a);
  const real l73 = nyc_path_loss_db(NycPathLossParams::nyc_73ghz(),
                                    LinkState::kLos, 80.0, b);
  EXPECT_GT(l73, l28);
}

TEST(LinkStateTest, ShortLinksAreMostlyLos) {
  Rng rng(5);
  const auto p = NycPathLossParams::nyc_28ghz();
  int los = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i)
    if (sample_link_state(p, 20.0, rng) == LinkState::kLos) ++los;
  EXPECT_GT(los, n / 2);
}

TEST(LinkStateTest, LongLinksAreRarelyLos) {
  Rng rng(6);
  const auto p = NycPathLossParams::nyc_28ghz();
  int los = 0, outage = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const LinkState s = sample_link_state(p, 400.0, rng);
    if (s == LinkState::kLos) ++los;
    if (s == LinkState::kOutage) ++outage;
  }
  EXPECT_LT(los, n / 20);
  EXPECT_GT(outage, n / 2);  // a_out·400 − b_out ≈ 8.1 → p_out ≈ 1
}

TEST(LinkStateTest, InvalidDistanceThrows) {
  Rng rng(7);
  const auto p = NycPathLossParams::nyc_28ghz();
  EXPECT_THROW(sample_link_state(p, 0.0, rng), precondition_error);
  EXPECT_THROW(nyc_path_loss_db(p, LinkState::kLos, -1.0, rng),
               precondition_error);
}

TEST(LinkBudgetTest, NoiseFloorFormula) {
  LinkBudget b;
  b.bandwidth_hz = 1e9;
  b.noise_figure_db = 7.0;
  EXPECT_NEAR(b.noise_power_dbm(), -174.0 + 90.0 + 7.0, 1e-9);
}

TEST(LinkBudgetTest, SnrChainsCorrectly) {
  LinkBudget b;
  b.tx_power_dbm = 30.0;
  b.bandwidth_hz = 1e9;
  b.noise_figure_db = 7.0;
  b.path_loss_db = 100.0;
  EXPECT_NEAR(b.snr_db(), 30.0 - 100.0 - (-77.0), 1e-9);
  EXPECT_NEAR(b.snr_linear(), std::pow(10.0, b.snr_db() / 10.0), 1e-9);
}

}  // namespace
}  // namespace mmw::channel
