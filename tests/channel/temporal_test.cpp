#include "channel/temporal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "channel/models.h"

namespace mmw::channel {
namespace {

using antenna::ArrayGeometry;
using linalg::Matrix;
using randgen::Rng;

Link simple_link() {
  return Link(ArrayGeometry::upa(2, 2), ArrayGeometry::upa(4, 4),
              {Path{0.6, {0.3, 0.1}, {-0.2, 0.0}},
               Path{0.4, {-0.5, 0.0}, {0.4, 0.1}}});
}

TEST(JakesTest, ZeroDopplerIsFullyCorrelated) {
  EXPECT_NEAR(jakes_correlation(0.0, 1e-3), 1.0, 1e-12);
  EXPECT_NEAR(jakes_correlation(100.0, 0.0), 1.0, 1e-12);
}

TEST(JakesTest, FirstNullNearKnownArgument) {
  // J₀ first zero at x ≈ 2.405: 2π·f_D·τ = 2.405.
  const real fd = 100.0;
  const real tau = 2.405 / (2.0 * M_PI * fd);
  EXPECT_NEAR(jakes_correlation(fd, tau), 0.0, 1e-3);
}

TEST(JakesTest, Validation) {
  EXPECT_THROW(jakes_correlation(-1.0, 1e-3), precondition_error);
  EXPECT_THROW(jakes_correlation(10.0, -1e-3), precondition_error);
}

TEST(TemporalFaderTest, CorrelationValidation) {
  Rng rng(1);
  const Link link = simple_link();
  EXPECT_THROW(TemporalFader(link, -0.1, rng), precondition_error);
  EXPECT_THROW(TemporalFader(link, 1.1, rng), precondition_error);
}

TEST(TemporalFaderTest, FullCorrelationFreezesChannel) {
  Rng rng(2);
  const Link link = simple_link();
  TemporalFader fader(link, 1.0, rng);
  const Matrix h0 = fader.current_channel();
  fader.advance(rng);
  fader.advance(rng);
  EXPECT_TRUE(linalg::approx_equal(fader.current_channel(), h0,
                                   1e-12 * (1.0 + h0.frobenius_norm())));
}

TEST(TemporalFaderTest, ZeroCorrelationRefadesCompletely) {
  Rng rng(3);
  const Link link = simple_link();
  TemporalFader fader(link, 0.0, rng);
  const Matrix h0 = fader.current_channel();
  fader.advance(rng);
  EXPECT_GT((fader.current_channel() - h0).frobenius_norm(), 1e-3);
}

TEST(TemporalFaderTest, EffectiveMatchesMatrixProduct) {
  Rng rng(4);
  const Link link = simple_link();
  TemporalFader fader(link, 0.7, rng);
  const auto u = rng.random_unit_vector(4);
  EXPECT_TRUE(linalg::approx_equal(fader.current_effective(u),
                                   fader.current_channel() * u, 1e-10));
  EXPECT_THROW(fader.current_effective(linalg::Vector(3)),
               precondition_error);
}

TEST(TemporalFaderTest, MarginalPowerIsStationary) {
  // E‖H[t]‖² stays at NM·Σp for all t.
  Rng rng(5);
  const Link link = simple_link();
  const real expected = 4.0 * 16.0;  // NM·1
  for (const real rho : {0.5, 0.95}) {
    real acc = 0.0;
    const int trials = 300;
    for (int t = 0; t < trials; ++t) {
      TemporalFader fader(link, rho, rng);
      for (int s = 0; s < 5; ++s) fader.advance(rng);
      const Matrix h = fader.current_channel();
      acc += h.frobenius_norm() * h.frobenius_norm();
    }
    EXPECT_NEAR(acc / trials / expected, 1.0, 0.2) << "rho=" << rho;
  }
}

TEST(TemporalFaderTest, StepCorrelationMatchesRho) {
  // Empirical correlation of a path's effective channel across one step.
  Rng rng(6);
  const Link link = simple_link();
  const real rho = 0.8;
  const auto u = link.tx_steering(0);
  cx cross{0.0, 0.0};
  real power = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    TemporalFader fader(link, rho, rng);
    const auto h0 = fader.current_effective(u);
    fader.advance(rng);
    const auto h1 = fader.current_effective(u);
    cross += linalg::dot(h0, h1);
    power += h0.squared_norm();
  }
  EXPECT_NEAR(std::abs(cross) / power, rho, 0.05);
}

TEST(TemporalFaderTest, CovarianceIsTimeInvariant) {
  // The paper's premise: the second-order statistics (covariance) are set
  // by the geometry and do not drift, even while H decorrelates.
  Rng rng(7);
  const Link link = simple_link();
  const Matrix q_early = [&] {
    Matrix acc(16, 16);
    const int trials = 800;
    for (int t = 0; t < trials; ++t) {
      TemporalFader fader(link, 0.9, rng);
      const auto h = fader.current_channel();
      acc += h * h.adjoint();
    }
    return acc / cx{800.0, 0.0};
  }();
  const Matrix q_late = [&] {
    Matrix acc(16, 16);
    const int trials = 800;
    for (int t = 0; t < trials; ++t) {
      TemporalFader fader(link, 0.9, rng);
      for (int s = 0; s < 20; ++s) fader.advance(rng);
      const auto h = fader.current_channel();
      acc += h * h.adjoint();
    }
    return acc / cx{800.0, 0.0};
  }();
  EXPECT_LT((q_early - q_late).frobenius_norm() /
                (1.0 + q_early.frobenius_norm()),
            0.25);
}

}  // namespace
}  // namespace mmw::channel
