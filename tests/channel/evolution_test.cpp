// channel::LinkEvolution — the epoch-scale large-scale evolution the
// tracking layer rides on. The seek() determinism contract (state at epoch
// e is a pure function of the stream keys, independent of the visit order)
// is what makes mid-run handover re-entry exact, so it gets the heaviest
// coverage here; distributional properties live in
// tests/property/temporal_property_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "channel/temporal.h"
#include "randgen/keylanes.h"

namespace mmw::channel {
namespace {

using antenna::ArrayGeometry;

std::vector<Path> base_paths() {
  return {Path{0.3, {0.3, 0.1}, {-0.2, 0.0}},
          Path{0.6, {-0.5, 0.0}, {0.4, 0.1}},
          Path{0.1, {0.1, -0.1}, {0.0, 0.2}}};
}

EvolutionConfig walking_config() {
  EvolutionConfig c;
  c.epoch_seconds = 0.5;
  c.speed_mps = 1.4;
  c.shadow_sigma_db = 2.0;
  c.blockage_onset_per_epoch = 0.1;
  c.blockage_clear_probability = 0.3;
  return c;
}

LinkEvolution make_evolution(const EvolutionConfig& config,
                             std::uint64_t user = 7) {
  return LinkEvolution(ArrayGeometry::upa(2, 2), ArrayGeometry::upa(4, 4),
                       base_paths(), config, 20160610,
                       randgen::lanes::temporal_lane(0), user);
}

bool links_identical(const Link& a, const Link& b) {
  if (a.paths().size() != b.paths().size()) return false;
  for (index_t l = 0; l < a.paths().size(); ++l) {
    const Path& p = a.paths()[l];
    const Path& q = b.paths()[l];
    if (p.power != q.power) return false;
    if (p.aod.azimuth != q.aod.azimuth) return false;
    if (p.aod.elevation != q.aod.elevation) return false;
    if (p.aoa.azimuth != q.aoa.azimuth) return false;
    if (p.aoa.elevation != q.aoa.elevation) return false;
  }
  return true;
}

TEST(LinkEvolutionTest, EpochZeroIsTheBaseLink) {
  LinkEvolution evo = make_evolution(walking_config());
  EXPECT_EQ(evo.epoch(), 0u);
  EXPECT_FALSE(evo.blocked());
  const Link link = evo.current();
  const std::vector<Path> base = base_paths();
  ASSERT_EQ(link.paths().size(), base.size());
  for (index_t l = 0; l < base.size(); ++l) {
    EXPECT_DOUBLE_EQ(link.paths()[l].power, base[l].power);
    EXPECT_DOUBLE_EQ(link.paths()[l].aoa.azimuth, base[l].aoa.azimuth);
    EXPECT_DOUBLE_EQ(link.paths()[l].aod.azimuth, base[l].aod.azimuth);
  }
}

TEST(LinkEvolutionTest, DominantPathIsLargestPowerTieLowest) {
  LinkEvolution evo = make_evolution(walking_config());
  EXPECT_EQ(evo.dominant_path(), 1u);  // powers 0.3, 0.6, 0.1

  LinkEvolution tied(ArrayGeometry::upa(2, 2), ArrayGeometry::upa(4, 4),
                     {Path{0.5, {0.1, 0.0}, {0.0, 0.0}},
                      Path{0.5, {0.2, 0.0}, {0.0, 0.0}}},
                     walking_config(), 1, 0, 0);
  EXPECT_EQ(tied.dominant_path(), 0u);
}

TEST(LinkEvolutionTest, SeekForwardEqualsStepwise) {
  LinkEvolution direct = make_evolution(walking_config());
  LinkEvolution stepwise = make_evolution(walking_config());
  direct.seek(17);
  for (index_t e = 1; e <= 17; ++e) stepwise.seek(e);
  EXPECT_TRUE(links_identical(direct.current(), stepwise.current()));
  EXPECT_EQ(direct.blocked(), stepwise.blocked());
}

TEST(LinkEvolutionTest, SeekBackwardReplaysExactly) {
  LinkEvolution evo = make_evolution(walking_config());
  evo.seek(9);
  const Link at9 = evo.current();
  const bool blocked9 = evo.blocked();
  evo.seek(23);
  evo.seek(9);  // backward: replay from base
  EXPECT_TRUE(links_identical(evo.current(), at9));
  EXPECT_EQ(evo.blocked(), blocked9);
  evo.seek(0);
  EXPECT_TRUE(links_identical(evo.current(), make_evolution(walking_config()).current()));
}

TEST(LinkEvolutionTest, FreshInstanceMatchesSoughtInstance) {
  // The handover contract: constructing at a site and seeking to e lands
  // on the identical state as any other visit history with the same keys.
  LinkEvolution wanderer = make_evolution(walking_config());
  wanderer.seek(5);
  wanderer.seek(12);
  wanderer.seek(3);
  wanderer.seek(30);

  LinkEvolution fresh = make_evolution(walking_config());
  fresh.seek(30);
  EXPECT_TRUE(links_identical(wanderer.current(), fresh.current()));
}

TEST(LinkEvolutionTest, DistinctUsersEvolveIndependently) {
  LinkEvolution a = make_evolution(walking_config(), 7);
  LinkEvolution b = make_evolution(walking_config(), 8);
  a.seek(4);
  b.seek(4);
  EXPECT_FALSE(links_identical(a.current(), b.current()));
}

TEST(LinkEvolutionTest, BlockageSuppressesOnlyDominantPath) {
  EvolutionConfig c = walking_config();
  c.blockage_onset_per_epoch = 1.0;  // blocks at epoch 1 with certainty
  c.blockage_clear_probability = 0.0;
  c.shadow_sigma_db = 0.0;
  c.drift_rad_per_meter = 0.0;
  LinkEvolution evo = make_evolution(c);
  evo.seek(1);
  ASSERT_TRUE(evo.blocked());
  const Link link = evo.current();
  const std::vector<Path> base = base_paths();
  for (index_t l = 0; l < base.size(); ++l) {
    const real expected =
        l == evo.dominant_path() ? base[l].power * c.blockage_gain
                                 : base[l].power;
    EXPECT_NEAR(link.paths()[l].power, expected, 1e-15) << "path " << l;
  }
}

TEST(LinkEvolutionTest, BlockageClearsWithCertainClearProbability) {
  EvolutionConfig c = walking_config();
  c.blockage_onset_per_epoch = 1.0;
  c.blockage_clear_probability = 1.0;
  LinkEvolution evo = make_evolution(c);
  evo.seek(1);
  EXPECT_TRUE(evo.blocked());
  evo.seek(2);  // clears with certainty, then the same uniform can't re-arm
  EXPECT_FALSE(evo.blocked());
  evo.seek(3);
  EXPECT_TRUE(evo.blocked());  // unblocked again → onset fires again
}

TEST(LinkEvolutionTest, ZeroRatesFreezeTheLink) {
  EvolutionConfig c;
  c.drift_rad_per_meter = 0.0;
  c.shadow_sigma_db = 0.0;
  c.blockage_onset_per_epoch = 0.0;
  c.blockage_onset_per_meter = 0.0;
  LinkEvolution evo = make_evolution(c);
  evo.seek(40);
  EXPECT_FALSE(evo.blocked());
  EXPECT_TRUE(links_identical(evo.current(),
                              make_evolution(c).current()));
}

TEST(LinkEvolutionTest, ShadowScalesMeanPowerInDb) {
  EvolutionConfig c = walking_config();
  c.drift_rad_per_meter = 0.0;
  c.blockage_onset_per_epoch = 0.0;
  LinkEvolution evo = make_evolution(c);
  evo.seek(6);
  const Link link = evo.current();
  const std::vector<Path> base = base_paths();
  for (index_t l = 0; l < base.size(); ++l) {
    const real expected =
        base[l].power * std::pow(10.0, evo.shadow_db(l) / 10.0);
    EXPECT_NEAR(link.paths()[l].power, expected,
                1e-12 * (1.0 + expected));
  }
}

TEST(LinkEvolutionTest, DriftAddsToBaseAngles) {
  EvolutionConfig c = walking_config();
  c.shadow_sigma_db = 0.0;
  c.blockage_onset_per_epoch = 0.0;
  LinkEvolution evo = make_evolution(c);
  evo.seek(11);
  const Link link = evo.current();
  const std::vector<Path> base = base_paths();
  for (index_t l = 0; l < base.size(); ++l)
    EXPECT_NEAR(link.paths()[l].aoa.azimuth,
                base[l].aoa.azimuth + evo.aoa_azimuth_drift(l), 1e-12);
}

TEST(LinkEvolutionTest, ConfigValidation) {
  EvolutionConfig bad = walking_config();
  bad.blockage_clear_probability = 1.5;
  EXPECT_THROW(make_evolution(bad), precondition_error);
  bad = walking_config();
  bad.blockage_gain = 0.0;
  EXPECT_THROW(make_evolution(bad), precondition_error);
  bad = walking_config();
  bad.speed_mps = -1.0;
  EXPECT_THROW(make_evolution(bad), precondition_error);
  EXPECT_THROW(LinkEvolution(antenna::ArrayGeometry::upa(2, 2),
                             antenna::ArrayGeometry::upa(4, 4), {},
                             walking_config(), 1, 0, 0),
               precondition_error);
}

TEST(EvolutionConfigTest, DerivedQuantities) {
  EvolutionConfig c = walking_config();
  EXPECT_DOUBLE_EQ(c.meters_per_epoch(), 0.7);
  EXPECT_DOUBLE_EQ(c.drift_std_rad(), 0.004 * 0.7);
  EXPECT_NEAR(c.shadow_correlation(), std::exp(-0.7 / 15.0), 1e-12);
  EXPECT_NEAR(c.doppler(), 1.4 * 28.0e9 / 299'792'458.0, 1e-9);
  // Onset clamps to [0, 1].
  c.blockage_onset_per_epoch = 0.9;
  c.blockage_onset_per_meter = 1.0;
  EXPECT_DOUBLE_EQ(c.onset_probability(), 1.0);
  // Fade correlation clamps negative Bessel lobes to 0.
  c.speed_mps = 500.0;
  c.epoch_seconds = 0.5;
  EXPECT_GE(c.fade_correlation(), 0.0);
  EXPECT_LE(c.fade_correlation(), 1.0);
}

}  // namespace
}  // namespace mmw::channel
