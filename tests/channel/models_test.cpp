#include "channel/models.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "linalg/eig.h"
#include "linalg/functions.h"

namespace mmw::channel {
namespace {

using antenna::ArrayGeometry;
using linalg::Matrix;
using randgen::Rng;

TEST(SinglePathModelTest, UnitPowerRankOne) {
  Rng rng(1);
  const Link link = make_single_path_link(ArrayGeometry::upa(4, 4),
                                          ArrayGeometry::upa(8, 8), rng);
  EXPECT_EQ(link.paths().size(), 1u);
  EXPECT_NEAR(link.total_power(), 1.0, 1e-12);
  EXPECT_EQ(linalg::numerical_rank(link.rx_covariance(), 1e-8), 1u);
}

TEST(SinglePathModelTest, AnglesInsideSector) {
  Rng rng(2);
  AngularSector s{-0.5, 0.5, -0.1, 0.1};
  for (int i = 0; i < 50; ++i) {
    const Link link = make_single_path_link(ArrayGeometry::upa(2, 2),
                                            ArrayGeometry::upa(2, 2), rng, s);
    const Path& p = link.paths()[0];
    EXPECT_GE(p.aod.azimuth, -0.5);
    EXPECT_LE(p.aod.azimuth, 0.5);
    EXPECT_GE(p.aoa.elevation, -0.1);
    EXPECT_LE(p.aoa.elevation, 0.1);
  }
}

TEST(SinglePathModelTest, DifferentDrawsDiffer) {
  Rng rng(3);
  const Link a = make_single_path_link(ArrayGeometry::upa(4, 4),
                                       ArrayGeometry::upa(8, 8), rng);
  const Link b = make_single_path_link(ArrayGeometry::upa(4, 4),
                                       ArrayGeometry::upa(8, 8), rng);
  EXPECT_NE(a.paths()[0].aoa.azimuth, b.paths()[0].aoa.azimuth);
}

TEST(NycModelTest, TotalPowerNormalized) {
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const Link link = make_nyc_multipath_link(ArrayGeometry::upa(4, 4),
                                              ArrayGeometry::upa(8, 8), rng);
    EXPECT_NEAR(link.total_power(), 1.0, 1e-9);
  }
}

TEST(NycModelTest, SubpathCountIsMultipleOfClusterSize) {
  Rng rng(5);
  NycClusterParams params;
  params.subpaths_per_cluster = 7;
  const Link link = make_nyc_multipath_link(ArrayGeometry::upa(2, 2),
                                            ArrayGeometry::upa(4, 4), rng,
                                            params);
  EXPECT_EQ(link.paths().size() % 7, 0u);
  EXPECT_GE(link.paths().size(), 7u);
}

TEST(NycModelTest, LowRankEnergyConcentration) {
  // The property the paper exploits: a few spatial dimensions capture most
  // of the channel energy (95% in ≲3 dims for small arrays per [3]).
  Rng rng(6);
  real fraction_acc = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const Link link = make_nyc_multipath_link(ArrayGeometry::upa(4, 4),
                                              ArrayGeometry::upa(4, 4), rng);
    const auto eig = linalg::hermitian_eig(link.rx_covariance());
    fraction_acc += eig.energy_fraction(3);
  }
  EXPECT_GT(fraction_acc / trials, 0.85);
}

TEST(NycModelTest, CovarianceIsPsdHermitian) {
  Rng rng(7);
  const Link link = make_nyc_multipath_link(ArrayGeometry::upa(4, 4),
                                            ArrayGeometry::upa(8, 8), rng);
  const Matrix q = link.rx_covariance();
  EXPECT_TRUE(q.is_hermitian(1e-9));
  const auto eig = linalg::hermitian_eig(q);
  for (const real e : eig.eigenvalues) EXPECT_GE(e, -1e-8);
}

TEST(NycModelTest, ClusterCountVaries) {
  Rng rng(8);
  std::set<index_t> counts;
  NycClusterParams params;
  for (int t = 0; t < 40; ++t) {
    const Link link = make_nyc_multipath_link(ArrayGeometry::upa(2, 2),
                                              ArrayGeometry::upa(2, 2), rng,
                                              params);
    counts.insert(link.paths().size() / params.subpaths_per_cluster);
  }
  EXPECT_GE(counts.size(), 2u);  // Poisson(1.8) is not degenerate
  for (const index_t k : counts) EXPECT_GE(k, 1u);
}

TEST(NycModelTest, AnglesRespectSector) {
  Rng rng(9);
  NycClusterParams params;
  params.sector = {-0.6, 0.6, -0.2, 0.2};
  for (int t = 0; t < 10; ++t) {
    const Link link = make_nyc_multipath_link(ArrayGeometry::upa(2, 2),
                                              ArrayGeometry::upa(2, 2), rng,
                                              params);
    for (const Path& p : link.paths()) {
      EXPECT_GE(p.aod.azimuth, -0.6);
      EXPECT_LE(p.aod.azimuth, 0.6);
      EXPECT_GE(p.aoa.azimuth, -0.6);
      EXPECT_LE(p.aoa.azimuth, 0.6);
      EXPECT_GE(p.aoa.elevation, -0.2);
      EXPECT_LE(p.aoa.elevation, 0.2);
    }
  }
}

TEST(NycModelTest, InvalidParamsThrow) {
  Rng rng(10);
  NycClusterParams bad;
  bad.subpaths_per_cluster = 0;
  EXPECT_THROW(make_nyc_multipath_link(ArrayGeometry::upa(2, 2),
                                       ArrayGeometry::upa(2, 2), rng, bad),
               precondition_error);
  NycClusterParams bad2;
  bad2.lambda_clusters = 0.0;
  EXPECT_THROW(make_nyc_multipath_link(ArrayGeometry::upa(2, 2),
                                       ArrayGeometry::upa(2, 2), rng, bad2),
               precondition_error);
}

TEST(FixedPathsModelTest, PreservesGivenPaths) {
  std::vector<Path> paths{Path{0.7, {0.1, 0.0}, {0.2, 0.0}},
                          Path{0.3, {-0.3, 0.0}, {0.4, 0.1}}};
  const Link link = make_fixed_paths_link(ArrayGeometry::upa(2, 2),
                                          ArrayGeometry::upa(4, 4), paths);
  EXPECT_EQ(link.paths().size(), 2u);
  EXPECT_NEAR(link.paths()[0].power, 0.7, 1e-15);
  EXPECT_EQ(linalg::numerical_rank(link.rx_covariance(), 1e-8), 2u);
}

}  // namespace
}  // namespace mmw::channel
