// The determinism contract of the parallel Monte-Carlo drivers: for a fixed
// master seed, serial (threads = 1) and parallel (threads = 2, N) runs must
// produce byte-identical rendered CSV output. See DESIGN.md §7.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/experiments.h"

namespace mmw::sim {
namespace {

Scenario tiny_scenario(index_t threads) {
  Scenario sc;
  sc.channel = ChannelKind::kSinglePath;
  sc.tx_grid_x = 2;
  sc.tx_grid_y = 2;
  sc.rx_grid_x = 4;
  sc.rx_grid_y = 4;
  sc.trials = 6;
  sc.seed = 20160707;
  sc.threads = threads;
  return sc;
}

std::string effectiveness_csv(const Scenario& sc,
                              const std::vector<real>& rates) {
  core::RandomSearch rnd;
  core::ScanSearch scan;
  core::ProposedAlignment proposed;
  const std::vector<const core::AlignmentStrategy*> strategies{
      &rnd, &scan, &proposed};
  const auto res = run_search_effectiveness(sc, strategies, rates);
  return render_csv("search_rate", res.search_rates, res.loss_db);
}

std::string cost_csv(const Scenario& sc, const std::vector<real>& targets) {
  core::RandomSearch rnd;
  core::ScanSearch scan;
  const std::vector<const core::AlignmentStrategy*> strategies{&rnd, &scan};
  const auto res = run_cost_efficiency(sc, strategies, targets);
  return render_csv("target_loss_db", res.target_loss_db, res.required_rate);
}

TEST(ParallelDeterminismTest, EffectivenessCsvIdenticalAcrossThreadCounts) {
  const std::vector<real> rates{0.1, 0.3, 0.6, 1.0};
  const std::string serial = effectiveness_csv(tiny_scenario(1), rates);
  EXPECT_EQ(serial, effectiveness_csv(tiny_scenario(2), rates));
  EXPECT_EQ(serial, effectiveness_csv(tiny_scenario(5), rates));
  // threads = 0 resolves to hardware concurrency — still identical.
  EXPECT_EQ(serial, effectiveness_csv(tiny_scenario(0), rates));
}

TEST(ParallelDeterminismTest, CostCsvIdenticalAcrossThreadCounts) {
  const std::vector<real> targets{6.0, 3.0, 1.0};
  const std::string serial = cost_csv(tiny_scenario(1), targets);
  EXPECT_EQ(serial, cost_csv(tiny_scenario(2), targets));
  EXPECT_EQ(serial, cost_csv(tiny_scenario(5), targets));
  EXPECT_EQ(serial, cost_csv(tiny_scenario(0), targets));
}

TEST(ParallelDeterminismTest, FullSummariesIdenticalNotJustMeans) {
  // render_csv only prints means; compare every Summary field so a race
  // that only perturbs higher moments cannot hide.
  core::RandomSearch rnd;
  const std::vector<const core::AlignmentStrategy*> strategies{&rnd};
  const std::vector<real> rates{0.2, 0.8};
  const auto a = run_search_effectiveness(tiny_scenario(1), strategies, rates);
  const auto b = run_search_effectiveness(tiny_scenario(4), strategies, rates);
  const auto& ra = a.loss_db.at("Random");
  const auto& rb = b.loss_db.at("Random");
  ASSERT_EQ(ra.size(), rb.size());
  for (index_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].count, rb[i].count);
    EXPECT_EQ(ra[i].mean, rb[i].mean);          // bit-exact, not near
    EXPECT_EQ(ra[i].stddev, rb[i].stddev);
    EXPECT_EQ(ra[i].minimum, rb[i].minimum);
    EXPECT_EQ(ra[i].maximum, rb[i].maximum);
    EXPECT_EQ(ra[i].median, rb[i].median);
  }
}

TEST(ParallelDeterminismTest, MoreThreadsThanTrialsIsFine) {
  Scenario sc = tiny_scenario(16);
  sc.trials = 3;
  Scenario sc1 = tiny_scenario(1);
  sc1.trials = 3;
  const std::vector<real> rates{0.5};
  EXPECT_EQ(effectiveness_csv(sc1, rates), effectiveness_csv(sc, rates));
}

TEST(ParallelDeterminismTest, TrialStreamsAreSeedAndIndexKeyed) {
  // Rng::stream must not depend on call order or shared state.
  randgen::Rng a = randgen::Rng::stream(42, 7);
  randgen::Rng b = randgen::Rng::stream(42, 7);
  EXPECT_EQ(a.engine()(), b.engine()());
  randgen::Rng c = randgen::Rng::stream(42, 8);
  randgen::Rng d = randgen::Rng::stream(43, 7);
  const std::uint64_t ref = randgen::Rng::stream(42, 7).engine()();
  EXPECT_NE(c.engine()(), ref);
  EXPECT_NE(d.engine()(), ref);
}

TEST(ParallelDeterminismTest, InstrumentationDoesNotPerturbResults) {
  // The observability layer only observes: CSVs must be byte-identical with
  // metrics+tracing fully on and fully off, serial and parallel alike.
  const std::vector<real> rates{0.1, 0.4, 1.0};
  const bool was_enabled = obs::enabled();
  obs::set_enabled(false);
  const std::string bare_serial = effectiveness_csv(tiny_scenario(1), rates);
  const std::string bare_parallel =
      effectiveness_csv(tiny_scenario(4), rates);

  obs::set_enabled(true);
  obs::TraceCollector::global().set_capturing(true);
  const std::string obs_serial = effectiveness_csv(tiny_scenario(1), rates);
  const std::string obs_parallel =
      effectiveness_csv(tiny_scenario(4), rates);
  EXPECT_GT(obs::TraceCollector::global().event_count(), 0u);
  obs::TraceCollector::global().set_capturing(false);
  obs::TraceCollector::global().clear();
  obs::set_enabled(was_enabled);

  EXPECT_EQ(bare_serial, bare_parallel);
  EXPECT_EQ(bare_serial, obs_serial);
  EXPECT_EQ(bare_serial, obs_parallel);
}

TEST(ParallelDeterminismTest, SolverMetricsIdenticalAcrossThreadCounts) {
  // Counter/histogram merges are integer sums in a deterministic shard
  // order, so a fixed seed yields the same solver metrics at any thread
  // count — the property run manifests rely on.
  const std::vector<real> rates{0.3, 0.8};
  const bool was_enabled = obs::enabled();
  const auto solve_metrics = [&](index_t threads) {
    obs::Registry::global().reset();
    obs::set_enabled(true);
    (void)effectiveness_csv(tiny_scenario(threads), rates);
    obs::set_enabled(false);
    const auto snap = obs::Registry::global().snapshot();
    std::string out;
    for (const char* name :
         {"estimation.ml.solves", "estimation.ml.nonconverged",
          "estimation.nll_evals", "linalg.eig.jacobi_calls",
          "mac.session.measurements", "sim.trials"}) {
      out += name;
      out += '=';
      out += std::to_string(snap.counters.at(name).value);
      out += '\n';
    }
    return out;
  };
  const std::string serial = solve_metrics(1);
  EXPECT_EQ(serial, solve_metrics(3));
  EXPECT_NE(serial.find("estimation.ml.solves="), std::string::npos);
  obs::Registry::global().reset();
  obs::set_enabled(was_enabled);
}

TEST(ParallelDeterminismTest, ExceptionInsideTrialPropagates) {
  // A bad per-rate value is only validated inside the trial body; the
  // pool must surface the precondition_error, not swallow or crash.
  Scenario sc = tiny_scenario(3);
  core::RandomSearch rnd;
  EXPECT_THROW(
      run_search_effectiveness(sc, {&rnd}, {0.0, 0.5}),
      precondition_error);
}

}  // namespace
}  // namespace mmw::sim
