// Quarantine + fault-robustness determinism: a trial that throws under
// faults.quarantine_trials must be excluded IDENTICALLY at every thread
// count, and the E8 robustness matrix must render byte-identical CSVs
// serial and parallel. See DESIGN.md §11.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiments.h"
#include "sim/robustness.h"

namespace mmw::sim {
namespace {

Scenario tiny_scenario(index_t threads) {
  Scenario sc;
  sc.channel = ChannelKind::kSinglePath;
  sc.tx_grid_x = 2;
  sc.tx_grid_y = 2;
  sc.rx_grid_x = 4;
  sc.rx_grid_y = 4;
  sc.trials = 10;
  sc.seed = 20160401;
  sc.threads = threads;
  return sc;
}

/// Measures the full pair grid in raster order, but throws convergence_error
/// when the first training slot was dropped by the fault plan. The throw is
/// a pure function of (seed, trial) — the same trials fail at every thread
/// count — which is exactly the property the quarantine tests pin down.
class DropSensitiveSearch final : public core::AlignmentStrategy {
 public:
  std::string_view name() const override { return "DropSensitive"; }
  void run(mac::Session& session) const override {
    for (index_t t = 0;
         t < session.tx_codebook().size() && !session.exhausted(); ++t)
      for (index_t r = 0;
           r < session.rx_codebook().size() && !session.exhausted(); ++r) {
        session.measure(t, r);
        if (session.records().size() == 1 &&
            session.records().front().energy == 0.0)
          throw convergence_error("first training slot dropped");
      }
  }
};

/// Always throws before measuring anything.
class AlwaysThrowSearch final : public core::AlignmentStrategy {
 public:
  std::string_view name() const override { return "AlwaysThrow"; }
  void run(mac::Session&) const override {
    throw convergence_error("always fails");
  }
};

TEST(QuarantineTest, FailedTrialsExcludedIdenticallyAcrossThreadCounts) {
  const std::vector<real> rates{0.25, 0.75};
  DropSensitiveSearch fragile;
  core::ScanSearch scan;
  const std::vector<const core::AlignmentStrategy*> strategies{&fragile,
                                                               &scan};
  auto run = [&](index_t threads) {
    Scenario sc = tiny_scenario(threads);
    sc.faults.drop_probability = 0.4;
    sc.faults.quarantine_trials = true;
    return run_search_effectiveness(sc, strategies, rates);
  };
  const EffectivenessResult serial = run(1);
  // The drop coin lands heads for SOME first slots but not all: the
  // quarantine set is non-empty and non-total (a seed-dependent fact this
  // test pins; if the seed changes, pick one with a mixed outcome).
  ASSERT_FALSE(serial.quarantined_trials.empty());
  ASSERT_LT(serial.quarantined_trials.size(), tiny_scenario(1).trials);
  for (const auto& [name, summaries] : serial.loss_db)
    for (const Summary& s : summaries)
      EXPECT_EQ(s.count,
                tiny_scenario(1).trials - serial.quarantined_trials.size())
          << name;

  for (const index_t threads : {index_t{2}, index_t{8}}) {
    const EffectivenessResult parallel = run(threads);
    EXPECT_EQ(serial.quarantined_trials, parallel.quarantined_trials);
    EXPECT_EQ(
        render_csv("search_rate", serial.search_rates, serial.loss_db),
        render_csv("search_rate", parallel.search_rates, parallel.loss_db));
  }
}

TEST(QuarantineTest, WithoutQuarantineTheSameFailurePropagates) {
  const std::vector<real> rates{0.5};
  DropSensitiveSearch fragile;
  Scenario sc = tiny_scenario(3);
  sc.faults.drop_probability = 0.4;  // same drops, but no quarantine
  EXPECT_THROW(run_search_effectiveness(sc, {&fragile}, rates),
               convergence_error);
}

TEST(QuarantineTest, AllTrialsFailingIsAnError) {
  AlwaysThrowSearch bad;
  Scenario sc = tiny_scenario(2);
  sc.trials = 3;
  sc.faults.quarantine_trials = true;
  EXPECT_THROW(run_search_effectiveness(sc, {&bad}, {0.5}),
               precondition_error);
}

TEST(RobustnessMatrixTest, CsvByteIdenticalAcrossThreadCounts) {
  core::RandomSearch rnd;
  core::ScanSearch scan;
  const std::vector<const core::AlignmentStrategy*> strategies{&rnd, &scan};

  std::vector<FaultCase> cases(3);
  cases[0].name = "clean";
  cases[1].name = "drops";
  cases[1].faults.drop_probability = 0.2;
  cases[2].name = "blockage";
  cases[2].faults.blockage_probability = 1.0;
  cases[2].faults.blockage_attenuation_db = 25.0;

  auto run = [&](index_t threads) {
    RobustnessConfig config;
    config.scenario = tiny_scenario(threads);
    config.scenario.trials = 6;
    config.budget_rate = 0.25;
    return run_fault_robustness(config, strategies, cases);
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.size(), 3u);
  const std::string csv = render_robustness_csv(serial);
  EXPECT_EQ(csv, render_robustness_csv(run(3)));

  // A static link with no faults cannot collapse post-training: the clean
  // column must report zero outages and spend exactly one verify slot.
  for (const auto& [name, r] : serial[0].by_strategy) {
    EXPECT_EQ(r.outage_rate, 0.0) << name;
    EXPECT_EQ(r.recovery_slots.mean, 1.0) << name;
    EXPECT_EQ(r.trials, 6u) << name;
  }
  EXPECT_EQ(serial[0].quarantined, 0u);
  // A guaranteed 25 dB blockage makes the verified energy collapse against
  // a clean-slot trained best whenever the onset lands late in training, so
  // across strategies the re-alignment machinery must engage: outages
  // declared, extra recovery slots spent beyond the single verify probe.
  // (Whether a SPECIFIC strategy hits a late onset is seed luck, so the
  // assertion aggregates.)
  real blockage_outages = 0.0, blockage_slots = 0.0, clean_slots = 0.0;
  for (const auto& [name, r] : serial[2].by_strategy) {
    blockage_outages += r.outage_rate;
    blockage_slots += r.recovery_slots.mean;
  }
  for (const auto& [name, r] : serial[0].by_strategy)
    clean_slots += r.recovery_slots.mean;
  EXPECT_GT(blockage_outages, 0.0);
  EXPECT_GT(blockage_slots, clean_slots);
}

TEST(RobustnessMatrixTest, RealignOffSpendsNoRecoverySlots) {
  core::ScanSearch scan;
  std::vector<FaultCase> cases(1);
  cases[0].name = "clean";
  RobustnessConfig config;
  config.scenario = tiny_scenario(1);
  config.scenario.trials = 4;
  config.budget_rate = 0.25;
  config.realign = false;
  const auto results = run_fault_robustness(config, {&scan}, cases);
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0].by_strategy.at("Scan");
  EXPECT_EQ(r.recovery_slots.mean, 0.0);
  EXPECT_EQ(r.outage_rate, 0.0);
}

}  // namespace
}  // namespace mmw::sim
