#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mmw::sim {
namespace {

TEST(StatsTest, SingleValue) {
  const real xs[] = {3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(StatsTest, KnownSample) {
  const real xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.minimum, 2.0);
  EXPECT_DOUBLE_EQ(s.maximum, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(StatsTest, OddMedian) {
  const real xs[] = {9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(summarize(xs).median, 5.0);
}

TEST(StatsTest, CiShrinksWithSampleSize) {
  std::vector<real> small(10, 0.0), large(1000, 0.0);
  for (index_t i = 0; i < small.size(); ++i) small[i] = (i % 2) ? 1.0 : -1.0;
  for (index_t i = 0; i < large.size(); ++i) large[i] = (i % 2) ? 1.0 : -1.0;
  EXPECT_GT(summarize(small).ci95_half_width(),
            summarize(large).ci95_half_width());
}

TEST(StatsTest, EmptyThrows) {
  EXPECT_THROW(summarize({}), precondition_error);
  EXPECT_THROW(mean({}), precondition_error);
}

TEST(StatsTest, MeanHelper) {
  const real xs[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
}

}  // namespace
}  // namespace mmw::sim
