// sim::Trajectory and hysteresis serving-site selection — the geometry
// half of the tracking layer. The crafted two-site ping-pong walk is the
// ISSUE-10 handover invariant: with the hysteresis margin on, a user
// jittering around the midpoint must NOT bounce between sites each epoch;
// with the margin off, the same walk flips constantly.
#include "sim/mobility.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mmw::sim {
namespace {

TopologyConfig hex7() {
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kHexagonal;
  cfg.cells = 7;
  cfg.cell_radius_m = 100.0;
  return cfg;
}

TEST(TrajectoryTest, PositionIsPureAcrossCallOrder) {
  const Topology topo = Topology::build(hex7());
  Trajectory a(topo, 1.4, 0.5, 42, 3);
  Trajectory b(topo, 1.4, 0.5, 42, 3);
  // Query a forward, b in a scrambled order: same positions bit-exact.
  std::vector<UserPlacement> forward;
  for (index_t e = 0; e <= 50; ++e) forward.push_back(a.position_at(e));
  const index_t scrambled[] = {50, 0, 17, 33, 17, 2, 49, 8};
  for (const index_t e : scrambled) {
    const UserPlacement p = b.position_at(e);
    EXPECT_EQ(p.x, forward[e].x) << "epoch " << e;
    EXPECT_EQ(p.y, forward[e].y) << "epoch " << e;
  }
}

TEST(TrajectoryTest, DistinctUsersAndSeedsDiverge) {
  const Topology topo = Topology::build(hex7());
  Trajectory base(topo, 1.4, 0.5, 42, 3);
  Trajectory other_user(topo, 1.4, 0.5, 42, 4);
  Trajectory other_seed(topo, 1.4, 0.5, 43, 3);
  const UserPlacement p = base.position_at(0);
  const UserPlacement q = other_user.position_at(0);
  const UserPlacement r = other_seed.position_at(0);
  EXPECT_TRUE(p.x != q.x || p.y != q.y);
  EXPECT_TRUE(p.x != r.x || p.y != r.y);
}

TEST(TrajectoryTest, SpeedControlsStepLength) {
  const Topology topo = Topology::build(hex7());
  Trajectory walk(topo, 1.4, 0.5, 7, 0);
  // Consecutive positions are at most speed·τ apart (exactly that between
  // waypoints, less when a corner is turned... never more).
  for (index_t e = 0; e < 100; ++e) {
    const UserPlacement p = walk.position_at(e);
    const UserPlacement q = walk.position_at(e + 1);
    const real step = std::hypot(q.x - p.x, q.y - p.y);
    EXPECT_LE(step, 1.4 * 0.5 + 1e-9) << "epoch " << e;
  }
}

TEST(TrajectoryTest, ZeroSpeedStaysAtStart) {
  const Topology topo = Topology::build(hex7());
  Trajectory still(topo, 0.0, 0.5, 7, 0);
  const UserPlacement start = still.position_at(0);
  const UserPlacement later = still.position_at(1000);
  EXPECT_EQ(later.x, start.x);
  EXPECT_EQ(later.y, start.y);
}

TEST(TrajectoryTest, StaysInsideDeploymentBoundingBox) {
  const Topology topo = Topology::build(hex7());
  real min_x = topo.site(0).x, max_x = min_x;
  real min_y = topo.site(0).y, max_y = min_y;
  for (index_t s = 1; s < topo.n_cells(); ++s) {
    min_x = std::min(min_x, topo.site(s).x);
    max_x = std::max(max_x, topo.site(s).x);
    min_y = std::min(min_y, topo.site(s).y);
    max_y = std::max(max_y, topo.site(s).y);
  }
  const real r = hex7().cell_radius_m;
  Trajectory train(topo, 33.3, 0.5, 11, 5);
  for (index_t e = 0; e <= 400; ++e) {
    const UserPlacement p = train.position_at(e);
    EXPECT_GE(p.x, min_x - r - 1e-9);
    EXPECT_LE(p.x, max_x + r + 1e-9);
    EXPECT_GE(p.y, min_y - r - 1e-9);
    EXPECT_LE(p.y, max_y + r + 1e-9);
  }
}

TEST(NearestSiteTest, PicksClosestAndBreaksTiesLow) {
  const Topology topo = Topology::build(hex7());
  // On top of site 2 (clamped distance ties with nothing else nearby).
  const UserPlacement on2{topo.site(2).x, topo.site(2).y};
  EXPECT_EQ(nearest_site(topo, on2), 2u);
  // Equidistant from every site only at... the center site wins ties by
  // index: craft a position equidistant from sites 1 and 2 but closer to
  // them than to the rest → the lower index of the tied pair.
  const UserPlacement mid{(topo.site(1).x + topo.site(2).x) / 2.0,
                          (topo.site(1).y + topo.site(2).y) / 2.0};
  const index_t pick = nearest_site(topo, mid);
  const real d1 = topo.distance(1, mid), d2 = topo.distance(2, mid);
  if (d1 == d2) EXPECT_EQ(pick, std::min<index_t>(1, 2));
}

TEST(ServingSiteTest, HysteresisPreventsPingPong) {
  // The crafted two-site walk: a user jitters ±1 m around the midpoint of
  // sites 0 and 1. Without hysteresis the serving site flips every epoch;
  // with a 3 dB margin the serving site never changes, because ±1 m around
  // the midpoint moves the gain ratio far less than 3 dB.
  TopologyConfig cfg = hex7();
  cfg.cells = 2;
  const Topology topo = Topology::build(cfg);
  const real mx = (topo.site(0).x + topo.site(1).x) / 2.0;
  const real my = (topo.site(0).y + topo.site(1).y) / 2.0;
  const real ux = (topo.site(1).x - topo.site(0).x);
  const real uy = (topo.site(1).y - topo.site(0).y);
  const real norm = std::hypot(ux, uy);

  index_t with_h = nearest_site(topo, {mx, my});
  index_t without_h = with_h;
  index_t flips_with = 0, flips_without = 0;
  for (index_t e = 0; e < 64; ++e) {
    // ±1 m jitter along the inter-site axis, alternating sides.
    const real s = (e % 2 == 0) ? 1.0 : -1.0;
    const UserPlacement p{mx + s * ux / norm, my + s * uy / norm};
    const index_t nh = select_serving_site(topo, p, with_h, 3.0);
    if (nh != with_h) ++flips_with;
    with_h = nh;
    const index_t nw = select_serving_site(topo, p, without_h, 0.0);
    if (nw != without_h) ++flips_without;
    without_h = nw;
  }
  EXPECT_EQ(flips_with, 0u);
  EXPECT_EQ(flips_without, 64u);  // flips every single epoch
}

TEST(ServingSiteTest, LargeGainGapOverridesHysteresis) {
  TopologyConfig cfg = hex7();
  cfg.cells = 2;
  const Topology topo = Topology::build(cfg);
  // Standing on site 1 while served by site 0: the gap is tens of dB, so
  // even a 10 dB margin hands the user over.
  const UserPlacement on1{topo.site(1).x, topo.site(1).y};
  EXPECT_EQ(select_serving_site(topo, on1, 0, 10.0), 1u);
  // And the handover is sticky: once on site 1, site 0 can't win it back.
  EXPECT_EQ(select_serving_site(topo, on1, 1, 10.0), 1u);
}

TEST(ServingSiteTest, KeepsCurrentWithinMargin) {
  TopologyConfig cfg = hex7();
  cfg.cells = 2;
  const Topology topo = Topology::build(cfg);
  const UserPlacement mid{(topo.site(0).x + topo.site(1).x) / 2.0,
                          (topo.site(0).y + topo.site(1).y) / 2.0};
  // Exactly between the sites either one is within any positive margin of
  // the other — whichever is current stays.
  EXPECT_EQ(select_serving_site(topo, mid, 0, 1.0), 0u);
  EXPECT_EQ(select_serving_site(topo, mid, 1, 1.0), 1u);
}

}  // namespace
}  // namespace mmw::sim
