#include "sim/evaluation.h"

#include <gtest/gtest.h>

#include "channel/models.h"

namespace mmw::sim {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;
using channel::Link;
using mac::MeasurementRecord;
using randgen::Rng;

struct Fixture {
  ArrayGeometry tx = ArrayGeometry::upa(2, 2);
  ArrayGeometry rx = ArrayGeometry::upa(2, 2);
  Rng rng{3};
  Link link = channel::make_single_path_link(tx, rx, rng);
  Codebook tx_cb = Codebook::dft(tx);
  Codebook rx_cb = Codebook::dft(rx);
  core::PairGainOracle oracle{link, tx_cb, rx_cb};
};

TEST(EvaluationTest, BestInPrefixPicksMaxEnergy) {
  std::vector<MeasurementRecord> recs{
      {0, 0, 1.0}, {1, 1, 5.0}, {2, 2, 3.0}};
  EXPECT_EQ(best_in_prefix(recs, 1).tx_beam, 0u);
  EXPECT_EQ(best_in_prefix(recs, 2).tx_beam, 1u);
  EXPECT_EQ(best_in_prefix(recs, 3).tx_beam, 1u);
  EXPECT_THROW(best_in_prefix(recs, 0), precondition_error);
  EXPECT_THROW(best_in_prefix(recs, 4), precondition_error);
}

TEST(EvaluationTest, LossAfterUsesOracle) {
  Fixture f;
  const auto [ot, orx] = f.oracle.optimal_pair();
  std::vector<MeasurementRecord> recs{{(ot + 1) % 4, orx, 1.0},
                                      {ot, orx, 2.0}};
  EXPECT_GT(loss_after(f.oracle, recs, 1), 0.0);
  EXPECT_NEAR(loss_after(f.oracle, recs, 2), 0.0, 1e-12);
}

TEST(EvaluationTest, TrajectoryIsNonIncreasingInBestEnergy) {
  Fixture f;
  // Energies ordered so the claimed pair switches twice.
  const auto [ot, orx] = f.oracle.optimal_pair();
  std::vector<MeasurementRecord> recs{
      {(ot + 1) % 4, (orx + 1) % 4, 1.0},
      {(ot + 2) % 4, orx, 4.0},
      {(ot + 3) % 4, (orx + 2) % 4, 2.0},  // lower energy: no switch
      {ot, orx, 9.0}};
  const auto traj = loss_trajectory(f.oracle, recs);
  ASSERT_EQ(traj.size(), 4u);
  EXPECT_EQ(traj[1], traj[2]);  // non-switch keeps the loss
  EXPECT_NEAR(traj[3], 0.0, 1e-12);
}

TEST(EvaluationTest, TrajectoryMatchesPrefixEvaluation) {
  Fixture f;
  Rng rng(5);
  std::vector<MeasurementRecord> recs;
  for (index_t t = 0; t < 4; ++t)
    for (index_t r = 0; r < 4; ++r)
      recs.push_back({t, r, rng.uniform()});
  const auto traj = loss_trajectory(f.oracle, recs);
  for (index_t k = 1; k <= recs.size(); ++k)
    EXPECT_NEAR(traj[k - 1], loss_after(f.oracle, recs, k), 1e-12);
}

TEST(EvaluationTest, MeasurementsToReachFindsFirstCrossing) {
  Fixture f;
  const auto [ot, orx] = f.oracle.optimal_pair();
  std::vector<MeasurementRecord> recs{{(ot + 1) % 4, (orx + 1) % 4, 1.0},
                                      {ot, orx, 3.0},
                                      {(ot + 2) % 4, orx, 0.5}};
  const auto needed = measurements_to_reach(f.oracle, recs, 0.01);
  ASSERT_TRUE(needed.has_value());
  EXPECT_EQ(*needed, 2u);
}

TEST(EvaluationTest, MeasurementsToReachCanFail) {
  Fixture f;
  const auto [ot, orx] = f.oracle.optimal_pair();
  std::vector<MeasurementRecord> recs{{(ot + 1) % 4, (orx + 1) % 4, 1.0}};
  EXPECT_FALSE(measurements_to_reach(f.oracle, recs, 0.0).has_value());
  EXPECT_THROW(measurements_to_reach(f.oracle, recs, -1.0),
               precondition_error);
}

}  // namespace
}  // namespace mmw::sim
