#include "sim/experiments.h"

#include <gtest/gtest.h>

namespace mmw::sim {
namespace {

Scenario tiny_scenario() {
  Scenario sc;
  sc.channel = ChannelKind::kSinglePath;
  sc.tx_grid_x = 2;
  sc.tx_grid_y = 2;
  sc.rx_grid_x = 4;
  sc.rx_grid_y = 4;
  sc.trials = 4;
  sc.seed = 9;
  return sc;
}

TEST(ScenarioTest, TotalPairs) {
  EXPECT_EQ(tiny_scenario().total_pairs(), 64u);
  Scenario paper;  // defaults
  EXPECT_EQ(paper.total_pairs(), 1024u);
}

TEST(ScenarioTest, MakeTrialShapes) {
  const Scenario sc = tiny_scenario();
  randgen::Rng rng(1);
  const TrialContext ctx = make_trial(sc, rng);
  EXPECT_EQ(ctx.link.tx_size(), 4u);
  EXPECT_EQ(ctx.link.rx_size(), 16u);
  EXPECT_EQ(ctx.tx_codebook.size(), 4u);
  EXPECT_EQ(ctx.rx_codebook.size(), 16u);
  EXPECT_GT(ctx.oracle.optimal_gain(), 0.0);
}

TEST(ScenarioTest, DftCodebookOption) {
  Scenario sc = tiny_scenario();
  sc.codebook = CodebookKind::kDft;
  randgen::Rng rng(1);
  const TrialContext ctx = make_trial(sc, rng);
  EXPECT_TRUE(ctx.rx_codebook.wraps());  // DFT wraps; angular grid doesn't
}

TEST(ScenarioTest, MultipathChannelOption) {
  Scenario sc = tiny_scenario();
  sc.channel = ChannelKind::kNycMultipath;
  randgen::Rng rng(2);
  const TrialContext ctx = make_trial(sc, rng);
  EXPECT_GE(ctx.link.paths().size(), sc.nyc.subpaths_per_cluster);
}

TEST(EffectivenessTest, ProducesSummariesForEveryRateAndStrategy) {
  const Scenario sc = tiny_scenario();
  core::RandomSearch rnd;
  core::ScanSearch scan;
  const std::vector<const core::AlignmentStrategy*> strats{&rnd, &scan};
  const std::vector<real> rates{0.1, 0.3, 0.6};
  const auto res = run_search_effectiveness(sc, strats, rates);
  EXPECT_EQ(res.search_rates, rates);
  ASSERT_EQ(res.loss_db.size(), 2u);
  for (const auto& [name, row] : res.loss_db) {
    ASSERT_EQ(row.size(), rates.size());
    for (const auto& s : row) {
      EXPECT_EQ(s.count, sc.trials);
      EXPECT_GE(s.mean, 0.0);
    }
  }
}

TEST(EffectivenessTest, LossDecreasesWithMoreBudgetForRandom) {
  Scenario sc = tiny_scenario();
  sc.trials = 12;
  core::RandomSearch rnd;
  const std::vector<real> rates{0.05, 1.0};
  const auto res =
      run_search_effectiveness(sc, {&rnd}, rates);
  const auto& row = res.loss_db.at("Random");
  EXPECT_LE(row[1].mean, row[0].mean);
}

TEST(EffectivenessTest, FullRateLossIsSmall) {
  // At 100% search rate with fade averaging the claimed pair is (near)
  // optimal — the paper's "no loss at 100%" premise.
  Scenario sc = tiny_scenario();
  sc.trials = 8;
  sc.fades_per_measurement = 64;
  core::RandomSearch rnd;
  const auto res = run_search_effectiveness(sc, {&rnd}, {1.0});
  EXPECT_LT(res.loss_db.at("Random")[0].mean, 0.5);
}

TEST(EffectivenessTest, InputValidation) {
  const Scenario sc = tiny_scenario();
  core::RandomSearch rnd;
  EXPECT_THROW(run_search_effectiveness(sc, {}, {0.5}), precondition_error);
  EXPECT_THROW(run_search_effectiveness(sc, {&rnd}, {}), precondition_error);
  EXPECT_THROW(run_search_effectiveness(sc, {&rnd}, {0.5, 0.1}),
               precondition_error);
  EXPECT_THROW(run_search_effectiveness(sc, {&rnd}, {0.0}),
               precondition_error);
  EXPECT_THROW(run_search_effectiveness(sc, {&rnd}, {1.5}),
               precondition_error);
}

TEST(EffectivenessTest, Reproducible) {
  const Scenario sc = tiny_scenario();
  core::RandomSearch rnd;
  const auto a = run_search_effectiveness(sc, {&rnd}, {0.2});
  const auto b = run_search_effectiveness(sc, {&rnd}, {0.2});
  EXPECT_DOUBLE_EQ(a.loss_db.at("Random")[0].mean,
                   b.loss_db.at("Random")[0].mean);
}

TEST(CostEfficiencyTest, RequiredRateDecreasesWithLooserTarget) {
  Scenario sc = tiny_scenario();
  sc.trials = 10;
  core::RandomSearch rnd;
  const std::vector<real> targets{3.0, 1.0};  // 3 dB is easier than 1 dB
  const auto res = run_cost_efficiency(sc, {&rnd}, targets);
  const auto& row = res.required_rate.at("Random");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_LE(row[0].mean, row[1].mean);
  for (const auto& s : row) {
    EXPECT_GT(s.mean, 0.0);
    EXPECT_LE(s.mean, 1.0);
  }
}

TEST(CostEfficiencyTest, InputValidation) {
  const Scenario sc = tiny_scenario();
  core::RandomSearch rnd;
  EXPECT_THROW(run_cost_efficiency(sc, {}, {1.0}), precondition_error);
  EXPECT_THROW(run_cost_efficiency(sc, {&rnd}, {}), precondition_error);
}

TEST(RenderTest, TableContainsAllSeries) {
  std::map<std::string, std::vector<Summary>> series;
  const real xs_arr[] = {1.0, 2.0};
  std::vector<real> xs(xs_arr, xs_arr + 2);
  const real a_vals[] = {0.5, 0.25};
  series["A"] = {summarize({a_vals, 1}), summarize({a_vals + 1, 1})};
  const std::string table = render_table("x", xs, series);
  EXPECT_NE(table.find("A"), std::string::npos);
  EXPECT_NE(table.find("0.500"), std::string::npos);
  const std::string csv = render_csv("x", xs, series);
  EXPECT_NE(csv.find("x,A"), std::string::npos);
}

TEST(RenderTest, LengthMismatchThrows) {
  std::map<std::string, std::vector<Summary>> series;
  const real v[] = {1.0};
  series["A"] = {summarize(v)};
  const std::vector<real> xs{1.0, 2.0};
  EXPECT_THROW(render_table("x", xs, series), precondition_error);
  EXPECT_THROW(render_csv("x", xs, series), precondition_error);
}

}  // namespace
}  // namespace mmw::sim
