// Pinned-seed goldens for the extension engines — E7 (multi-cell
// interference), E8 (fault robustness), E9 (serving) — the same freeze the
// paper figures get in golden_figures_test.cpp: tiny configurations, fixed
// seeds, values pinned to 17 significant digits at generation time. Any
// change to an engine's arithmetic, stream layout, or reduction order
// shows up here as a precise diff, not a statistical drift.
//
// Regenerating after an INTENTIONAL change: print the asserted quantities
// with %.17g under the exact configs below (threads = 1) and paste.
#include <gtest/gtest.h>

#include <vector>

#include "core/strategy.h"
#include "serve/serve.h"
#include "sim/multicell.h"
#include "sim/robustness.h"

namespace mmw::sim {
namespace {

constexpr real kTol = 1e-9;

Scenario tiny_scenario() {
  Scenario sc;
  sc.channel = ChannelKind::kSinglePath;
  sc.tx_grid_x = 2;
  sc.tx_grid_y = 2;
  sc.rx_grid_x = 4;
  sc.rx_grid_y = 4;
  sc.fades_per_measurement = 2;
  sc.gamma = 100.0;
  sc.seed = 20160401;
  sc.trials = 3;
  sc.threads = 1;
  return sc;
}

TEST(GoldenExtensions, E7MulticellTinyTrialsPinned) {
  core::ExhaustiveSearch exhaustive;
  core::ProposedAlignment proposed;
  MultiCellConfig cfg;
  cfg.scenario = tiny_scenario();
  cfg.topology.cells = 3;
  cfg.search_rate = 0.10;
  cfg.budget_rate = 0.35;
  const MultiCellResult r = run_multicell(cfg, {&exhaustive, &proposed});

  EXPECT_EQ(r.cells, 3u);
  EXPECT_EQ(r.sessions_per_strategy, 9u);
  EXPECT_NEAR(r.loss_db.at("Exhaustive").mean, 19.417093704743756, kTol);
  EXPECT_NEAR(r.loss_db.at("Proposed").mean, 23.471701035077917, kTol);
  EXPECT_NEAR(r.required_rate.at("Exhaustive").mean, 0.58854166666666663,
              kTol);
  EXPECT_NEAR(r.required_rate.at("Proposed").mean, 0.35069444444444442,
              kTol);
  EXPECT_NEAR(r.interference_over_noise_db.mean, 7.2838172682883391, kTol);
  EXPECT_TRUE(r.quarantined_shards.empty());
}

TEST(GoldenExtensions, E8RobustnessTinyTrialsPinned) {
  core::ExhaustiveSearch exhaustive;
  core::ProposedAlignment proposed;
  RobustnessConfig cfg;
  cfg.scenario = tiny_scenario();
  FaultCase clean{"clean", {}};
  clean.faults.quarantine_trials = true;
  FaultCase blockage{"blockage", {}};
  blockage.faults.blockage_probability = 1.0;
  blockage.faults.quarantine_trials = true;
  const std::vector<FaultCaseResult> rs = run_fault_robustness(
      cfg, {&exhaustive, &proposed}, {clean, blockage});

  ASSERT_EQ(rs.size(), 2u);
  const FaultCaseResult& c = rs[0];
  EXPECT_EQ(c.name, "clean");
  EXPECT_EQ(c.quarantined, 0u);
  EXPECT_NEAR(c.by_strategy.at("Exhaustive").loss_db.mean,
              22.598091839205889, kTol);
  EXPECT_NEAR(c.by_strategy.at("Proposed").loss_db.mean,
              31.45860261840927, kTol);
  EXPECT_NEAR(c.by_strategy.at("Exhaustive").outage_rate, 0.0, kTol);
  EXPECT_NEAR(c.by_strategy.at("Exhaustive").recovery_slots.mean, 1.0,
              kTol);

  const FaultCaseResult& b = rs[1];
  EXPECT_EQ(b.name, "blockage");
  EXPECT_NEAR(b.by_strategy.at("Exhaustive").loss_db.mean,
              32.133841465311875, kTol);
  EXPECT_NEAR(b.by_strategy.at("Proposed").loss_db.mean,
              31.45860261840927, kTol);
  EXPECT_NEAR(b.by_strategy.at("Exhaustive").outage_rate,
              0.66666666666666663, kTol);
  EXPECT_NEAR(b.by_strategy.at("Proposed").outage_rate,
              0.33333333333333331, kTol);
  EXPECT_NEAR(b.by_strategy.at("Exhaustive").recovery_slots.mean,
              3.6666666666666665, kTol);
  EXPECT_NEAR(b.by_strategy.at("Proposed").recovery_slots.mean,
              2.3333333333333335, kTol);
}

TEST(GoldenExtensions, E9ServingTinyRunPinned) {
  serve::ServeConfig cfg;
  cfg.scenario = tiny_scenario();
  cfg.scenario.gamma = 1000.0;
  cfg.scenario.tx_grid_x = 2;
  cfg.scenario.tx_grid_y = 1;
  cfg.scenario.rx_grid_x = 2;
  cfg.scenario.rx_grid_y = 2;
  cfg.topology.cells = 4;
  cfg.initial_sessions = 120;
  cfg.epochs = 6;
  cfg.align_epochs = 2;
  cfg.probes_per_slot = 3;
  cfg.session_block = 16;
  serve::ServingEngine engine(cfg);
  const serve::ServeResult r = engine.run();

  EXPECT_EQ(r.sessions_stepped, 720u);
  ASSERT_EQ(r.epochs.size(), 6u);
  EXPECT_NEAR(r.epochs.back().mean_loss_db, 3.1622759666407232, kTol);
  EXPECT_NEAR(r.epochs.back().p99_loss_db, 28.403470097243488, kTol);
  EXPECT_NEAR(r.loss_p50_db, 0.0, kTol);
  EXPECT_NEAR(r.loss_p99_db, 32.797410344916045, kTol);
  std::uint64_t claims = 0;
  for (const serve::EpochReport& e : r.epochs) claims += e.claims;
  EXPECT_EQ(claims, 133u);
}

}  // namespace
}  // namespace mmw::sim
