// The multi-cell engine's contracts (DESIGN.md §9):
//  - bit-exact thread-count independence of everything the bench writes
//    (rendered CSV bytes) plus the deterministic obs counters;
//  - fixed key-space RNG streams: adding cells never perturbs the serving
//    realizations of existing cells (prefix stability);
//  - interference behaves physically: zero for an isolated cell, growing
//    noise floor with cell count, never negative loss impact on average;
//  - topology geometry: spiral hex ring distances, square grid pitch,
//    annulus user drops, reciprocal-pathloss coupling.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/multicell.h"

namespace mmw::sim {
namespace {

MultiCellConfig tiny_config(index_t cells, index_t users, index_t threads) {
  MultiCellConfig config;
  config.topology.cells = cells;
  config.topology.users_per_cell = users;
  config.scenario.channel = ChannelKind::kSinglePath;
  config.scenario.tx_grid_x = 2;
  config.scenario.tx_grid_y = 2;
  config.scenario.rx_grid_x = 4;
  config.scenario.rx_grid_y = 4;
  config.scenario.trials = 3;
  config.scenario.seed = 20160614;
  config.scenario.threads = threads;
  return config;
}

const std::vector<const core::AlignmentStrategy*>& strategies() {
  static const core::RandomSearch rnd;
  static const core::ScanSearch scan;
  static const core::ProposedAlignment proposed;
  static const std::vector<const core::AlignmentStrategy*> all{&rnd, &scan,
                                                               &proposed};
  return all;
}

std::string sweep_csv(index_t threads) {
  std::vector<MultiCellResult> results;
  const std::vector<real> xs{1, 3};
  for (const real cells : xs)
    results.push_back(run_multicell(
        tiny_config(static_cast<index_t>(cells), 2, threads), strategies()));
  return render_multicell_csv("cells", xs, results);
}

TEST(MultiCellDeterminism, CsvBytesIdenticalAcrossThreadCounts) {
  const std::string serial = sweep_csv(1);
  EXPECT_EQ(serial, sweep_csv(2));
  EXPECT_EQ(serial, sweep_csv(5));
  // threads = 0 resolves to hardware concurrency — still identical.
  EXPECT_EQ(serial, sweep_csv(0));
}

TEST(MultiCellDeterminism, DeterministicMetricsIdenticalAcrossThreadCounts) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  auto run_and_snapshot = [&](index_t threads) {
    obs::Registry::global().reset();
    run_multicell(tiny_config(3, 2, threads), strategies());
    return obs::Registry::global().snapshot();
  };
  const auto serial = run_and_snapshot(1);
  const auto parallel = run_and_snapshot(4);
  obs::set_enabled(was_enabled);

  EXPECT_EQ(serial.counters.at("sim.multicell.cells").value,
            parallel.counters.at("sim.multicell.cells").value);
  EXPECT_EQ(serial.counters.at("sim.multicell.sessions").value,
            parallel.counters.at("sim.multicell.sessions").value);
  // The interference histogram records simulated quantities only, so its
  // per-bucket counts are thread-count-independent too (unlike the busy-
  // time histogram, which measures the wall clock).
  const auto& sh = serial.histograms.at("sim.multicell.interference_power");
  const auto& ph = parallel.histograms.at("sim.multicell.interference_power");
  EXPECT_EQ(sh.counts, ph.counts);
  EXPECT_EQ(sh.count, serial.counters.at("sim.multicell.cells").value * 2);
}

TEST(MultiCellDeterminism, RepeatedRunsAreBitIdentical) {
  auto run_once = [&] {
    return run_multicell(tiny_config(3, 1, 1), strategies());
  };
  const MultiCellResult a = run_once();
  const MultiCellResult b = run_once();
  for (const auto& [name, summary] : a.loss_db) {
    EXPECT_EQ(summary.mean, b.loss_db.at(name).mean) << name;
    EXPECT_EQ(summary.stddev, b.loss_db.at(name).stddev) << name;
    EXPECT_EQ(summary.count, b.loss_db.at(name).count) << name;
  }
  EXPECT_EQ(a.interference_over_noise_db.mean,
            b.interference_over_noise_db.mean);
}

TEST(Topology, SitePrefixStableWhenTopologyGrows) {
  // Growing the deployment never moves an existing site, so per-cell RNG
  // keys keep addressing the same geometry (spiral ring order is
  // prefix-stable by construction).
  TopologyConfig small_config;
  small_config.cells = 3;
  TopologyConfig big_config;
  big_config.cells = 19;  // two full hex rings
  const Topology small = Topology::build(small_config);
  const Topology big = Topology::build(big_config);
  for (index_t c = 0; c < small.n_cells(); ++c) {
    EXPECT_EQ(small.site(c).x, big.site(c).x) << c;
    EXPECT_EQ(small.site(c).y, big.site(c).y) << c;
  }
}

TEST(MultiCellInterference, IsolatedCellHasZeroInterference) {
  const MultiCellResult r = run_multicell(tiny_config(1, 1, 1), strategies());
  EXPECT_EQ(r.interference_over_noise_db.mean, 0.0);
  EXPECT_EQ(r.cells, 1u);
  EXPECT_EQ(r.sessions_per_strategy, 3u);  // 1 cell · 1 user · 3 trials
}

TEST(MultiCellInterference, NoiseFloorGrowsWithCellCount) {
  const MultiCellResult two = run_multicell(tiny_config(2, 1, 1), strategies());
  const MultiCellResult seven =
      run_multicell(tiny_config(7, 1, 1), strategies());
  EXPECT_GT(two.interference_over_noise_db.mean, 0.0);
  EXPECT_GT(seven.interference_over_noise_db.mean,
            two.interference_over_noise_db.mean);
}

TEST(MultiCellInterference, ScaleKnobDisablesInterference) {
  MultiCellConfig config = tiny_config(3, 1, 1);
  config.interference_scale = 0.0;
  const MultiCellResult r = run_multicell(config, strategies());
  EXPECT_EQ(r.interference_over_noise_db.mean, 0.0);
}

TEST(Topology, HexSpiralGeometry) {
  TopologyConfig config;
  config.cells = 7;
  const Topology topo = Topology::build(config);
  ASSERT_EQ(topo.n_cells(), 7u);
  EXPECT_EQ(topo.site(0).x, 0.0);
  EXPECT_EQ(topo.site(0).y, 0.0);
  const real isd = std::sqrt(3.0) * config.cell_radius_m;
  for (index_t c = 1; c < 7; ++c)
    EXPECT_NEAR(std::hypot(topo.site(c).x, topo.site(c).y), isd, 1e-9)
        << "ring-1 site " << c;
}

TEST(Topology, SquareGridGeometry) {
  TopologyConfig config;
  config.kind = TopologyKind::kSquareGrid;
  config.cells = 4;
  const Topology topo = Topology::build(config);
  const real isd = 2.0 * config.cell_radius_m;
  EXPECT_NEAR(std::hypot(topo.site(1).x - topo.site(0).x,
                         topo.site(1).y - topo.site(0).y),
              isd, 1e-9);
}

TEST(Topology, UserDropsStayInAnnulus) {
  TopologyConfig config;
  config.cells = 7;
  const Topology topo = Topology::build(config);
  randgen::Rng rng(99);
  for (index_t i = 0; i < 200; ++i) {
    const index_t cell = i % 7;
    const UserPlacement u = topo.place_user(cell, rng);
    const real d = std::hypot(u.x - topo.site(cell).x,
                              u.y - topo.site(cell).y);
    EXPECT_GE(d, config.min_distance_m - 1e-9);
    EXPECT_LE(d, config.cell_radius_m + 1e-9);
  }
}

TEST(Topology, CouplingIsReciprocalPathlossRatio) {
  TopologyConfig config;
  config.cells = 2;
  config.pathloss_exponent = 2.0;
  const Topology topo = Topology::build(config);
  // A user exactly at its serving site's min-distance clamp, on the line
  // towards the interferer: coupling = (d_s/d_i)^2 exactly.
  const UserPlacement u{topo.site(0).x + config.min_distance_m,
                        topo.site(0).y};
  const real d_s = config.min_distance_m;
  const real d_i = std::hypot(u.x - topo.site(1).x, u.y - topo.site(1).y);
  EXPECT_NEAR(topo.coupling(1, 0, u), (d_s / d_i) * (d_s / d_i), 1e-12);
}

}  // namespace
}  // namespace mmw::sim
