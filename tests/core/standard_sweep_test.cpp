#include "core/standard_sweep.h"

#include <gtest/gtest.h>

#include <cmath>

#include "antenna/steering.h"
#include "channel/models.h"
#include "core/oracle.h"

namespace mmw::core {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;
using randgen::Rng;

struct Fixture {
  ArrayGeometry tx = ArrayGeometry::upa(4, 4);
  ArrayGeometry rx = ArrayGeometry::upa(8, 8);
  channel::AngularSector sector;
  Codebook tx_cb;
  Codebook rx_cb;

  Fixture()
      : tx_cb(Codebook::angular_grid(tx, 4, 4, sector.az_min, sector.az_max,
                                     sector.el_min, sector.el_max)),
        rx_cb(Codebook::angular_grid(rx, 8, 8, sector.az_min, sector.az_max,
                                     sector.el_min, sector.el_max)) {}
};

TEST(SubarrayRestrictionTest, KeepsOnlyActiveElements) {
  const auto geo = ArrayGeometry::upa(4, 4);
  const auto w = antenna::steering_vector(geo, {0.3, 0.1});
  const auto wide = antenna::subarray_restriction(geo, w, 2, 2);
  EXPECT_NEAR(wide.norm(), 1.0, 1e-12);
  for (index_t ix = 0; ix < 4; ++ix)
    for (index_t iy = 0; iy < 4; ++iy) {
      const cx v = wide[ix * 4 + iy];
      if (ix < 2 && iy < 2)
        EXPECT_GT(std::abs(v), 0.0);
      else
        EXPECT_EQ(v, (cx{0, 0}));
    }
}

TEST(SubarrayRestrictionTest, WideBeamHasWiderMainLobe) {
  const auto geo = ArrayGeometry::upa(8, 8);
  const antenna::Direction boresight{0.0, 0.0};
  const auto narrow = antenna::steering_vector(geo, boresight);
  const auto wide = antenna::subarray_restriction(geo, narrow, 2, 2);
  // Relative gain at a 15° offset: the wide beam keeps much more of it.
  const antenna::Direction off{15.0 * M_PI / 180.0, 0.0};
  const real narrow_rel = antenna::beam_gain(geo, narrow, off) /
                          antenna::beam_gain(geo, narrow, boresight);
  const real wide_rel = antenna::beam_gain(geo, wide, off) /
                        antenna::beam_gain(geo, wide, boresight);
  EXPECT_GT(wide_rel, 4.0 * narrow_rel);
}

TEST(SubarrayRestrictionTest, Validation) {
  const auto geo = ArrayGeometry::upa(4, 4);
  const auto w = antenna::steering_vector(geo, {0.0, 0.0});
  EXPECT_THROW(antenna::subarray_restriction(geo, w, 0, 2),
               precondition_error);
  EXPECT_THROW(antenna::subarray_restriction(geo, w, 5, 2),
               precondition_error);
  EXPECT_THROW(
      antenna::subarray_restriction(geo, linalg::Vector(8), 2, 2),
      precondition_error);
}

TEST(StandardSweepTest, MeasurementCountMatchesProtocol) {
  Fixture f;
  Rng rng(5);
  const auto link = channel::make_single_path_link(f.tx, f.rx, rng, f.sector);
  StandardSweepConfig cfg;
  const auto res = run_standard_sweep(link, f.tx, f.rx, f.tx_cb, f.rx_cb,
                                      cfg, rng);
  // Stage 1: (2·2)·(2·2) = 16 sector pairs. Stage 2: TX block 2×2 = 4 fine
  // beams, RX block 4×4 = 16 fine beams → 64 pairs.
  EXPECT_EQ(res.sector_measurements, 16u);
  EXPECT_EQ(res.beam_measurements, 64u);
  EXPECT_EQ(res.total_measurements(), 80u);
}

TEST(StandardSweepTest, FindsGoodPairOnSinglePath) {
  Fixture f;
  Rng rng(6);
  real loss_acc = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const auto link =
        channel::make_single_path_link(f.tx, f.rx, rng, f.sector);
    const PairGainOracle oracle(link, f.tx_cb, f.rx_cb);
    StandardSweepConfig cfg;
    cfg.fades_per_measurement = 16;
    const auto res = run_standard_sweep(link, f.tx, f.rx, f.tx_cb, f.rx_cb,
                                        cfg, rng);
    loss_acc += oracle.loss_db(res.tx_beam, res.rx_beam);
  }
  // 80 of 1024 measurements (≈8%) should land within a few dB on average;
  // sector misdetection occasionally costs more, hence the loose bound.
  EXPECT_LT(loss_acc / trials, 6.0);
}

TEST(StandardSweepTest, SelectedPairLiesInWinningSector) {
  Fixture f;
  Rng rng(7);
  const auto link = channel::make_single_path_link(f.tx, f.rx, rng, f.sector);
  StandardSweepConfig cfg;
  const auto res = run_standard_sweep(link, f.tx, f.rx, f.tx_cb, f.rx_cb,
                                      cfg, rng);
  EXPECT_LT(res.tx_beam, f.tx_cb.size());
  EXPECT_LT(res.rx_beam, f.rx_cb.size());
  EXPECT_GE(res.best_energy, 0.0);
}

TEST(StandardSweepTest, ConfigValidation) {
  Fixture f;
  Rng rng(8);
  const auto link = channel::make_single_path_link(f.tx, f.rx, rng, f.sector);
  StandardSweepConfig bad;
  bad.tx_sectors_x = 3;  // 4 % 3 != 0
  EXPECT_THROW(
      run_standard_sweep(link, f.tx, f.rx, f.tx_cb, f.rx_cb, bad, rng),
      precondition_error);
  StandardSweepConfig bad2;
  bad2.gamma = 0.0;
  EXPECT_THROW(
      run_standard_sweep(link, f.tx, f.rx, f.tx_cb, f.rx_cb, bad2, rng),
      precondition_error);
}

TEST(StandardSweepTest, FinerSectorsSpendMoreOnStageOne) {
  Fixture f;
  Rng rng(9);
  const auto link = channel::make_single_path_link(f.tx, f.rx, rng, f.sector);
  StandardSweepConfig fine;
  fine.rx_sectors_x = 4;
  fine.rx_sectors_y = 4;
  const auto res = run_standard_sweep(link, f.tx, f.rx, f.tx_cb, f.rx_cb,
                                      fine, rng);
  EXPECT_EQ(res.sector_measurements, 4u * 16u);
  EXPECT_EQ(res.beam_measurements, 4u * 4u);
}

}  // namespace
}  // namespace mmw::core
