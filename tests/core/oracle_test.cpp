#include "core/oracle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "antenna/steering.h"
#include "channel/models.h"
#include "randgen/rng.h"

namespace mmw::core {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;
using channel::Link;
using channel::Path;
using randgen::Rng;

TEST(OracleTest, MatchesLinkMeanPairGain) {
  Rng rng(1);
  const auto tx = ArrayGeometry::upa(2, 2);
  const auto rx = ArrayGeometry::upa(4, 4);
  const Link link = channel::make_nyc_multipath_link(tx, rx, rng);
  const auto tx_cb = Codebook::dft(tx);
  const auto rx_cb = Codebook::dft(rx);
  const PairGainOracle oracle(link, tx_cb, rx_cb);
  for (index_t t = 0; t < tx_cb.size(); ++t)
    for (index_t r = 0; r < rx_cb.size(); ++r)
      EXPECT_NEAR(oracle.gain(t, r),
                  link.mean_pair_gain(tx_cb.codeword(t), rx_cb.codeword(r)),
                  1e-9 * (1.0 + oracle.optimal_gain()));
}

TEST(OracleTest, OptimalPairIsArgmax) {
  Rng rng(2);
  const auto tx = ArrayGeometry::upa(2, 2);
  const auto rx = ArrayGeometry::upa(4, 4);
  const Link link = channel::make_single_path_link(tx, rx, rng);
  const auto tx_cb = Codebook::dft(tx);
  const auto rx_cb = Codebook::dft(rx);
  const PairGainOracle oracle(link, tx_cb, rx_cb);
  const auto [ot, orx] = oracle.optimal_pair();
  for (index_t t = 0; t < tx_cb.size(); ++t)
    for (index_t r = 0; r < rx_cb.size(); ++r)
      EXPECT_LE(oracle.gain(t, r), oracle.optimal_gain() + 1e-12);
  EXPECT_NEAR(oracle.gain(ot, orx), oracle.optimal_gain(), 1e-12);
}

TEST(OracleTest, LossOfOptimalPairIsZero) {
  Rng rng(3);
  const auto tx = ArrayGeometry::upa(2, 2);
  const auto rx = ArrayGeometry::upa(4, 4);
  const Link link = channel::make_single_path_link(tx, rx, rng);
  const PairGainOracle oracle(link, Codebook::dft(tx), Codebook::dft(rx));
  const auto [t, r] = oracle.optimal_pair();
  EXPECT_NEAR(oracle.loss_db(t, r), 0.0, 1e-12);
}

TEST(OracleTest, LossIsNonNegativeAndMonotone) {
  Rng rng(4);
  const auto tx = ArrayGeometry::upa(2, 2);
  const auto rx = ArrayGeometry::upa(4, 4);
  const Link link = channel::make_nyc_multipath_link(tx, rx, rng);
  const PairGainOracle oracle(link, Codebook::dft(tx), Codebook::dft(rx));
  for (index_t t = 0; t < 4; ++t)
    for (index_t r = 0; r < 16; ++r) {
      EXPECT_GE(oracle.loss_db(t, r), 0.0);
      // Loss formula: 10·log10(opt/gain).
      EXPECT_NEAR(oracle.loss_db(t, r),
                  10.0 * std::log10(oracle.optimal_gain() /
                                    oracle.gain(t, r)),
                  1e-9);
    }
}

TEST(OracleTest, StrongestBeamPairForAlignedPath) {
  // A path exactly on a codebook direction makes that codeword pair optimal.
  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  const auto tx_cb =
      Codebook::angular_grid(tx, 4, 4, -0.8, 0.8, -0.4, 0.4);
  const auto rx_cb =
      Codebook::angular_grid(rx, 8, 8, -0.8, 0.8, -0.4, 0.4);
  // Grid steps: az −0.8 + k·1.6/3 for TX; pick exact grid angles.
  const antenna::Direction aod{-0.8 + 1.6 / 3.0, -0.4 + 0.8 / 3.0};
  const antenna::Direction aoa{-0.8 + 2.0 * 1.6 / 7.0, -0.4 + 3.0 * 0.8 / 7.0};
  const Link link(tx, rx, {Path{1.0, aod, aoa}});
  const PairGainOracle oracle(link, tx_cb, rx_cb);
  const auto [t, r] = oracle.optimal_pair();
  const auto [tx_x, tx_y] = tx_cb.coordinates(t);
  const auto [rx_x, rx_y] = rx_cb.coordinates(r);
  EXPECT_EQ(tx_x, 1u);
  EXPECT_EQ(tx_y, 1u);
  EXPECT_EQ(rx_x, 2u);
  EXPECT_EQ(rx_y, 3u);
  // Full array gain at perfect alignment: N·M·p.
  EXPECT_NEAR(oracle.optimal_gain(), 16.0 * 64.0, 1e-6);
}

TEST(OracleTest, ShapeMismatchThrows) {
  Rng rng(5);
  const auto tx = ArrayGeometry::upa(2, 2);
  const auto rx = ArrayGeometry::upa(4, 4);
  const Link link = channel::make_single_path_link(tx, rx, rng);
  const auto cb_small = Codebook::dft(tx);
  EXPECT_THROW(PairGainOracle(link, cb_small, cb_small), precondition_error);
}

}  // namespace
}  // namespace mmw::core
