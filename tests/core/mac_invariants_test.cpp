// MAC-layer invariants across every alignment strategy:
//  - the measurement ledger never repeats a beam pair, with and without an
//    interference noise floor (the floor changes measured energies, so a
//    strategy that picked its next pair from a stale ranking could loop);
//  - Scan's adjacency raster covers the pair grid exactly once, each step
//    moving one grid hop in exactly one beam, from any random start.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <utility>
#include <vector>

#include "channel/models.h"
#include "core/strategy.h"
#include "mac/session.h"
#include "randgen/rng.h"

namespace mmw::core {
namespace {

struct Fixture {
  channel::Link link;
  antenna::Codebook tx;
  antenna::Codebook rx;
};

/// Tiny paper-shaped setup: 2×2 TX / 4×4 RX angular-grid codebooks over the
/// default sector, single-path link. T = 64 pairs keeps full-budget runs of
/// every strategy fast.
Fixture make_fixture(std::uint64_t seed) {
  const auto tx_geo = antenna::ArrayGeometry::upa(2, 2);
  const auto rx_geo = antenna::ArrayGeometry::upa(4, 4);
  const channel::AngularSector sector;
  randgen::Rng rng(seed);
  channel::Link link = channel::make_single_path_link(tx_geo, rx_geo, rng,
                                                      sector);
  auto make_cb = [&](const antenna::ArrayGeometry& geo) {
    return antenna::Codebook::angular_grid(geo, geo.grid_x(), geo.grid_y(),
                                           sector.az_min, sector.az_max,
                                           sector.el_min, sector.el_max);
  };
  return Fixture{std::move(link), make_cb(tx_geo), make_cb(rx_geo)};
}

const std::vector<const AlignmentStrategy*>& all_strategies() {
  static const RandomSearch random_search;
  static const ScanSearch scan_search;
  static const ExhaustiveSearch exhaustive;
  static const ProposedAlignment proposed;
  static const HierarchicalSearch hierarchical;
  static const PingPongAlignment ping_pong;
  static const LocalSearch local_search;
  static const std::vector<const AlignmentStrategy*> all{
      &random_search, &scan_search,  &exhaustive, &proposed,
      &hierarchical,  &ping_pong,    &local_search};
  return all;
}

void expect_no_repeats(const Fixture& f, const AlignmentStrategy& strategy,
                       index_t budget, bool with_interference,
                       std::uint64_t seed) {
  randgen::Rng rng(seed);
  mac::Session session(f.link, f.tx, f.rx, /*gamma=*/1.0, budget, rng,
                       /*fades_per_measurement=*/4);
  if (with_interference) {
    // A deliberately lopsided floor: strong on even RX beams, none on odd
    // ones, so rankings under interference differ from the clean run.
    std::vector<real> floor(f.rx.size(), 0.0);
    for (index_t v = 0; v < floor.size(); v += 2) floor[v] = 2.0;
    session.set_interference(floor);
  }
  strategy.run(session);

  std::set<std::pair<index_t, index_t>> seen;
  for (const auto& rec : session.records())
    EXPECT_TRUE(seen.emplace(rec.tx_beam, rec.rx_beam).second)
        << strategy.name() << " repeated pair (" << rec.tx_beam << ", "
        << rec.rx_beam << ")"
        << (with_interference ? " under interference" : "");
  EXPECT_LE(session.records().size(), budget);
}

TEST(MacInvariants, LedgerNeverRepeatsAPair) {
  const Fixture f = make_fixture(7001);
  const index_t total = f.tx.size() * f.rx.size();
  for (const auto* strategy : all_strategies())
    for (const index_t budget : {total / 4, total})
      expect_no_repeats(f, *strategy, budget, /*with_interference=*/false,
                        9000 + budget);
}

TEST(MacInvariants, LedgerNeverRepeatsAPairUnderInterference) {
  const Fixture f = make_fixture(7002);
  const index_t total = f.tx.size() * f.rx.size();
  for (const auto* strategy : all_strategies())
    for (const index_t budget : {total / 4, total})
      expect_no_repeats(f, *strategy, budget, /*with_interference=*/true,
                        9100 + budget);
}

/// Scan at full budget is a cyclic walk of the whole pair grid: every pair
/// exactly once, and every step — except the single seam where the cyclic
/// traversal wraps from the raster's end back to its start — changes
/// exactly one of the four grid coordinates (tx_x, tx_y, rx_x, rx_y) by
/// exactly one hop.
TEST(MacInvariants, ScanRasterCoversGridOnceWithSingleHopSteps) {
  const Fixture f = make_fixture(7003);
  const index_t total = f.tx.size() * f.rx.size();
  const ScanSearch scan;

  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    randgen::Rng rng(seed);  // varies the random starting pair
    mac::Session session(f.link, f.tx, f.rx, 1.0, total, rng, 1);
    scan.run(session);
    const auto records = session.records();
    ASSERT_EQ(records.size(), total);

    std::set<std::pair<index_t, index_t>> seen;
    for (const auto& rec : records) seen.emplace(rec.tx_beam, rec.rx_beam);
    EXPECT_EQ(seen.size(), total) << "seed " << seed;

    index_t seams = 0;
    for (index_t k = 1; k < records.size(); ++k) {
      const auto [txx0, txy0] = f.tx.coordinates(records[k - 1].tx_beam);
      const auto [rxx0, rxy0] = f.rx.coordinates(records[k - 1].rx_beam);
      const auto [txx1, txy1] = f.tx.coordinates(records[k].tx_beam);
      const auto [rxx1, rxy1] = f.rx.coordinates(records[k].rx_beam);
      const auto hop = [](index_t a, index_t b) {
        return a > b ? a - b : b - a;
      };
      const index_t moved = hop(txx0, txx1) + hop(txy0, txy1) +
                            hop(rxx0, rxx1) + hop(rxy0, rxy1);
      const bool single_hop =
          moved == 1 && (txx0 != txx1) + (txy0 != txy1) + (rxx0 != rxx1) +
                                (rxy0 != rxy1) ==
                            1;
      if (!single_hop) ++seams;
    }
    EXPECT_LE(seams, 1u) << "seed " << seed
                         << ": raster broke adjacency off the seam";
  }
}

}  // namespace
}  // namespace mmw::core
