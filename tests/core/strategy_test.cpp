#include "core/strategy.h"

#include <gtest/gtest.h>

#include <set>

#include "channel/models.h"
#include "core/oracle.h"

namespace mmw::core {
namespace {

using antenna::ArrayGeometry;
using antenna::Codebook;
using channel::Link;
using mac::Session;
using randgen::Rng;

struct Fixture {
  ArrayGeometry tx = ArrayGeometry::upa(2, 2);
  ArrayGeometry rx = ArrayGeometry::upa(4, 4);
  Rng rng{11};
  Link link;
  Codebook tx_cb;
  Codebook rx_cb;

  Fixture()
      : link(channel::make_single_path_link(tx, rx, rng)),
        tx_cb(Codebook::angular_grid(tx, 2, 2, -1.0, 1.0, -0.5, 0.5)),
        rx_cb(Codebook::angular_grid(rx, 4, 4, -1.0, 1.0, -0.5, 0.5)) {}

  Session session(index_t budget, index_t fades = 4) {
    return Session(link, tx_cb, rx_cb, 1.0, budget, rng, fades);
  }
};

void expect_no_duplicates(const Session& s) {
  std::set<std::pair<index_t, index_t>> seen;
  for (const auto& r : s.records())
    EXPECT_TRUE(seen.insert({r.tx_beam, r.rx_beam}).second)
        << "pair measured twice";
}

TEST(RandomSearchTest, SpendsExactBudget) {
  Fixture f;
  Session s = f.session(20);
  RandomSearch().run(s);
  EXPECT_EQ(s.measurements_taken(), 20u);
  expect_no_duplicates(s);
}

TEST(RandomSearchTest, FullBudgetCoversAllPairs) {
  Fixture f;
  Session s = f.session(64);
  RandomSearch().run(s);
  EXPECT_EQ(s.measurements_taken(), 64u);
  expect_no_duplicates(s);
}

TEST(RandomSearchTest, DifferentRngsGiveDifferentOrders) {
  Fixture f;
  Session s1 = f.session(64);
  RandomSearch().run(s1);
  Session s2 = f.session(64);
  RandomSearch().run(s2);
  bool any_differ = false;
  for (index_t k = 0; k < 64; ++k)
    if (s1.records()[k].tx_beam != s2.records()[k].tx_beam ||
        s1.records()[k].rx_beam != s2.records()[k].rx_beam)
      any_differ = true;
  EXPECT_TRUE(any_differ);
}

TEST(ScanSearchTest, ConsecutivePairsAreAdjacent) {
  Fixture f;
  Session s = f.session(30);
  ScanSearch().run(s);
  EXPECT_EQ(s.measurements_taken(), 30u);
  const auto& recs = s.records();
  const auto d = [](index_t a, index_t b) { return a > b ? a - b : b - a; };
  // Every step moves one grid cell in exactly one of the two codebooks;
  // the single allowed exception is the wrap point of the cyclic traversal.
  int discontinuities = 0;
  for (index_t k = 1; k < recs.size(); ++k) {
    const auto [tx1, ty1] = f.tx_cb.coordinates(recs[k - 1].tx_beam);
    const auto [tx2, ty2] = f.tx_cb.coordinates(recs[k].tx_beam);
    const auto [rx1, ry1] = f.rx_cb.coordinates(recs[k - 1].rx_beam);
    const auto [rx2, ry2] = f.rx_cb.coordinates(recs[k].rx_beam);
    const index_t total =
        d(tx1, tx2) + d(ty1, ty2) + d(rx1, rx2) + d(ry1, ry2);
    if (total != 1) ++discontinuities;
  }
  EXPECT_LE(discontinuities, 1);
  expect_no_duplicates(s);
}

TEST(ScanSearchTest, CoversAllPairsAtFullBudget) {
  Fixture f;
  Session s = f.session(64);
  ScanSearch().run(s);
  EXPECT_EQ(s.measurements_taken(), 64u);
  expect_no_duplicates(s);
}

TEST(ExhaustiveSearchTest, RasterOrder) {
  Fixture f;
  Session s = f.session(64);
  ExhaustiveSearch().run(s);
  EXPECT_EQ(s.measurements_taken(), 64u);
  for (index_t k = 0; k < 64; ++k) {
    EXPECT_EQ(s.records()[k].tx_beam, k / 16);
    EXPECT_EQ(s.records()[k].rx_beam, k % 16);
  }
}

TEST(ProposedTest, RequiresAtLeastTwoPerSlot) {
  ProposedOptions bad;
  bad.measurements_per_slot = 1;
  EXPECT_THROW(ProposedAlignment{bad}, precondition_error);
}

TEST(ProposedTest, SpendsExactBudget) {
  Fixture f;
  Session s = f.session(30);
  ProposedAlignment().run(s);
  EXPECT_EQ(s.measurements_taken(), 30u);
  expect_no_duplicates(s);
}

TEST(ProposedTest, FullBudgetMeasuresEverything) {
  Fixture f;
  Session s = f.session(64);
  ProposedAlignment().run(s);
  EXPECT_EQ(s.measurements_taken(), 64u);
  expect_no_duplicates(s);
}

TEST(ProposedTest, SlotStructureRespectsJ) {
  // The first J measurements must share one TX beam, the next J another.
  Fixture f;
  ProposedOptions opts;
  opts.measurements_per_slot = 4;
  Session s = f.session(16);
  ProposedAlignment(opts).run(s);
  const auto& recs = s.records();
  ASSERT_EQ(recs.size(), 16u);
  for (index_t slot = 0; slot < 4; ++slot) {
    const index_t u = recs[slot * 4].tx_beam;
    for (index_t j = 1; j < 4; ++j)
      EXPECT_EQ(recs[slot * 4 + j].tx_beam, u) << "slot " << slot;
  }
  // Four distinct TX beams across the four slots (one round over U).
  std::set<index_t> tx_used;
  for (index_t slot = 0; slot < 4; ++slot)
    tx_used.insert(recs[slot * 4].tx_beam);
  EXPECT_EQ(tx_used.size(), 4u);
}

TEST(ProposedTest, BeatsRandomOnAverage) {
  // The headline property at a moderate search rate on a larger codebook.
  Rng rng(3);
  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  const auto tx_cb = Codebook::angular_grid(tx, 4, 4, -M_PI / 3, M_PI / 3,
                                            -M_PI / 6, M_PI / 6);
  const auto rx_cb = Codebook::angular_grid(rx, 8, 8, -M_PI / 3, M_PI / 3,
                                            -M_PI / 6, M_PI / 6);
  real proposed_loss = 0.0, random_loss = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const Link link = channel::make_single_path_link(tx, rx, rng);
    const PairGainOracle oracle(link, tx_cb, rx_cb);
    const index_t budget = 128;  // 12.5% search rate
    {
      Rng run_rng = rng.fork();
      Session s(link, tx_cb, rx_cb, 1.0, budget, run_rng, 8);
      ProposedAlignment().run(s);
      const auto best = s.best_measured();
      proposed_loss += oracle.loss_db(best->tx_beam, best->rx_beam);
    }
    {
      Rng run_rng = rng.fork();
      Session s(link, tx_cb, rx_cb, 1.0, budget, run_rng, 8);
      RandomSearch().run(s);
      const auto best = s.best_measured();
      random_loss += oracle.loss_db(best->tx_beam, best->rx_beam);
    }
  }
  EXPECT_LT(proposed_loss, random_loss);
}

TEST(ProposedTest, RunWithStateRejectsWrongShape) {
  Fixture f;
  Session s = f.session(12);
  linalg::Matrix wrong(3, 3);
  EXPECT_THROW(ProposedAlignment().run_with_state(s, wrong),
               precondition_error);
}

TEST(ProposedTest, RunWithStateProducesCovariance) {
  Fixture f;
  Session s = f.session(24);
  linalg::Matrix state;
  ProposedAlignment().run_with_state(s, state);
  EXPECT_EQ(state.rows(), 16u);
  EXPECT_TRUE(state.is_hermitian(1e-8 * (1.0 + state.max_abs())));
}

TEST(ProposedTest, WarmStartSkipsColdExploration) {
  // Seeding with the TRUE beam covariance must make the very first slot
  // probe the strongest RX beams.
  Rng rng(17);
  const auto tx = ArrayGeometry::upa(4, 4);
  const auto rx = ArrayGeometry::upa(8, 8);
  const auto tx_cb = Codebook::angular_grid(tx, 4, 4, -M_PI / 3, M_PI / 3,
                                            -M_PI / 6, M_PI / 6);
  const auto rx_cb = Codebook::angular_grid(rx, 8, 8, -M_PI / 3, M_PI / 3,
                                            -M_PI / 6, M_PI / 6);
  const Link link = channel::make_single_path_link(tx, rx, rng);
  linalg::Matrix prior = link.rx_covariance();
  const index_t best_rx = rx_cb.best_for_covariance(prior);

  Session s(link, tx_cb, rx_cb, 1.0, 12, rng, 8);
  ProposedAlignment().run_with_state(s, prior);
  // The top-scoring RX beam under the prior is probed within the first slot.
  bool probed = false;
  for (index_t k = 0; k < std::min<index_t>(6, s.records().size()); ++k)
    if (s.records()[k].rx_beam == best_rx) probed = true;
  EXPECT_TRUE(probed);
}

TEST(HierarchicalTest, StrideValidation) {
  HierarchicalOptions bad;
  bad.stride = 0;
  EXPECT_THROW(HierarchicalSearch{bad}, precondition_error);
}

TEST(HierarchicalTest, SpendsBudgetWithoutDuplicates) {
  Fixture f;
  Session s = f.session(40);
  HierarchicalSearch().run(s);
  EXPECT_EQ(s.measurements_taken(), 40u);
  expect_no_duplicates(s);
}

TEST(HierarchicalTest, CoarseStageComesFirst) {
  Fixture f;
  HierarchicalOptions opts;
  opts.stride = 2;
  Session s = f.session(64);
  HierarchicalSearch(opts).run(s);
  // First measurements enumerate the strided subgrid: 1×1 TX coarse points
  // (grid 2×2, stride 2 → 1 point) × 2×2 RX coarse points = 4 pairs.
  const auto& recs = s.records();
  for (index_t k = 0; k < 4; ++k) {
    const auto [tx_x, tx_y] = f.tx_cb.coordinates(recs[k].tx_beam);
    const auto [rx_x, rx_y] = f.rx_cb.coordinates(recs[k].rx_beam);
    EXPECT_EQ(tx_x % 2, 0u);
    EXPECT_EQ(tx_y % 2, 0u);
    EXPECT_EQ(rx_x % 2, 0u);
    EXPECT_EQ(rx_y % 2, 0u);
  }
  EXPECT_EQ(s.measurements_taken(), 64u);
  expect_no_duplicates(s);
}

}  // namespace
}  // namespace mmw::core
