#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/obs.h"

namespace mmw::core {
namespace {

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_GE(resolve_thread_count(0), 1u);  // auto: at least one
}

TEST(ThreadPoolTest, ZeroTaskShutdown) {
  // Construct and destroy without ever submitting work; must not hang.
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
}

TEST(ThreadPoolTest, EmptyRangeReturnsImmediately) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(5, 5, [&](index_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForCompletesEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr index_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](index_t i) { hits[i].fetch_add(1); });
  for (index_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRespectsBegin) {
  ThreadPool pool(2);
  std::vector<int> hits(10, 0);
  pool.parallel_for(7, 10, [&](index_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 3);
  EXPECT_EQ(hits[7] + hits[8] + hits[9], 3);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.parallel_for(0, out.size(),
                    [&](index_t i) { out[i] = static_cast<int>(i); });
  for (index_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](index_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives a throwing parallel_for and accepts new work.
  std::atomic<int> done{0};
  pool.parallel_for(0, 8, [&](index_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, LowestIndexFailureWinsDeterministically) {
  // Many iterations fail; the rethrown exception must always be the one
  // from the LOWEST failing index, regardless of thread scheduling.
  ThreadPool pool(8);
  for (int round = 0; round < 20; ++round) {
    try {
      pool.parallel_for(0, 400, [&](index_t i) {
        if (i % 7 == 3)  // 3, 10, 17, ... — lowest is 3
          throw std::runtime_error("fail@" + std::to_string(i));
      });
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail@3");
    }
  }
}

TEST(ThreadPoolTest, QuarantineCollectsEveryFailureSorted) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  const std::vector<IterationFailure> failures =
      pool.parallel_for_quarantined(0, 100, [&](index_t i) {
        hits[i].fetch_add(1);
        if (i % 10 == 5) throw std::runtime_error("bad " + std::to_string(i));
      });
  // No cancellation: every index ran exactly once.
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  ASSERT_EQ(failures.size(), 10u);
  for (index_t k = 0; k < failures.size(); ++k) {
    EXPECT_EQ(failures[k].index, 10 * k + 5);
    EXPECT_EQ(failures[k].message, "bad " + std::to_string(10 * k + 5));
  }
}

TEST(ThreadPoolTest, QuarantineEmptyWhenNothingThrows) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  const auto failures = pool.parallel_for_quarantined(
      0, 32, [&](index_t) { done.fetch_add(1); });
  EXPECT_TRUE(failures.empty());
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, SequentialParallelForsReuseTheSamePool) {
  ThreadPool pool(3);
  std::atomic<index_t> total{0};
  for (int round = 0; round < 10; ++round)
    pool.parallel_for(0, 50, [&](index_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 500u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(2);
    pool.submit([&] { ran.store(true); });
    // Destructor drains the queue before joining.
  }
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, HeartbeatAdvancesWithWork) {
  ThreadPool pool(3);
  const std::uint64_t before = pool.heartbeat();
  pool.parallel_for(0, 100, [](index_t) {});
  const std::uint64_t after_for = pool.heartbeat();
  // One beat per completed iteration — the watchdog's liveness signal.
  EXPECT_GE(after_for, before + 100);

  pool.parallel_for_quarantined(0, 50, [](index_t i) {
    if (i % 2 == 0) throw std::runtime_error("boom");
  });
  // Failing iterations still beat: a shard that throws is not a stall.
  EXPECT_GE(pool.heartbeat(), after_for + 50);
}

TEST(ThreadPoolTest, HeartbeatIsMonotone) {
  ThreadPool pool(2);
  std::uint64_t last = pool.heartbeat();
  for (int round = 0; round < 5; ++round) {
    pool.parallel_for(0, 20, [](index_t) {});
    const std::uint64_t now = pool.heartbeat();
    EXPECT_GE(now, last + 20);
    last = now;
  }
}

TEST(ThreadPoolTest, QuarantinedFailureDumpsFlightRecorder) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "mmw_pool_flight_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const bool was_enabled = obs::enabled();
  obs::set_enabled(true);
  obs::FlightRecorder::global().set_dump_directory(dir.string());
  const std::uint64_t dumps_before =
      obs::FlightRecorder::global().dump_count();

  ThreadPool pool(2);
  pool.parallel_for_quarantined(0, 8, [](index_t i) {
    if (i == 3) throw std::runtime_error("quarantine me");
  });
  // One dump per quarantined parallel_for with failures, not per failure.
  EXPECT_EQ(obs::FlightRecorder::global().dump_count(), dumps_before + 1);

  bool found = false;
  for (const auto& e : fs::directory_iterator(dir))
    if (e.path().filename().string().find("quarantined_iteration") !=
        std::string::npos)
      found = true;
  EXPECT_TRUE(found);

  // A clean quarantined run must NOT dump.
  pool.parallel_for_quarantined(0, 8, [](index_t) {});
  EXPECT_EQ(obs::FlightRecorder::global().dump_count(), dumps_before + 1);

  obs::FlightRecorder::global().set_dump_directory("bench_results");
  obs::set_enabled(was_enabled);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mmw::core
