// End-to-end integration tests: the headline claims of the reproduction,
// exercised through the same pipeline the benches use (scenario → link →
// session → strategy → oracle), at reduced scale so they stay fast.
#include <gtest/gtest.h>

#include <cmath>

#include "core/standard_sweep.h"
#include "mac/timing.h"
#include "sim/experiments.h"

namespace mmw {
namespace {

using namespace sim;

Scenario small_paper_scenario(ChannelKind kind, index_t trials = 10) {
  Scenario sc;
  sc.channel = kind;
  sc.trials = trials;
  sc.seed = 99;
  return sc;
}

TEST(EndToEndTest, ProposedBeatsRandomAndScanSinglePath) {
  // The paper's Fig. 5 headline at a mid search rate.
  const Scenario sc = small_paper_scenario(ChannelKind::kSinglePath, 12);
  core::RandomSearch rnd;
  core::ScanSearch scan;
  core::ProposedAlignment prop;
  const auto res =
      run_search_effectiveness(sc, {&rnd, &scan, &prop}, {0.15});
  const real proposed = res.loss_db.at("Proposed")[0].mean;
  const real random = res.loss_db.at("Random")[0].mean;
  const real scan_loss = res.loss_db.at("Scan")[0].mean;
  EXPECT_LT(proposed, random);
  EXPECT_LT(random, scan_loss);
}

TEST(EndToEndTest, ProposedBeatsRandomMultipath) {
  const Scenario sc = small_paper_scenario(ChannelKind::kNycMultipath, 12);
  core::RandomSearch rnd;
  core::ProposedAlignment prop;
  const auto res = run_search_effectiveness(sc, {&rnd, &prop}, {0.10});
  EXPECT_LT(res.loss_db.at("Proposed")[0].mean,
            res.loss_db.at("Random")[0].mean);
}

TEST(EndToEndTest, LossDecreasesWithSearchRateForProposed) {
  const Scenario sc = small_paper_scenario(ChannelKind::kSinglePath, 10);
  core::ProposedAlignment prop;
  const auto res =
      run_search_effectiveness(sc, {&prop}, {0.05, 0.15, 0.35});
  const auto& row = res.loss_db.at("Proposed");
  EXPECT_GE(row[0].mean, row[1].mean - 0.5);
  EXPECT_GE(row[1].mean, row[2].mean - 0.5);
  EXPECT_LT(row[2].mean, row[0].mean);  // strict end-to-end improvement
}

TEST(EndToEndTest, PingPongBeatsRandomAndIsCompetitiveWithProposed) {
  const Scenario sc = small_paper_scenario(ChannelKind::kSinglePath, 12);
  core::RandomSearch rnd;
  core::ProposedAlignment prop;
  core::PingPongAlignment pp;
  const auto res =
      run_search_effectiveness(sc, {&rnd, &prop, &pp}, {0.15});
  const real pingpong = res.loss_db.at("PingPong")[0].mean;
  EXPECT_LT(pingpong, res.loss_db.at("Random")[0].mean);
  // Bidirectional learning should never be much worse than one-sided.
  EXPECT_LT(pingpong, res.loss_db.at("Proposed")[0].mean + 1.0);
}

TEST(EndToEndTest, CostEfficiencyOrderingAtTightTarget) {
  // The paper's Fig. 7 headline: Proposed needs the smallest search rate.
  const Scenario sc = small_paper_scenario(ChannelKind::kSinglePath, 10);
  core::RandomSearch rnd;
  core::ProposedAlignment prop;
  const auto res = run_cost_efficiency(sc, {&rnd, &prop}, {2.0});
  EXPECT_LT(res.required_rate.at("Proposed")[0].mean,
            res.required_rate.at("Random")[0].mean);
}

TEST(EndToEndTest, HundredPercentRateIsNearOptimalForEveryScheme) {
  // "At 100% all three schemes reduce to exhaustive scan" — with fade
  // averaging the claimed pair is near-optimal for all of them.
  Scenario sc = small_paper_scenario(ChannelKind::kSinglePath, 6);
  sc.tx_grid_x = sc.tx_grid_y = 2;  // shrink T so the test stays fast
  sc.rx_grid_x = sc.rx_grid_y = 4;
  sc.fades_per_measurement = 32;
  core::RandomSearch rnd;
  core::ScanSearch scan;
  core::ProposedAlignment prop;
  const auto res =
      run_search_effectiveness(sc, {&rnd, &scan, &prop}, {1.0});
  for (const auto& [name, row] : res.loss_db)
    EXPECT_LT(row[0].mean, 0.6) << name;
}

TEST(EndToEndTest, StandardSweepPipelineProducesComparableAlignment) {
  // The 802.15.3c-style protocol, graded by the same oracle.
  randgen::Rng rng(5);
  const auto tx = antenna::ArrayGeometry::upa(4, 4);
  const auto rx = antenna::ArrayGeometry::upa(8, 8);
  const channel::AngularSector sector;
  const auto tx_cb = antenna::Codebook::angular_grid(
      tx, 4, 4, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const auto rx_cb = antenna::Codebook::angular_grid(
      rx, 8, 8, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  real loss = 0.0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    const auto link = channel::make_single_path_link(tx, rx, rng, sector);
    const core::PairGainOracle oracle(link, tx_cb, rx_cb);
    core::StandardSweepConfig cfg;
    cfg.fades_per_measurement = 16;
    const auto res =
        core::run_standard_sweep(link, tx, rx, tx_cb, rx_cb, cfg, rng);
    EXPECT_EQ(res.total_measurements(), 80u);
    loss += oracle.loss_db(res.tx_beam, res.rx_beam);
  }
  EXPECT_LT(loss / trials, 8.0);
}

TEST(EndToEndTest, TimingModelFavorsCheaperAlignment) {
  // Proposed at 10% yields more net throughput than exhaustive at 100%
  // when frames are short — the paper's capacity argument.
  const mac::ProtocolTiming timing;
  const real frame_us = 5000.0;
  const real snr = 100.0;
  const real cheap =
      timing.net_spectral_efficiency(102, 17, frame_us, snr);
  const real full =
      timing.net_spectral_efficiency(1024, 16, frame_us, snr);
  EXPECT_GT(cheap, full);
}

TEST(EndToEndTest, ReproducibleAcrossRuns) {
  const Scenario sc = small_paper_scenario(ChannelKind::kNycMultipath, 4);
  core::ProposedAlignment prop;
  const auto a = run_search_effectiveness(sc, {&prop}, {0.1});
  const auto b = run_search_effectiveness(sc, {&prop}, {0.1});
  EXPECT_DOUBLE_EQ(a.loss_db.at("Proposed")[0].mean,
                   b.loss_db.at("Proposed")[0].mean);
}

TEST(EndToEndTest, BlockageDegradesButDoesNotBreakProposed) {
  randgen::Rng rng(11);
  const auto tx = antenna::ArrayGeometry::upa(4, 4);
  const auto rx = antenna::ArrayGeometry::upa(8, 8);
  const channel::AngularSector sector;
  const auto tx_cb = antenna::Codebook::angular_grid(
      tx, 4, 4, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  const auto rx_cb = antenna::Codebook::angular_grid(
      rx, 8, 8, sector.az_min, sector.az_max, sector.el_min, sector.el_max);
  real clean = 0.0, blocked = 0.0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const auto link = channel::make_single_path_link(tx, rx, rng, sector);
    const core::PairGainOracle oracle(link, tx_cb, rx_cb);
    for (const real p : {0.0, 0.3}) {
      randgen::Rng run = rng.fork();
      mac::Session s(link, tx_cb, rx_cb, 1.0, 154, run, 8);
      s.set_blockage_probability(p);
      core::ProposedAlignment().run(s);
      const auto best = s.best_measured();
      (p == 0.0 ? clean : blocked) +=
          oracle.loss_db(best->tx_beam, best->rx_beam);
    }
  }
  EXPECT_LT(clean / trials, 8.0);
  EXPECT_LT(blocked / trials, 15.0);  // degraded but functional
}

}  // namespace
}  // namespace mmw
